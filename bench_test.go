package batcher_test

// One benchmark per experiment in DESIGN.md's index. Simulator
// benchmarks report model-time metrics (timesteps, throughput in
// inserts-per-kilostep) via b.ReportMetric alongside wall time; the
// Real* benchmarks time the goroutine-based runtime end to end. Regenerate
// everything with:
//
//	go test -bench=. -benchmem
//
// or per experiment, e.g. go test -bench=Fig5Sim.

import (
	"fmt"
	"testing"

	"sync"

	"batcher"
	"batcher/internal/concurrent"
	"batcher/internal/ds/counter"
	"batcher/internal/ds/hashmap"
	"batcher/internal/ds/omlist"
	"batcher/internal/ds/skiplist"
	"batcher/internal/ds/stack"
	"batcher/internal/ds/tree23"
	"batcher/internal/experiments"
	"batcher/internal/rng"
	"batcher/internal/sim"
	"batcher/internal/simds"
)

// --- Fig5: skip-list insertion throughput, BATCHER vs SEQ (simulated) ---

func fig5Workload(calls, records int) *sim.Graph {
	g := sim.NewGraph(calls * 4)
	ops := make([]*sim.Op, calls)
	for i := range ops {
		ops[i] = &sim.Op{Records: records}
	}
	g.ForkJoinDS(ops, 1, 1)
	return g
}

func BenchmarkFig5Sim(b *testing.B) {
	const calls, records = 1000, 100
	for _, size := range []int64{20_000, 100_000, 1_000_000, 10_000_000, 100_000_000} {
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("size=%d/P=%d", size, p), func(b *testing.B) {
				var last sim.Result
				for i := 0; i < b.N; i++ {
					s := sim.NewSim(sim.Config{Workers: p, Seed: 5},
						&simds.SkipList{Size: size})
					last = s.Run(fig5Workload(calls, records))
				}
				b.ReportMetric(1000*last.Throughput(calls*records), "inserts/kilostep")
				b.ReportMetric(float64(last.Makespan), "timesteps")
			})
		}
	}
}

func BenchmarkFig5SeqBaselineSim(b *testing.B) {
	const calls, records = 1000, 100
	for _, size := range []int64{20_000, 100_000_000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var t int64
			for i := 0; i < b.N; i++ {
				t = sim.SequentialTime(fig5Workload(calls, records), &simds.SkipList{Size: size})
			}
			b.ReportMetric(1000*float64(calls*records)/float64(t), "inserts/kilostep")
		})
	}
}

// --- Fig5-FC: flat combining comparison (simulated) ----------------------

func BenchmarkFlatCombiningSim(b *testing.B) {
	const calls, records = 1000, 100
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				s := sim.NewSim(sim.Config{Workers: p, Seed: 5, SeqBatches: true},
					&simds.SkipList{Size: 100_000_000})
				last = s.Run(fig5Workload(calls, records))
			}
			b.ReportMetric(1000*last.Throughput(calls*records), "inserts/kilostep")
		})
	}
}

// --- Fig5 real runtime: wall-clock skip-list insertion -------------------

func BenchmarkFig5Real(b *testing.B) {
	cfg := experiments.RealSkipListConfig{
		Calls: 200, RecordsPer: 100, Initial: 100_000, Workers: 4, Seed: 11,
	}
	b.Run("engine=BATCHER", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.RealSkipListBatcher(cfg)
		}
	})
	b.Run("engine=SEQ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.RealSkipListSeq(cfg)
		}
	})
	b.Run("engine=mutex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.RealSkipListMutex(cfg)
		}
	})
	b.Run("engine=flatcombining", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.RealSkipListFlatCombining(cfg)
		}
	})
}

// --- EX-counter: batched counter vs trivial atomic counter ---------------

func BenchmarkCounterSim(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				g := sim.NewGraph(1 << 13)
				ops := make([]*sim.Op, 1000)
				for j := range ops {
					ops[j] = &sim.Op{Records: 32}
				}
				g.ForkJoinDS(ops, 1, 1)
				last = sim.NewSim(sim.Config{Workers: p, Seed: 7}, simds.Counter{}).Run(g)
			}
			b.ReportMetric(float64(last.Makespan), "timesteps")
		})
	}
}

func BenchmarkCounterRealBatched(b *testing.B) {
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 3})
	for i := 0; i < b.N; i++ {
		ctr := counter.New(0)
		rt.Run(func(c *batcher.Ctx) {
			c.For(0, 10_000, 1, func(cc *batcher.Ctx, j int) { ctr.Increment(cc, 1) })
		})
	}
}

func BenchmarkCounterRealAtomic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RealCounterAtomic(4, 10_000)
	}
}

// --- EX-tree: batched 2-3 tree scaling (simulated + real) ----------------

func BenchmarkTreeSim(b *testing.B) {
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				g := sim.NewGraph(1 << 13)
				ops := make([]*sim.Op, 2000)
				for j := range ops {
					ops[j] = &sim.Op{}
				}
				g.ForkJoinDS(ops, 1, 1)
				last = sim.NewSim(sim.Config{Workers: p, Seed: 9},
					&simds.Tree{Size: 1 << 20}).Run(g)
			}
			b.ReportMetric(float64(last.Makespan), "timesteps")
		})
	}
}

func BenchmarkTreeRealBulkInsert(b *testing.B) {
	r := rng.New(13)
	keys := make([]int64, 20_000)
	for i := range keys {
		keys[i] = r.Int63()
	}
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 13})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tree23.NewBatched()
		rt.Run(func(c *batcher.Ctx) {
			c.For(0, len(keys), 8, func(cc *batcher.Ctx, j int) {
				t.Insert(cc, keys[j], 0)
			})
		})
	}
}

func BenchmarkTreeSeqInsert(b *testing.B) {
	r := rng.New(13)
	keys := make([]int64, 20_000)
	for i := range keys {
		keys[i] = r.Int63()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tree23.NewTree()
		for _, k := range keys {
			t.Insert(k, 0)
		}
	}
}

// --- EX-stack: amortized stack (simulated + real) -------------------------

func BenchmarkStackSim(b *testing.B) {
	for _, p := range []int{1, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				g := sim.NewGraph(1 << 13)
				ops := make([]*sim.Op, 1000)
				for j := range ops {
					ops[j] = &sim.Op{Records: 32}
				}
				g.ForkJoinDS(ops, 1, 1)
				last = sim.NewSim(sim.Config{Workers: p, Seed: 15}, &simds.Stack{}).Run(g)
			}
			b.ReportMetric(float64(last.Makespan), "timesteps")
		})
	}
}

func BenchmarkStackRealPushPop(b *testing.B) {
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 17})
	for i := 0; i < b.N; i++ {
		s := stack.New()
		rt.Run(func(c *batcher.Ctx) {
			c.For(0, 10_000, 1, func(cc *batcher.Ctx, j int) {
				if j%2 == 0 {
					s.Push(cc, int64(j))
				} else {
					s.Pop(cc)
				}
			})
		})
	}
}

// --- THM1: bound-validation sweep -----------------------------------------

func BenchmarkBoundFit(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		res := experiments.BoundFit(19)
		r2 = res.Fit.R2
	}
	b.ReportMetric(r2, "R2")
}

// --- ABL: ablations ---------------------------------------------------------

func BenchmarkAblateSteal(b *testing.B) {
	for _, pc := range []struct {
		name string
		pol  sim.StealPolicy
	}{
		{"alternating", sim.PolicyAlternating},
		{"core-only", sim.PolicyCoreOnly},
		{"batch-only", sim.PolicyBatchOnly},
		{"random", sim.PolicyRandom},
	} {
		b.Run("policy="+pc.name, func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				g := sim.NewGraph(1 << 13)
				ops := make([]*sim.Op, 1000)
				for j := range ops {
					ops[j] = &sim.Op{Records: 4}
				}
				g.ForkJoinDS(ops, 20, 20)
				last = sim.NewSim(sim.Config{Workers: 8, Seed: 21, Policy: pc.pol},
					&simds.SkipList{Size: 1 << 20}).Run(g)
			}
			b.ReportMetric(float64(last.Makespan), "timesteps")
		})
	}
}

func BenchmarkAblateBatchCap(b *testing.B) {
	for _, cap := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				g := sim.NewGraph(1 << 13)
				ops := make([]*sim.Op, 1000)
				for j := range ops {
					ops[j] = &sim.Op{Records: 4}
				}
				g.ForkJoinDS(ops, 20, 20)
				last = sim.NewSim(sim.Config{Workers: 8, Seed: 23, BatchCap: cap},
					&simds.SkipList{Size: 1 << 20}).Run(g)
			}
			b.ReportMetric(float64(last.Makespan), "timesteps")
		})
	}
}

func BenchmarkAblateLaunchThreshold(b *testing.B) {
	for _, th := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				g := sim.NewGraph(1 << 13)
				ops := make([]*sim.Op, 1000)
				for j := range ops {
					ops[j] = &sim.Op{Records: 4}
				}
				g.ForkJoinDS(ops, 20, 20)
				last = sim.NewSim(sim.Config{Workers: 8, Seed: 25, LaunchThreshold: th},
					&simds.SkipList{Size: 1 << 20}).Run(g)
			}
			b.ReportMetric(float64(last.Makespan), "timesteps")
		})
	}
}

// --- runtime micro-benchmarks ----------------------------------------------

func BenchmarkRuntimeForkJoin(b *testing.B) {
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 27})
	for i := 0; i < b.N; i++ {
		rt.Run(func(c *batcher.Ctx) {
			c.For(0, 10_000, 64, func(*batcher.Ctx, int) {})
		})
	}
}

func BenchmarkBatchifyRoundTrip(b *testing.B) {
	rt := batcher.New(batcher.Config{Workers: 1, Seed: 29})
	ctr := counter.New(0)
	b.ResetTimer()
	rt.Run(func(c *batcher.Ctx) {
		for i := 0; i < b.N; i++ {
			ctr.Increment(c, 1)
		}
	})
}

func BenchmarkHashMapRealMixed(b *testing.B) {
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 35})
	for i := 0; i < b.N; i++ {
		m := hashmap.NewBatched(35)
		rt.Run(func(c *batcher.Ctx) {
			c.For(0, 10_000, 1, func(cc *batcher.Ctx, j int) {
				k := int64(j % 2000)
				switch j % 3 {
				case 0:
					m.Put(cc, k, int64(j))
				case 1:
					m.Get(cc, k)
				default:
					m.Del(cc, k)
				}
			})
		})
	}
}

func BenchmarkOMListInsertChain(b *testing.B) {
	rt := batcher.New(batcher.Config{Workers: 2, Seed: 37})
	for i := 0; i < b.N; i++ {
		l := omlist.NewBatched()
		rt.Run(func(c *batcher.Ctx) {
			prev := omlist.Elem(0)
			for j := 0; j < 5_000; j++ {
				prev = l.InsertAfter(c, prev)
			}
		})
	}
}

func BenchmarkServerThroughput(b *testing.B) {
	for _, clients := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			srv := batcher.NewServer(batcher.ServerConfig{Workers: 4, Seed: 39})
			ctr := counter.New(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for g := 0; g < clients; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for j := 0; j < 1000/clients+1; j++ {
							srv.Invoke(&batcher.OpRecord{DS: ctr, Kind: counter.OpIncrement, Val: 1})
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			srv.Close()
		})
	}
}

func BenchmarkMutexSkipListBaseline(b *testing.B) {
	m := concurrent.NewMutexSkipList(31)
	r := rng.New(31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Insert(r.Int63(), 0)
	}
}

func BenchmarkSeqSkipListBaseline(b *testing.B) {
	l := skiplist.NewList(33)
	r := rng.New(33)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(r.Int63(), 0)
	}
}
