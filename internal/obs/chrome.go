package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// Chrome trace_event export: a Snapshot rendered as the JSON object
// format chrome://tracing and Perfetto load directly. One track (tid)
// per ring; batch executions appear as complete ("X") spans with their
// size in args, parks as begin/end ("B"/"E") spans, and everything else
// as instant ("i") events. Timestamps are microseconds, as the format
// requires.
//
// Events stream to w one at a time through a buffered writer — the
// export never materializes the whole document, so a large ring
// snapshot costs O(1) memory beyond the snapshot itself and the first
// bytes reach the client (a live /trace scrape) immediately.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeWriter streams one trace document: header, comma-separated
// events, footer. The first write error sticks and suppresses the rest.
type chromeWriter struct {
	bw    *bufio.Writer
	enc   *json.Encoder
	wrote bool
	err   error
}

func (cw *chromeWriter) event(ce *chromeEvent) {
	if cw.err != nil {
		return
	}
	if cw.wrote {
		if _, cw.err = cw.bw.WriteString(","); cw.err != nil {
			return
		}
	}
	cw.wrote = true
	// Encoder appends a newline after each value, giving one event per
	// line — valid JSON and friendlier to diffing than a single line.
	cw.err = cw.enc.Encode(ce)
}

// WriteChromeTrace renders events (as returned by Tracer.Snapshot) to w
// in Chrome trace_event JSON object format, streaming event by event.
func WriteChromeTrace(w io.Writer, events []Event) error {
	cw := &chromeWriter{bw: bufio.NewWriter(w)}
	cw.enc = json.NewEncoder(cw.bw)
	if _, err := cw.bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[` + "\n"); err != nil {
		return err
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	// Parks emit B/E pairs; a wake whose park was overwritten by ring
	// wraparound must not emit an unmatched E (it would corrupt the
	// track's span stack), so track open parks per ring.
	openPark := make(map[int32]bool)
	for i := range events {
		e := &events[i]
		ce := chromeEvent{Name: e.Kind.String(), TS: us(e.TS), TID: e.Ring}
		switch e.Kind {
		case EvBatchLand:
			// Render the batch as a span covering its execution.
			ce.Name = "batch"
			ce.Ph = "X"
			ce.TS = us(e.TS - e.B)
			ce.Dur = us(e.B)
			ce.Args = map[string]any{"size": e.A, "dur_ns": e.B}
		case EvPark:
			ce.Name = "parked"
			ce.Ph = "B"
			openPark[e.Ring] = true
		case EvWake:
			if !openPark[e.Ring] {
				continue
			}
			openPark[e.Ring] = false
			ce.Name = "parked"
			ce.Ph = "E"
		case EvSteal:
			ce.Ph = "i"
			ce.S = "t"
			which := "core"
			if e.B != 0 {
				which = "batch"
			}
			ce.Args = map[string]any{"victim": e.A, "deque": which}
		case EvPumpAdmit:
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"queue_depth": e.A}
		case EvPumpReject:
			ce.Ph = "i"
			ce.S = "t"
			why := "saturated"
			if e.A == 2 {
				why = "closed"
			}
			ce.Args = map[string]any{"reason": why}
		case EvPanicContained:
			ce.Ph = "i"
			ce.S = "g" // global-scope instant: draw it loud
			ce.Args = map[string]any{"group": e.A}
		default: // EvBatchLaunch and any future instants
			ce.Ph = "i"
			ce.S = "t"
		}
		cw.event(&ce)
	}
	// Close any park left open at snapshot time so spans balance.
	var last float64
	if n := len(events); n > 0 {
		last = us(events[n-1].TS)
	}
	for tid, open := range openPark {
		if open {
			cw.event(&chromeEvent{Name: "parked", Ph: "E", TS: last, TID: tid})
		}
	}
	if cw.err != nil {
		return cw.err
	}
	if _, err := cw.bw.WriteString("]}\n"); err != nil {
		return err
	}
	return cw.bw.Flush()
}
