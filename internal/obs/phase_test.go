package obs

import "testing"

func TestNowMonotonic(t *testing.T) {
	prev := Now()
	for i := 0; i < 1000; i++ {
		n := Now()
		if n < prev {
			t.Fatalf("Now went backwards: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestPhaseDurations(t *testing.T) {
	stamps := [NumPhases]int64{100, 150, 170, 200, 260, 300}
	want := [NumPhases - 1]int64{50, 20, 30, 60, 40}
	if got := PhaseDurations(stamps); got != want {
		t.Fatalf("durations = %v, want %v", got, want)
	}

	// Sum of durations telescopes to end-to-end when all stamps are in
	// order — the invariant the server-side phase-sum test relies on.
	var sum int64
	for _, d := range PhaseDurations(stamps) {
		sum += d
	}
	if sum != stamps[PhaseDone]-stamps[PhaseRead] {
		t.Fatalf("durations sum %d != Done-Read %d", sum, stamps[PhaseDone]-stamps[PhaseRead])
	}
}

func TestPhaseDurationsClampsStaleSlots(t *testing.T) {
	// A reused record can carry stale (larger) stamps in slots the
	// current op never wrote; the negative gaps must clamp to zero, not
	// poison the histograms.
	stamps := [NumPhases]int64{0, 900, 100, 200, 250, 260}
	got := PhaseDurations(stamps)
	want := [NumPhases - 1]int64{900, 0, 100, 50, 10}
	if got != want {
		t.Fatalf("durations = %v, want %v", got, want)
	}
	for i, d := range got {
		if d < 0 {
			t.Fatalf("duration %d negative: %d", i, d)
		}
	}
}

func TestBatchDelay(t *testing.T) {
	var stamps [NumPhases]int64
	stamps[PhasePending] = 1000
	stamps[PhaseLand] = 4500
	if got := BatchDelay(stamps); got != 3500 {
		t.Fatalf("delay = %d, want 3500", got)
	}
	stamps[PhaseLand] = 500 // stale slot from a reused record
	if got := BatchDelay(stamps); got != 0 {
		t.Fatalf("out-of-order delay = %d, want 0", got)
	}
	if got := BatchDelay([NumPhases]int64{}); got != 0 {
		t.Fatalf("zero-vector delay = %d, want 0", got)
	}
}
