// Package queue implements a batched FIFO queue: a circular array with
// table doubling, the FIFO sibling of the paper's amortized LIFO stack
// example (Section 3). A batch runs its ENQUEUE phase then its DEQUEUE
// phase; both phases are parallel loops over disjoint slots, and resizes
// rebuild the ring in parallel. The amortized profile matches the
// stack's: Θ(x) work per size-x batch, occasional Θ(n) rebuild batches
// whose dags have logarithmic span, hence s(n) = O(lg P) under
// Theorem 1's amortized span definition.
package queue

import "batcher/internal/sched"

// Operation kinds.
const (
	// OpEnqueue appends Val.
	OpEnqueue sched.OpKind = iota
	// OpDequeue removes the oldest element into Res; Ok reports
	// non-emptiness.
	OpDequeue
)

const minCap = 8

// Batched is the implicitly batched FIFO queue.
type Batched struct {
	buf  []int64
	head int // index of the oldest element
	size int
	// Resizes counts ring rebuilds.
	Resizes int
}

var _ sched.Batched = (*Batched)(nil)

// New returns an empty batched queue.
func New() *Batched { return &Batched{buf: make([]int64, minCap)} }

// Enqueue appends v. Core tasks only.
func (b *Batched) Enqueue(c *sched.Ctx, v int64) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpEnqueue, Val: v}
	c.Batchify(op)
}

// Dequeue removes and returns the oldest element; ok is false if the
// queue was empty at this operation's turn in its batch. Core tasks
// only.
func (b *Batched) Dequeue(c *sched.Ctx) (v int64, ok bool) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpDequeue}
	c.Batchify(op)
	return op.Res, op.Ok
}

// Len returns the element count. Quiescent only.
func (b *Batched) Len() int { return b.size }

// RunBatch implements sched.Batched: all enqueues (in compaction order),
// then all dequeues.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	enqs := make([]*sched.OpRecord, 0, len(ops))
	deqs := make([]*sched.OpRecord, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case OpEnqueue:
			enqs = append(enqs, op)
		case OpDequeue:
			deqs = append(deqs, op)
		default:
			panic("queue: unknown op kind")
		}
	}

	// ENQUEUE phase: grow if needed, then write disjoint slots in
	// parallel.
	if b.size+len(enqs) > len(b.buf) {
		b.resize(c, b.size+len(enqs))
	}
	n, capacity := b.size, len(b.buf)
	c.For(0, len(enqs), 64, func(_ *sched.Ctx, i int) {
		b.buf[(b.head+n+i)%capacity] = enqs[i].Val
		enqs[i].Ok = true
	})
	b.size += len(enqs)

	// DEQUEUE phase: read disjoint slots from the head in parallel.
	avail := b.size
	c.For(0, len(deqs), 64, func(_ *sched.Ctx, i int) {
		if i < avail {
			deqs[i].Res = b.buf[(b.head+i)%capacity]
			deqs[i].Ok = true
		} else {
			deqs[i].Res = 0
			deqs[i].Ok = false
		}
	})
	taken := len(deqs)
	if taken > avail {
		taken = avail
	}
	b.head = (b.head + taken) % capacity
	b.size -= taken

	// Shrink when under-occupied.
	if len(b.buf) > minCap && b.size < len(b.buf)/4 {
		b.resize(c, b.size)
	}
}

// resize rebuilds the ring with the oldest element at index 0, at the
// smallest power-of-two capacity holding need with slack. Parallel copy:
// Θ(size) work, O(lg size) span.
func (b *Batched) resize(c *sched.Ctx, need int) {
	capacity := minCap
	for capacity < 2*need {
		capacity *= 2
	}
	fresh := make([]int64, capacity)
	oldBuf, oldCap, oldHead := b.buf, len(b.buf), b.head
	c.For(0, b.size, 512, func(_ *sched.Ctx, i int) {
		fresh[i] = oldBuf[(oldHead+i)%oldCap]
	})
	b.buf = fresh
	b.head = 0
	b.Resizes++
}

// Seq is the sequential queue baseline.
type Seq struct{ xs []int64 }

// NewSeq returns an empty sequential queue.
func NewSeq() *Seq { return &Seq{} }

// Enqueue appends v.
func (s *Seq) Enqueue(v int64) { s.xs = append(s.xs, v) }

// Dequeue removes the oldest element.
func (s *Seq) Dequeue() (int64, bool) {
	if len(s.xs) == 0 {
		return 0, false
	}
	v := s.xs[0]
	s.xs = s.xs[1:]
	return v, true
}

// Len returns the element count.
func (s *Seq) Len() int { return len(s.xs) }
