package tree23

import (
	"sort"
	"testing"
	"testing/quick"

	"batcher/internal/rng"
)

func TestTreeInsertContains(t *testing.T) {
	tr := NewTree()
	if !tr.Insert(5, 50) {
		t.Fatal("first insert not new")
	}
	if tr.Insert(5, 55) {
		t.Fatal("duplicate insert reported new")
	}
	v, ok := tr.Contains(5)
	if !ok || v != 55 {
		t.Fatalf("Contains(5) = %d,%v", v, ok)
	}
	if _, ok := tr.Contains(4); ok {
		t.Fatal("absent key found")
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeAscendingInserts(t *testing.T) {
	tr := NewTree()
	const n = 10_000
	for i := int64(0); i < n; i++ {
		if !tr.Insert(i, i*2) {
			t.Fatalf("Insert(%d) not new", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		v, ok := tr.Contains(i)
		if !ok || v != i*2 {
			t.Fatalf("Contains(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestTreeDescendingInserts(t *testing.T) {
	tr := NewTree()
	for i := int64(999); i >= 0; i-- {
		tr.Insert(i, i)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := tr.Keys()
	for i := range keys {
		if keys[i] != int64(i) {
			t.Fatalf("Keys[%d] = %d", i, keys[i])
		}
	}
}

func TestTreeRandomAgainstMap(t *testing.T) {
	tr := NewTree()
	m := map[int64]int64{}
	r := rng.New(3)
	for i := 0; i < 20_000; i++ {
		k := r.Int63() % 5000
		switch r.Intn(3) {
		case 0:
			_, existed := m[k]
			if tr.Insert(k, int64(i)) == existed {
				t.Fatalf("op %d: Insert(%d) mismatch", i, k)
			}
			m[k] = int64(i)
		case 1:
			wv, wok := m[k]
			gv, gok := tr.Contains(k)
			if gok != wok || (wok && gv != wv) {
				t.Fatalf("op %d: Contains(%d) = %d,%v want %d,%v", i, k, gv, gok, wv, wok)
			}
		case 2:
			_, existed := m[k]
			if tr.Delete(k) != existed {
				t.Fatalf("op %d: Delete(%d) mismatch", i, k)
			}
			delete(m, k)
		}
	}
	if tr.Len() != len(m) {
		t.Fatalf("Len = %d want %d", tr.Len(), len(m))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDeleteAll(t *testing.T) {
	tr := NewTree()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	for i := int64(0); i < 1000; i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatal("tree not empty")
	}
	if tr.Delete(0) {
		t.Fatal("Delete on empty succeeded")
	}
}

func TestTreeMin(t *testing.T) {
	tr := NewTree()
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	tr.Insert(7, 70)
	tr.Insert(3, 30)
	tr.Insert(9, 90)
	k, v, ok := tr.Min()
	if !ok || k != 3 || v != 30 {
		t.Fatalf("Min = %d,%d,%v", k, v, ok)
	}
}

func TestTreeKeysSorted(t *testing.T) {
	tr := NewTree()
	r := rng.New(5)
	for i := 0; i < 5000; i++ {
		tr.Insert(r.Int63()%100000, 0)
	}
	keys := tr.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Keys not sorted")
	}
	if len(keys) != tr.Len() {
		t.Fatalf("Keys len %d vs size %d", len(keys), tr.Len())
	}
}

func TestQuickTreeAgainstMap(t *testing.T) {
	f := func(ins []int16, dels []int16) bool {
		tr := NewTree()
		m := map[int64]int64{}
		for i, k16 := range ins {
			k := int64(k16)
			newIns := tr.Insert(k, int64(i))
			if _, existed := m[k]; newIns == existed {
				return false
			}
			m[k] = int64(i)
		}
		for _, k16 := range dels {
			k := int64(k16)
			_, existed := m[k]
			if tr.Delete(k) != existed {
				return false
			}
			delete(m, k)
		}
		if tr.Len() != len(m) || tr.checkInvariants() != nil {
			return false
		}
		for k, v := range m {
			got, ok := tr.Contains(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- split/join unit tests -------------------------------------------------

func buildTree(keys ...int64) *Tree {
	tr := NewTree()
	for _, k := range keys {
		tr.Insert(k, k*10)
	}
	return tr
}

func TestSplitBasic(t *testing.T) {
	for _, at := range []int64{-1, 0, 5, 9, 10, 50, 99, 100} {
		tr := NewTree()
		for i := int64(0); i < 100; i++ {
			tr.Insert(i, i)
		}
		l, r, found, _ := split(tr.root, at)
		wantFound := at >= 0 && at < 100
		if found != wantFound {
			t.Fatalf("split at %d: found=%v", at, found)
		}
		lt := &Tree{root: l}
		rt := &Tree{root: r}
		for _, k := range lt.Keys() {
			if k >= at {
				t.Fatalf("split at %d: left has %d", at, k)
			}
		}
		for _, k := range rt.Keys() {
			if k <= at {
				t.Fatalf("split at %d: right has %d", at, k)
			}
		}
		total := len(lt.Keys()) + len(rt.Keys())
		want := 100
		if wantFound {
			want = 99
		}
		if total != want {
			t.Fatalf("split at %d: %d keys total, want %d", at, total, want)
		}
		lt.size, rt.size = len(lt.Keys()), len(rt.Keys())
		if err := lt.checkInvariants(); err != nil {
			t.Fatalf("left: %v", err)
		}
		if err := rt.checkInvariants(); err != nil {
			t.Fatalf("right: %v", err)
		}
	}
}

func TestJoinHeights(t *testing.T) {
	// Join trees of very different sizes both ways.
	for _, sizes := range [][2]int{{1, 1000}, {1000, 1}, {0, 500}, {500, 0}, {256, 256}} {
		nl, nr := sizes[0], sizes[1]
		lt := NewTree()
		for i := 0; i < nl; i++ {
			lt.Insert(int64(i), 0)
		}
		rt := NewTree()
		for i := 0; i < nr; i++ {
			rt.Insert(int64(10000+i), 0)
		}
		joined := join(lt.root, kv{5000, 0}, rt.root)
		jt := &Tree{root: joined, size: nl + nr + 1}
		if err := jt.checkInvariants(); err != nil {
			t.Fatalf("sizes %v: %v", sizes, err)
		}
		keys := jt.Keys()
		if len(keys) != nl+nr+1 {
			t.Fatalf("sizes %v: %d keys", sizes, len(keys))
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Fatalf("sizes %v: unsorted", sizes)
		}
	}
}

func TestJoin2(t *testing.T) {
	lt := buildTree(1, 2, 3, 4, 5)
	rt := buildTree(10, 11, 12)
	j := join2(lt.root, rt.root)
	jt := &Tree{root: j, size: 8}
	if err := jt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 5, 10, 11, 12}
	got := jt.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if join2(nil, nil) != nil {
		t.Fatal("join2(nil,nil) != nil")
	}
}

func TestSplitLast(t *testing.T) {
	tr := buildTree(1, 2, 3, 4, 5, 6, 7)
	root, last := splitLast(tr.root)
	if last.k != 7 {
		t.Fatalf("last = %d", last.k)
	}
	rem := &Tree{root: root, size: 6}
	if err := rem.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := rem.Keys(); len(got) != 6 || got[5] != 6 {
		t.Fatalf("remaining keys %v", got)
	}
}

func TestQuickSplitJoinRoundTrip(t *testing.T) {
	f := func(keys []int16, at int16) bool {
		tr := NewTree()
		set := map[int64]bool{}
		for _, k16 := range keys {
			k := int64(k16)
			tr.Insert(k, k)
			set[k] = true
		}
		l, r, found, _ := split(tr.root, int64(at))
		if found != set[int64(at)] {
			return false
		}
		// Rejoin (re-adding the split key if it was present).
		var root *node
		if found {
			root = join(l, kv{int64(at), int64(at)}, r)
		} else {
			root = join2(l, r)
		}
		jt := &Tree{root: root, size: len(set)}
		if jt.checkInvariants() != nil {
			return false
		}
		got := jt.Keys()
		if len(got) != len(set) {
			return false
		}
		for _, k := range got {
			if !set[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
