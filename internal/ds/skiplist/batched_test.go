package skiplist

import (
	"sort"
	"testing"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func runOn(p int, f func(c *sched.Ctx)) {
	rt := sched.New(sched.Config{Workers: p, Seed: 1})
	rt.Run(f)
}

func TestBatchedSingleInsert(t *testing.T) {
	b := NewBatched(1)
	runOn(2, func(c *sched.Ctx) {
		if !b.Insert(c, 7, 70) {
			t.Error("insert not new")
		}
		if b.Insert(c, 7, 71) {
			t.Error("duplicate insert reported new")
		}
		v, ok := b.Contains(c, 7)
		if !ok || v != 71 {
			t.Errorf("Contains = %d,%v", v, ok)
		}
	})
	if b.List().Len() != 1 {
		t.Fatalf("Len = %d", b.List().Len())
	}
}

func TestBatchedParallelInserts(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		b := NewBatched(2)
		const n = 2000
		runOn(p, func(c *sched.Ctx) {
			c.For(0, n, 1, func(cc *sched.Ctx, i int) {
				b.Insert(cc, int64(i*7%n), int64(i))
			})
		})
		keys := b.List().Keys()
		// i*7 mod n: gcd(7, 2000) = 1, so all n keys distinct.
		if len(keys) != n {
			t.Fatalf("P=%d: %d keys, want %d", p, len(keys), n)
		}
		if err := b.List().checkInvariants(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestBatchedDuplicateKeysWithinRun(t *testing.T) {
	b := NewBatched(3)
	const n = 1000
	newCount := 0
	results := make([]bool, n)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			results[i] = b.Insert(cc, int64(i%50), int64(i))
		})
	})
	for _, r := range results {
		if r {
			newCount++
		}
	}
	if newCount != 50 {
		t.Fatalf("%d inserts reported new, want 50", newCount)
	}
	if b.List().Len() != 50 {
		t.Fatalf("Len = %d, want 50", b.List().Len())
	}
}

func TestBatchedMatchesSequentialStructure(t *testing.T) {
	// Same seed + same key set => identical tower structure, so Keys()
	// and invariants must match a sequential build exactly.
	seq := NewList(5)
	bat := NewBatched(5)
	r := rng.New(55)
	keys := make([]int64, 3000)
	for i := range keys {
		keys[i] = r.Int63() % 10000
	}
	for _, k := range keys {
		seq.Insert(k, k)
	}
	runOn(4, func(c *sched.Ctx) {
		c.For(0, len(keys), 1, func(cc *sched.Ctx, i int) {
			bat.Insert(cc, keys[i], keys[i])
		})
	})
	sk, bk := seq.Keys(), bat.List().Keys()
	if len(sk) != len(bk) {
		t.Fatalf("len %d vs %d", len(sk), len(bk))
	}
	for i := range sk {
		if sk[i] != bk[i] {
			t.Fatalf("key %d: %d vs %d", i, sk[i], bk[i])
		}
	}
	if err := bat.List().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedInsertMany(t *testing.T) {
	b := NewBatched(7)
	const groups = 50
	const per = 100
	newTotals := make([]int, groups)
	runOn(4, func(c *sched.Ctx) {
		c.For(0, groups, 1, func(cc *sched.Ctx, g int) {
			keys := make([]int64, per)
			for i := range keys {
				keys[i] = int64(g*per + i)
			}
			newTotals[g] = b.InsertMany(cc, keys, 1)
		})
	})
	total := 0
	for _, n := range newTotals {
		total += n
	}
	if total != groups*per {
		t.Fatalf("new inserts = %d, want %d", total, groups*per)
	}
	if b.List().Len() != groups*per {
		t.Fatalf("Len = %d", b.List().Len())
	}
	if err := b.List().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedInsertManyOverlapping(t *testing.T) {
	b := NewBatched(8)
	runOn(4, func(c *sched.Ctx) {
		c.For(0, 40, 1, func(cc *sched.Ctx, g int) {
			keys := make([]int64, 25)
			for i := range keys {
				keys[i] = int64(i) // all groups share the same 25 keys
			}
			b.InsertMany(cc, keys, int64(g))
		})
	})
	if b.List().Len() != 25 {
		t.Fatalf("Len = %d, want 25", b.List().Len())
	}
}

func TestBatchedDeletes(t *testing.T) {
	b := NewBatched(9)
	const n = 1000
	runOn(4, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Insert(cc, int64(i), 0) })
	})
	deleted := make([]bool, n)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			if i%2 == 0 {
				deleted[i] = b.Delete(cc, int64(i))
			}
		})
	})
	for i := 0; i < n; i += 2 {
		if !deleted[i] {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if b.List().Len() != n/2 {
		t.Fatalf("Len = %d, want %d", b.List().Len(), n/2)
	}
	for _, k := range b.List().Keys() {
		if k%2 == 0 {
			t.Fatalf("even key %d survived", k)
		}
	}
	if err := b.List().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedDeleteAdjacentRuns(t *testing.T) {
	// Deleting contiguous key ranges stresses the descending-order splice
	// correctness (predecessor-of-predecessor chains).
	b := NewBatched(10)
	const n = 512
	runOn(4, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Insert(cc, int64(i), 0) })
	})
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			if i >= 100 && i < 400 {
				b.Delete(cc, int64(i))
			}
		})
	})
	keys := b.List().Keys()
	if len(keys) != n-300 {
		t.Fatalf("Len = %d, want %d", len(keys), n-300)
	}
	for _, k := range keys {
		if k >= 100 && k < 400 {
			t.Fatalf("key %d survived range delete", k)
		}
	}
	if err := b.List().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedMixedOpsAgainstOracle(t *testing.T) {
	// Sequential dependency chain (m = n) forces singleton batches, so the
	// batched list must track a map oracle exactly, op by op.
	b := NewBatched(11)
	m := map[int64]int64{}
	r := rng.New(77)
	runOn(4, func(c *sched.Ctx) {
		for i := 0; i < 3000; i++ {
			k := r.Int63() % 300
			switch r.Intn(3) {
			case 0:
				_, existed := m[k]
				if b.Insert(c, k, int64(i)) == existed {
					t.Fatalf("op %d: insert(%d) new-flag mismatch", i, k)
				}
				m[k] = int64(i)
			case 1:
				wantV, wantOK := m[k]
				gotV, gotOK := b.Contains(c, k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("op %d: contains(%d) = %d,%v want %d,%v", i, k, gotV, gotOK, wantV, wantOK)
				}
			case 2:
				_, existed := m[k]
				if b.Delete(c, k) != existed {
					t.Fatalf("op %d: delete(%d) mismatch", i, k)
				}
				delete(m, k)
			}
		}
	})
	if b.List().Len() != len(m) {
		t.Fatalf("Len = %d, want %d", b.List().Len(), len(m))
	}
	var mk []int64
	for k := range m {
		mk = append(mk, k)
	}
	sort.Slice(mk, func(i, j int) bool { return mk[i] < mk[j] })
	lk := b.List().Keys()
	for i := range mk {
		if lk[i] != mk[i] {
			t.Fatalf("key %d: %d vs %d", i, lk[i], mk[i])
		}
	}
}

func TestBatchedConcurrentMixedConservation(t *testing.T) {
	// Fully parallel mixed ops: we cannot predict interleaving, but the
	// final key set must equal {inserted keys} minus {successfully
	// deleted keys}, and invariants must hold.
	b := NewBatched(12)
	const n = 1200
	delOK := make([]bool, n)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			k := int64(i % 200)
			switch i % 3 {
			case 0:
				b.Insert(cc, k, int64(i))
			case 1:
				b.Contains(cc, k)
			case 2:
				delOK[i] = b.Delete(cc, k)
			}
		})
	})
	if err := b.List().checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range b.List().Keys() {
		if k < 0 || k >= 200 {
			t.Fatalf("impossible key %d", k)
		}
	}
}
