package server

import (
	"encoding/json"
	"time"
)

// Stats is the server's live metrics document, served as the payload of
// a DSStats request. Batching figures come from the runtime's live
// counters (sched.Runtime.LiveBatchStats), which — unlike
// Runtime.Metrics — are readable while the pump is serving.
type Stats struct {
	// Workers is P.
	Workers int `json:"workers"`
	// UptimeSec is seconds since Start.
	UptimeSec float64 `json:"uptime_sec"`
	// Conns is the current connection count.
	Conns int64 `json:"conns"`
	// Accepted, Rejected, and Completed count operations admitted into
	// the pump, refused (bad op, saturation cap, shutdown), and
	// responded to. Immediate counts the subset of Completed that never
	// entered the pump (stats reads and rejections), so the books
	// balance as completed == accepted + immediate once the server is
	// quiescent. Failed counts accepted operations whose batch group
	// panicked — they completed, with FlagErr.
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Immediate int64 `json:"immediate"`
	Failed    int64 `json:"failed"`
	// DecodeErrors counts connections dropped for malformed frames
	// (oversized length prefixes, short request bodies).
	DecodeErrors int64 `json:"decode_errors"`
	// Evictions counts connections torn down for deadline or protocol
	// violations (idle, write stall, decode error, write error) — not
	// normal closes or shutdown drains.
	Evictions int64 `json:"evictions"`
	// ReadSyscalls and WriteSyscalls count socket read/write syscalls
	// issued by the reactor loops. Their ratio to BatchedOps is the
	// edge's syscall amortization: well under 1 syscall/op when clients
	// pipeline, because one read carves many frames and one write
	// carries many coalesced responses.
	ReadSyscalls  int64 `json:"read_syscalls"`
	WriteSyscalls int64 `json:"write_syscalls"`
	// ReactorLoops is the reactor pool size (reader/writer loop pairs).
	ReactorLoops int `json:"reactor_loops"`
	// BatchPanics counts batch groups whose BOP panicked and was
	// contained (each may have failed several operations).
	BatchPanics int64 `json:"batch_panics"`
	// OpsPerSec is batched throughput — Completed minus Immediate,
	// averaged over the uptime — so stats polling and rejected garbage
	// do not inflate the figure of merit.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Batches and BatchedOps count executed batches and the operations
	// they carried; MeanBatch is their ratio — the achieved batch size,
	// the figure of merit for edge batching.
	Batches    int64   `json:"batches"`
	BatchedOps int64   `json:"batched_ops"`
	MeanBatch  float64 `json:"mean_batch"`
	// QueueDepth is the pump ingress queue's current depth.
	QueueDepth int `json:"queue_depth"`
}

// Snapshot assembles the current Stats. Safe at any time, including
// while serving.
func (s *Server) Snapshot() Stats {
	up := time.Since(s.start).Seconds()
	batches, ops := s.rt.LiveBatchStats()
	st := Stats{
		Workers:       s.rt.Workers(),
		UptimeSec:     up,
		Conns:         s.curConns.Load(),
		Accepted:      s.accepted.Load(),
		Rejected:      s.rejected.Load(),
		Completed:     s.completed.Load(),
		Immediate:     s.immediate.Load(),
		Failed:        s.failed.Load(),
		DecodeErrors:  s.decodeErr.Load(),
		Evictions:     s.evictions.Load(),
		ReadSyscalls:  s.readSys.Load(),
		WriteSyscalls: s.writeSys.Load(),
		ReactorLoops:  len(s.rloops),
		BatchPanics:   s.rt.BatchPanics(),
		Batches:       batches,
		BatchedOps:    ops,
		QueueDepth:    s.pump.Depth(),
	}
	if up > 0 {
		st.OpsPerSec = float64(st.Completed-st.Immediate) / up
	}
	if batches > 0 {
		st.MeanBatch = float64(ops) / float64(batches)
	}
	return st
}

// statsJSON renders Snapshot for the wire.
func (s *Server) statsJSON() []byte {
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		// A fixed struct of numbers cannot fail to marshal.
		panic(err)
	}
	return b
}
