package sched

import (
	"sync/atomic"
	"testing"
)

func TestRunRoot(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		rt := New(Config{Workers: p, Seed: 1})
		ran := false
		rt.Run(func(c *Ctx) { ran = true })
		if !ran {
			t.Fatalf("P=%d: root did not run", p)
		}
	}
}

func TestRunRepeatedly(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 1})
	var total int64
	for i := 0; i < 20; i++ {
		rt.Run(func(c *Ctx) { atomic.AddInt64(&total, 1) })
	}
	if total != 20 {
		t.Fatalf("total = %d, want 20", total)
	}
}

func TestForkBothRun(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 2})
	var a, b atomic.Int32
	rt.Run(func(c *Ctx) {
		c.Fork(
			func(*Ctx) { a.Add(1) },
			func(*Ctx) { b.Add(1) },
		)
	})
	if a.Load() != 1 || b.Load() != 1 {
		t.Fatalf("a=%d b=%d, want 1 1", a.Load(), b.Load())
	}
}

func TestForkJoinOrdering(t *testing.T) {
	// Fork must not return until both branches complete.
	rt := New(Config{Workers: 4, Seed: 3})
	var done atomic.Int32
	rt.Run(func(c *Ctx) {
		c.Fork(
			func(*Ctx) { done.Add(1) },
			func(*Ctx) { done.Add(1) },
		)
		if done.Load() != 2 {
			t.Errorf("Fork returned with done=%d", done.Load())
		}
	})
}

func TestNestedForkFib(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 4})
	var fib func(c *Ctx, n int) int
	fib = func(c *Ctx, n int) int {
		if n < 2 {
			return n
		}
		var x, y int
		c.Fork(
			func(cc *Ctx) { x = fib(cc, n-1) },
			func(cc *Ctx) { y = fib(cc, n-2) },
		)
		return x + y
	}
	var got int
	rt.Run(func(c *Ctx) { got = fib(c, 18) })
	if got != 2584 {
		t.Fatalf("fib(18) = %d, want 2584", got)
	}
}

func TestForAllIterations(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			rt := New(Config{Workers: p, Seed: 5})
			hits := make([]atomic.Int32, n)
			rt.Run(func(c *Ctx) {
				c.For(0, n, 4, func(_ *Ctx, i int) { hits[i].Add(1) })
			})
			for i := range hits {
				if h := hits[i].Load(); h != 1 {
					t.Fatalf("P=%d n=%d: iteration %d ran %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForGrainVariants(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 6})
	for _, grain := range []int{-1, 0, 1, 13, 1 << 20} {
		var sum atomic.Int64
		rt.Run(func(c *Ctx) {
			c.For(0, 500, grain, func(_ *Ctx, i int) { sum.Add(int64(i)) })
		})
		if sum.Load() != 500*499/2 {
			t.Fatalf("grain=%d: sum = %d", grain, sum.Load())
		}
	}
}

func TestWorkerIDInRange(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 7})
	rt.Run(func(c *Ctx) {
		c.For(0, 100, 1, func(cc *Ctx, i int) {
			if id := cc.WorkerID(); id < 0 || id >= 4 {
				t.Errorf("WorkerID = %d", id)
			}
			if cc.Workers() != 4 {
				t.Errorf("Workers = %d", cc.Workers())
			}
		})
	})
}

func TestMetricsAccumulate(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 8})
	rt.Run(func(c *Ctx) {
		c.For(0, 1000, 1, func(*Ctx, int) {})
	})
	m := rt.Metrics()
	if m.TasksRun == 0 {
		t.Fatal("no tasks recorded")
	}
	rt.ResetMetrics()
	m = rt.Metrics()
	if m.TasksRun != 0 {
		t.Fatalf("TasksRun = %d after reset", m.TasksRun)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	rt := New(Config{})
	if rt.Workers() <= 0 {
		t.Fatalf("Workers = %d", rt.Workers())
	}
}

// --- Batchify tests -------------------------------------------------------

// sumDS is a trivial batched structure: each op adds Val to a running
// total and receives the pre-batch total as its result. It also records
// every batch it sees so tests can inspect batch composition.
type sumDS struct {
	total      int64
	batchSizes []int
	maxBatch   int
	calls      int
}

func (s *sumDS) RunBatch(ctx *Ctx, ops []*OpRecord) {
	s.calls++
	s.batchSizes = append(s.batchSizes, len(ops))
	if len(ops) > s.maxBatch {
		s.maxBatch = len(ops)
	}
	for _, op := range ops {
		op.Res = s.total
		s.total += op.Val
		op.Ok = true
	}
}

func TestBatchifySingleOp(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 9})
	ds := &sumDS{}
	var res int64
	rt.Run(func(c *Ctx) {
		op := &OpRecord{DS: ds, Val: 5}
		c.Batchify(op)
		res = op.Res
		if !op.Ok {
			t.Error("op not marked Ok")
		}
	})
	if ds.total != 5 {
		t.Fatalf("total = %d, want 5", ds.total)
	}
	if res != 0 {
		t.Fatalf("res = %d, want 0", res)
	}
}

func TestBatchifyManyParallelOps(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		rt := New(Config{Workers: p, Seed: 10})
		ds := &sumDS{}
		const n = 500
		rt.Run(func(c *Ctx) {
			c.For(0, n, 1, func(cc *Ctx, i int) {
				op := &OpRecord{DS: ds, Val: 1}
				cc.Batchify(op)
			})
		})
		if ds.total != n {
			t.Fatalf("P=%d: total = %d, want %d", p, ds.total, n)
		}
		if ds.maxBatch > p {
			t.Fatalf("P=%d: Invariant 2 violated: batch of %d ops", p, ds.maxBatch)
		}
		m := rt.Metrics()
		if m.OpsSubmitted != n {
			t.Fatalf("P=%d: OpsSubmitted = %d, want %d", p, m.OpsSubmitted, n)
		}
		if m.BatchedOps != n {
			t.Fatalf("P=%d: BatchedOps = %d, want %d", p, m.BatchedOps, n)
		}
	}
}

func TestBatchifyResultsAreLinearizable(t *testing.T) {
	// Every increment of +1 must observe a distinct prior total, i.e. the
	// results must be a permutation of 0..n-1.
	rt := New(Config{Workers: 8, Seed: 11})
	ds := &sumDS{}
	const n = 300
	results := make([]int64, n)
	rt.Run(func(c *Ctx) {
		c.For(0, n, 1, func(cc *Ctx, i int) {
			op := &OpRecord{DS: ds, Val: 1}
			cc.Batchify(op)
			results[i] = op.Res
		})
	})
	seen := make([]bool, n)
	for i, r := range results {
		if r < 0 || r >= n || seen[r] {
			t.Fatalf("result %d of op %d is not a unique counter value", r, i)
		}
		seen[r] = true
	}
}

func TestBatchifyMultipleStructures(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 12})
	a, b := &sumDS{}, &sumDS{}
	const n = 200
	rt.Run(func(c *Ctx) {
		c.For(0, n, 1, func(cc *Ctx, i int) {
			ds := Batched(a)
			if i%2 == 0 {
				ds = b
			}
			cc.Batchify(&OpRecord{DS: ds, Val: 1})
		})
	})
	if a.total != n/2 || b.total != n/2 {
		t.Fatalf("totals = %d, %d; want %d each", a.total, b.total, n/2)
	}
}

func TestBatchifyFromBatchTaskPanics(t *testing.T) {
	// A batched operation must not access a batched structure. The guard
	// fires before any scheduler state changes, so we can exercise it on
	// a hand-built batch-kind context without corrupting a live run.
	rt := New(Config{Workers: 1, Seed: 13})
	c := &Ctx{w: rt.workers[0], kind: KindBatch}
	defer func() {
		if recover() == nil {
			t.Fatal("nested Batchify from a batch task did not panic")
		}
	}()
	c.Batchify(&OpRecord{DS: &sumDS{}, Val: 1})
}

func TestBatchifyNilDSPanics(t *testing.T) {
	rt := New(Config{Workers: 1, Seed: 14})
	var panicked bool
	rt.Run(func(c *Ctx) {
		defer func() { panicked = recover() != nil }()
		c.Batchify(&OpRecord{})
	})
	if !panicked {
		t.Fatal("Batchify with nil DS did not panic")
	}
}

// parallelDS exercises parallelism inside RunBatch: it processes ops via
// ctx.For and a fork-join reduction, and verifies Invariant 1 by checking
// an "active" flag.
type parallelDS struct {
	active atomic.Int32
	total  atomic.Int64
	viol   atomic.Int32
}

func (p *parallelDS) RunBatch(ctx *Ctx, ops []*OpRecord) {
	if p.active.Add(1) != 1 {
		p.viol.Add(1)
	}
	ctx.For(0, len(ops), 1, func(_ *Ctx, i int) {
		p.total.Add(ops[i].Val)
		ops[i].Res = ops[i].Val * 2
	})
	p.active.Add(-1)
}

func TestParallelBOPAndInvariant1(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		rt := New(Config{Workers: p, Seed: 15})
		ds := &parallelDS{}
		const n = 400
		rt.Run(func(c *Ctx) {
			c.For(0, n, 1, func(cc *Ctx, i int) {
				op := &OpRecord{DS: ds, Val: int64(i)}
				cc.Batchify(op)
				if op.Res != int64(i)*2 {
					t.Errorf("op %d: Res = %d", i, op.Res)
				}
			})
		})
		if ds.viol.Load() != 0 {
			t.Fatalf("P=%d: Invariant 1 violated %d times", p, ds.viol.Load())
		}
		if ds.total.Load() != n*(n-1)/2 {
			t.Fatalf("P=%d: total = %d", p, ds.total.Load())
		}
	}
}

// TestMixedCoreAndBatchWork interleaves real core computation with
// data-structure ops, the regime where the alternating-steal policy and
// the dual deques earn their keep.
func TestMixedCoreAndBatchWork(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 16})
	ds := &parallelDS{}
	const n = 200
	var coreWork atomic.Int64
	rt.Run(func(c *Ctx) {
		c.For(0, n, 1, func(cc *Ctx, i int) {
			// Some core work...
			s := 0
			for k := 0; k < 100; k++ {
				s += k * i
			}
			coreWork.Add(int64(s % 7))
			// ...then a data-structure op.
			cc.Batchify(&OpRecord{DS: ds, Val: 1})
		})
	})
	if ds.total.Load() != n {
		t.Fatalf("total = %d, want %d", ds.total.Load(), n)
	}
	if ds.viol.Load() != 0 {
		t.Fatal("Invariant 1 violated")
	}
}

// TestStealPolicies ensures every policy still completes mixed workloads
// (the ablation benchmarks compare their performance; here we only need
// termination and correctness).
func TestStealPolicies(t *testing.T) {
	for _, pol := range []StealPolicy{AlternatingSteal, CoreOnlySteal, BatchOnlySteal, RandomDequeSteal} {
		rt := New(Config{Workers: 4, Seed: 17, StealPolicy: pol})
		ds := &parallelDS{}
		rt.Run(func(c *Ctx) {
			c.For(0, 100, 1, func(cc *Ctx, i int) {
				cc.Batchify(&OpRecord{DS: ds, Val: 1})
			})
		})
		if ds.total.Load() != 100 {
			t.Fatalf("policy %d: total = %d", pol, ds.total.Load())
		}
	}
}

// TestSequentialBOPStack is a regression test for the helping-deadlock
// scenario: a free worker running batch work must not pick up core work
// while waiting at a batch-task join. The BOP forks aggressively so that
// batch joins are frequent while core DS ops keep arriving.
func TestDeadlockRegressionBatchJoinHelping(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 18})
	ds := &forkyDS{}
	rt.Run(func(c *Ctx) {
		c.For(0, 300, 1, func(cc *Ctx, i int) {
			cc.Batchify(&OpRecord{DS: ds, Val: 1})
		})
	})
	if ds.total.Load() != 300 {
		t.Fatalf("total = %d", ds.total.Load())
	}
}

type forkyDS struct{ total atomic.Int64 }

func (f *forkyDS) RunBatch(ctx *Ctx, ops []*OpRecord) {
	// Deep fork tree per batch to maximize join waits inside batch tasks.
	var rec func(c *Ctx, d int)
	rec = func(c *Ctx, d int) {
		if d == 0 {
			return
		}
		c.Fork(
			func(cc *Ctx) { rec(cc, d-1) },
			func(cc *Ctx) { rec(cc, d-1) },
		)
	}
	rec(ctx, 4)
	for _, op := range ops {
		f.total.Add(op.Val)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusFree: "free", StatusPending: "pending",
		StatusExecuting: "executing", StatusDone: "done",
		Status(99): "invalid",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}
