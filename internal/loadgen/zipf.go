package loadgen

import (
	"math"
	"sort"

	"batcher/internal/rng"
)

// zipfMaxRanks caps the precomputed CDF table. A zipf CDF over more
// ranks than this adds almost no mass to the tail (at s near 1 the top
// million ranks already carry the distribution), so larger keyspaces
// sample a rank in [0, zipfMaxRanks) and stretch it across the keyspace
// by a fixed stride instead of tabulating every key.
const zipfMaxRanks = 1 << 20

// zipfGen samples keys with probability proportional to 1/rank^s via a
// precomputed CDF and binary search: build cost is O(ranks) once per
// workload, sample cost O(log ranks) with zero allocation, and the
// table is shared read-only across connection goroutines. Rank i maps
// to key (i*stride)%keySpace rather than key i, so the hot keys are
// scattered across the keyspace (and therefore across shards) instead
// of clustering at 0 — skew should stress placement, not alias it.
type zipfGen struct {
	cdf      []float64
	keySpace int64
	stride   int64
}

func newZipfGen(keySpace int64, s float64) *zipfGen {
	n := keySpace
	if n > zipfMaxRanks {
		n = zipfMaxRanks
	}
	g := &zipfGen{
		cdf:      make([]float64, n),
		keySpace: keySpace,
		// A large odd stride is coprime with any power-of-two keyspace
		// (and shares no small factors with round decimal ones), so the
		// rank->key map stays injective while dispersing hot ranks.
		stride: 0x9e3779b9,
	}
	if g.stride >= keySpace {
		g.stride = 1
	}
	total := 0.0
	for i := int64(0); i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		g.cdf[i] = total
	}
	for i := range g.cdf {
		g.cdf[i] /= total
	}
	return g
}

// sample draws one key. Safe for concurrent use with distinct RNGs.
func (g *zipfGen) sample(r *rng.Rand) int64 {
	u := r.Float64()
	rank := sort.SearchFloat64s(g.cdf, u)
	if rank >= len(g.cdf) {
		rank = len(g.cdf) - 1
	}
	return (int64(rank) * g.stride) % g.keySpace
}
