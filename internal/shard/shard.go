// Package shard is the key-hashed multi-runtime routing layer between
// batcherd's wire edge and the scheduler: a Router owns N independent
// shards, each a full sched.Runtime + sched.Pump + its own set of
// batched structures, and places every operation on exactly one shard
// by hashing its (ds, key) pair. Implicit batching then happens *per
// shard*: each shard's pending array coalesces only the operations
// routed to it, so Invariant 1 (one batch in flight) and Invariant 2
// (at most P operations per batch) hold per shard, the Theorem 5.4
// delay envelope is auditable per shard, and a poisoned batch's blast
// radius shrinks from "the process" to "one shard" — the
// decompose-into-independent-batched-instances move that lets a batched
// structure scale past one runtime's pending array.
//
// Placement rules (DESIGN.md §13):
//
//   - Keyed operations (skip list, 2-3 tree, hash map) go to
//     Of(ds, key, N): all operations on one key always meet the same
//     shard, so per-key semantics are exactly the single-runtime ones.
//   - Keyless operations (the counter) pin to the structure's *home
//     shard*, Home(ds, N): a prefix-sums counter cannot be split by key
//     without changing its semantics (the returned running totals form
//     one global permutation), so the whole structure lives on one
//     deterministic shard instead. Spreading counter ops across shards
//     would turn one linearizable counter into N independent ones.
//   - Stats reads (DSStats) never enter any pump: the serving layer
//     fans the read out across every shard's live counters and merges
//     them into one aggregated document plus a per-shard breakdown.
//
// The Router is single-process — N runtimes behind one listener — and
// is the proving ground for the multi-process tier: the placement
// function is pure and stable, so the same routing decisions can later
// be made by a client library picking between batcherd processes.
package shard

import (
	"sync"
	"sync/atomic"

	"batcher/internal/sched"
)

// Of places a keyed operation: the shard index for key on structure ds
// among n shards. It is a pure function of its arguments — stable
// across processes and restarts — so clients, tests, and a future
// multi-node routing tier all agree on placement without coordination.
// The mix is splitmix64's finalizer over the key, salted by ds so two
// structures do not shard identically (a hot key on the skip list does
// not also pin the same shard's hash map).
func Of(ds uint8, key int64, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(key)*0x9E3779B97F4A7C15 ^ (uint64(ds)+1)*0xD1342543DE82EF95
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

// Home places a keyless operation: the single deterministic shard a
// structure with no meaningful key (the counter) lives on. It is Of at
// a fixed sentinel key, so it inherits Of's stability and ds-salting —
// different keyless structures land on different shards in general.
// (The sentinel is 1, not 0: with this mix, key 0 would pin the counter
// to shard 0 at the power-of-two shard counts the chaos suite uses,
// defeating the poisoned-shard-0 isolation test.)
func Home(ds uint8, n int) int { return Of(ds, 1, n) }

// Config configures a Router.
type Config struct {
	// Shards is N, the number of independent runtime shards. Values
	// below 1 are raised to 1 (the single-runtime layout).
	Shards int
	// Workers is each shard's scheduler worker count P (so the process
	// runs Shards×P workers). Zero means GOMAXPROCS per shard.
	Workers int
	// Seed seeds each shard's runtime RNGs; shard i derives seed+i so
	// shards do not take correlated steal decisions.
	Seed uint64
	// QueueCap bounds each shard's pump ingress queue (per shard, not
	// global: saturation is a per-shard condition). Zero means the
	// pump's default, 8×P.
	QueueCap int
	// Policy is the batch-formation policy installed on every shard's
	// runtime (policies are stateless values, safe to share). Nil means
	// the scheduler default. Shards batch independently, so the policy
	// acts per shard: a size cap counts one shard's trapped workers, a
	// deadline watches one shard's pending array.
	Policy sched.BatchPolicy
	// PolicyFor, if non-nil, overrides Policy per shard: shard i runs
	// PolicyFor(i) (nil return falls back to Policy, then the
	// scheduler default). The seam exists for per-shard stateful
	// wrappers — the admission controller wraps each shard's policy
	// with its own sched.AdmissionController, which must not be shared
	// across shards (each shard's twin is fitted from that shard's
	// histograms).
	PolicyFor func(shard int) sched.BatchPolicy
	// NewDS builds shard i's structure set, indexed by the wire ds
	// code. The router itself never interprets the structures — it only
	// stores and serves them — so the serving layer keeps sole
	// ownership of wire-code semantics (and of fault-injection
	// wrapping, which is why the shard index is exposed here).
	NewDS func(shard int) []sched.Batched
	// OnDone, if non-nil, is invoked on a scheduler worker of the
	// owning shard after an operation's batch completes, with the
	// record's result fields filled in and the shard index attached.
	// Same contract as sched.PumpConfig.OnDone: fast, never blocks.
	OnDone func(shard int, op *sched.OpRecord)
}

// Shard is one independent batching domain: a runtime, its pump, and
// its structure instances. All per-shard state hangs off it, including
// the admission books (Accepted/Completed/Failed) that let tests and
// the stats document audit each shard's drain independently.
type Shard struct {
	id   int
	rt   *sched.Runtime
	pump *sched.Pump
	ds   []sched.Batched

	accepted  atomic.Int64 // operations admitted into this shard's pump
	completed atomic.Int64 // operations whose OnDone fired
	failed    atomic.Int64 // completed with Err (contained batch panic)
}

// ID returns the shard's index in its router.
func (sh *Shard) ID() int { return sh.id }

// Runtime returns the shard's scheduler runtime.
func (sh *Shard) Runtime() *sched.Runtime { return sh.rt }

// Pump returns the shard's pump.
func (sh *Shard) Pump() *sched.Pump { return sh.pump }

// DS returns the shard's structure for wire code i, or nil when i is
// out of range (the caller validates wire codes; nil just means "no
// such structure" rather than a panic on hostile input).
func (sh *Shard) DS(i int) sched.Batched {
	if i < 0 || i >= len(sh.ds) {
		return nil
	}
	return sh.ds[i]
}

// SubmitAll bulk-submits ops into the shard's pump (one lock, one
// wake — see sched.Pump.SubmitAll) and counts the admitted prefix into
// the shard's books. Contract is the pump's: the first n are admitted,
// the rest remain the caller's to park or reject.
func (sh *Shard) SubmitAll(ops []*sched.OpRecord) (n int, err error) {
	n, err = sh.pump.SubmitAll(ops)
	if n > 0 {
		sh.accepted.Add(int64(n))
	}
	return n, err
}

// Books returns the shard's admission ledger. After a full drain,
// accepted == completed: every operation this shard admitted was
// answered exactly once (failed counts the completed subset that
// carried a contained-panic Err).
func (sh *Shard) Books() (accepted, completed, failed int64) {
	return sh.accepted.Load(), sh.completed.Load(), sh.failed.Load()
}

// Router owns the shard set and the placement function over it.
type Router struct {
	shards []*Shard
}

// NewRouter builds the shard set: N runtimes, N pumps, N structure
// sets. Nothing serves yet — call Serve (usually on its own goroutine)
// to start the pumps, Close to begin the drain.
func NewRouter(cfg Config) *Router {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	r := &Router{shards: make([]*Shard, cfg.Shards)}
	for i := range r.shards {
		sh := &Shard{id: i}
		pol := cfg.Policy
		if cfg.PolicyFor != nil {
			if p := cfg.PolicyFor(i); p != nil {
				pol = p
			}
		}
		sh.rt = sched.New(sched.Config{
			Workers: cfg.Workers,
			Seed:    cfg.Seed + uint64(i),
			Policy:  pol,
		})
		if cfg.NewDS != nil {
			sh.ds = cfg.NewDS(i)
		}
		done := cfg.OnDone
		sh.pump = sched.NewPump(sh.rt, sched.PumpConfig{
			QueueCap: cfg.QueueCap,
			OnDone: func(op *sched.OpRecord) {
				// Books first: a test that saw op's response must also
				// see it counted (OnDone callbacks observe the ledger
				// through the response path, which runs after this).
				sh.completed.Add(1)
				if op.Err != nil {
					sh.failed.Add(1)
				}
				if done != nil {
					done(sh.id, op)
				}
			},
		})
		r.shards[i] = sh
	}
	return r
}

// N returns the shard count.
func (r *Router) N() int { return len(r.shards) }

// Shard returns shard i.
func (r *Router) Shard(i int) *Shard { return r.shards[i] }

// Shards returns the shard slice (read-only by convention).
func (r *Router) Shards() []*Shard { return r.shards }

// ShardOf routes a keyed operation (see Of).
func (r *Router) ShardOf(ds uint8, key int64) int {
	return Of(ds, key, len(r.shards))
}

// Home routes a keyless operation (see Home).
func (r *Router) Home(ds uint8) int { return Home(ds, len(r.shards)) }

// Serve runs every shard's pump and blocks until all of them have
// drained (each pump.Serve returns only after Close and a full drain).
// Shards serve concurrently and independently: a saturated, stalled, or
// panicking shard never gates a sibling's batches.
func (r *Router) Serve() {
	var wg sync.WaitGroup
	for _, sh := range r.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			sh.pump.Serve()
		}(sh)
	}
	wg.Wait()
}

// Close stops admission on every shard and begins the drains.
// Idempotent (pump.Close is); it does not wait — wait on Serve.
func (r *Router) Close() {
	for _, sh := range r.shards {
		sh.pump.Close()
	}
}

// Depth returns the summed pump ingress depth across shards.
func (r *Router) Depth() int {
	d := 0
	for _, sh := range r.shards {
		d += sh.pump.Depth()
	}
	return d
}

// LiveBatchStats sums executed batches and batched operations across
// shards (each term readable mid-serve, like the runtime's own).
func (r *Router) LiveBatchStats() (batches, ops int64) {
	for _, sh := range r.shards {
		b, o := sh.rt.LiveBatchStats()
		batches += b
		ops += o
	}
	return batches, ops
}

// BatchPanics sums contained batch panics across shards.
func (r *Router) BatchPanics() int64 {
	var n int64
	for _, sh := range r.shards {
		n += sh.rt.BatchPanics()
	}
	return n
}

// LiveSteals sums successful scheduler steals across shards.
func (r *Router) LiveSteals() int64 {
	var n int64
	for _, sh := range r.shards {
		n += sh.rt.LiveSteals()
	}
	return n
}

// LaunchReasons sums per-reason batch-launch counts across shards (see
// sched.Runtime.LaunchReasons). Readable while serving.
func (r *Router) LaunchReasons() (counts [sched.NumLaunchReasons]int64) {
	for _, sh := range r.shards {
		c := sh.rt.LaunchReasons()
		for i, v := range c {
			counts[i] += v
		}
	}
	return counts
}
