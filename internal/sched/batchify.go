package sched

// This file implements the implicit-batching half of BATCHER: the
// Batchify entry point called by core-program tasks (Figure 3) and the
// LaunchBatch procedure (Figure 4).

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"batcher/internal/obs"
)

// OpKind is a data-structure-specific operation code. The scheduler never
// interprets it; it exists so that a single OpRecord type serves every
// batched structure in the repository.
type OpKind int32

// OpRecord is the operation record a worker publishes when it encounters
// a data-structure node. The Kind/Key/Val fields are inputs and Res/Ok
// are outputs, with Aux as an escape hatch for structures whose payloads
// do not fit in two integers. Records are owned by the calling task until
// Batchify returns, then again by the caller; the data structure may read
// and write them freely while its batch executes. Hot paths obtain a
// reusable record from Ctx.Op instead of allocating one per operation.
type OpRecord struct {
	// DS is the target data structure; the scheduler groups a batch's
	// records by DS and invokes each structure's RunBatch on its group.
	DS Batched
	// Kind is the structure-specific operation code.
	Kind OpKind
	// Key and Val are the operation's integer inputs.
	Key, Val int64
	// Res is the operation's integer result, filled in by RunBatch.
	Res int64
	// Ok is the operation's boolean result (e.g. "key was present").
	Ok bool
	// Err reports a failed operation: when batch-panic containment is on
	// (ContainBatchPanics, enabled by Pump.Serve) and the op's group
	// panicked mid-BOP, the scheduler sets Err to a *BatchPanicError
	// before the submitter resumes. Ownership rule: Batchify clears Err
	// on entry, the scheduler is the only writer while the operation is
	// in flight, and the field is valid from completion until the record
	// is reused. RunBatch implementations must never touch it.
	Err error
	// Aux carries non-integer payloads when a structure needs them.
	Aux any

	// Phases is the op-lifecycle stamp vector (obs.PhaseRead ..
	// obs.PhaseDone), written only when Runtime.SetPhaseStamps enabled
	// stamping. Ownership is by slot: the submitter writes PhaseRead
	// before Submit/Batchify, Pump.Submit writes PhaseAdmit (under the
	// queue mutex), the scheduler writes PhasePending/PhaseLaunch/
	// PhaseLand while the op is in flight, and the completion owner
	// writes PhaseDone. A fixed array keeps the stamping
	// allocation-free; slots a path never crosses simply stay stale and
	// are clamped out by obs.PhaseDurations.
	Phases [obs.NumPhases]int64
	// BatchSize and BatchGroup identify the batch that landed this op:
	// the working-set size and the op's group index within it. Written
	// with PhaseLand, under the same enablement.
	BatchSize  int32
	BatchGroup int32

	// worker is the id of the trapped worker, recorded by Batchify so
	// that LaunchBatch can flip exactly the participants' statuses.
	worker int32
}

// Batched is the interface a batched data structure presents to the
// scheduler: a single parallel batched operation (the paper's BOP).
//
// RunBatch performs every operation in ops, collectively and possibly in
// parallel via ctx. The scheduler guarantees that at most one batch is
// executing at any time (Invariant 1) and that len(ops) <= P
// (Invariant 2), so implementations need no locks or atomics. RunBatch
// runs as a batch-dag task: forks it performs go to batch deques and may
// be executed by any worker, free or trapped.
type Batched interface {
	RunBatch(ctx *Ctx, ops []*OpRecord)
}

// Batchify submits op to the scheduler as a data-structure node and
// blocks until some batch has performed it, per the trapped-worker rules
// of Figure 3. It must be called from a core-dag task (data-structure
// implementations must not access data structures). On return, op's
// result fields are filled in.
//
// The calling worker becomes trapped: it publishes op in its pending-array
// slot, sets its status to pending, and then executes only batch work —
// popping its batch deque, launching a batch if none is active, or
// stealing from random victims' batch deques — until its status becomes
// done.
func (c *Ctx) Batchify(op *OpRecord) { c.batchify(op, nil) }

// linger carries the submission path's launch-delay configuration into
// batchify: budget is the path's proposed yield budget and backlog
// reports whether more queued external work remains for sibling pump
// workers to trap on. Core-program Batchify passes nil (no external
// backlog; under the default policy that means the paper's immediate
// launch). How the budget and backlog are *used* is the batch-formation
// policy's decision — see BatchPolicy and pump.go for why the serving
// layer wants the delay.
type linger struct {
	budget  int
	backlog func() bool
}

// batchify is Batchify's engine; lg is nil for core-program calls.
func (c *Ctx) batchify(op *OpRecord, lg *linger) {
	if c.kind != KindCore {
		panic("sched: Batchify called from a batch task; batched data structures must not access other batched structures")
	}
	if op.DS == nil {
		panic("sched: Batchify with nil OpRecord.DS")
	}
	w := c.w
	rt := w.rt
	op.worker = int32(w.id)
	op.Err = nil // the scheduler owns Err until the operation completes
	now := obs.Now()
	if rt.stampPhases {
		op.Phases[obs.PhasePending] = now
	}

	// Ask the policy for this operation's linger budget: how many times
	// a LaunchHold verdict will be honored before the scheduler forces
	// a launch. The default policy keeps the submission path's own
	// budget (0 for core calls — the paper's immediate launch — and
	// PumpConfig.LingerYields for pump-fed ops).
	pol := rt.policy
	proposed := 0
	if lg != nil {
		proposed = lg.budget
	}
	budget := pol.LingerYields(proposed, lg != nil)
	hadBudget := budget > 0

	// Publish the slot stamp, then the record, then the status. All
	// three stores are sequentially consistent, so a launcher (or a
	// policy scan) that observes the record also observes its stamp,
	// and one that observes status==pending also observes the record.
	rt.pending[w.id].stamp.Store(now)
	rt.pending[w.id].rec.Store(op)
	w.status.Store(int32(StatusPending))
	w.m.OpsSubmitted++

	for {
		rt.checkAbort()
		// Trapped workers execute nodes from a batch deque when possible.
		if t := w.batch.PopBottom(); t != nil {
			w.runTask(t)
			continue
		}
		if Status(w.status.Load()) == StatusDone {
			w.status.Store(int32(StatusFree))
			return
		}
		if rt.batchFlag.Load() == 0 {
			reason := LaunchImmediate
			if budget > 0 {
				reason = pol.ShouldLaunch(PolicyView{
					rt:         rt,
					lg:         lg,
					Workers:    len(rt.workers),
					External:   lg != nil,
					YieldsLeft: budget,
				})
				if reason == LaunchHold {
					// Launch linger: the policy wants a fatter batch, so
					// yield (bounded) before claiming the flag — another
					// worker can trap meanwhile. If a sibling launches
					// first, the next loop iteration sees our status
					// flip instead.
					budget--
					goruntime.Gosched()
					continue
				}
			} else if hadBudget {
				// The policy held until the budget ran out: launch
				// anyway. This backstop keeps every policy live.
				reason = LaunchBudget
			}
			if rt.batchFlag.CompareAndSwap(0, 1) {
				rt.launchReasons[reason].Add(1)
				// We are the launcher: inject LaunchBatch at the bottom
				// of our batch deque and let the normal loop execute it
				// (so that its parallel setup/cleanup is itself
				// stealable batch work). The task is detached — nobody
				// joins on it — so whichever worker runs it recycles
				// the frame (recycleAfterRun).
				w.m.BatchesLaunched++
				if tr := rt.tracer; tr != nil {
					tr.Record(w.id, obs.EvBatchLaunch, 0, 0)
				}
				lt := w.getTask()
				lt.fn = rt.launchFn
				lt.kind = KindBatch
				lt.group = 0 // scheduler work: a panic here is never contained
				lt.recycleAfterRun = true
				w.batch.PushBottom(lt)
				rt.idle.wake()
				continue
			}
		}
		if !w.stealAndRun(true) {
			w.idleTrapped()
		}
	}
}

// batchScratch holds the per-runtime buffers LaunchBatch works out of,
// allocated once in New and reused for every batch. Reuse is legal
// because Invariant 1 serializes batches and the batch flag's
// reset-then-CAS pair orders one batch's accesses before the next's (see
// DESIGN.md §7). The loop bodies are pre-bound closures over the runtime
// so that the parallel steps of LaunchBatch allocate nothing per batch.
type batchScratch struct {
	// claimed[i] is worker i's acknowledged record, or nil; every slot is
	// written unconditionally each batch, so no clearing pass is needed.
	claimed []*OpRecord
	// working is the compacted working set (capacity P, never grows).
	working []*OpRecord
	// groups partitions working by target structure; opsBuf provides the
	// backing storage for the groups' ops slices (both capacity P).
	groups []dsGroup
	opsBuf []*OpRecord

	// Containment state (see contain.go). groupLive[g] counts outstanding
	// tasks of group g's batch subtree — incremented by the pusher before
	// a group-tagged task becomes stealable, decremented when it finishes
	// — so a contained panic that unwound past join frames can still wait
	// for the group's stolen work before the batch completes. panicked[g]
	// records the first recovered panic value per group (panicMu guards
	// it; the path is already catastrophic, so a mutex is fine), and
	// anyPanic flags that the post-step-3 marking scan is needed at all.
	groupLive []atomic.Int32
	panicked  []any
	panicMu   sync.Mutex
	anyPanic  atomic.Bool

	ackBody   func(*Ctx, int) // step 1: pending -> executing, collect
	groupBody func(*Ctx, int) // step 3: run one group's BOP
	doneBody  func(*Ctx, int) // step 4: executing -> done
}

func (s *batchScratch) init(rt *Runtime) {
	nw := len(rt.workers)
	s.claimed = make([]*OpRecord, nw)
	s.working = make([]*OpRecord, 0, nw)
	s.groups = make([]dsGroup, 0, nw)
	s.opsBuf = make([]*OpRecord, 0, nw)
	s.groupLive = make([]atomic.Int32, nw)
	s.panicked = make([]any, nw)
	s.ackBody = func(_ *Ctx, i int) {
		wi := rt.workers[i]
		if wi.status.CompareAndSwap(int32(StatusPending), int32(StatusExecuting)) {
			rec := rt.pending[i].rec.Swap(nil)
			if rec == nil {
				panic("sched: worker pending with empty pending slot")
			}
			s.claimed[i] = rec
		} else {
			s.claimed[i] = nil
		}
	}
	s.groupBody = func(cc *Ctx, i int) { rt.runGroup(cc, i) }
	s.doneBody = func(_ *Ctx, i int) {
		op := s.working[i]
		rt.workers[op.worker].status.Store(int32(StatusDone))
	}
}

// launchBatchBody is the LaunchBatch procedure of Figure 4. It runs as an
// ordinary batch-dag task on whichever workers steal into it, working out
// of rt.scratch.
func (rt *Runtime) launchBatchBody(c *Ctx) {
	nw := len(rt.workers)
	rt.batchesActive.Add(1)
	if got := rt.batchesActive.Load(); got != 1 {
		panic("sched: Invariant 1 violated: more than one batch active")
	}
	s := &rt.scratch
	var t0 time.Time
	if rt.tracer != nil {
		t0 = time.Now()
	}

	// Step 1: acknowledge pending records (pending -> executing) and
	// collect them. The status flips run as a parallel loop, as in the
	// paper; grain keeps tiny P from drowning in fork overhead.
	c.For(0, nw, 8, s.ackBody)

	// Step 2: compact the claimed records into the working set. The
	// paper's prototype performs this step sequentially on small P
	// (Section 7); we do the same — it is Θ(P) work either way.
	working := s.working[:0]
	for _, op := range s.claimed {
		if op != nil {
			working = append(working, op)
		}
	}
	s.working = working
	if len(working) == 0 {
		// Possible: the flag was CASed by a worker whose own record was
		// consumed by the immediately preceding batch between its flag
		// check and the launch executing. Nothing to do.
		rt.batchesActive.Add(-1)
		rt.batchFlag.Store(0)
		rt.idle.wake()
		return
	}
	if len(working) > nw {
		panic("sched: Invariant 2 violated: batch larger than P")
	}
	var launchNS int64
	if rt.stampPhases || rt.conform != nil {
		launchNS = obs.Now()
	}
	if rt.stampPhases {
		for _, op := range working {
			op.Phases[obs.PhaseLaunch] = launchNS
		}
	}

	// Step 3: execute the BOP on the working set. Records may target
	// different structures; group by structure (into scratch, no
	// allocation) and run the groups as a parallel loop — each structure
	// still sees at most one batch at a time.
	s.groupWorking()
	if len(s.groups) == 1 {
		rt.runGroup(c, 0)
	} else {
		c.For(0, len(s.groups), 1, s.groupBody)
	}

	// Contained failures: stamp Err on every op of each panicked group
	// now, before step 4 flips participant statuses — a participant that
	// observes done must also observe its record's Err (the status store
	// below is sequentially consistent and program-ordered after this).
	if s.anyPanic.Load() {
		s.markPanickedGroups()
	}

	// Phase stamps: land the batch on every participant now, before
	// step 4 flips statuses — a participant that observes done must also
	// observe its stamps (the same ordering rule as Err above). One
	// clock read serves the whole batch; the group scan also records
	// which batch each op rode in.
	var landNS int64
	if rt.stampPhases || rt.conform != nil {
		landNS = obs.Now()
	}
	if rt.stampPhases {
		size := int32(len(working))
		for gi := range s.groups {
			for _, op := range s.groups[gi].ops {
				op.Phases[obs.PhaseLand] = landNS
				op.BatchSize = size
				op.BatchGroup = int32(gi)
			}
		}
	}

	// Live conformance: feed the envelope monitor before step 4 flips
	// statuses, while each participant's pending-slot stamp is still
	// this batch's publish time (a worker cannot republish until it
	// observes done). The slot stamps are written unconditionally by
	// batchify, so the monitor needs no phase stamping.
	if m := rt.conform; m != nil {
		minPending := rt.pending[working[0].worker].stamp.Load()
		for _, op := range working[1:] {
			if st := rt.pending[op.worker].stamp.Load(); st < minPending {
				minPending = st
			}
		}
		m.RecordBatch(launchNS, landNS, minPending, len(working))
	}

	// Record metrics before waking participants.
	c.w.m.BatchesExecuted++
	c.w.m.BatchedOps += int64(len(working))
	rt.liveBatches.Add(1)
	rt.liveOps.Add(int64(len(working)))
	if h := rt.batchHist; h != nil {
		h.Observe(int64(len(working)))
	}
	if tr := rt.tracer; tr != nil {
		dur := int64(time.Since(t0))
		if dur < 1 {
			dur = 1 // keep the exported span visible on coarse clocks
		}
		tr.Record(c.w.id, obs.EvBatchLand, int64(len(working)), dur)
	}

	// Step 4: mark participants done (executing -> done). Participants
	// cannot have changed status themselves, so plain stores suffice.
	c.For(0, len(working), 8, s.doneBody)

	// Step 5: reset the global batch-status flag, then wake parked
	// workers: the status stores above and the flag reset precede this
	// wake, so a trapped worker either parks before it (and is woken) or
	// re-checks after it (and observes done / flag clear).
	rt.batchesActive.Add(-1)
	rt.batchFlag.Store(0)
	rt.idle.wake()
}

// groupWorking partitions s.working by target structure into s.groups,
// with s.opsBuf as backing storage for the per-group slices. The double
// scan is O(|working|²) in the worst case, but |working| <= P and the
// common case is a single structure. Group order follows first
// appearance; order within a group follows compaction order.
func (s *batchScratch) groupWorking() {
	groups := s.groups[:0]
	buf := s.opsBuf[:0]
outer:
	for wi, op := range s.working {
		for gi := range groups {
			if groups[gi].ds == op.DS {
				continue outer // structure already grouped
			}
		}
		start := len(buf)
		buf = append(buf, op)
		for _, later := range s.working[wi+1:] {
			if later.DS == op.DS {
				buf = append(buf, later)
			}
		}
		groups = append(groups, dsGroup{ds: op.DS, ops: buf[start:len(buf):len(buf)]})
	}
	s.groups = groups
	s.opsBuf = buf
}

// dsGroup is one structure's slice of a batch's working set.
type dsGroup struct {
	ds  Batched
	ops []*OpRecord
}

// groupByDS partitions the working set by target structure, preserving
// the (arbitrary) compaction order within each group. P is small, so a
// linear scan with a tiny association list beats a map allocation. It is
// the allocating cousin of batchScratch.groupWorking, used by Server,
// whose batches are not bounded by Invariant 2.
func groupByDS(working []*OpRecord) []dsGroup {
	groups := make([]dsGroup, 0, 2)
outer:
	for _, op := range working {
		for gi := range groups {
			if groups[gi].ds == op.DS {
				groups[gi].ops = append(groups[gi].ops, op)
				continue outer
			}
		}
		groups = append(groups, dsGroup{ds: op.DS, ops: []*OpRecord{op}})
	}
	return groups
}

// runGroups executes each group's RunBatch, in parallel across groups via
// binary forking. Used by Server; the scheduler's own LaunchBatch uses
// the scratch-based loop above.
func runGroups(c *Ctx, groups []dsGroup) {
	switch len(groups) {
	case 0:
		return
	case 1:
		groups[0].ds.RunBatch(c, groups[0].ops)
	default:
		mid := len(groups) / 2
		c.Fork(
			func(cc *Ctx) { runGroups(cc, groups[:mid]) },
			func(cc *Ctx) { runGroups(cc, groups[mid:]) },
		)
	}
}
