// Package loadgen is batcherd's load-generation client: a thin typed
// client over the wire protocol in internal/server, plus a workload
// driver that runs open- or closed-loop load across many connections
// and reports throughput and latency percentiles. The batcherd binary
// embeds it as the `load` subcommand; tests use it to drive e2e load.
package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"

	"batcher/internal/server"
)

// Client is one connection speaking the batcherd protocol. It is not
// safe for concurrent use by multiple goroutines on the same method
// set, but one goroutine may Send/Flush while another Recvs — the two
// directions are independent (responses arrive in completion order,
// which is why Send returns the request id).
type Client struct {
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	sbuf   []byte
	rbuf   []byte
	nextID uint64
}

// Dial connects to a batcherd server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		nc: nc,
		br: bufio.NewReader(nc),
		bw: bufio.NewWriter(nc),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// Send buffers one request and returns its id. If q.ID is zero, a fresh
// sequential id is assigned (client ids start at 1). Call Flush to push
// buffered requests to the server.
func (c *Client) Send(q server.Request) (uint64, error) {
	if q.ID == 0 {
		c.nextID++
		q.ID = c.nextID
	}
	c.sbuf = server.AppendRequest(c.sbuf[:0], q)
	_, err := c.bw.Write(c.sbuf)
	return q.ID, err
}

// Flush pushes buffered requests to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads the next response, in server completion order (not send
// order — match by ID). The payload, if any, is copied and safe to
// retain.
func (c *Client) Recv() (server.Response, error) {
	body, err := server.ReadFrame(c.br, c.rbuf)
	if err != nil {
		return server.Response{}, err
	}
	c.rbuf = body[:0]
	r, err := server.DecodeResponse(body)
	if err != nil {
		return server.Response{}, err
	}
	if r.Payload != nil {
		r.Payload = append([]byte(nil), r.Payload...)
	}
	return r, nil
}

// Do sends one request and waits for its response — a convenience for
// unpipelined callers; it requires that no other requests are in
// flight on this client.
func (c *Client) Do(q server.Request) (server.Response, error) {
	id, err := c.Send(q)
	if err != nil {
		return server.Response{}, err
	}
	if err := c.Flush(); err != nil {
		return server.Response{}, err
	}
	r, err := c.Recv()
	if err != nil {
		return server.Response{}, err
	}
	if r.ID != id {
		return server.Response{}, fmt.Errorf("loadgen: response id %d for request %d (responses in flight?)", r.ID, id)
	}
	return r, nil
}

// Stats fetches and decodes the server's stats document.
func (c *Client) Stats() (server.Stats, error) {
	r, err := c.Do(server.Request{DS: server.DSStats})
	if err != nil {
		return server.Stats{}, err
	}
	if r.Err() || r.Flags&server.FlagPayload == 0 {
		return server.Stats{}, fmt.Errorf("loadgen: stats request rejected (flags %#x)", r.Flags)
	}
	var st server.Stats
	if err := json.Unmarshal(r.Payload, &st); err != nil {
		return server.Stats{}, err
	}
	return st, nil
}
