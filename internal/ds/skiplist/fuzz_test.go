package skiplist

import (
	"testing"

	"batcher/internal/sched"
)

// FuzzSeqAgainstMap drives the sequential skip list with a fuzzer-chosen
// operation tape and checks it against a map oracle. Each byte triple
// encodes (op, key): op = b0 % 3, key = b1 | b2<<8 (mod 512).
func FuzzSeqAgainstMap(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 5, 0, 2, 1, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 2, 0, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		l := NewList(99)
		m := map[int64]int64{}
		for i := 0; i+2 < len(tape); i += 3 {
			op := tape[i] % 3
			k := int64(tape[i+1]) | int64(tape[i+2])<<8
			k %= 512
			switch op {
			case 0:
				_, existed := m[k]
				if l.Insert(k, int64(i)) == existed {
					t.Fatalf("Insert(%d) new-flag mismatch", k)
				}
				m[k] = int64(i)
			case 1:
				wv, wok := m[k]
				gv, gok := l.Contains(k)
				if gok != wok || (wok && gv != wv) {
					t.Fatalf("Contains(%d) = %d,%v want %d,%v", k, gv, gok, wv, wok)
				}
			case 2:
				_, existed := m[k]
				if l.Delete(k) != existed {
					t.Fatalf("Delete(%d) mismatch", k)
				}
				delete(m, k)
			}
		}
		if l.Len() != len(m) {
			t.Fatalf("Len = %d want %d", l.Len(), len(m))
		}
		if err := l.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzBatchedParallelInserts feeds fuzzer-chosen keys to the batched list
// in parallel and checks the final key set.
func FuzzBatchedParallelInserts(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 2048 {
			t.Skip()
		}
		keys := make([]int64, len(data))
		want := map[int64]bool{}
		for i, b := range data {
			keys[i] = int64(b)
			want[int64(b)] = true
		}
		b := NewBatched(7)
		rt := sched.New(sched.Config{Workers: 4, Seed: 11})
		rt.Run(func(c *sched.Ctx) {
			c.For(0, len(keys), 1, func(cc *sched.Ctx, i int) {
				b.Insert(cc, keys[i], keys[i])
			})
		})
		if b.List().Len() != len(want) {
			t.Fatalf("Len = %d want %d", b.List().Len(), len(want))
		}
		for _, k := range b.List().Keys() {
			if !want[k] {
				t.Fatalf("unexpected key %d", k)
			}
		}
		if err := b.List().checkInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
