package flatcombine

import (
	"sync"
	"testing"

	"batcher/internal/ds/skiplist"
	"batcher/internal/rng"
)

func TestSingleThread(t *testing.T) {
	total := int64(0)
	fc := New(1, func(r *Request) {
		total += r.Val
		r.Res = total
		r.Ok = true
	})
	r := &Request{Val: 5}
	fc.Do(0, r)
	if !r.Ok || r.Res != 5 {
		t.Fatalf("Res = %d, Ok = %v", r.Res, r.Ok)
	}
}

func TestParallelCounterSum(t *testing.T) {
	const threads, per = 8, 5000
	total := int64(0)
	fc := New(threads, func(r *Request) {
		total += r.Val
		r.Res = total
	})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := &Request{Val: 1}
			for j := 0; j < per; j++ {
				fc.Do(tid, r)
			}
		}(tid)
	}
	wg.Wait()
	if total != threads*per {
		t.Fatalf("total = %d, want %d", total, threads*per)
	}
}

func TestReturnValuesUnique(t *testing.T) {
	const threads, per = 4, 2000
	total := int64(0)
	fc := New(threads, func(r *Request) {
		total += r.Val
		r.Res = total
	})
	results := make([][]int64, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			results[tid] = make([]int64, per)
			r := &Request{Val: 1}
			for j := 0; j < per; j++ {
				fc.Do(tid, r)
				results[tid][j] = r.Res
			}
		}(tid)
	}
	wg.Wait()
	seen := make([]bool, threads*per+1)
	for _, rs := range results {
		for _, v := range rs {
			if v < 1 || v > threads*per || seen[v] {
				t.Fatalf("non-unique combined result %d", v)
			}
			seen[v] = true
		}
	}
}

// Flat-combined skip list: the paper's comparison structure.
const (
	fcInsert int32 = iota
	fcContains
)

func TestFlatCombinedSkipList(t *testing.T) {
	l := skiplist.NewList(7)
	fc := New(8, func(r *Request) {
		switch r.Kind {
		case fcInsert:
			r.Ok = l.Insert(r.Key, r.Val)
		case fcContains:
			r.Res, r.Ok = l.Contains(r.Key)
		}
	})
	const threads, per = 8, 1000
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := &Request{}
			rnd := rng.New(uint64(tid) + 1)
			for j := 0; j < per; j++ {
				r.Kind = fcInsert
				r.Key = rnd.Int63() % 4000
				r.Val = r.Key
				fc.Do(tid, r)
			}
		}(tid)
	}
	wg.Wait()
	// All inserted keys present, list consistent.
	keys := l.Keys()
	if len(keys) != l.Len() {
		t.Fatalf("Keys len %d vs Len %d", len(keys), l.Len())
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("list unsorted after flat combining")
		}
	}
	if fc.Combines.Load() == 0 || fc.Applied.Load() != threads*per {
		t.Fatalf("combines=%d applied=%d", fc.Combines.Load(), fc.Applied.Load())
	}
	if d := fc.MeanCombiningDegree(); d < 1 {
		t.Fatalf("mean combining degree %v < 1", d)
	}
}

func TestMeanCombiningDegreeEmpty(t *testing.T) {
	fc := New(2, func(*Request) {})
	if fc.MeanCombiningDegree() != 0 {
		t.Fatal("nonzero degree with no combines")
	}
}
