// Package policy ships the batch-formation policies that compete with
// the scheduler's default (sched.AlternatingStealPolicy, the source
// paper's behavior). A policy decides *when* a trapped worker stops
// lingering and claims the batch flag; the mechanism — the CAS,
// LaunchBatch, the status flips — stays in the scheduler, so no policy
// can violate Invariant 1 or 2 or add batch landings (see DESIGN.md
// §14 for the contract and the audit obligations).
//
// Shipped competitors:
//
//   - SizeCap launches once k of P workers are trapped (or the backlog
//     drains): a batch-size floor that stops the default policy's
//     small racy batches when backlog is thin.
//   - Deadline launches when the oldest pending operation's age
//     reaches a latency budget (or the batch is full): a bounded batch
//     window that trades mean batch size for a hard cap on the
//     pending-delay term, even waiting out an *empty* ingress queue
//     because more requests may still be in flight on the wire.
//
// Every policy here is a stateless value, safe to share across the
// shard router's runtimes.
package policy

import (
	"fmt"
	"time"

	"batcher/internal/sched"
)

// sizeCapCoreYields is the linger budget SizeCap grants core-program
// Batchify calls (which propose none). It only needs to cover the
// window in which sibling workers hit their own data-structure nodes;
// past it the scheduler's LaunchBudget backstop launches anyway.
const sizeCapCoreYields = 256

// SizeCap launches once K of the P workers are trapped, the external
// backlog drains, or the batch is full. K <= 0 (or K > P) means P: a
// pure full-batch policy.
type SizeCap struct {
	// K is the trapped-worker launch threshold.
	K int
}

// Name implements sched.BatchPolicy.
func (SizeCap) Name() string { return "size-cap" }

// ShouldLaunch implements sched.BatchPolicy.
func (p SizeCap) ShouldLaunch(v sched.PolicyView) sched.LaunchReason {
	k := p.K
	if k <= 0 || k > v.Workers {
		k = v.Workers
	}
	if n := v.Trapped(); n >= k {
		if n >= v.Workers {
			return sched.LaunchFull
		}
		return sched.LaunchSizeCap
	}
	if v.External && !v.Backlog() {
		// Nothing queued for siblings to trap on; waiting for the cap
		// would only stall the operations already here.
		return sched.LaunchNoBacklog
	}
	return sched.LaunchHold
}

// LingerYields implements sched.BatchPolicy: external paths keep their
// configured budget; core calls get a small one so the cap can act on
// fork-join programs too.
func (SizeCap) LingerYields(proposed int, external bool) int {
	if external {
		return proposed
	}
	return sizeCapCoreYields
}

// Admit implements sched.BatchPolicy.
func (SizeCap) Admit(depth, capacity int) bool { return true }

// Deadline is a bounded batch window: a trapped worker holds the
// launch — even with an empty ingress queue, since more requests may
// be in flight on the wire — until the batch is full or the oldest
// pending operation has waited Budget. It is the policy that trades
// mean batch size for a hard cap on the pending-delay term (the
// PhasePending→PhaseLaunch wait): no operation's launch is deferred
// past Budget by policy choice.
type Deadline struct {
	// Budget is the pending-delay budget. 0 means 1ms.
	Budget time.Duration
	// MaxYields is the linger budget backing the window (the
	// scheduler's liveness backstop; it should comfortably out-last
	// Budget in yields). 0 means 65536.
	MaxYields int
}

// Name implements sched.BatchPolicy.
func (Deadline) Name() string { return "deadline" }

func (p Deadline) budget() int64 {
	if p.Budget <= 0 {
		return int64(time.Millisecond)
	}
	return int64(p.Budget)
}

func (p Deadline) yields() int {
	if p.MaxYields <= 0 {
		return 1 << 16
	}
	return p.MaxYields
}

// ShouldLaunch implements sched.BatchPolicy.
func (p Deadline) ShouldLaunch(v sched.PolicyView) sched.LaunchReason {
	if v.Trapped() >= v.Workers {
		// Invariant 2 caps the batch at P: it cannot grow, so waiting
		// out the deadline would be pure delay.
		return sched.LaunchFull
	}
	if age := v.OldestPendingNS(); age >= p.budget() {
		return sched.LaunchDeadline
	}
	return sched.LaunchHold
}

// LingerYields implements sched.BatchPolicy: the window needs enough
// yields to span Budget on every path, so grant at least MaxYields.
func (p Deadline) LingerYields(proposed int, external bool) int {
	if y := p.yields(); y > proposed {
		return y
	}
	return proposed
}

// Admit implements sched.BatchPolicy.
func (Deadline) Admit(depth, capacity int) bool { return true }

// ByName resolves a policy wire name (the batcherd -policy flag and the
// CI matrix env var) to a policy value. k parameterizes size-cap and
// deadline parameterizes deadline; zero values keep each policy's
// default.
func ByName(name string, k int, deadline time.Duration) (sched.BatchPolicy, error) {
	switch name {
	case "", "default", "alternating":
		return sched.AlternatingStealPolicy{}, nil
	case "size-cap", "sizecap":
		return SizeCap{K: k}, nil
	case "deadline":
		return Deadline{Budget: deadline}, nil
	}
	return nil, fmt.Errorf("unknown batch policy %q (want default, size-cap, or deadline)", name)
}
