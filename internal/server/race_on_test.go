//go:build race

package server_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
