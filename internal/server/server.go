package server

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"batcher/internal/ds/counter"
	"batcher/internal/ds/hashmap"
	"batcher/internal/ds/skiplist"
	"batcher/internal/ds/tree23"
	"batcher/internal/obs"
	"batcher/internal/sched"
	"batcher/internal/sched/policy"
	"batcher/internal/shard"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address. Defaults to "127.0.0.1:0" (an
	// ephemeral loopback port; read it back from Server.Addr).
	Addr string
	// Shards is the number of independent runtime shards behind the
	// listener (internal/shard): each shard is its own scheduler,
	// pump, and structure set, and requests route to shards by
	// hash(ds, key). Defaults to 1, the single-runtime layout.
	Shards int
	// Workers is P, the scheduler worker count *per shard*. Zero means
	// GOMAXPROCS per shard.
	Workers int
	// Seed seeds the schedulers' RNGs and the hashed structures (each
	// shard derives its own sub-seeds, so shards are not clones).
	Seed uint64
	// QueueCap bounds each shard's pump ingress queue (see
	// sched.PumpConfig). Per shard: saturation is a per-shard condition.
	QueueCap int
	// Policy is the batch-formation policy installed on every shard's
	// runtime (sched.BatchPolicy; see internal/sched/policy for the
	// shipped competitors). Nil means the scheduler default — linger
	// under backlog, launch when the queue drains. The chosen policy's
	// name and per-reason launch counters appear in Snapshot and
	// /metrics.
	Policy sched.BatchPolicy
	// Window bounds each connection's in-flight requests. The reader
	// stops reading the socket while the window is full, so backpressure
	// propagates to the client as TCP flow control. Defaults to 32.
	Window int
	// ReactorLoops sets the reactor pool size: the number of shared
	// reader loops and writer loops serving all connections (sharded by
	// accept order). Defaults to min(NumCPU, 8); values below 1 are
	// raised to 1. More loops than cores only adds contention.
	ReactorLoops int
	// DrainTimeout bounds how long Shutdown waits for in-flight
	// responses to reach slow clients before forcing connections closed.
	// Defaults to 5s.
	DrainTimeout time.Duration
	// IdleTimeout bounds how long a live connection may go without
	// delivering a complete frame: the reader loops' sweep evicts a
	// half-open peer (or one that sent a torn frame and stalled) and
	// reclaims its window slots instead of holding them until Shutdown.
	// A connection parked on its full window is exempt — it is waiting
	// on the server, not the reverse. Defaults to 2m; negative disables.
	IdleTimeout time.Duration
	// WriteStallTimeout bounds how long a connection's responses may sit
	// unwritable (the peer stopped reading). Past it the connection is
	// torn down — abandoning its responses but releasing its window
	// slots — so dead readers cannot pin in-flight operations. The stall
	// is per connection: a stalled conn parks on its writer loop's
	// blocked list and never delays its loop-mates. Defaults to 30s;
	// negative disables.
	WriteStallTimeout time.Duration
	// SaturationTimeout caps the total time a decoded request may park
	// waiting for space in a saturated pump queue before it is rejected
	// with FlagErr. The park is per shard — only the target shard's
	// queue being full parks the op. Defaults to 30s; negative disables
	// the cap (park until shutdown, the pre-containment behavior).
	SaturationTimeout time.Duration
	// WrapDS, if non-nil, wraps each served structure as it is
	// installed; shard is the owning shard's index and ds the
	// structure's wire identifier (DSCounter, ...). Returning b
	// unchanged keeps the plain structure. This is the fault-injection
	// seam: chaos tests splice internal/faultinject wrappers into a live
	// server through it — including onto a single shard's structure, to
	// prove a poisoned shard's blast radius stops at that shard.
	WrapDS func(shard int, ds uint8, b sched.Batched) sched.Batched
	// TraceRing, when positive, attaches a scheduler event tracer with
	// this many slots per worker ring (see obs.NewTracer; rounded up to
	// a power of two). The tracer attaches to shard 0's runtime only
	// (one ring set; cross-shard tracing would interleave unrelated
	// schedulers). Zero disables tracing; the /metrics registry is
	// always available.
	TraceRing int
	// SlowK sets the tail flight recorder's reservoir size: the K
	// slowest operations per window are kept with their full phase
	// vectors, dumpable via SlowHandler (/slow). The recorder is
	// process-wide; each SlowOp records its shard. Defaults to 16;
	// negative disables the recorder.
	SlowK int
	// SlowWindow sets the flight recorder's rotation period (the
	// "slowest per window" horizon). Defaults to 10s.
	SlowWindow time.Duration
	// SLO, when positive, turns on analytical-twin admission control
	// (DESIGN.md §15): each shard gets a sched.AdmissionController fed
	// by a live-fitted sim.Model of that shard, and when the twin
	// predicts p999 above SLO at the observed arrival rate, excess
	// operations are shed at the edge with a fast FlagErr instead of
	// parking into the saturation list. Zero disables admission
	// control entirely (the pre-twin behavior: blind SaturationTimeout
	// only).
	SLO time.Duration
	// AdmitInterval is the admission sampler's tick: how often each
	// shard's twin is refitted from its live histograms and its
	// credit bucket refilled. Only meaningful with SLO > 0. Defaults
	// to 10ms.
	AdmitInterval time.Duration
}

// Server owns a listener, a shard router (N scheduler runtimes, each
// with its own pump and structure set), and the reactor pool
// (reactor.go) that joins the shards to the sockets. Start it with
// Start, stop it with Shutdown.
type Server struct {
	cfg    Config
	ln     net.Listener
	router *shard.Router

	start time.Time
	quit  chan struct{} // closed when Shutdown begins: stop reading
	// edgeStop is closed when every conn has finalized: loops may exit.
	edgeStop chan struct{}
	done     chan struct{}
	stop     sync.Once

	// The reactor pool. A conn accepted as number i belongs to reader
	// loop i%N and writer loop i%N.
	rloops   []*rloop
	wloops   []*wloop
	nextConn uint64 // accept-order counter; accept goroutine only

	connMu sync.Mutex
	conns  map[*conn]struct{}
	connWG sync.WaitGroup // one per live conn; released at finalize
	srvWG  sync.WaitGroup // accept + router.Serve + reactor loops

	// Saturation retry list: conns parked on a full shard queue, kicked
	// by the next completion (reactor.go satAdd/kickSaturated). The
	// list is process-wide but admission is per shard: a kicked conn
	// re-submits per shard and re-parks if its shard is still full.
	satMu    sync.Mutex
	satConns []*conn
	satCount atomic.Int64

	// Admission control (admission.go): one controller per shard when
	// Config.SLO > 0 (nil slice otherwise), plus the per-shard edge
	// ledger that makes the shard books balance —
	// offered == completed + shed + rejected + abandoned.
	admission []*sched.AdmissionController
	edge      []edgeCounters

	// Twin-residual telemetry (admission.go): per-shard rolling
	// prediction error and the flight-recorder-style ring of recent
	// admission decisions behind /debug/admission. Both nil/empty when
	// admission control is off.
	twin     []twinShardStats
	admitLog *admitLog

	curConns  atomic.Int64
	accepted  atomic.Int64 // operations admitted into a shard pump (all shards)
	rejected  atomic.Int64 // operations refused (bad op, saturation cap, shutdown)
	completed atomic.Int64 // responses retired by the writer loops
	immediate atomic.Int64 // responses that bypassed the pumps (stats, rejections)
	failed    atomic.Int64 // accepted operations completed with Err (contained batch panic)
	decodeErr atomic.Int64 // connections dropped for malformed frames
	readSys   atomic.Int64 // socket read syscalls (reader loops)
	writeSys  atomic.Int64 // socket write syscalls (writer loops)
	evictions atomic.Int64 // conns torn down for deadline/protocol violations

	// Observability (metrics.go): the registry backing /metrics,
	// per-structure service-latency histograms indexed by wire ds code,
	// per-shard histogram sets (batch size, phases, batch delay), and
	// the optional event tracer (shard 0 only).
	reg     *obs.Registry
	latHist [4]*obs.Histogram
	shardM  []shardMetrics
	tracer  *obs.Tracer

	// flight is the tail flight recorder behind /slow (nil when
	// Config.SlowK < 0); process-wide, SlowOps carry their shard.
	flight *obs.FlightRecorder

	reqPool sync.Pool
}

// shardMetrics is one shard's histogram set (metrics.go): the batch
// size distribution its runtime observes, one histogram per lifecycle
// phase duration, the derived batch-delay histogram — Theorem 5.4's
// per-op wait, auditable per shard because Invariants 1 and 2 hold per
// shard — the end-to-end (read-to-done) latency histogram the twin
// residual reads its realized p999 from, and the live conformance
// monitor fed by the shard runtime's batch-land path.
type shardMetrics struct {
	batchHist *obs.Histogram
	phaseHist [obs.NumPhases - 1]*obs.Histogram
	delayHist *obs.Histogram
	totalHist *obs.Histogram
	conform   *obs.Conform
}

// request is one in-flight operation: the OpRecord the scheduler
// batches, plus the connection bookkeeping needed to route the response
// back. The record's Aux points back at the request so the router's
// OnDone callback can recover it.
type request struct {
	op      sched.OpRecord
	c       *conn
	id      uint64
	flags   uint8 // pre-set for rejections and stats; 0 means "derive from op"
	dsIdx   int8  // wire ds code of an accepted op; selects its latency histogram
	shard   int32 // target shard of an accepted op (shard.Of placement)
	echo    bool  // client set OpFlagPhases: echo the stamp vector
	phased  bool  // op completed through a pump, so its stamps are valid
	start   time.Time
	payload []byte
}

// Start builds the shard router and structures, binds the listener, and
// begins serving. It returns once the server is accepting connections.
func Start(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.ReactorLoops <= 0 {
		cfg.ReactorLoops = runtime.NumCPU()
		if cfg.ReactorLoops > 8 {
			cfg.ReactorLoops = 8
		}
	}
	if cfg.ReactorLoops < 1 {
		cfg.ReactorLoops = 1
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	switch {
	case cfg.IdleTimeout == 0:
		cfg.IdleTimeout = 2 * time.Minute
	case cfg.IdleTimeout < 0:
		cfg.IdleTimeout = 0
	}
	switch {
	case cfg.WriteStallTimeout == 0:
		cfg.WriteStallTimeout = 30 * time.Second
	case cfg.WriteStallTimeout < 0:
		cfg.WriteStallTimeout = 0
	}
	switch {
	case cfg.SaturationTimeout == 0:
		cfg.SaturationTimeout = 30 * time.Second
	case cfg.SaturationTimeout < 0:
		cfg.SaturationTimeout = 0
	}
	if cfg.AdmitInterval <= 0 {
		cfg.AdmitInterval = 10 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	wrap := cfg.WrapDS
	if wrap == nil {
		wrap = func(_ int, _ uint8, b sched.Batched) sched.Batched { return b }
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		start:    time.Now(),
		quit:     make(chan struct{}),
		edgeStop: make(chan struct{}),
		done:     make(chan struct{}),
		conns:    make(map[*conn]struct{}),
		edge:     make([]edgeCounters, cfg.Shards),
	}
	s.reqPool.New = func() any {
		rq := &request{}
		rq.op.Aux = rq
		return rq
	}
	// Admission control: one controller per shard, and each shard's
	// policy wrapped in policy.Shed so the pump's Admit seam enforces
	// the controller's depth high-water mark behind the edge shed.
	var policyFor func(int) sched.BatchPolicy
	if cfg.SLO > 0 {
		s.admission = make([]*sched.AdmissionController, cfg.Shards)
		for i := range s.admission {
			s.admission[i] = sched.NewAdmissionController(cfg.SLO)
		}
		s.twin = make([]twinShardStats, cfg.Shards)
		s.admitLog = newAdmitLog(admitLogCap)
		policyFor = func(i int) sched.BatchPolicy {
			return policy.Shed{Inner: cfg.Policy, Ctrl: s.admission[i]}
		}
	}
	s.router = shard.NewRouter(shard.Config{
		Shards:    cfg.Shards,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
		QueueCap:  cfg.QueueCap,
		Policy:    cfg.Policy,
		PolicyFor: policyFor,
		NewDS: func(i int) []sched.Batched {
			// Each shard gets its own structure instances, seeded
			// distinctly (a shard is an independent batching domain, not
			// a replica). Wire code order: counter, skiplist, tree23,
			// hashmap.
			base := cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
			return []sched.Batched{
				wrap(i, DSCounter, counter.New(0)),
				wrap(i, DSSkiplist, skiplist.NewBatched(base^0x9e3779b97f4a7c15)),
				wrap(i, DSTree23, tree23.NewBatched()),
				wrap(i, DSHashmap, hashmap.NewBatched(base^0xd1342543de82ef95)),
			}
		},
		OnDone: s.complete,
	})
	// Metrics/tracing attach to the runtimes and must happen before the
	// pumps occupy them.
	s.buildMetrics()

	// Build the reactor pool before accepting: conns shard onto the
	// loops at accept time.
	s.rloops = make([]*rloop, cfg.ReactorLoops)
	for i := range s.rloops {
		l := &rloop{
			s:     s,
			id:    i,
			conns: make(map[*conn]struct{}),
			fds:   make(map[int]*conn),
		}
		l.sc.readBuf = make([]byte, readBufSize)
		l.sc.initShards(cfg.Shards)
		if err := l.initPoll(); err != nil {
			for _, prev := range s.rloops[:i] {
				prev.poll.close()
			}
			ln.Close()
			return nil, err
		}
		s.rloops[i] = l
	}
	s.wloops = make([]*wloop, cfg.ReactorLoops)
	for i := range s.wloops {
		s.wloops[i] = &wloop{s: s, id: i, notify: make(chan struct{}, 1)}
	}

	s.srvWG.Add(2 + len(s.wloops))
	go func() { defer s.srvWG.Done(); s.router.Serve() }()
	go func() { defer s.srvWG.Done(); s.accept() }()
	if s.admission != nil {
		s.srvWG.Add(1)
		go func() { defer s.srvWG.Done(); s.runAdmission() }()
	}
	for _, w := range s.wloops {
		go w.run()
	}
	if reactorRunsLoops {
		s.srvWG.Add(len(s.rloops))
		for _, l := range s.rloops {
			go l.run()
		}
	}
	return s, nil
}

// Addr returns the listener's address (useful with the :0 default).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Runtime exposes shard 0's scheduler runtime. With Shards == 1 (the
// default) this is the server's only runtime, preserving the
// single-runtime API for stats and tests; multi-shard callers should
// iterate Router().Shards().
func (s *Server) Runtime() *sched.Runtime { return s.router.Shard(0).Runtime() }

// Router exposes the shard router (per-shard runtimes, pumps,
// structures, and admission books).
func (s *Server) Router() *shard.Router { return s.router }

// Shutdown gracefully stops the server: it stops accepting connections
// and requests, drains every in-flight operation on every shard — each
// admitted request still executes and its response is written — and
// then tears down the runtimes. Idempotent and safe to call
// concurrently; every call blocks until the shutdown completes.
func (s *Server) Shutdown() {
	s.stop.Do(func() {
		s.ln.Close()
		close(s.quit)
		// Wake every loop: reader loops park their conns (sweepQuit) and
		// reject parked submissions; admitted operations keep draining
		// through the shard pumps and the writer loops, which close each
		// conn as its last response leaves.
		s.wakeEdge()
		// Past the drain budget, force the remaining conns down entirely
		// so stalled writers abandon their responses and release their
		// window slots.
		force := time.AfterFunc(s.cfg.DrainTimeout, func() {
			for _, c := range s.connSnapshot() {
				s.evict(c, evictShutdown)
			}
		})
		s.connWG.Wait()
		force.Stop()
		// Every conn has finalized: all completions have passed through
		// the writer loops, so the loops can exit and every shard queue
		// is quiescent; Close lets each pump's Serve return, and
		// router.Serve returns when the last shard drains. Shards drain
		// concurrently — there is no cross-shard ordering to respect,
		// because no operation spans shards.
		close(s.edgeStop)
		s.wakeEdge()
		s.router.Close()
		s.srvWG.Wait()
		close(s.done)
	})
	<-s.done
}

// connSnapshot copies the live conn set (force-eviction, wakeEdge).
func (s *Server) connSnapshot() []*conn {
	s.connMu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	return conns
}

func (s *Server) accept() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.connMu.Lock()
		select {
		case <-s.quit:
			s.connMu.Unlock()
			nc.Close()
			return
		default:
		}
		i := s.nextConn
		s.nextConn++
		c := &conn{
			s:  s,
			nc: nc,
			fd: -1,
			rl: s.rloops[i%uint64(len(s.rloops))],
			wl: s.wloops[i%uint64(len(s.wloops))],
		}
		c.lastFrame = obs.Now()
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.connMu.Unlock()
		s.curConns.Add(1)
		s.registerConn(c)
	}
}

// opKind validates a (ds, op) pair and maps it onto the operation kind
// of the target structure class. The wire codes were chosen to coincide
// with the structures' sched.OpKind values, so the mapping is a check
// plus a cast. The structure instance itself is per shard — classify
// resolves it from the routed shard.
func opKind(ds, op uint8) (sched.OpKind, bool) {
	switch ds {
	case DSCounter:
		if op == OpInsert {
			return counter.OpIncrement, true
		}
	case DSSkiplist:
		switch op {
		case OpInsert, OpLookup, OpDelete, OpSucc:
			return sched.OpKind(op), true
		}
	case DSTree23:
		switch op {
		case OpInsert, OpLookup, OpDelete:
			return sched.OpKind(op), true
		}
	case DSHashmap:
		switch op {
		case OpInsert, OpLookup, OpDelete:
			return sched.OpKind(op), true
		}
	}
	return 0, false
}

// shardFor places a validated operation: keyed structures route by
// hash(ds, key); the keyless counter pins to its home shard (sharding a
// prefix-sums counter by key would split one linearizable running total
// into N unrelated ones — see DESIGN.md §13).
func (s *Server) shardFor(ds uint8, key int64) int {
	if ds == DSCounter {
		return s.router.Home(ds)
	}
	return s.router.ShardOf(ds, key)
}

// complete is the router's OnDone callback, invoked on a scheduler
// worker of the owning shard after a batch fills in the record. It
// never blocks: the response is enqueued to the conn's writer loop (a
// bounded append), and if any conns are parked on a saturated queue,
// the space this completion just freed triggers their retry. An
// operation whose batch group panicked (op.Err set by the
// contained-panic path) is answered with FlagErr — failure is per
// operation, not per shard, connection, or process.
func (s *Server) complete(shardID int, op *sched.OpRecord) {
	rq := op.Aux.(*request)
	if op.Err != nil {
		rq.flags = FlagErr
		s.failed.Add(1)
	}
	s.latHist[rq.dsIdx].Observe(int64(time.Since(rq.start)))

	// PhaseDone closes the stamp vector; the owning shard's phase
	// histograms and batch-delay histogram observe exactly one value per
	// pump-served operation here (contained-panic ops included), so each
	// shard's delay histogram count equals its runtime's LiveBatchStats
	// op count once the server quiesces — the per-shard Theorem 5.4
	// envelope stays auditable. Everything below is allocation-free:
	// fixed arrays, atomic histogram bumps, and a by-value reservoir
	// offer that fast-rejects all but tail ops.
	op.Phases[obs.PhaseDone] = obs.Now()
	rq.phased = true
	durs := obs.PhaseDurations(op.Phases)
	sm := &s.shardM[shardID]
	for i, h := range sm.phaseHist {
		h.Observe(durs[i])
	}
	sm.delayHist.Observe(obs.BatchDelay(op.Phases))
	sm.totalHist.Observe(op.Phases[obs.PhaseDone] - op.Phases[obs.PhaseRead])
	if s.flight != nil {
		s.flight.Offer(obs.SlowOp{
			TotalNS:    op.Phases[obs.PhaseDone] - op.Phases[obs.PhaseRead],
			Stamps:     op.Phases,
			Durations:  durs,
			BatchDelay: obs.BatchDelay(op.Phases),
			DS:         dsNames[rq.dsIdx],
			Kind:       int32(op.Kind),
			Key:        op.Key,
			Shard:      int32(shardID),
			BatchSize:  op.BatchSize,
			BatchGroup: op.BatchGroup,
			Err:        op.Err != nil,
		})
	}
	rq.c.wl.enqueue(rq)
	if s.satCount.Load() > 0 {
		s.kickSaturated()
	}
}

// String describes the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("batcherd on %s (shards=%d, P=%d, window=%d, loops=%d)",
		s.ln.Addr(), s.router.N(), s.Runtime().Workers(), s.cfg.Window, len(s.rloops))
}
