//go:build linux

package server

// Linux edge: each reader loop is an epoll event loop over its shard of
// connection fds, doing raw non-blocking reads and writes. The Go
// runtime netpoller still owns the fds (we extract them via SyscallConn
// and never dup), but once a conn is registered the reactor performs
// all its I/O with direct syscalls — the runtime poller never fires
// because no deadline-armed Read/Write is ever issued. A self-pipe
// registered in each epoll set delivers kicks (window freed, saturation
// retry, shutdown) to the loop without a syscall storm: one pipe byte
// wakes the loop no matter how many kicks queued behind it.

import (
	"net"
	"syscall"

	"batcher/internal/obs"
)

// reactorRunsLoops: the reader loops are real event-loop goroutines.
const reactorRunsLoops = true

// poller wraps one epoll instance plus its wake pipe.
type poller struct {
	epfd  int
	wakeR int
	wakeW int
}

func newPoller() (*poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipe [2]int
	if err := syscall.Pipe(pipe[:]); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	syscall.SetNonblock(pipe[0], true)
	syscall.SetNonblock(pipe[1], true)
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(pipe[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, pipe[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return nil, err
	}
	return &poller{epfd: epfd, wakeR: pipe[0], wakeW: pipe[1]}, nil
}

func (p *poller) close() {
	syscall.Close(p.epfd)
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}

// add registers fd level-triggered for reads. EPOLLRDHUP folds peer
// half-close into the read path (read returns 0).
func (p *poller) add(fd int) error {
	ev := syscall.EpollEvent{
		Events: syscall.EPOLLIN | syscall.EPOLLRDHUP,
		Fd:     int32(fd),
	}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
}

// mod toggles read interest: a parked conn (window full, saturation,
// quit) keeps its registration but stops generating events, so a
// level-triggered full socket buffer cannot spin the loop.
func (p *poller) mod(fd int, readable bool) {
	var events uint32
	if readable {
		events = syscall.EPOLLIN | syscall.EPOLLRDHUP
	}
	ev := syscall.EpollEvent{Events: events, Fd: int32(fd)}
	syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev)
}

func (p *poller) del(fd int) {
	syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
}

// wake makes the next (or current) EpollWait return. A full pipe means
// a wake is already pending — exactly the semantics needed.
func (p *poller) wake() {
	var b [1]byte
	syscall.Write(p.wakeW, b[:])
}

func (p *poller) drainWake() {
	var b [64]byte
	for {
		n, err := syscall.Read(p.wakeR, b[:])
		if n < len(b) || err != nil {
			return
		}
	}
}

func (p *poller) wait(events []syscall.EpollEvent, msec int) (int, error) {
	n, err := syscall.EpollWait(p.epfd, events, msec)
	if err == syscall.EINTR {
		return 0, nil
	}
	return n, err
}

// initPoll creates the loop's epoll instance.
func (l *rloop) initPoll() error {
	p, err := newPoller()
	if err != nil {
		return err
	}
	l.poll = p
	return nil
}

// run is the reader loop: wait for readable fds (and wake-pipe kicks),
// drain each one through ingest, then run the deadline sweep.
func (l *rloop) run() {
	defer l.s.srvWG.Done()
	defer l.poll.close()
	events := make([]syscall.EpollEvent, 128)
	lastSweep := obs.Now()
	for {
		n, err := l.poll.wait(events, int(sweepInterval.Milliseconds()))
		if err != nil {
			// The epoll fd is healthy for the server's lifetime; any
			// other error would spin, so bail to the stop check.
			n = 0
		}
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == l.poll.wakeR {
				l.poll.drainWake()
				continue
			}
			l.mu.Lock()
			c := l.fds[fd]
			l.mu.Unlock()
			if c != nil {
				l.readable(c, &l.sc)
			}
		}
		l.drainKicks()
		if now := obs.Now(); now-lastSweep >= int64(sweepInterval) || l.s.quitting() {
			l.sweep(now)
			lastSweep = now
		}
		if l.s.edgeStopped() {
			return
		}
	}
}

// readable drains c's socket: raw reads into the loop's frame buffer,
// each feeding ingest, until EAGAIN, a short read (buffer drained), a
// park, or an eviction. Runs on the loop goroutine only.
func (l *rloop) readable(c *conn, sc *edgeScratch) {
	s := l.s
	for {
		c.mu.Lock()
		if c.state.Load() != connOpen || c.paused {
			c.mu.Unlock()
			return
		}
		// The raw read happens under c.mu: state was just checked, so
		// the fd cannot be concurrently closed and reused under us. The
		// fd is non-blocking; the critical section is bounded.
		n, err := syscall.Read(c.fd, sc.readBuf)
		c.mu.Unlock()
		s.readSys.Add(1)
		if err == syscall.EAGAIN || err == syscall.EINTR {
			return
		}
		if err != nil || n == 0 {
			s.evict(c, evictReadError)
			return
		}
		if !s.ingest(c, sc.readBuf[:n], sc) {
			return
		}
		if n < len(sc.readBuf) {
			// Short read: the socket buffer is drained. Skip the extra
			// syscall that would return EAGAIN; level-triggered epoll
			// re-fires if more arrived meanwhile.
			return
		}
	}
}

// registerConn binds an accepted conn to its reader loop: extract the
// fd and add it to the loop's epoll set. Runs on the accept goroutine.
func (s *Server) registerConn(c *conn) {
	fd := -1
	if tc, ok := c.nc.(*net.TCPConn); ok {
		if rc, err := tc.SyscallConn(); err == nil {
			rc.Control(func(u uintptr) { fd = int(u) })
		}
	}
	if fd < 0 {
		s.evict(c, evictReadError)
		return
	}
	l := c.rl
	c.mu.Lock()
	c.fd = fd
	l.mu.Lock()
	l.conns[c] = struct{}{}
	l.fds[fd] = c
	l.mu.Unlock()
	err := l.poll.add(fd)
	c.mu.Unlock()
	if err != nil {
		s.evict(c, evictReadError)
	}
}

// setReadInterestLocked toggles the conn's epoll read interest. Caller
// holds c.mu; a closed conn's fd is never touched (detach precedes the
// state flip, both under the same critical section in evict).
func (c *conn) setReadInterestLocked(on bool) {
	if c.fd < 0 || c.state.Load() != connOpen {
		return
	}
	c.rl.poll.mod(c.fd, on)
}

// detachLocked removes the conn from its loop's epoll set and maps.
// Caller holds c.mu; must precede nc.Close so the fd number cannot be
// reused by a new conn while stale entries remain.
func (c *conn) detachLocked() {
	l := c.rl
	if c.fd >= 0 {
		l.poll.del(c.fd)
	}
	l.mu.Lock()
	delete(l.conns, c)
	if c.fd >= 0 {
		delete(l.fds, c.fd)
	}
	l.mu.Unlock()
}

// tryWrite performs one non-blocking raw write. again=true means the
// kernel buffer is full (or the write was partial) and the caller
// should retry later; a false return with err=nil means b fully left.
func (c *conn) tryWrite(b []byte) (int, bool, error) {
	n, err := syscall.Write(c.fd, b)
	if n < 0 {
		n = 0
	}
	switch err {
	case nil:
		return n, n < len(b), nil
	case syscall.EAGAIN, syscall.EINTR:
		return n, true, nil
	default:
		return n, false, err
	}
}

// wakeEdge prods every loop: reader loops via their wake pipes, writer
// loops via notify. Used by Shutdown for the quit and stop transitions.
func (s *Server) wakeEdge() {
	for _, l := range s.rloops {
		l.poll.wake()
	}
	for _, w := range s.wloops {
		select {
		case w.notify <- struct{}{}:
		default:
		}
	}
}
