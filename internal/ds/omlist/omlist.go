// Package omlist implements an order-maintenance list — insert-after and
// precedes queries in amortized O(1) — and its implicitly batched
// wrapper.
//
// This is the substrate of the paper's motivating application
// (Section 1): an on-the-fly data-race detector maintains a
// series-parallel-order structure that must be updated at every fork and
// join *before program flow continues*, which makes explicit batching
// impossible — and implicit batching exactly right. The English-Hebrew
// SP-order scheme (Bender, Fineman, Gilbert, Leiserson, SPAA 2004) keeps
// two such lists; examples/racedetect builds the detector on this
// package.
//
// The sequential structure is the classic labeled list: each element
// carries a 64-bit label, insert-after takes the midpoint of its
// neighbors' labels, and when a gap is exhausted the whole list relabels
// evenly (amortized O(1) per insert for the demo's purposes; a
// production two-level scheme would bound the worst case).
package omlist

import "batcher/internal/sched"

const spacing = uint64(1) << 32

// Elem identifies a list element. The zero Elem is the list's permanent
// origin element.
type Elem int32

type node struct {
	label uint64
	prev  Elem
	next  Elem
}

// List is the sequential order-maintenance list. The origin element
// (Elem 0) always exists and is the minimum of the order.
type List struct {
	nodes    []node
	last     Elem
	Relabels int // relabeling passes, for amortization tests
}

// NewList returns a list containing only the origin element.
func NewList() *List {
	return &List{nodes: []node{{label: 0, prev: -1, next: -1}}}
}

// Len returns the number of elements, including the origin.
func (l *List) Len() int { return len(l.nodes) }

// InsertAfter inserts a new element immediately after x and returns it.
func (l *List) InsertAfter(x Elem) Elem {
	nx := l.nodes[x].next
	var label uint64
	switch {
	case nx == -1:
		// Appending past the current maximum.
		if l.nodes[x].label > ^uint64(0)-spacing {
			l.relabel()
		}
		label = l.nodes[x].label + spacing
	default:
		lo, hi := l.nodes[x].label, l.nodes[nx].label
		if hi-lo < 2 {
			l.relabel()
			lo, hi = l.nodes[x].label, l.nodes[nx].label
		}
		label = lo + (hi-lo)/2
	}
	id := Elem(len(l.nodes))
	l.nodes = append(l.nodes, node{label: label, prev: x, next: nx})
	l.nodes[x].next = id
	if nx != -1 {
		l.nodes[nx].prev = id
	} else {
		l.last = id
	}
	return id
}

// Before reports whether a precedes b in the list order. a == b yields
// false.
func (l *List) Before(a, b Elem) bool {
	return l.nodes[a].label < l.nodes[b].label
}

// relabel redistributes labels evenly along the list.
func (l *List) relabel() {
	l.Relabels++
	label := uint64(0)
	for e := Elem(0); e != -1; e = l.nodes[e].next {
		l.nodes[e].label = label
		label += spacing
	}
}

// order returns the elements in list order (testing helper).
func (l *List) order() []Elem {
	var out []Elem
	for e := Elem(0); e != -1; e = l.nodes[e].next {
		out = append(out, e)
	}
	return out
}

// --- batched wrapper --------------------------------------------------------

// Operation kinds for the batched order-maintenance list.
const (
	// OpInsertAfter inserts after Elem(Key); the new Elem lands in Res.
	OpInsertAfter sched.OpKind = iota
	// OpBefore asks whether Elem(Key) precedes Elem(Val); Ok receives
	// the answer.
	OpBefore
)

// Batched is the implicitly batched order-maintenance list. Queries in a
// batch linearize before the batch's inserts; inserts apply in
// compaction order (concurrent inserts after the same element are
// ordered arbitrarily, which is correct for SP-maintenance because a
// sequential strand never forks twice concurrently).
type Batched struct {
	l *List
}

var _ sched.Batched = (*Batched)(nil)

// NewBatched returns a batched list containing only the origin.
func NewBatched() *Batched { return &Batched{l: NewList()} }

// List exposes the underlying list for quiescent inspection.
func (b *Batched) List() *List { return b.l }

// InsertAfter inserts a new element after x. Core tasks only.
func (b *Batched) InsertAfter(c *sched.Ctx, x Elem) Elem {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpInsertAfter, Key: int64(x)}
	c.Batchify(op)
	return Elem(op.Res)
}

// Before reports whether a precedes b. Core tasks only.
func (b *Batched) Before(c *sched.Ctx, a, x Elem) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpBefore, Key: int64(a), Val: int64(x)}
	c.Batchify(op)
	return op.Ok
}

// RunBatch implements sched.Batched.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	var queries, inserts []*sched.OpRecord
	for _, op := range ops {
		switch op.Kind {
		case OpBefore:
			queries = append(queries, op)
		case OpInsertAfter:
			inserts = append(inserts, op)
		default:
			panic("omlist: unknown op kind")
		}
	}
	// Queries: read-only, fully parallel.
	c.For(0, len(queries), 1, func(_ *sched.Ctx, i int) {
		op := queries[i]
		op.Ok = b.l.Before(Elem(op.Key), Elem(op.Val))
	})
	// Inserts: label assignment is structural; batches are at most P
	// operations, so a sequential pass matches the prototype's style.
	for _, op := range inserts {
		op.Res = int64(b.l.InsertAfter(Elem(op.Key)))
		op.Ok = true
	}
}
