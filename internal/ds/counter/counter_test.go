package counter

import (
	"sync/atomic"
	"testing"

	"batcher/internal/sched"
)

func TestSingleIncrement(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 1})
	b := New(10)
	var got int64
	rt.Run(func(c *sched.Ctx) { got = b.Increment(c, 5) })
	if got != 15 {
		t.Fatalf("Increment returned %d, want 15", got)
	}
	if b.Value() != 15 {
		t.Fatalf("Value = %d, want 15", b.Value())
	}
}

func TestNegativeIncrements(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 2})
	b := New(0)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, 100, 1, func(cc *sched.Ctx, i int) {
			if i%2 == 0 {
				b.Increment(cc, 3)
			} else {
				b.Increment(cc, -1)
			}
		})
	})
	if b.Value() != 50*3-50 {
		t.Fatalf("Value = %d, want 100", b.Value())
	}
}

func TestParallelIncrementsTotal(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		rt := sched.New(sched.Config{Workers: p, Seed: 3})
		b := New(0)
		const n = 1000
		rt.Run(func(c *sched.Ctx) {
			c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Increment(cc, 1) })
		})
		if b.Value() != n {
			t.Fatalf("P=%d: Value = %d, want %d", p, b.Value(), n)
		}
	}
}

func TestLinearizableReturnValues(t *testing.T) {
	// Figure 1's program: each +1 increment must observe a distinct value
	// in [1, n], i.e. the return values form a permutation.
	rt := sched.New(sched.Config{Workers: 8, Seed: 4})
	b := New(0)
	const n = 500
	results := make([]int64, n)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			results[i] = b.Increment(cc, 1)
		})
	})
	seen := make([]bool, n+1)
	for i, r := range results {
		if r < 1 || r > n || seen[r] {
			t.Fatalf("op %d returned non-unique value %d", i, r)
		}
		seen[r] = true
	}
}

func TestPrefixSemanticsWithinBatch(t *testing.T) {
	// With varying deltas, each return value must equal initial plus the
	// sum of some subset of deltas that includes this op's delta; globally
	// the multiset of (return - previous-return-in-linearization) must be
	// exactly the deltas. We verify the weaker but decisive property that
	// sorting the results reconstructs a valid running sum of a
	// permutation of the deltas.
	rt := sched.New(sched.Config{Workers: 4, Seed: 5})
	b := New(100)
	deltas := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	results := make([]int64, len(deltas))
	rt.Run(func(c *sched.Ctx) {
		c.For(0, len(deltas), 1, func(cc *sched.Ctx, i int) {
			results[i] = b.Increment(cc, deltas[i])
		})
	})
	var total int64
	for _, d := range deltas {
		total += d
	}
	if b.Value() != 100+total {
		t.Fatalf("final = %d, want %d", b.Value(), 100+total)
	}
	// The maximum result must be the final value (the last op in the
	// linearization sees everything).
	var maxRes int64
	for _, r := range results {
		if r > maxRes {
			maxRes = r
		}
	}
	if maxRes != b.Value() {
		t.Fatalf("max result = %d, want final %d", maxRes, b.Value())
	}
}

func TestManyRunsAccumulate(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 4, Seed: 6})
	b := New(0)
	for round := 0; round < 5; round++ {
		rt.Run(func(c *sched.Ctx) {
			c.For(0, 100, 1, func(cc *sched.Ctx, i int) { b.Increment(cc, 2) })
		})
	}
	if b.Value() != 1000 {
		t.Fatalf("Value = %d, want 1000", b.Value())
	}
}

func TestSeqCounter(t *testing.T) {
	s := NewSeq(5)
	if got := s.Increment(3); got != 8 {
		t.Fatalf("Increment = %d, want 8", got)
	}
	if got := s.Increment(-10); got != -2 {
		t.Fatalf("Increment = %d, want -2", got)
	}
	if s.Value() != -2 {
		t.Fatalf("Value = %d", s.Value())
	}
}

func TestMixedWithCoreWork(t *testing.T) {
	// Increments interleaved with core-only work; checks the scheduler
	// keeps both dags flowing.
	rt := sched.New(sched.Config{Workers: 4, Seed: 7})
	b := New(0)
	var coreSum atomic.Int64
	rt.Run(func(c *sched.Ctx) {
		c.Fork(
			func(cc *sched.Ctx) {
				cc.For(0, 200, 1, func(ccc *sched.Ctx, i int) { b.Increment(ccc, 1) })
			},
			func(cc *sched.Ctx) {
				cc.For(0, 10000, 16, func(_ *sched.Ctx, i int) { coreSum.Add(int64(i)) })
			},
		)
	})
	if b.Value() != 200 {
		t.Fatalf("counter = %d", b.Value())
	}
	if coreSum.Load() != 10000*9999/2 {
		t.Fatalf("coreSum = %d", coreSum.Load())
	}
}
