// Boruvka: minimum spanning tree by Borůvka's algorithm, with all
// component bookkeeping going through an implicitly batched union-find.
// Parallel MST is one of the applications the paper's introduction
// credits to batched data structures.
//
// Each Borůvka round scans the edges *in parallel*: every edge asks the
// batched union-find whether its endpoints are already connected (a
// concurrent, implicitly batched query) and, if not, bids to be its
// component's cheapest outgoing edge. The winning edges are then
// contracted with batched unions. Rounds halve the component count, so
// O(lg V) rounds suffice. The resulting MST weight is verified against
// Kruskal's algorithm over the same graph.
//
// Run:
//
//	go run ./examples/boruvka
package main

import (
	"fmt"
	"log"
	"sort"
	"sync/atomic"

	"batcher"
	"batcher/internal/ds/unionfind"
	"batcher/internal/rng"
)

type edge struct {
	u, v int32
	w    int32
}

// genGraph returns a connected weighted graph: a random spanning spine
// plus extra random edges. Weights are distinct so the MST is unique,
// which makes weight comparison exact.
func genGraph(r *rng.Rand, vertices, extra int) []edge {
	var edges []edge
	perm := r.Perm(vertices)
	for i := 1; i < vertices; i++ {
		u := perm[r.Intn(i)]
		edges = append(edges, edge{int32(u), int32(perm[i]), 0})
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(vertices), r.Intn(vertices)
		if u != v {
			edges = append(edges, edge{int32(u), int32(v), 0})
		}
	}
	// Distinct weights via a shuffled ramp.
	ws := r.Perm(len(edges))
	for i := range edges {
		edges[i].w = int32(ws[i] + 1)
	}
	return edges
}

// boruvkaMST computes the MST weight using the batched union-find.
func boruvkaMST(vertices int, edges []edge, workers int) (int64, int) {
	rt := batcher.New(batcher.Config{Workers: workers, Seed: 17})
	uf := unionfind.NewBatched(vertices)

	var total int64
	picked := 0
	for uf.Seq().Sets() > 1 {
		// best[c] holds the cheapest outgoing edge seen for component c,
		// encoded as weight<<32 | edgeIndex so CAS-min picks by weight.
		best := make([]atomic.Int64, vertices)
		for i := range best {
			best[i].Store(1 << 62)
		}
		bid := func(c int32, enc int64) {
			for {
				cur := best[c].Load()
				if enc >= cur {
					return
				}
				if best[c].CompareAndSwap(cur, enc) {
					return
				}
			}
		}
		rt.Run(func(c *batcher.Ctx) {
			c.For(0, len(edges), 8, func(cc *batcher.Ctx, i int) {
				e := edges[i]
				// Two batched queries per edge: the components of its
				// endpoints (concurrent data-structure accesses).
				cu := uf.Find(cc, e.u)
				cv := uf.Find(cc, e.v)
				if cu == cv {
					return
				}
				enc := int64(e.w)<<32 | int64(i)
				bid(cu, enc)
				bid(cv, enc)
			})
		})
		// Contract the winning edges with batched unions.
		var roundWeight atomic.Int64
		var roundPicked atomic.Int32
		rt.Run(func(c *batcher.Ctx) {
			c.For(0, vertices, 8, func(cc *batcher.Ctx, comp int) {
				enc := best[comp].Load()
				if enc == 1<<62 {
					return
				}
				e := edges[enc&0xffffffff]
				if uf.Union(cc, e.u, e.v) {
					roundWeight.Add(int64(e.w))
					roundPicked.Add(1)
				}
			})
		})
		if roundPicked.Load() == 0 {
			break // disconnected graph (cannot happen with our spine)
		}
		total += roundWeight.Load()
		picked += int(roundPicked.Load())
	}
	return total, picked
}

// kruskalMST is the sequential oracle.
func kruskalMST(vertices int, edges []edge) (int64, int) {
	sorted := append([]edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].w < sorted[j].w })
	uf := unionfind.NewSeq(vertices)
	var total int64
	picked := 0
	for _, e := range sorted {
		if uf.Union(e.u, e.v) {
			total += int64(e.w)
			picked++
		}
	}
	return total, picked
}

func main() {
	const (
		vertices = 4_000
		extraE   = 16_000
		workers  = 4
	)
	r := rng.New(2014)
	edges := genGraph(r, vertices, extraE)

	gotW, gotN := boruvkaMST(vertices, edges, workers)
	wantW, wantN := kruskalMST(vertices, edges)
	if gotW != wantW || gotN != wantN {
		log.Fatalf("Borůvka (%d edges, weight %d) != Kruskal (%d edges, weight %d)",
			gotN, gotW, wantN, wantW)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", vertices, len(edges))
	fmt.Printf("Borůvka over the batched union-find matches Kruskal: %d edges, weight %d ✓\n",
		gotN, gotW)
}
