// Command batcherd serves the repository's batched data structures over
// TCP, extending implicit batching to the network edge: operations
// decoded from client connections are fed through the scheduler's pump
// and coalesce into batches via the pending array, exactly as
// fork-join strands do. See internal/server for the wire protocol and
// DESIGN.md §8 for why the paper's invariants survive the trip.
//
// Usage:
//
//	batcherd serve [-addr :7411] [-shards N] [-workers N] [-window 32] [-queue N]
//	               [-idle-timeout D] [-write-stall D] [-saturation-timeout D]
//	               [-slo D] [-admit-interval D]
//	               [-metrics host:9100] [-trace-ring N] [-slow-k K] [-slow-window D]
//	    Run the server until SIGINT/SIGTERM, then drain gracefully.
//	    -shards runs N independent scheduler runtimes behind the one
//	    listener, routing each op by hash(ds, key) (internal/shard);
//	    the stats document and /metrics then report per shard.
//	    -slo enables analytical-twin admission control (DESIGN.md §15):
//	    each shard fits a live service-curve model from its own batch
//	    histograms and, when the model predicts p999 latency above the
//	    SLO at the offered rate, sheds the excess at the edge with a
//	    fast error instead of letting it park. -admit-interval sets the
//	    sampler period (default 10ms).
//	    -metrics serves an HTTP listener with /metrics (Prometheus text
//	    format, including the per-phase and batch-delay histograms and
//	    the live conformance gauges), /slow (the tail flight recorder:
//	    the K slowest ops per window with full phase vectors, as JSON),
//	    /debug/admission (the twin-residual summary and the ring of
//	    recent admission decisions, with -slo), /debug/pprof/* (Go's
//	    profilers), /debug/rtrace/{start,stop} (on-demand Go runtime
//	    execution trace), and — with -trace-ring — /trace, a live Chrome
//	    trace_event JSON snapshot of the scheduler's event rings (N
//	    slots per worker), streamed.
//
//	batcherd load [-addr host:7411] [-conns 64] [-ops 1000] [-ds skiplist]
//	              [-read 0.5] [-pipeline 16] [-rate 0] [-keyspace 65536]
//	              [-dist uniform|zipf] [-zipf-s 1.1] [-phases]
//	    Drive a workload at a running server and report throughput and
//	    latency percentiles, then print the server's stats document.
//	    -phases asks the server to echo each op's phase-stamp vector and
//	    prints the client-side phase breakdown and batch-delay tail.
//	    -conns takes either one connection count or a comma-separated
//	    sweep ("4,64,256,1024"); a sweep pre-dials each fan-in level and
//	    prints a ns/op-vs-conns table instead of the single-run report,
//	    making the reactor's flat per-op cost visible from the shell.
//
//	batcherd stats [-addr host:7411]
//	    Fetch and print the server's stats document: aggregated totals
//	    (including the admission ledger — offered/shed/SLO/predicted
//	    p999 — and the live Theorem 5.4 conformance gauges), and — when
//	    the server runs sharded — a per-shard table (accepted, offered,
//	    ops/s, shed, batches, mean batch, queue depth, predicted p999,
//	    headroom, max landings, faults).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"batcher/internal/loadgen"
	"batcher/internal/sched/policy"
	"batcher/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serveCmd(os.Args[2:])
	case "load":
		loadCmd(os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: batcherd {serve|load|stats} [flags]; see batcherd <cmd> -h")
	os.Exit(2)
}

func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address")
	shards := fs.Int("shards", 1, "independent runtime shards behind the listener (key-hashed routing)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "scheduler workers per shard (P)")
	window := fs.Int("window", 32, "per-connection in-flight window")
	queue := fs.Int("queue", 0, "pump ingress queue capacity (0 = 8×P)")
	seed := fs.Uint64("seed", 20140623, "seed for the hashed structures")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain budget")
	idle := fs.Duration("idle-timeout", 0, "reap connections idle this long (0 = 2m default, <0 disables)")
	stall := fs.Duration("write-stall", 0, "break connections whose reads stall a response write this long (0 = 30s default, <0 disables)")
	saturation := fs.Duration("saturation-timeout", 0, "reject requests parked this long on a saturated queue (0 = 30s default, <0 disables)")
	slo := fs.Duration("slo", 0, "p999 latency SLO enabling analytical-twin admission control (0 disables; excess load sheds fast at the edge)")
	admitInterval := fs.Duration("admit-interval", 0, "admission sampler refit period (0 = 10ms default; only with -slo)")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /slow, and /debug/pprof on this address; empty disables")
	traceRing := fs.Int("trace-ring", 0, "scheduler event-ring slots per worker (0 disables tracing; enables /trace with -metrics)")
	slowK := fs.Int("slow-k", 0, "tail flight recorder: keep the K slowest ops per window (0 = 16 default, <0 disables)")
	slowWindow := fs.Duration("slow-window", 0, "tail flight recorder rotation window (0 = 10s default)")
	policyName := fs.String("policy", "default", "batch-formation policy per shard runtime: default|size-cap|deadline")
	policyK := fs.Int("policy-k", 0, "size-cap policy: launch once this many workers are trapped (0 = P, a full batch)")
	policyDeadline := fs.Duration("policy-deadline", 0, "deadline policy: pending-delay budget (0 = 1ms default)")
	fs.Parse(args)

	pol, err := policy.ByName(*policyName, *policyK, *policyDeadline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batcherd: %v\n", err)
		os.Exit(2)
	}
	s, err := server.Start(server.Config{
		Addr:              *addr,
		Shards:            *shards,
		Workers:           *workers,
		Seed:              *seed,
		QueueCap:          *queue,
		Window:            *window,
		DrainTimeout:      *drain,
		IdleTimeout:       *idle,
		WriteStallTimeout: *stall,
		SaturationTimeout: *saturation,
		SLO:               *slo,
		AdmitInterval:     *admitInterval,
		Policy:            pol,
		TraceRing:         *traceRing,
		SlowK:             *slowK,
		SlowWindow:        *slowWindow,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "batcherd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", s)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", s.MetricsHandler())
		mux.Handle("/trace", s.TraceHandler())
		mux.Handle("/slow", s.SlowHandler())
		mux.Handle("/debug/admission", s.AdmissionDebugHandler())
		// Go's own profilers ride the same listener: CPU/heap/goroutine
		// profiles under /debug/pprof/, and an on-demand runtime
		// execution trace under /debug/rtrace/{start,stop} (the
		// go tool trace format, as opposed to /trace's scheduler-level
		// Chrome export).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		registerRuntimeTrace(mux)
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batcherd: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		go http.Serve(ml, mux)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("batcherd: draining...")
	s.Shutdown()
	st := s.Snapshot()
	fmt.Printf("batcherd: served %d ops in %d batches (mean %.2f), %d rejected, %d shed\n",
		st.BatchedOps, st.Batches, st.MeanBatch, st.Rejected, st.Shed)
}

// registerRuntimeTrace installs /debug/rtrace/start and /stop: start
// begins collecting a Go runtime execution trace into a server-side
// file, stop ends it and streams the file back. Unlike
// /debug/pprof/trace (which traces for a fixed duration into the
// response), start/stop brackets let an operator capture exactly the
// window an incident spans.
func registerRuntimeTrace(mux *http.ServeMux) {
	var (
		mu   sync.Mutex
		f    *os.File
		path string
	)
	mux.HandleFunc("/debug/rtrace/start", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if f != nil {
			http.Error(w, "runtime trace already running", http.StatusConflict)
			return
		}
		tf, err := os.CreateTemp("", "batcherd-rtrace-*.out")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := rtrace.Start(tf); err != nil {
			tf.Close()
			os.Remove(tf.Name())
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		f, path = tf, tf.Name()
		fmt.Fprintln(w, "runtime trace started; GET /debug/rtrace/stop to collect")
	})
	mux.HandleFunc("/debug/rtrace/stop", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if f == nil {
			http.Error(w, "no runtime trace running", http.StatusConflict)
			return
		}
		rtrace.Stop()
		f.Close()
		tf, err := os.Open(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		} else {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="rtrace.out"`)
			io.Copy(w, tf)
			tf.Close()
		}
		os.Remove(path)
		f, path = nil, ""
	})
}

func loadCmd(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "server address")
	conns := fs.String("conns", "64", "concurrent connections; a comma-separated list (\"4,64,256\") sweeps fan-in and prints a ns/op table")
	ops := fs.Int("ops", 1000, "operations per connection")
	dsName := fs.String("ds", "skiplist", "target structure: counter|skiplist|tree23|hashmap")
	read := fs.Float64("read", 0.5, "fraction of lookups (rest are inserts)")
	window := fs.Int("window", 16, "closed-loop pipelining depth per connection (alias of -pipeline)")
	pipeline := fs.Int("pipeline", 0, "closed-loop pipelining depth per connection (overrides -window when set)")
	rate := fs.Float64("rate", 0, "open-loop aggregate ops/s (0 = closed-loop; incompatible with a -conns sweep)")
	keyspace := fs.Int64("keyspace", 1<<16, "key range")
	dist := fs.String("dist", "uniform", "key distribution: uniform|zipf (zipf skews load across shards)")
	zipfS := fs.Float64("zipf-s", 1.1, "zipf exponent (only with -dist zipf; higher = more skew)")
	seed := fs.Uint64("seed", 1, "workload seed")
	phases := fs.Bool("phases", false, "request per-op phase attribution and print the phase breakdown")
	fs.Parse(args)

	ds, ok := map[string]uint8{
		"counter":  server.DSCounter,
		"skiplist": server.DSSkiplist,
		"tree23":   server.DSTree23,
		"hashmap":  server.DSHashmap,
	}[*dsName]
	if !ok {
		fmt.Fprintf(os.Stderr, "batcherd: unknown structure %q\n", *dsName)
		os.Exit(2)
	}
	sweep, err := parseConns(*conns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batcherd: -conns %q: %v\n", *conns, err)
		os.Exit(2)
	}
	if *dist != "uniform" && *dist != "zipf" {
		fmt.Fprintf(os.Stderr, "batcherd: unknown key distribution %q\n", *dist)
		os.Exit(2)
	}
	w := loadgen.Workload{
		Addr: *addr, Ops: *ops, Window: *window, Pipeline: *pipeline,
		RatePerSec: *rate, DS: ds, ReadFrac: *read,
		KeySpace: *keyspace, KeyDist: *dist, ZipfS: *zipfS,
		Seed: *seed, Phases: *phases,
	}

	if len(sweep) > 1 {
		if *rate > 0 {
			fmt.Fprintln(os.Stderr, "batcherd: -conns sweep is closed-loop only; drop -rate")
			os.Exit(2)
		}
		sweepCmd(w, sweep)
		printStats(*addr)
		return
	}

	w.Conns = sweep[0]
	res, err := loadgen.Run(w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batcherd: load: %v (partial: %v)\n", err, res)
		os.Exit(1)
	}
	fmt.Println(res)
	if *phases {
		fmt.Print(res.PhaseBreakdown())
	}
	printStats(*addr)
}

// parseConns parses the -conns value: one count or a comma-separated
// sweep list.
func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("connection counts must be positive integers")
		}
		out = append(out, n)
	}
	return out, nil
}

// sweepCmd runs the workload once per fan-in level, pre-dialing each
// level's connections so the table reflects steady-state per-op cost,
// and prints ns/op against conns. A flat ns/op column from the first
// row to the last is the reactor edge doing its job: per-op cost that
// does not grow with connection count.
func sweepCmd(w loadgen.Workload, sweep []int) {
	fmt.Printf("%8s %9s %10s %10s %12s %10s %10s\n",
		"conns", "pipeline", "total_ops", "ns/op", "ops/s", "p50", "p99")
	var base float64
	for _, n := range sweep {
		w.Conns = n
		d, err := loadgen.NewDriver(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batcherd: sweep conns=%d: %v\n", n, err)
			os.Exit(1)
		}
		total := w.Ops * n
		res, err := d.Run(total)
		d.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "batcherd: sweep conns=%d: %v (partial: %v)\n", n, err, res)
			os.Exit(1)
		}
		nsPerOp := float64(res.Elapsed.Nanoseconds()) / float64(res.Responses)
		rel := ""
		if base == 0 {
			base = nsPerOp
		} else if base > 0 {
			rel = fmt.Sprintf("  (%.2fx)", nsPerOp/base)
		}
		fmt.Printf("%8d %9d %10d %10.0f %12.0f %10s %10s%s\n",
			n, pipelineDepth(w), total, nsPerOp, res.OpsPerSec, res.P50, res.P99, rel)
	}
}

// pipelineDepth resolves the effective per-conn depth for display.
func pipelineDepth(w loadgen.Workload) int {
	if w.Pipeline > 0 {
		return w.Pipeline
	}
	if w.Window > 0 {
		return w.Window
	}
	return 16
}

func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "server address")
	fs.Parse(args)
	printStats(*addr)
}

func printStats(addr string) {
	c, err := loadgen.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batcherd: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "batcherd: stats: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("server: shards=%d P=%d uptime=%.1fs conns=%d\n", st.Shards, st.Workers, st.UptimeSec, st.Conns)
	fmt.Printf("ops:    accepted=%d rejected=%d completed=%d (%.0f ops/s)\n",
		st.Accepted, st.Rejected, st.Completed, st.OpsPerSec)
	fmt.Printf("batch:  %d batches, %d ops, mean size %.2f, queue depth %d\n",
		st.Batches, st.BatchedOps, st.MeanBatch, st.QueueDepth)
	fmt.Printf("faults: failed=%d batch_panics=%d decode_errors=%d evictions=%d\n",
		st.Failed, st.BatchPanics, st.DecodeErrors, st.Evictions)
	if st.BatchedOps > 0 && st.ReadSyscalls > 0 && st.WriteSyscalls > 0 {
		fmt.Printf("edge:   %d reactor loops, %d reads, %d writes (%.1f ops/read, %.1f ops/write)\n",
			st.ReactorLoops, st.ReadSyscalls, st.WriteSyscalls,
			float64(st.BatchedOps)/float64(st.ReadSyscalls),
			float64(st.BatchedOps)/float64(st.WriteSyscalls))
	}
	slo := "off"
	if st.AdmitSLONS > 0 {
		slo = time.Duration(st.AdmitSLONS).String()
	}
	fmt.Printf("admit:  offered=%d shed=%d slo=%s predicted_p999=%s twin_residual=%.1f%%\n",
		st.Offered, st.Shed, slo, time.Duration(st.AdmitPredictedP999NS), st.TwinResidualPct)
	fmt.Printf("bound:  headroom=%.3f max_landings=%d (Theorem 5.4 envelope; >1 / >2 break the guarantees)\n",
		st.ConformHeadroom, st.ConformMaxLandings)
	if len(st.PerShard) > 1 {
		fmt.Printf("%6s %10s %10s %10s %7s %8s %8s %10s %12s %9s %6s %7s %7s\n",
			"shard", "accepted", "offered", "ops/s", "shed", "batches", "mean",
			"queue", "pred_p999", "headroom", "lands", "failed", "panics")
		for _, sh := range st.PerShard {
			fmt.Printf("%6d %10d %10d %10.0f %7d %8d %8.2f %10d %12s %9.3f %6d %7d %7d\n",
				sh.Shard, sh.Accepted, sh.Offered, sh.OpsPerSec, sh.Shed,
				sh.Batches, sh.MeanBatch, sh.QueueDepth,
				time.Duration(sh.PredictedP999NS), sh.Conformance.Headroom,
				sh.Conformance.MaxLandings, sh.Failed, sh.BatchPanics)
		}
	}
}
