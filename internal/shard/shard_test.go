package shard

import (
	"runtime"
	"sync"
	"testing"

	"batcher/internal/sched"
)

// Wire ds codes, duplicated from internal/server (shard must not import
// the server; the values are protocol constants and cannot drift).
const (
	dsCounter  = 0
	dsSkiplist = 1
	dsTree23   = 2
	dsHashmap  = 3
)

func TestOfDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		for ds := uint8(0); ds < 4; ds++ {
			for key := int64(-3); key < 1000; key++ {
				got := Of(ds, key, n)
				if got < 0 || got >= n {
					t.Fatalf("Of(%d,%d,%d) = %d out of range", ds, key, n, got)
				}
				if again := Of(ds, key, n); again != got {
					t.Fatalf("Of(%d,%d,%d) not deterministic: %d then %d", ds, key, n, got, again)
				}
			}
		}
	}
	if Of(dsSkiplist, 42, 1) != 0 {
		t.Fatal("n=1 must always place on shard 0")
	}
}

// The chaos suite poisons shard 0's skiplist and asserts counter
// traffic survives untouched; that only isolates anything if the
// counter's home shard is not shard 0 at the N the test uses. Pin the
// placement here so a future hash change that breaks the premise fails
// loudly in this package, next to the hash.
func TestHomePlacementAtFour(t *testing.T) {
	if h := Home(dsCounter, 4); h == 0 {
		t.Fatalf("counter home shard at N=4 is 0; chaos shard-poison test needs it off shard 0 (got %d)", h)
	}
	t.Logf("home shards at N=4: counter=%d skiplist=%d tree23=%d hashmap=%d",
		Home(dsCounter, 4), Home(dsSkiplist, 4), Home(dsTree23, 4), Home(dsHashmap, 4))
}

func TestOfSpreadsKeys(t *testing.T) {
	const n = 4
	var counts [n]int
	for key := int64(0); key < 4096; key++ {
		counts[Of(dsSkiplist, key, n)]++
	}
	for i, c := range counts {
		// Expected 1024 per shard; a uniform hash stays well within
		// ±25% at this sample size. Catches degenerate mixing only.
		if c < 768 || c > 1280 {
			t.Fatalf("shard %d got %d of 4096 uniform keys; hash is not spreading (%v)", i, c, counts)
		}
	}
}

func TestOfSaltsByDS(t *testing.T) {
	// ds-salting: the per-key placements of two structures must not be
	// the identical function (a hot key on one structure should not
	// deterministically pin every structure's same shard).
	same := 0
	const keys = 1024
	for key := int64(0); key < keys; key++ {
		if Of(dsSkiplist, key, 4) == Of(dsHashmap, key, 4) {
			same++
		}
	}
	if same == keys {
		t.Fatal("skiplist and hashmap place every key identically; ds salt is dead")
	}
}

// counterDS is a minimal keyless Batched for router plumbing tests: the
// batch handler assigns each op the next running total, like the real
// prefix-sums counter, so a permutation check works.
type counterDS struct {
	mu    sync.Mutex
	total int64
}

func (c *counterDS) RunBatch(ctx *sched.Ctx, ops []*sched.OpRecord) {
	c.mu.Lock()
	for _, op := range ops {
		c.total++
		op.Res = c.total
	}
	c.mu.Unlock()
}

func TestRouterServesAndDrainsPerShardBooks(t *testing.T) {
	const (
		shards = 4
		perSh  = 256
	)
	ctrs := make([]*counterDS, shards)
	r := NewRouter(Config{
		Shards:  shards,
		Workers: 2,
		Seed:    1,
		NewDS: func(i int) []sched.Batched {
			ctrs[i] = &counterDS{}
			return []sched.Batched{ctrs[i]}
		},
	})
	if r.N() != shards {
		t.Fatalf("N() = %d, want %d", r.N(), shards)
	}

	var served sync.WaitGroup
	served.Add(1)
	go func() { defer served.Done(); r.Serve() }()

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		sh := r.Shard(i)
		if sh.ID() != i {
			t.Errorf("Shard(%d).ID() = %d", i, sh.ID())
		}
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			ds := sh.DS(0).(*counterDS)
			_ = ds
			ops := make([]*sched.OpRecord, 0, 8)
			submitted := 0
			for submitted < perSh {
				ops = ops[:0]
				span := 8
				if perSh-submitted < span {
					span = perSh - submitted
				}
				for j := 0; j < span; j++ {
					ops = append(ops, &sched.OpRecord{Kind: 0, DS: sh.DS(0)})
				}
				n, err := sh.SubmitAll(ops)
				submitted += n
				if err == sched.ErrPumpSaturated {
					runtime.Gosched() // backpressure: resubmit the refused suffix
					continue
				}
				if err != nil {
					t.Errorf("shard %d SubmitAll: %v", sh.ID(), err)
					return
				}
			}
		}(sh)
	}
	wg.Wait()
	r.Close()
	r.Close() // idempotent
	served.Wait()

	var totA, totC int64
	for i := 0; i < shards; i++ {
		a, c, f := r.Shard(i).Books()
		if a != perSh || c != perSh || f != 0 {
			t.Fatalf("shard %d books accepted=%d completed=%d failed=%d, want %d/%d/0", i, a, c, f, perSh, perSh)
		}
		if ctrs[i].total != perSh {
			t.Fatalf("shard %d counter total %d, want %d (counters must be independent)", i, ctrs[i].total, perSh)
		}
		totA += a
		totC += c
	}
	if totA != shards*perSh || totC != shards*perSh {
		t.Fatalf("aggregate books %d/%d, want %d", totA, totC, shards*perSh)
	}
	if b, o := r.LiveBatchStats(); o != shards*perSh || b < shards {
		t.Fatalf("LiveBatchStats = (%d batches, %d ops), want ops=%d and >=%d batches", b, o, shards*perSh, shards)
	}
	if d := r.Depth(); d != 0 {
		t.Fatalf("Depth after drain = %d, want 0", d)
	}
	if p := r.BatchPanics(); p != 0 {
		t.Fatalf("BatchPanics = %d, want 0", p)
	}
}

func TestRouterOnDoneCarriesShardID(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	r := NewRouter(Config{
		Shards:  3,
		Workers: 1,
		NewDS:   func(i int) []sched.Batched { return []sched.Batched{&counterDS{}} },
		OnDone: func(shard int, op *sched.OpRecord) {
			mu.Lock()
			seen[shard]++
			mu.Unlock()
		},
	})
	var served sync.WaitGroup
	served.Add(1)
	go func() { defer served.Done(); r.Serve() }()
	for i := 0; i < r.N(); i++ {
		sh := r.Shard(i)
		for j := 0; j < 5; j++ {
			if _, err := sh.SubmitAll([]*sched.OpRecord{{Kind: 0, DS: sh.DS(0)}}); err != nil {
				t.Fatalf("shard %d submit: %v", i, err)
			}
		}
	}
	r.Close()
	served.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < r.N(); i++ {
		if seen[i] != 5 {
			t.Fatalf("OnDone saw %d ops for shard %d, want 5 (map %v)", seen[i], i, seen)
		}
	}
}
