package tree23

import "testing"

// FuzzTreeAgainstMap drives the sequential 2-3 tree (classic insert plus
// split/join delete) from a fuzzer-chosen tape, checking a map oracle and
// the structural invariants after every mutation burst.
func FuzzTreeAgainstMap(f *testing.F) {
	f.Add([]byte{0, 5, 0, 9, 2, 5, 1, 9})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 2, 1, 2, 2})
	f.Fuzz(func(t *testing.T, tape []byte) {
		tr := NewTree()
		m := map[int64]int64{}
		for i := 0; i+1 < len(tape); i += 2 {
			op := tape[i] % 3
			k := int64(tape[i+1])
			switch op {
			case 0:
				_, existed := m[k]
				if tr.Insert(k, int64(i)) == existed {
					t.Fatalf("Insert(%d) mismatch", k)
				}
				m[k] = int64(i)
			case 1:
				wv, wok := m[k]
				gv, gok := tr.Contains(k)
				if gok != wok || (wok && gv != wv) {
					t.Fatalf("Contains(%d) mismatch", k)
				}
			case 2:
				_, existed := m[k]
				if tr.Delete(k) != existed {
					t.Fatalf("Delete(%d) mismatch", k)
				}
				delete(m, k)
			}
		}
		if tr.Len() != len(m) {
			t.Fatalf("Len = %d want %d", tr.Len(), len(m))
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSplitJoinRoundTrip splits a fuzzer-built tree at a fuzzer-chosen
// key and verifies the rejoined tree is intact.
func FuzzSplitJoinRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, byte(3))
	f.Fuzz(func(t *testing.T, keys []byte, atB byte) {
		tr := NewTree()
		set := map[int64]bool{}
		for _, b := range keys {
			tr.Insert(int64(b), int64(b))
			set[int64(b)] = true
		}
		at := int64(atB)
		l, r, found, _ := split(tr.root, at)
		if found != set[at] {
			t.Fatalf("split found=%v want %v", found, set[at])
		}
		var root *node
		if found {
			root = join(l, kv{at, at}, r)
		} else {
			root = join2(l, r)
		}
		jt := &Tree{root: root, size: len(set)}
		if err := jt.checkInvariants(); err != nil {
			t.Fatal(err)
		}
		got := jt.Keys()
		if len(got) != len(set) {
			t.Fatalf("%d keys, want %d", len(got), len(set))
		}
		for _, k := range got {
			if !set[k] {
				t.Fatalf("unexpected key %d", k)
			}
		}
	})
}
