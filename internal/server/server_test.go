package server_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"batcher/internal/loadgen"
	"batcher/internal/server"
)

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// TestServerCounterPermutation is the linearizability and no-lost-
// response witness: 64 connections pipeline increments at a shared
// counter, and the multiset of returned running totals must be exactly
// a permutation of 1..N — every duplicate, gap, or drop is visible.
func TestServerCounterPermutation(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, Seed: 21})
	const conns, per = 64, 50
	total := conns * per

	results := make([][]int64, conns)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := loadgen.Dial(s.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			got := make([]int64, 0, per)
			const window = 8
			inFlight := 0
			recv := func() bool {
				r, err := c.Recv()
				if err != nil {
					t.Errorf("recv: %v", err)
					return false
				}
				if r.Err() || !r.OK() {
					t.Errorf("increment rejected (flags %#x)", r.Flags)
					return false
				}
				got = append(got, r.Res)
				return true
			}
			for k := 0; k < per; k++ {
				if inFlight == window {
					if !recv() {
						return
					}
					inFlight--
				}
				if _, err := c.Send(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				inFlight++
				if inFlight == window || k == per-1 {
					if err := c.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
			for ; inFlight > 0; inFlight-- {
				if !recv() {
					return
				}
			}
			results[i] = got
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	seen := make(map[int64]bool, total)
	for _, rs := range results {
		if len(rs) != per {
			t.Fatalf("connection got %d responses, want %d", len(rs), per)
		}
		// Note: within one connection the values need not be increasing —
		// pipelined increments can share a batch, and working-set order
		// inside a batch is arbitrary; responses return in completion
		// order. The permutation across all connections is the witness.
		for _, v := range rs {
			if v < 1 || v > int64(total) || seen[v] {
				t.Fatalf("counter value %d out of range or duplicated", v)
			}
			seen[v] = true
		}
	}
}

// TestServerMixedLoad drives inserts and searches at the skip list from
// many connections with disjoint key ranges, then verifies every
// inserted key is found with its value and absent keys miss.
func TestServerMixedLoad(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, Seed: 22})
	const conns, per = 16, 40

	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := loadgen.Dial(s.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			base := int64(i) * per
			for k := int64(0); k < per; k++ {
				key := base + k
				r, err := c.Do(server.Request{DS: server.DSSkiplist, Op: server.OpInsert, Key: key, Val: key * 2})
				if err != nil || r.Err() {
					t.Errorf("insert %d: err=%v flags=%#x", key, err, r.Flags)
					return
				}
				if !r.OK() {
					t.Errorf("insert %d: reported duplicate on fresh key", key)
					return
				}
			}
			for k := int64(0); k < per; k++ {
				key := base + k
				r, err := c.Do(server.Request{DS: server.DSSkiplist, Op: server.OpLookup, Key: key})
				if err != nil || r.Err() || !r.OK() {
					t.Errorf("lookup %d: err=%v flags=%#x", key, err, r.Flags)
					return
				}
				if r.Res != key*2 {
					t.Errorf("lookup %d: val %d, want %d", key, r.Res, key*2)
					return
				}
			}
			// A key no connection ever inserts must miss.
			r, err := c.Do(server.Request{DS: server.DSSkiplist, Op: server.OpLookup, Key: int64(conns)*per + 7})
			if err != nil || r.Err() || r.OK() {
				t.Errorf("absent lookup: err=%v flags=%#x, want miss", err, r.Flags)
			}
		}(i)
	}
	wg.Wait()
}

// TestServerAllStructures sends one round trip at each served structure
// and each op, pinning the (ds, op) routing table.
func TestServerAllStructures(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2, Seed: 23})
	c, err := loadgen.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	do := func(ds, op uint8, key, val int64) server.Response {
		t.Helper()
		r, err := c.Do(server.Request{DS: ds, Op: op, Key: key, Val: val})
		if err != nil {
			t.Fatalf("do(ds=%d op=%d): %v", ds, op, err)
		}
		return r
	}

	if r := do(server.DSCounter, server.OpInsert, 0, 5); r.Err() || r.Res != 5 {
		t.Fatalf("counter: flags=%#x res=%d", r.Flags, r.Res)
	}
	for _, ds := range []uint8{server.DSSkiplist, server.DSTree23, server.DSHashmap} {
		if r := do(ds, server.OpInsert, 10, 100); r.Err() || !r.OK() {
			t.Fatalf("ds %d insert: flags=%#x", ds, r.Flags)
		}
		if r := do(ds, server.OpLookup, 10, 0); r.Err() || !r.OK() || r.Res != 100 {
			t.Fatalf("ds %d lookup: flags=%#x res=%d", ds, r.Flags, r.Res)
		}
		if r := do(ds, server.OpDelete, 10, 0); r.Err() || !r.OK() {
			t.Fatalf("ds %d delete: flags=%#x", ds, r.Flags)
		}
		if r := do(ds, server.OpLookup, 10, 0); r.Err() || r.OK() {
			t.Fatalf("ds %d lookup after delete: flags=%#x", ds, r.Flags)
		}
	}
	// Skip-list successor: key carries the found key.
	do(server.DSSkiplist, server.OpInsert, 50, 500)
	if r := do(server.DSSkiplist, server.OpSucc, 40, 0); r.Err() || !r.OK() || r.Key != 50 || r.Res != 500 {
		t.Fatalf("succ: flags=%#x key=%d res=%d", r.Flags, r.Key, r.Res)
	}
	// Invalid (ds, op) pairs are rejected, not fatal.
	if r := do(server.DSCounter, server.OpDelete, 0, 0); !r.Err() {
		t.Fatalf("counter delete accepted (flags=%#x)", r.Flags)
	}
	if r := do(server.DSTree23, server.OpSucc, 0, 0); !r.Err() {
		t.Fatalf("tree23 succ accepted (flags=%#x)", r.Flags)
	}
	if r := do(9, server.OpInsert, 0, 0); !r.Err() {
		t.Fatalf("unknown ds accepted (flags=%#x)", r.Flags)
	}
}

// TestServerBatchingAndStats runs the loadgen driver at the server and
// then checks the stats endpoint: concurrent network load must achieve
// a mean batch size above 1 (the whole point of the serving layer), and
// the counters must be coherent.
func TestServerBatchingAndStats(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, Seed: 24})
	res, err := loadgen.Run(loadgen.Workload{
		Addr:     s.Addr().String(),
		Conns:    64,
		Ops:      100,
		Window:   8,
		DS:       server.DSHashmap,
		ReadFrac: 0.5,
		KeySpace: 1 << 12,
		Seed:     24,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d rejected ops: %v", res.Errors, res)
	}
	if res.Responses != res.Sent || res.Responses != 64*100 {
		t.Fatalf("responses %d, sent %d, want %d", res.Responses, res.Sent, 64*100)
	}
	t.Logf("loadgen: %v", res)

	c, err := loadgen.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	t.Logf("stats: %+v", st)
	if st.Workers != 4 {
		t.Fatalf("stats workers = %d, want 4", st.Workers)
	}
	if st.Accepted != 64*100 || st.BatchedOps != 64*100 {
		t.Fatalf("stats accepted=%d batched_ops=%d, want %d", st.Accepted, st.BatchedOps, 64*100)
	}
	if st.MeanBatch <= 1.0 {
		t.Fatalf("mean batch size %.2f; want > 1 (no batching at the network edge)", st.MeanBatch)
	}
	if st.Completed < st.Accepted {
		t.Fatalf("completed %d < accepted %d", st.Completed, st.Accepted)
	}
}

// TestServerBackpressure saturates a deliberately tiny ingress (window
// 2, pump queue 2) with pipelined load from many connections. The
// bounded window parks readers instead of queueing unboundedly, so
// every request must still complete — exactly one response each, none
// rejected, none lost — just slower.
func TestServerBackpressure(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2, Seed: 25, Window: 2, QueueCap: 2})
	const conns, per = 8, 100
	res, err := loadgen.Run(loadgen.Workload{
		Addr:   s.Addr().String(),
		Conns:  conns,
		Ops:    per,
		Window: 8, // deliberately deeper than the server window
		DS:     server.DSCounter,
		Seed:   25,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("saturation rejected %d ops; parking must be lossless: %v", res.Errors, res)
	}
	if res.Responses != conns*per {
		t.Fatalf("responses %d, want %d (lost or duplicated)", res.Responses, conns*per)
	}

	c, err := loadgen.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Accepted != conns*per {
		t.Fatalf("stats accepted %d, want %d", st.Accepted, conns*per)
	}
	if st.Rejected != 0 {
		t.Fatalf("stats rejected %d, want 0", st.Rejected)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after quiescence, want 0", st.QueueDepth)
	}
}

// TestServerGracefulShutdown interrupts live traffic with Shutdown and
// checks the drain guarantee: every admitted operation executes and its
// response reaches the client before the connection closes. The counter
// permutation makes a lost or phantom response arithmetically visible.
func TestServerGracefulShutdown(t *testing.T) {
	s, err := server.Start(server.Config{Workers: 4, Seed: 26})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	const conns = 16

	var mu sync.Mutex
	var got []int64 // successful increment results across all conns
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := loadgen.Dial(s.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			var mine []int64
			for {
				r, err := c.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1})
				if err != nil {
					break // connection drained and closed by shutdown
				}
				if !r.Err() {
					if !r.OK() {
						t.Error("accepted increment without Ok")
						return
					}
					mine = append(mine, r.Res)
				}
			}
			mu.Lock()
			got = append(got, mine...)
			mu.Unlock()
		}()
	}

	// Let traffic build, then pull the plug mid-flight.
	time.Sleep(100 * time.Millisecond)
	s.Shutdown()
	wg.Wait()
	if t.Failed() {
		return
	}
	s.Shutdown() // idempotent: a second call returns immediately

	if len(got) == 0 {
		t.Fatal("no operations completed before shutdown")
	}
	// Every response the clients received must form a permutation of
	// 1..N for N = count: a dropped in-flight response leaves a hole at
	// the top, a duplicate or phantom collides.
	seen := make(map[int64]bool, len(got))
	max := int64(0)
	for _, v := range got {
		if v < 1 || seen[v] {
			t.Fatalf("result %d duplicated or out of range", v)
		}
		seen[v] = true
		if v > max {
			max = v
		}
	}
	if max != int64(len(got)) {
		t.Fatalf("received %d results but max is %d: responses lost in shutdown", len(got), max)
	}
	t.Logf("drained %d in-flight-era operations cleanly", len(got))
}

// TestServerConcurrentShutdown calls Shutdown from many goroutines at
// once; all must return and the server must come down exactly once.
func TestServerConcurrentShutdown(t *testing.T) {
	s, err := server.Start(server.Config{Workers: 2, Seed: 27})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Shutdown() }()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent Shutdown wedged")
	}
}

// TestServerProtocolError checks that a malformed frame drops only the
// offending connection, not the server.
func TestServerProtocolError(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2, Seed: 28})

	bad, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// A frame with a correct length prefix but a truncated body: decodes
	// wrong, and the server must drop only this connection.
	if _, err := bad.Write([]byte{3, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := bad.Read(make([]byte, 1)); err == nil {
		t.Fatal("expected connection close after malformed frame")
	}
	bad.Close()

	good, err := loadgen.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer good.Close()
	r, err := good.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1})
	if err != nil || r.Err() {
		t.Fatalf("server unhealthy after peer protocol error: err=%v flags=%#x", err, r.Flags)
	}
}
