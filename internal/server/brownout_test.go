package server_test

// The brownout chaos witness for analytical-twin admission control
// (DESIGN.md §15). The scenario the twin exists for: offered load far
// past capacity must degrade gracefully — excess operations get a fast
// FlagErr at the edge (a quick "no" from a healthy server), accepted
// operations keep meeting the latency SLO, every shard's books balance
// to the op, and the drain stays clean. Without admission control the
// same overload collapses into saturation parks that burn their whole
// timeout to answer the same "no".
//
// Capacity is made deliberately tiny and known: slowBatched adds a
// fixed sleep to every hashmap batch, so a shard's service curve is
// dominated by a cost the live fitter can actually recover, and "10×
// capacity" is a few thousand ops/s — reachable by the loadgen even on
// one CPU under -race. The CI brownout job runs this file across the
// policy matrix (BATCHERD_POLICY), proving the Shed wrapper preserves
// every inner policy's guarantees.

import (
	"testing"
	"time"

	"batcher/internal/loadgen"
	"batcher/internal/sched"
	"batcher/internal/server"
)

// slowBatched inflates a structure's batch cost by a fixed sleep: a
// stand-in for an expensive BOP that gives the shard a known, low
// capacity (roughly Workers/delay ops/sec once batches fill).
type slowBatched struct {
	inner sched.Batched
	delay time.Duration
}

func (s *slowBatched) RunBatch(ctx *sched.Ctx, ops []*sched.OpRecord) {
	time.Sleep(s.delay)
	s.inner.RunBatch(ctx, ops)
}

// brownoutServer starts a 2-worker sharded server with admission
// control and the slow hashmap installed on every shard.
func brownoutServer(t *testing.T, shards int, slo, batchCost time.Duration) *server.Server {
	t.Helper()
	s, err := server.Start(server.Config{
		Workers:       2,
		Shards:        shards,
		Seed:          1009,
		QueueCap:      128,
		Window:        256,
		Policy:        testPolicy(t),
		SLO:           slo,
		AdmitInterval: 10 * time.Millisecond,
		WrapDS: func(_ int, ds uint8, b sched.Batched) sched.Batched {
			if ds == server.DSHashmap {
				return &slowBatched{inner: b, delay: batchCost}
			}
			return b
		},
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s
}

// auditBrownoutBooks asserts every shard's extended ledger balances to
// the op and the drain was clean: offered == completed + shed +
// rejected + abandoned, nothing abandoned (clients stayed up), and
// accepted == completed (every admitted op answered exactly once).
func auditBrownoutBooks(t *testing.T, st server.Stats) {
	t.Helper()
	for _, ss := range st.PerShard {
		if got := ss.Completed + ss.Shed + ss.Rejected + ss.Abandoned; ss.Offered != got {
			t.Errorf("shard %d books: offered %d != completed %d + shed %d + rejected %d + abandoned %d",
				ss.Shard, ss.Offered, ss.Completed, ss.Shed, ss.Rejected, ss.Abandoned)
		}
		if ss.Abandoned != 0 {
			t.Errorf("shard %d abandoned %d ops with clean clients", ss.Shard, ss.Abandoned)
		}
		if ss.Accepted != ss.Completed {
			t.Errorf("shard %d drain: accepted %d != completed %d", ss.Shard, ss.Accepted, ss.Completed)
		}
	}
}

// TestBrownoutGracefulShed is the 10× overload witness. Phase one
// (closed-loop, moderate) primes each shard's fitter with real batch
// samples; phase two offers roughly ten times the modeled capacity
// open-loop. With admission control on, the overload must brown out:
// a substantial shed count, shed responses fast (they never touch a
// pump), accepted responses within the SLO, books balanced per shard,
// clean drain.
func TestBrownoutGracefulShed(t *testing.T) {
	const (
		slo       = 1 * time.Second
		batchCost = 5 * time.Millisecond
	)
	// Capacity ≈ shards × workers/batchCost = 2 × 2/5ms = 800 ops/s.
	overloadRate := 8000.0
	overloadOps := 2200 // per conn, 8 conns: ~2.2s of offered overload
	if testing.Short() {
		overloadOps = 800
	}
	s := brownoutServer(t, 2, slo, batchCost)
	defer s.Shutdown()
	addr := s.Addr().String()

	// Warm-up: enough completions for every shard's fitter (uniform
	// keys reach both shards) while staying well under capacity. It
	// must be open-loop at an explicit modest rate: a closed-loop
	// warm-up self-paces to the server's completion rate, i.e. ρ≈1,
	// which the twin rightly prices as unsustainable. Note the fitted
	// capacity here is conservative — warm-up batches carry one op, so
	// the proportional curve s(b) = 5ms·b undersells the flat 5ms
	// batch cost until overload-sized batches teach the fitter better.
	warm, err := loadgen.Run(loadgen.Workload{
		Addr: addr, Conns: 2, Ops: 40, RatePerSec: 150,
		DS: server.DSHashmap, KeySpace: 1 << 12, Seed: 1010,
	})
	if err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if warm.Errors != 0 {
		t.Fatalf("warm-up shed %d ops well under capacity", warm.Errors)
	}

	// Poll the stats document during the overload: the predicted-p999
	// gauge is a live signal (it reads near zero again once the load
	// drains), so the assertion must catch it mid-brownout.
	var maxPred int64
	pollStop := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-pollStop:
				return
			case <-tick.C:
				if p := s.Snapshot().AdmitPredictedP999NS; p > maxPred {
					maxPred = p
				}
			}
		}
	}()
	res, err := loadgen.Run(loadgen.Workload{
		Addr: addr, Conns: 8, Ops: overloadOps, RatePerSec: overloadRate,
		DS: server.DSHashmap, KeySpace: 1 << 12, Seed: 1011,
	})
	close(pollStop)
	<-pollDone
	if err != nil {
		t.Fatalf("overload: %v", err)
	}
	if res.Responses != res.Sent {
		t.Fatalf("responses %d != sent %d", res.Responses, res.Sent)
	}
	// Brownout, not collapse: most of a 10× overload must shed...
	if res.Errors < res.Sent/4 {
		t.Fatalf("only %d/%d overload ops shed; admission control did not engage", res.Errors, res.Sent)
	}
	// ...while the server still does real work.
	if served := res.Responses - res.Errors; served < 100 {
		t.Fatalf("only %d ops served during overload", served)
	}
	// Shed ops answer fast: an edge FlagErr never waits on a pump, so
	// even its tail stays far inside the SLO.
	if res.ErrLatency == nil {
		t.Fatal("no error-latency histogram despite sheds")
	}
	if p99 := time.Duration(res.ErrLatency.Quantile(0.99)); p99 > slo/4 {
		t.Errorf("shed p99 = %v, want < %v (fast error, not a stalled park)", p99, slo/4)
	}
	// Accepted ops keep the SLO: the twin only admits what it predicts
	// the shard can serve inside it.
	if res.P999 > slo {
		t.Errorf("accepted-op p999 = %v exceeds SLO %v", res.P999, slo)
	}

	s.Shutdown()
	st := s.Snapshot()
	auditBrownoutBooks(t, st)
	t.Logf("brownout: offered=%d served=%d shed=%d rejected=%d shed-p99=%v ok-p999=%v worst-predicted=%v slo=%v",
		st.Offered, res.Responses-res.Errors, st.Shed, st.Rejected,
		time.Duration(res.ErrLatency.Quantile(0.99)), res.P999,
		time.Duration(maxPred), slo)
	if st.Shed == 0 {
		t.Fatal("stats report zero sheds after a shedding run")
	}
	if int64(res.Errors) != st.Shed+st.Rejected {
		t.Errorf("client errors %d != shed %d + rejected %d", res.Errors, st.Shed, st.Rejected)
	}
	if st.AdmitSLONS != slo.Nanoseconds() {
		t.Errorf("AdmitSLONS = %d, want %d", st.AdmitSLONS, slo.Nanoseconds())
	}
	if maxPred <= slo.Nanoseconds() {
		t.Errorf("worst predicted p999 %d never exceeded the SLO %d during a 10x overload",
			maxPred, slo.Nanoseconds())
	}
	if st.Offered != warm.Sent+res.Sent {
		t.Errorf("offered %d != total sent %d", st.Offered, warm.Sent+res.Sent)
	}
}

// TestBrownoutBooksBalanceShards4 hammers a 4-shard server whose SLO is
// set below the service time itself, so once the fitters warm the
// controllers limit permanently and nearly everything sheds — the
// worst case for the edge ledger. Every shard's books must still
// balance to the op through sustained closed-loop shedding.
func TestBrownoutBooksBalanceShards4(t *testing.T) {
	ops := 400
	if testing.Short() {
		ops = 150
	}
	s := brownoutServer(t, 4, 2*time.Millisecond, 1*time.Millisecond)
	defer s.Shutdown()
	res, err := loadgen.Run(loadgen.Workload{
		Addr:  s.Addr().String(),
		Conns: 8, Ops: ops, Window: 16,
		DS: server.DSHashmap, KeySpace: 1 << 14, Seed: 1012,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Responses != res.Sent {
		t.Fatalf("responses %d != sent %d", res.Responses, res.Sent)
	}
	s.Shutdown()
	st := s.Snapshot()
	auditBrownoutBooks(t, st)
	if st.Shed == 0 {
		t.Fatal("an SLO below the service time shed nothing")
	}
	if st.Shed != int64(res.Errors)-st.Rejected {
		t.Errorf("shed %d != client errors %d - rejected %d", st.Shed, res.Errors, st.Rejected)
	}
	if st.Offered != res.Sent {
		t.Errorf("offered %d != sent %d", st.Offered, res.Sent)
	}
}
