package tree23

import (
	"sort"

	"batcher/internal/sched"
)

// Operation kinds for the batched 2-3 tree.
const (
	// OpInsert inserts Key with Val; Ok reports "newly inserted".
	OpInsert sched.OpKind = iota
	// OpContains looks up Key; Ok reports presence, Res the value.
	OpContains
	// OpDelete removes Key; Ok reports "was present".
	OpDelete
	// OpInsertMany inserts every key in Aux.([]int64) with value Val;
	// Res receives the count of newly inserted keys.
	OpInsertMany
)

// bulkCutoff is the request-count below which bulk operations run
// sequentially rather than forking.
const bulkCutoff = 4

// Batched is the implicitly batched 2-3 tree.
type Batched struct {
	t *Tree
}

var _ sched.Batched = (*Batched)(nil)

// NewBatched returns an empty batched 2-3 tree.
func NewBatched() *Batched { return &Batched{t: NewTree()} }

// Tree exposes the underlying tree for quiescent inspection.
func (b *Batched) Tree() *Tree { return b.t }

// Insert adds key/val; reports whether key was newly inserted. Core
// tasks only.
func (b *Batched) Insert(c *sched.Ctx, key, val int64) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpInsert, Key: key, Val: val}
	c.Batchify(op)
	return op.Ok
}

// InsertMany adds all keys with value val, returning how many were newly
// inserted. Core tasks only.
func (b *Batched) InsertMany(c *sched.Ctx, keys []int64, val int64) int {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpInsertMany, Val: val, Aux: keys}
	c.Batchify(op)
	return int(op.Res)
}

// Contains looks up key. Core tasks only.
func (b *Batched) Contains(c *sched.Ctx, key int64) (int64, bool) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpContains, Key: key}
	c.Batchify(op)
	return op.Res, op.Ok
}

// Delete removes key, reporting whether it was present. Core tasks only.
func (b *Batched) Delete(c *sched.Ctx, key int64) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpDelete, Key: key}
	c.Batchify(op)
	return op.Ok
}

// ireq is one key's insertion request within a batch; added points into a
// per-request flag slice so forked tasks never write shared fields.
type ireq struct {
	key, val int64
	added    *bool
}

// RunBatch implements sched.Batched. Linearization within a batch: all
// lookups (pre-batch state), then all inserts in key order, then all
// deletes in key order.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	var lookups []*sched.OpRecord
	var ranges []*sched.OpRecord
	var delOps []*sched.OpRecord
	type insOwner struct {
		op    *sched.OpRecord
		first int // index of this op's first request in reqs
		count int
	}
	var reqs []ireq
	var owners []insOwner
	for _, op := range ops {
		switch op.Kind {
		case OpContains:
			lookups = append(lookups, op)
		case OpRange:
			ranges = append(ranges, op)
		case OpDelete:
			delOps = append(delOps, op)
		case OpInsert:
			owners = append(owners, insOwner{op: op, first: len(reqs), count: 1})
			reqs = append(reqs, ireq{key: op.Key, val: op.Val})
		case OpInsertMany:
			keys := op.Aux.([]int64)
			owners = append(owners, insOwner{op: op, first: len(reqs), count: len(keys)})
			for _, k := range keys {
				reqs = append(reqs, ireq{key: k, val: op.Val})
			}
		default:
			panic("tree23: unknown op kind")
		}
	}

	// Phase 1: lookups and range queries, fully parallel and read-only.
	c.For(0, len(lookups), 1, func(_ *sched.Ctx, i int) {
		lookups[i].Res, lookups[i].Ok = b.t.Contains(lookups[i].Key)
	})
	c.For(0, len(ranges), 1, func(_ *sched.Ctx, i int) {
		op := ranges[i]
		out := op.Aux.(*RangeResult)
		rangeWalk(b.t.root, op.Key, op.Val, out)
		op.Res = int64(len(out.Keys))
		op.Ok = true
	})

	// Phase 2: inserts.
	if len(reqs) > 0 {
		flags := make([]bool, len(reqs))
		for i := range reqs {
			reqs[i].added = &flags[i]
		}
		// Sort stably and dedup: for equal keys the last value wins (it
		// is linearized last); only the first occurrence can be "new".
		order := make([]int, len(reqs))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, z int) bool { return reqs[order[a]].key < reqs[order[z]].key })
		sorted := make([]ireq, 0, len(reqs))
		for idx := 0; idx < len(order); {
			j := idx
			for j+1 < len(order) && reqs[order[j+1]].key == reqs[order[idx]].key {
				j++
			}
			r := reqs[order[idx]]      // first occurrence carries the flag
			r.val = reqs[order[j]].val // last occurrence's value wins
			sorted = append(sorted, r)
			idx = j + 1
		}
		b.t.root = bulkInsert(c, b.t.root, sorted)
		for _, f := range flags {
			if f {
				b.t.size++
			}
		}
		// Aggregate per-op results.
		for _, ow := range owners {
			switch ow.op.Kind {
			case OpInsert:
				ow.op.Ok = flags[ow.first]
			case OpInsertMany:
				n := int64(0)
				for i := 0; i < ow.count; i++ {
					if flags[ow.first+i] {
						n++
					}
				}
				ow.op.Res = n
				ow.op.Ok = n > 0
			}
		}
	}

	// Phase 3: deletes.
	if len(delOps) > 0 {
		sort.SliceStable(delOps, func(a, z int) bool { return delOps[a].Key < delOps[z].Key })
		// Dedup: only the first delete of a key can succeed.
		uniq := delOps[:0:0]
		for i, op := range delOps {
			if i > 0 && op.Key == delOps[i-1].Key {
				op.Ok = false
				continue
			}
			uniq = append(uniq, op)
		}
		flags := make([]bool, len(uniq))
		b.t.root = bulkDelete(c, b.t.root, uniq, flags)
		for i, op := range uniq {
			op.Ok = flags[i]
			if flags[i] {
				b.t.size--
			}
		}
	}
}

// bulkInsert inserts the sorted, deduplicated requests into t: split at
// the median request, recurse on the halves in parallel (they operate on
// disjoint trees), and join around the median. This is the
// Paul–Vishkin–Wagener recursion the paper describes for batched search
// trees.
func bulkInsert(c *sched.Ctx, t *node, reqs []ireq) *node {
	if len(reqs) == 0 {
		return t
	}
	if len(reqs) <= bulkCutoff {
		for _, r := range reqs {
			var added bool
			t, added = insertRoot(t, kv{r.key, r.val})
			*r.added = added
		}
		return t
	}
	mid := len(reqs) / 2
	m := reqs[mid]
	l, r, found, _ := split(t, m.key)
	*m.added = !found
	var lt, rt *node
	c.Fork(
		func(cc *sched.Ctx) { lt = bulkInsert(cc, l, reqs[:mid]) },
		func(cc *sched.Ctx) { rt = bulkInsert(cc, r, reqs[mid+1:]) },
	)
	return join(lt, kv{m.key, m.val}, rt)
}

// insertRoot is the classic insert adapted to return the new root.
func insertRoot(t *node, item kv) (*node, bool) {
	if t == nil {
		return node1(nil, item, nil), true
	}
	nt, sk, r, didSplit, added := insert(t, item)
	if didSplit {
		return node1(nt, sk, r), added
	}
	return nt, added
}

// bulkDelete removes the sorted, deduplicated keys of ops from t,
// setting flags[i] to whether ops[i].Key was present. Same recursion
// shape as bulkInsert, joining without the (deleted) median.
func bulkDelete(c *sched.Ctx, t *node, ops []*sched.OpRecord, flags []bool) *node {
	if len(ops) == 0 {
		return t
	}
	if len(ops) <= bulkCutoff {
		for i, op := range ops {
			l, r, found, _ := split(t, op.Key)
			flags[i] = found
			t = join2(l, r)
		}
		return t
	}
	mid := len(ops) / 2
	l, r, found, _ := split(t, ops[mid].Key)
	flags[mid] = found
	var lt, rt *node
	c.Fork(
		func(cc *sched.Ctx) { lt = bulkDelete(cc, l, ops[:mid], flags[:mid]) },
		func(cc *sched.Ctx) { rt = bulkDelete(cc, r, ops[mid+1:], flags[mid+1:]) },
	)
	return join2(lt, rt)
}
