// Indexer: builds a dictionary (token -> first position) over a
// synthetic corpus with the implicitly batched 2-3 tree, the search-tree
// workload of the paper's Section 3, then serves a parallel query load
// against it through a batched skip list shadow index.
//
// The interesting property: the corpus contains heavy duplication, so
// many concurrent inserts carry *identical keys* — the exact case the
// paper highlights as hard for concurrent search trees ("when all
// inserts occur in the same node of the tree, e.g., when inserting P
// identical keys") and easy for a batched tree that sorts each batch and
// separates duplicates. The result is verified against a sequential map.
//
// Run:
//
//	go run ./examples/indexer
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"batcher"
	"batcher/internal/ds/skiplist"
	"batcher/internal/ds/tree23"
	"batcher/internal/rng"
	"batcher/internal/workload"
)

func main() {
	const (
		tokens  = 200_000
		vocab   = 5_000
		workers = 4
	)
	// Zipf-distributed token stream: few very hot tokens, long tail.
	r := rng.New(99)
	z := workload.NewZipf(r, vocab, 1.1)
	corpus := make([]int64, tokens)
	for i := range corpus {
		corpus[i] = z.Next()
	}

	rt := batcher.New(batcher.Config{Workers: workers, Seed: 3})
	index := tree23.NewBatched()
	shadow := skiplist.NewBatched(17)

	// Phase 1: parallel index build. Insert is "first writer wins" per
	// key within the linearization, so we record whether we were first
	// and only count those.
	firsts := make([]bool, tokens)
	rt.Run(func(c *batcher.Ctx) {
		c.For(0, tokens, 8, func(cc *batcher.Ctx, i int) {
			firsts[i] = index.Insert(cc, corpus[i], int64(i))
		})
	})

	// Oracle: sequential pass.
	first := map[int64]bool{}
	uniq := 0
	for _, tok := range corpus {
		if !first[tok] {
			first[tok] = true
			uniq++
		}
	}
	got := 0
	for _, f := range firsts {
		if f {
			got++
		}
	}
	if got != uniq || index.Tree().Len() != uniq {
		log.Fatalf("index has %d entries, %d inserts won; oracle says %d",
			index.Tree().Len(), got, uniq)
	}

	// Phase 2: mirror the dictionary into the skip list (two batched
	// structures used by one program — each gets its own batches).
	keys := index.Tree().Keys()
	rt.Run(func(c *batcher.Ctx) {
		c.For(0, len(keys), 8, func(cc *batcher.Ctx, i int) {
			shadow.Insert(cc, keys[i], keys[i])
		})
	})
	if shadow.List().Len() != uniq {
		log.Fatalf("shadow has %d keys, want %d", shadow.List().Len(), uniq)
	}

	// Phase 3: parallel membership queries against both structures.
	var misses atomic.Int64
	rt.Run(func(c *batcher.Ctx) {
		c.For(0, vocab, 8, func(cc *batcher.Ctx, k int) {
			_, inTree := index.Contains(cc, int64(k))
			_, inList := shadow.Contains(cc, int64(k))
			if inTree != inList {
				log.Fatalf("tree and skip list disagree on key %d", k)
			}
			if !inTree {
				misses.Add(1) // token never drawn from the Zipf stream
			}
		})
	})

	m := rt.Metrics()
	fmt.Printf("indexed %d tokens, %d unique (%d vocabulary slots never drawn)\n",
		tokens, uniq, misses.Load())
	fmt.Printf("2-3 tree and skip list agree on all %d membership queries ✓\n", vocab)
	fmt.Printf("scheduler: %s\n", m.String())
}
