package sim

// Execution tracing: when Config.TraceCols > 0 the simulator samples each
// worker's per-timestep activity into a bounded buffer (stride-doubling:
// when the buffer fills, every other sample is dropped and the sampling
// stride doubles), and Result.Trace renders one row per worker. The
// timeline makes the scheduler's phases visible — core execution, batch
// execution, setup overhead, trapped stealing — and is printed by
// `batcherlab trace`.

// Activity codes recorded per worker-step.
const (
	actIdle   = '.' // failed steal attempt or other non-work action
	actCore   = 'C' // executing a core node
	actDS     = 'D' // publishing a data-structure operation
	actBatch  = 'B' // executing a batch (BOP) node
	actSetup  = 's' // executing batch setup/cleanup overhead
	actSteal  = '/' // successful steal
	actLaunch = 'L' // launching a batch
	actResume = 'r' // resuming a completed data-structure node
)

// traceBuf samples one worker's activity with bounded memory.
type traceBuf struct {
	stride  int64
	seen    int64
	samples []byte
	max     int
}

func newTraceBuf(cols int) *traceBuf {
	return &traceBuf{stride: 1, max: 2 * cols}
}

func (t *traceBuf) record(ch byte) {
	if t.seen%t.stride == 0 {
		t.samples = append(t.samples, ch)
		if len(t.samples) >= t.max {
			// Keep every other sample; double the stride.
			half := t.samples[:0]
			for i := 0; i < len(t.samples); i += 2 {
				half = append(half, t.samples[i])
			}
			t.samples = half
			t.stride *= 2
		}
	}
	t.seen++
}

func (t *traceBuf) render() string { return string(t.samples) }

// recordActivity logs ch for worker w if tracing is enabled.
func (s *Sim) recordActivity(w *simWorker, ch byte) {
	if s.traces != nil {
		s.traces[w.id].record(ch)
	}
}
