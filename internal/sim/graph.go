// Package sim is a deterministic discrete-time simulator of the BATCHER
// scheduler, executing the execution-dag model of Section 2 of the paper
// under the per-worker state-transition rules of Section 4 (Figure 3) and
// the LaunchBatch procedure of Figure 4.
//
// The physical host running this repository has a single CPU, so the
// paper's multi-core scaling results (Figure 5) cannot be observed as
// wall-clock speedup. The simulator reproduces them in the model the
// paper's analysis is actually stated in: P simulated workers take one
// action per unit timestep (execute one unit of an assigned node, or make
// one steal attempt), steals pick uniformly random victims from a seeded
// generator, trapped workers touch only batch deques, free workers follow
// the alternating-steal policy, and batch launches inject a Θ(P)-work /
// Θ(lg P)-span setup+cleanup dag around the data structure's BOP dag.
// Makespan in timesteps then plays the role of running time, and
// throughput = operations / makespan.
//
// One generalization of the unit-node dag: nodes carry an integer Weight
// and occupy their worker for Weight consecutive timesteps. A weight-w
// node is exactly a chain of w unit nodes that never migrates — a
// conservative encoding that keeps million-node experiments affordable.
package sim

// NodeKind classifies simulator dag nodes.
type NodeKind uint8

const (
	// KindCore is an ordinary node of the core dag.
	KindCore NodeKind = iota
	// KindDS is a data-structure node: executing it publishes an
	// operation record and traps the worker (Section 3).
	KindDS
	// KindBatch is a node of a batch dag (BOP work).
	KindBatch
	// KindSetup is a node of the scheduler's batch setup/cleanup dag; it
	// is accounted separately because the paper excludes scheduler
	// overhead from the batch-dag metrics.
	KindSetup
)

// Node is one dag node.
type Node struct {
	// Weight is the node's execution time in timesteps (>= 1).
	Weight int32
	// Kind classifies the node.
	Kind NodeKind
	// preds is the number of incoming edges not yet satisfied.
	preds int32
	// succs lists successor node ids within the same Graph.
	succs []int32
	// Op attaches the operation descriptor to KindDS nodes.
	Op *Op
}

// Graph is a dag under construction or execution. The core program and
// every batch get their own Graph.
type Graph struct {
	nodes []Node
	// remaining counts unfinished nodes; the run ends when the core
	// graph's count reaches zero.
	remaining int
}

// NewGraph returns an empty graph with capacity hint n.
func NewGraph(n int) *Graph {
	return &Graph{nodes: make([]Node, 0, n)}
}

// AddNode appends a node and returns its id.
func (g *Graph) AddNode(weight int32, kind NodeKind) int32 {
	if weight < 1 {
		weight = 1
	}
	g.nodes = append(g.nodes, Node{Weight: weight, Kind: kind})
	g.remaining++
	return int32(len(g.nodes) - 1)
}

// AddDSNode appends a data-structure node carrying op.
func (g *Graph) AddDSNode(op *Op) int32 {
	id := g.AddNode(1, KindDS)
	g.nodes[id].Op = op
	return id
}

// AddEdge adds a dependency a -> b.
func (g *Graph) AddEdge(a, b int32) {
	g.nodes[a].succs = append(g.nodes[a].succs, b)
	g.nodes[b].preds++
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Work returns the total weight of the graph (T1 in the dag model).
func (g *Graph) Work() int64 {
	var w int64
	for i := range g.nodes {
		w += int64(g.nodes[i].Weight)
	}
	return w
}

// Span returns the weighted longest path (T∞). It assumes the graph is
// topologically ordered by construction (AddEdge(a,b) implies a < b),
// which all builders in this package guarantee.
func (g *Graph) Span() int64 {
	if len(g.nodes) == 0 {
		return 0
	}
	dist := make([]int64, len(g.nodes))
	var best int64
	for i := range g.nodes {
		d := dist[i] + int64(g.nodes[i].Weight)
		if d > best {
			best = d
		}
		for _, s := range g.nodes[i].succs {
			if d > dist[s] {
				dist[s] = d
			}
		}
	}
	return best
}

// WorkSpanOf returns the total weight and the weighted longest path of
// the graph counting only nodes of the given kind (other nodes
// contribute edges but zero weight). The batch-span accounting uses it
// to measure BOP dags while excluding the scheduler's setup/cleanup
// overhead, matching the paper's batch-dag metrics.
func (g *Graph) WorkSpanOf(kind NodeKind) (work, span int64) {
	dist := make([]int64, len(g.nodes))
	for i := range g.nodes {
		var wt int64
		if g.nodes[i].Kind == kind {
			wt = int64(g.nodes[i].Weight)
			work += wt
		}
		d := dist[i] + wt
		if d > span {
			span = d
		}
		for _, s := range g.nodes[i].succs {
			if d > dist[s] {
				dist[s] = d
			}
		}
	}
	return work, span
}

// roots returns the ids of nodes with no predecessors.
func (g *Graph) roots() []int32 {
	var rs []int32
	for i := range g.nodes {
		if g.nodes[i].preds == 0 {
			rs = append(rs, int32(i))
		}
	}
	return rs
}

// --- dag-shape builders ----------------------------------------------------

// Chain appends a chain of total weight w (as a single weighted node) and
// returns (entry, exit). Zero or negative w yields a single unit node.
func (g *Graph) Chain(w int64, kind NodeKind) (entry, exit int32) {
	// Split into int32-sized chunks; in practice one node.
	const maxChunk = 1 << 30
	first := int32(-1)
	var prev int32
	for w > 0 || first < 0 {
		chunk := w
		if chunk > maxChunk {
			chunk = maxChunk
		}
		if chunk < 1 {
			chunk = 1
		}
		id := g.AddNode(int32(chunk), kind)
		if first < 0 {
			first = id
		} else {
			g.AddEdge(prev, id)
		}
		prev = id
		w -= chunk
	}
	return first, prev
}

// ForkJoin appends a binary fork tree over n leaves of the given weight,
// followed by a binary join tree, and returns (entry, exit). Fork and
// join nodes have unit weight. This is the dag of a parallel_for with
// binary forking: Θ(n·leafWeight) work, Θ(lg n + leafWeight) span.
func (g *Graph) ForkJoin(n int, leafWeight int32, kind NodeKind) (entry, exit int32) {
	return g.ForkJoinFunc(n, kind, func(int) int32 { return leafWeight })
}

// ForkJoinFunc is ForkJoin with per-leaf weights.
func (g *Graph) ForkJoinFunc(n int, kind NodeKind, weight func(i int) int32) (entry, exit int32) {
	if n <= 0 {
		id := g.AddNode(1, kind)
		return id, id
	}
	var build func(lo, hi int) (int32, int32)
	build = func(lo, hi int) (int32, int32) {
		if hi-lo == 1 {
			id := g.AddNode(weight(lo), kind)
			return id, id
		}
		mid := lo + (hi-lo)/2
		fork := g.AddNode(1, kind)
		le, lx := build(lo, mid)
		re, rx := build(mid, hi)
		join := g.AddNode(1, kind)
		g.AddEdge(fork, le)
		g.AddEdge(fork, re)
		g.AddEdge(lx, join)
		g.AddEdge(rx, join)
		return fork, join
	}
	return build(0, n)
}

// ForkJoinDS appends a parallel loop whose leaves each run preWeight core
// work, then a DS node for ops[i], then postWeight core work. It is the
// canonical core program of Figure 1. Returns (entry, exit).
func (g *Graph) ForkJoinDS(ops []*Op, preWeight, postWeight int32) (entry, exit int32) {
	n := len(ops)
	if n == 0 {
		id := g.AddNode(1, KindCore)
		return id, id
	}
	var build func(lo, hi int) (int32, int32)
	build = func(lo, hi int) (int32, int32) {
		if hi-lo == 1 {
			pre := g.AddNode(preWeight, KindCore)
			ds := g.AddDSNode(ops[lo])
			post := g.AddNode(postWeight, KindCore)
			g.AddEdge(pre, ds)
			g.AddEdge(ds, post)
			return pre, post
		}
		mid := lo + (hi-lo)/2
		fork := g.AddNode(1, KindCore)
		le, lx := build(lo, mid)
		re, rx := build(mid, hi)
		join := g.AddNode(1, KindCore)
		g.AddEdge(fork, le)
		g.AddEdge(fork, re)
		g.AddEdge(lx, join)
		g.AddEdge(rx, join)
		return fork, join
	}
	return build(0, n)
}

// SerialDS appends a chain of DS nodes separated by gapWeight core work:
// the m = n extreme where every operation depends on the previous one.
func (g *Graph) SerialDS(ops []*Op, gapWeight int32) (entry, exit int32) {
	if len(ops) == 0 {
		id := g.AddNode(1, KindCore)
		return id, id
	}
	var first, prev int32 = -1, -1
	for _, op := range ops {
		if first >= 0 {
			// Keep node ids topologically ordered (Span relies on it):
			// allocate the gap before the node it precedes.
			gap := g.AddNode(gapWeight, KindCore)
			g.AddEdge(prev, gap)
			prev = gap
		}
		ds := g.AddDSNode(op)
		if first < 0 {
			first = ds
		} else {
			g.AddEdge(prev, ds)
		}
		prev = ds
	}
	return first, prev
}
