package sched

// This file wires the runtime into the observability layer
// (internal/obs). All hooks follow one discipline: a nil-guarded
// pointer read on the hot path, so a runtime with observability
// disabled pays a single predictable branch per event site and
// allocates nothing (the AllocsPerRun tests in alloc_test.go and
// obs_test.go pin both configurations). See DESIGN.md §10.
//
// Event-to-ring mapping: worker i records on ring i; events produced
// off the workers (Pump.Submit runs on network-reader goroutines) go to
// the extra "external" ring, index P. Runtime.NewTracer sizes a tracer
// accordingly.

import (
	"batcher/internal/obs"
)

// NewTracer creates a tracer sized for this runtime: one ring per
// worker plus one external ring for non-worker goroutines, each holding
// perRing events (rounded up to a power of two). Attach it with
// SetTracer.
func (rt *Runtime) NewTracer(perRing int) *obs.Tracer {
	return obs.NewTracer(len(rt.workers)+1, perRing)
}

// SetTracer attaches (or, with nil, detaches) an event tracer. The
// scheduler records batch launches and landings, successful steals,
// parks/wakes, pump admissions/rejections, and contained batch panics.
// Call only while no Run or Serve is in progress; workers read the
// pointer unsynchronized.
func (rt *Runtime) SetTracer(tr *obs.Tracer) {
	if rt.running.Load() {
		panic("sched: SetTracer called during Run")
	}
	rt.tracer = tr
}

// Tracer returns the attached tracer, or nil.
func (rt *Runtime) Tracer() *obs.Tracer { return rt.tracer }

// SetBatchSizeHistogram attaches (or detaches) a histogram that
// receives one observation — the working-set size — per executed
// nonempty batch. Its Mean therefore equals BatchedOps/BatchesExecuted
// exactly, the quantity LiveBatchStats reports, while its quantiles
// expose the full batch-size distribution Theorem 1's s-term depends
// on. Call only while no Run or Serve is in progress.
func (rt *Runtime) SetBatchSizeHistogram(h *obs.Histogram) {
	if rt.running.Load() {
		panic("sched: SetBatchSizeHistogram called during Run")
	}
	rt.batchHist = h
}

// SetConformance attaches (or, with nil, detaches) a live conformance
// monitor: LaunchBatch feeds it one RecordBatch per executed nonempty
// batch — launch and land stamps, the minimum pending-publish stamp
// among the batch's ops (read from the pending-array slot stamps, so
// the monitor works with phase stamping off), and the working-set
// size. The monitor maintains the windowed Theorem 5.4 envelope terms
// and the Lemma 2 landings count; see obs.Conform. Call only while no
// Run or Serve is in progress; workers read the pointer
// unsynchronized.
func (rt *Runtime) SetConformance(m *obs.Conform) {
	if rt.running.Load() {
		panic("sched: SetConformance called during Run")
	}
	rt.conform = m
}

// Conformance returns the attached conformance monitor, or nil.
func (rt *Runtime) Conformance() *obs.Conform { return rt.conform }

// SetPhaseStamps enables (or disables) op-lifecycle phase stamping:
// while on, Batchify stamps obs.PhasePending and LaunchBatch stamps
// obs.PhaseLaunch and obs.PhaseLand — plus the landing batch's size and
// group index — into every OpRecord it handles, using the monotonic
// obs.Now clock. Submitting layers own the remaining slots (PhaseRead,
// PhaseAdmit, PhaseDone). Call only while no Run or Serve is in
// progress; workers read the flag unsynchronized.
func (rt *Runtime) SetPhaseStamps(on bool) {
	if rt.running.Load() {
		panic("sched: SetPhaseStamps called during Run")
	}
	rt.stampPhases = on
}

// PhaseStamps reports whether phase stamping is enabled.
func (rt *Runtime) PhaseStamps() bool { return rt.stampPhases }

// LiveSteals returns the number of successful steals over the runtime's
// lifetime. Like LiveBatchStats it is an atomic maintained on the steal
// path (one uncontended add per successful steal — failed attempts, the
// common case under low load, touch nothing), so stats endpoints can
// read it while serving.
func (rt *Runtime) LiveSteals() int64 { return rt.liveSteals.Load() }

// parkAndSleep is the shared tail of every idle-park site: count the
// park, trace it (park/wake bracket the sleep so trace viewers render
// parked time as a span), sleep until woken, and resume the idle ladder
// at the post-park level.
func (w *worker) parkAndSleep(epoch uint64) {
	w.m.Parks++
	rt := w.rt
	if tr := rt.tracer; tr != nil {
		tr.Record(w.id, obs.EvPark, 0, 0)
		rt.idle.sleep(epoch)
		tr.Record(w.id, obs.EvWake, 0, 0)
	} else {
		rt.idle.sleep(epoch)
	}
	w.idleFails = idleResume
}
