//go:build race

package sched

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
