package tree23

import "batcher/internal/sched"

// Range-query support for the batched 2-3 tree. Range queries are
// read-only, so a batch of them runs fully in parallel (one task per
// query, each an O(lg n + k) tree walk), linearized with the other
// read-only phase before the batch's inserts.

// OpRange collects the keys in [Key, Val] (inclusive bounds) into
// Aux.(*RangeResult). Res receives the count.
const OpRange sched.OpKind = 100

// RangeResult receives a range query's output.
type RangeResult struct {
	// Keys are the matching keys in ascending order.
	Keys []int64
	// Vals are the corresponding values.
	Vals []int64
}

// Range returns all keys in [lo, hi] with their values, in ascending key
// order. Core tasks only.
func (b *Batched) Range(c *sched.Ctx, lo, hi int64) ([]int64, []int64) {
	var out RangeResult
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpRange, Key: lo, Val: hi, Aux: &out}
	c.Batchify(op)
	return out.Keys, out.Vals
}

// rangeWalk appends all pairs in [lo, hi] under x to out, in order.
func rangeWalk(x *node, lo, hi int64, out *RangeResult) {
	if x == nil {
		return
	}
	k1 := x.keys[0]
	if lo < k1.k {
		rangeWalk(x.kids[0], lo, hi, out)
	}
	if k1.k >= lo && k1.k <= hi {
		out.Keys = append(out.Keys, k1.k)
		out.Vals = append(out.Vals, k1.v)
	}
	if x.nk == 1 {
		if hi > k1.k {
			rangeWalk(x.kids[1], lo, hi, out)
		}
		return
	}
	k2 := x.keys[1]
	if hi > k1.k && lo < k2.k {
		rangeWalk(x.kids[1], lo, hi, out)
	}
	if k2.k >= lo && k2.k <= hi {
		out.Keys = append(out.Keys, k2.k)
		out.Vals = append(out.Vals, k2.v)
	}
	if hi > k2.k {
		rangeWalk(x.kids[2], lo, hi, out)
	}
}

// RangeSeq is the sequential form on Tree, used directly and as the
// batched operation's per-query body.
func (t *Tree) RangeSeq(lo, hi int64) ([]int64, []int64) {
	var out RangeResult
	rangeWalk(t.root, lo, hi, &out)
	return out.Keys, out.Vals
}
