// Package stack implements the paper's amortized batched LIFO stack
// (Section 3): an array with table doubling, rebuilt in parallel whenever
// it becomes too full or too empty. A batch is processed as a PUSH phase
// followed by a POP phase. The amortized work of a size-x batch is Θ(x)
// (so W(n) = Θ(n)), an individual batch can cost Θ(n) when a resize
// occurs, and every batch dag with batch work w has span O(lg w) — the
// amortized profile the paper uses to derive s(n) = O(lg P).
package stack

import "batcher/internal/sched"

// Operation kinds.
const (
	// OpPush pushes Val onto the stack.
	OpPush sched.OpKind = iota
	// OpPop pops the top element into Res; Ok reports non-emptiness.
	OpPop
)

const minCap = 8

// Batched is the implicitly batched LIFO stack.
type Batched struct {
	buf  []int64
	size int
	// Resizes counts table rebuilds, exposed for the amortization tests
	// and the ablation benchmarks.
	Resizes int
}

var _ sched.Batched = (*Batched)(nil)

// New returns an empty batched stack.
func New() *Batched { return &Batched{buf: make([]int64, minCap)} }

// Push pushes v. Core tasks only.
func (b *Batched) Push(c *sched.Ctx, v int64) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpPush, Val: v}
	c.Batchify(op)
}

// Pop pops and returns the top element; ok is false if the stack was
// empty when this operation's turn came within its batch's POP phase.
// Core tasks only.
func (b *Batched) Pop(c *sched.Ctx) (v int64, ok bool) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpPop}
	c.Batchify(op)
	return op.Res, op.Ok
}

// Len returns the current number of elements. Quiescent only.
func (b *Batched) Len() int { return b.size }

// RunBatch performs the batch: all pushes, then all pops. Within one
// batch the pushes are mutually unordered (they land in compaction
// order) and each pop takes the then-top element; this realizes a legal
// linearization of the concurrent operations in the batch.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	// Partition into pushes and pops, preserving order. Batches hold at
	// most P records, so the partition is cheap relative to the phases.
	pushes := make([]*sched.OpRecord, 0, len(ops))
	pops := make([]*sched.OpRecord, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case OpPush:
			pushes = append(pushes, op)
		case OpPop:
			pops = append(pops, op)
		default:
			panic("stack: unknown op kind")
		}
	}

	// PUSH phase. Grow (rebuild in parallel) if n + x does not fit.
	need := b.size + len(pushes)
	if need > len(b.buf) {
		b.resize(c, need)
	}
	base := b.size
	c.For(0, len(pushes), 64, func(_ *sched.Ctx, i int) {
		b.buf[base+i] = pushes[i].Val
		pushes[i].Ok = true
	})
	b.size = need

	// POP phase: pop i takes the (top - i)-th element, in parallel.
	taking := len(pops)
	if taking > b.size {
		taking = b.size
	}
	top := b.size
	c.For(0, len(pops), 64, func(_ *sched.Ctx, i int) {
		idx := top - 1 - i
		if idx >= 0 {
			pops[i].Res = b.buf[idx]
			pops[i].Ok = true
		} else {
			pops[i].Res = 0
			pops[i].Ok = false
		}
	})
	b.size -= taking

	// Shrink (rebuild in parallel) when under-occupied, per table
	// doubling's "too empty" rule.
	if len(b.buf) > minCap && b.size < len(b.buf)/4 {
		b.resize(c, b.size)
	}
}

// resize rebuilds the backing array to the smallest power-of-two capacity
// that holds need elements (at least minCap, at least 2*need to restore
// slack), copying the live prefix in parallel: Θ(n) work, O(lg n) span.
func (b *Batched) resize(c *sched.Ctx, need int) {
	capacity := minCap
	for capacity < 2*need {
		capacity *= 2
	}
	fresh := make([]int64, capacity)
	c.For(0, b.size, 512, func(_ *sched.Ctx, i int) { fresh[i] = b.buf[i] })
	b.buf = fresh
	b.Resizes++
}

// Seq is the sequential stack baseline.
type Seq struct{ xs []int64 }

// NewSeq returns an empty sequential stack.
func NewSeq() *Seq { return &Seq{} }

// Push pushes v.
func (s *Seq) Push(v int64) { s.xs = append(s.xs, v) }

// Pop pops the top element.
func (s *Seq) Pop() (int64, bool) {
	if len(s.xs) == 0 {
		return 0, false
	}
	v := s.xs[len(s.xs)-1]
	s.xs = s.xs[:len(s.xs)-1]
	return v, true
}

// Len returns the number of elements.
func (s *Seq) Len() int { return len(s.xs) }
