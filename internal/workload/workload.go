// Package workload generates the key streams and operation mixes the
// experiments drive data structures with: uniform random keys, sequential
// (adversarially contiguous) keys, clustered keys, and an approximate
// Zipf sampler for skewed access patterns.
package workload

import (
	"math"

	"batcher/internal/rng"
)

// UniformKeys returns n keys uniform in [0, space).
func UniformKeys(r *rng.Rand, n int, space int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63() % space
	}
	return out
}

// SequentialKeys returns start, start+1, ..., start+n-1 — the contiguous
// insert pattern the paper cites as the worst case for concurrent
// B-trees (all inserts hit the same node).
func SequentialKeys(start int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)
	}
	return out
}

// ClusteredKeys returns n keys grouped into the given number of tight
// clusters spread over space: many nearby keys, stressing structural
// hot spots.
func ClusteredKeys(r *rng.Rand, n int, clusters int, space int64) []int64 {
	if clusters < 1 {
		clusters = 1
	}
	centers := make([]int64, clusters)
	for i := range centers {
		centers[i] = r.Int63() % space
	}
	width := space / int64(clusters) / 1024
	if width < 1 {
		width = 1
	}
	out := make([]int64, n)
	for i := range out {
		c := centers[r.Intn(clusters)]
		out[i] = c + r.Int63()%width
	}
	return out
}

// Zipf samples from an approximate Zipf distribution over [0, n) with
// exponent s > 0 via inverse-CDF on the continuous approximation. It is
// deliberately simple (stdlib-only) and adequate for skewed-workload
// benchmarks.
type Zipf struct {
	r    *rng.Rand
	n    float64
	s    float64
	norm float64
}

// NewZipf creates a sampler over [0, n) with exponent s (s != 1 handled;
// s near 1 uses the log form).
func NewZipf(r *rng.Rand, n int64, s float64) *Zipf {
	z := &Zipf{r: r, n: float64(n), s: s}
	z.norm = z.cdf(z.n)
	return z
}

// cdf is the unnormalized continuous CDF integral of x^-s from 1 to x+1.
func (z *Zipf) cdf(x float64) float64 {
	if math.Abs(z.s-1) < 1e-9 {
		return math.Log(x + 1)
	}
	return (math.Pow(x+1, 1-z.s) - 1) / (1 - z.s)
}

// invCDF inverts cdf.
func (z *Zipf) invCDF(y float64) float64 {
	if math.Abs(z.s-1) < 1e-9 {
		return math.Exp(y) - 1
	}
	return math.Pow(y*(1-z.s)+1, 1/(1-z.s)) - 1
}

// Next returns the next sample in [0, n), skewed toward 0.
func (z *Zipf) Next() int64 {
	y := z.r.Float64() * z.norm
	v := int64(z.invCDF(y))
	if v < 0 {
		v = 0
	}
	if v >= int64(z.n) {
		v = int64(z.n) - 1
	}
	return v
}

// OpMix describes a read/insert/delete mix in percent; the remainder up
// to 100 is reads.
type OpMix struct {
	InsertPct int
	DeletePct int
}

// Kind of a generated operation.
type Kind uint8

// Operation kinds produced by Mix.
const (
	Read Kind = iota
	Insert
	Delete
)

// Next draws an operation kind from the mix.
func (m OpMix) Next(r *rng.Rand) Kind {
	v := r.Intn(100)
	switch {
	case v < m.InsertPct:
		return Insert
	case v < m.InsertPct+m.DeletePct:
		return Delete
	default:
		return Read
	}
}
