module batcher

go 1.22
