package obs

import (
	"bufio"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// validatePromText is a strict checker for the subset of the Prometheus
// text exposition format the registry emits: HELP/TYPE headers once per
// family before its samples, sample lines of the form
// name{label="value",...} value, histograms with increasing le bounds,
// monotone cumulative counts, and _count equal to the +Inf bucket. It
// returns the parsed sample count so tests can assert coverage.
func validatePromText(t *testing.T, r io.Reader) int {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|\+Inf)$`)
	sc := bufio.NewScanner(r)
	samples := 0
	typed := map[string]string{}
	helped := map[string]bool{}
	var curFamily string
	type histState struct {
		lastLe    float64
		lastCount float64
		infCount  float64
		sawInf    bool
	}
	hists := map[string]*histState{} // keyed by family+labels-minus-le
	counts := map[string]float64{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) < 1 || parts[0] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown TYPE %q in %q", typ, line)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("family %q declared twice (samples not contiguous)", name)
			}
			typed[name] = typ
			curFamily = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != curFamily {
			t.Fatalf("sample %q outside its family block (current %q)", name, curFamily)
		}
		if !helped[base] {
			t.Fatalf("sample %q has no HELP", name)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "NaN" {
			t.Fatalf("bad value %q in %q", valStr, line)
		}
		samples++
		if typed[base] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le := ""
			var rest []string
			for _, part := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if strings.HasPrefix(part, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`)
				} else if part != "" {
					rest = append(rest, part)
				}
			}
			if le == "" {
				t.Fatalf("histogram bucket without le label: %q", line)
			}
			key := base + "|" + strings.Join(rest, ",")
			st := hists[key]
			if st == nil {
				st = &histState{lastLe: -1, lastCount: -1}
				hists[key] = st
			}
			if le == "+Inf" {
				st.sawInf = true
				st.infCount = val
				if val < st.lastCount {
					t.Fatalf("+Inf bucket %v below prior cumulative %v: %q", val, st.lastCount, line)
				}
			} else {
				leV, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le %q: %q", le, line)
				}
				if st.sawInf {
					t.Fatalf("bucket after +Inf: %q", line)
				}
				if leV <= st.lastLe {
					t.Fatalf("le bounds not increasing (%v after %v): %q", leV, st.lastLe, line)
				}
				if val < st.lastCount {
					t.Fatalf("cumulative count decreasing: %q", line)
				}
				st.lastLe, st.lastCount = leV, val
			}
		}
		if strings.HasSuffix(name, "_count") && typed[base] == "histogram" {
			counts[base+"|"+strings.Trim(labels, "{}")] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for key, st := range hists {
		if !st.sawInf {
			t.Fatalf("histogram %q has no +Inf bucket", key)
		}
	}
	for key, c := range counts {
		// Match against the recorded hist states: the +Inf bucket of the
		// same label set (count lines carry no le).
		st, ok := hists[key]
		if !ok {
			t.Fatalf("histogram %q has _count but no buckets", key)
		}
		if st.infCount != c {
			t.Fatalf("histogram %q: _count %v != +Inf bucket %v", key, c, st.infCount)
		}
	}
	return samples
}

func TestRegistryTextFormat(t *testing.T) {
	reg := NewRegistry()
	var ops atomic.Int64
	ops.Store(12345)
	reg.CounterFunc("batcherd_ops_total", "operations completed", nil, ops.Load)
	reg.GaugeFunc("batcherd_queue_depth", "pump ingress depth", nil, func() float64 { return 7 })
	reg.GaugeFunc("batcherd_uptime_seconds", `uptime with "quotes" and \slashes`, nil, func() float64 { return 1.5 })
	for _, ds := range []string{"counter", "skiplist"} {
		h := reg.Histogram("batcherd_service_latency_ns", "per-op service latency",
			[]Label{{"ds", ds}})
		for i := int64(1); i < 5000; i += 7 {
			h.Observe(i * 1000)
		}
	}
	hb := reg.Histogram("batcherd_batch_size", "ops per executed batch", nil)
	for i := 0; i < 100; i++ {
		hb.Observe(int64(i % 8))
	}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	n := validatePromText(t, resp.Body)
	if n < 10 {
		t.Fatalf("scrape produced only %d samples", n)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("x_total", "x", nil, func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.CounterFunc("x_total", "x", nil, func() int64 { return 0 })
}

func TestRegistryFamilyGrouping(t *testing.T) {
	// Interleave registrations of two families; exposition must still
	// group each family's samples under one header.
	reg := NewRegistry()
	reg.CounterFunc("a_total", "a", []Label{{"k", "1"}}, func() int64 { return 1 })
	reg.CounterFunc("b_total", "b", nil, func() int64 { return 2 })
	reg.CounterFunc("a_total", "a", []Label{{"k", "2"}}, func() int64 { return 3 })
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	validatePromText(t, strings.NewReader(sb.String()))
	out := sb.String()
	if strings.Count(out, "# TYPE a_total") != 1 || strings.Count(out, "# TYPE b_total") != 1 {
		t.Fatalf("family headers not unique:\n%s", out)
	}
	if !strings.Contains(out, `a_total{k="1"} 1`) || !strings.Contains(out, `a_total{k="2"} 3`) {
		t.Fatalf("labeled samples missing:\n%s", out)
	}
}

// TestRegistryHostileLabelEscaping registers label values containing
// every character the exposition format 0.0.4 requires escaping in
// label values — backslash, double quote, newline — and checks both
// the exact escaped rendering and that the strict parser still reads
// the exposition line by line (an unescaped newline would split a
// sample across two lines; an unescaped quote would truncate it).
func TestRegistryHostileLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	hostile := "a\\b\"c\nd"
	reg.CounterFunc("hostile_total", "hostile label", []Label{{"k", hostile}}, func() int64 { return 9 })
	h := reg.Histogram("hostile_ns", "hostile histogram label", []Label{{"ds", `x"y`}})
	h.Observe(1000)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if want := `hostile_total{k="a\\b\"c\nd"} 9`; !strings.Contains(out, want) {
		t.Fatalf("escaped sample %q missing from:\n%s", want, out)
	}
	// The histogram path appends le after the hostile label; both must
	// survive on one line.
	if !strings.Contains(out, `hostile_ns_count{ds="x\"y"} 1`) {
		t.Fatalf("escaped histogram label missing from:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "hostile") && strings.Contains(line, `"c`) && !strings.Contains(line, `\n`) {
			t.Fatalf("raw newline leaked into exposition line %q", line)
		}
	}
	validatePromText(t, strings.NewReader(out))
}
