package sched

import (
	"sync/atomic"
	"testing"

	"batcher/internal/rng"
)

// TestTrappedWorkersRunOnlyBatchWork uses the task-run hook to verify
// the central trapped-worker rule of Figure 3 on a heavy mixed workload:
// a worker whose status is not free must never execute a core task.
func TestTrappedWorkersRunOnlyBatchWork(t *testing.T) {
	var violations atomic.Int64
	var batchByTrapped atomic.Int64
	testHookTaskRun = func(kind Kind, status Status) {
		if status != StatusFree && kind == KindCore {
			violations.Add(1)
		}
		if status != StatusFree && kind == KindBatch {
			batchByTrapped.Add(1)
		}
	}
	defer func() { testHookTaskRun = nil }()

	rt := New(Config{Workers: 8, Seed: 100})
	ds := &forkyDS{}
	rt.Run(func(c *Ctx) {
		c.For(0, 500, 1, func(cc *Ctx, i int) {
			cc.Batchify(&OpRecord{DS: ds, Val: 1})
		})
	})
	if violations.Load() != 0 {
		t.Fatalf("trapped workers executed %d core tasks", violations.Load())
	}
	if ds.total.Load() != 500 {
		t.Fatalf("total = %d", ds.total.Load())
	}
	// Sanity that the hook actually observed trapped activity.
	if batchByTrapped.Load() == 0 {
		t.Log("no batch tasks observed by trapped workers (tiny batches); hook still verified no violations")
	}
}

// stressDS applies ops with verifiable results and moderate parallel
// fan-out inside the BOP.
type stressDS struct {
	total int64
	calls int64
}

func (s *stressDS) RunBatch(ctx *Ctx, ops []*OpRecord) {
	s.calls++
	n := len(ops)
	partial := make([]int64, n)
	ctx.For(0, n, 2, func(_ *Ctx, i int) {
		partial[i] = ops[i].Val * 2
	})
	for i, op := range ops {
		op.Res = s.total
		s.total += partial[i]
		op.Ok = true
	}
}

// TestStressRandomPrograms generates random nested fork/loop programs
// mixing core compute, calls to two batched structures, and uneven
// subtree sizes, then checks conservation at several worker counts.
func TestStressRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, p := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 4; trial++ {
			seed := uint64(p*100 + trial)
			r := rng.New(seed)
			a, b := &stressDS{}, &stressDS{}
			var wantA, wantB atomic.Int64
			var coreSink atomic.Int64

			var program func(c *Ctx, depth int, budget *atomic.Int64)
			program = func(c *Ctx, depth int, budget *atomic.Int64) {
				if budget.Add(-1) < 0 {
					return
				}
				// Each node randomly: compute, DS call, fork, or loop.
				// Randomness must be deterministic per-task, so derive a
				// local generator from the worker-independent budget
				// value and seed.
				lr := rng.New(seed ^ uint64(budget.Load()+1)<<16 ^ uint64(depth))
				switch lr.Intn(4) {
				case 0:
					s := int64(0)
					for k := 0; k < 200; k++ {
						s += int64(k ^ depth)
					}
					coreSink.Add(s & 1)
				case 1:
					v := int64(lr.Intn(5) + 1)
					if lr.Bool() {
						c.Batchify(&OpRecord{DS: a, Val: v})
						wantA.Add(2 * v)
					} else {
						c.Batchify(&OpRecord{DS: b, Val: v})
						wantB.Add(2 * v)
					}
				case 2:
					if depth < 8 {
						c.Fork(
							func(cc *Ctx) { program(cc, depth+1, budget) },
							func(cc *Ctx) { program(cc, depth+1, budget) },
						)
					}
				case 3:
					n := lr.Intn(6) + 2
					c.For(0, n, 1, func(cc *Ctx, i int) {
						if depth < 8 {
							program(cc, depth+1, budget)
						}
					})
				}
			}

			rt := New(Config{Workers: p, Seed: seed})
			var budget atomic.Int64
			budget.Store(600)
			rt.Run(func(c *Ctx) { program(c, 0, &budget) })
			_ = r

			if a.total != wantA.Load() {
				t.Fatalf("P=%d trial=%d: structure A total %d want %d", p, trial, a.total, wantA.Load())
			}
			if b.total != wantB.Load() {
				t.Fatalf("P=%d trial=%d: structure B total %d want %d", p, trial, b.total, wantB.Load())
			}
		}
	}
}

// TestDeepSerialChains drives the m = n worst case through the real
// runtime: long chains of dependent operations, where every batch is a
// singleton and the scheduler must still make steady progress.
func TestDeepSerialChains(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 200})
	ds := &stressDS{}
	const chain = 2000
	var lastRes int64 = -1
	rt.Run(func(c *Ctx) {
		for i := 0; i < chain; i++ {
			op := OpRecord{DS: ds, Val: 1}
			c.Batchify(&op)
			if op.Res <= lastRes {
				t.Errorf("op %d: non-monotone pre-total %d after %d", i, op.Res, lastRes)
				return
			}
			lastRes = op.Res
		}
	})
	if ds.total != 2*chain {
		t.Fatalf("total = %d", ds.total)
	}
	if ds.calls != chain {
		t.Fatalf("calls = %d, want %d singleton batches", ds.calls, chain)
	}
}

// TestManyStructuresOneBatchEpoch uses many structures at once so that
// single batch epochs regularly contain multi-structure groups.
func TestManyStructuresOneBatchEpoch(t *testing.T) {
	rt := New(Config{Workers: 8, Seed: 300})
	const structures = 5
	dss := make([]*stressDS, structures)
	for i := range dss {
		dss[i] = &stressDS{}
	}
	const n = 1000
	rt.Run(func(c *Ctx) {
		c.For(0, n, 1, func(cc *Ctx, i int) {
			cc.Batchify(&OpRecord{DS: dss[i%structures], Val: 1})
		})
	})
	for i, ds := range dss {
		want := int64(2 * (n / structures))
		if ds.total != want {
			t.Fatalf("structure %d: total %d want %d", i, ds.total, want)
		}
	}
}
