// Package flatcombine implements flat combining (Hendler, Incze, Shavit,
// Tzafrir, SPAA 2010), which the paper treats as the special case of
// implicit batching whose batches execute *sequentially*: each thread
// publishes an operation record in a per-thread slot; whichever thread
// acquires the combiner lock scans all slots and applies every pending
// operation itself, one after another.
//
// The paper's Section 7 observes that flat combining matches BATCHER at
// one processor but degrades as cores are added (the combiner is a
// sequential bottleneck), while BATCHER speeds up — the comparison the
// Fig5-FC experiment reproduces.
package flatcombine

import (
	"runtime"
	"sync/atomic"
)

// Request is a published operation record. Kind/Key/Val are inputs,
// Res/Ok outputs. A Request may be reused after Do returns.
type Request struct {
	Kind     int32
	Key, Val int64
	Res      int64
	Ok       bool

	state atomic.Int32 // 0 idle, 1 pending, 2 done
}

const (
	reqIdle int32 = iota
	reqPending
	reqDone
)

// Apply is the sequential operation the combiner runs for each pending
// request. It is always invoked under the combiner lock, so it needs no
// synchronization of its own — the same "no concurrency control inside
// the structure" property batched structures enjoy.
type Apply func(r *Request)

// Combiner coordinates flat-combined access for a fixed number of
// threads, each identified by a tid in [0, threads).
type Combiner struct {
	apply Apply
	lock  atomic.Int32
	slots []paddedSlot

	// Combines counts lock acquisitions; Applied counts operations
	// executed by combiners. Their ratio is the mean combining degree.
	Combines atomic.Int64
	Applied  atomic.Int64
}

type paddedSlot struct {
	req atomic.Pointer[Request]
	_   [56]byte // avoid false sharing between neighboring slots
}

// New returns a combiner for the given thread count around apply.
func New(threads int, apply Apply) *Combiner {
	return &Combiner{apply: apply, slots: make([]paddedSlot, threads)}
}

// Do executes r on behalf of thread tid and blocks until it has been
// applied (by this thread acting as combiner, or by another combiner).
func (c *Combiner) Do(tid int, r *Request) {
	r.state.Store(reqPending)
	c.slots[tid].req.Store(r)
	for {
		if r.state.Load() == reqDone {
			r.state.Store(reqIdle)
			return
		}
		if c.lock.Load() == 0 && c.lock.CompareAndSwap(0, 1) {
			c.combine()
			c.lock.Store(0)
			if r.state.Load() == reqDone {
				r.state.Store(reqIdle)
				return
			}
			continue
		}
		runtime.Gosched()
	}
}

// combine scans every slot and applies all pending requests, in slot
// order. Called with the lock held.
func (c *Combiner) combine() {
	c.Combines.Add(1)
	for i := range c.slots {
		req := c.slots[i].req.Load()
		if req == nil || req.state.Load() != reqPending {
			continue
		}
		c.apply(req)
		c.Applied.Add(1)
		req.state.Store(reqDone)
	}
}

// MeanCombiningDegree returns applied operations per combining pass.
func (c *Combiner) MeanCombiningDegree() float64 {
	n := c.Combines.Load()
	if n == 0 {
		return 0
	}
	return float64(c.Applied.Load()) / float64(n)
}
