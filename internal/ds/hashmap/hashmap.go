// Package hashmap implements a batched hash table (a parallel
// dictionary, the structure class the paper's related work cites via
// Paul–Vishkin–Wagener and the STL bulk-operation dictionaries). The
// batched operation exploits bucket disjointness:
//
//  1. hash every operation to its bucket (parallel),
//  2. group operations by bucket (sequential — a batch has at most P
//     operations),
//  3. apply each bucket's group independently, in parallel: distinct
//     buckets touch disjoint state, so no synchronization is needed,
//  4. if the load factor crossed a threshold, rebuild the table in
//     parallel. With table doubling, old bucket i redistributes only
//     into new buckets i and i+oldLen, so the rehash parallelizes over
//     old buckets with disjoint writes.
//
// Amortized Θ(1) work per operation, with Θ(n)-work rebuild batches —
// the same amortized profile as the paper's stack example, handled by
// Theorem 1's parallelism-based definition of the data-structure span.
package hashmap

import (
	"batcher/internal/rng"
	"batcher/internal/sched"
)

// Operation kinds.
const (
	// OpPut maps Key to Val; Ok reports "newly inserted".
	OpPut sched.OpKind = iota
	// OpGet reads Key into Res; Ok reports presence.
	OpGet
	// OpDel removes Key; Ok reports "was present".
	OpDel
)

type entry struct{ k, v int64 }

const initialBuckets = 8

// Batched is the implicitly batched hash map.
type Batched struct {
	buckets [][]entry
	size    int
	seed    uint64
	// Rebuilds counts table doublings/halvings (for tests and benches).
	Rebuilds int
}

var _ sched.Batched = (*Batched)(nil)

// NewBatched returns an empty map; seed fixes the hash function.
func NewBatched(seed uint64) *Batched {
	return &Batched{buckets: make([][]entry, initialBuckets), seed: seed}
}

// Len returns the number of keys. Quiescent only.
func (b *Batched) Len() int { return b.size }

// Buckets returns the current bucket count (for tests).
func (b *Batched) Buckets() int { return len(b.buckets) }

func (b *Batched) hash(k int64) int {
	st := uint64(k) ^ b.seed
	return int(rng.SplitMix64(&st) & uint64(len(b.buckets)-1))
}

// Put maps key to val; reports whether key was newly inserted. Core
// tasks only.
func (b *Batched) Put(c *sched.Ctx, key, val int64) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpPut, Key: key, Val: val}
	c.Batchify(op)
	return op.Ok
}

// Get looks up key. Core tasks only.
func (b *Batched) Get(c *sched.Ctx, key int64) (int64, bool) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpGet, Key: key}
	c.Batchify(op)
	return op.Res, op.Ok
}

// Del removes key, reporting whether it was present. Core tasks only.
func (b *Batched) Del(c *sched.Ctx, key int64) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpDel, Key: key}
	c.Batchify(op)
	return op.Ok
}

// RunBatch implements sched.Batched.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	// Step 1: hash each op (parallel; cheap, but it is the honest place
	// for the hashing work in the batch dag).
	idx := make([]int, len(ops))
	c.For(0, len(ops), 16, func(_ *sched.Ctx, i int) {
		idx[i] = b.hash(ops[i].Key)
	})

	// Step 2: group by bucket, preserving compaction order (the batch's
	// linearization order for same-key operations).
	groups := map[int][]*sched.OpRecord{}
	order := make([]int, 0, len(ops))
	for i, op := range ops {
		bi := idx[i]
		if _, seen := groups[bi]; !seen {
			order = append(order, bi)
		}
		groups[bi] = append(groups[bi], op)
	}

	// Step 3: apply bucket groups in parallel; sizeDelta per group so
	// that parallel tasks never write shared state.
	deltas := make([]int, len(order))
	c.For(0, len(order), 1, func(_ *sched.Ctx, gi int) {
		bi := order[gi]
		d := 0
		for _, op := range groups[bi] {
			d += b.applyToBucket(bi, op)
		}
		deltas[gi] = d
	})
	for _, d := range deltas {
		b.size += d
	}

	// Step 4: resize when over- or under-loaded.
	switch {
	case b.size > 3*len(b.buckets): // load factor 3
		b.resize(c, len(b.buckets)*2)
	case len(b.buckets) > initialBuckets && b.size < len(b.buckets)/2:
		b.resize(c, len(b.buckets)/2)
	}
}

// applyToBucket performs one operation on bucket bi, returning the size
// delta. Called only from the task owning bucket bi within a batch.
func (b *Batched) applyToBucket(bi int, op *sched.OpRecord) int {
	bucket := b.buckets[bi]
	pos := -1
	for i := range bucket {
		if bucket[i].k == op.Key {
			pos = i
			break
		}
	}
	switch op.Kind {
	case OpPut:
		if pos >= 0 {
			bucket[pos].v = op.Val
			op.Ok = false
			return 0
		}
		b.buckets[bi] = append(bucket, entry{op.Key, op.Val})
		op.Ok = true
		return 1
	case OpGet:
		if pos >= 0 {
			op.Res, op.Ok = bucket[pos].v, true
		} else {
			op.Res, op.Ok = 0, false
		}
		return 0
	case OpDel:
		if pos < 0 {
			op.Ok = false
			return 0
		}
		bucket[pos] = bucket[len(bucket)-1]
		b.buckets[bi] = bucket[:len(bucket)-1]
		op.Ok = true
		return -1
	default:
		panic("hashmap: unknown op kind")
	}
}

// resize rebuilds the table with newLen buckets (a power of two), in
// parallel over old buckets. Growing by 2x sends old bucket i only to
// new buckets i and i+oldLen (disjoint per task); halving sends old
// buckets i and i+newLen to new bucket i, handled by having each task
// own one *new* bucket and pull from its (at most two) sources.
func (b *Batched) resize(c *sched.Ctx, newLen int) {
	b.Rebuilds++
	old := b.buckets
	fresh := make([][]entry, newLen)
	b.buckets = fresh
	if newLen >= len(old) {
		// Grow: task per old bucket, writing two owned new buckets.
		c.For(0, len(old), 4, func(_ *sched.Ctx, i int) {
			for _, e := range old[i] {
				ni := b.hash(e.k)
				fresh[ni] = append(fresh[ni], e)
			}
		})
		return
	}
	// Shrink: task per new bucket, pulling from its source old buckets.
	ratio := len(old) / newLen
	c.For(0, newLen, 4, func(_ *sched.Ctx, i int) {
		for r := 0; r < ratio; r++ {
			for _, e := range old[i+r*newLen] {
				fresh[i] = append(fresh[i], e)
			}
		}
	})
}
