// Package counter implements the paper's batched shared counter
// (Section 3, Figure 2). INCREMENT atomically adds a (possibly negative)
// value and returns the counter's resulting value. The batched operation
// is a parallel prefix-sums over the batch's increments: op i receives
// value + Δ1 + ... + Δi, which is linearizable (the batch order is the
// linearization order). A size-x batch has Θ(x) work and O(lg x) span, so
// W(n) = Θ(n) and s(n) = O(lg P) — the bounds used in the paper's
// running-time example.
package counter

import (
	"batcher/internal/prefix"
	"batcher/internal/sched"
)

// OpIncrement is the only operation kind.
const OpIncrement sched.OpKind = iota

// seqBatchMax is the batch size up to which RunBatch runs sequentially:
// a prefix-sum over so few terms is cheaper than any forking, and the
// sequential path allocates nothing. Scheduler batches (size <= P) take
// it essentially always; only large Server batches go parallel.
const seqBatchMax = 32

// Batched is the implicitly batched counter. Access it from core tasks
// via Increment; the scheduler invokes RunBatch.
type Batched struct {
	value int64
	vals  []int64 // parallel-path scratch; one batch at a time (Invariant 1)
}

var _ sched.Batched = (*Batched)(nil)

// New returns a batched counter with the given initial value.
func New(initial int64) *Batched { return &Batched{value: initial} }

// Increment atomically adds delta to the counter and returns the
// counter's value including this increment. It must be called from a
// core task; it blocks (without spinning the worker) until some batch
// has performed the operation.
func (b *Batched) Increment(c *sched.Ctx, delta int64) int64 {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpIncrement, Val: delta}
	c.Batchify(op)
	return op.Res
}

// Value returns the current value. Quiescent only: call it when no batch
// can be in flight (e.g. after Run returns), as the paper's model has no
// unbatched reads.
func (b *Batched) Value() int64 { return b.value }

// RunBatch implements sched.Batched: Figure 2's BOP. It needs no
// synchronization — the scheduler guarantees one batch at a time.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	n := len(ops)
	if n <= seqBatchMax {
		v := b.value
		for _, op := range ops {
			v += op.Val
			op.Res = v
			op.Ok = true
		}
		b.value = v
		return
	}
	if cap(b.vals) < n {
		b.vals = make([]int64, n)
	}
	vals := b.vals[:n]
	c.For(0, n, 64, func(_ *sched.Ctx, i int) { vals[i] = ops[i].Val })
	total := prefix.InclusiveInt64(c, vals)
	base := b.value
	c.For(0, n, 64, func(_ *sched.Ctx, i int) {
		ops[i].Res = base + vals[i]
		ops[i].Ok = true
	})
	b.value = base + total
}

// Seq is the sequential counter baseline (no concurrency control),
// used by the benchmark harness as the paper's 1-processor reference.
type Seq struct{ value int64 }

// NewSeq returns a sequential counter.
func NewSeq(initial int64) *Seq { return &Seq{value: initial} }

// Increment adds delta and returns the resulting value.
func (s *Seq) Increment(delta int64) int64 {
	s.value += delta
	return s.value
}

// Value returns the current value.
func (s *Seq) Value() int64 { return s.value }
