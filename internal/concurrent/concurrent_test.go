package concurrent

import (
	"sync"
	"testing"

	"batcher/internal/rng"
)

func TestAtomicCounter(t *testing.T) {
	c := NewAtomicCounter(10)
	if got := c.Increment(5); got != 15 {
		t.Fatalf("Increment = %d", got)
	}
	if c.Value() != 15 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestAtomicCounterParallel(t *testing.T) {
	c := NewAtomicCounter(0)
	var wg sync.WaitGroup
	const g, per = 8, 10000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Increment(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != g*per {
		t.Fatalf("Value = %d, want %d", c.Value(), g*per)
	}
}

func TestAtomicCounterReturnValuesUnique(t *testing.T) {
	c := NewAtomicCounter(0)
	const g, per = 4, 1000
	results := make([][]int64, g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = make([]int64, per)
			for j := 0; j < per; j++ {
				results[i][j] = c.Increment(1)
			}
		}(i)
	}
	wg.Wait()
	seen := make([]bool, g*per+1)
	for _, rs := range results {
		for _, r := range rs {
			if r < 1 || r > g*per || seen[r] {
				t.Fatalf("non-unique return %d", r)
			}
			seen[r] = true
		}
	}
}

func TestMutexSkipList(t *testing.T) {
	m := NewMutexSkipList(1)
	var wg sync.WaitGroup
	const g, per = 8, 500
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				m.Insert(int64(i*per+j), int64(j))
			}
		}(i)
	}
	wg.Wait()
	if m.Len() != g*per {
		t.Fatalf("Len = %d, want %d", m.Len(), g*per)
	}
	for k := int64(0); k < g*per; k++ {
		if _, ok := m.Contains(k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
	if !m.Delete(0) || m.Delete(0) {
		t.Fatal("delete semantics broken")
	}
}

func TestStripedMapBasic(t *testing.T) {
	s := NewStripedMap(8)
	if !s.Insert(1, 10) {
		t.Fatal("insert not new")
	}
	if s.Insert(1, 11) {
		t.Fatal("dup insert new")
	}
	if v, ok := s.Contains(1); !ok || v != 11 {
		t.Fatalf("Contains = %d,%v", v, ok)
	}
	if !s.Delete(1) || s.Delete(1) {
		t.Fatal("delete semantics broken")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStripedMapParallelAgainstOracle(t *testing.T) {
	s := NewStripedMap(16)
	const g, per = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rng.New(uint64(i) + 1)
			for j := 0; j < per; j++ {
				k := r.Int63() % 1000
				switch r.Intn(3) {
				case 0:
					s.Insert(k, k)
				case 1:
					s.Contains(k)
				case 2:
					s.Delete(k)
				}
			}
		}(i)
	}
	wg.Wait()
	// Sanity: every surviving key must be retrievable with its value.
	n := 0
	for k := int64(0); k < 1000; k++ {
		if v, ok := s.Contains(k); ok {
			if v != k {
				t.Fatalf("key %d has value %d", k, v)
			}
			n++
		}
	}
	if n != s.Len() {
		t.Fatalf("Len = %d, scan found %d", s.Len(), n)
	}
}

func TestStripedMapRoundsUpStripes(t *testing.T) {
	s := NewStripedMap(5)
	if len(s.stripes) != 8 {
		t.Fatalf("stripes = %d, want 8", len(s.stripes))
	}
}
