package sched

// Ctx is the execution context handed to every task. It identifies the
// worker running the task and the dag (core or batch) the task belongs
// to, so that forks land on the correct deque (Invariant 3). A Ctx is
// only valid for the dynamic extent of the task invocation it was passed
// to; do not retain it.
type Ctx struct {
	w    *worker
	kind Kind
}

// WorkerID returns the id (in [0, P)) of the worker currently executing
// this task. Useful for per-worker scratch space in batched operations.
func (c *Ctx) WorkerID() int { return c.w.id }

// Workers returns P.
func (c *Ctx) Workers() int { return len(c.w.rt.workers) }

// Runtime returns the runtime executing this task.
func (c *Ctx) Runtime() *Runtime { return c.w.rt }

// Fork executes a and b in parallel (binary forking, as the paper
// assumes) and returns when both have completed. b is made available for
// stealing while the current worker runs a; if b was not stolen the
// worker runs it itself, otherwise the worker helps with other legal work
// until b's thief finishes.
func (c *Ctx) Fork(a, b func(*Ctx)) {
	w := c.w
	j := &join{}
	j.pending.Store(1)
	bt := &Task{fn: b, join: j, kind: c.kind}
	w.dequeFor(c.kind).PushBottom(bt)

	a(c)

	// Fast path: reclaim b from our own deque. The structured fork-join
	// discipline guarantees that everything pushed above bt has been
	// consumed by the time a returns, so the bottom item is bt or nothing.
	if t := w.dequeFor(c.kind).PopBottom(); t != nil {
		if t != bt {
			// During an abort, tasks that unwound may have orphaned
			// children in the deque; anything else is a scheduler bug.
			if w.rt.aborting.Load() {
				panic(abortSignal{})
			}
			panic("sched: fork-join deque discipline violated")
		}
		w.runTask(t)
		return
	}
	// b was stolen: help until its thief completes it.
	for j.pending.Load() != 0 {
		w.rt.checkAbort()
		w.helpWhileWaiting(c.kind)
	}
}

// helpWhileWaiting runs one unit of other work (or backs off) while the
// worker waits at a join inside a task of the given kind.
//
// Trapped workers may only execute batch work (Section 4). Additionally,
// a worker waiting inside a *batch* task must not pick up core work even
// if its status is free: a core task can contain a data-structure node,
// and suspending at one underneath an active batch's frame would make the
// batch's completion depend on a future batch — a deadlock cycle. Free
// workers waiting inside core tasks may execute anything.
func (w *worker) helpWhileWaiting(kind Kind) {
	if t := w.batch.PopBottom(); t != nil {
		w.runTask(t)
		return
	}
	coreOK := kind == KindCore && w.isFree()
	if coreOK {
		if t := w.core.PopBottom(); t != nil {
			w.runTask(t)
			return
		}
	}
	if !w.stealAndRun(!coreOK) {
		w.backoff()
	}
}

// For executes body(i) for every i in [lo, hi) with binary fork-join
// recursion, descending to sequential chunks of at most grain iterations.
// A grain of <= 0 defaults to 1. It matches the parallel_for construct
// used throughout the paper.
func (c *Ctx) For(lo, hi, grain int, body func(*Ctx, int)) {
	if grain <= 0 {
		grain = 1
	}
	c.forRange(lo, hi, grain, body)
}

func (c *Ctx) forRange(lo, hi, grain int, body func(*Ctx, int)) {
	if hi-lo <= grain {
		for i := lo; i < hi; i++ {
			body(c, i)
		}
		return
	}
	mid := lo + (hi-lo)/2
	c.Fork(
		func(cc *Ctx) { cc.forRange(lo, mid, grain, body) },
		func(cc *Ctx) { cc.forRange(mid, hi, grain, body) },
	)
}

// Seq runs body sequentially in the current task; it exists so that
// examples can express "this phase is intentionally sequential" and reads
// symmetric with Fork/For.
func (c *Ctx) Seq(body func(*Ctx)) { body(c) }
