package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// serverSumDS mirrors sumDS but counts max batch size for Invariant 2.
type serverSumDS struct {
	total    int64
	maxBatch int
	active   atomic.Int32
	viol     atomic.Int32
}

func (s *serverSumDS) RunBatch(ctx *Ctx, ops []*OpRecord) {
	if s.active.Add(1) != 1 {
		s.viol.Add(1)
	}
	if len(ops) > s.maxBatch {
		s.maxBatch = len(ops)
	}
	for _, op := range ops {
		op.Res = s.total
		s.total += op.Val
		op.Ok = true
	}
	s.active.Add(-1)
}

func TestServerSingleClient(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 2, Seed: 1})
	ds := &serverSumDS{}
	op := &OpRecord{DS: ds, Val: 7}
	s.Invoke(op)
	s.Close()
	if !op.Ok || ds.total != 7 {
		t.Fatalf("op.Ok=%v total=%d", op.Ok, ds.total)
	}
}

func TestServerManyGoroutines(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 4, Seed: 2})
	ds := &serverSumDS{}
	const clients, per = 16, 200
	var wg sync.WaitGroup
	results := make([][]int64, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]int64, per)
			for i := 0; i < per; i++ {
				op := &OpRecord{DS: ds, Val: 1}
				s.Invoke(op)
				results[g][i] = op.Res
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	if ds.total != clients*per {
		t.Fatalf("total = %d, want %d", ds.total, clients*per)
	}
	if ds.viol.Load() != 0 {
		t.Fatal("Invariant 1 violated")
	}
	// Linearizable: each +1 saw a distinct prior total.
	seen := make([]bool, clients*per)
	for _, rs := range results {
		for _, r := range rs {
			if r < 0 || r >= clients*per || seen[r] {
				t.Fatalf("non-unique pre-total %d", r)
			}
			seen[r] = true
		}
	}
}

func TestServerBatchCap(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 4, Seed: 3, BatchCap: 3})
	ds := &serverSumDS{}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Invoke(&OpRecord{DS: ds, Val: 1})
			}
		}()
	}
	wg.Wait()
	s.Close()
	if ds.maxBatch > 3 {
		t.Fatalf("batch of %d ops exceeded cap 3", ds.maxBatch)
	}
	if ds.total != 32*50 {
		t.Fatalf("total = %d", ds.total)
	}
}

func TestServerDefaultCapIsP(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 2, Seed: 4})
	ds := &serverSumDS{}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				s.Invoke(&OpRecord{DS: ds, Val: 1})
			}
		}()
	}
	wg.Wait()
	s.Close()
	if ds.maxBatch > 2 {
		t.Fatalf("batch of %d ops exceeded P=2", ds.maxBatch)
	}
}

func TestServerMultipleStructures(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 4, Seed: 5})
	a, b := &serverSumDS{}, &serverSumDS{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ds := Batched(a)
				if (g+i)%2 == 0 {
					ds = b
				}
				s.Invoke(&OpRecord{DS: ds, Val: 1})
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	if a.total+b.total != 800 {
		t.Fatalf("totals %d + %d", a.total, b.total)
	}
	if a.viol.Load() != 0 || b.viol.Load() != 0 {
		t.Fatal("Invariant 1 violated")
	}
}

func TestServerParallelBOP(t *testing.T) {
	// A BOP that forks: all P workers should be able to help.
	s := NewServer(ServerConfig{Workers: 4, Seed: 6})
	ds := &forkyDS{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Invoke(&OpRecord{DS: ds, Val: 1})
			}
		}()
	}
	wg.Wait()
	s.Close()
	if ds.total.Load() != 400 {
		t.Fatalf("total = %d", ds.total.Load())
	}
}

func TestServerInvokeNilDSPanics(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 1, Seed: 7})
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Invoke(&OpRecord{})
}

func TestServerMetricsAfterClose(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 2, Seed: 8})
	ds := &serverSumDS{}
	for i := 0; i < 10; i++ {
		s.Invoke(&OpRecord{DS: ds, Val: 1})
	}
	s.Close()
	m := s.Metrics()
	if m.BatchedOps != 10 {
		t.Fatalf("BatchedOps = %d", m.BatchedOps)
	}
	if m.BatchesExecuted == 0 {
		t.Fatal("no batches recorded")
	}
}
