package policy

import "batcher/internal/sched"

// Shed is the first shipped user of the Admit seam (DESIGN.md §14): it
// wraps any batch-formation policy and tightens its admission with a
// per-shard AdmissionController's depth high-water mark. Launch and
// linger decisions delegate to the wrapped policy untouched — Shed
// changes only which submissions the pump accepts, never when batches
// form, so every Theorem 5.4 audit obligation of the inner policy
// carries over.
//
// The server attaches one Shed per shard when admission control is on
// (`batcherd serve -slo`): the controller sheds most overload at the
// edge before it reaches the pump, and this seam is the belt behind
// those braces — ops that slipped past the edge inside one sampler
// tick bounce with ErrPumpSaturated instead of parking a deep backlog
// behind the SLO. Zero-alloc on the admit path (pinned by
// TestShedAdmitZeroAlloc); Shed is an immutable value, safe to share.
type Shed struct {
	// Inner is the wrapped launch/linger policy. Nil means the
	// scheduler default (AlternatingStealPolicy).
	Inner sched.BatchPolicy
	// Ctrl is the shard's admission controller. Nil disables the
	// tightening (Shed becomes a transparent wrapper).
	Ctrl *sched.AdmissionController
}

func (p Shed) inner() sched.BatchPolicy {
	if p.Inner == nil {
		return sched.AlternatingStealPolicy{}
	}
	return p.Inner
}

// Name implements sched.BatchPolicy: the inner policy's name, so
// stats/metrics attribution ("policy: size-cap") is unchanged by
// wrapping.
func (p Shed) Name() string { return p.inner().Name() }

// ShouldLaunch implements sched.BatchPolicy by delegation.
func (p Shed) ShouldLaunch(v sched.PolicyView) sched.LaunchReason {
	return p.inner().ShouldLaunch(v)
}

// LingerYields implements sched.BatchPolicy by delegation.
func (p Shed) LingerYields(proposed int, external bool) int {
	return p.inner().LingerYields(proposed, external)
}

// Admit implements sched.BatchPolicy: the inner policy's verdict ANDed
// with the controller's depth high-water mark.
func (p Shed) Admit(depth, capacity int) bool {
	if !p.inner().Admit(depth, capacity) {
		return false
	}
	return p.Ctrl == nil || p.Ctrl.AdmitDepth(depth, capacity)
}
