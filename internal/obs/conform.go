package obs

import (
	"sync/atomic"
	"time"
)

// Live conformance monitor: the always-on counterpart of `batcherlab
// audit`. The audit reconstructs batches from recorded land stamps
// after the fact and checks the paper's guarantees offline; Conform
// checks them continuously while serving, from the scheduler's own
// batch-land path, and exposes the result as scrapeable gauges.
//
// The two guarantees tracked, per DESIGN.md §16:
//
//   - Lemma 2: an operation that is pending when a batch is not yet
//     executing waits through at most two batch landings. MaxLandings
//     is the measured maximum number of landings inside any op's
//     pending wait; > 2 means the implementation broke the lemma.
//   - Theorem 5.4 envelope: each op's batch delay is at most
//     2·(max batch span + max inter-batch gap). Headroom is the
//     measured ratio delayMax / 2·(spanMax+gapMax); > 1 means the
//     envelope was exceeded.
//
// One monitor instance serves one Runtime (one shard). The writer is
// the batch-launch body, which Invariant 1 serializes — exactly one
// batch executes at a time, and the batch flag's reset-then-CAS pair
// orders one batch's RecordBatch before the next's — so the writer
// state needs no synchronization with itself. Scrapers read
// concurrently, so everything they touch is an atomic. RecordBatch
// allocates nothing (fixed arrays, no maps, no interfaces) and the
// scheduler's hook is the usual nil-guarded pointer read, so a runtime
// without a monitor pays one predicted branch per batch.
//
// Maxima are windowed, not lifetime: a single cold-start outlier must
// not pin the gauges forever, and operators alert on "the envelope
// held over the last window", not "since boot". Two windows (current
// and previous) are kept and gauges report the max over both, so a
// scrape landing just after a rotation never reads an empty window —
// the same discipline as the tail FlightRecorder.

// conformLands is the capacity of the recent-land-stamp ring backing
// the Lemma 2 landings count. An op's wait spans at most a few
// landings when the lemma holds (and the count saturates at the ring
// size when it is catastrophically broken), so a small fixed ring is
// enough and keeps the per-batch scan O(64) worst case.
const conformLands = 64

// confWindow holds one observation window's running maxima. All
// fields are atomics because scrapers read them while the launch body
// writes; the single-writer rule makes load-then-store updates safe.
type confWindow struct {
	span     atomic.Int64 // max batch span (launch -> land), ns
	gap      atomic.Int64 // max inter-batch gap (prev land -> launch), ns
	delay    atomic.Int64 // max per-op batch delay (min pending -> land), ns
	landings atomic.Int64 // max landings inside any op's pending wait
	batches  atomic.Int64 // batches observed this window
}

func (w *confWindow) reset() {
	w.span.Store(0)
	w.gap.Store(0)
	w.delay.Store(0)
	w.landings.Store(0)
	w.batches.Store(0)
}

func (w *confWindow) copyFrom(src *confWindow) {
	w.span.Store(src.span.Load())
	w.gap.Store(src.gap.Load())
	w.delay.Store(src.delay.Load())
	w.landings.Store(src.landings.Load())
	w.batches.Store(src.batches.Load())
}

// raise is the single-writer max update: only the launch body calls
// it, so a plain load-compare-store cannot lose a concurrent raise.
func raise(a *atomic.Int64, v int64) {
	if v > a.Load() {
		a.Store(v)
	}
}

// Conform is a per-runtime live conformance monitor. A nil monitor
// ignores every call. Create with NewConform and attach with
// sched.Runtime.SetConformance.
type Conform struct {
	window int64 // rotation period, ns

	// Writer-only state (the launch body, serialized by Invariant 1).
	prevLand int64               // land stamp of the previous batch, 0 before the first
	lands    [conformLands]int64 // ring of recent land stamps (0 = empty slot)
	landPos  int                 // next ring slot to overwrite
	curStart int64               // land stamp opening the current window

	cur, prev confWindow

	// batches counts lifetime observed batches; violations counts
	// batches whose landings count exceeded Lemma 2's bound of two —
	// lifetime, not windowed, because a broken invariant must never
	// rotate out of view.
	batches    atomic.Int64
	violations atomic.Int64
}

// NewConform creates a monitor with the given observation window
// (default 10s when nonpositive, matching the FlightRecorder).
func NewConform(window time.Duration) *Conform {
	if window <= 0 {
		window = 10 * time.Second
	}
	return &Conform{window: int64(window)}
}

// RecordBatch observes one landed batch: its launch and land stamps
// (obs.Now nanoseconds), the minimum pending-publish stamp among its
// ops, and its size. Called by the scheduler's launch body after the
// batch's ops have landed; allocation-free and wait-free (no locks,
// no CAS loops — the single writer only ever load/stores).
func (m *Conform) RecordBatch(launchNS, landNS, minPendingNS int64, size int) {
	if m == nil || size <= 0 {
		return
	}

	span := landNS - launchNS
	if span < 0 {
		span = 0
	}
	gap := int64(0)
	if m.prevLand != 0 {
		gap = launchNS - m.prevLand
		if gap < 0 {
			gap = 0
		}
	}
	delay := landNS - minPendingNS
	if delay < 0 {
		delay = 0
	}

	// Lemma 2 count: the op that waited longest is the one with the
	// minimum pending stamp, and the landings inside its wait are this
	// batch's own landing plus every earlier landing after it became
	// pending. Batches are serialized, so "earlier" is simply every
	// ring entry, and "after it became pending" is stamp > minPending.
	landings := int64(1)
	for _, ts := range m.lands {
		if ts > minPendingNS {
			landings++
		}
	}

	// Rotate on window expiry before folding this batch in, so the
	// observation lands in the window its timestamp belongs to.
	if m.curStart == 0 {
		m.curStart = landNS
	} else if landNS-m.curStart >= m.window {
		m.prev.copyFrom(&m.cur)
		m.cur.reset()
		m.curStart = landNS
	}

	raise(&m.cur.span, span)
	raise(&m.cur.gap, gap)
	raise(&m.cur.delay, delay)
	raise(&m.cur.landings, landings)
	m.cur.batches.Add(1)
	m.batches.Add(1)
	if landings > 2 {
		m.violations.Add(1)
	}

	m.lands[m.landPos] = landNS
	m.landPos = (m.landPos + 1) % conformLands
	m.prevLand = landNS
}

// windowMax returns the max of the current and previous windows for
// one gauge, so scrapes just after a rotation stay populated.
func (m *Conform) windowMax(f func(*confWindow) *atomic.Int64) int64 {
	c, p := f(&m.cur).Load(), f(&m.prev).Load()
	if p > c {
		return p
	}
	return c
}

// SpanMaxNS returns the windowed maximum batch span (launch to land).
func (m *Conform) SpanMaxNS() int64 {
	if m == nil {
		return 0
	}
	return m.windowMax(func(w *confWindow) *atomic.Int64 { return &w.span })
}

// GapMaxNS returns the windowed maximum inter-batch gap (previous
// land to next launch).
func (m *Conform) GapMaxNS() int64 {
	if m == nil {
		return 0
	}
	return m.windowMax(func(w *confWindow) *atomic.Int64 { return &w.gap })
}

// DelayMaxNS returns the windowed maximum per-op batch delay (the
// pending-to-land wait of each batch's longest-waiting op).
func (m *Conform) DelayMaxNS() int64 {
	if m == nil {
		return 0
	}
	return m.windowMax(func(w *confWindow) *atomic.Int64 { return &w.delay })
}

// MaxLandings returns the windowed maximum number of batch landings
// inside any op's pending wait. Lemma 2 bounds it by two.
func (m *Conform) MaxLandings() int64 {
	if m == nil {
		return 0
	}
	return m.windowMax(func(w *confWindow) *atomic.Int64 { return &w.landings })
}

// Batches returns the lifetime number of observed batches.
func (m *Conform) Batches() int64 {
	if m == nil {
		return 0
	}
	return m.batches.Load()
}

// Violations returns the lifetime number of batches whose landings
// count exceeded Lemma 2's bound (never rotated out).
func (m *Conform) Violations() int64 {
	if m == nil {
		return 0
	}
	return m.violations.Load()
}

// Headroom returns the Theorem 5.4 bound-headroom gauge: the windowed
// maximum batch delay divided by 2·(spanMax+gapMax), the envelope the
// theorem charges each op. At most 1.0 while the envelope holds; 0
// when no batches have been observed (or the denominator is zero —
// back-to-back zero-length batches on a coarse clock).
func (m *Conform) Headroom() float64 {
	if m == nil {
		return 0
	}
	bound := 2 * (m.SpanMaxNS() + m.GapMaxNS())
	if bound <= 0 {
		return 0
	}
	return float64(m.DelayMaxNS()) / float64(bound)
}

// ConformSnapshot is a point-in-time copy of the monitor's gauges,
// for stats endpoints.
type ConformSnapshot struct {
	Batches     int64   `json:"batches"`
	SpanMaxNS   int64   `json:"span_max_ns"`
	GapMaxNS    int64   `json:"gap_max_ns"`
	DelayMaxNS  int64   `json:"delay_max_ns"`
	MaxLandings int64   `json:"max_landings"`
	Violations  int64   `json:"violations"`
	Headroom    float64 `json:"headroom"`
}

// Snapshot returns the current gauge values. Safe to call while the
// scheduler records; the fields are each individually consistent (the
// snapshot is not an atomic cut across gauges, which monitoring does
// not need).
func (m *Conform) Snapshot() ConformSnapshot {
	if m == nil {
		return ConformSnapshot{}
	}
	return ConformSnapshot{
		Batches:     m.Batches(),
		SpanMaxNS:   m.SpanMaxNS(),
		GapMaxNS:    m.GapMaxNS(),
		DelayMaxNS:  m.DelayMaxNS(),
		MaxLandings: m.MaxLandings(),
		Violations:  m.Violations(),
		Headroom:    m.Headroom(),
	}
}
