package main

// batcherlab watch — a polling terminal dashboard for a running
// batcherd. Each frame combines two sources: the server's live stats
// document (a DSStats request over the serving port — ops/s, batching,
// queue depths, admission figures, conformance gauges) and, when
// -metrics is given, a scrape of the Prometheus listener to compute
// each shard's *measured* p999 from the batcherd_op_total_ns
// cumulative buckets. The measured column next to the twin's
// predicted column is the dashboard's point: the analytical twin and
// the Theorem 5.4 envelope are live claims, and watch shows whether
// reality is honoring them right now.

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"batcher/internal/loadgen"
	"batcher/internal/server"
)

func watchCmd(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "batcherd serving address (stats via the wire protocol)")
	metricsURL := fs.String("metrics", "",
		"batcherd metrics listener base URL (e.g. http://127.0.0.1:9100); enables the measured-p999 scrape")
	interval := fs.Duration("interval", time.Second, "poll interval")
	once := fs.Bool("once", false, "render a single frame and exit (no screen clearing)")
	fs.Parse(args)

	var prev *server.Stats
	prevAt := time.Now()
	for {
		st, err := fetchStats(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "watch:", err)
			os.Exit(1)
		}
		var measured map[int]int64
		if *metricsURL != "" {
			measured, err = scrapeMeasuredP999(*metricsURL)
			if err != nil {
				fmt.Fprintln(os.Stderr, "watch: metrics scrape:", err)
				os.Exit(1)
			}
		}
		now := time.Now()
		dt := now.Sub(prevAt).Seconds()
		if !*once {
			// Home the cursor and clear: repaint in place, no scrollback spam.
			fmt.Print("\x1b[H\x1b[2J")
		}
		renderWatch(os.Stdout, st, prev, dt, measured)
		if *once {
			return
		}
		prev = &st
		prevAt = now
		time.Sleep(*interval)
	}
}

// fetchStats dials the serving port and issues one DSStats request.
// A fresh connection per frame keeps the loop robust across server
// restarts (a watch outlives the batcherd it watches).
func fetchStats(addr string) (server.Stats, error) {
	c, err := loadgen.Dial(addr)
	if err != nil {
		return server.Stats{}, err
	}
	defer c.Close()
	return c.Stats()
}

// renderWatch paints one dashboard frame. prev is the previous frame's
// stats (nil on the first frame): with it, ops/s and shed/s are exact
// interval rates; without it they fall back to lifetime averages.
func renderWatch(w io.Writer, st server.Stats, prev *server.Stats, dt float64, measured map[int]int64) {
	slo := "off"
	if st.AdmitSLONS > 0 {
		slo = time.Duration(st.AdmitSLONS).String()
	}
	opsRate := st.OpsPerSec
	shedRate := 0.0
	if st.UptimeSec > 0 {
		shedRate = float64(st.Shed) / st.UptimeSec
	}
	if prev != nil && dt > 0 {
		opsRate = float64(sumCompleted(st)-sumCompleted(*prev)) / dt
		shedRate = float64(st.Shed-prev.Shed) / dt
	}
	fmt.Fprintf(w, "batcherd %s  up %s  conns %d  policy %s  slo %s\n",
		time.Now().Format("15:04:05"),
		(time.Duration(st.UptimeSec * float64(time.Second))).Round(time.Second),
		st.Conns, st.Policy, slo)
	fmt.Fprintf(w, "ops/s %.0f  mean_batch %.2f  queue %d  shed/s %.1f  headroom %.3f  max_landings %d  twin_residual %.1f%%\n",
		opsRate, st.MeanBatch, st.QueueDepth, shedRate,
		st.ConformHeadroom, st.ConformMaxLandings, st.TwinResidualPct)
	fmt.Fprintf(w, "%6s %10s %8s %7s %12s %12s %9s %6s %9s\n",
		"shard", "ops/s", "mean", "queue", "pred_p999", "meas_p999", "headroom", "lands", "shed/s")
	for i, ss := range st.PerShard {
		shardOps := ss.OpsPerSec
		shardShed := 0.0
		if st.UptimeSec > 0 {
			shardShed = float64(ss.Shed) / st.UptimeSec
		}
		if prev != nil && dt > 0 && i < len(prev.PerShard) {
			shardOps = float64(ss.Completed-prev.PerShard[i].Completed) / dt
			shardShed = float64(ss.Shed-prev.PerShard[i].Shed) / dt
		}
		meas := ss.MeasuredP999NS
		if m, ok := measured[ss.Shard]; ok {
			meas = m
		}
		fmt.Fprintf(w, "%6d %10.0f %8.2f %7d %12s %12s %9.3f %6d %9.1f\n",
			ss.Shard, shardOps, ss.MeanBatch, ss.QueueDepth,
			fmtNS(ss.PredictedP999NS), fmtNS(meas),
			ss.Conformance.Headroom, ss.Conformance.MaxLandings, shardShed)
	}
}

func sumCompleted(st server.Stats) int64 {
	var n int64
	for _, ss := range st.PerShard {
		n += ss.Completed
	}
	return n
}

// scrapeMeasuredP999 fetches /metrics and computes each shard's p999
// from the batcherd_op_total_ns cumulative buckets — the end-to-end
// latency family, always exported, independent of whether admission
// control (and so the twin's own realized-p999 pairing) is on.
func scrapeMeasuredP999(base string) (map[int]int64, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server returned %s", resp.Status)
	}
	return parseBucketP999(resp.Body, "batcherd_op_total_ns", 0.999)
}

// promBucket is one parsed cumulative bucket sample.
type promBucket struct {
	upper int64 // le boundary; +Inf parses as math.MaxInt64-ish sentinel
	count int64
}

// parseBucketP999 scans Prometheus text for family's _bucket samples
// (labelled shard="N") and computes the q-quantile per shard from the
// cumulative counts.
func parseBucketP999(r io.Reader, family string, q float64) (map[int]int64, error) {
	prefix := family + "_bucket{"
	buckets := make(map[int][]promBucket)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		shard, b, ok := parseBucketLine(line[len(prefix):])
		if !ok {
			return nil, fmt.Errorf("malformed bucket line: %q", line)
		}
		buckets[shard] = append(buckets[shard], b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[int]int64, len(buckets))
	for shard, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].upper < bs[j].upper })
		total := bs[len(bs)-1].count
		if total == 0 {
			continue
		}
		target := int64(q * float64(total))
		if target < 1 {
			target = 1
		}
		for _, b := range bs {
			if b.count >= target {
				out[shard] = b.upper
				break
			}
		}
	}
	return out, nil
}

// parseBucketLine parses `shard="0",le="12345"} 678` (the remainder of
// a bucket sample line after the family prefix). Label order is fixed
// by the exporter: shard first, le last.
func parseBucketLine(rest string) (shard int, b promBucket, ok bool) {
	end := strings.Index(rest, "} ")
	if end < 0 {
		return 0, promBucket{}, false
	}
	labels, value := rest[:end], rest[end+2:]
	var shardStr, leStr string
	for _, part := range strings.Split(labels, ",") {
		switch {
		case strings.HasPrefix(part, `shard="`):
			shardStr = strings.TrimSuffix(strings.TrimPrefix(part, `shard="`), `"`)
		case strings.HasPrefix(part, `le="`):
			leStr = strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`)
		}
	}
	shard, err := strconv.Atoi(shardStr)
	if err != nil {
		return 0, promBucket{}, false
	}
	if leStr == "+Inf" {
		b.upper = 1<<62 - 1
	} else if b.upper, err = strconv.ParseInt(leStr, 10, 64); err != nil {
		return 0, promBucket{}, false
	}
	if b.count, err = strconv.ParseInt(strings.TrimSpace(value), 10, 64); err != nil {
		return 0, promBucket{}, false
	}
	return shard, b, true
}
