// Package concurrent provides the conventional concurrent-data-structure
// baselines the paper compares implicit batching against: the trivial
// atomic (fetch-and-add) counter of Section 3, whose n increments
// serialize and cost Ω(n) regardless of P, and lock-based skip lists
// (coarse- and striped-lock) representing the "concurrent structure with
// no aggregate performance theorem" class. These run under ordinary
// goroutines — they are deliberately *not* BATCHER clients.
package concurrent

import (
	"sync"
	"sync/atomic"

	"batcher/internal/ds/skiplist"
)

// AtomicCounter is the trivial concurrent counter: a single cache line
// updated with fetch-and-add. Every increment serializes on the one word,
// which is exactly why the paper's analysis gives it Ω(n) total time.
type AtomicCounter struct {
	v atomic.Int64
}

// NewAtomicCounter returns a counter with the given initial value.
func NewAtomicCounter(initial int64) *AtomicCounter {
	c := &AtomicCounter{}
	c.v.Store(initial)
	return c
}

// Increment atomically adds delta and returns the resulting value.
func (c *AtomicCounter) Increment(delta int64) int64 { return c.v.Add(delta) }

// Value returns the current value.
func (c *AtomicCounter) Value() int64 { return c.v.Load() }

// MutexSkipList is a sequential skip list behind one global mutex — the
// simplest correct concurrent skip list and the natural strawman for the
// Section 7 insert workload.
type MutexSkipList struct {
	mu sync.Mutex
	l  *skiplist.List
}

// NewMutexSkipList returns an empty list with the given height seed.
func NewMutexSkipList(seed uint64) *MutexSkipList {
	return &MutexSkipList{l: skiplist.NewList(seed)}
}

// Insert adds key/val; reports whether key was newly inserted.
func (m *MutexSkipList) Insert(key, val int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.l.Insert(key, val)
}

// Contains looks up key.
func (m *MutexSkipList) Contains(key int64) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.l.Contains(key)
}

// Delete removes key, reporting whether it was present.
func (m *MutexSkipList) Delete(key int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.l.Delete(key)
}

// Len returns the number of keys.
func (m *MutexSkipList) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.l.Len()
}

// StripedMap is a lock-striped hash map baseline: finer-grained than the
// global mutex, still no aggregate bound. It represents the "better
// engineered but theoretically unconstrained" concurrent alternative.
type StripedMap struct {
	stripes []mapStripe
	mask    uint64
}

type mapStripe struct {
	mu sync.Mutex
	m  map[int64]int64
	_  [40]byte // pad toward a cache line to reduce false sharing
}

// NewStripedMap returns a map with the given number of stripes (rounded
// up to a power of two, minimum 1).
func NewStripedMap(stripes int) *StripedMap {
	n := 1
	for n < stripes {
		n *= 2
	}
	s := &StripedMap{stripes: make([]mapStripe, n), mask: uint64(n - 1)}
	for i := range s.stripes {
		s.stripes[i].m = make(map[int64]int64)
	}
	return s
}

func (s *StripedMap) stripe(key int64) *mapStripe {
	h := uint64(key)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &s.stripes[h&s.mask]
}

// Insert adds key/val; reports whether key was newly inserted.
func (s *StripedMap) Insert(key, val int64) bool {
	st := s.stripe(key)
	st.mu.Lock()
	_, existed := st.m[key]
	st.m[key] = val
	st.mu.Unlock()
	return !existed
}

// Contains looks up key.
func (s *StripedMap) Contains(key int64) (int64, bool) {
	st := s.stripe(key)
	st.mu.Lock()
	v, ok := st.m[key]
	st.mu.Unlock()
	return v, ok
}

// Delete removes key, reporting whether it was present.
func (s *StripedMap) Delete(key int64) bool {
	st := s.stripe(key)
	st.mu.Lock()
	_, existed := st.m[key]
	delete(st.m, key)
	st.mu.Unlock()
	return existed
}

// Len returns the total number of keys (takes all stripe locks).
func (s *StripedMap) Len() int {
	total := 0
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		total += len(s.stripes[i].m)
		s.stripes[i].mu.Unlock()
	}
	return total
}
