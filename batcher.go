// Package batcher is the public facade of this repository's
// implementation of BATCHER — the work-stealing scheduler with implicit
// batching from Agrawal, Fineman, Lu, Sheridan, Sukha and Utterback,
// "Provably Good Scheduling for Parallel Programs that Use Data
// Structures through Implicit Batching" (SPAA 2014).
//
// # Model
//
// A program is a dynamically multithreaded (fork-join) computation that
// makes parallel accesses to an abstract data type. The data type is
// implemented as a *batched* data structure: it provides one parallel
// batched operation (RunBatch) and never has to cope with concurrency,
// because the scheduler guarantees at most one batch executes at a time.
// The scheduler transparently groups concurrent accesses into batches of
// at most P operations and executes them via work stealing over
// per-worker core and batch deques with the alternating-steal policy.
//
// For a program with T1 work, T∞ span, n data-structure operations (at
// most m on any path), and a structure with batch work W(n) and batch
// span s(n), BATCHER runs in expected time
//
//	O((T1 + W(n) + n·s(n))/P + m·s(n) + T∞).
//
// # Quick start
//
//	rt := batcher.New(batcher.Config{Workers: 8})
//	ctr := counter.New(0)        // internal/ds/counter — a batched ADT
//	rt.Run(func(c *batcher.Ctx) {
//	    c.For(0, 1_000_000, 1, func(c *batcher.Ctx, i int) {
//	        ctr.Increment(c, 1)  // implicitly batched, linearizable
//	    })
//	})
//
// Batched structures in this module: counter.Batched (prefix-sums
// counter), stack.Batched (amortized table-doubling LIFO stack),
// skiplist.Batched (the Section 7 skip list), tree23.Batched (join-based
// batched 2-3 tree), and pqueue.Batched (batch-melding priority queue).
// Implement your own by satisfying the Batched interface — RunBatch may
// fork freely through the provided Ctx and needs no locks.
package batcher

import "batcher/internal/sched"

// Config configures a Runtime. See sched.Config.
type Config = sched.Config

// Runtime is a P-worker BATCHER scheduler instance.
type Runtime = sched.Runtime

// Ctx is the execution context passed to every task; it provides Fork,
// For, and Batchify.
type Ctx = sched.Ctx

// OpRecord is the operation record handed to a batched structure.
type OpRecord = sched.OpRecord

// OpKind is a structure-specific operation code.
type OpKind = sched.OpKind

// Batched is the interface batched data structures implement.
type Batched = sched.Batched

// Metrics aggregates scheduler event counters.
type Metrics = sched.Metrics

// StealPolicy selects the free-worker steal policy (the default,
// AlternatingSteal, is the one the paper's analysis requires).
type StealPolicy = sched.StealPolicy

// Steal policies. Non-default policies exist for ablation experiments.
const (
	AlternatingSteal = sched.AlternatingSteal
	CoreOnlySteal    = sched.CoreOnlySteal
	BatchOnlySteal   = sched.BatchOnlySteal
	RandomDequeSteal = sched.RandomDequeSteal
)

// Server is the standalone batching service for programs not written
// against the fork-join runtime (the paper's Section 8 "pthreaded
// programs" extension): any goroutine may Invoke operations, and the
// scheduler's workers execute the batches. Server.Close is idempotent:
// repeated or concurrent calls are safe and all wait for the drain.
type Server = sched.Server

// ServerConfig configures a Server.
type ServerConfig = sched.ServerConfig

// Pump is the external-submission entry point used by the batcherd
// serving layer: goroutines outside the fork-join computation Submit
// operation records, and one resident pump task per worker feeds them
// through Ctx.Batchify, so concurrent submissions batch implicitly
// exactly as concurrent fork-join strands do. Pump.Close is idempotent
// (double-stop never panics) and drains every accepted operation before
// Serve returns.
type Pump = sched.Pump

// PumpConfig configures a Pump.
type PumpConfig = sched.PumpConfig

// Pump submission errors.
var (
	// ErrPumpClosed reports a Submit after Close.
	ErrPumpClosed = sched.ErrPumpClosed
	// ErrPumpSaturated reports a Submit that found the ingress queue
	// full (the backpressure signal).
	ErrPumpSaturated = sched.ErrPumpSaturated
)

// New creates a runtime with the given configuration.
func New(cfg Config) *Runtime { return sched.New(cfg) }

// NewServer starts a standalone batching server.
func NewServer(cfg ServerConfig) *Server { return sched.NewServer(cfg) }

// NewPump creates an external-submission pump over rt; start it with
// Serve and stop it with Close.
func NewPump(rt *Runtime, cfg PumpConfig) *Pump { return sched.NewPump(rt, cfg) }

// Run is a convenience that creates a default runtime and executes root
// to completion.
func Run(root func(*Ctx)) {
	New(Config{}).Run(root)
}
