// Command batcherlab regenerates the paper's evaluation: every figure,
// worked example, bound validation, and ablation in DESIGN.md's
// experiment index. Each subcommand prints the measured series as a
// table followed by the qualitative shape checks (the claims the paper
// makes about that experiment) with PASS/FAIL verdicts.
//
// Usage:
//
//	batcherlab fig5     # Figure 5: skip-list throughput, BATCHER vs SEQ
//	batcherlab fc       # Section 7 prose: flat combining comparison
//	batcherlab counter  # Section 3 example: batched counter bound
//	batcherlab tree     # Section 3 example: batched 2-3 tree bound
//	batcherlab stack    # Section 3 example: amortized stack bound
//	batcherlab bound    # Theorem 1 validation regression
//	batcherlab lemma2   # Lemma 2: trapped for at most two batches
//	batcherlab ablate   # steal-policy / batch-cap / launch ablations
//	batcherlab real     # wall-clock runs on the goroutine runtime
//	batcherlab audit    # empirical Theorem 5.4 batch-delay audit (real runtime)
//	batcherlab all      # everything above
//	batcherlab benchjson [-i bench.txt] [-o BENCH_sched.json] [-append]
//	                    # convert `go test -bench -benchmem` output to JSON
//	                    # (-append: add one JSONL line instead of overwriting)
//	batcherlab slow [-addr http://127.0.0.1:9100]
//	                    # fetch a running batcherd's tail flight recorder
//	                    # (/slow) and print the K slowest recent ops
//	batcherlab watch [-addr 127.0.0.1:7411] [-metrics http://127.0.0.1:9100]
//	                 [-interval 1s] [-once]
//	                    # live dashboard for a running batcherd: per-shard
//	                    # ops/s, batching, queue depth, predicted vs
//	                    # measured p999, Theorem 5.4 headroom, shed rate
//	batcherlab twin [-validate] [-tol 0.25] [-record f.json] [-replay f.json]
//	                [-quick] [-workers N]
//	                    # calibrate the analytical twin (DESIGN.md §15)
//	                    # against a live load sweep — or -replay a
//	                    # recorded one — and report predicted-vs-measured
//	                    # p999 per point; -validate gates on the error
//
// Flags:
//
//	-quick    smaller parameters (CI-sized run)
//	-seed N   simulator seed (default: the paper's defaults)
//	-workers N  worker count for the real-runtime experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"batcher/internal/experiments"
	"batcher/internal/sim"
	"batcher/internal/simds"
)

var (
	quick   = flag.Bool("quick", false, "run with smaller, CI-sized parameters")
	seed    = flag.Uint64("seed", 20140623, "simulator seed")
	workers = flag.Int("workers", runtime.GOMAXPROCS(0), "workers for real-runtime experiments")
	polName = flag.String("policy", "default",
		"batch-formation policy for the audit's real runtimes: default|size-cap|deadline")
	chrome = flag.String("chrome", "",
		"trace subcommand: run a real traced workload and write Chrome trace_event JSON to this file")
)

func main() {
	flag.Parse()
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	if cmd == "benchjson" {
		// Not an experiment: a filter turning `go test -bench -benchmem`
		// output into JSON (see benchjson.go). Excluded from "all".
		benchjsonCmd(flag.Args()[1:])
		return
	}
	if cmd == "benchcmp" {
		// Also not an experiment: the nightly perf gate (benchcmp.go).
		benchcmpCmd(flag.Args()[1:])
		return
	}
	if cmd == "slow" {
		// Operational: fetch a running batcherd's tail flight recorder
		// (slow.go). Takes its own -addr flag, excluded from "all".
		slowCmd(flag.Args()[1:])
		return
	}
	if cmd == "watch" {
		// Operational: polling dashboard over a running batcherd's stats
		// and metrics (watch.go). Own flags, excluded from "all".
		watchCmd(flag.Args()[1:])
		return
	}
	if cmd == "twin" {
		// Calibration, not an experiment: fit the analytical twin from a
		// live or recorded load sweep and gate its p999 predictions
		// (twin.go). Excluded from "all" — the live sweep takes seconds
		// of wall clock by design.
		twinCmd(flag.Args()[1:])
		return
	}
	ran := false
	run := func(name string, f func()) {
		if cmd == name || cmd == "all" {
			fmt.Printf("== %s ==\n", name)
			f()
			fmt.Println()
			ran = true
		}
	}
	run("fig5", func() { fig5(false) })
	run("fc", func() { fig5(true) })
	run("intro", introCmd)
	run("counter", counterCmd)
	run("tree", treeCmd)
	run("stack", stackCmd)
	run("bound", boundCmd)
	run("tau", tauCmd)
	run("lemma2", lemma2Cmd)
	run("ablate", ablateCmd)
	run("trace", traceCmd)
	run("real", realCmd)
	run("audit", auditCmd)
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; see batcherlab -h\n", cmd)
		os.Exit(2)
	}
}

func printChecks(checks []experiments.Check) {
	for _, c := range checks {
		fmt.Println(c)
	}
}

func fig5(fc bool) {
	cfg := experiments.DefaultFig5()
	cfg.Seed = *seed
	cfg.FlatCombining = fc
	if *quick {
		cfg.Calls = 300
		cfg.Sizes = []int64{20_000, 1_000_000, 100_000_000}
		cfg.Workers = []int{1, 2, 4, 8}
	}
	res := experiments.Fig5(cfg)
	fmt.Printf("%d insertions (%d calls x %d records), throughput = inserts per 1000 timesteps\n",
		cfg.Calls*cfg.RecordsPer, cfg.Calls, cfg.RecordsPer)
	fmt.Print(res.Table())
	printChecks(res.ShapeChecks())
}

func sweepWorkers() []int {
	if *quick {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8}
}

func introCmd() {
	calls := 2000
	if *quick {
		calls = 1000
	}
	res := experiments.Intro(calls, 32, sweepWorkers(), *seed)
	fmt.Printf("the introduction's comparison: %d ops through contended concurrent\n", calls*32)
	fmt.Printf("structures (inline, cost grows with simultaneous ops) vs implicit batching\n")
	fmt.Print(res.Table())
	printChecks(res.ShapeChecks())
}

func counterCmd() {
	calls, rec := 2000, 32
	if *quick {
		calls = 1000
	}
	res := experiments.Counter(calls, rec, sweepWorkers(), *seed)
	fmt.Printf("n = %d increments (%d calls x %d records)\n", calls*rec, calls, rec)
	fmt.Print(res.Table())
	printChecks(res.ShapeChecks())
}

func treeCmd() {
	ns := []int{2000, 8000}
	if !*quick {
		ns = []int{2000, 8000, 32000}
	}
	res := experiments.Tree(ns, sweepWorkers(), 1<<20, *seed)
	fmt.Printf("inserts into a 2-3 tree of initial size 2^20\n")
	fmt.Print(res.Table())
	printChecks(res.ShapeChecks())
}

func stackCmd() {
	calls, rec := 2000, 32
	if *quick {
		calls = 1000
	}
	res := experiments.Stack(calls, rec, sweepWorkers(), *seed)
	fmt.Printf("n = %d pushes through table doubling\n", calls*rec)
	fmt.Print(res.Table())
	printChecks(res.ShapeChecks())
}

func boundCmd() {
	res := experiments.BoundFit(*seed)
	fmt.Print(res.Rows)
	fmt.Printf("fit: makespan ~ %.3f·(T1+W+ns)/P %+.3f·m·s %+.3f·T∞   R²=%.4f\n",
		res.Fit.Coef[0], res.Fit.Coef[1], res.Fit.Coef[2], res.Fit.R2)
	printChecks(res.ShapeChecks())
}

func tauCmd() {
	calls := 4000
	if *quick {
		calls = 1500
	}
	res := experiments.Tau(calls, 32, 8, *seed)
	fmt.Printf("Theorem 3 τ-tradeoff on the amortized stack (heavy-tailed batch spans):\n")
	fmt.Printf("%d pushes, P=8, %d batches, makespan %d, max batch span %d\n",
		calls*32, res.Batches, res.Makespan, res.MaxSpan)
	fmt.Print(res.Table())
	printChecks(res.ShapeChecks())
}

func lemma2Cmd() {
	printChecks(experiments.Lemma2(*seed))
}

func ablateCmd() {
	n := 2000
	if *quick {
		n = 600
	}
	for _, res := range []experiments.AblateResult{
		experiments.AblateSteal(n, 8, *seed),
		experiments.AblateCap(n, 8, *seed),
		experiments.AblateLaunch(n, 8, *seed),
	} {
		fmt.Printf("-- %s --\n", res.Knob)
		fmt.Print(res.Rows)
		printChecks(res.ShapeChecks())
	}
}

func traceCmd() {
	if *chrome != "" {
		// Real-runtime mode: trace an actual scheduler run and export it
		// for chrome://tracing (tracereal.go).
		if err := traceRealChrome(*chrome, *workers, *seed, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		return
	}
	// A small Fig5-style run with per-worker activity timelines, showing
	// the scheduler's phases: core execution (C), operation publication
	// (D), batch setup (s), BOP work (B), launches (L), resumes (r),
	// steals (/), idling (.).
	g := sim.NewGraph(1 << 10)
	ops := make([]*sim.Op, 64)
	for i := range ops {
		ops[i] = &sim.Op{Records: 16}
	}
	g.ForkJoinDS(ops, 8, 8)
	res := sim.NewSim(sim.Config{Workers: 8, Seed: *seed, TraceCols: 100},
		&simds.SkipList{Size: 1 << 20}).Run(g)
	fmt.Printf("64 calls x 16 records into a 2^20 skip list, P=8, makespan %d steps\n", res.Makespan)
	fmt.Println("legend: C core  D publish-op  s setup  B batch(BOP)  L launch  r resume  / steal  . idle")
	for i, row := range res.Trace {
		fmt.Printf("w%d %s\n", i, row)
	}
}

func realCmd() {
	cfg := experiments.RealSkipListConfig{
		Calls: 1000, RecordsPer: 100, Initial: 100_000,
		Workers: *workers, Seed: *seed,
	}
	if *quick {
		cfg.Calls, cfg.Initial = 200, 20_000
	}
	fmt.Printf("wall-clock skip-list insert, %d inserts, initial size %d, P=%d (host has %d CPU(s))\n",
		cfg.Calls*cfg.RecordsPer, cfg.Initial, cfg.Workers, runtime.NumCPU())
	fmt.Print(experiments.RealSkipList(cfg))
	db := experiments.RealCounterBatcher(cfg.Workers, 50_000, cfg.Seed)
	da := experiments.RealCounterAtomic(cfg.Workers, 50_000)
	fmt.Printf("counter (50k increments): BATCHER %v, atomic fetch-add %v\n", db, da)
	fmt.Println("note: this host may have fewer CPUs than workers; wall-clock")
	fmt.Println("numbers measure overhead/correctness, the simulator measures scaling.")
}
