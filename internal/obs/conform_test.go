package obs

import (
	"sync"
	"testing"
	"time"
)

// TestConformBasic drives the monitor with hand-built timestamps and
// checks every gauge against the arithmetic in the doc comments.
func TestConformBasic(t *testing.T) {
	m := NewConform(time.Hour) // no rotation during the test

	// Batch 1: pending at 100, launch 150, land 250. Span 100, no
	// previous batch so gap 0, delay 150, one landing (its own).
	m.RecordBatch(150, 250, 100, 3)
	if got := m.SpanMaxNS(); got != 100 {
		t.Fatalf("span = %d, want 100", got)
	}
	if got := m.GapMaxNS(); got != 0 {
		t.Fatalf("gap = %d, want 0", got)
	}
	if got := m.DelayMaxNS(); got != 150 {
		t.Fatalf("delay = %d, want 150", got)
	}
	if got := m.MaxLandings(); got != 1 {
		t.Fatalf("landings = %d, want 1", got)
	}

	// Batch 2: its slowest op went pending at 200 — before batch 1
	// landed at 250 — launch 300, land 400. Gap = 300-250 = 50; the op
	// waited through batch 1's landing plus its own: two landings,
	// exactly Lemma 2's bound. Delay = 400-200 = 200.
	m.RecordBatch(300, 400, 200, 2)
	if got := m.SpanMaxNS(); got != 100 {
		t.Fatalf("span = %d, want 100 (unchanged)", got)
	}
	if got := m.GapMaxNS(); got != 50 {
		t.Fatalf("gap = %d, want 50", got)
	}
	if got := m.DelayMaxNS(); got != 200 {
		t.Fatalf("delay = %d, want 200", got)
	}
	if got := m.MaxLandings(); got != 2 {
		t.Fatalf("landings = %d, want 2", got)
	}
	if got := m.Violations(); got != 0 {
		t.Fatalf("violations = %d, want 0", got)
	}
	if got := m.Batches(); got != 2 {
		t.Fatalf("batches = %d, want 2", got)
	}

	// Headroom: delayMax 200 over 2*(span 100 + gap 50) = 300.
	if got, want := m.Headroom(), 200.0/300.0; got != want {
		t.Fatalf("headroom = %v, want %v", got, want)
	}

	// Batch 3: a Lemma 2 violation — the op was pending at 50, before
	// both earlier landings (250 and 400), so it waited through three.
	m.RecordBatch(500, 600, 50, 1)
	if got := m.MaxLandings(); got != 3 {
		t.Fatalf("landings = %d, want 3", got)
	}
	if got := m.Violations(); got != 1 {
		t.Fatalf("violations = %d, want 1", got)
	}
}

// TestConformClamps checks that out-of-order stamps (possible only
// from coarse clocks or absent stamps) clamp to zero instead of going
// negative, and that empty batches are ignored.
func TestConformClamps(t *testing.T) {
	m := NewConform(time.Hour)
	m.RecordBatch(0, 0, 0, 0) // size 0: ignored entirely
	if got := m.Batches(); got != 0 {
		t.Fatalf("batches = %d, want 0 after empty batch", got)
	}
	m.RecordBatch(200, 100, 300, 1) // land < launch, pending > land
	if got := m.SpanMaxNS(); got != 0 {
		t.Fatalf("span = %d, want 0 (clamped)", got)
	}
	if got := m.DelayMaxNS(); got != 0 {
		t.Fatalf("delay = %d, want 0 (clamped)", got)
	}
	m.RecordBatch(50, 300, 40, 1) // launch < prev land: gap clamps
	if got := m.GapMaxNS(); got != 0 {
		t.Fatalf("gap = %d, want 0 (clamped)", got)
	}
}

// TestConformRotation checks the two-window discipline: a maximum
// survives exactly one rotation (so scrapes just after one are never
// empty) and vanishes after two.
func TestConformRotation(t *testing.T) {
	const win = int64(1000)
	m := NewConform(time.Duration(win))

	m.RecordBatch(100, 300, 50, 1) // span 200 opens the first window
	if got := m.SpanMaxNS(); got != 200 {
		t.Fatalf("span = %d, want 200", got)
	}

	// Land past the window boundary: rotation, old max still visible
	// through prev.
	land2 := 300 + win
	m.RecordBatch(land2-10, land2, land2-20, 1) // span 10
	if got := m.SpanMaxNS(); got != 200 {
		t.Fatalf("span = %d, want 200 (prev window still counts)", got)
	}

	// Another rotation: the 200ns span ages out entirely.
	land3 := land2 + win
	m.RecordBatch(land3-30, land3, land3-40, 1) // span 30
	if got := m.SpanMaxNS(); got != 30 {
		t.Fatalf("span = %d, want 30 after two rotations", got)
	}
}

// TestConformNil checks the nil-monitor contract: every method is a
// no-op returning zeros, so call sites need only the dispatch check.
func TestConformNil(t *testing.T) {
	var m *Conform
	m.RecordBatch(1, 2, 0, 1)
	if m.SpanMaxNS() != 0 || m.GapMaxNS() != 0 || m.DelayMaxNS() != 0 ||
		m.MaxLandings() != 0 || m.Batches() != 0 || m.Violations() != 0 ||
		m.Headroom() != 0 {
		t.Fatal("nil monitor returned nonzero gauges")
	}
	if (m.Snapshot() != ConformSnapshot{}) {
		t.Fatal("nil monitor snapshot not zero")
	}
}

// TestConformConcurrentScrape runs one writer (the launch body's
// serialization is modeled by a single goroutine) against concurrent
// scrapers; meaningful under -race, and also asserts the gauges stay
// within the writer's value range.
func TestConformConcurrentScrape(t *testing.T) {
	m := NewConform(time.Millisecond)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if h := m.Headroom(); h < 0 {
					t.Error("negative headroom")
					return
				}
				if l := m.MaxLandings(); l < 0 || l > conformLands+1 {
					t.Errorf("landings out of range: %d", l)
					return
				}
				_ = m.Snapshot()
			}
		}()
	}
	base := Now()
	for i := int64(0); i < 5000; i++ {
		launch := base + i*1000
		m.RecordBatch(launch, launch+500, launch-200, 2)
	}
	close(done)
	wg.Wait()
	if got := m.Batches(); got != 5000 {
		t.Fatalf("batches = %d, want 5000", got)
	}
}

// TestConformRecordAllocs pins the zero-allocation contract of the
// record path itself (the scheduler-side pin with a full runtime lives
// in internal/sched's obs tests).
func TestConformRecordAllocs(t *testing.T) {
	m := NewConform(time.Hour)
	base := Now()
	i := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		i++
		launch := base + i*100
		m.RecordBatch(launch, launch+50, launch-10, 1)
	}); n != 0 {
		t.Fatalf("RecordBatch allocates %v times per call, want 0", n)
	}
}
