// Quickstart: the paper's Figure 1 program — n fully parallel increments
// to a shared counter — run through BATCHER with the batched prefix-sums
// counter of Figure 2.
//
// Every increment returns the counter's value including itself, and the
// scheduler's implicit batching makes the returned values a permutation
// of 1..n (linearizability), which this program verifies.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"batcher"
	"batcher/internal/ds/counter"
)

func main() {
	const n = 100_000
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 1})
	ctr := counter.New(0)

	results := make([]int64, n)
	rt.Run(func(c *batcher.Ctx) {
		c.For(0, n, 1, func(cc *batcher.Ctx, i int) {
			// A data-structure node: blocks until some batch performs it,
			// while the worker continues executing batch work.
			results[i] = ctr.Increment(cc, 1)
		})
	})

	if ctr.Value() != n {
		log.Fatalf("counter = %d, want %d", ctr.Value(), n)
	}
	seen := make([]bool, n+1)
	for i, r := range results {
		if r < 1 || r > n || seen[r] {
			log.Fatalf("increment %d returned non-unique value %d", i, r)
		}
		seen[r] = true
	}

	m := rt.Metrics()
	fmt.Printf("performed %d implicitly batched increments\n", n)
	fmt.Printf("scheduler: %s\n", m.String())
	fmt.Printf("all return values form a permutation of 1..%d: linearizable ✓\n", n)
}
