// Racedetect: the paper's motivating application (Section 1) — an
// on-the-fly data-race detector whose series-parallel-maintenance
// structure is updated at every fork *before program flow continues*,
// making explicit batching impossible and implicit batching the natural
// fit.
//
// The detector implements English-Hebrew SP-order (Bender, Fineman,
// Gilbert, Leiserson, SPAA 2004) over two implicitly batched
// order-maintenance lists: every fork inserts the two child strands and
// the continuation strand into both lists — children in left-to-right
// order in the English list and right-to-left order in the Hebrew list —
// and two strands are ordered in series iff they agree in both lists.
// Memory accesses query the lists (blocking, implicitly batched calls)
// against per-location shadow state and report a race when a write is
// logically parallel with a previous access.
//
// The program runs an instrumented fork tree with one deliberately
// planted write-write race and several deliberately safe patterns, and
// verifies the detector flags exactly the planted race.
//
// Run:
//
//	go run ./examples/racedetect
package main

import (
	"fmt"
	"log"
	"sync"

	"batcher"
	"batcher/internal/ds/omlist"
)

// Strand identifies a maximal sequential piece of the computation by its
// elements in the two SP-order lists.
type Strand struct {
	eng, heb omlist.Elem
	name     string
}

// Detector is the on-the-fly race detector.
type Detector struct {
	eng, heb *omlist.Batched

	mu     sync.Mutex
	shadow map[int]*shadowCell
	races  []string
}

type shadowCell struct {
	writer    Strand
	hasWriter bool
	reader    Strand
	hasReader bool
}

// NewDetector returns a detector whose root strand is the origin of both
// lists.
func NewDetector() (*Detector, Strand) {
	return &Detector{
		eng:    omlist.NewBatched(),
		heb:    omlist.NewBatched(),
		shadow: map[int]*shadowCell{},
	}, Strand{eng: 0, heb: 0, name: "root"}
}

// Fork registers a binary fork of strand s, returning the two child
// strands and the continuation strand that follows the join. The
// inserts are blocking implicitly batched calls — the on-the-fly update
// the paper's introduction describes.
func (d *Detector) Fork(c *batcher.Ctx, s Strand, name string) (left, right, after Strand) {
	// English order: s < left < right < after.
	le := d.eng.InsertAfter(c, s.eng)
	re := d.eng.InsertAfter(c, le)
	ae := d.eng.InsertAfter(c, re)
	// Hebrew order: s < right < left < after.
	rh := d.heb.InsertAfter(c, s.heb)
	lh := d.heb.InsertAfter(c, rh)
	ah := d.heb.InsertAfter(c, lh)
	left = Strand{eng: le, heb: lh, name: name + "/L"}
	right = Strand{eng: re, heb: rh, name: name + "/R"}
	after = Strand{eng: ae, heb: ah, name: name + "/after"}
	return left, right, after
}

// precedes reports whether u is in series before v: before in both
// orders.
func (d *Detector) precedes(c *batcher.Ctx, u, v Strand) bool {
	return d.eng.Before(c, u.eng, v.eng) && d.heb.Before(c, u.heb, v.heb)
}

// Write instruments a write to loc by strand s. The shadow update is
// atomic with the snapshot of the previous accessors (so concurrent
// accessors always observe one another in some order); the SP-order
// queries — blocking, implicitly batched calls — run against the
// snapshot outside the lock.
func (d *Detector) Write(c *batcher.Ctx, s Strand, loc int) {
	d.mu.Lock()
	cell := d.cellLocked(loc)
	prevW, hasW := cell.writer, cell.hasWriter
	prevR, hasR := cell.reader, cell.hasReader
	cell.writer, cell.hasWriter = s, true
	d.mu.Unlock()

	if hasW && !d.precedes(c, prevW, s) {
		d.report(loc, prevW, s, "write-write")
	}
	if hasR && !d.precedes(c, prevR, s) {
		d.report(loc, prevR, s, "read-write")
	}
}

// Read instruments a read of loc by strand s. The detector keeps one
// reader per location (a simplification of the classic two-reader
// scheme; it can miss read-write races between dropped readers and later
// writers, but never reports a false positive).
func (d *Detector) Read(c *batcher.Ctx, s Strand, loc int) {
	d.mu.Lock()
	cell := d.cellLocked(loc)
	prevW, hasW := cell.writer, cell.hasWriter
	cell.reader, cell.hasReader = s, true
	d.mu.Unlock()

	if hasW && !d.precedes(c, prevW, s) {
		d.report(loc, prevW, s, "write-read")
	}
}

func (d *Detector) cellLocked(loc int) *shadowCell {
	cell := d.shadow[loc]
	if cell == nil {
		cell = &shadowCell{}
		d.shadow[loc] = cell
	}
	return cell
}

func (d *Detector) report(loc int, a, b Strand, kind string) {
	d.mu.Lock()
	d.races = append(d.races,
		fmt.Sprintf("%s race on loc %d between %s and %s", kind, loc, a.name, b.name))
	d.mu.Unlock()
}

func main() {
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 13})
	det, root := NewDetector()

	rt.Run(func(c *batcher.Ctx) {
		// Safe: the root writes before any fork.
		det.Write(c, root, 1)
		det.Write(c, root, 7)

		l, r, after := det.Fork(c, root, "root")
		c.Fork(
			func(cc *batcher.Ctx) {
				// Safe: reading what a serial ancestor wrote.
				det.Read(cc, l, 1)
				// Left subtree forks again.
				ll, lr, lafter := det.Fork(cc, l, l.name)
				cc.Fork(
					func(c3 *batcher.Ctx) {
						det.Write(c3, ll, 2) // safe: private location
						det.Write(c3, ll, 7) // RACE: parallel with right's write
					},
					func(c3 *batcher.Ctx) {
						det.Write(c3, lr, 3) // safe: private location
					},
				)
				// Safe: continuation reads what its children wrote.
				det.Read(cc, lafter, 2)
				det.Read(cc, lafter, 3)
			},
			func(cc *batcher.Ctx) {
				det.Read(cc, r, 1)  // safe: serial ancestor wrote
				det.Write(cc, r, 7) // RACE with ll's write (order of detection varies)
				det.Write(cc, r, 4) // safe: private location
			},
		)
		// Safe: after the join, everything above is in series.
		det.Read(c, after, 7)
		det.Read(c, after, 2)
		det.Write(c, after, 1)
	})

	// Structural sanity checks on the SP order itself.
	rt.Run(func(c *batcher.Ctx) {
		l, r, after := det.Fork(c, root, "check")
		mustSeries := func(u, v Strand) {
			if !det.precedes(c, u, v) {
				log.Fatalf("%s should precede %s", u.name, v.name)
			}
		}
		mustParallel := func(u, v Strand) {
			if det.precedes(c, u, v) || det.precedes(c, v, u) {
				log.Fatalf("%s and %s should be parallel", u.name, v.name)
			}
		}
		mustSeries(root, l)
		mustSeries(root, r)
		mustSeries(l, after)
		mustSeries(r, after)
		mustParallel(l, r)
	})

	if len(det.races) != 1 {
		log.Fatalf("expected exactly the planted race, got %d:\n%v", len(det.races), det.races)
	}
	fmt.Println("instrumented fork tree executed under BATCHER")
	fmt.Printf("detected: %s\n", det.races[0])
	fmt.Println("all deliberately synchronized accesses reported race-free ✓")
	fmt.Printf("SP-order lists: english %d elements, hebrew %d elements\n",
		det.eng.List().Len(), det.heb.List().Len())
}
