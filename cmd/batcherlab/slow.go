package main

// batcherlab slow — fetch a running batcherd's tail flight recorder
// (the /slow endpoint on its -metrics listener) and print the K slowest
// recent operations as a table: one row per op, its end-to-end latency
// decomposed into the lifecycle phases, plus the batch that carried it.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"batcher/internal/obs"
)

func slowCmd(args []string) {
	fs := flag.NewFlagSet("slow", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:9100", "batcherd metrics listener base URL")
	fs.Parse(args)

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := http.Get(strings.TrimRight(url, "/") + "/slow")
	if err != nil {
		fmt.Fprintln(os.Stderr, "slow:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "slow: server returned %s\n", resp.Status)
		os.Exit(1)
	}
	var ops []obs.SlowOp
	if err := json.NewDecoder(resp.Body).Decode(&ops); err != nil {
		fmt.Fprintln(os.Stderr, "slow: decode:", err)
		os.Exit(1)
	}
	if len(ops) == 0 {
		fmt.Println("flight recorder empty (no completed ops in the current windows)")
		return
	}

	fmt.Printf("%d slowest ops (current + previous window), slowest first\n", len(ops))
	fmt.Printf("%-9s %5s %10s  %10s %10s %10s %10s %10s  %10s %6s %5s %4s %6s\n",
		"ds", "kind", "total",
		obs.PhaseNames[0], obs.PhaseNames[1], obs.PhaseNames[2], obs.PhaseNames[3], obs.PhaseNames[4],
		"bdelay", "bsize", "bgrp", "err", "age")
	for _, op := range ops {
		errMark := ""
		if op.Err {
			errMark = "E"
		}
		fmt.Printf("%-9s %5d %10s  %10s %10s %10s %10s %10s  %10s %6d %5d %4s %6s\n",
			op.DS, op.Kind, fmtNS(op.TotalNS),
			fmtNS(op.Durations[0]), fmtNS(op.Durations[1]), fmtNS(op.Durations[2]),
			fmtNS(op.Durations[3]), fmtNS(op.Durations[4]),
			fmtNS(op.BatchDelay), op.BatchSize, op.BatchGroup, errMark,
			fmt.Sprintf("%.1fs", float64(op.AgeNS)/1e9))
	}
}
