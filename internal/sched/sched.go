// Package sched implements a user-level fork-join work-stealing runtime
// extended with the BATCHER scheduler of Agrawal et al. (SPAA 2014),
// "Provably Good Scheduling for Parallel Programs that Use Data Structures
// through Implicit Batching".
//
// The runtime owns P workers (goroutines). Each worker maintains two
// Chase–Lev deques — a core deque for tasks of the enclosing program and a
// batch deque for tasks of the currently executing batched data-structure
// operation — plus a work-status flag and a dedicated slot in the global
// size-P pending array, exactly as in Section 4 of the paper:
//
//   - A free worker executes nodes from whichever of its deques is
//     nonempty; when both are empty it steals from a random victim under
//     the alternating-steal policy (even attempts target core deques, odd
//     attempts target batch deques).
//   - When a worker executes a data-structure node (a call to Batchify),
//     it publishes an operation record in pending[p], sets its status to
//     pending, and becomes trapped: it re-enters the scheduler loop on its
//     own stack and executes only batch work until its record's status
//     becomes done. If no batch is executing, a trapped worker launches
//     one by CASing the global batch flag and injecting the LaunchBatch
//     task at the bottom of its batch deque.
//   - LaunchBatch acknowledges pending records (pending→executing),
//     compacts them into the working set, calls the data structure's
//     batched operation (BOP), marks participants done, and resets the
//     flag. At most one batch is active at a time (Invariant 1) and a
//     batch contains at most P operations (Invariant 2), one per worker.
//
// Suspension at a data-structure node is implemented by nested scheduling
// on the worker's own stack (the same mechanism Cilk uses for helper
// locks): the blocked core task's frame simply stays on the stack while
// the worker processes batch work, and control returns to it when the
// status flips to done. This preserves the paper's semantics — the worker
// that encounters a data-structure node is the worker that resumes it.
//
// The steady-state hot paths (Fork, For, Batchify, LaunchBatch) are
// allocation-free: task frames are recycled through per-worker free
// lists, parallel loops are expressed as range descriptors rather than
// closures, each worker owns a reusable operation record (Ctx.Op), and
// LaunchBatch works out of per-runtime scratch buffers. See DESIGN.md
// §7 for the safety argument.
package sched

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"batcher/internal/deque"
	"batcher/internal/obs"
	"batcher/internal/rng"
)

// Kind classifies tasks per Invariant 3: core-dag nodes go on core deques,
// batch-dag nodes on batch deques.
type Kind uint8

const (
	// KindCore marks tasks belonging to the enclosing program's dag.
	KindCore Kind = iota
	// KindBatch marks tasks belonging to a batch dag (including the
	// scheduler's own LaunchBatch setup/cleanup work).
	KindBatch
)

// Status is a worker's work-status flag (Section 4).
type Status int32

const (
	// StatusFree means the worker has no suspended data-structure node.
	StatusFree Status = iota
	// StatusPending means the worker's operation record is in the pending
	// array, awaiting incorporation into a batch.
	StatusPending
	// StatusExecuting means the record is in the working set of the
	// currently executing batch.
	StatusExecuting
	// StatusDone means the batch containing the record has completed but
	// the worker has not yet resumed the suspended node.
	StatusDone
)

func (s Status) String() string {
	switch s {
	case StatusFree:
		return "free"
	case StatusPending:
		return "pending"
	case StatusExecuting:
		return "executing"
	case StatusDone:
		return "done"
	}
	return "invalid"
}

// Task is a unit of schedulable work: either a closure (fn != nil) or a
// parallel-loop range descriptor (fn == nil: run body(i) for i in
// [lo, hi), splitting down to grain). Loop tasks exist so that Ctx.For
// needs no per-split closure allocations. Tasks are recycled through
// per-worker free lists; ownJoin backs join for every pooled task, so a
// fork costs no allocation at all in steady state.
type Task struct {
	fn   func(*Ctx)
	join *join
	kind Kind

	// Loop-task fields, meaningful when fn == nil.
	body          func(*Ctx, int)
	lo, hi, grain int

	// group tags tasks belonging to a batch group's subtree under panic
	// containment: 1+groupIndex, or 0 for untagged (core tasks, pump
	// loops, LaunchBatch's own work — and everything when containment is
	// off, since tags propagate from runGroup). Pooled frames rely on the
	// zero value meaning "untagged"; every creation site sets it. See
	// contain.go.
	group int32

	// ownJoin is the completion counter for pooled tasks (the root task
	// of a Run uses a separate join carrying a wake channel).
	ownJoin join

	// recycleAfterRun marks detached tasks nobody joins on (the
	// LaunchBatch injection): the worker that runs one returns it to its
	// own free list. Forked tasks are instead reclaimed by the forker
	// once the join clears.
	recycleAfterRun bool

	// next links the task into a per-worker free list, and doubles as
	// the pending-join chain during Ctx.For (a task is never in both).
	next *Task
}

// join is a fork-join completion counter. done may be non-nil for the
// root task, where completion must wake the submitting goroutine.
type join struct {
	pending atomic.Int32
	done    chan struct{}
}

func (j *join) finish() {
	if j == nil {
		return
	}
	if j.pending.Add(-1) == 0 && j.done != nil {
		close(j.done)
	}
}

// Config configures a Runtime.
type Config struct {
	// Workers is P, the number of scheduler workers. Defaults to
	// GOMAXPROCS(0) if zero.
	Workers int
	// Seed seeds the per-worker victim-selection RNGs.
	Seed uint64
	// StealPolicy selects the steal policy for *free* workers; trapped
	// workers always steal from batch deques, per the paper. The default
	// is AlternatingSteal, the policy the analysis requires.
	StealPolicy StealPolicy
	// Policy selects the batch-formation policy — when a trapped worker
	// stops lingering and launches a batch (see BatchPolicy). Nil means
	// AlternatingStealPolicy, the paper's behavior.
	Policy BatchPolicy
}

// StealPolicy selects which deque a free worker targets on its k-th steal
// attempt. Non-default policies exist only for the ablation experiments.
type StealPolicy uint8

const (
	// AlternatingSteal is the paper's policy: even attempts steal from the
	// victim's core deque, odd attempts from its batch deque.
	AlternatingSteal StealPolicy = iota
	// CoreOnlySteal always targets core deques (ablation; starves batches).
	CoreOnlySteal
	// BatchOnlySteal always targets batch deques (ablation; starves core).
	BatchOnlySteal
	// RandomDequeSteal picks core or batch uniformly at random.
	RandomDequeSteal
)

// cacheLinePad is the padding unit separating hot shared fields: 128
// bytes — two 64-byte lines — so that the adjacent-line prefetcher
// cannot couple neighboring fields either.
const cacheLinePad = 128

// paddedPending is one worker's slot in the global pending array, padded
// so that publishing an operation record never invalidates a neighbor
// worker's slot.
type paddedPending struct {
	rec atomic.Pointer[OpRecord]
	// stamp is the obs.Now publish time of the record in rec, stored
	// (sequentially consistent) immediately before rec so that any
	// reader observing the record also observes its stamp. It backs
	// PolicyView.OldestPendingNS without touching the record itself:
	// records are recycled by their owning workers, so reading
	// OpRecord fields from another worker's policy scan would race.
	stamp atomic.Int64
	_     [cacheLinePad - 16]byte
}

// Runtime is a P-worker BATCHER scheduler instance. Create with New, then
// call Run with a root function; Run may be called repeatedly (serially).
type Runtime struct {
	cfg     Config
	workers []*worker

	_ [cacheLinePad]byte

	// batchFlag is the global batch-status flag: 1 while a batch is
	// executing (between a successful launch CAS and LaunchBatch's final
	// reset), 0 otherwise. Every trapped worker CASes it, so it gets its
	// own padded region.
	batchFlag atomic.Int32

	_ [cacheLinePad - 4]byte

	// pending is the size-P pending array; pending[i] is worker i's slot.
	pending []paddedPending

	// idle parks workers that cannot find work and wakes them when work
	// may have appeared.
	idle waker

	// scratch holds the per-runtime LaunchBatch buffers, reused across
	// batches (safe: Invariant 1 serializes batches, and the batch-flag
	// CAS/reset pair orders one batch's writes before the next's reads).
	scratch batchScratch

	// launchFn is the LaunchBatch body bound once at construction, so
	// injecting a batch launch does not allocate a method value.
	launchFn func(*Ctx)

	stop atomic.Bool
	wg   sync.WaitGroup

	// running guards against overlapping Run calls.
	running atomic.Bool

	// batchesActive counts currently executing batches; it exists only to
	// check Invariant 1 in tests and is maintained unconditionally
	// because it is two atomic adds per batch.
	batchesActive atomic.Int32

	// liveBatches/liveOps mirror the BatchesExecuted/BatchedOps worker
	// counters as atomics updated once per batch, so that serving-layer
	// stats endpoints can read batching effectiveness while a Run (or
	// Pump.Serve) is in progress — Runtime.Metrics is quiescent-only.
	liveBatches atomic.Int64
	liveOps     atomic.Int64

	// policy is the batch-formation policy (never nil; default
	// AlternatingStealPolicy). Like tracer/batchHist it is written only
	// while quiescent (SetPolicy) and read unsynchronized by workers.
	policy BatchPolicy

	// launchReasons counts successful batch-flag claims by the policy
	// reason that triggered them (see LaunchReason); one add per
	// launch, readable live via LaunchReasons.
	launchReasons [NumLaunchReasons]atomic.Int64

	// liveSteals is the successful-steal twin of liveBatches: the
	// per-worker SuccessfulSteals counters are owner-written plain ints,
	// unreadable while the runtime runs, so serving-layer metrics get
	// this atomic instead. Failed attempts (the hot idle case) are not
	// counted here.
	liveSteals atomic.Int64

	// tracer, batchHist, and conform are the optional observability
	// sinks (obs.go). All are written only while the runtime is
	// quiescent and read unsynchronized by workers; nil means disabled,
	// and every hook site is a single nil-check branch in that case.
	tracer    *obs.Tracer
	batchHist *obs.Histogram
	conform   *obs.Conform

	// stampPhases enables op-lifecycle phase stamping (obs.Phase*):
	// Batchify writes PhasePending and LaunchBatch writes
	// PhaseLaunch/PhaseLand (plus BatchSize/BatchGroup) into each
	// OpRecord. Like tracer/batchHist it is written only while
	// quiescent (SetPhaseStamps) and read unsynchronized by workers; off
	// costs one predicted branch per site and stamping itself allocates
	// nothing (a clock read plus array stores).
	stampPhases bool

	// contain enables batch-panic containment (ContainBatchPanics): a
	// panic escaping a group's BOP marks that group's records instead of
	// aborting the runtime. batchPanics counts contained panics; it is an
	// atomic so stats endpoints can read it live. See contain.go.
	contain     atomic.Bool
	batchPanics atomic.Int64

	// aborting is set when a task panicked; workers unwind instead of
	// waiting on joins that can no longer complete, and Run re-panics
	// with the first cause. The runtime is unusable afterwards.
	aborting atomic.Bool
	panicMu  sync.Mutex
	panicVal any
	panicked bool

	metrics Metrics
}

// abortSignal is the sentinel panic value used to unwind worker stacks
// once a real panic has been recorded.
type abortSignal struct{}

// recordPanic stores the first non-sentinel panic value and flips the
// runtime into the aborting state.
func (rt *Runtime) recordPanic(v any) {
	rt.panicMu.Lock()
	if !rt.panicked {
		rt.panicked = true
		rt.panicVal = v
	}
	rt.panicMu.Unlock()
	rt.aborting.Store(true)
	rt.idle.wake()
}

// checkAbort unwinds the calling worker's stack if the runtime is
// aborting. It must only be called from scheduler wait loops (never with
// external locks held).
func (rt *Runtime) checkAbort() {
	if rt.aborting.Load() {
		panic(abortSignal{})
	}
}

// New creates a runtime with the given configuration.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = goruntime.GOMAXPROCS(0)
	}
	rt := &Runtime{
		cfg:     cfg,
		pending: make([]paddedPending, cfg.Workers),
		policy:  cfg.Policy,
	}
	if rt.policy == nil {
		rt.policy = AlternatingStealPolicy{}
	}
	rt.idle.init()
	rt.launchFn = rt.launchBatchBody
	rt.workers = make([]*worker, cfg.Workers)
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	for i := range rt.workers {
		w := &worker{
			id:    i,
			rt:    rt,
			core:  deque.New[Task](),
			batch: deque.New[Task](),
			rng:   rng.New(seed + uint64(i)*0x2545f4914f6cdd1d),
		}
		w.ctxs[KindCore] = Ctx{w: w, kind: KindCore}
		w.ctxs[KindBatch] = Ctx{w: w, kind: KindBatch}
		rt.workers[i] = w
	}
	// scratch sizes itself from rt.workers, so init it last.
	rt.scratch.init(rt)
	return rt
}

// Workers returns P, the number of workers.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Run executes root to completion on the runtime's workers and returns.
// root runs as a core-dag task. Run must not be called concurrently with
// itself on the same Runtime.
func (rt *Runtime) Run(root func(*Ctx)) {
	if !rt.running.CompareAndSwap(false, true) {
		panic("sched: concurrent Run calls on the same Runtime")
	}
	defer rt.running.Store(false)

	rt.stop.Store(false)
	j := &join{done: make(chan struct{})}
	j.pending.Store(1)
	rt.workers[0].core.PushBottom(&Task{fn: root, join: j, kind: KindCore})

	rt.wg.Add(len(rt.workers))
	for _, w := range rt.workers {
		go w.loop()
	}
	<-j.done
	rt.stop.Store(true)
	rt.idle.wake()
	rt.wg.Wait()

	if rt.aborting.Load() {
		// A task panicked: every worker has unwound; surface the first
		// cause to the caller. The runtime must not be reused.
		panic(rt.panicVal)
	}

	// Sanity: a completed run must leave no residue.
	if rt.batchFlag.Load() != 0 {
		panic("sched: batch flag set after Run completed")
	}
	for i := range rt.pending {
		if rt.pending[i].rec.Load() != nil {
			panic("sched: pending record left after Run completed")
		}
	}
}

// maxFreeTasks caps a worker's task free list; beyond it, retired tasks
// are dropped for the garbage collector. The cap only exists to bound
// memory on pathologically deep programs — steady-state fork-join reuses
// a handful of frames per worker.
const maxFreeTasks = 256

// worker is one of the P scheduler workers. Hot cross-worker fields
// (status, metrics) are padded so that one worker's state transitions do
// not invalidate cache lines its neighbors are spinning on.
type worker struct {
	id    int
	rt    *Runtime
	core  *deque.Deque[Task]
	batch *deque.Deque[Task]
	rng   *rng.Rand

	// ctxs are the two reusable task contexts (core and batch). A Ctx is
	// immutable after construction, so every task of a given kind on
	// this worker shares the same one and task execution allocates
	// nothing.
	ctxs [2]Ctx

	// stealK counts steal attempts for the alternating policy.
	stealK uint64

	// idleFails counts consecutive failed attempts to find work, pacing
	// the spin-then-park idle policy.
	idleFails int

	// freeTasks heads the singly-linked task free list (owner-only, so
	// no synchronization), freeN its length.
	freeTasks *Task
	freeN     int

	// opRec is the worker's reusable operation record, handed out by
	// Ctx.Op. A worker has at most one outstanding Batchify at a time
	// (it traps until the operation completes), so one record suffices.
	opRec OpRecord

	// curGroup is the batch-group tag (1+groupIndex, 0 = none) of the
	// work this worker is currently executing; forks inherit it so a
	// contained panic can be attributed to its group wherever the task
	// was stolen to. Owner-only: set by runGroup and execTask, read at
	// fork-push time on the same goroutine. See contain.go.
	curGroup int32

	_ [cacheLinePad]byte

	// status is the work-status flag, read by LaunchBatch on any worker
	// and CASed during batch acknowledgement; it sits alone in its own
	// padded region.
	status atomic.Int32

	_ [cacheLinePad - 4]byte

	m WorkerMetrics

	_ [cacheLinePad]byte
}

// getTask takes a task frame from the worker's free list, or allocates
// one if the list is empty (cold starts and steal-heavy phases only).
func (w *worker) getTask() *Task {
	t := w.freeTasks
	if t == nil {
		return new(Task)
	}
	w.freeTasks = t.next
	w.freeN--
	t.next = nil
	return t
}

// putTask retires a completed task frame to the free list. Only the
// worker that owns the frame's lifecycle may call it: the forker after
// the join clears, or the runner of a recycleAfterRun task. References
// are dropped so pooled frames do not pin closures for the GC.
func (w *worker) putTask(t *Task) {
	if w.freeN >= maxFreeTasks {
		return
	}
	t.fn = nil
	t.body = nil
	t.join = nil
	t.recycleAfterRun = false
	t.next = w.freeTasks
	w.freeTasks = t
	w.freeN++
}

func (w *worker) dequeFor(k Kind) *deque.Deque[Task] {
	if k == KindBatch {
		return w.batch
	}
	return w.core
}

func (w *worker) isFree() bool { return Status(w.status.Load()) == StatusFree }

// loop is the main scheduling loop for a (free) worker, per Figure 3.
// Free workers execute any node; they prefer their own deques and steal
// only when both are empty.
func (w *worker) loop() {
	defer w.rt.wg.Done()
	for !w.rt.stop.Load() && !w.rt.aborting.Load() {
		if t := w.batch.PopBottom(); t != nil {
			w.runTask(t)
			continue
		}
		if t := w.core.PopBottom(); t != nil {
			w.runTask(t)
			continue
		}
		if !w.stealAndRun(false) {
			w.idleFree()
		}
	}
}

// testHookTaskRun, when non-nil, observes every task execution with the
// running worker's status at entry. Tests use it to verify scheduling
// invariants (e.g. trapped workers execute only batch work). It must be
// set before any Run and never during one.
var testHookTaskRun func(kind Kind, status Status)

// runTask executes t and reports completion to its join. Panics from the
// task body are recorded (first cause wins) and converted into the
// runtime's aborting state so that every worker unwinds instead of
// waiting on joins that will never complete; the join is finished either
// way so waiters unblock.
func (w *worker) runTask(t *Task) {
	// recycleAfterRun must be read before the join is finished: once it
	// is, the forker may reclaim and rewrite the frame concurrently.
	recycle := t.recycleAfterRun
	w.idleFails = 0
	w.execTask(t)
	// The join (if any) has now been finished; a worker parked at that
	// join must hear about it.
	w.rt.idle.wake()
	if recycle {
		w.putTask(t)
	}
}

// execTask is runTask's body; it exists so that the join finish and
// panic recovery (deferred) complete before runTask's wake/recycle.
//
// A task tagged with a batch group (see contain.go) makes this a
// containment boundary: the worker adopts the tag for the task's extent
// (so nested forks inherit it), and a panic is recorded against the
// group — with the deque repaired back to its entry depth — instead of
// aborting the runtime. The group's live count is released only after
// that repair, so runGroup's drain cannot observe zero while abandoned
// subtasks remain.
func (w *worker) execTask(t *Task) {
	w.m.TasksRun++
	if testHookTaskRun != nil {
		testHookTaskRun(t.kind, Status(w.status.Load()))
	}
	savedGroup := w.curGroup
	var entry int64
	if t.group != 0 {
		entry = w.batch.Bottom()
	}
	w.curGroup = t.group
	defer t.join.finish()
	defer func() {
		w.curGroup = savedGroup
		if r := recover(); r != nil {
			if _, isAbort := r.(abortSignal); isAbort {
				// Global abort in progress; nothing to record.
			} else if t.group != 0 && w.rt.contain.Load() {
				w.rt.containGroupPanic(w, int(t.group-1), r, entry)
			} else {
				w.rt.recordPanic(r)
			}
		}
		if t.group != 0 {
			w.rt.scratch.groupLive[t.group-1].Add(-1)
		}
	}()
	ctx := &w.ctxs[t.kind]
	if t.fn != nil {
		t.fn(ctx)
	} else {
		ctx.forRange(t.lo, t.hi, t.grain, t.body)
	}
}

// stealAndRun makes one steal attempt and runs the stolen task if any.
// It returns true on a successful steal. The deque targeted follows the
// paper's rules: trapped workers steal only from batch deques; free
// workers follow the configured policy (alternating by default).
// batchOnly additionally restricts the attempt to batch deques, used by
// workers waiting at joins inside batch tasks (see helpOnce).
func (w *worker) stealAndRun(batchOnly bool) bool {
	t := w.stealOnce(batchOnly)
	if t == nil {
		return false
	}
	w.runTask(t)
	return true
}

func (w *worker) stealOnce(batchOnly bool) *Task {
	rt := w.rt
	if len(rt.workers) == 1 {
		// No victims; count the attempt so metrics stay meaningful.
		w.m.FailedSteals++
		return nil
	}
	// Draw uniformly over the other P-1 workers. (Remapping a self-pick
	// to a fixed neighbor would double that neighbor's odds.)
	v := w.rng.Intn(len(rt.workers) - 1)
	if v >= w.id {
		v++
	}
	victim := rt.workers[v]

	var d *deque.Deque[Task]
	trapped := !w.isFree()
	if trapped || batchOnly {
		d = victim.batch
		if trapped {
			w.m.TrappedStealAttempts++
		} else {
			w.m.FreeStealAttempts++
		}
	} else {
		w.stealK++
		switch rt.cfg.StealPolicy {
		case CoreOnlySteal:
			d = victim.core
		case BatchOnlySteal:
			d = victim.batch
		case RandomDequeSteal:
			if w.rng.Bool() {
				d = victim.core
			} else {
				d = victim.batch
			}
		default: // AlternatingSteal
			if w.stealK%2 == 0 {
				d = victim.core
			} else {
				d = victim.batch
			}
		}
		w.m.FreeStealAttempts++
	}

	t := d.Steal()
	if t == nil {
		w.m.FailedSteals++
		return nil
	}
	w.m.SuccessfulSteals++
	rt.liveSteals.Add(1)
	if tr := rt.tracer; tr != nil {
		var deq int64
		if d == victim.batch {
			deq = 1
		}
		tr.Record(w.id, obs.EvSteal, int64(victim.id), deq)
	}
	return t
}

// Idle pacing: a worker that failed to find work spins briefly (yielding
// the CPU — the host may run fewer CPUs than workers), then parks on the
// runtime's waker until an event that could produce work for it. Each
// idle* variant re-checks the conditions that must wake its caller after
// registering as parked, which the waker protocol requires.
const (
	// idleSpinYield failed attempts are plain scheduler yields.
	idleSpinYield = 8
	// idleSpinSleep failed attempts (beyond the yields) sleep a
	// microsecond, letting randomized victim selection decorrelate.
	idleSpinSleep = 32
	// After a park wakes, resume spinning at this level so a worker that
	// finds nothing re-parks quickly instead of burning a full ladder.
	idleResume = idleSpinYield
)

// spin performs one pre-park pacing step and reports whether the caller
// should now attempt to park.
func (w *worker) spin() bool {
	w.idleFails++
	switch {
	case w.idleFails < idleSpinYield:
		goruntime.Gosched()
		return false
	case w.idleFails < idleSpinSleep:
		time.Sleep(time.Microsecond)
		return false
	}
	return true
}

// victimsHaveWork scans every other worker's deques (batch deques only
// when batchOnly). It runs only on the park path, where an O(P) sweep is
// cheap insurance against sleeping through work that random victim
// selection happened to miss.
func (w *worker) victimsHaveWork(batchOnly bool) bool {
	for _, v := range w.rt.workers {
		if v == w {
			continue
		}
		if !v.batch.Empty() {
			return true
		}
		if !batchOnly && !v.core.Empty() {
			return true
		}
	}
	return false
}

// idleFree paces a free worker in the main loop that found nothing to
// run or steal.
func (w *worker) idleFree() {
	if !w.spin() {
		return
	}
	rt := w.rt
	epoch := rt.idle.beginPark()
	if rt.stop.Load() || rt.aborting.Load() ||
		!w.batch.Empty() || !w.core.Empty() || w.victimsHaveWork(false) {
		rt.idle.cancelPark()
		return
	}
	w.parkAndSleep(epoch)
}

// idleAtJoin paces a worker waiting at j inside a task of the given kind
// (see helpOnce for what such a worker may legally run).
func (w *worker) idleAtJoin(j *join, kind Kind) {
	if !w.spin() {
		return
	}
	rt := w.rt
	coreOK := kind == KindCore && w.isFree()
	epoch := rt.idle.beginPark()
	if j.pending.Load() == 0 || rt.aborting.Load() ||
		!w.batch.Empty() || (coreOK && !w.core.Empty()) ||
		w.victimsHaveWork(!coreOK) {
		rt.idle.cancelPark()
		return
	}
	w.parkAndSleep(epoch)
}

// idleTrapped paces a trapped worker in the Batchify loop: it must wake
// for batch work, for its own status turning done, and for the batch
// flag resetting (so it can launch).
func (w *worker) idleTrapped() {
	if !w.spin() {
		return
	}
	rt := w.rt
	epoch := rt.idle.beginPark()
	if Status(w.status.Load()) == StatusDone || rt.aborting.Load() ||
		rt.batchFlag.Load() == 0 || !w.batch.Empty() || w.victimsHaveWork(true) {
		rt.idle.cancelPark()
		return
	}
	w.parkAndSleep(epoch)
}
