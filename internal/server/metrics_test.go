package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"batcher/internal/faultinject"
	"batcher/internal/loadgen"
	"batcher/internal/obs"
	"batcher/internal/sched"
	"batcher/internal/server"
)

// promSamples scrape-parses a Prometheus text exposition and returns
// the samples keyed by name+labels, failing the test on any line that
// is not a well-formed comment or sample.
func promSamples(t *testing.T, body string) map[string]float64 {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (-?[0-9.eE+-]+|NaN|\+Inf)$`)
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			if m[2] == "+Inf" {
				v = math.Inf(1)
			} else {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
		}
		out[m[1]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// hammer runs conns pipelined counter-increment connections of per ops
// each against addr.
func hammer(t *testing.T, addr string, conns, per int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := loadgen.Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for k := 0; k < per; k++ {
				if _, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1}); err != nil {
					t.Errorf("do: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMetricsScrape drives traffic, scrapes /metrics, and checks both
// that the exposition parses cleanly and that the headline figures
// agree with the server's own live counters — in particular, the
// batch-size histogram mean must match LiveBatchStats (same increment
// site, so exactly, well inside the 1% acceptance bound).
func TestMetricsScrape(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, Seed: 31, TraceRing: 1 << 12})
	const conns, per = 8, 100
	hammer(t, s.Addr().String(), conns, per)

	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The scrape races live counters, so compare against a snapshot
	// taken after traffic quiesced (hammer has joined; nothing is in
	// flight).
	samples := promSamples(t, string(body))
	st := s.Snapshot()

	// Every registered family must appear in the scrape — a registered
	// gauge that never renders is a silent observability hole. Histogram
	// families render as _bucket/_sum/_count samples.
	for _, fam := range s.Metrics().Names() {
		found := false
		for key := range samples {
			if key == fam || strings.HasPrefix(key, fam+"{") ||
				strings.HasPrefix(key, fam+"_bucket") ||
				strings.HasPrefix(key, fam+"_sum") ||
				strings.HasPrefix(key, fam+"_count") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registered family %q missing from the scrape", fam)
		}
	}
	// The conformance families are always-on (no SLO configured here).
	for _, fam := range []string{
		"batcherd_conformance_headroom",
		"batcherd_conformance_span_max_ns",
		"batcherd_conformance_gap_max_ns",
		"batcherd_conformance_delay_max_ns",
		"batcherd_conformance_max_landings",
		"batcherd_conformance_violations_total",
		"batcherd_op_total_ns",
	} {
		if _, ok := samples[fam+`{shard="0"}`]; !ok {
			if _, ok := samples[fam+`_count{shard="0"}`]; !ok {
				t.Errorf("conformance family %q has no shard-0 sample", fam)
			}
		}
	}
	if v := samples[`batcherd_conformance_violations_total{shard="0"}`]; v != 0 {
		t.Errorf("conformance violations = %v on a healthy run", v)
	}
	if h := samples[`batcherd_conformance_headroom{shard="0"}`]; h <= 0 || h > 1.0 {
		t.Errorf("conformance headroom = %v, want in (0, 1.0]", h)
	}

	if got := samples["batcherd_ops_accepted_total"]; got != float64(st.Accepted) || got < conns*per {
		t.Fatalf("accepted = %v, snapshot %d, sent %d", got, st.Accepted, conns*per)
	}
	if got := samples["batcherd_ops_completed_total"]; got != float64(st.Completed) {
		t.Fatalf("completed = %v, snapshot %d", got, st.Completed)
	}
	if samples["batcherd_workers"] != 4 {
		t.Fatalf("workers gauge = %v", samples["batcherd_workers"])
	}

	count := samples[`batcherd_batch_size_count{shard="0"}`]
	sum := samples[`batcherd_batch_size_sum{shard="0"}`]
	batches, ops := s.Runtime().LiveBatchStats()
	if count != float64(batches) || sum != float64(ops) {
		t.Fatalf("batch histogram %v/%v disagrees with LiveBatchStats %d/%d",
			count, sum, batches, ops)
	}
	if count == 0 {
		t.Fatal("no batches recorded")
	}
	histMean := sum / count
	liveMean := float64(ops) / float64(batches)
	if math.Abs(histMean-liveMean) > 0.01*liveMean {
		t.Fatalf("histogram mean %v vs LiveBatchStats mean %v: off by more than 1%%",
			histMean, liveMean)
	}

	// Latency histograms: every accepted counter op was observed.
	if got := samples[`batcherd_service_latency_ns_count{ds="counter"}`]; got != float64(st.Accepted) {
		t.Fatalf("latency count = %v, want %d", got, st.Accepted)
	}
	if samples[`batcherd_service_latency_ns_sum{ds="counter"}`] <= 0 {
		t.Fatal("latency sum not positive")
	}
}

// TestChaosTraceExport runs a chaos workload (fault-injected panicking
// skip list beside healthy counter traffic) on a traced server and
// checks the trace exports as Chrome-loadable JSON containing batch
// spans and the contained-panic instants.
func TestChaosTraceExport(t *testing.T) {
	const poison = int64(-0xBAD)
	s, err := server.Start(server.Config{
		Workers:   4,
		Seed:      78,
		TraceRing: 1 << 12,
		WrapDS: func(_ int, ds uint8, b sched.Batched) sched.Batched {
			if ds == server.DSSkiplist {
				return &faultinject.Panicker{Inner: b, Poison: poison}
			}
			return b
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	addr := s.Addr().String()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl, err := loadgen.Dial(addr)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer cl.Close()
		for i := 0; i < 20; i++ {
			r, err := cl.Do(server.Request{DS: server.DSSkiplist, Op: server.OpInsert, Key: poison, Val: 1})
			if err != nil {
				t.Errorf("do: %v", err)
				return
			}
			if !r.Err() {
				t.Errorf("poisoned op %d not FlagErr", i)
			}
		}
	}()
	hammer(t, addr, 4, 100)
	wg.Wait()

	tr := s.Tracer()
	if tr == nil {
		t.Fatal("TraceRing did not attach a tracer")
	}
	evs := tr.Snapshot()
	kinds := obs.CountKinds(evs)
	if kinds[obs.EvBatchLand] == 0 || kinds[obs.EvPumpAdmit] == 0 {
		t.Fatalf("trace missing core events: %v", kinds)
	}
	if int64(kinds[obs.EvPanicContained]) != s.Runtime().BatchPanics() {
		t.Fatalf("%d panic events for %d contained panics",
			kinds[obs.EvPanicContained], s.Runtime().BatchPanics())
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var spans, panics int
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "batch" {
			spans++
		}
		if e.Name == "panic-contained" {
			panics++
		}
	}
	if spans == 0 || panics == 0 {
		t.Fatalf("export has %d batch spans, %d panic instants; want both > 0", spans, panics)
	}
}
