package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pumpSumDS is a trivial batched accumulator for pump tests: each op
// adds Val and receives the running total, so results across a run form
// a permutation of the prefix sums (a linearizability witness).
type pumpSumDS struct {
	total    int64
	active   atomic.Int32
	viol     atomic.Int32
	maxBatch int
}

func (d *pumpSumDS) RunBatch(_ *Ctx, ops []*OpRecord) {
	if d.active.Add(1) != 1 {
		d.viol.Add(1)
	}
	if len(ops) > d.maxBatch {
		d.maxBatch = len(ops)
	}
	for _, op := range ops {
		d.total += op.Val
		op.Res = d.total
		op.Ok = true
	}
	d.active.Add(-1)
}

func TestPumpBasic(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 7})
	ds := &pumpSumDS{}
	const goroutines, per = 16, 100
	total := goroutines * per

	// Completion is delivered through a per-operation channel carried in
	// Aux: OnDone runs on a scheduler worker after the batch filled the
	// record, and the channel send orders those writes before the
	// submitter's reads.
	p := NewPump(rt, PumpConfig{OnDone: func(op *OpRecord) {
		op.Aux.(chan struct{}) <- struct{}{}
	}})

	serveDone := make(chan struct{})
	go func() { defer close(serveDone); p.Serve() }()

	results := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]int64, 0, per)
			ready := make(chan struct{}, 1)
			for i := 0; i < per; i++ {
				op := &OpRecord{DS: ds, Val: 1, Aux: ready}
				for {
					err := p.Submit(op)
					if err == nil {
						break
					}
					if err != ErrPumpSaturated {
						t.Errorf("Submit: %v", err)
						return
					}
					time.Sleep(10 * time.Microsecond)
				}
				<-ready
				if !op.Ok {
					t.Error("completed op without Ok")
					return
				}
				results[g] = append(results[g], op.Res)
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	<-serveDone

	if ds.viol.Load() != 0 {
		t.Fatalf("Invariant 1 violated %d times", ds.viol.Load())
	}
	if ds.total != int64(total) {
		t.Fatalf("total = %d, want %d", ds.total, total)
	}
	seen := make(map[int64]bool, total)
	for _, rs := range results {
		for _, r := range rs {
			if r < 1 || r > int64(total) || seen[r] {
				t.Fatalf("result %d out of range or duplicated", r)
			}
			seen[r] = true
		}
	}
	if p.Served() != int64(total) {
		t.Fatalf("Served = %d, want %d", p.Served(), total)
	}
	if b, o := rt.LiveBatchStats(); b == 0 || o != int64(total) {
		t.Fatalf("LiveBatchStats = (%d, %d), want ops %d", b, o, total)
	}
}

func TestPumpSaturationAndClosed(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 3})
	p := NewPump(rt, PumpConfig{QueueCap: 1})
	ds := &pumpSumDS{}

	// Not serving: the first Submit fills the queue, the second must be
	// rejected rather than blocking or growing without bound.
	if err := p.Submit(&OpRecord{DS: ds, Val: 1}); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if err := p.Submit(&OpRecord{DS: ds, Val: 1}); err != ErrPumpSaturated {
		t.Fatalf("second Submit: %v, want ErrPumpSaturated", err)
	}
	if d := p.Depth(); d != 1 {
		t.Fatalf("Depth = %d, want 1", d)
	}

	p.Close()
	if err := p.Submit(&OpRecord{DS: ds, Val: 1}); err != ErrPumpClosed {
		t.Fatalf("Submit after Close: %v, want ErrPumpClosed", err)
	}

	// Serve after Close still drains the accepted operation.
	p.Serve()
	if ds.total != 1 {
		t.Fatalf("total = %d, want 1 (accepted op must drain)", ds.total)
	}
}

// TestPumpSubmitAll pins the bulk-submission contract: admission is a
// prefix, the count is exact against queue capacity, the remainder is
// untouched, and admitted records drain like any Submit. A closed pump
// admits nothing.
func TestPumpSubmitAll(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 9})
	p := NewPump(rt, PumpConfig{QueueCap: 3})
	ds := &pumpSumDS{}

	ops := make([]*OpRecord, 5)
	for i := range ops {
		ops[i] = &OpRecord{DS: ds, Val: 1}
	}
	// Not serving: capacity 3 admits exactly the first three.
	n, err := p.SubmitAll(ops)
	if n != 3 || err != ErrPumpSaturated {
		t.Fatalf("SubmitAll = (%d, %v), want (3, ErrPumpSaturated)", n, err)
	}
	if d := p.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want 3", d)
	}
	// The rejected suffix was not enqueued: retrying it alone still
	// finds a full queue.
	if n, err := p.SubmitAll(ops[3:]); n != 0 || err != ErrPumpSaturated {
		t.Fatalf("retry SubmitAll = (%d, %v), want (0, ErrPumpSaturated)", n, err)
	}
	if n, err := p.SubmitAll(nil); n != 0 || err != nil {
		t.Fatalf("empty SubmitAll = (%d, %v), want (0, nil)", n, err)
	}

	p.Close()
	if n, err := p.SubmitAll(ops[3:]); n != 0 || err != ErrPumpClosed {
		t.Fatalf("SubmitAll after Close = (%d, %v), want (0, ErrPumpClosed)", n, err)
	}

	// Serve drains exactly the admitted prefix.
	p.Serve()
	if ds.total != 3 {
		t.Fatalf("total = %d, want 3", ds.total)
	}
	for i, op := range ops[:3] {
		if !op.Ok {
			t.Fatalf("admitted op %d not completed", i)
		}
	}
	for i, op := range ops[3:] {
		if op.Ok {
			t.Fatalf("rejected op %d was executed", i+3)
		}
	}
}

func TestPumpDoubleClose(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 5})
	p := NewPump(rt, PumpConfig{})
	done := make(chan struct{})
	go func() { defer close(done); p.Serve() }()

	// Concurrent and repeated Close calls must not panic and must all
	// return; Serve must terminate.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); p.Close() }()
	}
	wg.Wait()
	p.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestPumpDrainOnClose(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 11})
	ds := &pumpSumDS{}
	var delivered atomic.Int64
	p := NewPump(rt, PumpConfig{QueueCap: 128, OnDone: func(*OpRecord) {
		delivered.Add(1)
	}})
	const n = 64
	for i := 0; i < n; i++ {
		if err := p.Submit(&OpRecord{DS: ds, Val: 1}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	// Close before Serve: every accepted op must still execute and be
	// delivered before Serve returns.
	p.Close()
	p.Serve()
	if got := delivered.Load(); got != n {
		t.Fatalf("delivered %d ops, want %d", got, n)
	}
	if ds.total != n {
		t.Fatalf("total = %d, want %d", ds.total, n)
	}
}

// TestPumpBatchesUnderLoad checks the whole point of the serving layer:
// concurrent external submissions must coalesce into multi-operation
// batches through the pending array.
func TestPumpBatchesUnderLoad(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 13})
	ds := &pumpSumDS{}
	const n = 2000
	var completed sync.WaitGroup
	completed.Add(n)
	p := NewPump(rt, PumpConfig{QueueCap: n, OnDone: func(*OpRecord) {
		completed.Done()
	}})
	// Preload the queue so pumps never starve, then serve.
	for i := 0; i < n; i++ {
		if err := p.Submit(&OpRecord{DS: ds, Val: 1}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	go p.Serve()
	completed.Wait()
	p.Close()

	batches, ops := rt.LiveBatchStats()
	if ops != n {
		t.Fatalf("LiveBatchStats ops = %d, want %d", ops, n)
	}
	mean := float64(ops) / float64(batches)
	if mean <= 1.0 {
		t.Fatalf("mean batch size %.2f; want > 1 (no batching at the edge)", mean)
	}
	if ds.maxBatch > rt.Workers() {
		t.Fatalf("batch of %d ops exceeds P=%d (Invariant 2)", ds.maxBatch, rt.Workers())
	}
	t.Logf("batches=%d ops=%d mean=%.2f max=%d", batches, ops, mean, ds.maxBatch)
}

func TestServerDoubleClose(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 2, Seed: 1})
	ds := &serverSumDS{}
	s.Invoke(&OpRecord{DS: ds, Val: 1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Close() }()
	}
	wg.Wait()
	s.Close() // and once more, after it is fully down
	if ds.total != 1 {
		t.Fatalf("total = %d, want 1", ds.total)
	}
}
