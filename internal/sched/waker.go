package sched

import (
	"sync"
	"sync/atomic"
)

// waker implements the adaptive spin-then-park idle policy. A worker
// that has repeatedly failed to find work registers itself as parked and
// sleeps on a condition variable; any event that could create runnable
// work for some worker — a task push, a join completing, a work-status
// flag flipping to done, the global batch flag resetting, shutdown or
// abort — calls wake, which is a single atomic load when nobody is
// parked (the common case, so producers pay nothing on the hot path).
//
// The protocol is lost-wakeup-free: a would-be sleeper calls beginPark
// (incrementing parked), reads the epoch, and only then re-checks its
// wake conditions; a producer publishes work and only then loads parked.
// Go's sync/atomic operations are sequentially consistent, so in every
// interleaving either the producer observes parked > 0 (and bumps the
// epoch under the same mutex the sleeper waits on) or the sleeper's
// re-check observes the published work.
type waker struct {
	// seq is the wake epoch, bumped on every wake that found parked
	// workers. Sleepers re-check it under mu, so a bump between
	// beginPark and sleep turns the sleep into a no-op.
	seq atomic.Uint64
	// parked counts workers parked or committed to parking.
	parked atomic.Int32

	mu   sync.Mutex
	cond *sync.Cond
}

func (k *waker) init() { k.cond = sync.NewCond(&k.mu) }

// wake is called after publishing any event that might unblock a waiting
// worker. It costs one atomic load unless workers are actually parked.
func (k *waker) wake() {
	if k.parked.Load() != 0 {
		k.seq.Add(1)
		k.mu.Lock()
		k.cond.Broadcast()
		k.mu.Unlock()
	}
}

// beginPark registers the caller as parking and returns the wake epoch.
// The caller must re-check its wake conditions after beginPark and then
// either cancelPark (work appeared) or sleep (nothing to do).
func (k *waker) beginPark() uint64 {
	k.parked.Add(1)
	return k.seq.Load()
}

// cancelPark retracts a beginPark whose re-check found work.
func (k *waker) cancelPark() { k.parked.Add(-1) }

// sleep blocks until the wake epoch advances past the one observed by
// beginPark. Spurious returns are fine: every park site loops and
// re-checks its conditions.
func (k *waker) sleep(epoch uint64) {
	k.mu.Lock()
	for k.seq.Load() == epoch {
		k.cond.Wait()
	}
	k.mu.Unlock()
	k.parked.Add(-1)
}
