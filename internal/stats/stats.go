// Package stats provides the small statistical toolkit the benchmark
// harness uses: summary statistics, least-squares fits for validating the
// Theorem 1 running-time bound against measured makespans, and aligned
// text tables for experiment output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// MinMax returns the extremes (0,0 for empty input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// GeoMean returns the geometric mean of positive values (0 if any value
// is non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// FitResult reports a least-squares fit y ~= Sum_j coef[j] * x[j].
type FitResult struct {
	// Coef are the fitted coefficients, one per predictor.
	Coef []float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLinear fits y ≈ Σ coef_j · X[i][j] (no intercept; include a column
// of ones for one) by solving the normal equations with Gaussian
// elimination. It is used to regress measured makespans against the
// Theorem 1 terms (T1+W+nτ)/P, mτ, and T∞. It returns ok=false for
// degenerate systems.
func FitLinear(X [][]float64, y []float64) (FitResult, bool) {
	n := len(X)
	if n == 0 || n != len(y) {
		return FitResult{}, false
	}
	k := len(X[0])
	if k == 0 || n < k {
		return FitResult{}, false
	}
	// Normal equations: (XᵀX) c = Xᵀy.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	for i := 0; i < n; i++ {
		if len(X[i]) != k {
			return FitResult{}, false
		}
		for p := 0; p < k; p++ {
			b[p] += X[i][p] * y[i]
			for q := 0; q < k; q++ {
				a[p][q] += X[i][p] * X[i][q]
			}
		}
	}
	coef, ok := solve(a, b)
	if !ok {
		return FitResult{}, false
	}
	// R².
	ybar := Mean(y)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		pred := 0.0
		for j := 0; j < k; j++ {
			pred += coef[j] * X[i][j]
		}
		d := y[i] - pred
		ssRes += d * d
		dt := y[i] - ybar
		ssTot += dt * dt
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return FitResult{Coef: coef, R2: r2}, true
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		best, bestAbs := col, math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > bestAbs {
				best, bestAbs = r, abs
			}
		}
		if bestAbs < 1e-12 {
			return nil, false
		}
		a[col], a[best] = a[best], a[col]
		b[col], b[best] = b[best], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

// Table accumulates rows and renders them with aligned columns; the
// experiment CLIs print their series through it.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v (floats as %.3g if
// passed as float64).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
