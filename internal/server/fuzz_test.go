package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest fuzzes the request decoder — the first parser any
// byte from the network meets after ReadFrame. Two properties: it never
// panics on arbitrary input, and any body it accepts round-trips
// through AppendRequest bit for bit (so the decoder cannot quietly
// misread a field).
func FuzzDecodeRequest(f *testing.F) {
	valid := AppendRequest(nil, Request{ID: 42, DS: DSSkiplist, Op: OpInsert, Key: -7, Val: 99})
	f.Add(valid[4:])                                 // well-formed
	f.Add([]byte{})                                  // empty body
	f.Add(valid[4 : len(valid)-3])                   // truncated
	f.Add(append(append([]byte{}, valid[4:]...), 1)) // trailing garbage
	f.Add(bytes.Repeat([]byte{0xFF}, reqBody))       // all-ones fields
	f.Fuzz(func(t *testing.T, b []byte) {
		q, err := DecodeRequest(b)
		if err != nil {
			return // rejected input; the only requirement is no panic
		}
		enc := AppendRequest(nil, q)
		if !bytes.Equal(enc[4:], b) {
			t.Fatalf("round trip mismatch: %x -> %+v -> %x", b, q, enc[4:])
		}
	})
}

// FuzzDecodeResponse does the same for the response decoder, which
// loadgen clients run against bytes from the server. Payload aliases
// the input, so the round-trip check also pins the payload slicing.
func FuzzDecodeResponse(f *testing.F) {
	valid := AppendResponse(nil, Response{ID: 7, Flags: FlagOK, Key: 3, Res: -1})
	withPayload := AppendResponse(nil, Response{
		ID: 8, Flags: FlagOK | FlagPayload, Payload: []byte(`{"ok":true}`),
	})
	// A stats payload in the sharded shape clients actually receive:
	// aggregated totals plus the per-shard breakdown.
	statsPayload := AppendResponse(nil, Response{
		ID: 9, Flags: FlagOK | FlagPayload,
		Payload: []byte(`{"accepted":12,"completed":12,"shards":2,"per_shard":[` +
			`{"shard":0,"accepted":5,"completed":5,"failed":0,"batches":3,"batched_ops":5,` +
			`"mean_batch":1.67,"ops_per_sec":100,"queue_depth":0,"batch_panics":0},` +
			`{"shard":1,"accepted":7,"completed":7,"failed":0,"batches":4,"batched_ops":7,` +
			`"mean_batch":1.75,"ops_per_sec":140,"queue_depth":0,"batch_panics":0}]}`),
	})
	f.Add(valid[4:])
	f.Add(withPayload[4:])
	f.Add(statsPayload[4:])
	f.Add([]byte{})
	f.Add(valid[4 : len(valid)-1])
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeResponse(b)
		if err != nil {
			return
		}
		if r.Flags&FlagPayload == 0 && len(b) != respBody {
			// The decoder tolerates trailing bytes on payload-less
			// responses (they are simply ignored); no round trip there.
			return
		}
		// Otherwise the decode must round-trip: with FlagPayload the
		// payload must be exactly the frame tail.
		enc := AppendResponse(nil, r)
		if !bytes.Equal(enc[4:], b) {
			t.Fatalf("round trip mismatch: %x -> %+v -> %x", b, r, enc[4:])
		}
	})
}
