package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func benchDoc(ns float64) map[string]benchResult {
	return map[string]benchResult{
		"BenchmarkFig5Real/engine=BATCHER": {Iterations: 10, NsPerOp: ns},
		"BenchmarkFig5Real/engine=SEQ":     {Iterations: 10, NsPerOp: 2 * ns},
		"BenchmarkUnrelated":               {Iterations: 100, NsPerOp: 5},
	}
}

var gateRe = regexp.MustCompile("Fig5Real.*BATCHER")

// TestBenchRegressionsDetectsSlowdown is the gate's own acceptance
// test: a synthetic 2x slowdown of the gated benchmark must fail.
func TestBenchRegressionsDetectsSlowdown(t *testing.T) {
	base := benchDoc(100)
	slow := benchDoc(200) // 2x > 1.25x allowed
	regs, err := benchRegressions(base, slow, gateRe, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("2x slowdown produced %d regressions, want 1: %v", len(regs), regs)
	}
	if !strings.Contains(regs[0], "BATCHER") || !strings.Contains(regs[0], "2.00x") {
		t.Fatalf("regression message %q missing benchmark or ratio", regs[0])
	}
}

func TestBenchRegressionsPassesWithinNoise(t *testing.T) {
	base := benchDoc(100)
	noisy := benchDoc(120) // 1.2x < 1.25x allowed
	regs, err := benchRegressions(base, noisy, gateRe, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("1.2x drift flagged: %v", regs)
	}
	// The unrelated benchmark regressing must not trip the gate.
	worse := benchDoc(100)
	worse["BenchmarkUnrelated"] = benchResult{Iterations: 1, NsPerOp: 5000}
	if regs, err := benchRegressions(base, worse, gateRe, 1.25); err != nil || len(regs) != 0 {
		t.Fatalf("unmatched benchmark tripped the gate: %v %v", regs, err)
	}
}

func TestBenchRegressionsRefusesSilentDisarm(t *testing.T) {
	base := benchDoc(100)
	if _, err := benchRegressions(base, base, regexp.MustCompile("Renamed"), 1.25); err == nil {
		t.Fatal("matching nothing must be an error, not a pass")
	}
	cur := benchDoc(100)
	delete(cur, "BenchmarkFig5Real/engine=BATCHER")
	if _, err := benchRegressions(base, cur, gateRe, 1.25); err == nil {
		t.Fatal("benchmark missing from current must be an error")
	}
}

// TestLoadBenchDoc covers both on-disk formats benchjson writes.
func TestLoadBenchDoc(t *testing.T) {
	dir := t.TempDir()
	pretty := filepath.Join(dir, "pretty.json")
	os.WriteFile(pretty, []byte(`{
  "BenchmarkFig5Real/engine=BATCHER": {"iterations": 5, "ns_per_op": 123.5}
}`), 0o644)
	doc, err := loadBenchDoc(pretty)
	if err != nil {
		t.Fatal(err)
	}
	if doc["BenchmarkFig5Real/engine=BATCHER"].NsPerOp != 123.5 {
		t.Fatalf("pretty doc parsed wrong: %+v", doc)
	}

	jsonl := filepath.Join(dir, "traj.jsonl")
	os.WriteFile(jsonl, []byte(
		`{"BenchmarkFig5Real/engine=BATCHER":{"iterations":5,"ns_per_op":100}}`+"\n"+
			`{"BenchmarkFig5Real/engine=BATCHER":{"iterations":5,"ns_per_op":200}}`+"\n"), 0o644)
	doc, err = loadBenchDoc(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if doc["BenchmarkFig5Real/engine=BATCHER"].NsPerOp != 200 {
		t.Fatalf("JSONL fallback did not take the last line: %+v", doc)
	}

	if _, err := loadBenchDoc(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}
