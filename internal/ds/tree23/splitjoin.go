package tree23

// Join-based 2-3 tree operations, in the style of join-based balanced
// trees: join concatenates two trees around a separator key, split cuts a
// tree at a key. Both are O(lg n). Bulk batch operations are built on
// them: split at the batch median, fork the halves (disjoint trees, so
// the forked tasks share nothing), and join the results.

// join returns a tree containing l's keys, then k, then r's keys.
// Preconditions: every key in l < k.k < every key in r. l and r may be
// nil. join may mutate nodes of l and r.
func join(l *node, k kv, r *node) *node {
	hl, hr := height(l), height(r)
	switch {
	case hl == hr:
		return node1(l, k, r)
	case hl > hr:
		t, sk, t2, split := joinRight(l, k, r)
		if split {
			return node1(t, sk, t2)
		}
		return t
	default:
		t, sk, t2, split := joinLeft(l, k, r)
		if split {
			return node1(t, sk, t2)
		}
		return t
	}
}

// joinRight attaches (k, r) along l's right spine; h(l) > h(r). The
// result is either a single tree of height h(l) (split=false) or two
// trees of height h(l) separated by sk (split=true), exactly like an
// insert's overflow propagation.
func joinRight(l *node, k kv, r *node) (t *node, sk kv, t2 *node, split bool) {
	child := l.kids[l.nk]
	var ct, ct2 *node
	var csk kv
	var csplit bool
	if height(child) == height(r) {
		ct, csk, ct2, csplit = child, k, r, true
	} else {
		ct, csk, ct2, csplit = joinRight(child, k, r)
	}
	l.kids[l.nk] = ct
	if !csplit {
		return l, kv{}, nil, false
	}
	if l.nk == 1 {
		l.keys[1] = csk
		l.kids[2] = ct2
		l.nk = 2
		return l, kv{}, nil, false
	}
	// Overflow: keys (k1, k2, csk) over children (c0, c1, ct, ct2).
	left := node1(l.kids[0], l.keys[0], l.kids[1])
	right := node1(ct, csk, ct2)
	return left, l.keys[1], right, true
}

// joinLeft is the mirror image: attach (l, k) along r's left spine;
// h(r) > h(l).
func joinLeft(l *node, k kv, r *node) (t *node, sk kv, t2 *node, split bool) {
	child := r.kids[0]
	var ct, ct2 *node
	var csk kv
	var csplit bool
	if height(child) == height(l) {
		ct, csk, ct2, csplit = l, k, child, true
	} else {
		ct, csk, ct2, csplit = joinLeft(l, k, child)
	}
	r.kids[0] = ct
	if !csplit {
		return r, kv{}, nil, false
	}
	if r.nk == 1 {
		r.keys[1] = r.keys[0]
		r.kids[2] = r.kids[1]
		r.keys[0] = csk
		r.kids[1] = ct2
		// r.kids[0] already holds ct.
		r.nk = 2
		return r, kv{}, nil, false
	}
	// Overflow: keys (csk, k1, k2) over children (ct, ct2, c1, c2).
	left := node1(ct, csk, ct2)
	right := node1(r.kids[1], r.keys[1], r.kids[2])
	return left, r.keys[0], right, true
}

// split cuts t at key: l receives keys < key, r keys > key; found/val
// report whether key itself was present. t is consumed.
func split(t *node, key int64) (l, r *node, found bool, val int64) {
	if t == nil {
		return nil, nil, false, 0
	}
	if t.nk == 1 {
		k1 := t.keys[0]
		switch {
		case key < k1.k:
			cl, cr, f, v := split(t.kids[0], key)
			return cl, join(cr, k1, t.kids[1]), f, v
		case key == k1.k:
			return t.kids[0], t.kids[1], true, k1.v
		default:
			cl, cr, f, v := split(t.kids[1], key)
			return join(t.kids[0], k1, cl), cr, f, v
		}
	}
	k1, k2 := t.keys[0], t.keys[1]
	switch {
	case key < k1.k:
		cl, cr, f, v := split(t.kids[0], key)
		return cl, join(cr, k1, node1(t.kids[1], k2, t.kids[2])), f, v
	case key == k1.k:
		return t.kids[0], node1(t.kids[1], k2, t.kids[2]), true, k1.v
	case key < k2.k:
		cl, cr, f, v := split(t.kids[1], key)
		return join(t.kids[0], k1, cl), join(cr, k2, t.kids[2]), f, v
	case key == k2.k:
		return node1(t.kids[0], k1, t.kids[1]), t.kids[2], true, k2.v
	default:
		cl, cr, f, v := split(t.kids[2], key)
		return join(node1(t.kids[0], k1, t.kids[1]), k2, cl), cr, f, v
	}
}

// splitLast removes and returns the maximum key of a non-nil tree.
func splitLast(t *node) (*node, kv) {
	if t.kids[t.nk] == nil { // leaf
		last := t.keys[t.nk-1]
		if t.nk == 2 {
			t.nk = 1
			return t, last
		}
		return nil, last
	}
	c, last := splitLast(t.kids[t.nk])
	if t.nk == 2 {
		prefix := node1(t.kids[0], t.keys[0], t.kids[1])
		return join(prefix, t.keys[1], c), last
	}
	return join(t.kids[0], t.keys[0], c), last
}

// join2 concatenates two trees without a separator (all keys of l below
// all keys of r).
func join2(l, r *node) *node {
	if l == nil {
		return r
	}
	l2, last := splitLast(l)
	return join(l2, last, r)
}
