// Package experiments implements the paper's evaluation harness: one
// function per experiment in DESIGN.md's index (Fig5, Fig5-FC,
// EX-counter, EX-tree, EX-stack, THM1, LEM2, and the ablations), shared
// by the cmd/batcherlab CLI and the root benchmark suite. Simulator
// experiments measure timesteps in the paper's dag model; real-runtime
// experiments measure wall-clock on the goroutine-based scheduler.
package experiments

import (
	"batcher/internal/sim"
	"batcher/internal/simds"
	"batcher/internal/stats"
)

// Fig5Config parameterizes the skip-list throughput experiment of the
// paper's Section 7 (Figure 5).
type Fig5Config struct {
	// Calls is the number of BATCHIFY calls; RecordsPer the insertion
	// records per call (the paper: 1000 calls x 100 records = 100,000
	// insertions).
	Calls, RecordsPer int
	// Sizes are the initial skip-list sizes (the paper: 20k, 100k, 1M,
	// 10M, 100M).
	Sizes []int64
	// Workers are the P values to sweep (the paper: 1..8).
	Workers []int
	// Seed drives the simulator.
	Seed uint64
	// FlatCombining additionally simulates sequential batches.
	FlatCombining bool
}

// DefaultFig5 returns the paper's exact parameters.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Calls:      1000,
		RecordsPer: 100,
		Sizes:      []int64{20_000, 100_000, 1_000_000, 10_000_000, 100_000_000},
		Workers:    []int{1, 2, 3, 4, 5, 6, 7, 8},
		Seed:       20140623, // SPAA'14 opening day
	}
}

// Fig5Row is one measured point.
type Fig5Row struct {
	Size    int64
	Workers int
	// SeqThroughput is the sequential baseline (independent of Workers);
	// BatThroughput is BATCHER's; FCThroughput flat combining's (only
	// when requested). Throughputs are insertions per 1000 timesteps.
	SeqThroughput float64
	BatThroughput float64
	FCThroughput  float64
	// Batches and MeanBatch describe BATCHER's batching behaviour.
	Batches   int64
	MeanBatch float64
}

// Fig5Result is the experiment's full series.
type Fig5Result struct {
	Config Fig5Config
	Rows   []Fig5Row
}

func fig5Graph(cfg Fig5Config) (*sim.Graph, int64) {
	g := sim.NewGraph(cfg.Calls * 4)
	ops := make([]*sim.Op, cfg.Calls)
	for i := range ops {
		ops[i] = &sim.Op{Records: cfg.RecordsPer}
	}
	g.ForkJoinDS(ops, 1, 1)
	return g, int64(cfg.Calls) * int64(cfg.RecordsPer)
}

// Fig5 runs the experiment and returns every (size, P) point.
func Fig5(cfg Fig5Config) Fig5Result {
	res := Fig5Result{Config: cfg}
	const kilo = 1000.0
	for _, size := range cfg.Sizes {
		gSeq, records := fig5Graph(cfg)
		seqTime := sim.SequentialTime(gSeq, &simds.SkipList{Size: size})
		seqTP := kilo * float64(records) / float64(seqTime)
		for _, p := range cfg.Workers {
			g, _ := fig5Graph(cfg)
			r := sim.NewSim(sim.Config{Workers: p, Seed: cfg.Seed},
				&simds.SkipList{Size: size}).Run(g)
			row := Fig5Row{
				Size:          size,
				Workers:       p,
				SeqThroughput: seqTP,
				BatThroughput: kilo * r.Throughput(records),
				Batches:       r.Batches,
				MeanBatch:     r.MeanBatchOps,
			}
			if cfg.FlatCombining {
				g2, _ := fig5Graph(cfg)
				fc := sim.NewSim(sim.Config{Workers: p, Seed: cfg.Seed, SeqBatches: true},
					&simds.SkipList{Size: size}).Run(g2)
				row.FCThroughput = kilo * fc.Throughput(records)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Table renders the result in the shape of the paper's Figure 5: one row
// per (size, P) with throughput columns.
func (r Fig5Result) Table() *stats.Table {
	cols := []string{"initial", "P", "SEQ tput", "BATCHER tput", "speedup", "batches", "meanBatch"}
	if r.Config.FlatCombining {
		cols = append(cols, "FC tput")
	}
	t := stats.NewTable(cols...)
	var base float64
	for _, row := range r.Rows {
		if row.Workers == r.Config.Workers[0] {
			base = row.BatThroughput
		}
		speedup := row.BatThroughput / base
		cells := []any{row.Size, row.Workers, row.SeqThroughput,
			row.BatThroughput, speedup, row.Batches, row.MeanBatch}
		if r.Config.FlatCombining {
			cells = append(cells, row.FCThroughput)
		}
		t.AddRow(cells...)
	}
	return t
}

// ShapeChecks verifies the qualitative claims of Section 7 against the
// measured series and returns human-readable pass/fail lines:
//
//  1. BATCHER's throughput rises with P for every size.
//  2. SEQ beats 1-worker BATCHER on small lists (overhead dominates)
//     but not on large ones.
//  3. At the largest size, speedup at max P is roughly the paper's ~3x.
//  4. Flat combining (if measured) does not scale with P.
func (r Fig5Result) ShapeChecks() []Check {
	var checks []Check
	bySize := map[int64][]Fig5Row{}
	for _, row := range r.Rows {
		bySize[row.Size] = append(bySize[row.Size], row)
	}
	for _, size := range r.Config.Sizes {
		rows := bySize[size]
		first, last := rows[0], rows[len(rows)-1]
		checks = append(checks, Check{
			Name: fmtCheck("fig5: throughput rises with P (size %d)", size),
			Pass: last.BatThroughput > first.BatThroughput*1.5,
			Detail: fmtCheck("P=%d: %.1f -> P=%d: %.1f", first.Workers,
				first.BatThroughput, last.Workers, last.BatThroughput),
		})
	}
	small := bySize[r.Config.Sizes[0]][0]
	checks = append(checks, Check{
		Name:   "fig5: SEQ beats BATCHER@1 on the smallest list",
		Pass:   small.SeqThroughput > small.BatThroughput,
		Detail: fmtCheck("SEQ %.1f vs BAT@1 %.1f", small.SeqThroughput, small.BatThroughput),
	})
	largest := bySize[r.Config.Sizes[len(r.Config.Sizes)-1]]
	lf, ll := largest[0], largest[len(largest)-1]
	sp := ll.BatThroughput / lf.BatThroughput
	checks = append(checks, Check{
		Name:   "fig5: ~3x speedup at max P on the largest list",
		Pass:   sp >= 2.0,
		Detail: fmtCheck("speedup@P=%d = %.2fx (paper: 3.33x at 8)", ll.Workers, sp),
	})
	checks = append(checks, Check{
		Name:   "fig5: BATCHER@maxP beats SEQ on the largest list",
		Pass:   ll.BatThroughput > ll.SeqThroughput,
		Detail: fmtCheck("BAT %.1f vs SEQ %.1f", ll.BatThroughput, ll.SeqThroughput),
	})
	if r.Config.FlatCombining {
		fcFirst, fcLast := lf.FCThroughput, ll.FCThroughput
		checks = append(checks, Check{
			Name:   "fig5-fc: flat combining does not scale with P",
			Pass:   fcLast < fcFirst*1.3,
			Detail: fmtCheck("FC P=%d: %.1f -> P=%d: %.1f", lf.Workers, fcFirst, ll.Workers, fcLast),
		})
		checks = append(checks, Check{
			Name:   "fig5-fc: BATCHER@maxP beats flat combining@maxP",
			Pass:   ll.BatThroughput > fcLast,
			Detail: fmtCheck("BAT %.1f vs FC %.1f", ll.BatThroughput, fcLast),
		})
	}
	return checks
}
