package server

// Prometheus-style observability for batcherd. Every server owns an
// obs.Registry; its counters and gauges are scrape-time reads of the
// atomics the serving path already maintains, so registration costs the
// hot path nothing. Histograms that describe scheduler behavior are per
// shard, carrying a `shard` label: each shard is an independent
// batching domain (its own runtime, pump, and pending array), so batch
// size, queue depth, per-phase latency, and batch delay only mean
// something per shard — per-shard batch-delay histograms are exactly
// what keeps the Theorem 5.4 envelope auditable via `batcherlab audit`
// when Shards > 1. Per-structure service latency stays process-wide
// (a structure class spans shards; its clients see one latency).

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"batcher/internal/obs"
	"batcher/internal/sched"
)

// dsNames maps the wire ds codes 0..3 to metric label values.
var dsNames = [4]string{"counter", "skiplist", "tree23", "hashmap"}

// buildMetrics assembles the registry. Called from Start before the
// pumps begin serving (each runtime must be quiescent when its batch
// histogram and tracer are attached).
func (s *Server) buildMetrics() {
	reg := obs.NewRegistry()
	s.reg = reg

	reg.CounterFunc("batcherd_ops_accepted_total",
		"operations admitted into a shard pump", nil, s.accepted.Load)
	reg.CounterFunc("batcherd_ops_rejected_total",
		"operations refused (bad op, saturation cap, shutdown)", nil, s.rejected.Load)
	reg.CounterFunc("batcherd_ops_completed_total",
		"responses handed to connection writers", nil, s.completed.Load)
	reg.CounterFunc("batcherd_ops_immediate_total",
		"responses that bypassed the pumps (stats, rejections)", nil, s.immediate.Load)
	reg.CounterFunc("batcherd_ops_failed_total",
		"accepted operations completed with Err (contained batch panic)", nil, s.failed.Load)
	reg.CounterFunc("batcherd_decode_errors_total",
		"connections dropped for malformed frames", nil, s.decodeErr.Load)
	reg.CounterFunc("batcherd_evictions_total",
		"connections torn down for deadline or protocol violations", nil, s.evictions.Load)
	reg.CounterFunc("batcherd_read_syscalls_total",
		"socket read syscalls issued by the reader loops", nil, s.readSys.Load)
	reg.CounterFunc("batcherd_write_syscalls_total",
		"socket write syscalls issued by the writer loops", nil, s.writeSys.Load)
	reg.CounterFunc("batcherd_batch_panics_total",
		"batch groups whose BOP panicked and was contained (all shards)", nil, s.router.BatchPanics)
	reg.CounterFunc("batcherd_batches_total",
		"batches executed by the shard schedulers", nil, func() int64 {
			b, _ := s.router.LiveBatchStats()
			return b
		})
	reg.CounterFunc("batcherd_batched_ops_total",
		"operations carried by executed batches (all shards)", nil, func() int64 {
			_, ops := s.router.LiveBatchStats()
			return ops
		})
	reg.CounterFunc("batcherd_steals_total",
		"successful scheduler steals (all shards)", nil, s.router.LiveSteals)

	// Batch-formation policy: which one is installed (an info-style
	// gauge, constant 1, name on the label) and why batches launched.
	reg.GaugeFunc("batcherd_policy_info",
		"installed batch-formation policy (constant 1; the policy label carries the name)",
		[]obs.Label{{Name: "policy", Value: s.router.Shard(0).Runtime().Policy().Name()}},
		func() float64 { return 1 })
	for r := 1; r < sched.NumLaunchReasons; r++ {
		reason := sched.LaunchReason(r)
		reg.CounterFunc("batcherd_batch_launch_total",
			"batches launched, by policy decision reason (all shards)",
			[]obs.Label{{Name: "reason", Value: reason.String()}},
			func() int64 { return s.router.LaunchReasons()[reason] })
	}

	reg.GaugeFunc("batcherd_workers",
		"scheduler worker count per shard (P)", nil, func() float64 {
			return float64(s.Runtime().Workers())
		})
	reg.GaugeFunc("batcherd_shards",
		"independent runtime shards behind the listener", nil, func() float64 {
			return float64(s.router.N())
		})
	reg.GaugeFunc("batcherd_conns",
		"currently open connections", nil, func() float64 {
			return float64(s.curConns.Load())
		})
	reg.GaugeFunc("batcherd_reactor_loops",
		"reader/writer loop pairs in the reactor pool", nil, func() float64 {
			return float64(len(s.rloops))
		})
	reg.GaugeFunc("batcherd_uptime_seconds",
		"seconds since the server started", nil, func() float64 {
			return time.Since(s.start).Seconds()
		})

	for i, name := range dsNames {
		s.latHist[i] = reg.Histogram("batcherd_service_latency_ns",
			"pump-admission-to-completion latency per operation",
			[]obs.Label{{Name: "ds", Value: name}})
	}

	// Per-shard families. Phase stamping is always on for a server: its
	// cost is one clock read and an array store per boundary, and the
	// decomposition is the point of running batcherd observably. The
	// batch-delay histogram is PhaseLand−PhasePending, the per-op wait
	// Theorem 5.4 charges (at most two batches' worth by Lemma 2) —
	// observed into the owning shard's histogram, because the bound is
	// in terms of that shard's P and its pending array alone.
	s.shardM = make([]shardMetrics, s.router.N())
	for i := range s.shardM {
		sh := s.router.Shard(i)
		label := strconv.Itoa(i)
		sm := &s.shardM[i]
		sm.batchHist = reg.Histogram("batcherd_batch_size",
			"operations per executed batch",
			[]obs.Label{{Name: "shard", Value: label}})
		sh.Runtime().SetBatchSizeHistogram(sm.batchHist)
		sh.Runtime().SetPhaseStamps(true)
		for j, name := range obs.PhaseNames {
			sm.phaseHist[j] = reg.Histogram("batcherd_op_phase_ns",
				"per-operation lifecycle phase duration",
				[]obs.Label{{Name: "phase", Value: name}, {Name: "shard", Value: label}})
		}
		sm.delayHist = reg.Histogram("batcherd_batch_delay_ns",
			"per-operation batch delay: pending-array arrival to batch landing (Theorem 5.4's per-op wait)",
			[]obs.Label{{Name: "shard", Value: label}})
		sm.totalHist = reg.Histogram("batcherd_op_total_ns",
			"end-to-end operation latency: conn read done to response handoff",
			[]obs.Label{{Name: "shard", Value: label}})

		// Live conformance monitor (DESIGN.md §16): the shard runtime
		// feeds one RecordBatch per landed batch and these gauges check
		// the paper's guarantees continuously — headroom > 1 means the
		// Theorem 5.4 envelope was exceeded, max_landings > 2 breaks
		// Lemma 2. Always on: the per-batch cost is two clock reads and
		// an O(P + ring) scan, and a guarantee nobody watches is not a
		// guarantee.
		sm.conform = obs.NewConform(0)
		sh.Runtime().SetConformance(sm.conform)
		conform := sm.conform
		reg.GaugeFunc("batcherd_conformance_headroom",
			"windowed max batch delay over the Theorem 5.4 envelope 2*(span+gap); >1 breaks the bound",
			[]obs.Label{{Name: "shard", Value: label}}, conform.Headroom)
		reg.GaugeFunc("batcherd_conformance_span_max_ns",
			"windowed max batch span (launch to land)",
			[]obs.Label{{Name: "shard", Value: label}}, func() float64 {
				return float64(conform.SpanMaxNS())
			})
		reg.GaugeFunc("batcherd_conformance_gap_max_ns",
			"windowed max inter-batch gap (previous land to next launch)",
			[]obs.Label{{Name: "shard", Value: label}}, func() float64 {
				return float64(conform.GapMaxNS())
			})
		reg.GaugeFunc("batcherd_conformance_delay_max_ns",
			"windowed max per-op batch delay (pending publish to land)",
			[]obs.Label{{Name: "shard", Value: label}}, func() float64 {
				return float64(conform.DelayMaxNS())
			})
		reg.GaugeFunc("batcherd_conformance_max_landings",
			"windowed max batch landings inside any op's pending wait; >2 breaks Lemma 2",
			[]obs.Label{{Name: "shard", Value: label}}, func() float64 {
				return float64(conform.MaxLandings())
			})
		reg.CounterFunc("batcherd_conformance_violations_total",
			"batches whose landings count exceeded Lemma 2's bound of two (lifetime)",
			[]obs.Label{{Name: "shard", Value: label}}, conform.Violations)

		reg.GaugeFunc("batcherd_queue_depth",
			"pump ingress queue depth",
			[]obs.Label{{Name: "shard", Value: label}}, func() float64 {
				return float64(sh.Pump().Depth())
			})
		if s.admission != nil {
			// Admission-control families (DESIGN.md §15), per shard:
			// each shard has its own twin, its own prediction, and its
			// own shed ledger.
			ctrl := s.admission[i]
			reg.CounterFunc("batcherd_admission_shed_total",
				"operations shed at the edge by the admission controller",
				[]obs.Label{{Name: "shard", Value: label}}, ctrl.Shed)
			reg.GaugeFunc("batcherd_admission_predicted_p999_ns",
				"the analytical twin's p999 prediction at the observed arrival rate",
				[]obs.Label{{Name: "shard", Value: label}}, func() float64 {
					return float64(ctrl.Predicted())
				})
			reg.GaugeFunc("batcherd_admission_slo_ns",
				"configured admission latency SLO",
				[]obs.Label{{Name: "shard", Value: label}}, func() float64 {
					return float64(ctrl.SLO())
				})
			tw := &s.twin[i]
			reg.GaugeFunc("batcherd_twin_residual_pct",
				"rolling mean absolute percent error of the twin's p999 prediction vs the realized per-tick p999",
				[]obs.Label{{Name: "shard", Value: label}}, tw.residualPct)
		}
	}
	if s.cfg.SlowK >= 0 {
		s.flight = obs.NewFlightRecorder(s.cfg.SlowK, s.cfg.SlowWindow)
	}

	if s.cfg.TraceRing > 0 {
		// One ring set, attached to shard 0's runtime: event traces
		// interleave a single scheduler's workers; merging shards into
		// one timeline would be misleading rather than informative.
		rt := s.Runtime()
		s.tracer = rt.NewTracer(s.cfg.TraceRing)
		rt.SetTracer(s.tracer)
	}
}

// Metrics returns the server's registry (scrape it with
// MetricsHandler, or pull individual families in tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// MetricsHandler returns the /metrics handler (Prometheus text format).
func (s *Server) MetricsHandler() http.Handler { return s.reg.Handler() }

// Tracer returns the scheduler event tracer (shard 0's runtime), or
// nil unless Config.TraceRing enabled tracing.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SlowOps returns the tail flight recorder's current contents (the K
// slowest ops of the current and previous windows, slowest first), or
// nil when the recorder is disabled.
func (s *Server) SlowOps() []obs.SlowOp { return s.flight.Snapshot() }

// SlowHandler returns the /slow handler: a JSON array of the flight
// recorder's SlowOps. 404 when the recorder is disabled (SlowK < 0).
func (s *Server) SlowHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.flight == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		ops := s.flight.Snapshot()
		if ops == nil {
			ops = []obs.SlowOp{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ops)
	})
}

// TraceHandler returns the /trace handler: a live Chrome trace_event
// JSON snapshot of the scheduler's event rings, streamed rather than
// buffered. 404 when tracing is disabled (Config.TraceRing == 0).
func (s *Server) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.tracer == nil {
			http.Error(w, "tracing disabled (start with TraceRing > 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w, s.tracer.Snapshot())
	})
}
