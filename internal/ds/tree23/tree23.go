// Package tree23 implements a 2-3 search tree (a B-tree with one or two
// keys per node), the search-tree example of Section 3 of the paper. The
// paper's batched 2-3 tree follows Paul, Vishkin and Wagener: sort the
// batch, insert the median, and recurse on the halves in parallel, so
// that keys inserted concurrently end up separated by existing keys
// without concurrency control.
//
// We realize that recursion with join-based bulk operations: split the
// tree at the batch's median key, process the two halves in genuinely
// parallel forked tasks (the halves are disjoint trees, so no
// synchronization is needed), and join the results. split and join are
// O(lg n) each, giving a size-x batch O(x lg n) work and O(lg x · lg n)
// span — the profile the paper's search-tree analysis uses.
//
// The sequential tree (type Tree) uses the classic split-propagation
// insert and serves as the SEQ baseline and testing oracle.
package tree23

// kv is a key-value pair.
type kv struct{ k, v int64 }

// node is a 2-3 tree node: nk keys (1 or 2) and, for internal nodes,
// nk+1 children. All leaves are at the same depth; h is the subtree
// height with leaves at height 1.
type node struct {
	h    int16
	nk   int8
	keys [2]kv
	kids [3]*node
}

func height(t *node) int {
	if t == nil {
		return 0
	}
	return int(t.h)
}

// node1 builds a 1-key node over two equal-height subtrees (both nil for
// a leaf).
func node1(l *node, k kv, r *node) *node {
	return &node{h: int16(height(l)) + 1, nk: 1, keys: [2]kv{k}, kids: [3]*node{l, r}}
}

// Tree is a sequential 2-3 tree mapping int64 keys to int64 values.
type Tree struct {
	root *node
	size int
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{} }

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// Contains reports whether key is present and returns its value.
func (t *Tree) Contains(key int64) (int64, bool) {
	x := t.root
	for x != nil {
		if key == x.keys[0].k {
			return x.keys[0].v, true
		}
		if x.nk == 2 && key == x.keys[1].k {
			return x.keys[1].v, true
		}
		switch {
		case key < x.keys[0].k:
			x = x.kids[0]
		case x.nk == 1 || key < x.keys[1].k:
			x = x.kids[1]
		default:
			x = x.kids[2]
		}
	}
	return 0, false
}

// Insert adds key/val, or updates the value if key is present. It
// returns true if the key was newly inserted.
func (t *Tree) Insert(key, val int64) bool {
	if t.root == nil {
		t.root = node1(nil, kv{key, val}, nil)
		t.size = 1
		return true
	}
	nt, sk, r, split, added := insert(t.root, kv{key, val})
	if split {
		t.root = node1(nt, sk, r)
	} else {
		t.root = nt
	}
	if added {
		t.size++
	}
	return added
}

// insert is the classic recursive 2-3 insert with split propagation. It
// returns the (possibly replaced) subtree; if split is true, the subtree
// overflowed into two equal-height trees (nt, r) separated by sk.
func insert(x *node, item kv) (nt *node, sk kv, r *node, split, added bool) {
	// Update in place if present at this node.
	if item.k == x.keys[0].k {
		x.keys[0].v = item.v
		return x, kv{}, nil, false, false
	}
	if x.nk == 2 && item.k == x.keys[1].k {
		x.keys[1].v = item.v
		return x, kv{}, nil, false, false
	}
	// Child index the key belongs to.
	var i int8
	switch {
	case item.k < x.keys[0].k:
		i = 0
	case x.nk == 1 || item.k < x.keys[1].k:
		i = 1
	default:
		i = 2
	}
	var ck kv
	var cr *node
	if x.kids[0] == nil { // leaf: the item itself is inserted here
		ck, cr = item, nil
		added = true
	} else {
		var ct *node
		var csplit bool
		ct, ck, cr, csplit, added = insert(x.kids[i], item)
		x.kids[i] = ct
		if !csplit {
			return x, kv{}, nil, false, added
		}
	}
	// Insert separator ck with right subtree cr at position i.
	if x.nk == 1 {
		if i == 0 {
			x.keys[1] = x.keys[0]
			x.kids[2] = x.kids[1]
			x.keys[0] = ck
			x.kids[1] = cr
		} else {
			x.keys[1] = ck
			x.kids[2] = cr
		}
		x.nk = 2
		return x, kv{}, nil, false, added
	}
	// Overflow: three keys a < b < c with four children; split around b.
	var a, b, c kv
	var c0, c1, c2, c3 *node
	switch i {
	case 0:
		a, b, c = ck, x.keys[0], x.keys[1]
		c0, c1, c2, c3 = x.kids[0], cr, x.kids[1], x.kids[2]
	case 1:
		a, b, c = x.keys[0], ck, x.keys[1]
		c0, c1, c2, c3 = x.kids[0], x.kids[1], cr, x.kids[2]
	default:
		a, b, c = x.keys[0], x.keys[1], ck
		c0, c1, c2, c3 = x.kids[0], x.kids[1], x.kids[2], cr
	}
	return node1(c0, a, c1), b, node1(c2, c, c3), true, added
}

// Delete removes key if present, reporting whether it was. It is
// implemented with split + join2, which also underlies the batched
// deletes.
func (t *Tree) Delete(key int64) bool {
	l, r, found, _ := split(t.root, key)
	t.root = join2(l, r)
	if found {
		t.size--
	}
	return found
}

// Keys returns all keys in ascending order.
func (t *Tree) Keys() []int64 {
	out := make([]int64, 0, t.size)
	var walk func(x *node)
	walk = func(x *node) {
		if x == nil {
			return
		}
		walk(x.kids[0])
		out = append(out, x.keys[0].k)
		walk(x.kids[1])
		if x.nk == 2 {
			out = append(out, x.keys[1].k)
			walk(x.kids[2])
		}
	}
	walk(t.root)
	return out
}

// Min returns the smallest key, or ok=false when empty.
func (t *Tree) Min() (key, val int64, ok bool) {
	x := t.root
	if x == nil {
		return 0, 0, false
	}
	for x.kids[0] != nil {
		x = x.kids[0]
	}
	return x.keys[0].k, x.keys[0].v, true
}

// checkInvariants verifies 2-3 shape: key order, uniform leaf depth,
// correct nk, and consistent height fields. Tests use it after every
// structural scenario.
func (t *Tree) checkInvariants() error {
	count := 0
	var check func(x *node, lo, hi int64) (int, error)
	check = func(x *node, lo, hi int64) (int, error) {
		if x == nil {
			return 0, nil
		}
		if x.nk < 1 || x.nk > 2 {
			return 0, errShape("bad nk")
		}
		if x.nk == 2 && x.keys[0].k >= x.keys[1].k {
			return 0, errShape("keys out of order in node")
		}
		for i := int8(0); i < x.nk; i++ {
			k := x.keys[i].k
			if k <= lo || k >= hi {
				return 0, errShape("key violates search order")
			}
			count++
		}
		isLeaf := x.kids[0] == nil
		for i := int8(0); i <= x.nk; i++ {
			if isLeaf != (x.kids[i] == nil) {
				return 0, errShape("mixed leaf/internal children")
			}
		}
		if isLeaf {
			if x.h != 1 {
				return 0, errShape("leaf with h != 1")
			}
			return 1, nil
		}
		bounds := []int64{lo, x.keys[0].k, hi}
		if x.nk == 2 {
			bounds = []int64{lo, x.keys[0].k, x.keys[1].k, hi}
		}
		depth := -1
		for i := int8(0); i <= x.nk; i++ {
			d, err := check(x.kids[i], bounds[i], bounds[i+1])
			if err != nil {
				return 0, err
			}
			if depth == -1 {
				depth = d
			} else if d != depth {
				return 0, errShape("non-uniform leaf depth")
			}
		}
		if int(x.h) != depth+1 {
			return 0, errShape("height field inconsistent")
		}
		return depth + 1, nil
	}
	const inf = int64(1) << 62
	if _, err := check(t.root, -inf, inf); err != nil {
		return err
	}
	if count != t.size {
		return errShape("size field inconsistent")
	}
	return nil
}

type errShape string

func (e errShape) Error() string { return "tree23: " + string(e) }
