package main

// batcherlab audit — an empirical Theorem 5.4 batch-delay audit on the
// real goroutine runtime. The completion-time analysis charges every
// operation a *batch delay*: the wait between arriving in the pending
// array and its batch landing. Two facts bound it (paper §5):
//
//   - Lemma 2: once pending, an operation is incorporated into one of
//     the next two batches — it can miss at most the batch whose
//     acknowledgement pass already scanned its slot.
//   - Therefore delay ≤ (one missed batch) + (launch gap) + (own
//     batch), i.e. at most two batch spans plus the inter-batch setup
//     gap — the O(T1/P + T∞ + n·σ̂)-shaped bound's per-op term.
//
// The audit runs n Batchify round trips per structure with phase
// stamping enabled (obs.PhasePending/Launch/Land written by the
// scheduler into per-op records), reconstructs the batch sequence from
// the land stamps (Invariant 1 serializes batches, so distinct land
// stamps totally order them), and checks both facts directly:
// batches-landed-inside-any-op's-wait ≤ 2, and max measured delay ≤
// 2·(max batch span + max setup gap). The same quantities stream from
// a live batcherd via /metrics (batcherd_batch_delay_ns) and /slow.

import (
	"fmt"
	"os"
	"sort"

	"batcher/internal/ds/counter"
	"batcher/internal/ds/hashmap"
	"batcher/internal/ds/skiplist"
	"batcher/internal/ds/tree23"
	"batcher/internal/obs"
	"batcher/internal/sched"
	"batcher/internal/sched/policy"
)

// auditRow is one structure's audit result.
type auditRow struct {
	name string
	n    int   // ops completed
	s    int64 // batches executed (scheduler count)
	mean float64

	delayP50, delayP99, delayMax int64
	spanMax, gapMax              int64
	maxWaited                    int // batches landed inside any op's wait
	bound                        int64
}

func (r auditRow) verdictLemma2() bool { return r.maxWaited <= 2 }
func (r auditRow) verdictDelay() bool  { return r.delayMax <= r.bound }

// auditOne runs n operations against one structure and measures its
// batch-delay distribution from the per-op stamp vectors.
func auditOne(name string, ds sched.Batched, kind sched.OpKind, n, workers int, seed uint64, pol sched.BatchPolicy) auditRow {
	rt := sched.New(sched.Config{Workers: workers, Seed: seed, Policy: pol})
	rt.SetPhaseStamps(true)

	// One record per operation — the audit needs every op's stamps to
	// survive the run, so the hot path's reusable Ctx.Op is no use here.
	recs := make([]sched.OpRecord, n)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			op := &recs[i]
			op.DS = ds
			op.Kind = kind
			op.Key = int64(i) * 2654435761 % (1 << 20)
			op.Val = 1
			cc.Batchify(op)
		})
	})

	row := auditRow{name: name, n: n}
	row.s, _ = rt.LiveBatchStats()
	if row.s > 0 {
		row.mean = float64(n) / float64(row.s)
	}

	// Reconstruct the batch sequence: batches are serialized, so the
	// distinct land stamps order them; each batch's span runs from its
	// earliest launch stamp to its land, and the setup gap is the hole
	// between consecutive batches.
	type batch struct{ launch, land int64 }
	byLand := map[int64]*batch{}
	for i := range recs {
		ph := &recs[i].Phases
		b := byLand[ph[obs.PhaseLand]]
		if b == nil {
			b = &batch{launch: ph[obs.PhaseLaunch], land: ph[obs.PhaseLand]}
			byLand[ph[obs.PhaseLand]] = b
		} else if ph[obs.PhaseLaunch] < b.launch {
			b.launch = ph[obs.PhaseLaunch]
		}
	}
	batches := make([]*batch, 0, len(byLand))
	for _, b := range byLand {
		batches = append(batches, b)
	}
	sort.Slice(batches, func(i, j int) bool { return batches[i].land < batches[j].land })
	lands := make([]int64, len(batches))
	for i, b := range batches {
		lands[i] = b.land
		if sp := b.land - b.launch; sp > row.spanMax {
			row.spanMax = sp
		}
		if i > 0 {
			if g := b.launch - batches[i-1].land; g > row.gapMax {
				row.gapMax = g
			}
		}
	}

	delays := obs.NewHistogram()
	for i := range recs {
		ph := &recs[i].Phases
		delays.Observe(obs.BatchDelay(*ph))
		// Lemma 2 check: batches landing inside [pending, land] — the
		// op's own included — may number at most 2.
		lo := sort.Search(len(lands), func(k int) bool { return lands[k] >= ph[obs.PhasePending] })
		hi := sort.Search(len(lands), func(k int) bool { return lands[k] > ph[obs.PhaseLand] })
		if w := hi - lo; w > row.maxWaited {
			row.maxWaited = w
		}
	}
	row.delayP50 = delays.Quantile(0.50)
	row.delayP99 = delays.Quantile(0.99)
	row.delayMax = delays.Max()
	row.bound = 2 * (row.spanMax + row.gapMax)
	return row
}

// auditCmd runs the audit across every served structure and prints the
// measured-vs-bound table (the EXPERIMENTS.md batch-delay table).
func auditCmd() {
	n := 4000
	if *quick {
		n = 1000
	}
	w := *workers
	// Every batch-formation policy owes this audit: a policy only moves
	// launch timing, so Lemma 2 and the 2·(span+gap) envelope must
	// survive it (lingering widens gaps, and the bound widens with
	// them — a policy that broke the *shape* would need extra landings,
	// which the mechanism forbids).
	pol, err := policy.ByName(*polName, 0, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "audit: %v\n", err)
		os.Exit(2)
	}
	rows := []auditRow{
		auditOne("counter", counter.New(0), counter.OpIncrement, n, w, *seed, pol),
		auditOne("skiplist", skiplist.NewBatched(*seed^0x9e3779b97f4a7c15), skiplist.OpInsert, n, w, *seed, pol),
		auditOne("tree23", tree23.NewBatched(), tree23.OpInsert, n, w, *seed, pol),
		auditOne("hashmap", hashmap.NewBatched(*seed^0xd1342543de82ef95), hashmap.OpPut, n, w, *seed, pol),
	}

	fmt.Printf("%d Batchify round trips per structure, P=%d, policy=%s, phase stamping on\n", n, w, pol.Name())
	fmt.Printf("delay = land−pending per op; bound = 2·(max batch span + max setup gap), from Lemma 2\n\n")
	fmt.Printf("%-9s %6s %7s %6s  %12s %12s %12s  %12s %7s %7s\n",
		"ds", "ops", "batches", "mean", "delay_p50", "delay_p99", "delay_max", "bound", "ratio", "waited")
	for _, r := range rows {
		ratio := 0.0
		if r.bound > 0 {
			ratio = float64(r.delayMax) / float64(r.bound)
		}
		fmt.Printf("%-9s %6d %7d %6.2f  %12s %12s %12s  %12s %7.2f %7d\n",
			r.name, r.n, r.s, r.mean,
			fmtNS(r.delayP50), fmtNS(r.delayP99), fmtNS(r.delayMax),
			fmtNS(r.bound), ratio, r.maxWaited)
	}
	fmt.Println()
	for _, r := range rows {
		check(r.verdictLemma2(), fmt.Sprintf("%s: Lemma 2 — no op waited through more than 2 batch landings (max %d)", r.name, r.maxWaited))
		check(r.verdictDelay(), fmt.Sprintf("%s: Theorem 5.4 shape — max delay %s within 2·(span+gap) bound %s", r.name, fmtNS(r.delayMax), fmtNS(r.bound)))
	}
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func check(ok bool, msg string) {
	verdict := "PASS"
	if !ok {
		verdict = "FAIL"
	}
	fmt.Printf("%s  %s\n", verdict, msg)
}
