package policy_test

// Tests live outside the policy package (package policy_test) and use
// only the exported sched API: the policy package imports sched, so an
// internal test could not spin up runtimes without an import cycle.
// This also makes the suite an honest consumer of the policy seam — it
// exercises exactly what a third-party policy could.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"batcher/internal/sched"
	"batcher/internal/sched/policy"
)

// sumDS is a minimal batched structure whose BOP allocates nothing.
type sumDS struct{ total int64 }

func (d *sumDS) RunBatch(_ *sched.Ctx, ops []*sched.OpRecord) {
	for _, op := range ops {
		d.total += op.Val
		op.Res = d.total
		op.Ok = true
	}
}

// shippedPolicies enumerates every policy a -policy flag can select;
// new policies must be added here to inherit the 0-alloc pin.
var shippedPolicies = []struct {
	name string
	pol  sched.BatchPolicy
}{
	{"default", sched.AlternatingStealPolicy{}},
	{"size-cap", policy.SizeCap{}},
	{"deadline", policy.Deadline{}},
}

// TestBatchifyZeroAllocsPolicy pins the Batchify round trip (including
// the LaunchBatch it triggers) at zero allocations with each shipped
// policy installed. P=1 keeps the schedule deterministic (the caller is
// always its own launcher) and makes every policy launch immediately:
// one trapped worker is a full batch, so even the deadline window does
// not wait. The measured path therefore includes the policy
// consultation itself — LingerYields, ShouldLaunch, the PolicyView
// scans — which must all stay allocation-free.
func TestBatchifyZeroAllocsPolicy(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, tc := range shippedPolicies {
		t.Run(tc.name, func(t *testing.T) {
			rt := sched.New(sched.Config{Workers: 1, Seed: 701, Policy: tc.pol})
			ds := &sumDS{}
			var got float64
			rt.Run(func(c *sched.Ctx) {
				op := c.Op()
				*op = sched.OpRecord{DS: ds, Val: 1}
				c.Batchify(op) // warm the launch-task pool and batch scratch
				got = testing.AllocsPerRun(200, func() {
					op := c.Op()
					*op = sched.OpRecord{DS: ds, Val: 1}
					c.Batchify(op)
				})
			})
			if got != 0 {
				t.Fatalf("policy %s: Batchify+LaunchBatch allocates %v objects/op, want 0", tc.name, got)
			}
			if ds.total == 0 {
				t.Fatal("batched operations did not run")
			}
			reasons := rt.LaunchReasons()
			var launches int64
			for _, n := range reasons {
				launches += n
			}
			if launches == 0 {
				t.Fatalf("policy %s: no launch reason counted", tc.name)
			}
		})
	}
}

// TestDeadlineLaunchesAgedOp is the deadline policy's figure of merit:
// a single pump-fed operation — no backlog, no sibling traps, so the
// batch can never fill — must launch once its pending age reaches the
// budget, via the deadline clause rather than by exhausting the linger
// yield budget. The yield budget is deliberately enormous (1<<20): if
// the deadline clause were broken, the op would either stall for the
// whole yield budget (orders of magnitude past the deadline) and count
// a budget-exhausted launch, or never age out at all.
func TestDeadlineLaunchesAgedOp(t *testing.T) {
	const budget = 5 * time.Millisecond
	rt := sched.New(sched.Config{
		Workers: 4,
		Seed:    702,
		Policy:  policy.Deadline{Budget: budget, MaxYields: 1 << 20},
	})
	done := make(chan *sched.OpRecord, 1)
	p := sched.NewPump(rt, sched.PumpConfig{
		OnDone: func(op *sched.OpRecord) { done <- op },
	})
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); p.Serve() }()

	ds := &sumDS{}
	op := &sched.OpRecord{DS: ds, Val: 7}
	start := time.Now()
	if err := p.Submit(op); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("operation did not complete: deadline launch never fired")
	}
	elapsed := time.Since(start)
	p.Close()
	<-serveDone

	if !op.Ok || op.Res != 7 {
		t.Fatalf("op result = (%v, %d), want (true, 7)", op.Ok, op.Res)
	}
	reasons := rt.LaunchReasons()
	if n := reasons[sched.LaunchDeadline]; n < 1 {
		t.Fatalf("deadline launches = %d, want >= 1 (reasons %v)", n, reasons)
	}
	if n := reasons[sched.LaunchBudget]; n != 0 {
		t.Fatalf("budget-exhausted launches = %d, want 0: the aged op must launch on the deadline, not the yield backstop", n)
	}
	// The op was deliberately aged: it cannot have launched before its
	// pending age reached the budget (allow scheduling slop above).
	if elapsed < budget/2 {
		t.Fatalf("op completed in %v, implausibly before the %v deadline window", elapsed, budget)
	}
}

// TestSizeCapLaunchesAtThreshold preloads a deep backlog and serves it
// under SizeCap{K: 2} with an effectively unbounded linger budget: the
// default policy would hold while backlog remains, so every launch that
// happens with backlog standing must come from the size cap (k trapped)
// or the full-batch rule — and with 64 queued ops against 4 pump
// workers, backlog is standing for most of the drain.
func TestSizeCapLaunchesAtThreshold(t *testing.T) {
	const ops = 64
	rt := sched.New(sched.Config{
		Workers: 4,
		Seed:    703,
		Policy:  policy.SizeCap{K: 2},
	})
	var completed atomic.Int64
	done := make(chan struct{})
	p := sched.NewPump(rt, sched.PumpConfig{
		QueueCap:     ops,
		LingerYields: 1 << 20,
		OnDone: func(*sched.OpRecord) {
			// OnDone fires on scheduler workers; count atomically.
			if completed.Add(1) == ops {
				close(done)
			}
		},
	})
	ds := &sumDS{}
	recs := make([]sched.OpRecord, ops)
	for i := range recs {
		recs[i] = sched.OpRecord{DS: ds, Val: 1}
		if err := p.Submit(&recs[i]); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); p.Serve() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("backlog did not drain under SizeCap")
	}
	p.Close()
	<-serveDone

	if ds.total != ops {
		t.Fatalf("ds.total = %d, want %d", ds.total, ops)
	}
	reasons := rt.LaunchReasons()
	if n := reasons[sched.LaunchSizeCap] + reasons[sched.LaunchFull]; n < 1 {
		t.Fatalf("size-cap/full launches = %d, want >= 1 (reasons %v)", n, reasons)
	}
}

// capAdmit is a test-only policy proving the admission seam: it defers
// every launch decision to the default policy but refuses admission
// beyond half the queue capacity.
type capAdmit struct{ sched.AlternatingStealPolicy }

func (capAdmit) Name() string { return "cap-admit" }
func (capAdmit) Admit(depth, capacity int) bool {
	return depth <= capacity/2
}

// TestPolicyAdmissionHook verifies Submit consults the policy's Admit:
// with a policy admitting only half the queue, Submit must start
// returning ErrPumpSaturated at half capacity even though the queue
// itself still has room.
func TestPolicyAdmissionHook(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 704, Policy: capAdmit{}})
	p := sched.NewPump(rt, sched.PumpConfig{QueueCap: 8})
	ds := &sumDS{}
	recs := make([]sched.OpRecord, 8)
	admitted := 0
	var firstErr error
	for i := range recs {
		recs[i] = sched.OpRecord{DS: ds, Val: 1}
		if err := p.Submit(&recs[i]); err != nil {
			firstErr = err
			break
		}
		admitted++
	}
	if admitted != 4 {
		t.Fatalf("admitted %d ops, want 4 (half of QueueCap 8)", admitted)
	}
	if !errors.Is(firstErr, sched.ErrPumpSaturated) {
		t.Fatalf("rejection error = %v, want ErrPumpSaturated", firstErr)
	}
	// SubmitAll must truncate to the same prefix.
	p2 := sched.NewPump(rt, sched.PumpConfig{QueueCap: 8})
	ptrs := make([]*sched.OpRecord, 8)
	bulk := make([]sched.OpRecord, 8)
	for i := range bulk {
		bulk[i] = sched.OpRecord{DS: ds, Val: 1}
		ptrs[i] = &bulk[i]
	}
	n, err := p2.SubmitAll(ptrs)
	if n != 4 || !errors.Is(err, sched.ErrPumpSaturated) {
		t.Fatalf("SubmitAll = (%d, %v), want (4, ErrPumpSaturated)", n, err)
	}
}

// TestByName pins the wire names the -policy flag and the CI matrix
// depend on.
func TestByName(t *testing.T) {
	for _, name := range []string{"", "default", "alternating", "size-cap", "sizecap", "deadline"} {
		pol, err := policy.ByName(name, 0, 0)
		if err != nil || pol == nil {
			t.Fatalf("ByName(%q) = (%v, %v)", name, pol, err)
		}
	}
	if pol, err := policy.ByName("size-cap", 3, 0); err != nil || pol.(policy.SizeCap).K != 3 {
		t.Fatalf("ByName(size-cap, 3) = (%#v, %v)", pol, err)
	}
	if pol, err := policy.ByName("deadline", 0, time.Millisecond); err != nil || pol.(policy.Deadline).Budget != time.Millisecond {
		t.Fatalf("ByName(deadline, 1ms) = (%#v, %v)", pol, err)
	}
	if _, err := policy.ByName("nope", 0, 0); err == nil {
		t.Fatal("ByName(nope) succeeded, want error")
	}
}
