package server

// The reactor pool: batcherd's wire edge, restructured from
// two-goroutines-per-connection into a small set of shared loops so the
// per-operation cost of the edge stays flat from 1 to 1024 connections.
//
// N reader loops (Config.ReactorLoops, NumCPU-capped) own the sockets,
// sharded by accept order. On Linux each reader loop is an epoll event
// loop doing raw non-blocking reads into a per-loop frame buffer; one
// read syscall carves out every complete frame the peer has pipelined,
// and the decoded operations are submitted to the pump in bulk
// (sched.Pump.SubmitAll — one mutex acquisition, one wake). N writer
// loops coalesce completed responses across connections: completions
// land in a loop's intake, one sweep encodes every response into its
// connection's output buffer, and each touched connection then gets one
// write syscall carrying all of its frames — the wire-level analogue of
// the pending-array sweep (flat combining's single-combiner pass,
// applied to sockets).
//
// A connection no longer owns goroutines or channels. It keeps its
// in-flight window — the slot accounting that maps to TCP backpressure
// — as a counter: slots are taken when a frame is decoded and released
// when its response bytes fully drain to the kernel. A connection that
// cannot make progress is *parked*, never waited on:
//
//   - window full     -> reader interest off; resumed when a flush
//     releases slots (the writer kicks the reader loop),
//   - pump saturated  -> decoded ops sit in conn.pending, reader
//     interest off; retried when a completion frees queue space or on
//     the sweep tick, rejected with FlagErr past SaturationTimeout,
//   - peer not reading -> the write is attempted non-blocking; leftover
//     bytes stay in conn.outbuf and the connection joins the writer
//     loop's blocked list, evicted past WriteStallTimeout — without
//     ever stalling the loop's other connections,
//   - peer silent     -> the reader loop's sweep evicts it past
//     IdleTimeout.
//
// Locking: conn.mu guards all per-connection state and is ordered
// before every other lock (loop intake/registration mutexes, the
// saturation list, the server's conn set). Loop-local structures
// (dirty/blocked lists, scratch buffers) are touched only by their
// loop's goroutine. Raw fd operations happen under conn.mu and check
// the connection state first, so a concurrently evicted fd is never
// read, written, or re-armed after close.

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"batcher/internal/obs"
	"batcher/internal/sched"
)

// Connection states. Transitions happen under conn.mu; the atomic lets
// loops peek without taking the lock.
const (
	connOpen int32 = iota
	// connClosed: the socket is closed and no new work is created, but
	// operations already in the pump still reference the conn; it is
	// finalized (connWG released) when the last reference retires.
	connClosed
)

// Eviction reasons, for the evictions counter and tests.
type evictReason uint8

const (
	evictReadError   evictReason = iota // I/O error or EOF from the peer
	evictDecodeError                    // malformed frame (counted in decodeErr too)
	evictIdle                           // no complete frame within IdleTimeout
	evictWriteStall                     // responses unread past WriteStallTimeout
	evictWriteError                     // I/O error writing a response
	evictShutdown                       // drain finished or DrainTimeout force
)

// abnormal reports whether the reason counts toward the evictions stat
// (peer misbehavior), as opposed to a normal close or shutdown.
func (r evictReason) abnormal() bool {
	switch r {
	case evictDecodeError, evictIdle, evictWriteStall, evictWriteError:
		return true
	}
	return false
}

const (
	// readBufSize is each reader loop's frame buffer: one raw read can
	// carry up to this many bytes of pipelined frames.
	readBufSize = 64 << 10
	// sweepInterval bounds how long idle/saturation deadlines wait for
	// the next check; it is the epoll wait timeout.
	sweepInterval = 50 * time.Millisecond
	// blockedRetry is the writer loop's cadence for retrying
	// connections whose last write could not complete.
	blockedRetry = 5 * time.Millisecond
)

// conn is one accepted connection under the reactor. Compare the
// pre-reactor conn: the out and window channels are gone — per-loop
// state replaces per-conn goroutine state — but the window itself
// survives as refs+outN, preserving the backpressure mapping.
type conn struct {
	s  *Server
	nc net.Conn
	fd int // raw socket fd (epoll path); -1 on the fallback path
	rl *rloop
	wl *wloop

	state atomic.Int32 // connOpen/connClosed; written under mu
	inSat atomic.Bool  // on the server's saturation retry list

	mu sync.Mutex
	// refs counts live *request records referencing this conn (decoded
	// but not yet retired: in pending, in the pump, in a writer intake).
	// outN counts responses encoded into outbuf whose window slots are
	// still held. refs+outN is the in-flight window usage; the reader
	// admits a new frame only while refs+outN < Config.Window.
	refs int
	outN int
	// paused: reader interest is off (window full, saturation, quit).
	paused bool
	// carry holds bytes of an incomplete frame (or frames decoded past
	// the window limit) between reads.
	carry []byte
	// pending holds decoded operations awaiting pump admission, each
	// still owning a window slot; satDeadline (per-op, in rq.start) is
	// enforced by the sweep.
	pending []*request
	// lastFrame is the obs.Now stamp of the last complete frame (or
	// resume), the idle-deadline clock.
	lastFrame int64
	// outbuf accumulates encoded responses awaiting one write syscall;
	// wstart stamps when a write first failed to drain it (the
	// write-stall clock). wdirty/wblocked track membership in the
	// writer loop's local lists.
	outbuf   []byte
	wstart   int64
	wdirty   bool
	wblocked bool

	finalized bool

	// resume wakes the fallback per-conn reader (nil on the epoll path).
	resume chan struct{}
}

// rloop is one reader loop: a shard of connections whose sockets it
// drains. On Linux run() is an epoll event loop (poll_linux.go); on
// other platforms the loop only provides kick/registration plumbing and
// each conn reads on its own goroutine (poll_other.go).
type rloop struct {
	s  *Server
	id int

	mu     sync.Mutex
	conns  map[*conn]struct{}
	fds    map[int]*conn
	kicked []*conn

	poll *poller // epoll instance; nil on the fallback path

	sc   edgeScratch
	snap []*conn // sweep snapshot scratch
}

// edgeScratch is the per-loop (per-conn on the fallback path) decode
// scratch: reused across ingests so the steady state allocates nothing.
type edgeScratch struct {
	readBuf []byte
	subs    []*request // pump-bound ops of the current ingest
	imms    []*request // immediate responses of the current ingest
	recs    []*sched.OpRecord
	// Per-shard submission scratch (submitSpans): groups buckets the
	// current batch by target shard, touched lists the buckets in use,
	// sat collects the saturated leftovers across shards.
	groups  [][]*request
	touched []int
	sat     []*request
}

// initShards pre-sizes the per-shard buckets (grown defensively by
// submitSpans too, for scratches built off the Start path).
func (sc *edgeScratch) initShards(n int) {
	if len(sc.groups) < n {
		sc.groups = make([][]*request, n)
	}
}

// wloop is one writer loop. complete() and the reader loops enqueue
// finished requests into intake; the loop's sweep encodes every intake
// entry into its conn's outbuf and then flushes each touched conn with
// one write syscall.
type wloop struct {
	s  *Server
	id int

	mu     sync.Mutex
	intake []*request
	spare  []*request
	notify chan struct{}

	// Loop-local (no locks): conns to flush this sweep, conns with
	// unwritten bytes awaiting retry, and their swap scratch.
	dirty        []*conn
	blocked      []*conn
	blockedSpare []*conn
	timer        *time.Timer
}

// enqueue hands one finished request to the loop. Bounded work: an
// append under a short mutex plus a non-blocking notify — safe from
// scheduler workers (complete must never block).
func (w *wloop) enqueue(rq *request) {
	w.mu.Lock()
	w.intake = append(w.intake, rq)
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// kick asks the reader loop to re-examine c (resume reading, retry
// pending submissions) on its own goroutine.
func (l *rloop) kick(c *conn) {
	if c.resume != nil { // fallback path: the conn's goroutine resumes itself
		select {
		case c.resume <- struct{}{}:
		default:
		}
		return
	}
	l.mu.Lock()
	l.kicked = append(l.kicked, c)
	l.mu.Unlock()
	l.poll.wake()
}

// drainKicks runs deferred resume work on the loop goroutine.
func (l *rloop) drainKicks() {
	l.mu.Lock()
	kicked := l.kicked
	l.kicked = nil
	l.mu.Unlock()
	for _, c := range kicked {
		l.resumeConn(c, &l.sc)
	}
}

// ingest carves frames out of data (preceded by any carry from earlier
// reads), dispatches each decoded request, and submits the pump-bound
// batch. It returns false when the caller should stop reading this
// conn: the conn was evicted, or parked (window full / pump saturated /
// shutdown). data may be empty to process carry alone (resume).
func (s *Server) ingest(c *conn, data []byte, sc *edgeScratch) bool {
	now := obs.Now()
	sc.subs = sc.subs[:0]
	sc.imms = sc.imms[:0]
	var evict evictReason
	evicting := false

	c.mu.Lock()
	if c.state.Load() != connOpen {
		c.mu.Unlock()
		return false
	}
	buf := data
	if len(c.carry) > 0 {
		c.carry = append(c.carry, data...)
		buf = c.carry
	}
	for {
		if c.refs+c.outN >= s.cfg.Window || len(c.pending) > 0 || s.quitting() {
			c.paused = true
			break
		}
		body, rest, ok, err := SplitFrame(buf)
		if err != nil {
			s.decodeErr.Add(1)
			evicting, evict = true, evictDecodeError
			break
		}
		if !ok {
			break
		}
		q, err := DecodeRequest(body)
		if err != nil {
			s.decodeErr.Add(1)
			evicting, evict = true, evictDecodeError
			break
		}
		buf = rest
		c.lastFrame = now
		c.refs++
		s.classify(c, q, sc)
	}
	// Stash the unconsumed tail (an incomplete frame, or complete
	// frames past the window limit — bounded by one read buffer) for
	// the next ingest. The copy keeps carry's capacity across frames.
	if len(buf) > 0 {
		if len(c.carry) > 0 {
			n := copy(c.carry, buf)
			c.carry = c.carry[:n]
		} else {
			c.carry = append(c.carry[:0], buf...)
		}
	} else {
		c.carry = c.carry[:0]
	}
	paused := c.paused
	if paused && !evicting {
		c.setReadInterestLocked(false)
	}
	c.mu.Unlock()

	// Immediate responses (stats, rejections) go straight to the writer
	// loop; the stats payload is rendered outside conn.mu.
	for _, rq := range sc.imms {
		if rq.flags&FlagPayload != 0 && rq.payload == nil {
			rq.payload = s.statsJSON()
		}
		c.wl.enqueue(rq)
	}
	if len(sc.subs) > 0 {
		s.submitBatch(c, sc)
	}
	if evicting {
		s.evict(c, evict)
		return false
	}
	return !paused
}

// classify routes one decoded request under c.mu: immediate responses
// are collected in sc.imms, pump-bound operations in sc.subs. Mirrors
// the pre-reactor dispatch, minus all blocking.
func (s *Server) classify(c *conn, q Request, sc *edgeScratch) {
	rq := s.reqPool.Get().(*request)
	rq.c = c
	rq.id = q.ID
	rq.flags = 0
	rq.echo = q.Op&OpFlagPhases != 0
	rq.phased = false
	rq.payload = nil
	rq.dsIdx = 0
	rq.shard = 0
	rq.op.Kind = 0
	rq.op.Key = q.Key
	rq.op.Val = q.Val
	rq.op.Res = 0
	rq.op.Ok = false
	rq.op.Err = nil // pooled records may carry a prior contained-panic Err
	q.Op &^= OpFlagPhases
	// PhaseRead: the request is decoded and its window slot held.
	// Stamped before target validation so even rejected ops carry a
	// coherent vector (the phase-sum invariant relies on it).
	rq.op.Phases[obs.PhaseRead] = obs.Now()

	if q.DS == DSStats {
		rq.flags = FlagOK | FlagPayload
		s.immediate.Add(1)
		sc.imms = append(sc.imms, rq)
		return
	}
	kind, ok := opKind(q.DS, q.Op)
	if !ok {
		s.rejected.Add(1)
		s.immediate.Add(1)
		rq.flags = FlagErr
		sc.imms = append(sc.imms, rq)
		return
	}
	// Route: the shard decides which runtime batches the op and which
	// structure instance serves it (shard.Of for keyed structures, the
	// home shard for the keyless counter).
	sh := s.shardFor(q.DS, q.Key)
	rq.shard = int32(sh)
	// Offered is counted before admission so the sampler measures true
	// demand (the arrival rate the twin prices) even while shedding.
	s.edge[sh].offered.Add(1)
	if s.admission != nil && !s.admission[sh].Take() {
		// The shard's twin predicts p999 over SLO at this arrival rate:
		// shed at the edge with an immediate FlagErr — a fast no from a
		// healthy server — instead of parking into the saturation list
		// where the op would burn its whole timeout to learn the same
		// answer. The controller already counted the shed.
		s.immediate.Add(1)
		rq.flags = FlagErr
		sc.imms = append(sc.imms, rq)
		return
	}
	rq.op.DS = s.router.Shard(sh).DS(int(q.DS))
	rq.op.Kind = kind
	rq.dsIdx = int8(q.DS)
	rq.start = time.Now()
	sc.subs = append(sc.subs, rq)
}

// submitSpans groups reqs by target shard and bulk-submits each shard's
// span with one SubmitAll — PR-7's one-lock-per-span bulk admission,
// now per shard. Requests refused by a closed pump are rejected with
// FlagErr inline; requests a saturated shard refused are returned for
// the caller to park (decode order within each shard is preserved; the
// returned slice is scratch-backed and must be copied out before the
// next ingest on this scratch).
func (s *Server) submitSpans(c *conn, reqs []*request, sc *edgeScratch) []*request {
	if s.router.N() == 1 {
		// Fast path: no grouping pass between the wire and the pump.
		return s.submitSpan(c, 0, reqs, sc)
	}
	sc.initShards(s.router.N())
	touched := sc.touched[:0]
	for _, rq := range reqs {
		g := int(rq.shard)
		if len(sc.groups[g]) == 0 {
			touched = append(touched, g)
		}
		sc.groups[g] = append(sc.groups[g], rq)
	}
	sc.sat = sc.sat[:0]
	for _, g := range touched {
		span := sc.groups[g]
		sc.sat = append(sc.sat, s.submitSpan(c, g, span, sc)...)
		for i := range span {
			span[i] = nil
		}
		sc.groups[g] = span[:0]
	}
	sc.touched = touched[:0]
	return sc.sat
}

// submitSpan submits one shard's span in bulk and returns the
// saturated suffix (nil when fully admitted or rejected-on-closed).
func (s *Server) submitSpan(c *conn, shardID int, span []*request, sc *edgeScratch) []*request {
	sc.recs = sc.recs[:0]
	for _, rq := range span {
		sc.recs = append(sc.recs, &rq.op)
	}
	n, err := s.router.Shard(shardID).SubmitAll(sc.recs)
	if n > 0 {
		s.accepted.Add(int64(n))
	}
	rest := span[n:]
	if len(rest) == 0 {
		return nil
	}
	if err == sched.ErrPumpClosed {
		s.rejectAll(c, rest)
		return nil
	}
	return rest
}

// submitBatch pushes this ingest's pump-bound operations into their
// target shards in bulk. A saturated shard parks its unadmitted suffix
// in c.pending (the conn is already read-paused by ingest or is paused
// here) to be retried by completions and the sweep; a closed pump
// rejects it.
func (s *Server) submitBatch(c *conn, sc *edgeScratch) {
	sat := s.submitSpans(c, sc.subs, sc)
	if len(sat) == 0 {
		return
	}
	c.mu.Lock()
	if c.state.Load() != connOpen {
		// Evicted while we were submitting: the admitted prefix drains
		// through the pumps; the rest retires without responses.
		c.mu.Unlock()
		s.retireAbandoned(c, sat)
		return
	}
	c.pending = append(c.pending, sat...)
	c.paused = true
	c.setReadInterestLocked(false)
	c.mu.Unlock()
	s.satAdd(c)
}

// rejectAll answers rest with FlagErr (saturation cap, shutdown),
// matching the pre-reactor park-timeout semantics.
func (s *Server) rejectAll(c *conn, rest []*request) {
	for _, rq := range rest {
		s.rejected.Add(1)
		s.immediate.Add(1)
		s.edge[rq.shard].rejected.Add(1)
		rq.flags = FlagErr
		c.wl.enqueue(rq)
	}
}

// retireAbandoned drops requests whose conn died before they entered
// the pump: no response is possible, the records just return to the
// pool and the refs fall away.
func (s *Server) retireAbandoned(c *conn, rqs []*request) {
	if len(rqs) == 0 {
		return
	}
	for _, rq := range rqs {
		s.edge[rq.shard].abandoned.Add(1)
		rq.payload = nil
		rq.c = nil
		s.reqPool.Put(rq)
	}
	c.mu.Lock()
	c.refs -= len(rqs)
	c.mu.Unlock()
	s.maybeFinalize(c)
}

// resumeConn re-examines a parked conn on its reader goroutine: retry
// the pending pump submissions, then — if the window has room and
// nothing is pending — unpark the reader and process any stashed
// frames. sc is the caller's scratch (the loop's on the epoll path, the
// conn goroutine's on the fallback path).
func (l *rloop) resumeConn(c *conn, sc *edgeScratch) {
	s := l.s
	c.mu.Lock()
	for {
		if c.state.Load() != connOpen || !c.paused {
			c.mu.Unlock()
			return
		}
		if len(c.pending) == 0 {
			break // fall through to unpark, mu held
		}
		// Check the pending batch out of the conn before unlocking for
		// the submission: evict may run concurrently, and slice
		// ownership must be unambiguous — whoever holds it retires it.
		batch := c.pending
		c.pending = nil
		c.mu.Unlock()

		// Per-shard retry: the batch may mix shards (closed-pump
		// leftovers are rejected inside; only still-saturated ops come
		// back).
		rest := s.submitSpans(c, batch, sc)
		c.mu.Lock()
		if c.state.Load() != connOpen {
			c.mu.Unlock()
			s.retireAbandoned(c, rest)
			return
		}
		if len(rest) == 0 {
			c.pending = batch[:0]
			continue
		}
		// Still saturated: keep the remainder (copy back into the
		// checked-out array — rest may be scratch-backed) and stay
		// parked.
		c.pending = append(batch[:0], rest...)
		c.mu.Unlock()
		s.satAdd(c)
		return
	}
	// mu held, state open, pending empty: unpark if the window allows.
	if c.refs+c.outN >= s.cfg.Window || s.quitting() {
		c.mu.Unlock()
		return
	}
	c.paused = false
	c.lastFrame = obs.Now()
	c.setReadInterestLocked(true)
	c.mu.Unlock()
	// Frames stashed past the old window limit decode now; then drain
	// whatever arrived while parked.
	if s.ingest(c, nil, sc) {
		l.readable(c, sc)
	}
}

// sweepOne enforces c's clock-driven deadlines: saturation-expired
// pending ops are rejected with FlagErr (each op's clock started at
// decode), and idle reports whether the conn outlived IdleTimeout
// without a complete frame (paused conns are exempt — they are parked
// on us, not on the peer). retry reports a resume attempt is due.
func (l *rloop) sweepOne(c *conn, now int64) (idle, retry bool) {
	s := l.s
	var rejects []*request
	c.mu.Lock()
	if c.state.Load() != connOpen {
		c.mu.Unlock()
		return false, false
	}
	idle = !c.paused && s.cfg.IdleTimeout > 0 &&
		now-c.lastFrame > int64(s.cfg.IdleTimeout)
	if n := len(c.pending); n > 0 && s.cfg.SaturationTimeout > 0 {
		cut := 0
		for cut < n && time.Since(c.pending[cut].start) > s.cfg.SaturationTimeout {
			cut++
		}
		if cut > 0 {
			rejects = append(rejects, c.pending[:cut]...)
			c.pending = append(c.pending[:0], c.pending[cut:]...)
		}
	}
	retry = len(c.pending) > 0 || len(rejects) > 0
	c.mu.Unlock()
	if len(rejects) > 0 {
		s.rejectAll(c, rejects)
	}
	return idle, retry
}

// sweep enforces the clock-driven edges of the conn state machine:
// idle eviction, saturation timeouts, and (once quitting) the
// quiescent-conn close that lets the drain finish.
func (l *rloop) sweep(now int64) {
	s := l.s
	l.mu.Lock()
	l.snap = l.snap[:0]
	for c := range l.conns {
		l.snap = append(l.snap, c)
	}
	l.mu.Unlock()

	quitting := s.quitting()
	for i, c := range l.snap {
		l.snap[i] = nil
		if c.state.Load() != connOpen {
			continue
		}
		if quitting {
			l.sweepQuit(c)
			continue
		}
		idle, retry := l.sweepOne(c, now)
		if idle {
			s.evict(c, evictIdle)
			continue
		}
		if retry {
			l.resumeConn(c, &l.sc)
		}
	}
}

// sweepQuit parks a conn for shutdown: reading stops, parked
// submissions are rejected (exactly what the pre-reactor saturation
// park did at quit), and a conn with nothing in flight closes now.
// Conns with in-flight work close from the writer loop's flush when
// their last response drains.
func (l *rloop) sweepQuit(c *conn) {
	s := l.s
	c.mu.Lock()
	if c.state.Load() != connOpen {
		c.mu.Unlock()
		return
	}
	c.paused = true
	c.setReadInterestLocked(false)
	var rejects []*request
	if len(c.pending) > 0 {
		rejects = append(rejects, c.pending...)
		c.pending = c.pending[:0]
	}
	quiescent := c.refs == 0 && c.outN == 0 && len(c.outbuf) == 0
	c.mu.Unlock()
	if len(rejects) > 0 {
		s.rejectAll(c, rejects)
		return
	}
	if quiescent {
		s.evict(c, evictShutdown)
	}
}

// satAdd registers a saturation-parked conn for completion-driven
// retries (kickSaturated); the sweep is the timeout backstop.
func (s *Server) satAdd(c *conn) {
	if c.inSat.CompareAndSwap(false, true) {
		s.satMu.Lock()
		s.satConns = append(s.satConns, c)
		s.satMu.Unlock()
		s.satCount.Add(1)
	}
}

// kickSaturated is called from complete() when queue space just freed:
// every parked conn gets a resume attempt on its reader loop. The
// atomic count keeps the common (unsaturated) case to one load.
func (s *Server) kickSaturated() {
	s.satMu.Lock()
	conns := s.satConns
	s.satConns = nil
	s.satMu.Unlock()
	for _, c := range conns {
		c.inSat.Store(false)
		s.satCount.Add(-1)
		c.rl.kick(c)
	}
}

// run is the writer loop: wait for completions (or the retry tick when
// connections are write-blocked), encode everything in the intake, and
// flush each touched connection with one write syscall.
func (w *wloop) run() {
	defer w.s.srvWG.Done()
	w.timer = time.NewTimer(time.Hour)
	w.timer.Stop()
	for {
		if len(w.blocked) > 0 {
			w.timer.Reset(blockedRetry)
			select {
			case <-w.notify:
				w.timer.Stop()
			case <-w.timer.C:
			case <-w.s.edgeStop:
			}
		} else {
			select {
			case <-w.notify:
			case <-w.s.edgeStop:
			}
		}

		// Drain the intake to empty before flushing, yielding between
		// passes: a landed batch retires its strands one resumption at a
		// time, so the completions trickle in a few scheduler slices
		// apart. The yield lets the workers finish resuming the batch
		// and those responses join this sweep's writes instead of each
		// forcing its own syscall. The loop is bounded — encoding does
		// not release window slots, so at most conns x Window responses
		// can accumulate before a flush is the only way forward.
		for empty := 0; empty < 2; {
			w.mu.Lock()
			batch := w.intake
			w.intake = w.spare[:0]
			w.spare = batch
			w.mu.Unlock()
			if len(batch) == 0 {
				empty++
			} else {
				empty = 0
				for i, rq := range batch {
					w.encode(rq)
					batch[i] = nil
				}
			}
			runtime.Gosched()
		}

		now := obs.Now()
		for i, c := range w.dirty {
			w.flush(c, now)
			w.dirty[i] = nil
		}
		w.dirty = w.dirty[:0]
		w.retryBlocked(now)

		if w.s.edgeStopped() && len(w.blocked) == 0 && !w.pendingIntake() {
			return
		}
	}
}

func (w *wloop) pendingIntake() bool {
	w.mu.Lock()
	n := len(w.intake)
	w.mu.Unlock()
	return n > 0
}

// encode serializes one finished request into its conn's output buffer
// (or discards it if the conn died) and retires the record. The window
// slot moves from refs to outN; it is released when the bytes drain.
func (w *wloop) encode(rq *request) {
	c := rq.c
	c.mu.Lock()
	if c.state.Load() == connOpen {
		flags := rq.flags
		if flags == 0 && rq.op.Ok {
			flags = FlagOK
		}
		resp := Response{
			ID:      rq.id,
			Flags:   flags,
			Key:     rq.op.Key,
			Res:     rq.op.Res,
			Payload: rq.payload,
		}
		if rq.echo && rq.phased {
			resp.Flags |= FlagPhases
			resp.Phases = rq.op.Phases
		}
		c.outbuf = AppendResponse(c.outbuf, resp)
		c.outN++
		c.refs--
		if !c.wdirty && !c.wblocked {
			c.wdirty = true
			w.dirty = append(w.dirty, c)
		}
		c.mu.Unlock()
	} else {
		c.refs--
		c.mu.Unlock()
		w.s.maybeFinalize(c)
	}
	w.s.completed.Add(1)
	rq.payload = nil
	rq.c = nil
	w.s.reqPool.Put(rq)
}

// flush writes c's buffered responses with as few syscalls as the
// kernel allows — one, when the socket buffer has room. A write that
// cannot complete parks the conn on the blocked list (stall clock
// running) instead of blocking the loop. A full drain releases the
// window slots, kicks the reader if it was parked on the window, and —
// during shutdown — closes a conn whose last response just left.
func (w *wloop) flush(c *conn, now int64) {
	s := w.s
	needKick := false
	drainClose := false
	c.mu.Lock()
	c.wdirty = false
	if c.state.Load() != connOpen {
		c.wblocked = false
		c.mu.Unlock()
		return
	}
	for len(c.outbuf) > 0 {
		n, again, err := c.tryWrite(c.outbuf)
		s.writeSys.Add(1)
		if n > 0 {
			if n == len(c.outbuf) {
				c.outbuf = c.outbuf[:0]
			} else {
				rem := copy(c.outbuf, c.outbuf[n:])
				c.outbuf = c.outbuf[:rem]
			}
		}
		if err != nil {
			c.mu.Unlock()
			s.evict(c, evictWriteError)
			return
		}
		if again && len(c.outbuf) > 0 {
			if c.wstart == 0 {
				c.wstart = now
			}
			if !c.wblocked {
				c.wblocked = true
				w.blocked = append(w.blocked, c)
			}
			c.mu.Unlock()
			return
		}
	}
	c.wstart = 0
	c.wblocked = false
	if c.outN > 0 {
		c.outN = 0
		if c.paused && len(c.pending) == 0 {
			needKick = true
		}
	}
	if s.quitting() && c.refs == 0 && len(c.pending) == 0 {
		drainClose = true
	}
	c.mu.Unlock()
	if needKick && !drainClose {
		c.rl.kick(c)
	}
	if drainClose {
		s.evict(c, evictShutdown)
	}
}

// retryBlocked re-attempts every write-blocked conn and evicts the ones
// whose stall outlived WriteStallTimeout — reclaiming their window
// slots without their loop-mates ever waiting on them.
func (w *wloop) retryBlocked(now int64) {
	if len(w.blocked) == 0 {
		return
	}
	blocked := w.blocked
	w.blocked = w.blockedSpare[:0]
	w.blockedSpare = blocked
	stall := w.s.cfg.WriteStallTimeout
	for i, c := range blocked {
		blocked[i] = nil
		c.mu.Lock()
		if c.state.Load() != connOpen || !c.wblocked {
			c.wblocked = false
			c.mu.Unlock()
			continue
		}
		if stall > 0 && c.wstart != 0 && now-c.wstart > int64(stall) {
			c.mu.Unlock()
			w.s.evict(c, evictWriteStall)
			continue
		}
		c.wblocked = false
		c.mu.Unlock()
		w.flush(c, now)
	}
}

// evict tears a connection down from any goroutine: the state flips
// under conn.mu (making every later fd operation a no-op), the socket
// closes, parked submissions retire without responses, and buffered
// output is abandoned. Operations already in the pump still complete —
// their records are discarded by the writer loop — and the conn
// finalizes when the last of them retires.
func (s *Server) evict(c *conn, reason evictReason) {
	c.mu.Lock()
	if c.state.Load() != connOpen {
		c.mu.Unlock()
		return
	}
	c.detachLocked() // platform: epoll DEL + fd map removal
	c.state.Store(connClosed)
	pend := c.pending
	c.pending = nil
	c.outbuf = nil
	c.carry = nil
	c.outN = 0
	c.refs -= len(pend)
	c.paused = true
	c.mu.Unlock()
	c.nc.Close()
	if c.resume != nil { // unblock a parked fallback reader
		select {
		case c.resume <- struct{}{}:
		default:
		}
	}
	if reason.abnormal() {
		s.evictions.Add(1)
	}
	for _, rq := range pend {
		s.edge[rq.shard].abandoned.Add(1)
		rq.payload = nil
		rq.c = nil
		s.reqPool.Put(rq)
	}
	s.maybeFinalize(c)
}

// maybeFinalize releases the conn's shutdown accounting once nothing
// references it anymore. Idempotent; called wherever refs can reach 0.
func (s *Server) maybeFinalize(c *conn) {
	c.mu.Lock()
	fin := c.state.Load() == connClosed && c.refs == 0 && !c.finalized
	if fin {
		c.finalized = true
	}
	c.mu.Unlock()
	if !fin {
		return
	}
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.curConns.Add(-1)
	s.connWG.Done()
}

// quitting reports whether Shutdown has begun.
func (s *Server) quitting() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// edgeStopped reports whether the loops may exit (every conn finalized).
func (s *Server) edgeStopped() bool {
	select {
	case <-s.edgeStop:
		return true
	default:
		return false
	}
}
