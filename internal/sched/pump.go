package sched

// This file implements the runtime's external-submission entry point,
// the bridge batcherd uses to extend implicit batching to the network
// edge. Code outside the fork-join computation (acceptor goroutines,
// auxiliary threads) cannot call Batchify directly — Batchify traps the
// *scheduler worker* that executes it, and a network reader is not a
// worker. A Pump closes the gap: submitters enqueue operation records
// into a bounded queue, and the runtime runs P long-lived "pump" core
// tasks, one resident on each worker, that poll the queue and Batchify
// each record. Concurrent network requests are thereby coalesced into
// batches by exactly the machinery of Section 4 — the pending array,
// the work-status flags, and the global batch flag — just as concurrent
// fork-join strands are. Invariants 1 and 2 hold untouched: at most one
// batch executes at a time, and a batch carries at most P operations,
// because at most P pump tasks (one per worker) can be trapped in
// Batchify at once.
//
// Backpressure falls out of the same structure. The pending array
// admits at most P in-flight operations; the Pump's bounded queue is
// the ingress buffer in front of it, and Submit fails fast with
// ErrPumpSaturated when the buffer is full, so callers (batcherd's
// connection readers) can park or shed load instead of queueing
// unboundedly.

import (
	"errors"
	"sync"
	"sync/atomic"

	"batcher/internal/obs"
)

// Pump submission errors.
var (
	// ErrPumpClosed is returned by Submit after Close: the pump is
	// draining and accepts no new operations.
	ErrPumpClosed = errors.New("sched: Submit on closed Pump")
	// ErrPumpSaturated is returned by Submit when the ingress queue is
	// at capacity. The operation was not enqueued; callers should shed
	// load or retry after completions free space.
	ErrPumpSaturated = errors.New("sched: Pump ingress queue saturated")
)

// PumpConfig configures a Pump.
type PumpConfig struct {
	// QueueCap bounds the number of submitted-but-unclaimed operations;
	// Submit returns ErrPumpSaturated beyond it. Defaults to 8×P.
	QueueCap int
	// OnDone, if non-nil, is invoked on a scheduler worker immediately
	// after an operation's batch completes, with the record's result
	// fields filled in. It must be fast and must never block (a blocked
	// OnDone stalls a scheduler worker); hand off to a channel or queue
	// with guaranteed capacity instead.
	OnDone func(*OpRecord)
	// LingerYields bounds the launch linger: a trapped pump worker
	// yields up to this many times before launching a batch, but only
	// while the ingress queue still holds backlog that sibling pumps
	// could trap on. Lingering under backlog fattens batches (crucial
	// when GOMAXPROCS is small and pumps rarely overlap by chance)
	// without costing latency when the queue is empty — an empty queue
	// skips the linger entirely, preserving the paper's immediate
	// launch. 0 means the default (4); negative disables lingering.
	//
	// The value is a *proposal*: the runtime's batch-formation policy
	// (sched.BatchPolicy) receives it as LingerYields(proposed, true)
	// and may keep, shrink, or extend it. The default policy keeps it.
	LingerYields int
}

// Pump is the safe external-submission entry point: any goroutine may
// Submit operation records, and the runtime's pump tasks feed them
// through Batchify so they batch implicitly with each other. Create
// with NewPump, start with Serve (usually on its own goroutine), stop
// with Close — which is idempotent and drains every accepted operation
// before Serve returns.
type Pump struct {
	rt  *Runtime
	cfg PumpConfig

	mu     sync.Mutex
	q      []*OpRecord // FIFO: q[head:] are the queued records
	head   int
	closed bool

	// served counts completed operations (monotonic; readable live).
	served atomic.Int64
}

// NewPump creates a pump over rt. The runtime must not be running a
// plain Run while the pump serves (Serve occupies it).
func NewPump(rt *Runtime, cfg PumpConfig) *Pump {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8 * len(rt.workers)
	}
	if cfg.LingerYields == 0 {
		cfg.LingerYields = 4
	} else if cfg.LingerYields < 0 {
		cfg.LingerYields = 0
	}
	return &Pump{rt: rt, cfg: cfg}
}

// Runtime returns the runtime this pump serves on.
func (p *Pump) Runtime() *Runtime { return p.rt }

// Submit enqueues op for implicit batching and returns immediately; the
// result arrives via PumpConfig.OnDone. It never blocks: when the pump
// is saturated or closed it returns an error and the record is
// untouched. Safe for concurrent use from any goroutine. The record
// must not be reused until OnDone delivers it.
func (p *Pump) Submit(op *OpRecord) error {
	if op.DS == nil {
		panic("sched: Submit with nil OpRecord.DS")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if tr := p.rt.tracer; tr != nil {
			tr.Record(tr.ExternalRing(), obs.EvPumpReject, 2, 0)
		}
		return ErrPumpClosed
	}
	// Capacity first, then the policy's admission hook: the policy can
	// tighten admission (tenant weighting, predicted-latency shedding)
	// but never loosen the queue bound.
	depth := len(p.q) - p.head
	if depth >= p.cfg.QueueCap || !p.rt.policy.Admit(depth+1, p.cfg.QueueCap) {
		p.mu.Unlock()
		if tr := p.rt.tracer; tr != nil {
			tr.Record(tr.ExternalRing(), obs.EvPumpReject, 1, 0)
		}
		return ErrPumpSaturated
	}
	if p.rt.stampPhases {
		// PhaseAdmit: the op enters the ingress queue. Stamped inside the
		// critical section so the pump task that claims the record (under
		// this same mutex) — and everything downstream of it, including
		// the OnDone callback — observes the stamp without further
		// synchronization.
		op.Phases[obs.PhaseAdmit] = obs.Now()
	}
	p.q = append(p.q, op)
	depth = len(p.q) - p.head
	p.mu.Unlock()
	if tr := p.rt.tracer; tr != nil {
		tr.Record(tr.ExternalRing(), obs.EvPumpAdmit, int64(depth), 0)
	}
	// Publish-then-wake: the enqueue above is ordered before this load
	// of the parked count (mutex release + sequentially consistent
	// atomics), so a parking pump either re-checks after the enqueue and
	// sees the record, or parks first and is woken here.
	p.rt.idle.wake()
	return nil
}

// SubmitAll enqueues as many of ops as the ingress queue has room for,
// under one mutex acquisition and with at most one waker call — the
// bulk analogue of Submit for callers (batcherd's reactor loops) that
// decode several operations from one socket read. It returns the count
// admitted, which is a prefix of ops: the first n records are queued
// and must not be reused until OnDone delivers them; ops[n:] are
// untouched and remain the caller's to retry or reject. err is nil when
// every record was admitted, ErrPumpSaturated when the queue filled
// first, and ErrPumpClosed (with n == 0) after Close.
func (p *Pump) SubmitAll(ops []*OpRecord) (n int, err error) {
	if len(ops) == 0 {
		return 0, nil
	}
	for _, op := range ops {
		if op.DS == nil {
			panic("sched: SubmitAll with nil OpRecord.DS")
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if tr := p.rt.tracer; tr != nil {
			tr.Record(tr.ExternalRing(), obs.EvPumpReject, 2, 0)
		}
		return 0, ErrPumpClosed
	}
	free := p.cfg.QueueCap - (len(p.q) - p.head)
	n = len(ops)
	if n > free {
		n = free
	}
	// The policy's admission hook sees the depth each op would reach;
	// the first refusal truncates the admitted prefix (admission stays
	// a prefix either way, which is the SubmitAll contract). The
	// default policy admits everything — skip the per-op calls.
	if _, isDefault := p.rt.policy.(AlternatingStealPolicy); !isDefault {
		for i := 0; i < n; i++ {
			if !p.rt.policy.Admit(len(p.q)-p.head+i+1, p.cfg.QueueCap) {
				n = i
				break
			}
		}
	}
	for _, op := range ops[:n] {
		if p.rt.stampPhases {
			// PhaseAdmit, inside the critical section for the same ordering
			// reason as Submit: the claiming pump worker is ordered after
			// this store by the mutex handoff.
			op.Phases[obs.PhaseAdmit] = obs.Now()
		}
		p.q = append(p.q, op)
	}
	depth := len(p.q) - p.head
	p.mu.Unlock()
	if tr := p.rt.tracer; tr != nil {
		for i := 0; i < n; i++ {
			tr.Record(tr.ExternalRing(), obs.EvPumpAdmit, int64(depth), 0)
		}
		if n < len(ops) {
			tr.Record(tr.ExternalRing(), obs.EvPumpReject, 1, 0)
		}
	}
	if n > 0 {
		// One wake covers the whole prefix: a parking pump re-checks the
		// queue after beginPark, so it sees every record published above.
		p.rt.idle.wake()
	}
	if n < len(ops) {
		return n, ErrPumpSaturated
	}
	return n, nil
}

// Close stops admission and begins the drain: operations already
// accepted are still batched and delivered, then Serve returns. Close
// is idempotent and safe to call concurrently from any goroutine; it
// does not wait for the drain (wait on Serve for that).
func (p *Pump) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.rt.idle.wake()
}

// Depth returns the current ingress-queue depth (submitted operations
// not yet claimed by a pump task). Readable at any time.
func (p *Pump) Depth() int {
	p.mu.Lock()
	d := len(p.q) - p.head
	p.mu.Unlock()
	return d
}

// Served returns the number of completed operations. Readable at any
// time.
func (p *Pump) Served() int64 { return p.served.Load() }

// poll claims the next queued record, or reports drained=true when the
// pump is closed and the queue is empty (the pump task should return).
func (p *Pump) poll() (op *OpRecord, drained bool) {
	p.mu.Lock()
	if p.head < len(p.q) {
		op = p.q[p.head]
		p.q[p.head] = nil
		p.head++
		if p.head == len(p.q) {
			p.q = p.q[:0]
			p.head = 0
		}
		p.mu.Unlock()
		return op, false
	}
	drained = p.closed
	p.mu.Unlock()
	return nil, drained
}

// ready reports whether a pump task has a reason to run: a queued
// record or a close to acknowledge. It is the park re-check condition.
func (p *Pump) ready() bool {
	p.mu.Lock()
	r := p.closed || p.head < len(p.q)
	p.mu.Unlock()
	return r
}

// hasBacklog reports whether undelivered external work remains queued;
// it is the launch-linger condition (see PumpConfig.LingerYields).
func (p *Pump) hasBacklog() bool {
	p.mu.Lock()
	r := p.head < len(p.q)
	p.mu.Unlock()
	return r
}

// Serve runs the pump on the runtime until Close has been called and
// every accepted operation has completed. It wraps a single Runtime.Run
// whose root forks one pump task per worker, so it must not overlap
// another Run (or Serve) on the same runtime; it blocks until the drain
// finishes.
//
// Serve enables batch-panic containment for its duration: a panicking
// BOP is charged to its own group — those records come back with Err
// set to a *BatchPanicError (observable in OnDone) and BatchPanics is
// incremented — while every other operation, connection, and batch
// proceeds. A serving edge fed untrusted input must degrade per
// operation, not per process. Panics outside batch groups (a pump bug,
// a panicking OnDone) still abort and re-panic out of Serve, exactly as
// Run does.
func (p *Pump) Serve() {
	rt := p.rt
	rt.ContainBatchPanics(true)
	defer rt.ContainBatchPanics(false)
	rt.Run(func(c *Ctx) {
		n := len(rt.workers)
		if n == 1 {
			p.pumpLoop(c)
			return
		}
		c.For(0, n, 1, func(c *Ctx, _ int) { p.pumpLoop(c) })
	})
}

// pumpLoop is the body of one pump task. It polls the ingress queue and
// traps through Batchify like any core task; while the queue is empty
// it helps with *batch* work only. It deliberately never executes core
// tasks: in a serving runtime the only core tasks are sibling pump
// loops, and nesting one here (it would not return until Close) would
// serialize several pumps onto one worker's stack, shrinking achieved
// batch sizes. Unstolen sibling pumps are instead picked up by idle
// workers' main loops, whose park re-check watches core deques.
func (p *Pump) pumpLoop(c *Ctx) {
	w := c.w
	rt := w.rt
	lg := linger{backlog: p.hasBacklog}
	for {
		rt.checkAbort()
		op, drained := p.poll()
		if op != nil {
			w.idleFails = 0
			lg.budget = p.cfg.LingerYields
			c.batchify(op, &lg)
			p.served.Add(1)
			if p.cfg.OnDone != nil {
				p.cfg.OnDone(op)
			}
			continue
		}
		if drained {
			return
		}
		if t := w.batch.PopBottom(); t != nil {
			w.runTask(t)
			continue
		}
		if w.stealAndRun(true) {
			continue
		}
		if !w.spin() {
			continue
		}
		epoch := rt.idle.beginPark()
		if p.ready() || rt.aborting.Load() ||
			!w.batch.Empty() || w.victimsHaveWork(true) {
			rt.idle.cancelPark()
			continue
		}
		w.parkAndSleep(epoch)
	}
}
