package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTracerSnapshotOrdered(t *testing.T) {
	tr := NewTracer(4, 256)
	for i := 0; i < 100; i++ {
		tr.Record(i%4, EvSteal, int64(i), 0)
	}
	evs := tr.Snapshot()
	if len(evs) != 100 {
		t.Fatalf("got %d events, want 100", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("snapshot not time-ordered at %d", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len=%d want 100", tr.Len())
	}
}

// TestTracerWraparoundConcurrent hammers a small tracer from many
// goroutines — every ring wraps many times while a concurrent reader
// snapshots — and checks that (under -race) nothing races and every
// surfaced event is well-formed.
func TestTracerWraparoundConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20_000
		ringSize  = 64 // tiny: forces hundreds of wraparound laps
	)
	tr := NewTracer(3, ringSize) // fewer rings than writers: contended rings
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range tr.Snapshot() {
				if ev.Kind == EvNone || ev.Kind >= evKinds {
					t.Errorf("snapshot surfaced invalid kind %d", ev.Kind)
					return
				}
			}
		}
	}()
	var writerWG sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		writerWG.Add(1)
		go func(wi int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(wi%3, EventKind(1+i%int(evKinds-1)), int64(i), int64(wi))
			}
		}(wi)
	}
	writerWG.Wait()
	// Out-of-range rings must be redirected, not crash.
	tr.Record(99, EvPark, 0, 0)
	tr.Record(-1, EvWake, 0, 0)
	close(stop)
	readerWG.Wait()

	evs := tr.Snapshot()
	// At most ringSize events survive per ring (plus none invalid).
	if len(evs) > 3*ringSize {
		t.Fatalf("snapshot returned %d events from rings of capacity %d", len(evs), 3*ringSize)
	}
	if len(evs) == 0 {
		t.Fatal("snapshot empty after heavy traffic")
	}
	if got := tr.Len(); got != int64(writers*perWriter)+2 {
		t.Fatalf("Len=%d want %d", got, writers*perWriter+2)
	}
}

func TestTracerRecordZeroAllocs(t *testing.T) {
	tr := NewTracer(2, 128)
	got := testing.AllocsPerRun(1000, func() { tr.Record(0, EvSteal, 1, 2) })
	if got != 0 {
		t.Fatalf("Record allocates %v objects/op, want 0", got)
	}
}

func TestNilTracerRecordSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(0, EvSteal, 0, 0) // must be a no-op, not a crash
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(2, 256)
	tr.Record(0, EvBatchLaunch, 0, 0)
	tr.Record(0, EvBatchLand, 7, 1500)
	tr.Record(1, EvSteal, 0, 1)
	tr.Record(1, EvPark, 0, 0)
	tr.Record(1, EvWake, 0, 0)
	tr.Record(1, EvWake, 0, 0) // unmatched wake: must not emit a bare E
	tr.Record(1, EvPark, 0, 0) // left open: must be closed by the exporter
	tr.Record(1, EvPumpAdmit, 3, 0)
	tr.Record(1, EvPumpReject, 1, 0)
	tr.Record(0, EvPanicContained, 2, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int32   `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" || len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace missing traceEvents/displayTimeUnit")
	}
	// B/E spans must balance per track.
	depth := map[int32]int{}
	sawBatch := false
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("unbalanced E on tid %d", e.TID)
			}
		case "X":
			sawBatch = true
			if e.Dur <= 0 {
				t.Fatalf("batch span with non-positive dur %v", e.Dur)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d left %d spans open", tid, d)
		}
	}
	if !sawBatch {
		t.Fatal("no batch X span in export")
	}
}
