package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-element stddev")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7)) {
		t.Fatalf("stddev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("lo=%v hi=%v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty MinMax")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4, 16}), 4) {
		t.Fatalf("geomean = %v", GeoMean([]float64{1, 4, 16}))
	}
	if GeoMean([]float64{1, 0, 2}) != 0 {
		t.Fatal("non-positive input")
	}
}

func TestFitLinearExact(t *testing.T) {
	// y = 3*a + 5*b exactly.
	var X [][]float64
	var y []float64
	for a := 1.0; a <= 5; a++ {
		for b := 1.0; b <= 5; b++ {
			X = append(X, []float64{a, b})
			y = append(y, 3*a+5*b)
		}
	}
	fit, ok := FitLinear(X, y)
	if !ok {
		t.Fatal("fit failed")
	}
	if !almost(fit.Coef[0], 3) || !almost(fit.Coef[1], 5) {
		t.Fatalf("coef = %v", fit.Coef)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLinearWithNoise(t *testing.T) {
	var X [][]float64
	var y []float64
	noise := []float64{0.1, -0.2, 0.05, -0.1, 0.15, 0, -0.05, 0.2, -0.15, 0.1}
	for i := 0; i < 10; i++ {
		x := float64(i + 1)
		X = append(X, []float64{x, 1})
		y = append(y, 2*x+7+noise[i])
	}
	fit, ok := FitLinear(X, y)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Coef[0]-2) > 0.1 || math.Abs(fit.Coef[1]-7) > 0.5 {
		t.Fatalf("coef = %v", fit.Coef)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, ok := FitLinear(nil, nil); ok {
		t.Fatal("empty fit succeeded")
	}
	// Collinear predictors.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, ok := FitLinear(X, y); ok {
		t.Fatal("singular fit succeeded")
	}
	// Fewer rows than predictors.
	if _, ok := FitLinear([][]float64{{1, 2}}, []float64{1}); ok {
		t.Fatal("underdetermined fit succeeded")
	}
}

func TestQuickFitRecoversPlantedModel(t *testing.T) {
	f := func(seed uint8) bool {
		a := float64(seed%7) + 1
		b := float64(seed%11) + 1
		var X [][]float64
		var y []float64
		for i := 1; i <= 12; i++ {
			x1 := float64(i)
			x2 := float64(i*i%13) + 1
			X = append(X, []float64{x1, x2})
			y = append(y, a*x1+b*x2)
		}
		fit, ok := FitLinear(X, y)
		return ok && math.Abs(fit.Coef[0]-a) < 1e-6 && math.Abs(fit.Coef[1]-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 2.5)
	s := tb.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "2.5") {
		t.Fatalf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	// Aligned: all lines same prefix width for first column.
	if len(lines[0]) < len("name") {
		t.Fatal("bad header")
	}
}
