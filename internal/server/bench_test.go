package server_test

import (
	"fmt"
	"testing"
	"time"

	"batcher/internal/loadgen"
	"batcher/internal/sched"
	"batcher/internal/sched/policy"
	"batcher/internal/server"
)

// BenchmarkServerLoopback measures end-to-end serving throughput over
// loopback TCP at increasing connection counts, with the achieved mean
// batch size reported alongside — the connection sweep shows edge
// batching kicking in as concurrency grows.
func BenchmarkServerLoopback(b *testing.B) {
	for _, conns := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			s, err := server.Start(server.Config{Workers: 4, Seed: 42})
			if err != nil {
				b.Fatalf("Start: %v", err)
			}
			defer s.Shutdown()

			ops := b.N / conns
			if ops == 0 {
				ops = 1
			}
			b.ResetTimer()
			res, err := loadgen.Run(loadgen.Workload{
				Addr:     s.Addr().String(),
				Conns:    conns,
				Ops:      ops,
				Window:   8,
				DS:       server.DSSkiplist,
				ReadFrac: 0.5,
				KeySpace: 1 << 14,
				Seed:     42,
			})
			b.StopTimer()
			if err != nil {
				b.Fatalf("loadgen: %v", err)
			}
			if res.Errors != 0 {
				b.Fatalf("%d ops rejected", res.Errors)
			}
			st := s.Snapshot()
			b.ReportMetric(st.MeanBatch, "batch-size")
			b.ReportMetric(res.OpsPerSec, "ops/s")
			b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
			// Syscall amortization: ops per socket syscall on each side
			// of the edge. Counter reads are free, so -short runs record
			// them too.
			if n := float64(res.Responses); n > 0 {
				b.ReportMetric(float64(st.ReadSyscalls)/n, "rsys/op")
				b.ReportMetric(float64(st.WriteSyscalls)/n, "wsys/op")
			}
		})
	}
}

// BenchmarkServerHighFanIn is the reactor's figure of merit: per-op
// cost as fan-in grows from 4 to 1024 connections. Connections are
// pre-dialed by a loadgen.Driver so the timed region is pure
// steady-state serving — the flat-cost claim is that ns/op at 256
// conns stays within 1.5x of 4 conns, and allocs/op stays in low
// single digits (the nightly benchcmp gate holds both). Alloc counts
// include the in-process client, which runs allocation-free at steady
// state on its timestamp rings.
func BenchmarkServerHighFanIn(b *testing.B) {
	for _, conns := range []int{4, 64, 256, 1024} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			// QueueCap is sized to the offered load (up to 1024 conns x 16
			// in flight): the default 8xP queue would park nearly every op
			// in the saturation path and the bench would measure parking,
			// not the edge.
			s, err := server.Start(server.Config{Workers: 4, Seed: 43, QueueCap: 4096})
			if err != nil {
				b.Fatalf("Start: %v", err)
			}
			defer s.Shutdown()
			d, err := loadgen.NewDriver(loadgen.Workload{
				Addr:     s.Addr().String(),
				Conns:    conns,
				Pipeline: 16,
				DS:       server.DSHashmap,
				ReadFrac: 0.5,
				KeySpace: 1 << 14,
				Seed:     43,
			})
			if err != nil {
				b.Fatalf("NewDriver: %v", err)
			}
			defer d.Close()
			// Warm pools, outbufs, and the pump queue before timing.
			if _, err := d.Run(conns * 4); err != nil {
				b.Fatalf("warmup: %v", err)
			}

			before := s.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			res, err := d.Run(b.N)
			b.StopTimer()
			if err != nil {
				b.Fatalf("driver: %v", err)
			}
			if res.Errors != 0 {
				b.Fatalf("%d ops rejected", res.Errors)
			}
			st := s.Snapshot()
			b.ReportMetric(st.MeanBatch, "batch-size")
			b.ReportMetric(res.OpsPerSec, "ops/s")
			b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
			if n := float64(res.Responses); n > 0 {
				b.ReportMetric(float64(st.ReadSyscalls-before.ReadSyscalls)/n, "rsys/op")
				b.ReportMetric(float64(st.WriteSyscalls-before.WriteSyscalls)/n, "wsys/op")
			}
		})
	}
}

// BenchmarkServerSharded sweeps shard count at fixed fan-in (256
// pre-dialed connections) under uniform and zipfian key distributions.
// shards=1 is the regression anchor: the router fast path must keep it
// within 1.5x of the unsharded HighFanIn numbers (nightly benchcmp
// gate). Higher shard counts show what per-shard admission buys — or
// costs — on this box; on the 1-CPU CI machine the interesting figure
// is the flat per-op overhead of span grouping, not parallel speedup.
func BenchmarkServerSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		for _, dist := range []string{"uniform", "zipf"} {
			b.Run(fmt.Sprintf("shards=%d/dist=%s", shards, dist), func(b *testing.B) {
				// QueueCap is per shard; keep aggregate admission capacity
				// constant across the sweep so saturation parking does not
				// vary with the shard count.
				s, err := server.Start(server.Config{
					Workers:  2,
					Seed:     47,
					Shards:   shards,
					QueueCap: 4096 / shards,
				})
				if err != nil {
					b.Fatalf("Start: %v", err)
				}
				defer s.Shutdown()
				d, err := loadgen.NewDriver(loadgen.Workload{
					Addr:     s.Addr().String(),
					Conns:    256,
					Pipeline: 16,
					DS:       server.DSHashmap,
					ReadFrac: 0.5,
					KeySpace: 1 << 14,
					KeyDist:  dist,
					Seed:     47,
				})
				if err != nil {
					b.Fatalf("NewDriver: %v", err)
				}
				defer d.Close()
				if _, err := d.Run(256 * 4); err != nil {
					b.Fatalf("warmup: %v", err)
				}

				b.ReportAllocs()
				b.ResetTimer()
				res, err := d.Run(b.N)
				b.StopTimer()
				if err != nil {
					b.Fatalf("driver: %v", err)
				}
				if res.Errors != 0 {
					b.Fatalf("%d ops rejected", res.Errors)
				}
				st := s.Snapshot()
				b.ReportMetric(st.MeanBatch, "batch-size")
				b.ReportMetric(res.OpsPerSec, "ops/s")
				b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
			})
		}
	}
}

// BenchmarkServerPolicy sweeps the batch-formation policy at fixed
// fan-in (64 pre-dialed connections, pipeline 16): the same serving
// stack, only the launch decision changes. policy=default is the
// regression anchor — the seam itself must be free, so its numbers
// track BenchmarkServerHighFanIn/conns=64 (nightly benchcmp gates
// every policy's row). The batch-size metric is the policy's visible
// effect: size-cap trades it down for latency, deadline trades it up.
func BenchmarkServerPolicy(b *testing.B) {
	for _, name := range []string{"default", "size-cap", "deadline"} {
		b.Run("policy="+name, func(b *testing.B) {
			pol, err := policy.ByName(name, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			s, err := server.Start(server.Config{
				Workers:  4,
				Seed:     51,
				QueueCap: 4096,
				Policy:   pol,
			})
			if err != nil {
				b.Fatalf("Start: %v", err)
			}
			defer s.Shutdown()
			d, err := loadgen.NewDriver(loadgen.Workload{
				Addr:     s.Addr().String(),
				Conns:    64,
				Pipeline: 16,
				DS:       server.DSHashmap,
				ReadFrac: 0.5,
				KeySpace: 1 << 14,
				Seed:     51,
			})
			if err != nil {
				b.Fatalf("NewDriver: %v", err)
			}
			defer d.Close()
			if _, err := d.Run(64 * 4); err != nil {
				b.Fatalf("warmup: %v", err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			res, err := d.Run(b.N)
			b.StopTimer()
			if err != nil {
				b.Fatalf("driver: %v", err)
			}
			if res.Errors != 0 {
				b.Fatalf("%d ops rejected", res.Errors)
			}
			st := s.Snapshot()
			b.ReportMetric(st.MeanBatch, "batch-size")
			b.ReportMetric(res.OpsPerSec, "ops/s")
			b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkServerBatchDelay measures the phase-attribution round trip:
// requests carry OpFlagPhases, responses echo the stamp vector, and the
// reported metrics decompose client-visible latency into the paper's
// batch-delay term (pending-array arrival to batch landing) and its
// tail. It also keeps the phased serving path itself on the nightly
// perf gate — the trailer encode/decode and the per-op histogram
// observations are all inside the timed region.
func BenchmarkServerBatchDelay(b *testing.B) {
	const conns = 16
	s, err := server.Start(server.Config{Workers: 4, Seed: 42})
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	defer s.Shutdown()

	ops := b.N / conns
	if ops == 0 {
		ops = 1
	}
	b.ResetTimer()
	res, err := loadgen.Run(loadgen.Workload{
		Addr:     s.Addr().String(),
		Conns:    conns,
		Ops:      ops,
		Window:   8,
		DS:       server.DSSkiplist,
		ReadFrac: 0.5,
		KeySpace: 1 << 14,
		Seed:     42,
		Phases:   true,
	})
	b.StopTimer()
	if err != nil {
		b.Fatalf("loadgen: %v", err)
	}
	if res.Errors != 0 {
		b.Fatalf("%d ops rejected", res.Errors)
	}
	if res.BatchDelay == nil || res.BatchDelay.Count() == 0 {
		b.Fatal("no batch-delay observations echoed")
	}
	b.ReportMetric(res.OpsPerSec, "ops/s")
	b.ReportMetric(float64(res.BatchDelay.Quantile(0.99)), "delay-p99-ns")
	b.ReportMetric(res.BatchDelay.Mean(), "delay-mean-ns")
}

// BenchmarkServerConformance prices the always-on conformance monitor
// on the hot serving path. The monitor attaches unconditionally at
// Start, so this is the ordinary pipelined loopback workload with the
// land-path RecordBatch (clock reads, min-pending scan, landings ring
// walk) inside the timed region; the nightly 1.5x gate on this bench
// is what keeps "always-on" honest if the monitor ever grows a cost.
// The reported gauges double as a liveness check that the monitor
// actually saw the run.
func BenchmarkServerConformance(b *testing.B) {
	const conns = 16
	s, err := server.Start(server.Config{Workers: 4, Seed: 44})
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	defer s.Shutdown()

	ops := b.N / conns
	if ops == 0 {
		ops = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := loadgen.Run(loadgen.Workload{
		Addr:     s.Addr().String(),
		Conns:    conns,
		Ops:      ops,
		Window:   8,
		DS:       server.DSSkiplist,
		ReadFrac: 0.5,
		KeySpace: 1 << 14,
		Seed:     44,
	})
	b.StopTimer()
	if err != nil {
		b.Fatalf("loadgen: %v", err)
	}
	if res.Errors != 0 {
		b.Fatalf("%d ops rejected", res.Errors)
	}
	st := s.Snapshot()
	if st.ConformMaxLandings == 0 || st.ConformHeadroom <= 0 {
		b.Fatal("conformance monitor recorded nothing")
	}
	b.ReportMetric(res.OpsPerSec, "ops/s")
	b.ReportMetric(st.ConformHeadroom, "headroom")
	b.ReportMetric(float64(st.ConformMaxLandings), "max-landings")
}

// BenchmarkServerOverload measures the serving edge past saturation.
// The hashmap's batch cost is inflated to a known 50µs (as in the
// brownout tests) so capacity is fixed at shards × workers/cost =
// 80k ops/s, and 64 pre-dialed connections oversubscribe it with 2x
// and 10x closed-loop in-flight load — with admission control off
// (every excess op takes the saturation-park path) and on (the twin
// sheds the excess at the edge with a fast FlagErr). The admit=off
// rows price the pre-twin brownout behavior; admit=on must stay
// within the nightly 1.5x gate of them — shedding is only worth
// shipping if saying "no" costs less than parking. The shed-frac
// metric reports how much of the offered load the controller
// refused; errors are expected there, not a failure.
func BenchmarkServerOverload(b *testing.B) {
	for _, load := range []struct {
		name     string
		pipeline int
	}{{"2x", 4}, {"10x", 20}} {
		for _, admit := range []struct {
			name string
			slo  time.Duration
		}{{"off", 0}, {"on", 2 * time.Millisecond}} {
			b.Run(fmt.Sprintf("load=%s/admit=%s", load.name, admit.name), func(b *testing.B) {
				s, err := server.Start(server.Config{
					Workers:  2,
					Shards:   2,
					Seed:     53,
					QueueCap: 64,
					Window:   256,
					SLO:      admit.slo,
					WrapDS: func(_ int, ds uint8, inner sched.Batched) sched.Batched {
						if ds == server.DSHashmap {
							return &slowBatched{inner: inner, delay: 50 * time.Microsecond}
						}
						return inner
					},
				})
				if err != nil {
					b.Fatalf("Start: %v", err)
				}
				defer s.Shutdown()
				d, err := loadgen.NewDriver(loadgen.Workload{
					Addr:     s.Addr().String(),
					Conns:    64,
					Pipeline: load.pipeline,
					DS:       server.DSHashmap,
					ReadFrac: 0.5,
					KeySpace: 1 << 14,
					Seed:     53,
				})
				if err != nil {
					b.Fatalf("NewDriver: %v", err)
				}
				defer d.Close()
				// Warmup doubles as fitter priming when admission is on:
				// the sampler ticks every 10ms and needs several batch
				// samples plus the rate EWMA ramp before it limits, so
				// keep offering load for ~100ms rather than one round.
				for start := time.Now(); time.Since(start) < 100*time.Millisecond; {
					if _, err := d.Run(64 * 20); err != nil {
						b.Fatalf("warmup: %v", err)
					}
				}

				b.ReportAllocs()
				b.ResetTimer()
				res, err := d.Run(b.N)
				b.StopTimer()
				if err != nil {
					b.Fatalf("driver: %v", err)
				}
				if admit.slo == 0 && res.Errors != 0 {
					b.Fatalf("%d ops rejected with admission off", res.Errors)
				}
				st := s.Snapshot()
				b.ReportMetric(res.OpsPerSec, "ops/s")
				b.ReportMetric(float64(res.Errors)/float64(res.Responses), "shed-frac")
				b.ReportMetric(st.MeanBatch, "batch-size")
				b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
			})
		}
	}
}
