package tree23

import (
	"sort"
	"testing"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func runOn(p int, f func(c *sched.Ctx)) {
	rt := sched.New(sched.Config{Workers: p, Seed: 7})
	rt.Run(f)
}

func TestBatchedInsertBasic(t *testing.T) {
	b := NewBatched()
	runOn(2, func(c *sched.Ctx) {
		if !b.Insert(c, 1, 10) {
			t.Error("insert not new")
		}
		if b.Insert(c, 1, 11) {
			t.Error("dup insert new")
		}
		v, ok := b.Contains(c, 1)
		if !ok || v != 11 {
			t.Errorf("Contains = %d,%v", v, ok)
		}
	})
	if err := b.Tree().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedParallelInserts(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		b := NewBatched()
		const n = 3000
		newFlags := make([]bool, n)
		runOn(p, func(c *sched.Ctx) {
			c.For(0, n, 1, func(cc *sched.Ctx, i int) {
				newFlags[i] = b.Insert(cc, int64(i*13%n), int64(i))
			})
		})
		// gcd(13, 3000) = 1 so all keys distinct.
		for i, f := range newFlags {
			if !f {
				t.Fatalf("P=%d: insert %d not reported new", p, i)
			}
		}
		if b.Tree().Len() != n {
			t.Fatalf("P=%d: Len = %d", p, b.Tree().Len())
		}
		if err := b.Tree().checkInvariants(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestBatchedDuplicateHeavy(t *testing.T) {
	// The paper's motivating hard case: all inserts hit the same few keys.
	b := NewBatched()
	const n = 2000
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			b.Insert(cc, int64(i%5), int64(i))
		})
	})
	if b.Tree().Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Tree().Len())
	}
	if err := b.Tree().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedIdenticalKeys(t *testing.T) {
	// "inserting P identical keys" — the exact scenario Section 3 calls
	// out as the main challenge for concurrent search trees.
	b := NewBatched()
	news := make([]bool, 64)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, 64, 1, func(cc *sched.Ctx, i int) {
			news[i] = b.Insert(cc, 42, int64(i))
		})
	})
	newCount := 0
	for _, f := range news {
		if f {
			newCount++
		}
	}
	if newCount != 1 {
		t.Fatalf("%d inserts of the same key reported new, want 1", newCount)
	}
	if b.Tree().Len() != 1 {
		t.Fatalf("Len = %d", b.Tree().Len())
	}
}

func TestBatchedInsertMany(t *testing.T) {
	b := NewBatched()
	const groups, per = 40, 50
	counts := make([]int, groups)
	runOn(4, func(c *sched.Ctx) {
		c.For(0, groups, 1, func(cc *sched.Ctx, g int) {
			keys := make([]int64, per)
			for i := range keys {
				keys[i] = int64(g*per + i)
			}
			counts[g] = b.InsertMany(cc, keys, 1)
		})
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != groups*per {
		t.Fatalf("new = %d, want %d", total, groups*per)
	}
	if b.Tree().Len() != groups*per {
		t.Fatalf("Len = %d", b.Tree().Len())
	}
	if err := b.Tree().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedDeletes(t *testing.T) {
	b := NewBatched()
	const n = 2000
	runOn(4, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Insert(cc, int64(i), 0) })
	})
	oks := make([]bool, n)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			if i%3 == 0 {
				oks[i] = b.Delete(cc, int64(i))
			}
		})
	})
	for i := 0; i < n; i += 3 {
		if !oks[i] {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	want := n - (n+2)/3
	if b.Tree().Len() != want {
		t.Fatalf("Len = %d, want %d", b.Tree().Len(), want)
	}
	if err := b.Tree().checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range b.Tree().Keys() {
		if k%3 == 0 {
			t.Fatalf("key %d survived", k)
		}
	}
}

func TestBatchedDeleteAbsentAndDup(t *testing.T) {
	b := NewBatched()
	runOn(4, func(c *sched.Ctx) {
		b.Insert(c, 10, 0)
	})
	oks := make([]bool, 8)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, 8, 1, func(cc *sched.Ctx, i int) {
			oks[i] = b.Delete(cc, 10) // all delete the same key
		})
	})
	okCount := 0
	for _, ok := range oks {
		if ok {
			okCount++
		}
	}
	if okCount != 1 {
		t.Fatalf("%d deletes of one key succeeded", okCount)
	}
	if b.Tree().Len() != 0 {
		t.Fatalf("Len = %d", b.Tree().Len())
	}
}

func TestBatchedSequentialChainAgainstOracle(t *testing.T) {
	b := NewBatched()
	m := map[int64]int64{}
	r := rng.New(91)
	runOn(4, func(c *sched.Ctx) {
		for i := 0; i < 4000; i++ {
			k := r.Int63() % 400
			switch r.Intn(3) {
			case 0:
				_, existed := m[k]
				if b.Insert(c, k, int64(i)) == existed {
					t.Fatalf("op %d: insert(%d) mismatch", i, k)
				}
				m[k] = int64(i)
			case 1:
				wv, wok := m[k]
				gv, gok := b.Contains(c, k)
				if gok != wok || (wok && gv != wv) {
					t.Fatalf("op %d: contains(%d) mismatch", i, k)
				}
			case 2:
				_, existed := m[k]
				if b.Delete(c, k) != existed {
					t.Fatalf("op %d: delete(%d) mismatch", i, k)
				}
				delete(m, k)
			}
		}
	})
	if b.Tree().Len() != len(m) {
		t.Fatalf("Len = %d want %d", b.Tree().Len(), len(m))
	}
	if err := b.Tree().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedMatchesSequentialFinalSet(t *testing.T) {
	r := rng.New(123)
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = r.Int63() % 20000
	}
	seq := NewTree()
	for _, k := range keys {
		seq.Insert(k, k)
	}
	b := NewBatched()
	runOn(8, func(c *sched.Ctx) {
		c.For(0, len(keys), 1, func(cc *sched.Ctx, i int) {
			b.Insert(cc, keys[i], keys[i])
		})
	})
	sk, bk := seq.Keys(), b.Tree().Keys()
	if len(sk) != len(bk) {
		t.Fatalf("len %d vs %d", len(sk), len(bk))
	}
	for i := range sk {
		if sk[i] != bk[i] {
			t.Fatalf("key %d: %d vs %d", i, sk[i], bk[i])
		}
	}
	if err := b.Tree().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedMixedConservation(t *testing.T) {
	b := NewBatched()
	const n = 1500
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			k := int64(i % 250)
			switch i % 3 {
			case 0:
				b.Insert(cc, k, int64(i))
			case 1:
				b.Contains(cc, k)
			case 2:
				b.Delete(cc, k)
			}
		})
	})
	if err := b.Tree().checkInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := b.Tree().Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("unsorted")
	}
	for _, k := range keys {
		if k < 0 || k >= 250 {
			t.Fatalf("impossible key %d", k)
		}
	}
}
