module batcher

go 1.24
