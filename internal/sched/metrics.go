package sched

import "fmt"

// WorkerMetrics are per-worker event counters. Each worker's counters are
// written only by that worker's goroutine, so they need no atomics; read
// them only after Run returns (via Runtime.Metrics).
type WorkerMetrics struct {
	// TasksRun counts task invocations (core and batch).
	TasksRun int64
	// OpsSubmitted counts Batchify calls made by this worker.
	OpsSubmitted int64
	// BatchesLaunched counts successful launch CASes by this worker.
	BatchesLaunched int64
	// BatchesExecuted counts LaunchBatch bodies that ran on this worker
	// and carried a nonempty working set.
	BatchesExecuted int64
	// BatchedOps sums working-set sizes over BatchesExecuted.
	BatchedOps int64
	// FreeStealAttempts counts steal attempts made while free.
	FreeStealAttempts int64
	// TrappedStealAttempts counts steal attempts made while trapped.
	TrappedStealAttempts int64
	// SuccessfulSteals counts attempts that obtained a task.
	SuccessfulSteals int64
	// FailedSteals counts attempts that found nothing (or lost a race).
	FailedSteals int64
	// Parks counts times this worker parked after exhausting its idle
	// spin budget (see the waker in waker.go).
	Parks int64
}

// Metrics aggregates WorkerMetrics across workers.
type Metrics struct {
	WorkerMetrics
	// Workers is P.
	Workers int
}

func (m *Metrics) add(wm *WorkerMetrics) {
	m.TasksRun += wm.TasksRun
	m.OpsSubmitted += wm.OpsSubmitted
	m.BatchesLaunched += wm.BatchesLaunched
	m.BatchesExecuted += wm.BatchesExecuted
	m.BatchedOps += wm.BatchedOps
	m.FreeStealAttempts += wm.FreeStealAttempts
	m.TrappedStealAttempts += wm.TrappedStealAttempts
	m.SuccessfulSteals += wm.SuccessfulSteals
	m.FailedSteals += wm.FailedSteals
	m.Parks += wm.Parks
}

// MeanBatchSize returns the average number of operations per executed
// batch, or 0 if no batches ran.
func (m *Metrics) MeanBatchSize() float64 {
	if m.BatchesExecuted == 0 {
		return 0
	}
	return float64(m.BatchedOps) / float64(m.BatchesExecuted)
}

// String renders the metrics in a compact single line, suitable for
// experiment logs.
func (m *Metrics) String() string {
	return fmt.Sprintf(
		"P=%d tasks=%d ops=%d batches=%d meanBatch=%.2f steals(free=%d trapped=%d ok=%d fail=%d) parks=%d",
		m.Workers, m.TasksRun, m.OpsSubmitted, m.BatchesExecuted,
		m.MeanBatchSize(), m.FreeStealAttempts, m.TrappedStealAttempts,
		m.SuccessfulSteals, m.FailedSteals, m.Parks)
}

// Metrics returns counters aggregated across workers. Call only while no
// Run is in progress.
func (rt *Runtime) Metrics() Metrics {
	if rt.running.Load() {
		panic("sched: Metrics called during Run")
	}
	m := Metrics{Workers: len(rt.workers)}
	for _, w := range rt.workers {
		m.add(&w.m)
	}
	return m
}

// LiveBatchStats returns the number of executed batches and the total
// operations they contained, over the runtime's lifetime. Unlike
// Metrics it is safe to call at any time — including while a Run or
// Pump.Serve is in progress — because the counters are atomics bumped
// once per batch (stats endpoints read them while serving).
func (rt *Runtime) LiveBatchStats() (batches, ops int64) {
	return rt.liveBatches.Load(), rt.liveOps.Load()
}

// ResetMetrics zeroes all worker counters. Call only while no Run is in
// progress.
func (rt *Runtime) ResetMetrics() {
	if rt.running.Load() {
		panic("sched: ResetMetrics called during Run")
	}
	for _, w := range rt.workers {
		w.m = WorkerMetrics{}
	}
}
