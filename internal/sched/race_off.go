//go:build !race

package sched

// raceEnabled reports whether the race detector is compiled in. Alloc
// regression tests skip under -race: instrumentation changes allocation
// behavior in ways that are not regressions.
const raceEnabled = false
