package experiments

import (
	"batcher/internal/sim"
	"batcher/internal/simds"
	"batcher/internal/stats"
)

// Intro reproduces the paper's introduction argument (EX-intro): n
// accesses to a conventional concurrent structure whose operations
// contend — a fetch-and-add counter, or a search tree whose updates CAS
// shared nodes — take Ω(n) time regardless of P, while the same program
// over the implicitly batched structure speeds up with P.
//
// Both sides run in the same simulator on the same core program; only
// the data-structure execution mode differs (Direct contended execution
// vs. implicit batching).

// IntroRow is one (P) point of the comparison.
type IntroRow struct {
	Workers int
	// ConcurrentCounter / BatchedCounter are makespans for n increments.
	ConcurrentCounter int64
	BatchedCounter    int64
	// ConcurrentTree / BatchedTree are makespans for n tree inserts.
	ConcurrentTree int64
	BatchedTree    int64
}

// IntroResult holds the series.
type IntroResult struct {
	Calls, RecordsPer int
	Rows              []IntroRow
}

// Intro runs the comparison.
func Intro(calls, recordsPer int, workers []int, seed uint64) IntroResult {
	res := IntroResult{Calls: calls, RecordsPer: recordsPer}
	build := func() *sim.Graph {
		g := sim.NewGraph(calls * 4)
		ops := make([]*sim.Op, calls)
		for i := range ops {
			ops[i] = &sim.Op{Records: recordsPer}
		}
		g.ForkJoinDS(ops, 1, 1)
		return g
	}
	const treeSize = 1 << 20
	for _, p := range workers {
		row := IntroRow{Workers: p}
		row.ConcurrentCounter = sim.NewSim(sim.Config{
			Workers: p, Seed: seed, Direct: simds.ContendedCounter{},
		}, nil).Run(build()).Makespan
		row.BatchedCounter = sim.NewSim(sim.Config{Workers: p, Seed: seed},
			simds.Counter{}).Run(build()).Makespan
		row.ConcurrentTree = sim.NewSim(sim.Config{
			Workers: p, Seed: seed, Direct: &simds.ContendedTree{Size: treeSize, Contention: 4},
		}, nil).Run(build()).Makespan
		row.BatchedTree = sim.NewSim(sim.Config{Workers: p, Seed: seed},
			&simds.Tree{Size: treeSize}).Run(build()).Makespan
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders the series.
func (r IntroResult) Table() *stats.Table {
	t := stats.NewTable("P", "concurrent ctr", "BATCHER ctr", "concurrent tree", "BATCHER tree")
	for _, row := range r.Rows {
		t.AddRow(row.Workers, row.ConcurrentCounter, row.BatchedCounter,
			row.ConcurrentTree, row.BatchedTree)
	}
	return t
}

// ShapeChecks verifies the introduction's claims.
func (r IntroResult) ShapeChecks() []Check {
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	n := int64(r.Calls * r.RecordsPer)
	ccSpeedup := float64(first.ConcurrentCounter) / float64(last.ConcurrentCounter)
	bcSpeedup := float64(first.BatchedCounter) / float64(last.BatchedCounter)
	ctSpeedup := float64(first.ConcurrentTree) / float64(last.ConcurrentTree)
	btSpeedup := float64(first.BatchedTree) / float64(last.BatchedTree)
	return []Check{
		{
			Name:   "intro: contended counter stays Ω(n) at max P",
			Pass:   last.ConcurrentCounter >= n,
			Detail: fmtCheck("makespan %d >= n = %d at P=%d", last.ConcurrentCounter, n, last.Workers),
		},
		{
			Name: "intro: batching speeds the counter up; contention does not",
			Pass: bcSpeedup > 2 && bcSpeedup > 2*ccSpeedup,
			Detail: fmtCheck("speedup@P=%d: batched %.2fx vs concurrent %.2fx",
				last.Workers, bcSpeedup, ccSpeedup),
		},
		{
			Name: "intro: batched tree outscales the contended tree",
			Pass: btSpeedup > 2 && btSpeedup > 1.5*ctSpeedup,
			Detail: fmtCheck("speedup@P=%d: batched %.2fx vs concurrent %.2fx",
				last.Workers, btSpeedup, ctSpeedup),
		},
		{
			Name:   "intro: batched tree beats contended tree outright at max P",
			Pass:   last.BatchedTree < last.ConcurrentTree,
			Detail: fmtCheck("%d vs %d timesteps", last.BatchedTree, last.ConcurrentTree),
		},
	}
}
