package server_test

// The live-conformance chaos witness (DESIGN.md §16): a 4-shard server
// with admission control runs a mixed warm-up + sustained closed-loop
// phase, and afterwards every shard's always-on conformance monitor
// must report the theory intact — Lemma 2 landings at most 2, zero
// envelope violations, Theorem 5.4 headroom at most 1.0 — while the
// twin-residual telemetry stays finite and the /debug/admission flight
// recorder holds real decisions. The name's TestChaos prefix enrolls
// it in the CI chaos matrix (ci.yml runs it under every
// BATCHERD_POLICY), so the conformance claims are checked across the
// policy matrix, not just the default launch rule.

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"batcher/internal/loadgen"
	"batcher/internal/server"
)

func TestChaosConformanceEnvelope(t *testing.T) {
	ops := 600
	if testing.Short() {
		ops = 200
	}
	// Small but real per-batch cost: the fitters can recover the curve,
	// so the twin makes nonzero predictions and residual pairing runs.
	s := brownoutServer(t, 4, 500*time.Millisecond, 500*time.Microsecond)
	defer s.Shutdown()
	addr := s.Addr().String()

	// Warm-up primes each shard's fitter under capacity (uniform keys
	// reach all four shards), exactly as the brownout witness does.
	warm, err := loadgen.Run(loadgen.Workload{
		Addr: addr, Conns: 2, Ops: 60, RatePerSec: 400,
		DS: server.DSHashmap, KeySpace: 1 << 14, Seed: 2101,
	})
	if err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if warm.Errors != 0 {
		t.Fatalf("warm-up shed %d ops under capacity", warm.Errors)
	}

	// Sustained closed-loop pressure: windowed pipelining keeps every
	// shard's pump busy so batches form, land, and the monitors see a
	// dense stream of spans and gaps.
	res, err := loadgen.Run(loadgen.Workload{
		Addr: addr, Conns: 8, Ops: ops, Window: 16,
		DS: server.DSHashmap, KeySpace: 1 << 14, Seed: 2102,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Responses != res.Sent {
		t.Fatalf("responses %d != sent %d", res.Responses, res.Sent)
	}

	// Snapshot while the windows are still warm (default window 10s).
	st := s.Snapshot()
	if got := len(st.PerShard); got != 4 {
		t.Fatalf("PerShard has %d entries, want 4", got)
	}
	var busyShards int
	var wantHeadroom float64
	var wantLandings int64
	for _, ss := range st.PerShard {
		c := ss.Conformance
		if c.Batches == 0 {
			continue // an idle shard has nothing to conform to
		}
		busyShards++
		// Lemma 2: no op waited through more than two landings, and the
		// lifetime violation counter (which never rotates out) is clean.
		if c.MaxLandings < 1 || c.MaxLandings > 2 {
			t.Errorf("shard %d max_landings = %d, want 1..2 (Lemma 2)", ss.Shard, c.MaxLandings)
		}
		if c.Violations != 0 {
			t.Errorf("shard %d recorded %d envelope violations", ss.Shard, c.Violations)
		}
		// Theorem 5.4: measured windowed batch-delay max within the
		// 2·(span+gap) envelope.
		if c.Headroom <= 0 || c.Headroom > 1.0 {
			t.Errorf("shard %d headroom = %v, want in (0, 1.0] (Theorem 5.4)", ss.Shard, c.Headroom)
		}
		if c.SpanMaxNS <= 0 || c.DelayMaxNS <= 0 {
			t.Errorf("shard %d span=%d delay=%d, want both > 0 after traffic",
				ss.Shard, c.SpanMaxNS, c.DelayMaxNS)
		}
		// Twin residual: finite and nonnegative, always — zero before the
		// first paired tick is fine, NaN/Inf never is.
		if math.IsNaN(ss.TwinResidualPct) || math.IsInf(ss.TwinResidualPct, 0) || ss.TwinResidualPct < 0 {
			t.Errorf("shard %d twin_residual_pct = %v, want finite and >= 0", ss.Shard, ss.TwinResidualPct)
		}
		// A sane magnitude, not a sentinel: pairing a clamped past-
		// capacity forecast would read in the trillions of percent.
		if ss.TwinResidualPct > 1e5 {
			t.Errorf("shard %d twin_residual_pct = %v%%: unpairable forecast leaked into the gauge",
				ss.Shard, ss.TwinResidualPct)
		}
		if ss.MeasuredP999NS < 0 {
			t.Errorf("shard %d measured_p999_ns = %d negative", ss.Shard, ss.MeasuredP999NS)
		}
		if ss.Conformance.Headroom > wantHeadroom {
			wantHeadroom = ss.Conformance.Headroom
		}
		if ss.Conformance.MaxLandings > wantLandings {
			wantLandings = ss.Conformance.MaxLandings
		}
	}
	if busyShards != 4 {
		t.Errorf("only %d/4 shards saw batches under uniform keys", busyShards)
	}
	// The global stats fields are the worst-across-shards rollups.
	if st.ConformHeadroom != wantHeadroom {
		t.Errorf("global headroom %v != worst shard %v", st.ConformHeadroom, wantHeadroom)
	}
	if st.ConformMaxLandings != wantLandings {
		t.Errorf("global max_landings %d != worst shard %d", st.ConformMaxLandings, wantLandings)
	}
	if math.IsNaN(st.TwinResidualPct) || math.IsInf(st.TwinResidualPct, 0) {
		t.Errorf("global twin_residual_pct = %v", st.TwinResidualPct)
	}

	// The admission flight recorder served real decisions over HTTP.
	srv := httptest.NewServer(s.AdmissionDebugHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/admission returned %d with admission on", resp.StatusCode)
	}
	var dbg struct {
		Enabled  bool  `json:"enabled"`
		SLONS    int64 `json:"slo_ns"`
		PerShard []struct {
			Shard       int     `json:"shard"`
			ResidualPct float64 `json:"residual_pct"`
		} `json:"per_shard"`
		Decisions []server.AdmissionDecision `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatalf("/debug/admission decode: %v", err)
	}
	if !dbg.Enabled || dbg.SLONS != (500*time.Millisecond).Nanoseconds() {
		t.Fatalf("debug doc enabled=%v slo=%d", dbg.Enabled, dbg.SLONS)
	}
	if len(dbg.PerShard) != 4 {
		t.Fatalf("debug doc has %d shards, want 4", len(dbg.PerShard))
	}
	if len(dbg.Decisions) == 0 {
		t.Fatal("no admission decisions recorded after a multi-second run")
	}
	for i, d := range dbg.Decisions {
		if d.Shard < 0 || d.Shard >= 4 {
			t.Fatalf("decision %d has shard %d", i, d.Shard)
		}
		if i > 0 && d.WhenNS > dbg.Decisions[i-1].WhenNS {
			t.Fatalf("decisions not newest-first at %d", i)
		}
		if math.IsNaN(d.ResidualPct) || math.IsInf(d.ResidualPct, 0) {
			t.Fatalf("decision %d residual %v", i, d.ResidualPct)
		}
	}

	s.Shutdown()
	auditBrownoutBooks(t, s.Snapshot())
	t.Logf("conformance: busy=%d headroom=%.3f landings=%d residual=%.1f%% decisions=%d",
		busyShards, st.ConformHeadroom, st.ConformMaxLandings, st.TwinResidualPct, len(dbg.Decisions))
	for _, ss := range st.PerShard {
		c := ss.Conformance
		t.Logf("shard %d: batches=%d span_max=%v gap_max=%v delay_max=%v landings=%d headroom=%.3f residual=%.1f%%",
			ss.Shard, c.Batches, time.Duration(c.SpanMaxNS), time.Duration(c.GapMaxNS),
			time.Duration(c.DelayMaxNS), c.MaxLandings, c.Headroom, ss.TwinResidualPct)
	}
}
