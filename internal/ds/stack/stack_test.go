package stack

import (
	"sort"
	"testing"
	"testing/quick"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func TestPushPopSingle(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 1})
	b := New()
	rt.Run(func(c *sched.Ctx) {
		b.Push(c, 42)
		v, ok := b.Pop(c)
		if !ok || v != 42 {
			t.Errorf("Pop = %d,%v", v, ok)
		}
	})
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestPopEmpty(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 2})
	b := New()
	rt.Run(func(c *sched.Ctx) {
		if _, ok := b.Pop(c); ok {
			t.Error("Pop on empty returned ok")
		}
	})
}

func TestSequentialLIFOOrder(t *testing.T) {
	// With a chain of dependent ops (m = n), batches have size 1 and the
	// stack must behave exactly like a sequential stack.
	rt := sched.New(sched.Config{Workers: 4, Seed: 3})
	b := New()
	rt.Run(func(c *sched.Ctx) {
		for i := int64(0); i < 50; i++ {
			b.Push(c, i)
		}
		for i := int64(49); i >= 0; i-- {
			v, ok := b.Pop(c)
			if !ok || v != i {
				t.Errorf("Pop = %d,%v want %d", v, ok, i)
			}
		}
	})
}

func TestParallelPushesAllArrive(t *testing.T) {
	for _, p := range []int{1, 4, 8} {
		rt := sched.New(sched.Config{Workers: p, Seed: 4})
		b := New()
		const n = 1000
		rt.Run(func(c *sched.Ctx) {
			c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Push(cc, int64(i)) })
		})
		if b.Len() != n {
			t.Fatalf("P=%d: Len = %d, want %d", p, b.Len(), n)
		}
		// Popping everything must return each value exactly once.
		got := make([]int64, 0, n)
		rt.Run(func(c *sched.Ctx) {
			for i := 0; i < n; i++ {
				v, ok := b.Pop(c)
				if !ok {
					t.Fatalf("premature empty at %d", i)
				}
				got = append(got, v)
			}
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := range got {
			if got[i] != int64(i) {
				t.Fatalf("P=%d: missing value %d", p, i)
			}
		}
	}
}

func TestTableDoublingOccurs(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 4, Seed: 5})
	b := New()
	const n = 5000
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Push(cc, 1) })
	})
	if b.Resizes == 0 {
		t.Fatal("no resizes for 5000 pushes into a min-capacity table")
	}
	// Amortization: resize count must be O(lg n)-ish for grow-only load.
	if b.Resizes > 20 {
		t.Fatalf("Resizes = %d, too many for %d pushes", b.Resizes, n)
	}
}

func TestShrink(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 6})
	b := New()
	rt.Run(func(c *sched.Ctx) {
		c.For(0, 1000, 1, func(cc *sched.Ctx, i int) { b.Push(cc, 1) })
	})
	capAfterGrow := len(b.buf)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, 1000, 1, func(cc *sched.Ctx, i int) { b.Pop(cc) })
	})
	if len(b.buf) >= capAfterGrow {
		t.Fatalf("capacity did not shrink: %d -> %d", capAfterGrow, len(b.buf))
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
}

// TestQuickAgainstSeqOracle drives the batched stack with dependency
// chains (batch size 1) against the sequential stack: with singleton
// batches the behaviours must coincide exactly.
func TestQuickAgainstSeqOracle(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 3, Seed: 7})
	f := func(ops []int16) bool {
		b := New()
		s := NewSeq()
		okAll := true
		rt.Run(func(c *sched.Ctx) {
			for _, o := range ops {
				if o >= 0 {
					b.Push(c, int64(o))
					s.Push(int64(o))
				} else {
					bv, bok := b.Pop(c)
					sv, sok := s.Pop()
					if bv != sv || bok != sok {
						okAll = false
						return
					}
				}
			}
		})
		return okAll && b.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMixedBatchPushPop checks conservation when pushes and pops share
// batches: every popped value was pushed, and pops never exceed supply.
func TestMixedBatchPushPop(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 8, Seed: 8})
	b := New()
	r := rng.New(99)
	const n = 600
	kinds := make([]bool, n) // true = push
	pushCount := 0
	for i := range kinds {
		kinds[i] = r.Bool()
		if kinds[i] {
			pushCount++
		}
	}
	popped := make([]int64, n)
	poppedOK := make([]bool, n)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			if kinds[i] {
				b.Push(cc, int64(i))
			} else {
				popped[i], poppedOK[i] = b.Pop(cc)
			}
		})
	})
	okPops := 0
	seen := map[int64]bool{}
	for i := range popped {
		if kinds[i] || !poppedOK[i] {
			continue
		}
		okPops++
		v := popped[i]
		if v < 0 || v >= n || !kinds[v] {
			t.Fatalf("popped value %d was never pushed", v)
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if b.Len() != pushCount-okPops {
		t.Fatalf("Len = %d, want %d - %d", b.Len(), pushCount, okPops)
	}
}

func TestSeqStack(t *testing.T) {
	s := NewSeq()
	if _, ok := s.Pop(); ok {
		t.Fatal("empty Pop ok")
	}
	s.Push(1)
	s.Push(2)
	if v, ok := s.Pop(); !ok || v != 2 {
		t.Fatalf("Pop = %d,%v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}
