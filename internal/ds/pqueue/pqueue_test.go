package pqueue

import (
	"container/heap"
	"sort"
	"testing"
	"testing/quick"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func runOn(p int, f func(c *sched.Ctx)) {
	rt := sched.New(sched.Config{Workers: p, Seed: 3})
	rt.Run(f)
}

func TestSeqBasic(t *testing.T) {
	q := NewSeq()
	if _, _, ok := q.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty")
	}
	q.Insert(5, 50)
	q.Insert(1, 10)
	q.Insert(3, 30)
	if k, v, ok := q.Min(); !ok || k != 1 || v != 10 {
		t.Fatalf("Min = %d,%d,%v", k, v, ok)
	}
	wantK := []int64{1, 3, 5}
	for _, w := range wantK {
		k, _, ok := q.DeleteMin()
		if !ok || k != w {
			t.Fatalf("DeleteMin = %d,%v want %d", k, ok, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestSeqSortsRandomInput(t *testing.T) {
	q := NewSeq()
	r := rng.New(5)
	const n = 10000
	in := make([]int64, n)
	for i := range in {
		in[i] = r.Int63() % 1000
		q.Insert(in[i], 0)
	}
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	for i := 0; i < n; i++ {
		k, _, ok := q.DeleteMin()
		if !ok || k != in[i] {
			t.Fatalf("pop %d = %d, want %d", i, k, in[i])
		}
	}
}

// stdHeap is a container/heap oracle.
type stdHeap []int64

func (h stdHeap) Len() int           { return len(h) }
func (h stdHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h stdHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *stdHeap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *stdHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func TestQuickSeqAgainstContainerHeap(t *testing.T) {
	f := func(ops []int16) bool {
		q := NewSeq()
		var o stdHeap
		heap.Init(&o)
		for _, op := range ops {
			if op >= 0 {
				q.Insert(int64(op), 0)
				heap.Push(&o, int64(op))
			} else {
				gk, _, gok := q.DeleteMin()
				if o.Len() == 0 {
					if gok {
						return false
					}
					continue
				}
				wk := heap.Pop(&o).(int64)
				if !gok || gk != wk {
					return false
				}
			}
		}
		return q.Len() == o.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedInsertsThenDrain(t *testing.T) {
	for _, p := range []int{1, 4, 8} {
		b := NewBatched()
		const n = 2000
		runOn(p, func(c *sched.Ctx) {
			c.For(0, n, 1, func(cc *sched.Ctx, i int) {
				b.Insert(cc, int64((i*31)%n), int64(i))
			})
		})
		if b.Len() != n {
			t.Fatalf("P=%d: Len = %d", p, b.Len())
		}
		// Drain sequentially and check ascending order.
		prev := int64(-1)
		runOn(p, func(c *sched.Ctx) {
			for i := 0; i < n; i++ {
				k, _, ok := b.DeleteMin(c)
				if !ok {
					t.Fatalf("premature empty at %d", i)
				}
				if k < prev {
					t.Fatalf("out of order: %d after %d", k, prev)
				}
				prev = k
			}
		})
		if b.Len() != 0 {
			t.Fatalf("P=%d: Len = %d after drain", p, b.Len())
		}
	}
}

func TestBatchedDeleteMinOnEmpty(t *testing.T) {
	b := NewBatched()
	runOn(4, func(c *sched.Ctx) {
		if _, _, ok := b.DeleteMin(c); ok {
			t.Error("DeleteMin on empty returned ok")
		}
	})
}

func TestBatchedMixedConservation(t *testing.T) {
	// Parallel inserts and delete-mins: every successful delete-min must
	// return an inserted priority, each insert consumed at most once.
	b := NewBatched()
	const n = 1200
	delKeys := make([]int64, n)
	delOK := make([]bool, n)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			if i%2 == 0 {
				b.Insert(cc, int64(i), int64(i))
			} else {
				delKeys[i], _, delOK[i] = b.DeleteMin(cc)
			}
		})
	})
	inserted := n / 2
	got := 0
	for i := 1; i < n; i += 2 {
		if delOK[i] {
			got++
			if delKeys[i]%2 != 0 || delKeys[i] < 0 || delKeys[i] >= n {
				t.Fatalf("impossible priority %d", delKeys[i])
			}
		}
	}
	if b.Len() != inserted-got {
		t.Fatalf("Len = %d, want %d", b.Len(), inserted-got)
	}
}

func TestBatchedHeapPropertyAfterMixedRuns(t *testing.T) {
	b := NewBatched()
	r := rng.New(17)
	for round := 0; round < 5; round++ {
		runOn(4, func(c *sched.Ctx) {
			c.For(0, 300, 1, func(cc *sched.Ctx, i int) {
				if r.Bool() {
					b.Insert(cc, r.Int63()%500, 0)
				}
			})
		})
	}
	// Full drain must be sorted.
	prev := int64(-1)
	runOn(2, func(c *sched.Ctx) {
		for {
			k, _, ok := b.DeleteMin(c)
			if !ok {
				return
			}
			if k < prev {
				t.Errorf("heap order violated: %d after %d", k, prev)
				return
			}
			prev = k
		}
	})
}

func TestBuildHeapDirect(t *testing.T) {
	// Exercise the parallel pairwise-meld reduction directly with a
	// full-width batch (real batches on a 1-CPU host are mostly
	// singletons, which would leave the fork path untested).
	rt := sched.New(sched.Config{Workers: 4, Seed: 5})
	rt.Run(func(c *sched.Ctx) {
		keys := []int64{9, 3, 7, 1, 8, 2, 6, 4, 5, 0}
		ops := make([]*sched.OpRecord, len(keys))
		for i, k := range keys {
			ops[i] = &sched.OpRecord{Kind: OpInsert, Key: k, Val: k * 10}
		}
		h := buildHeap(c, ops)
		prev := int64(-1)
		count := 0
		for h != nil {
			if h.k < prev {
				t.Errorf("heap order violated: %d after %d", h.k, prev)
				return
			}
			if h.v != h.k*10 {
				t.Errorf("payload mismatch for %d", h.k)
				return
			}
			prev = h.k
			h = meld(h.l, h.r)
			count++
		}
		if count != len(keys) {
			t.Errorf("drained %d elements, want %d", count, len(keys))
		}
	})
}

func TestBuildHeapEmpty(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 6})
	rt.Run(func(c *sched.Ctx) {
		if buildHeap(c, nil) != nil {
			t.Error("empty buildHeap not nil")
		}
	})
}

func TestSeqMinAfterDeletes(t *testing.T) {
	q := NewSeq()
	for _, k := range []int64{5, 2, 8} {
		q.Insert(k, k)
	}
	q.DeleteMin() // removes 2
	if k, _, ok := q.Min(); !ok || k != 5 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
	q.DeleteMin()
	q.DeleteMin()
	if _, _, ok := q.Min(); ok {
		t.Fatal("Min on empty")
	}
}

func TestRunBatchUnknownKindPanics(t *testing.T) {
	b := NewBatched()
	rt := sched.New(sched.Config{Workers: 1, Seed: 7})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown op kind")
		}
	}()
	rt.Run(func(c *sched.Ctx) {
		b.RunBatch(c, []*sched.OpRecord{{Kind: 99}})
	})
}
