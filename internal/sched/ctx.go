package sched

// Ctx is the execution context handed to every task. It identifies the
// worker running the task and the dag (core or batch) the task belongs
// to, so that forks land on the correct deque (Invariant 3). A Ctx is
// only valid for the dynamic extent of the task invocation it was passed
// to; do not retain it. (Each worker owns one reusable Ctx per kind, so
// entering a task allocates nothing.)
type Ctx struct {
	w    *worker
	kind Kind
}

// WorkerID returns the id (in [0, P)) of the worker currently executing
// this task. Useful for per-worker scratch space in batched operations.
func (c *Ctx) WorkerID() int { return c.w.id }

// Workers returns P.
func (c *Ctx) Workers() int { return len(c.w.rt.workers) }

// Runtime returns the runtime executing this task.
func (c *Ctx) Runtime() *Runtime { return c.w.rt }

// Op returns the calling worker's reusable operation record, for use as
// the argument to an immediately following Batchify:
//
//	op := c.Op()
//	*op = sched.OpRecord{DS: ds, Kind: OpFoo, Key: k}
//	c.Batchify(op)
//	return op.Res
//
// The record is owned by the worker, not the caller: it is valid only
// from a core task, and only for a straight-line fill-then-Batchify with
// no intervening Fork, For, or nested data-structure call (a worker has
// at most one outstanding Batchify at a time — it traps until the
// operation completes — so one record per worker suffices). Results may
// be read from it until the next Op call on the same worker. Callers
// that need to retain records (or batch from auxiliary goroutines via
// Server) should keep allocating their own; Batchify accepts any record.
func (c *Ctx) Op() *OpRecord { return &c.w.opRec }

// Fork executes a and b in parallel (binary forking, as the paper
// assumes) and returns when both have completed. b is made available for
// stealing while the current worker runs a; if b was not stolen the
// worker runs it itself, otherwise the worker helps with other legal work
// until b's thief finishes.
//
// The b-task's frame (including its join counter) comes from the
// worker's free list and is reclaimed when Fork returns, so the
// un-stolen fast path performs zero heap allocations. Reclamation is
// safe under the structured fork-join discipline: once the join counter
// reaches zero the thief (if any) no longer touches the frame.
func (c *Ctx) Fork(a, b func(*Ctx)) {
	w := c.w
	bt := w.getTask()
	bt.fn = b
	bt.kind = c.kind
	bt.join = &bt.ownJoin
	bt.ownJoin.pending.Store(1)
	// Tasks forked inside a batch group inherit its tag, counted before
	// the push makes them stealable (panic containment; see contain.go).
	if bt.group = w.curGroup; bt.group != 0 {
		w.rt.scratch.groupLive[bt.group-1].Add(1)
	}
	d := w.dequeFor(c.kind)
	d.PushBottom(bt)
	w.rt.idle.wake()

	a(c)

	// Fast path: reclaim b from our own deque. The structured fork-join
	// discipline guarantees that everything pushed above bt has been
	// consumed by the time a returns, so the bottom item is bt or nothing.
	if t := d.PopBottom(); t != nil {
		if t != bt {
			// During an abort, tasks that unwound may have orphaned
			// children in the deque; anything else is a scheduler bug.
			if w.rt.aborting.Load() {
				panic(abortSignal{})
			}
			panic("sched: fork-join deque discipline violated")
		}
		w.runTask(t)
		w.putTask(t)
		return
	}
	// b was stolen: help until its thief completes it.
	w.waitJoin(&bt.ownJoin, c.kind)
	w.putTask(bt)
}

// waitJoin helps with other legal work until j's counter reaches zero.
func (w *worker) waitJoin(j *join, kind Kind) {
	for j.pending.Load() != 0 {
		w.rt.checkAbort()
		if !w.helpOnce(kind) {
			w.idleAtJoin(j, kind)
		}
	}
}

// helpOnce runs one unit of other work while the worker waits at a join
// inside a task of the given kind, returning false if it found nothing.
//
// Trapped workers may only execute batch work (Section 4). Additionally,
// a worker waiting inside a *batch* task must not pick up core work even
// if its status is free: a core task can contain a data-structure node,
// and suspending at one underneath an active batch's frame would make the
// batch's completion depend on a future batch — a deadlock cycle. Free
// workers waiting inside core tasks may execute anything.
func (w *worker) helpOnce(kind Kind) bool {
	if t := w.batch.PopBottom(); t != nil {
		w.runTask(t)
		return true
	}
	coreOK := kind == KindCore && w.isFree()
	if coreOK {
		if t := w.core.PopBottom(); t != nil {
			w.runTask(t)
			return true
		}
	}
	return w.stealAndRun(!coreOK)
}

// For executes body(i) for every i in [lo, hi) with binary fork-join
// splitting, descending to sequential chunks of at most grain iterations.
// A grain of <= 0 defaults to 1. It matches the parallel_for construct
// used throughout the paper.
func (c *Ctx) For(lo, hi, grain int, body func(*Ctx, int)) {
	if grain <= 0 {
		grain = 1
	}
	c.forRange(lo, hi, grain, body)
}

// forRange is For's engine. It is the iterative equivalent of the
// textbook binary recursion
//
//	mid := lo + (hi-lo)/2
//	Fork(forRange(lo, mid), forRange(mid, hi))
//
// but expressed with pooled range-descriptor tasks instead of closures,
// so splitting allocates nothing. The right halves the recursion would
// push are pushed here in the same order (outermost first), the leftmost
// base chunk runs sequentially, and the pushed halves are then joined
// innermost-first — exactly the pop order the recursive version's nested
// Forks would produce, so the deque discipline is preserved. A stolen
// half re-expands on the thief via the same routine (see execTask).
func (c *Ctx) forRange(lo, hi, grain int, body func(*Ctx, int)) {
	w := c.w
	d := w.dequeFor(c.kind)

	// Split phase: push the right half of each level, descending left.
	// Pushed tasks are chained through next (innermost at the head); the
	// chain is thread-local and set before the push, so a thief — which
	// never reads next — cannot observe it mid-update.
	var chain *Task
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		t := w.getTask()
		t.body = body
		t.lo = mid
		t.hi = hi
		t.grain = grain
		t.kind = c.kind
		t.join = &t.ownJoin
		t.ownJoin.pending.Store(1)
		// Group-tag inheritance, as in Fork (panic containment).
		if t.group = w.curGroup; t.group != 0 {
			w.rt.scratch.groupLive[t.group-1].Add(1)
		}
		t.next = chain
		chain = t
		d.PushBottom(t)
		w.rt.idle.wake()
		hi = mid
	}

	// Base chunk: at most grain iterations, run in place.
	for i := lo; i < hi; i++ {
		body(c, i)
	}

	// Join phase, innermost first. Each un-stolen half is popped and run
	// here (re-expanding if it is still larger than grain); stolen halves
	// are waited on. Frames are reclaimed as their joins clear.
	for t := chain; t != nil; {
		nxt := t.next
		if got := d.PopBottom(); got != nil {
			if got != t {
				if w.rt.aborting.Load() {
					panic(abortSignal{})
				}
				panic("sched: fork-join deque discipline violated")
			}
			w.runTask(got)
		} else {
			w.waitJoin(&t.ownJoin, c.kind)
		}
		w.putTask(t)
		t = nxt
	}
}

// Seq runs body sequentially in the current task; it exists so that
// examples can express "this phase is intentionally sequential" and reads
// symmetric with Fork/For.
func (c *Ctx) Seq(body func(*Ctx)) { body(c) }
