# Development targets. Everything is stdlib-only; `go` >= 1.22 suffices.

.PHONY: all build vet test race bench bench-json lab lab-quick examples cover fuzz

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Scheduler microbenchmarks -> BENCH_sched.json (the perf trajectory;
# see cmd/batcherlab/benchjson.go). BENCH_ARGS tightens/loosens the run.
BENCH_ARGS ?= -benchtime=5x -count=1
bench-json:
	go test -run '^$$' -bench 'Fig5Real|CounterReal|RuntimeForkJoin|BatchifyRoundTrip|ServerThroughput' \
		-benchmem $(BENCH_ARGS) . | go run ./cmd/batcherlab benchjson -o BENCH_sched.json

# Regenerate the paper's evaluation (see EXPERIMENTS.md).
lab:
	go run ./cmd/batcherlab all

lab-quick:
	go run ./cmd/batcherlab -quick all

examples:
	go run ./examples/quickstart
	go run ./examples/dijkstra
	go run ./examples/indexer
	go run ./examples/racedetect
	go run ./examples/goroutines
	go run ./examples/boruvka
	go run ./examples/simscaling

cover:
	go test -cover ./internal/...

# Short fuzzing passes over the property-based fuzz targets.
fuzz:
	go test -fuzz=FuzzTreeAgainstMap -fuzztime=30s ./internal/ds/tree23/
	go test -fuzz=FuzzSeqAgainstMap -fuzztime=30s ./internal/ds/skiplist/
