// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// Both the discrete-time simulator and the real scheduler need victim
// selection that is (a) cheap, (b) seedable so that simulation runs are
// exactly reproducible, and (c) independent per worker so that workers do
// not contend on shared generator state. math/rand's global generator
// satisfies none of these well, so we implement SplitMix64 (for seeding)
// and xoshiro256** (for the stream), following the public-domain reference
// algorithms by Blackman and Vigna.
package rng

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is primarily used to expand a single user seed
// into the four words of xoshiro256** state, but is also a perfectly
// serviceable generator on its own.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. It is not safe for concurrent use;
// give each worker its own instance.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64.
// Distinct seeds give statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state. SplitMix64
	// cannot produce four consecutive zeros, but keep a guard so that a
	// future change to seeding cannot silently break the generator.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the top 32 bits of the next value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift reduction, which is biased by at most
// 2^-32 for the n values used in this repository (worker counts, array
// indexes) — far below anything observable — and avoids division.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int((uint64(r.Uint32()) * uint64(n)) >> 32)
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the elements of a slice in place.
func Shuffle[T any](r *Rand, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// GeometricLevel returns the number of consecutive heads flipped before the
// first tail, capped at max. It is the standard height generator for skip
// lists (p = 1/2). The returned value is in [0, max].
func (r *Rand) GeometricLevel(max int) int {
	lvl := 0
	for lvl < max && r.Bool() {
		lvl++
	}
	return lvl
}
