package unionfind

import (
	"testing"
	"testing/quick"

	"batcher/internal/sched"
)

func TestSeqBasics(t *testing.T) {
	s := NewSeq(5)
	if s.Sets() != 5 || s.Len() != 5 {
		t.Fatalf("sets=%d len=%d", s.Sets(), s.Len())
	}
	if !s.Union(0, 1) {
		t.Fatal("first union failed")
	}
	if s.Union(1, 0) {
		t.Fatal("repeat union succeeded")
	}
	if !s.Same(0, 1) || s.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	if s.Sets() != 4 {
		t.Fatalf("sets=%d", s.Sets())
	}
}

func TestSeqChainAllConnected(t *testing.T) {
	const n = 1000
	s := NewSeq(n)
	for i := int32(1); i < n; i++ {
		s.Union(i-1, i)
	}
	if s.Sets() != 1 {
		t.Fatalf("sets=%d", s.Sets())
	}
	root := s.Find(0)
	for i := int32(0); i < n; i++ {
		if s.Find(i) != root {
			t.Fatalf("element %d in different set", i)
		}
	}
}

func TestSeqRankKeepsDepthLogarithmic(t *testing.T) {
	// Union by rank: depth of any find path is O(lg n).
	const n = 1 << 12
	s := NewSeq(n)
	for stride := 1; stride < n; stride *= 2 {
		for i := 0; i+stride < n; i += 2 * stride {
			s.Union(int32(i), int32(i+stride))
		}
	}
	maxDepth := 0
	for i := int32(0); i < n; i++ {
		d := 0
		x := i
		for s.parent[x] != x {
			x = s.parent[x]
			d++
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth > 13 { // lg(4096) + 1
		t.Fatalf("max depth %d exceeds O(lg n)", maxDepth)
	}
}

func TestQuickSeqAgainstNaive(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 64
		s := NewSeq(n)
		// Naive oracle: set labels with full relabel on union.
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		for _, p := range pairs {
			a := int32(p & 0x3f)
			b := int32((p >> 6) & 0x3f)
			merged := s.Union(a, b)
			if merged == (label[a] == label[b]) {
				return false
			}
			la, lb := label[a], label[b]
			if la != lb {
				for i := range label {
					if label[i] == lb {
						label[i] = la
					}
				}
			}
		}
		for i := int32(0); i < n; i++ {
			for j := int32(0); j < n; j++ {
				if s.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedParallelQueriesAndUnions(t *testing.T) {
	const n = 2000
	b := NewBatched(n)
	rt := sched.New(sched.Config{Workers: 8, Seed: 91})
	// Union even i with i+1 in parallel (disjoint pairs: all succeed).
	oks := make([]bool, n/2)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n/2, 1, func(cc *sched.Ctx, i int) {
			oks[i] = b.Union(cc, int32(2*i), int32(2*i+1))
		})
	})
	for i, ok := range oks {
		if !ok {
			t.Fatalf("disjoint union %d failed", i)
		}
	}
	if b.Seq().Sets() != n/2 {
		t.Fatalf("sets=%d", b.Seq().Sets())
	}
	// Parallel queries.
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n/2, 1, func(cc *sched.Ctx, i int) {
			if !b.Same(cc, int32(2*i), int32(2*i+1)) {
				t.Errorf("pair %d not same", i)
			}
			if i+1 < n/2 && b.Same(cc, int32(2*i), int32(2*i+2)) {
				t.Errorf("pairs %d and %d merged", i, i+1)
			}
			if b.Find(cc, int32(2*i)) != b.Find(cc, int32(2*i+1)) {
				t.Errorf("find mismatch for pair %d", i)
			}
		})
	})
}

func TestBatchedConcurrentUnionsSameComponent(t *testing.T) {
	// All P workers union into element 0 concurrently: exactly n-1 of the
	// n-1 distinct unions succeed and duplicates fail.
	const n = 500
	b := NewBatched(n)
	rt := sched.New(sched.Config{Workers: 8, Seed: 93})
	succ := make([]bool, 2*n)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, 2*n, 1, func(cc *sched.Ctx, i int) {
			succ[i] = b.Union(cc, 0, int32(i%n))
		})
	})
	count := 0
	for _, ok := range succ {
		if ok {
			count++
		}
	}
	if count != n-1 {
		t.Fatalf("%d unions succeeded, want %d", count, n-1)
	}
	if b.Seq().Sets() != 1 {
		t.Fatalf("sets=%d", b.Seq().Sets())
	}
}
