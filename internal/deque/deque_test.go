package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	d := New[int]()
	if !d.Empty() {
		t.Fatal("new deque not empty")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
	if v := d.PopBottom(); v != nil {
		t.Fatalf("PopBottom on empty = %v, want nil", v)
	}
	if v := d.Steal(); v != nil {
		t.Fatalf("Steal on empty = %v, want nil", v)
	}
}

func TestLIFOOwner(t *testing.T) {
	d := New[int]()
	vals := []int{1, 2, 3, 4, 5}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	for i := len(vals) - 1; i >= 0; i-- {
		got := d.PopBottom()
		if got == nil || *got != vals[i] {
			t.Fatalf("PopBottom = %v, want %d", got, vals[i])
		}
	}
	if !d.Empty() {
		t.Fatal("deque not empty after popping all")
	}
}

func TestFIFOSteal(t *testing.T) {
	d := New[int]()
	vals := []int{10, 20, 30}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := 0; i < len(vals); i++ {
		got := d.Steal()
		if got == nil || *got != vals[i] {
			t.Fatalf("Steal = %v, want %d", got, vals[i])
		}
	}
	if d.Steal() != nil {
		t.Fatal("Steal on drained deque should be nil")
	}
	if d.Steals() != 3 {
		t.Fatalf("Steals = %d, want 3", d.Steals())
	}
}

func TestMixedEnds(t *testing.T) {
	d := New[int]()
	vals := make([]int, 6)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	// Steal takes the oldest (0), PopBottom the newest (5).
	if got := d.Steal(); got == nil || *got != 0 {
		t.Fatalf("Steal = %v, want 0", got)
	}
	if got := d.PopBottom(); got == nil || *got != 5 {
		t.Fatalf("PopBottom = %v, want 5", got)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
}

func TestGrowth(t *testing.T) {
	d := New[int]()
	const n = 10 * minCapacity
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := n - 1; i >= 0; i-- {
		got := d.PopBottom()
		if got == nil || *got != i {
			t.Fatalf("PopBottom = %v, want %d", got, i)
		}
	}
}

func TestGrowthPreservesStealOrder(t *testing.T) {
	d := New[int]()
	const n = 5 * minCapacity
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	for i := 0; i < n; i++ {
		got := d.Steal()
		if got == nil || *got != i {
			t.Fatalf("Steal after growth = %v, want %d", got, i)
		}
	}
}

func TestReset(t *testing.T) {
	d := New[int]()
	v := 1
	d.PushBottom(&v)
	d.PushBottom(&v)
	d.Reset()
	if !d.Empty() {
		t.Fatal("deque not empty after Reset")
	}
	d.PushBottom(&v)
	if got := d.PopBottom(); got == nil || *got != 1 {
		t.Fatalf("push/pop after Reset = %v, want 1", got)
	}
}

// TestQuickSequentialModel checks owner-side push/pop against a slice
// stack over random operation sequences.
func TestQuickSequentialModel(t *testing.T) {
	f := func(ops []bool, seedVals []int16) bool {
		d := New[int]()
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				v := new(int)
				*v = next
				next++
				d.PushBottom(v)
				model = append(model, *v)
			} else {
				got := d.PopBottom()
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if got == nil || *got != want {
					return false
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentExactlyOnce hammers the deque with one owner and several
// thieves and verifies every pushed element is delivered exactly once.
func TestConcurrentExactlyOnce(t *testing.T) {
	const (
		n       = 20000
		thieves = 4
	)
	d := New[int]()
	vals := make([]int, n)
	delivered := make([]atomic.Int32, n)
	var popped, stolen atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v := d.Steal(); v != nil {
					delivered[*v].Add(1)
					stolen.Add(1)
				}
				select {
				case <-stop:
					// Drain anything left after the owner finished.
					for {
						v := d.Steal()
						if v == nil {
							return
						}
						delivered[*v].Add(1)
						stolen.Add(1)
					}
				default:
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
		if i%3 == 0 {
			if v := d.PopBottom(); v != nil {
				delivered[*v].Add(1)
				popped.Add(1)
			}
		}
	}
	// Owner drains its own end too.
	for {
		v := d.PopBottom()
		if v == nil {
			break
		}
		delivered[*v].Add(1)
		popped.Add(1)
	}
	close(stop)
	wg.Wait()
	// Thieves may still have grabbed the "nil" races; do a final owner drain.
	for {
		v := d.PopBottom()
		if v == nil {
			break
		}
		delivered[*v].Add(1)
		popped.Add(1)
	}

	for i := range delivered {
		if c := delivered[i].Load(); c != 1 {
			t.Fatalf("element %d delivered %d times", i, c)
		}
	}
	if popped.Load()+stolen.Load() != n {
		t.Fatalf("popped %d + stolen %d != %d", popped.Load(), stolen.Load(), n)
	}
}

// TestConcurrentStealOnly verifies thieves alone drain the deque with no
// duplicates or losses.
func TestConcurrentStealOnly(t *testing.T) {
	const n = 10000
	d := New[int]()
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	var count atomic.Int64
	delivered := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for count.Load() < n {
				if v := d.Steal(); v != nil {
					delivered[*v].Add(1)
					count.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for i := range delivered {
		if c := delivered[i].Load(); c != 1 {
			t.Fatalf("element %d delivered %d times", i, c)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int]()
	v := 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		d.PopBottom()
	}
}

func BenchmarkStealUncontended(b *testing.B) {
	d := New[int]()
	v := 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&v)
		d.Steal()
	}
}
