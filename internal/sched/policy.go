package sched

// This file defines the batch-formation policy seam: the *decision*
// half of launching a batch, extracted behind an interface so that
// launch strategies (linger-under-backlog, size-capped, deadline-aware)
// can compete without touching the scheduler's mechanism. The split
// follows the BatchFormation extraction rule — decisions (when to stop
// waiting and claim the flag, whether to admit an op) are pluggable;
// side effects (the flag CAS, LaunchBatch's ack/compact/BOP/done/reset
// sequence, status flips) stay in the scheduler, because the paper's
// Invariants 1 and 2 and the Theorem 5.4 delay bound are properties of
// the mechanism, not the policy. A policy can only choose *when* an
// idle flag is claimed; it cannot add batch landings, oversize a batch,
// or overlap two batches. See DESIGN.md §14.

import "batcher/internal/obs"

// LaunchReason is a batch policy's verdict on one flag-check iteration
// of a trapped worker: LaunchHold keeps lingering, every other value
// claims the batch flag and is counted (per runtime, LaunchReasons)
// when the claim succeeds. The named reasons exist so operators can see
// *why* batches launch — a deadline policy whose launches are all
// LaunchFull is not trading latency for anything.
type LaunchReason uint8

const (
	// LaunchHold means keep waiting: yield and re-check.
	LaunchHold LaunchReason = iota
	// LaunchImmediate is the paper's default for core-program calls:
	// no linger budget was granted, so the first idle-flag check
	// launches.
	LaunchImmediate
	// LaunchNoBacklog means the ingress queue drained: nothing is left
	// for sibling workers to trap on, so waiting buys no coalescing.
	LaunchNoBacklog
	// LaunchBudget means the linger-yield budget ran out — the
	// scheduler's liveness backstop, applied even when the policy would
	// keep holding.
	LaunchBudget
	// LaunchFull means all P workers are trapped: Invariant 2 caps the
	// batch at P operations, so it cannot grow further.
	LaunchFull
	// LaunchSizeCap means a size-cap policy's trapped-worker threshold
	// was reached.
	LaunchSizeCap
	// LaunchDeadline means a deadline policy's oldest pending operation
	// neared its latency budget.
	LaunchDeadline

	// NumLaunchReasons sizes per-reason counter arrays.
	NumLaunchReasons = int(LaunchDeadline) + 1
)

// LaunchReasonNames maps LaunchReason values to stable wire/metric
// label names.
var LaunchReasonNames = [NumLaunchReasons]string{
	LaunchHold:      "hold",
	LaunchImmediate: "immediate",
	LaunchNoBacklog: "no-backlog",
	LaunchBudget:    "budget-exhausted",
	LaunchFull:      "batch-full",
	LaunchSizeCap:   "size-cap",
	LaunchDeadline:  "deadline",
}

// String returns the reason's stable name.
func (r LaunchReason) String() string {
	if int(r) < len(LaunchReasonNames) {
		return LaunchReasonNames[r]
	}
	return "invalid"
}

// PolicyView is the read-only window a BatchPolicy gets onto the
// runtime at one flag-check iteration of one trapped worker. The
// accessor methods are lazy — a policy that never calls Trapped pays
// nothing for it — and all of them are safe to call from the trapped
// worker's scheduler loop (they read only atomics and the pump's own
// mutex-guarded queue depth).
type PolicyView struct {
	rt *Runtime
	lg *linger

	// Workers is P, the runtime's worker count (the Invariant 2 batch
	// size cap).
	Workers int
	// External reports the submission path: true for pump-fed
	// operations (network edge), false for core-program Batchify.
	External bool
	// YieldsLeft is the remaining linger-yield budget, including the
	// current iteration. When it reaches zero the scheduler launches
	// with LaunchBudget regardless of the policy — the liveness
	// backstop that makes a buggy policy degrade into bounded delay
	// instead of livelock.
	YieldsLeft int
}

// Backlog reports whether the submission path has more queued external
// work that sibling workers could trap on. Always false for
// core-program calls.
func (v PolicyView) Backlog() bool {
	return v.lg != nil && v.lg.backlog()
}

// Trapped counts workers with a published pending record — the size
// the batch would have if launched right now. O(P) scan over the
// pending array.
func (v PolicyView) Trapped() int {
	n := 0
	for i := range v.rt.pending {
		if v.rt.pending[i].rec.Load() != nil {
			n++
		}
	}
	return n
}

// OldestPendingNS returns the age in nanoseconds of the oldest
// currently pending operation (time since its record was published),
// or -1 when no record is pending. It reads the pending slots' publish
// stamps, not the records themselves — records are recycled by their
// owning workers, so a cross-worker read of OpRecord fields would race.
func (v PolicyView) OldestPendingNS() int64 {
	oldest := int64(-1)
	for i := range v.rt.pending {
		if v.rt.pending[i].rec.Load() == nil {
			continue
		}
		// The stamp is stored before the record (both sequentially
		// consistent), so a visible record implies a visible stamp.
		if s := v.rt.pending[i].stamp.Load(); oldest == -1 || s < oldest {
			oldest = s
		}
	}
	if oldest == -1 {
		return -1
	}
	age := obs.Now() - oldest
	if age < 0 {
		age = 0
	}
	return age
}

// BatchPolicy decides when a trapped worker stops lingering and
// launches a batch, and whether the pump admits new work. Policies
// must be stateless or internally synchronized: every worker of every
// runtime sharing the policy value may call these methods
// concurrently. Implementations must not block, allocate on the
// ShouldLaunch path, or call back into the runtime.
//
// Liveness contract: ShouldLaunch returning LaunchHold only defers the
// launch — the scheduler yields and re-checks — and the linger-yield
// budget (LingerYields) bounds how many times a hold is honored, so no
// policy can stall a trapped worker forever. Correctness (Invariants 1
// and 2, the Lemma 2 two-landings bound) is unconditional: holding
// happens only while the batch flag is clear, so a policy can delay a
// launch but never add one, oversize one, or overlap two. New policies
// still owe an empirical audit: `batcherlab -policy <name> audit` must
// report every Theorem 5.4 verdict PASS (see DESIGN.md §14).
type BatchPolicy interface {
	// Name identifies the policy in stats, metrics, and flags.
	Name() string
	// ShouldLaunch is consulted by a trapped worker each time it
	// observes the batch flag clear and still has linger budget:
	// LaunchHold yields and re-checks; anything else claims the flag,
	// tagged with the returned reason. It is never consulted with a
	// zero budget — a zero-budget worker launches immediately
	// (LaunchImmediate on the first check, LaunchBudget once a granted
	// budget ran out).
	ShouldLaunch(v PolicyView) LaunchReason
	// LingerYields grants the linger budget for one trapped operation:
	// proposed is the submission path's configured budget
	// (PumpConfig.LingerYields for external ops, 0 for core calls) and
	// the return value is the number of holds the scheduler will honor
	// before forcing a LaunchBudget launch. Return proposed to keep the
	// path's configuration; return 0 to launch immediately.
	LingerYields(proposed int, external bool) int
	// Admit gates pump admission: depth is the ingress-queue depth a
	// successful Submit would reach and capacity its configured bound.
	// Returning false rejects the operation with ErrPumpSaturated
	// before it is enqueued. The queue-full check is unconditional;
	// Admit can only tighten it (the seam for tenant-weighted or
	// predicted-latency admission control).
	Admit(depth, capacity int) bool
}

// AlternatingStealPolicy is the default batch-formation policy — the
// source paper's behavior, named for the scheduler it accompanies:
// core-program operations launch immediately (no linger), and pump-fed
// operations linger under backlog for the pump's configured yield
// budget, launching as soon as the ingress queue drains. It is
// stateless; the zero value is ready to use.
type AlternatingStealPolicy struct{}

// Name implements BatchPolicy.
func (AlternatingStealPolicy) Name() string { return "default" }

// ShouldLaunch implements BatchPolicy: hold while external backlog
// remains (sibling pumps can still fatten the batch), launch the
// moment it drains.
func (AlternatingStealPolicy) ShouldLaunch(v PolicyView) LaunchReason {
	if !v.Backlog() {
		return LaunchNoBacklog
	}
	return LaunchHold
}

// LingerYields implements BatchPolicy: keep each path's configured
// budget (pumps linger, core calls launch immediately — the paper's
// rule).
func (AlternatingStealPolicy) LingerYields(proposed int, external bool) int {
	if external {
		return proposed
	}
	return 0
}

// Admit implements BatchPolicy: admission is bounded by queue capacity
// alone.
func (AlternatingStealPolicy) Admit(depth, capacity int) bool { return true }

// SetPolicy installs (or, with nil, restores the default) batch
// formation policy. Call only while no Run or Serve is in progress;
// workers read the policy unsynchronized.
func (rt *Runtime) SetPolicy(p BatchPolicy) {
	if rt.running.Load() {
		panic("sched: SetPolicy called during Run")
	}
	if p == nil {
		p = AlternatingStealPolicy{}
	}
	rt.policy = p
}

// Policy returns the installed batch-formation policy (never nil).
func (rt *Runtime) Policy() BatchPolicy { return rt.policy }

// LaunchReasons returns the number of batches launched for each
// decision reason over the runtime's lifetime. Counters are bumped
// once per successful batch-flag claim, so the sum equals the number
// of launches (not landings of nonempty batches — a claim that found
// its record already consumed still counts). Readable at any time.
func (rt *Runtime) LaunchReasons() (counts [NumLaunchReasons]int64) {
	for i := range rt.launchReasons {
		counts[i] = rt.launchReasons[i].Load()
	}
	return counts
}
