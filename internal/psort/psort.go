// Package psort implements parallel merge sort in the fork-join model:
// O(x lg x) work and O(lg^2 x ... lg^3 x) span depending on the merge,
// which is more than enough parallelism for size-P batches. The batched
// 2-3 tree (Section 3 of the paper) sorts each batch before inserting,
// and the batched skip list sorts batches before splicing.
package psort

import (
	"sort"

	"batcher/internal/sched"
)

const (
	// seqSortCutoff is the size below which we fall back to the standard
	// library's sequential sort.
	seqSortCutoff = 1024
	// seqMergeCutoff is the combined size below which merges run
	// sequentially.
	seqMergeCutoff = 2048
)

// Int64s sorts xs ascending, in parallel.
func Int64s(c *sched.Ctx, xs []int64) {
	Slice(c, xs, func(a, b int64) bool { return a < b })
}

// Slice sorts xs by less, in parallel. The sort is not stable.
func Slice[T any](c *sched.Ctx, xs []T, less func(a, b T) bool) {
	if len(xs) <= seqSortCutoff {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	buf := make([]T, len(xs))
	mergeSort(c, xs, buf, less)
}

// mergeSort sorts xs using buf as scratch of equal length.
func mergeSort[T any](c *sched.Ctx, xs, buf []T, less func(a, b T) bool) {
	if len(xs) <= seqSortCutoff {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	mid := len(xs) / 2
	c.Fork(
		func(cc *sched.Ctx) { mergeSort(cc, xs[:mid], buf[:mid], less) },
		func(cc *sched.Ctx) { mergeSort(cc, xs[mid:], buf[mid:], less) },
	)
	parMerge(c, xs[:mid], xs[mid:], buf, less)
	copyPar(c, xs, buf)
}

// parMerge merges sorted a and b into out (len(out) == len(a)+len(b))
// with the classic parallel merge: split the larger input at its median,
// binary-search the split point in the other, and recurse on both halves
// in parallel. Span O(lg^2 n).
func parMerge[T any](c *sched.Ctx, a, b, out []T, less func(x, y T) bool) {
	if len(a)+len(b) <= seqMergeCutoff {
		seqMerge(a, b, out, less)
		return
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	ma := len(a) / 2
	pivot := a[ma]
	// mb = first index in b with b[mb] >= pivot.
	mb := sort.Search(len(b), func(i int) bool { return !less(b[i], pivot) })
	c.Fork(
		func(cc *sched.Ctx) { parMerge(cc, a[:ma], b[:mb], out[:ma+mb], less) },
		func(cc *sched.Ctx) { parMerge(cc, a[ma:], b[mb:], out[ma+mb:], less) },
	)
}

func seqMerge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

func copyPar[T any](c *sched.Ctx, dst, src []T) {
	c.For(0, len(dst), seqMergeCutoff, func(_ *sched.Ctx, i int) { dst[i] = src[i] })
}

// Merge merges two sorted slices into a freshly allocated sorted slice,
// in parallel. Used by batched structures that maintain sorted runs.
func Merge[T any](c *sched.Ctx, a, b []T, less func(x, y T) bool) []T {
	out := make([]T, len(a)+len(b))
	parMerge(c, a, b, out, less)
	return out
}

// IsSorted reports whether xs is ascending by less (sequential helper for
// assertions and tests).
func IsSorted[T any](xs []T, less func(a, b T) bool) bool {
	for i := 1; i < len(xs); i++ {
		if less(xs[i], xs[i-1]) {
			return false
		}
	}
	return true
}

// Dedup removes adjacent duplicates (by the given equality) from a sorted
// slice, returning the dense prefix. Batched structures use it to
// collapse repeated keys within a batch.
func Dedup[T any](xs []T, eq func(a, b T) bool) []T {
	if len(xs) == 0 {
		return xs
	}
	k := 1
	for i := 1; i < len(xs); i++ {
		if !eq(xs[i], xs[k-1]) {
			xs[k] = xs[i]
			k++
		}
	}
	return xs[:k]
}
