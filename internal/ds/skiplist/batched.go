package skiplist

import (
	"sort"

	"batcher/internal/sched"
)

// Operation kinds for the batched skip list.
const (
	// OpInsert inserts Key with value Val; Ok reports "newly inserted".
	OpInsert sched.OpKind = iota
	// OpContains looks up Key; Ok reports presence, Res holds the value.
	OpContains
	// OpDelete removes Key; Ok reports "was present".
	OpDelete
	// OpInsertMany inserts every key in Aux.([]int64) with value Val.
	// This reproduces the paper's experimental setup, where "each
	// BATCHIFY call creates 100 insertion records" to simulate larger
	// batches; Res receives the number of keys newly inserted.
	OpInsertMany
	// OpSucc finds the smallest key >= Key: the key lands in Key, the
	// value in Res, and Ok reports existence.
	OpSucc
)

// Batched is the implicitly batched skip list.
//
// The scratch fields hold per-batch working storage, reused across
// batches: the scheduler runs at most one batch at a time (Invariant 1),
// so RunBatch is never re-entered concurrently on the same structure.
type Batched struct {
	l *List

	lookups []*sched.OpRecord
	succs   []*sched.OpRecord
	deletes []*sched.OpRecord
	inserts []insertReq
	preds   []*node // flat [i*maxLevel, (i+1)*maxLevel) predecessor towers
}

var _ sched.Batched = (*Batched)(nil)

// NewBatched returns an empty batched skip list with the given height
// seed.
func NewBatched(seed uint64) *Batched { return &Batched{l: NewList(seed)} }

// List exposes the underlying list for quiescent inspection (tests,
// initialization before a run).
func (b *Batched) List() *List { return b.l }

// Insert adds key/val; reports whether key was newly inserted. Core
// tasks only.
func (b *Batched) Insert(c *sched.Ctx, key, val int64) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpInsert, Key: key, Val: val}
	c.Batchify(op)
	return op.Ok
}

// InsertMany adds all keys with value val, returning how many were newly
// inserted. It is the multi-record operation of the paper's Section 7
// experiment. Core tasks only.
func (b *Batched) InsertMany(c *sched.Ctx, keys []int64, val int64) int {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpInsertMany, Val: val, Aux: keys}
	c.Batchify(op)
	return int(op.Res)
}

// Contains looks up key. Core tasks only.
func (b *Batched) Contains(c *sched.Ctx, key int64) (int64, bool) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpContains, Key: key}
	c.Batchify(op)
	return op.Res, op.Ok
}

// Succ returns the smallest key >= key with its value, or ok=false. Core
// tasks only.
func (b *Batched) Succ(c *sched.Ctx, key int64) (k, v int64, ok bool) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpSucc, Key: key}
	c.Batchify(op)
	return op.Key, op.Res, op.Ok
}

// Delete removes key, reporting whether it was present. Core tasks only.
func (b *Batched) Delete(c *sched.Ctx, key int64) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpDelete, Key: key}
	c.Batchify(op)
	return op.Ok
}

// insertReq is one key's insertion work item within a batch.
type insertReq struct {
	key, val int64
	op       *sched.OpRecord // nil for the tail keys of an OpInsertMany
	preds    []*node
}

// RunBatch implements sched.Batched. The batch linearizes as: all
// Contains ops (against the pre-batch state), then all inserts in key
// order, then all deletes in key order. Each phase searches in parallel;
// structural modification is sequential, as in the paper's prototype.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	lookups := b.lookups[:0]
	succs := b.succs[:0]
	deletes := b.deletes[:0]
	inserts := b.inserts[:0]
	for _, op := range ops {
		switch op.Kind {
		case OpContains:
			lookups = append(lookups, op)
		case OpSucc:
			succs = append(succs, op)
		case OpDelete:
			deletes = append(deletes, op)
		case OpInsert:
			inserts = append(inserts, insertReq{key: op.Key, val: op.Val, op: op})
		case OpInsertMany:
			keys := op.Aux.([]int64)
			for _, k := range keys {
				// Every key carries its record so Res can accumulate the
				// number of newly inserted keys.
				inserts = append(inserts, insertReq{key: k, val: op.Val, op: op})
			}
			op.Res = 0
		default:
			panic("skiplist: unknown op kind")
		}
	}
	b.lookups, b.succs, b.deletes, b.inserts = lookups, succs, deletes, inserts

	// Phase 1: lookups and successor queries, fully parallel, read-only.
	c.For(0, len(lookups), 1, func(_ *sched.Ctx, i int) {
		lookups[i].Res, lookups[i].Ok = b.l.Contains(lookups[i].Key)
	})
	c.For(0, len(succs), 1, func(_ *sched.Ctx, i int) {
		op := succs[i]
		op.Key, op.Res, op.Ok = b.l.Succ(op.Key)
	})

	// Phase 2: inserts.
	b.runInserts(c, inserts, ops)

	// Phase 3: deletes.
	b.runDeletes(c, deletes)
}

func (b *Batched) runInserts(c *sched.Ctx, inserts []insertReq, ops []*sched.OpRecord) {
	if len(inserts) == 0 {
		return
	}
	// Step 1 (sequential): order the batch by key. Stable so that when a
	// key appears twice in one batch, the earlier record in compaction
	// order performs the insert and later ones become updates.
	sort.SliceStable(inserts, func(i, j int) bool { return inserts[i].key < inserts[j].key })

	// Step 2 (parallel): search the main list for each key's predecessor
	// tower. Read-only on the main list; towers are disjoint slices of
	// the flat scratch buffer, so parallel fills do not overlap.
	buf := b.predScratch(len(inserts))
	c.For(0, len(inserts), 1, func(_ *sched.Ctx, i int) {
		preds := buf[i*maxLevel : (i+1)*maxLevel : (i+1)*maxLevel]
		b.l.searchPreds(inserts[i].key, preds)
		inserts[i].preds = preds
	})

	// Step 3 (sequential): splice in ascending key order. Earlier splices
	// can invalidate saved predecessors only by inserting nodes with
	// smaller keys, so advancing each saved predecessor forward restores
	// correctness at amortized O(1) per level.
	countNew := func(r *insertReq) {
		if r.op == nil {
			return
		}
		switch r.op.Kind {
		case OpInsert:
			r.op.Ok = true
		case OpInsertMany:
			r.op.Res++
		}
	}
	for i := range inserts {
		r := &inserts[i]
		key := r.key
		for lv := 0; lv < maxLevel; lv++ {
			p := r.preds[lv]
			for p.next[lv] != nil && p.next[lv].key < key {
				p = p.next[lv]
			}
			r.preds[lv] = p
		}
		if nxt := r.preds[0].next[0]; nxt != nil && nxt.key == key {
			nxt.val = r.val // duplicate: update in place
			if r.op != nil && r.op.Kind == OpInsert {
				r.op.Ok = false
			}
			continue
		}
		b.l.link(key, r.val, r.preds)
		countNew(r)
	}
	// InsertMany records that contributed only duplicate keys still need
	// Ok set; define Ok as "at least one key newly inserted".
	for _, op := range ops {
		if op.Kind == OpInsertMany {
			op.Ok = op.Res > 0
		}
	}
}

func (b *Batched) runDeletes(c *sched.Ctx, deletes []*sched.OpRecord) {
	if len(deletes) == 0 {
		return
	}
	// Descending key order: a saved predecessor of key k has key < k,
	// while every node already unlinked in this phase has key > k — so
	// saved predecessors are always live and their current next pointers
	// reflect prior unlinks.
	sort.Slice(deletes, func(i, j int) bool { return deletes[i].Key > deletes[j].Key })
	// The insert phase is over, so its predecessor towers are dead and
	// the flat scratch can be reused.
	buf := b.predScratch(len(deletes))
	c.For(0, len(deletes), 1, func(_ *sched.Ctx, i int) {
		b.l.searchPreds(deletes[i].Key, buf[i*maxLevel:(i+1)*maxLevel])
	})
	for i, op := range deletes {
		preds := buf[i*maxLevel : (i+1)*maxLevel]
		target := preds[0].next[0]
		if target == nil || target.key != op.Key {
			op.Ok = false // absent, or a duplicate delete already took it
			continue
		}
		b.l.unlink(target, preds)
		op.Ok = true
	}
}

// predScratch returns a flat buffer with room for n predecessor towers.
func (b *Batched) predScratch(n int) []*node {
	if cap(b.preds) < n*maxLevel {
		b.preds = make([]*node, n*maxLevel)
	}
	return b.preds[:n*maxLevel]
}
