package hashmap

import (
	"testing"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func runOn(p int, f func(c *sched.Ctx)) {
	rt := sched.New(sched.Config{Workers: p, Seed: 71})
	rt.Run(f)
}

func TestPutGetDel(t *testing.T) {
	b := NewBatched(1)
	runOn(2, func(c *sched.Ctx) {
		if !b.Put(c, 5, 50) {
			t.Error("first Put not new")
		}
		if b.Put(c, 5, 55) {
			t.Error("dup Put new")
		}
		v, ok := b.Get(c, 5)
		if !ok || v != 55 {
			t.Errorf("Get = %d,%v", v, ok)
		}
		if _, ok := b.Get(c, 6); ok {
			t.Error("Get absent key ok")
		}
		if !b.Del(c, 5) || b.Del(c, 5) {
			t.Error("Del semantics broken")
		}
	})
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestParallelPuts(t *testing.T) {
	for _, p := range []int{1, 4, 8} {
		b := NewBatched(2)
		const n = 5000
		runOn(p, func(c *sched.Ctx) {
			c.For(0, n, 1, func(cc *sched.Ctx, i int) {
				b.Put(cc, int64(i), int64(i*2))
			})
		})
		if b.Len() != n {
			t.Fatalf("P=%d: Len = %d", p, b.Len())
		}
		if b.Rebuilds == 0 {
			t.Fatalf("P=%d: no rebuilds for %d keys", p, n)
		}
		runOn(p, func(c *sched.Ctx) {
			c.For(0, n, 1, func(cc *sched.Ctx, i int) {
				v, ok := b.Get(cc, int64(i))
				if !ok || v != int64(i*2) {
					t.Errorf("Get(%d) = %d,%v", i, v, ok)
				}
			})
		})
	}
}

func TestShrinkOnMassDelete(t *testing.T) {
	b := NewBatched(3)
	const n = 4000
	runOn(4, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Put(cc, int64(i), 0) })
	})
	grown := b.Buckets()
	runOn(4, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Del(cc, int64(i)) })
	})
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Buckets() >= grown {
		t.Fatalf("buckets did not shrink: %d -> %d", grown, b.Buckets())
	}
}

func TestSequentialChainAgainstMapOracle(t *testing.T) {
	b := NewBatched(4)
	m := map[int64]int64{}
	r := rng.New(7)
	runOn(4, func(c *sched.Ctx) {
		for i := 0; i < 5000; i++ {
			k := r.Int63() % 600
			switch r.Intn(3) {
			case 0:
				_, existed := m[k]
				if b.Put(c, k, int64(i)) == existed {
					t.Fatalf("op %d: Put(%d) mismatch", i, k)
				}
				m[k] = int64(i)
			case 1:
				wv, wok := m[k]
				gv, gok := b.Get(c, k)
				if gok != wok || (wok && gv != wv) {
					t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, gv, gok, wv, wok)
				}
			case 2:
				_, existed := m[k]
				if b.Del(c, k) != existed {
					t.Fatalf("op %d: Del(%d) mismatch", i, k)
				}
				delete(m, k)
			}
		}
	})
	if b.Len() != len(m) {
		t.Fatalf("Len = %d want %d", b.Len(), len(m))
	}
}

func TestSameKeyCollisionsWithinBatch(t *testing.T) {
	// All ops hit one key: within any batch they share a bucket group and
	// must apply in a consistent serial order.
	b := NewBatched(5)
	const n = 800
	news := 0
	newsArr := make([]bool, n)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			newsArr[i] = b.Put(cc, 42, int64(i))
		})
	})
	for _, f := range newsArr {
		if f {
			news++
		}
	}
	if news != 1 {
		t.Fatalf("%d Puts of one key reported new", news)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestMixedParallelConservation(t *testing.T) {
	b := NewBatched(6)
	const n = 3000
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			k := int64(i % 300)
			switch i % 3 {
			case 0:
				b.Put(cc, k, int64(i))
			case 1:
				b.Get(cc, k)
			case 2:
				b.Del(cc, k)
			}
		})
	})
	// Every surviving key retrievable; count matches Len.
	count := 0
	runOn(2, func(c *sched.Ctx) {
		for k := int64(0); k < 300; k++ {
			if _, ok := b.Get(c, k); ok {
				count++
			}
		}
	})
	if count != b.Len() {
		t.Fatalf("Len = %d but %d keys retrievable", b.Len(), count)
	}
}

func TestManyRunsStable(t *testing.T) {
	b := NewBatched(8)
	for round := 0; round < 10; round++ {
		runOn(4, func(c *sched.Ctx) {
			c.For(0, 500, 1, func(cc *sched.Ctx, i int) {
				if round%2 == 0 {
					b.Put(cc, int64(i), int64(round))
				} else {
					b.Del(cc, int64(i))
				}
			})
		})
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after balanced rounds", b.Len())
	}
}
