package omlist

import (
	"testing"
	"testing/quick"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func TestInsertAfterOrigin(t *testing.T) {
	l := NewList()
	a := l.InsertAfter(0)
	b := l.InsertAfter(0)
	// b was inserted after origin, so order is origin, b, a.
	if !l.Before(0, b) || !l.Before(b, a) {
		t.Fatalf("order wrong: %v", l.order())
	}
	if l.Before(a, a) {
		t.Fatal("Before(a,a) true")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestChainInserts(t *testing.T) {
	l := NewList()
	prev := Elem(0)
	var elems []Elem
	for i := 0; i < 1000; i++ {
		prev = l.InsertAfter(prev)
		elems = append(elems, prev)
	}
	for i := 1; i < len(elems); i++ {
		if !l.Before(elems[i-1], elems[i]) {
			t.Fatalf("chain order broken at %d", i)
		}
	}
}

func TestHotspotInsertsForceRelabel(t *testing.T) {
	// Repeatedly inserting after the origin exhausts the gap between the
	// origin and its successor, forcing relabels.
	l := NewList()
	var elems []Elem
	for i := 0; i < 5000; i++ {
		elems = append(elems, l.InsertAfter(0))
	}
	if l.Relabels == 0 {
		t.Fatal("no relabels under hotspot inserts")
	}
	// Later inserts precede earlier ones (LIFO at the hotspot).
	for i := 1; i < len(elems); i++ {
		if !l.Before(elems[i], elems[i-1]) {
			t.Fatalf("hotspot order broken at %d", i)
		}
	}
}

func TestQuickAgainstSliceOracle(t *testing.T) {
	f := func(positions []uint8) bool {
		l := NewList()
		oracle := []Elem{0}
		for _, p := range positions {
			after := oracle[int(p)%len(oracle)]
			e := l.InsertAfter(after)
			// Insert into the oracle right after `after`.
			for i, o := range oracle {
				if o == after {
					oracle = append(oracle[:i+1],
						append([]Elem{e}, oracle[i+1:]...)...)
					break
				}
			}
		}
		got := l.order()
		if len(got) != len(oracle) {
			return false
		}
		for i := range oracle {
			if got[i] != oracle[i] {
				return false
			}
		}
		// All pairwise Before answers must match oracle positions.
		pos := map[Elem]int{}
		for i, o := range oracle {
			pos[o] = i
		}
		for _, a := range oracle {
			for _, b := range oracle {
				if l.Before(a, b) != (pos[a] < pos[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedInsertAndQuery(t *testing.T) {
	b := NewBatched()
	rt := sched.New(sched.Config{Workers: 4, Seed: 81})
	var chain []Elem
	rt.Run(func(c *sched.Ctx) {
		prev := Elem(0)
		for i := 0; i < 200; i++ {
			prev = b.InsertAfter(c, prev)
			chain = append(chain, prev)
		}
	})
	rt.Run(func(c *sched.Ctx) {
		c.For(0, len(chain)-1, 1, func(cc *sched.Ctx, i int) {
			if !b.Before(cc, chain[i], chain[i+1]) {
				t.Errorf("Before(%d, %d) false", chain[i], chain[i+1])
			}
			if b.Before(cc, chain[i+1], chain[i]) {
				t.Errorf("Before(%d, %d) true", chain[i+1], chain[i])
			}
		})
	})
}

func TestBatchedParallelInsertsAfterDistinctElems(t *testing.T) {
	// Build a spine sequentially, then insert after every spine element
	// in parallel; each new element must sit between its spine element
	// and the next.
	b := NewBatched()
	rt := sched.New(sched.Config{Workers: 8, Seed: 83})
	const n = 300
	spine := make([]Elem, n)
	rt.Run(func(c *sched.Ctx) {
		prev := Elem(0)
		for i := 0; i < n; i++ {
			prev = b.InsertAfter(c, prev)
			spine[i] = prev
		}
	})
	children := make([]Elem, n)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			children[i] = b.InsertAfter(cc, spine[i])
		})
	})
	l := b.List()
	for i := 0; i < n; i++ {
		if !l.Before(spine[i], children[i]) {
			t.Fatalf("child %d not after its spine element", i)
		}
		if i+1 < n && !l.Before(children[i], spine[i+1]) {
			t.Fatalf("child %d not before next spine element", i)
		}
	}
}

func TestBatchedMixedLoad(t *testing.T) {
	b := NewBatched()
	rt := sched.New(sched.Config{Workers: 4, Seed: 85})
	r := rng.New(5)
	var elems []Elem
	elems = append(elems, 0)
	rt.Run(func(c *sched.Ctx) {
		for i := 0; i < 2000; i++ {
			if r.Intn(3) == 0 {
				elems = append(elems, b.InsertAfter(c, elems[r.Intn(len(elems))]))
			} else {
				x := elems[r.Intn(len(elems))]
				y := elems[r.Intn(len(elems))]
				got := b.Before(c, x, y)
				want := b.List().Before(x, y)
				if got != want {
					t.Fatalf("op %d: Before(%d,%d) = %v want %v", i, x, y, got, want)
				}
			}
		}
	})
	if b.List().Len() != len(elems) {
		t.Fatalf("Len = %d want %d", b.List().Len(), len(elems))
	}
}
