package server_test

// Policy-dimension test plumbing plus the stats/metrics witnesses for
// the batch-formation policy layer. The chaos and drain suites accept
// the policy under test from the BATCHERD_POLICY env var — the CI
// matrix runs them once per shipped policy, so containment, drain, and
// books-balance guarantees are proven under every launch strategy, not
// just the default.

import (
	"io"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"batcher/internal/loadgen"
	"batcher/internal/sched"
	"batcher/internal/sched/policy"
	"batcher/internal/server"
)

// testPolicy resolves the BATCHERD_POLICY env var into the policy under
// test; empty (the usual local run) means nil, the server default.
func testPolicy(t testing.TB) sched.BatchPolicy {
	t.Helper()
	name := os.Getenv("BATCHERD_POLICY")
	if name == "" {
		return nil
	}
	pol, err := policy.ByName(name, 0, 0)
	if err != nil {
		t.Fatalf("BATCHERD_POLICY: %v", err)
	}
	return pol
}

// TestStatsPolicyAndLaunchReasons drives a sharded server under an
// explicit policy and checks the policy surface of the stats document:
// the policy name, per-reason launch counters that account for every
// executed batch, and the OpsPerSec identity — the global figure must
// equal the per-shard sum exactly, both computed from the same
// pump-completed basis (the satellite bugfix: the old global figure
// used Completed−Immediate while shards used their ledgers, so the two
// drifted whenever stats reads were in flight).
func TestStatsPolicyAndLaunchReasons(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  sched.BatchPolicy
	}{
		{"default", nil},
		{"size-cap", policy.SizeCap{K: 2}},
		{"deadline", policy.Deadline{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := server.Start(server.Config{
				Workers: 2,
				Shards:  2,
				Seed:    91,
				Policy:  tc.pol,
			})
			if err != nil {
				t.Fatalf("Start: %v", err)
			}
			res, err := loadgen.Run(loadgen.Workload{
				Addr:     s.Addr().String(),
				Conns:    4,
				Ops:      200,
				Window:   8,
				DS:       server.DSHashmap,
				ReadFrac: 0.5,
				KeySpace: 1 << 10,
				Seed:     91,
			})
			if err != nil || res.Errors != 0 {
				t.Fatalf("loadgen: err=%v rejected=%d", err, res.Errors)
			}
			// A stats read is an Immediate response: under the old
			// accounting it skewed the global OpsPerSec basis.
			cl, err := loadgen.Dial(s.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Stats(); err != nil {
				t.Fatal(err)
			}
			cl.Close()
			s.Shutdown()

			st := s.Snapshot()
			wantName := "default"
			if tc.pol != nil {
				wantName = tc.pol.Name()
			}
			if st.Policy != wantName {
				t.Fatalf("Stats.Policy = %q, want %q", st.Policy, wantName)
			}

			var sum float64
			for _, ss := range st.PerShard {
				sum += ss.OpsPerSec
			}
			if math.Abs(sum-st.OpsPerSec) > 1e-9*math.Max(1, st.OpsPerSec) {
				t.Fatalf("sum(per_shard ops_per_sec) = %v != global %v", sum, st.OpsPerSec)
			}
			// Same basis end to end: the per-shard ledgers sum to the
			// pumped completions, which exclude the Immediate stats read.
			var comp int64
			for _, ss := range st.PerShard {
				comp += ss.Completed
			}
			if comp != st.Completed-st.Immediate {
				t.Fatalf("shard ledgers total %d, want Completed-Immediate = %d",
					comp, st.Completed-st.Immediate)
			}

			var launches int64
			for name, n := range st.LaunchReasons {
				if n < 0 {
					t.Fatalf("launch reason %q negative: %d", name, n)
				}
				launches += n
			}
			// Every executed batch was launched by a counted claim
			// (claims can outnumber batches: a claim whose record was
			// already consumed executes an empty batch).
			if launches < st.Batches {
				t.Fatalf("launch reasons total %d < %d executed batches (%v)",
					launches, st.Batches, st.LaunchReasons)
			}
			if _, held := st.LaunchReasons["hold"]; held {
				t.Fatal(`"hold" appeared as a launch reason`)
			}
		})
	}
}

// TestMetricsPolicySurface scrapes /metrics and checks the policy info
// gauge and the per-reason launch counter family are exported.
func TestMetricsPolicySurface(t *testing.T) {
	s, err := server.Start(server.Config{
		Workers: 2,
		Seed:    93,
		Policy:  policy.SizeCap{K: 2},
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Shutdown()
	res, err := loadgen.Run(loadgen.Workload{
		Addr:     s.Addr().String(),
		Conns:    2,
		Ops:      50,
		Window:   4,
		DS:       server.DSCounter,
		KeySpace: 8,
		Seed:     93,
	})
	if err != nil || res.Errors != 0 {
		t.Fatalf("loadgen: err=%v rejected=%d", err, res.Errors)
	}
	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, `batcherd_policy_info{policy="size-cap"} 1`) {
		t.Fatalf("policy info gauge missing:\n%s", body)
	}
	if !strings.Contains(body, `batcherd_batch_launch_total{reason=`) {
		t.Fatalf("launch reason counters missing:\n%s", body)
	}
}
