package psort

import (
	"sort"
	"testing"
	"testing/quick"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func runOn(p int, f func(c *sched.Ctx)) {
	rt := sched.New(sched.Config{Workers: p, Seed: 99})
	rt.Run(f)
}

func TestInt64sSmall(t *testing.T) {
	cases := [][]int64{
		nil,
		{1},
		{2, 1},
		{3, 1, 2},
		{5, 5, 5, 5},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
	}
	for _, in := range cases {
		got := append([]int64(nil), in...)
		runOn(4, func(c *sched.Ctx) { Int64s(c, got) })
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("in=%v: got=%v want=%v", in, got, want)
			}
		}
	}
}

func TestInt64sLarge(t *testing.T) {
	r := rng.New(17)
	const n = 200_000
	in := make([]int64, n)
	for i := range in {
		in[i] = r.Int63() % 1000 // many duplicates
	}
	for _, p := range []int{1, 4, 8} {
		got := append([]int64(nil), in...)
		runOn(p, func(c *sched.Ctx) { Int64s(c, got) })
		if !IsSorted(got, func(a, b int64) bool { return a < b }) {
			t.Fatalf("P=%d: output not sorted", p)
		}
		// Multiset preserved.
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("P=%d: got[%d]=%d want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestSliceCustomLess(t *testing.T) {
	type kv struct{ k, v int }
	xs := []kv{{3, 0}, {1, 1}, {2, 2}, {1, 3}}
	runOn(2, func(c *sched.Ctx) {
		Slice(c, xs, func(a, b kv) bool { return a.k < b.k })
	})
	for i := 1; i < len(xs); i++ {
		if xs[i].k < xs[i-1].k {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}

func TestQuickSortMatchesStdlib(t *testing.T) {
	f := func(in []int64) bool {
		got := append([]int64(nil), in...)
		runOn(4, func(c *sched.Ctx) { Int64s(c, got) })
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a := []int64{1, 3, 5, 7}
	b := []int64{2, 2, 6, 8, 10}
	var out []int64
	runOn(4, func(c *sched.Ctx) {
		out = Merge(c, a, b, func(x, y int64) bool { return x < y })
	})
	want := []int64{1, 2, 2, 3, 5, 6, 7, 8, 10}
	if len(out) != len(want) {
		t.Fatalf("len=%d want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out=%v want %v", out, want)
		}
	}
}

func TestMergeLargeParallelPath(t *testing.T) {
	r := rng.New(23)
	mk := func(n int) []int64 {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = r.Int63() % 500
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		return xs
	}
	a, b := mk(30_000), mk(50_000)
	var out []int64
	runOn(8, func(c *sched.Ctx) {
		out = Merge(c, a, b, func(x, y int64) bool { return x < y })
	})
	if len(out) != len(a)+len(b) {
		t.Fatalf("len=%d", len(out))
	}
	if !IsSorted(out, func(x, y int64) bool { return x < y }) {
		t.Fatal("merge output not sorted")
	}
	// Multiset check via counting.
	count := map[int64]int{}
	for _, v := range a {
		count[v]++
	}
	for _, v := range b {
		count[v]++
	}
	for _, v := range out {
		count[v]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("key %d count mismatch %d", k, c)
		}
	}
}

func TestMergeEmptySides(t *testing.T) {
	runOn(2, func(c *sched.Ctx) {
		less := func(x, y int64) bool { return x < y }
		if out := Merge(c, nil, []int64{1, 2}, less); len(out) != 2 {
			t.Errorf("nil left: %v", out)
		}
		if out := Merge(c, []int64{1, 2}, nil, less); len(out) != 2 {
			t.Errorf("nil right: %v", out)
		}
		if out := Merge[int64](c, nil, nil, less); len(out) != 0 {
			t.Errorf("both nil: %v", out)
		}
	})
}

func TestDedup(t *testing.T) {
	eq := func(a, b int64) bool { return a == b }
	cases := []struct{ in, want []int64 }{
		{nil, nil},
		{[]int64{1}, []int64{1}},
		{[]int64{1, 1, 1}, []int64{1}},
		{[]int64{1, 2, 2, 3, 3, 3}, []int64{1, 2, 3}},
		{[]int64{1, 2, 3}, []int64{1, 2, 3}},
	}
	for _, tc := range cases {
		got := Dedup(append([]int64(nil), tc.in...), eq)
		if len(got) != len(tc.want) {
			t.Fatalf("in=%v got=%v want=%v", tc.in, got, tc.want)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("in=%v got=%v want=%v", tc.in, got, tc.want)
			}
		}
	}
}

func TestIsSorted(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	if !IsSorted([]int{1, 2, 2, 3}, less) {
		t.Fatal("sorted slice reported unsorted")
	}
	if IsSorted([]int{2, 1}, less) {
		t.Fatal("unsorted slice reported sorted")
	}
	if !IsSorted([]int{}, less) {
		t.Fatal("empty slice reported unsorted")
	}
}

func BenchmarkSort100k(b *testing.B) {
	r := rng.New(31)
	in := make([]int64, 100_000)
	for i := range in {
		in[i] = r.Int63()
	}
	rt := sched.New(sched.Config{Workers: 4, Seed: 1})
	buf := make([]int64, len(in))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		rt.Run(func(c *sched.Ctx) { Int64s(c, buf) })
	}
}
