// Package simds provides the simulated cost models (sim.BatchModel
// implementations) for the data structures the paper analyzes: the
// prefix-sums counter, the Section 7 skip list, the batched 2-3 search
// tree, and the amortized table-doubling stack. Each model emits the
// batch dag whose work/span profile Section 3 derives, and prices the
// corresponding sequential baseline so that SEQ-vs-BATCHER comparisons
// use one consistent cost scale.
package simds

import (
	"math/bits"

	"batcher/internal/sim"
)

// lg returns ceil(log2(max(n,2))), the canonical "search cost" scale.
func lg(n int64) int32 {
	if n < 2 {
		n = 2
	}
	return int32(bits.Len64(uint64(n - 1)))
}

func totalRecords(ops []*sim.Op) int {
	x := 0
	for _, op := range ops {
		x += op.RecordCount()
	}
	return x
}

// Counter models the batched shared counter (Figure 2): a size-x batch
// costs Θ(x) work and O(lg x) span, realized as an upsweep + downsweep
// pair of fork-join trees (parallel prefix sums). The sequential
// baseline costs 1 per increment.
type Counter struct{}

// BuildBOP implements sim.BatchModel.
func (Counter) BuildBOP(g *sim.Graph, ops []*sim.Op) (int32, int32) {
	x := totalRecords(ops)
	upE, upX := g.ForkJoin(x, 1, sim.KindBatch)
	downE, downX := g.ForkJoin(x, 1, sim.KindBatch)
	g.AddEdge(upX, downE)
	return upE, downX
}

// SeqCost implements sim.BatchModel.
func (Counter) SeqCost(op *sim.Op) int64 { return int64(op.RecordCount()) }

// SkipList models the Section 7 batched skip list over a list of Size
// keys. Its three-step BOP: build the batch's list (sequential chain of
// x), search the main list in parallel (x leaves of weight SearchScale ·
// lg(Size)), splice sequentially (chain of x). The sequential baseline
// pays SearchScale·lg(Size) + SpliceCost per insert. Insertions grow
// Size, so per-op costs track list growth exactly as in the experiment.
type SkipList struct {
	// Size is the current number of keys (set to the initial size
	// before a run).
	Size int64
	// SearchScale multiplies lg(Size) into per-key search work
	// (default 1).
	SearchScale int32
	// SpliceCost is per-key splice work (default 1).
	SpliceCost int32
}

func (s *SkipList) scales() (int32, int32) {
	sc, sp := s.SearchScale, s.SpliceCost
	if sc <= 0 {
		sc = 1
	}
	if sp <= 0 {
		sp = 1
	}
	return sc, sp
}

// BuildBOP implements sim.BatchModel.
func (s *SkipList) BuildBOP(g *sim.Graph, ops []*sim.Op) (int32, int32) {
	sc, sp := s.scales()
	x := totalRecords(ops)
	search := sc * lg(s.Size)
	bE, bX := g.Chain(int64(x), sim.KindBatch) // build batch list
	sE, sX := g.ForkJoin(x, search, sim.KindBatch)
	pE, pX := g.Chain(int64(x)*int64(sp), sim.KindBatch) // splice
	g.AddEdge(bX, sE)
	g.AddEdge(sX, pE)
	s.Size += int64(x)
	return bE, pX
}

// SeqCost implements sim.BatchModel.
func (s *SkipList) SeqCost(op *sim.Op) int64 {
	sc, sp := s.scales()
	var total int64
	for i := 0; i < op.RecordCount(); i++ {
		total += int64(sc)*int64(lg(s.Size)) + int64(sp)
		s.Size++
	}
	return total
}

// Tree models the batched 2-3 search tree of Section 3: a size-x batch
// sorts its keys (x leaves of weight lg x) and then searches/inserts in
// parallel (x leaves of weight lg Size), giving O(x lg n) work — the
// profile whose Theorem 1 corollary is the Θ(n lg n / P) optimal bound.
type Tree struct {
	// Size is the current number of keys.
	Size int64
}

// BuildBOP implements sim.BatchModel.
func (t *Tree) BuildBOP(g *sim.Graph, ops []*sim.Op) (int32, int32) {
	x := totalRecords(ops)
	sortE, sortX := g.ForkJoin(x, lg(int64(x)), sim.KindBatch)
	insE, insX := g.ForkJoin(x, lg(t.Size), sim.KindBatch)
	g.AddEdge(sortX, insE)
	t.Size += int64(x)
	return sortE, insX
}

// SeqCost implements sim.BatchModel.
func (t *Tree) SeqCost(op *sim.Op) int64 {
	var total int64
	for i := 0; i < op.RecordCount(); i++ {
		total += int64(lg(t.Size)) + 1
		t.Size++
	}
	return total
}

// Stack operation tags.
const (
	// StackPush pushes the op's records.
	StackPush int32 = iota
	// StackPop pops the op's records.
	StackPop
)

// Stack models the amortized table-doubling stack of Section 3: a normal
// size-x batch is a fork-join of x unit leaves; a batch that overflows
// (or underflows) the table also rebuilds it — Θ(Size) extra work in
// that one batch — keeping amortized Θ(1) per op but non-uniform batch
// costs, exactly the amortized regime Theorem 1's s(n) definition
// handles.
type Stack struct {
	// Size is the number of elements; Cap the current table capacity.
	Size, Cap int64
	// Rebuilds counts table rebuilds (for tests).
	Rebuilds int
}

func (s *Stack) ensureCap() {
	if s.Cap < 8 {
		s.Cap = 8
	}
}

// BuildBOP implements sim.BatchModel.
func (s *Stack) BuildBOP(g *sim.Graph, ops []*sim.Op) (int32, int32) {
	s.ensureCap()
	pushes, pops := 0, 0
	for _, op := range ops {
		if op.Tag == StackPop {
			pops += op.RecordCount()
		} else {
			pushes += op.RecordCount()
		}
	}
	entry, exit := g.ForkJoin(pushes+pops, 1, sim.KindBatch)
	// Grow before pushes if needed.
	if s.Size+int64(pushes) > s.Cap {
		for s.Size+int64(pushes) > s.Cap {
			s.Cap *= 2
		}
		s.Rebuilds++
		cE, cX := g.ForkJoin(int(s.Size), 1, sim.KindBatch) // parallel copy
		g.AddEdge(exit, cE)
		exit = cX
	}
	s.Size += int64(pushes)
	if int64(pops) > s.Size {
		pops = int(s.Size)
	}
	s.Size -= int64(pops)
	// Shrink after pops if under-occupied.
	if s.Cap > 8 && s.Size < s.Cap/4 {
		for s.Cap > 8 && s.Size < s.Cap/4 {
			s.Cap /= 2
		}
		s.Rebuilds++
		cE, cX := g.ForkJoin(int(s.Size)+1, 1, sim.KindBatch)
		g.AddEdge(exit, cE)
		exit = cX
	}
	return entry, exit
}

// SeqCost implements sim.BatchModel.
func (s *Stack) SeqCost(op *sim.Op) int64 {
	s.ensureCap()
	var total int64
	n := int64(op.RecordCount())
	if op.Tag == StackPop {
		if n > s.Size {
			n = s.Size
		}
		s.Size -= n
		total = int64(op.RecordCount())
		if s.Cap > 8 && s.Size < s.Cap/4 {
			for s.Cap > 8 && s.Size < s.Cap/4 {
				s.Cap /= 2
			}
			s.Rebuilds++
			total += s.Size
		}
		return total
	}
	total = n
	if s.Size+n > s.Cap {
		for s.Size+n > s.Cap {
			s.Cap *= 2
		}
		s.Rebuilds++
		total += s.Size
	}
	s.Size += n
	return total
}

// ContendedCounter models the trivial concurrent counter of Section 3: a
// fetch-and-add serializes, so an increment executing alongside k-1
// others pays Θ(k) (its turn in the serialization order). n concurrent
// increments therefore take Ω(n) total time regardless of P — the
// introduction's headline claim.
type ContendedCounter struct{}

// OpCost implements sim.DirectModel.
func (ContendedCounter) OpCost(op *sim.Op, active int) int64 {
	return int64(op.RecordCount()) * int64(active)
}

// ContendedTree models a concurrent search tree whose updates contend at
// shared nodes (the paper's footnote on the lock-free B+-tree: P
// processes CASing the same node give Ω(P) worst-case latency). Each
// operation pays its lg(Size) search plus a CAS-retry penalty
// proportional to the number of concurrently active operations.
type ContendedTree struct {
	// Size is the tree's key count.
	Size int64
	// Contention scales the per-active-op retry penalty (default 1).
	Contention int32
}

// OpCost implements sim.DirectModel.
func (t *ContendedTree) OpCost(op *sim.Op, active int) int64 {
	c := t.Contention
	if c <= 0 {
		c = 1
	}
	var total int64
	for i := 0; i < op.RecordCount(); i++ {
		total += int64(lg(t.Size)) + int64(c)*int64(active)
		t.Size++
	}
	return total
}

// Uniform is a generic model: every record costs exactly Work in the
// batch (fork-join leaves of weight Work) and Work sequentially. It is
// the knob the Theorem 1 validation sweeps turn (s(n) scales with Work).
type Uniform struct {
	// Work is the per-record weight (>= 1).
	Work int32
}

// BuildBOP implements sim.BatchModel.
func (u Uniform) BuildBOP(g *sim.Graph, ops []*sim.Op) (int32, int32) {
	w := u.Work
	if w < 1 {
		w = 1
	}
	return g.ForkJoin(totalRecords(ops), w, sim.KindBatch)
}

// SeqCost implements sim.BatchModel.
func (u Uniform) SeqCost(op *sim.Op) int64 {
	w := u.Work
	if w < 1 {
		w = 1
	}
	return int64(op.RecordCount()) * int64(w)
}
