// Package obs is the repository's observability layer: a lock-free
// per-worker event tracer with a Chrome trace_event exporter, HDR-style
// log-bucket latency histograms with a zero-allocation record path, and
// a Prometheus-text-format metric registry. The scheduler
// (internal/sched), the serving edge (internal/server), and the load
// generator (internal/loadgen) all publish into it; everything is
// stdlib-only and safe for concurrent use.
//
// The package deliberately has no dependency on the rest of the
// repository, so any layer can import it without cycles.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket geometry: values are non-negative int64s (typically
// nanoseconds or batch sizes) mapped into log-linear buckets — the
// HdrHistogram layout. The first 2^subBits buckets are exact (width 1);
// above that each octave [2^k, 2^(k+1)) is split into 2^subBits equal
// sub-buckets, so the relative width of any bucket is at most
// 1/2^subBits. With subBits = 5 that is a guaranteed ≤3.125% relative
// quantile error at *any* quantile — p50 and p99.9 alike — which is why
// a fixed array of counters can replace the sorted-slice percentile
// code (see DESIGN.md §10).
const (
	subBits  = 5
	subCount = 1 << subBits // 32 exact buckets, 32 sub-buckets per octave
	// numBuckets covers every non-negative int64: the largest index is
	// reached at v = 2^63-1, where e = 63-(subBits+1) and sub = 2^(subBits+1)-1.
	numBuckets = (62-subBits)*subCount + 2*subCount
)

// bucketIndex maps a value to its bucket. Negative values clamp to 0.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	// Shift so the top subBits+1 bits remain: sub is in [subCount, 2*subCount)
	// and indices continue contiguously from the exact region.
	e := uint(bits.Len64(uint64(v))) - (subBits + 1)
	sub := int64(uint64(v) >> e)
	return int(e)*subCount + int(sub)
}

// bucketUpper returns the largest value mapping to bucket idx (the
// bucket's inclusive upper bound). Quantile reports this bound, so its
// estimates err high by at most one bucket width.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	e := uint(idx/subCount - 1)
	sub := int64(idx - int(e)*subCount)
	return ((sub + 1) << e) - 1
}

// Histogram is a fixed-geometry log-bucket histogram with an
// allocation-free, lock-free record path: Observe is one index
// computation plus four atomic updates. All methods are safe for
// concurrent use; readers see a live (not point-in-time consistent)
// view, which is what a metrics scrape wants.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // valid when count > 0
	max    atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	return h
}

// Observe records one value. Negative values clamp to zero. It never
// allocates and never blocks.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact sum of observed values (not bucket-rounded), so
// Mean is exact — the property the batch-size histogram needs to agree
// with the scheduler's LiveBatchStats counters.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns Sum/Count, or 0 when empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Min returns the exact smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the exact largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper estimate of the q-quantile (q in [0, 1]):
// the inclusive upper bound of the bucket containing the ceil(q·count)-th
// smallest observation. The estimate is exact below 2^subBits and within
// 2^-subBits (3.125%) relative error above. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range h.counts {
		cum += int64(h.counts[i].Load())
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return h.Max()
}

// Merge adds every observation of o into h. Bucket counts, count, sum,
// min, and max all merge exactly.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	if c := o.count.Load(); c > 0 {
		h.count.Add(c)
		h.sum.Add(o.sum.Load())
		for lo := o.Min(); ; {
			cur := h.min.Load()
			if lo >= cur || h.min.CompareAndSwap(cur, lo) {
				break
			}
		}
		for hi := o.Max(); ; {
			cur := h.max.Load()
			if hi <= cur || h.max.CompareAndSwap(cur, hi) {
				break
			}
		}
	}
}

// HistCursor remembers one reader's position in a histogram so that
// interval (delta) quantiles can be computed: the quantile over only
// the observations recorded since the cursor last advanced. The
// admission sampler uses one per shard to pair each tick's predicted
// p999 against the p999 *realized during that tick*, which a lifetime
// quantile would smear out. A cursor belongs to a single reader; the
// histogram itself stays shared and lock-free.
type HistCursor struct {
	counts [numBuckets]uint64
}

// DeltaQuantile returns an upper estimate of the q-quantile of the
// observations recorded since c's last advance, then advances c to
// the current position. The second result is false when no new
// observations arrived (the cursor still advances past any partial
// racing updates it saw). Same bucket geometry and ≤3.125% relative
// error as Quantile. The scan is O(numBuckets) — a few microseconds —
// intended for sampler-rate (not hot-path) use.
func (h *Histogram) DeltaQuantile(q float64, c *HistCursor) (int64, bool) {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// One pass snapshots the deltas and totals them; totaling from the
	// bucket counts themselves (not h.count) keeps the target and the
	// scan internally consistent under concurrent Observes.
	var deltas [numBuckets]uint64
	var total int64
	for i := range h.counts {
		cur := h.counts[i].Load()
		deltas[i] = cur - c.counts[i]
		c.counts[i] = cur
		total += int64(deltas[i])
	}
	if total == 0 {
		return 0, false
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range deltas {
		cum += int64(deltas[i])
		if cum >= target {
			return bucketUpper(i), true
		}
	}
	return bucketUpper(numBuckets - 1), true
}

// Bucket is one cumulative exposition bucket: Count observations were
// ≤ Upper.
type Bucket struct {
	Upper int64
	Count int64
}

// Cumulative returns cumulative exposition buckets: one per nonempty
// histogram bucket, in increasing upper-bound order, each carrying the
// count of observations ≤ its bound. The counts are exact (no
// re-bucketing), and any prefix of boundaries is a valid Prometheus
// cumulative histogram. When more than maxExpoBuckets buckets are
// nonempty, adjacent boundaries are merged (keeping cumulative counts
// exact at the surviving boundaries) to bound scrape size.
func (h *Histogram) Cumulative() []Bucket {
	var out []Bucket
	var cum int64
	total := h.count.Load()
	for i := 0; i < numBuckets && cum < total; i++ {
		c := int64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, Bucket{Upper: bucketUpper(i), Count: cum})
	}
	if len(out) > maxExpoBuckets {
		stride := (len(out) + maxExpoBuckets - 1) / maxExpoBuckets
		kept := out[:0]
		for i := range out {
			// Keep every stride-th boundary and always the last (so the
			// final bucket carries the full count).
			if (i+1)%stride == 0 || i == len(out)-1 {
				kept = append(kept, out[i])
			}
		}
		out = kept
	}
	return out
}

// maxExpoBuckets bounds the number of _bucket lines one histogram emits
// on a scrape.
const maxExpoBuckets = 64
