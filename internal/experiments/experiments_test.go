package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallFig5 keeps test runtime modest while preserving the shape.
func smallFig5(fc bool) Fig5Config {
	return Fig5Config{
		Calls:         300,
		RecordsPer:    100,
		Sizes:         []int64{20_000, 1_000_000, 100_000_000},
		Workers:       []int{1, 2, 4, 8},
		Seed:          7,
		FlatCombining: fc,
	}
}

func TestFig5ChecksPass(t *testing.T) {
	res := Fig5(smallFig5(true))
	if len(res.Rows) != 3*4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, c := range res.ShapeChecks() {
		if !c.Pass {
			t.Errorf("%s", c)
		}
	}
	tbl := res.Table().String()
	if !strings.Contains(tbl, "BATCHER tput") {
		t.Fatalf("table missing columns:\n%s", tbl)
	}
}

func TestCounterChecksPass(t *testing.T) {
	res := Counter(1000, 32, []int{1, 2, 4, 8}, 11)
	for _, c := range res.ShapeChecks() {
		if !c.Pass {
			t.Errorf("%s", c)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestTreeChecksPass(t *testing.T) {
	res := Tree([]int{2000, 8000}, []int{1, 2, 4, 8}, 1<<20, 13)
	for _, c := range res.ShapeChecks() {
		if !c.Pass {
			t.Errorf("%s", c)
		}
	}
}

func TestStackChecksPass(t *testing.T) {
	res := Stack(1000, 32, []int{1, 2, 4, 8}, 17)
	for _, c := range res.ShapeChecks() {
		if !c.Pass {
			t.Errorf("%s", c)
		}
	}
}

func TestBoundFitChecksPass(t *testing.T) {
	res := BoundFit(19)
	for _, c := range res.ShapeChecks() {
		if !c.Pass {
			t.Errorf("%s", c)
		}
	}
}

func TestLemma2ChecksPass(t *testing.T) {
	for _, c := range Lemma2(23) {
		if !c.Pass {
			t.Errorf("%s", c)
		}
	}
}

func TestAblations(t *testing.T) {
	for _, res := range []AblateResult{
		AblateSteal(400, 8, 29),
		AblateCap(400, 8, 31),
		AblateLaunch(400, 8, 37),
	} {
		if res.Rows.String() == "" {
			t.Fatalf("%s: empty table", res.Knob)
		}
		for _, c := range res.ShapeChecks() {
			if !c.Pass {
				t.Errorf("%s", c)
			}
		}
	}
}

func TestCheckString(t *testing.T) {
	c := Check{Name: "x", Pass: true, Detail: "d"}
	if !strings.HasPrefix(c.String(), "PASS") {
		t.Fatal(c.String())
	}
	c.Pass = false
	if !strings.HasPrefix(c.String(), "FAIL") {
		t.Fatal(c.String())
	}
}

func TestRealSkipListEnginesAgree(t *testing.T) {
	cfg := RealSkipListConfig{
		Calls: 50, RecordsPer: 20, Initial: 2000, Workers: 4, Seed: 41,
	}
	for name, f := range map[string]func(RealSkipListConfig) time.Duration{
		"batcher": RealSkipListBatcher,
		"seq":     RealSkipListSeq,
		"mutex":   RealSkipListMutex,
		"fc":      RealSkipListFlatCombining,
	} {
		if d := f(cfg); d <= 0 {
			t.Errorf("%s: non-positive duration %v", name, d)
		}
	}
	if RealSkipList(cfg).String() == "" {
		t.Fatal("empty real table")
	}
}

func TestRealCounters(t *testing.T) {
	if d := RealCounterBatcher(4, 2000, 43); d <= 0 {
		t.Fatalf("batcher counter duration %v", d)
	}
	if d := RealCounterAtomic(4, 2000); d <= 0 {
		t.Fatalf("atomic counter duration %v", d)
	}
}

func TestIntroChecksPass(t *testing.T) {
	res := Intro(1000, 32, []int{1, 2, 4, 8}, 47)
	for _, c := range res.ShapeChecks() {
		if !c.Pass {
			t.Errorf("%s", c)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestTauChecksPass(t *testing.T) {
	res := Tau(2000, 32, 8, 53)
	if res.Batches == 0 || len(res.Rows) == 0 {
		t.Fatal("no data")
	}
	for _, c := range res.ShapeChecks() {
		if !c.Pass {
			t.Errorf("%s", c)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
