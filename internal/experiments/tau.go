package experiments

import (
	"batcher/internal/sim"
	"batcher/internal/simds"
	"batcher/internal/stats"
)

// Tau validates Theorem 3, the parameterized form of the running-time
// bound: for any τ ≥ lg P,
//
//	T = O( (T1 + W(n) + n·τ)/P + T∞ + S_τ(n) + m·τ ),
//
// where S_τ(n) — the τ-trimmed span — is the sum of the spans of the
// batches whose span exceeds τ. The theorem's tradeoff: raising τ
// inflates the n·τ and m·τ terms but shrinks S_τ as fewer batches count
// as "long"; Corollary 14 picks τ = s(n) where W/P dominates S_τ.
//
// The experiment runs one amortized-stack workload (chosen because its
// rebuild batches give a genuinely heavy-tailed span distribution),
// records every batch's BOP span, and evaluates the bound across a τ
// grid, checking (a) the measured makespan is below a small constant
// times the bound at every τ, (b) S_τ is non-increasing in τ, and (c)
// at τ = s(n) the W/P term dominates S_τ, the fact Corollary 14 uses to
// collapse Theorem 3 into Theorem 1.

// TauRow is one τ grid point.
type TauRow struct {
	Tau int64
	// LongBatches counts batches with span > τ; STau is their span sum.
	LongBatches int
	STau        int64
	// Bound is (T1+W+n·τ)/P + T∞ + S_τ + m·τ for the measured run.
	Bound float64
	// Ratio is makespan / Bound.
	Ratio float64
}

// TauResult holds the series.
type TauResult struct {
	Makespan int64
	Batches  int
	MaxSpan  int64
	Rows     []TauRow
	snTau    int64 // the τ = s(n)-ish pivot used by the checks
	wOverP   float64
	snSTau   int64
}

// Tau runs the Theorem 3 validation.
func Tau(calls, recordsPer, p int, seed uint64) TauResult {
	g := sim.NewGraph(calls * 4)
	ops := make([]*sim.Op, calls)
	for i := range ops {
		ops[i] = &sim.Op{Records: recordsPer}
	}
	g.ForkJoinDS(ops, 1, 1)
	t1 := float64(g.Work())
	tInf := float64(g.Span())

	r := sim.NewSim(sim.Config{Workers: p, Seed: seed, RecordBatchSpans: true},
		&simds.Stack{}).Run(g)

	res := TauResult{Makespan: r.Makespan, Batches: len(r.BatchSpans)}
	var w float64
	for _, b := range r.BatchSpans {
		w += float64(b.Work)
		if b.Span > res.MaxSpan {
			res.MaxSpan = b.Span
		}
	}
	res.wOverP = w / float64(p)

	n := float64(calls)
	const m = 1 // parallel loop: one data-structure node per path
	// τ grid: lg P up to beyond the largest batch span.
	for tau := int64(lg2(int64(p))); tau <= res.MaxSpan*2; tau *= 2 {
		var sTau int64
		long := 0
		for _, b := range r.BatchSpans {
			if b.Span > tau {
				sTau += b.Span
				long++
			}
		}
		bound := (t1+w+n*float64(tau))/float64(p) + tInf + float64(sTau) + float64(m*tau)
		res.Rows = append(res.Rows, TauRow{
			Tau: tau, LongBatches: long, STau: sTau,
			Bound: bound, Ratio: float64(r.Makespan) / bound,
		})
	}

	// Corollary 14's pivot: τ = s(n). For the amortized stack the paper
	// derives s(n) = O(lg P) from the parallelism-limited definition; the
	// fork-join constant makes it ~2 lg(P·recordsPer) here, so use the
	// median batch span as the empirical s(n).
	spans := make([]int64, 0, len(r.BatchSpans))
	for _, b := range r.BatchSpans {
		spans = append(spans, b.Span)
	}
	res.snTau = median(spans)
	for _, b := range r.BatchSpans {
		if b.Span > res.snTau {
			res.snSTau += b.Span
		}
	}
	return res
}

func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int64(nil), xs...)
	for i := 1; i < len(cp); i++ { // insertion sort; batches are few
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// Table renders the τ grid.
func (r TauResult) Table() *stats.Table {
	t := stats.NewTable("tau", "long batches", "S_tau", "bound", "makespan/bound")
	for _, row := range r.Rows {
		t.AddRow(row.Tau, row.LongBatches, row.STau, row.Bound, row.Ratio)
	}
	return t
}

// ShapeChecks verifies the Theorem 3 properties.
func (r TauResult) ShapeChecks() []Check {
	ratios := make([]float64, 0, len(r.Rows))
	monotone := true
	for i, row := range r.Rows {
		ratios = append(ratios, row.Ratio)
		if i > 0 && row.STau > r.Rows[i-1].STau {
			monotone = false
		}
	}
	_, hi := stats.MinMax(ratios)
	return []Check{
		{
			Name:   "thm3: makespan within a small constant of the bound at every τ in the grid",
			Pass:   hi <= 1.5,
			Detail: fmtCheck("max makespan/bound = %.3f over %d τ values", hi, len(r.Rows)),
		},
		{
			Name:   "thm3: τ-trimmed span is non-increasing in τ",
			Pass:   monotone,
			Detail: fmtCheck("S_τ from %d down to %d across the grid", r.Rows[0].STau, r.Rows[len(r.Rows)-1].STau),
		},
		{
			Name: "cor14: at τ ≈ s(n), W(n)/P dominates S_τ(n)",
			Pass: r.wOverP >= float64(r.snSTau),
			Detail: fmtCheck("W/P = %.0f vs S_τ = %d at τ = %d (median batch span)",
				r.wOverP, r.snSTau, r.snTau),
		},
	}
}
