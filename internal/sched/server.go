package sched

// Server implements the extension sketched in the paper's conclusion
// (Section 8): "a pthreaded program could run as normal, with
// data-structure calls replaced by BATCHER calls, allowing work-stealing
// to operate over the data structure batches while static pthreading
// operates over the main program."
//
// Here the "pthreads" are ordinary goroutines outside the scheduler.
// They publish operation records with Invoke, which blocks the calling
// goroutine (parking it on a channel, not spinning) until some batch has
// performed the operation. The scheduler's P workers do nothing but
// execute batches: a dispatcher task claims pending records — at most
// BatchCap per batch, one batch at a time — and runs each structure's
// RunBatch as a parallel computation that all workers help with via work
// stealing. Invariants 1 and 2 carry over verbatim.

import (
	"sync"
	"sync/atomic"
	"time"
)

// ServerConfig configures a Server.
type ServerConfig struct {
	// Workers is P, the scheduler workers executing batches.
	Workers int
	// Seed seeds victim selection.
	Seed uint64
	// BatchCap limits operations per batch; 0 means Workers, matching
	// Invariant 2's size-P cap.
	BatchCap int
}

// Server is a standalone implicit-batching service for code that is not
// written against the fork-join runtime. Create with NewServer, submit
// with Invoke from any goroutine, and Close when done.
type Server struct {
	rt  *Runtime
	cap int

	mu      sync.Mutex
	pending []*serverOp

	// wake nudges the dispatcher when work arrives, so an idle server
	// serves the first operation with channel latency rather than
	// polling latency.
	wake chan struct{}

	stop atomic.Bool
	done chan struct{}
}

type serverOp struct {
	op   *OpRecord
	done chan struct{}
}

// NewServer starts a batching server. The returned server is live:
// Invoke may be called immediately.
func NewServer(cfg ServerConfig) *Server {
	rt := New(Config{Workers: cfg.Workers, Seed: cfg.Seed})
	capN := cfg.BatchCap
	if capN <= 0 {
		capN = rt.Workers()
	}
	s := &Server{rt: rt, cap: capN, wake: make(chan struct{}, 1), done: make(chan struct{})}
	go s.serve()
	return s
}

// Invoke performs op through implicit batching, blocking the calling
// goroutine (without occupying a scheduler worker) until the operation
// has executed as part of a batch. Safe for concurrent use by any number
// of goroutines.
func (s *Server) Invoke(op *OpRecord) {
	if op.DS == nil {
		panic("sched: Invoke with nil OpRecord.DS")
	}
	if s.stop.Load() {
		panic("sched: Invoke on closed Server")
	}
	so := &serverOp{op: op, done: make(chan struct{})}
	s.mu.Lock()
	s.pending = append(s.pending, so)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default: // a wakeup is already queued
	}
	<-so.done
}

// Close drains outstanding operations and shuts the server down. Invoke
// must not be called concurrently with or after Close. Close is
// idempotent: repeated or concurrent calls all block until the first
// one's shutdown completes and none panic.
func (s *Server) Close() {
	if s.stop.CompareAndSwap(false, true) {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	<-s.done
}

// serve runs the dispatcher inside a single scheduler Run: a core task
// that repeatedly claims pending records and executes each claimed group
// as a batch-dag computation. All P workers participate in each batch by
// stealing its tasks.
func (s *Server) serve() {
	defer close(s.done)
	s.rt.Run(func(c *Ctx) {
		for {
			batch := s.claim()
			if len(batch) == 0 {
				if s.stop.Load() {
					// One final claim: Invoke calls that won the append
					// before stop was set must still be served.
					if batch = s.claim(); len(batch) == 0 {
						return
					}
				} else {
					// The dispatcher's worker blocks on the wake channel;
					// a bounded timeout keeps it responsive to Close even
					// if a wakeup was somehow consumed early.
					select {
					case <-s.wake:
					case <-time.After(time.Millisecond):
					}
					continue
				}
			}
			s.runBatch(c, batch)
		}
	})
}

// claim takes up to cap pending records, preserving arrival order.
func (s *Server) claim() []*serverOp {
	s.mu.Lock()
	n := len(s.pending)
	if n > s.cap {
		n = s.cap
	}
	batch := s.pending[:n:n]
	s.pending = s.pending[n:]
	s.mu.Unlock()
	return batch
}

// runBatch executes one batch: group by structure, run each group's BOP
// (in parallel across groups, as in LaunchBatch), then wake the waiting
// goroutines.
func (s *Server) runBatch(c *Ctx, batch []*serverOp) {
	ops := make([]*OpRecord, len(batch))
	for i, so := range batch {
		ops[i] = so.op
	}
	groups := groupByDS(ops)
	runGroups(c, groups)
	c.w.m.BatchesExecuted++
	c.w.m.BatchedOps += int64(len(ops))
	s.rt.liveBatches.Add(1)
	s.rt.liveOps.Add(int64(len(ops)))
	for _, so := range batch {
		close(so.done)
	}
}

// Metrics returns the underlying runtime's aggregated counters. Call
// after Close.
func (s *Server) Metrics() Metrics { return s.rt.Metrics() }
