package loadgen

import (
	"fmt"
	"sync"
	"time"

	"batcher/internal/obs"
	"batcher/internal/rng"
	"batcher/internal/server"
)

// Workload describes one load-generation run.
type Workload struct {
	// Addr is the server address.
	Addr string
	// Conns is the number of concurrent connections. Defaults to 8.
	Conns int
	// Ops is the number of operations per connection. Defaults to 1000.
	Ops int
	// Window is the closed-loop pipelining depth per connection: at most
	// Window requests are outstanding, each response permits the next
	// send. Defaults to 16. Ignored in open-loop mode.
	Window int
	// RatePerSec, when positive, switches to open-loop mode: requests
	// are paced at this aggregate rate across all connections regardless
	// of response progress, so queueing delay shows up as latency
	// instead of reduced throughput.
	RatePerSec float64
	// DS is the target structure (server.DSCounter, DSSkiplist, ...).
	DS uint8
	// ReadFrac is the fraction of operations that are lookups; the rest
	// are inserts. The counter ignores it (increment-only).
	ReadFrac float64
	// KeySpace bounds generated keys, [0, KeySpace). Defaults to 1<<16.
	KeySpace int64
	// Seed seeds the per-connection RNGs.
	Seed uint64
	// Phases requests server-side phase attribution: every request
	// carries server.OpFlagPhases, and each response's echoed stamp
	// vector feeds the Result's batch-delay and per-phase histograms —
	// client-visible latency decomposed into the scheduler's phases.
	Phases bool
}

// Result aggregates a run's outcome.
type Result struct {
	// Sent and Responses count requests written and responses received;
	// Errors counts responses carrying FlagErr — rejections and
	// contained batch-panic failures alike (the server's stats document
	// splits them: rejected vs failed).
	Sent, Responses, Errors int64
	// Elapsed is wall-clock time for the whole run.
	Elapsed time.Duration
	// OpsPerSec is Responses / Elapsed.
	OpsPerSec float64
	// Latency percentiles over per-request round-trip times, estimated
	// from a log-bucketed histogram (relative error at most 1/32, i.e.
	// ~3.1%, always rounding up). Max is exact. The histogram keeps
	// per-sample cost constant and allocation-free regardless of run
	// length — a million-op open-loop run no longer buffers and sorts a
	// million durations.
	P50, P95, P99, P999, Max time.Duration
	// Latency is the merged histogram itself, for callers that want more
	// than the canned percentiles (nil until at least one run merged).
	Latency *obs.Histogram
	// BatchDelay and Phase aggregate the server-echoed stamp vectors
	// when Workload.Phases was set (nil otherwise): BatchDelay is the
	// paper's per-op batch-delay term (pending-array arrival to batch
	// landing) and Phase[i] the i-th lifecycle phase duration, in
	// obs.PhaseNames order.
	BatchDelay *obs.Histogram
	Phase      [obs.NumPhases - 1]*obs.Histogram
}

func (r Result) String() string {
	s := fmt.Sprintf(
		"sent=%d resp=%d err=%d elapsed=%.3fs throughput=%.0f ops/s p50=%s p95=%s p99=%s p999=%s max=%s",
		r.Sent, r.Responses, r.Errors, r.Elapsed.Seconds(), r.OpsPerSec,
		r.P50, r.P95, r.P99, r.P999, r.Max)
	if r.BatchDelay != nil && r.BatchDelay.Count() > 0 {
		s += fmt.Sprintf(" batch_delay_p50=%s batch_delay_p99=%s batch_delay_max=%s",
			time.Duration(r.BatchDelay.Quantile(0.50)),
			time.Duration(r.BatchDelay.Quantile(0.99)),
			time.Duration(r.BatchDelay.Max()))
	}
	return s
}

// PhaseBreakdown renders the mean and p99 of every phase duration, one
// line per phase, or "" when the run did not request phases.
func (r Result) PhaseBreakdown() string {
	if r.BatchDelay == nil {
		return ""
	}
	var s string
	for i, h := range r.Phase {
		if h == nil {
			continue
		}
		s += fmt.Sprintf("phase %-9s mean=%-12s p99=%-12s max=%s\n",
			obs.PhaseNames[i],
			time.Duration(int64(h.Mean())),
			time.Duration(h.Quantile(0.99)),
			time.Duration(h.Max()))
	}
	return s
}

// Run executes the workload and reports aggregate results. Each
// connection runs its own client goroutine(s); latencies are collected
// per connection and merged at the end.
func Run(w Workload) (Result, error) {
	if w.Conns <= 0 {
		w.Conns = 8
	}
	if w.Ops <= 0 {
		w.Ops = 1000
	}
	if w.Window <= 0 {
		w.Window = 16
	}
	if w.KeySpace <= 0 {
		w.KeySpace = 1 << 16
	}

	var (
		mu    sync.Mutex
		res   Result
		hist  = obs.NewHistogram()
		first error
	)
	if w.Phases {
		res.BatchDelay = obs.NewHistogram()
		for i := range res.Phase {
			res.Phase[i] = obs.NewHistogram()
		}
	}
	report := func(cs *connStats, err error) {
		mu.Lock()
		res.Sent += cs.sent
		res.Responses += cs.responses
		res.Errors += cs.errors
		hist.Merge(cs.lats)
		if w.Phases {
			res.BatchDelay.Merge(cs.delay)
			for i := range res.Phase {
				res.Phase[i].Merge(cs.phase[i])
			}
		}
		if err != nil && first == nil {
			first = err
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < w.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runConn(w, i, report)
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if first != nil {
		return res, first
	}

	if res.Elapsed > 0 {
		res.OpsPerSec = float64(res.Responses) / res.Elapsed.Seconds()
	}
	if hist.Count() > 0 {
		res.Latency = hist
		pct := func(p float64) time.Duration { return time.Duration(hist.Quantile(p)) }
		res.P50, res.P95, res.P99, res.P999 = pct(0.50), pct(0.95), pct(0.99), pct(0.999)
		res.Max = time.Duration(hist.Max())
	}
	return res, nil
}

// connStats is one connection's contribution to the aggregate Result.
type connStats struct {
	sent, responses, errors int64
	lats                    *obs.Histogram
	delay                   *obs.Histogram
	phase                   [obs.NumPhases - 1]*obs.Histogram
}

// runConn drives one connection. In closed-loop mode a single goroutine
// interleaves sends and receives, keeping up to Window requests in
// flight. In open-loop mode a sender paces requests on schedule while a
// separate receiver drains responses. Responses arrive in completion
// order, so send timestamps are matched to responses by request id.
func runConn(w Workload, idx int, report func(*connStats, error)) {
	cs := &connStats{lats: obs.NewHistogram()}
	if w.Phases {
		cs.delay = obs.NewHistogram()
		for i := range cs.phase {
			cs.phase[i] = obs.NewHistogram()
		}
	}
	fail := func(err error) { report(cs, err) }

	c, err := Dial(w.Addr)
	if err != nil {
		fail(err)
		return
	}
	defer c.Close()

	r := rng.New(w.Seed + uint64(idx)*0x9e3779b97f4a7c15 + 1)
	nextReq := func() server.Request {
		q := server.Request{DS: w.DS, Key: int64(r.Uint64() % uint64(w.KeySpace))}
		if w.DS != server.DSCounter && r.Float64() < w.ReadFrac {
			q.Op = server.OpLookup
		} else {
			q.Op = server.OpInsert
			q.Val = q.Key * 2
		}
		if w.DS == server.DSCounter {
			q.Op = server.OpInsert
			q.Val = 1
		}
		if w.Phases {
			q.Op |= server.OpFlagPhases
		}
		return q
	}

	sendTimes := make(map[uint64]time.Time, w.Window)
	var stMu sync.Mutex // only contended in open-loop mode

	recvOne := func() error {
		resp, err := c.Recv()
		if err != nil {
			return err
		}
		stMu.Lock()
		t0, ok := sendTimes[resp.ID]
		delete(sendTimes, resp.ID)
		stMu.Unlock()
		if ok {
			cs.lats.Observe(int64(time.Since(t0)))
		}
		if resp.Flags&server.FlagPhases != 0 && cs.delay != nil {
			cs.delay.Observe(obs.BatchDelay(resp.Phases))
			durs := obs.PhaseDurations(resp.Phases)
			for i, h := range cs.phase {
				h.Observe(durs[i])
			}
		}
		cs.responses++
		if resp.Err() {
			cs.errors++
		}
		return nil
	}

	if w.RatePerSec > 0 {
		// Open-loop: pace sends; drain responses concurrently.
		interval := time.Duration(float64(w.Conns) * float64(time.Second) / w.RatePerSec)
		recvDone := make(chan error, 1)
		remaining := w.Ops
		go func() {
			for i := 0; i < remaining; i++ {
				if err := recvOne(); err != nil {
					recvDone <- err
					return
				}
			}
			recvDone <- nil
		}()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; i < w.Ops; i++ {
			<-tick.C
			q := nextReq()
			stMu.Lock()
			id, err := c.Send(q)
			if err == nil {
				sendTimes[id] = time.Now()
				err = c.Flush()
			}
			stMu.Unlock()
			if err != nil {
				fail(err)
				return
			}
			cs.sent++
		}
		if err := <-recvDone; err != nil {
			fail(err)
			return
		}
		report(cs, nil)
		return
	}

	// Closed-loop: fill the window, then lockstep recv-then-send.
	inFlight := 0
	for i := 0; i < w.Ops; i++ {
		if inFlight == w.Window {
			if err := recvOne(); err != nil {
				fail(err)
				return
			}
			inFlight--
		}
		id, err := c.Send(nextReq())
		if err != nil {
			fail(err)
			return
		}
		sendTimes[id] = time.Now()
		cs.sent++
		inFlight++
		if inFlight == w.Window || i == w.Ops-1 {
			if err := c.Flush(); err != nil {
				fail(err)
				return
			}
		}
	}
	for ; inFlight > 0; inFlight-- {
		if err := recvOne(); err != nil {
			fail(err)
			return
		}
	}
	report(cs, nil)
}
