package sim

import (
	"math"
	"testing"
)

// syntheticSweep generates calibration points from a known ground-truth
// model, as if a loadgen sweep had measured a shard whose behavior the
// twin's own equations describe exactly.
func syntheticSweep(truth Model, fracs []float64) []CalPoint {
	cap := truth.CapacityOpsPerSec()
	pts := make([]CalPoint, 0, len(fracs))
	for _, f := range fracs {
		rate := f * cap
		b := truth.BatchSizeAt(rate)
		pts = append(pts, CalPoint{
			RatePerSec:     rate,
			MeanBatch:      b,
			MeanServiceNS:  truth.ServiceNS(b),
			MeasuredP999NS: truth.PredictP999NS(rate, 0),
		})
	}
	return pts
}

func TestFitModelRecoversGroundTruth(t *testing.T) {
	truth := Model{Workers: 8, SetupNS: 40_000, PerOpNS: 12_000, BaseNS: 55_000, Tail: 3.0}
	pts := syntheticSweep(truth, []float64{0.15, 0.3, 0.5, 0.7, 0.85})
	got, err := FitModel(truth.Workers, pts)
	if err != nil {
		t.Fatalf("FitModel: %v", err)
	}
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if want == 0 {
			if math.Abs(got) > tol {
				t.Errorf("%s = %v, want ~0", name, got)
			}
			return
		}
		if r := math.Abs(got-want) / want; r > tol {
			t.Errorf("%s = %v, want %v (±%.0f%%)", name, got, want, tol*100)
		}
	}
	within("SetupNS", got.SetupNS, truth.SetupNS, 0.05)
	within("PerOpNS", got.PerOpNS, truth.PerOpNS, 0.05)
	within("Tail", got.Tail, truth.Tail, 0.05)
	within("BaseNS", got.BaseNS, truth.BaseNS, 0.10)

	// The fitted model's predictions must track the truth across the
	// sweep — the property `twin -validate` gates on.
	for _, p := range pts {
		pred := got.PredictP999NS(p.RatePerSec, 0)
		if r := math.Abs(pred-p.MeasuredP999NS) / p.MeasuredP999NS; r > 0.10 {
			t.Errorf("rate %.0f: predicted %.0f, measured %.0f (%.1f%% off)",
				p.RatePerSec, pred, p.MeasuredP999NS, r*100)
		}
	}
}

func TestFitModelDegenerateSinglePoint(t *testing.T) {
	pts := []CalPoint{{RatePerSec: 10_000, MeanBatch: 4, MeanServiceNS: 200_000, MeasuredP999NS: 900_000}}
	m, err := FitModel(8, pts)
	if err != nil {
		t.Fatalf("FitModel: %v", err)
	}
	// Proportional fallback: s(4) must pass through the sample.
	if got := m.ServiceNS(4); math.Abs(got-200_000) > 1 {
		t.Errorf("ServiceNS(4) = %v, want 200000", got)
	}
	if m.Tail < 1 || m.Tail > 64 {
		t.Errorf("Tail = %v out of [1,64]", m.Tail)
	}
	if c := m.CapacityOpsPerSec(); c <= 0 || math.IsInf(c, 1) {
		t.Errorf("capacity = %v, want finite positive", c)
	}
}

func TestFitModelRejectsEmpty(t *testing.T) {
	if _, err := FitModel(8, nil); err == nil {
		t.Fatal("FitModel(nil) should error")
	}
	if _, err := FitModel(8, []CalPoint{{RatePerSec: -1}}); err == nil {
		t.Fatal("FitModel with only invalid points should error")
	}
}

func TestModelMonotoneAndDiverges(t *testing.T) {
	m := Model{Workers: 8, SetupNS: 50_000, PerOpNS: 10_000, BaseNS: 20_000, Tail: 2.5}
	cap := m.CapacityOpsPerSec()
	if cap <= 0 {
		t.Fatalf("capacity = %v", cap)
	}
	prev := 0.0
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		p := m.PredictP999NS(f*cap, 0)
		if math.IsInf(p, 1) {
			t.Fatalf("predicted p999 infinite below capacity (f=%v)", f)
		}
		if p < prev {
			t.Fatalf("p999 not monotone in rate: %v after %v (f=%v)", p, prev, f)
		}
		prev = p
	}
	if p := m.PredictP999NS(1.05*cap, 0); !math.IsInf(p, 1) {
		t.Errorf("predicted p999 past capacity = %v, want +Inf", p)
	}
	// Batch size saturates at P under heavy load and stays ≥1 when idle.
	if b := m.BatchSizeAt(100 * cap); b != float64(m.Workers) {
		t.Errorf("BatchSizeAt(100×cap) = %v, want %d", b, m.Workers)
	}
	if b := m.BatchSizeAt(0); b != 1 {
		t.Errorf("BatchSizeAt(0) = %v, want 1", b)
	}
	// Backlog only adds delay.
	if m.PredictP999NS(0.5*cap, 100) <= m.PredictP999NS(0.5*cap, 0) {
		t.Error("backlog did not increase predicted p999")
	}
}

func TestMaxAdmissibleRateInverts(t *testing.T) {
	m := Model{Workers: 8, SetupNS: 50_000, PerOpNS: 10_000, BaseNS: 20_000, Tail: 2.5}
	cap := m.CapacityOpsPerSec()
	for _, f := range []float64{0.25, 0.5, 0.8} {
		slo := m.PredictP999NS(f*cap, 0)
		rate := m.MaxAdmissibleRate(slo, 0)
		// Inverse property: admitting at the returned rate meets the SLO...
		if p := m.PredictP999NS(rate, 0); p > slo*(1+1e-6) {
			t.Errorf("f=%v: p999(maxRate)=%v exceeds slo %v", f, p, slo)
		}
		// ...and the returned rate is tight against the rate that produced it.
		if r := math.Abs(rate-f*cap) / (f * cap); r > 0.01 {
			t.Errorf("f=%v: maxRate=%v, want ~%v", f, rate, f*cap)
		}
	}
	// An SLO below the idle floor admits nothing.
	if r := m.MaxAdmissibleRate(m.PredictP999NS(0, 0)*0.5, 0); r != 0 {
		t.Errorf("maxRate below idle floor = %v, want 0", r)
	}
	// A huge standing backlog shrinks the admissible rate.
	slo := m.PredictP999NS(0.8*cap, 0)
	if m.MaxAdmissibleRate(slo, 10_000) >= m.MaxAdmissibleRate(slo, 0) {
		t.Error("backlog did not shrink admissible rate")
	}
}

func TestFitterTracksCurve(t *testing.T) {
	var f Fitter
	if _, _, ok := f.Params(); ok {
		t.Fatal("empty fitter reported ok")
	}
	// Feed samples from s(b) = 30000 + 5000·b with batch-size spread.
	for i := 0; i < 50; i++ {
		b := float64(1 + i%8)
		f.Add(b, 30_000+5_000*b)
	}
	s0, s1, ok := f.Params()
	if !ok {
		t.Fatal("fitter not ok after 50 samples")
	}
	if math.Abs(s0-30_000) > 1_500 || math.Abs(s1-5_000) > 250 {
		t.Errorf("fit = (%v, %v), want ~(30000, 5000)", s0, s1)
	}
	// Decay: shift the workload and the fit must follow.
	for i := 0; i < 400; i++ {
		b := float64(1 + i%8)
		f.Add(b, 60_000+9_000*b)
	}
	s0, s1, _ = f.Params()
	if math.Abs(s0-60_000) > 4_000 || math.Abs(s1-9_000) > 600 {
		t.Errorf("post-shift fit = (%v, %v), want ~(60000, 9000)", s0, s1)
	}
	// Degenerate spread (all the same batch size) still yields a usable
	// proportional estimate.
	var g Fitter
	for i := 0; i < 10; i++ {
		g.Add(4, 100_000)
	}
	s0, s1, ok = g.Params()
	if !ok || math.Abs(s0+4*s1-100_000) > 1 {
		t.Errorf("degenerate fit = (%v, %v, %v), want s(4)=100000", s0, s1, ok)
	}
	// Garbage samples are ignored.
	var h Fitter
	h.Add(0, 100)
	h.Add(2, -5)
	if h.Samples() != 0 {
		t.Errorf("invalid samples counted: %v", h.Samples())
	}
}
