package loadgen

import (
	"math"
	"sort"

	"batcher/internal/rng"
)

// zipfMaxRanks caps the precomputed CDF table. A zipf CDF over more
// ranks than this adds almost no mass to the tail (at s near 1 the top
// million ranks already carry the distribution), so larger keyspaces
// sample a rank in [0, zipfMaxRanks) and stretch it across the keyspace
// by a fixed stride instead of tabulating every key.
const zipfMaxRanks = 1 << 20

// zipfGen samples keys with probability proportional to 1/rank^s via a
// precomputed CDF and binary search: build cost is O(ranks) once per
// workload, sample cost O(log ranks) with zero allocation, and the
// table is shared read-only across connection goroutines. Rank i maps
// to key (i*stride)%keySpace rather than key i, so the hot keys are
// scattered across the keyspace (and therefore across shards) instead
// of clustering at 0 — skew should stress placement, not alias it.
type zipfGen struct {
	cdf      []float64
	keySpace int64
	stride   int64
}

func newZipfGen(keySpace int64, s float64) *zipfGen {
	n := keySpace
	if n > zipfMaxRanks {
		n = zipfMaxRanks
	}
	g := &zipfGen{
		cdf:      make([]float64, n),
		keySpace: keySpace,
		stride:   zipfStride(keySpace),
	}
	total := 0.0
	for i := int64(0); i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		g.cdf[i] = total
	}
	for i := range g.cdf {
		g.cdf[i] /= total
	}
	return g
}

// zipfStride derives the rank->key dispersal stride from the keyspace:
// the largest odd value at or below keySpace·φ⁻¹ (the golden-ratio
// fraction, the classic low-discrepancy multiplier) that is coprime
// with keySpace. Coprimality makes rank i -> (i·stride) mod keySpace
// injective over the whole keyspace, and the golden-ratio magnitude
// spreads consecutive hot ranks maximally far apart.
//
// A fixed stride had two failure modes this replaces: any constant
// large enough to disperse a big keyspace is >= a small one — the old
// 0x9e3779b9 exceeded every realistic keyspace, silently falling back
// to stride 1 so the hot ranks clustered contiguously at keys 0..n —
// and where a fixed constant does apply, it can share a factor with the
// keyspace (0x9e3779b9 is divisible by 3), aliasing distinct hot ranks
// onto one key and inflating the realized skew.
func zipfStride(keySpace int64) int64 {
	s := int64(float64(keySpace) * 0.6180339887498949)
	if s%2 == 0 {
		s--
	}
	// Walk down odd candidates until one is coprime with the keyspace.
	// Consecutive odd numbers share no factor with each other, so the
	// walk is short (a handful of steps at worst for composite spaces).
	for ; s > 1; s -= 2 {
		if gcd(s, keySpace) == 1 {
			return s
		}
	}
	return 1
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// sample draws one key. Safe for concurrent use with distinct RNGs.
func (g *zipfGen) sample(r *rng.Rand) int64 {
	u := r.Float64()
	rank := sort.SearchFloat64s(g.cdf, u)
	if rank >= len(g.cdf) {
		rank = len(g.cdf) - 1
	}
	return (int64(rank) * g.stride) % g.keySpace
}
