package server

// Prometheus-style observability for batcherd. Every server owns an
// obs.Registry; its counters and gauges are scrape-time reads of the
// atomics the serving path already maintains, so registration costs the
// hot path nothing. Two histogram families are recorded live: the batch
// size distribution (the scheduler observes it once per executed batch
// via Runtime.SetBatchSizeHistogram — its mean is exactly the
// LiveBatchStats mean) and per-structure service latency, measured from
// pump admission to batch completion.

import (
	"encoding/json"
	"net/http"
	"time"

	"batcher/internal/obs"
)

// dsNames maps the wire ds codes 0..3 to metric label values.
var dsNames = [4]string{"counter", "skiplist", "tree23", "hashmap"}

// buildMetrics assembles the registry. Called from Start before the
// pump begins serving (the runtime must be quiescent when the batch
// histogram and tracer are attached).
func (s *Server) buildMetrics() {
	reg := obs.NewRegistry()
	s.reg = reg

	reg.CounterFunc("batcherd_ops_accepted_total",
		"operations admitted into the pump", nil, s.accepted.Load)
	reg.CounterFunc("batcherd_ops_rejected_total",
		"operations refused (bad op, saturation cap, shutdown)", nil, s.rejected.Load)
	reg.CounterFunc("batcherd_ops_completed_total",
		"responses handed to connection writers", nil, s.completed.Load)
	reg.CounterFunc("batcherd_ops_immediate_total",
		"responses that bypassed the pump (stats, rejections)", nil, s.immediate.Load)
	reg.CounterFunc("batcherd_ops_failed_total",
		"accepted operations completed with Err (contained batch panic)", nil, s.failed.Load)
	reg.CounterFunc("batcherd_decode_errors_total",
		"connections dropped for malformed frames", nil, s.decodeErr.Load)
	reg.CounterFunc("batcherd_evictions_total",
		"connections torn down for deadline or protocol violations", nil, s.evictions.Load)
	reg.CounterFunc("batcherd_read_syscalls_total",
		"socket read syscalls issued by the reader loops", nil, s.readSys.Load)
	reg.CounterFunc("batcherd_write_syscalls_total",
		"socket write syscalls issued by the writer loops", nil, s.writeSys.Load)
	reg.CounterFunc("batcherd_batch_panics_total",
		"batch groups whose BOP panicked and was contained", nil, s.rt.BatchPanics)
	reg.CounterFunc("batcherd_batches_total",
		"batches executed by the scheduler", nil, func() int64 {
			b, _ := s.rt.LiveBatchStats()
			return b
		})
	reg.CounterFunc("batcherd_batched_ops_total",
		"operations carried by executed batches", nil, func() int64 {
			_, ops := s.rt.LiveBatchStats()
			return ops
		})
	reg.CounterFunc("batcherd_steals_total",
		"successful scheduler steals", nil, s.rt.LiveSteals)

	reg.GaugeFunc("batcherd_workers",
		"scheduler worker count (P)", nil, func() float64 {
			return float64(s.rt.Workers())
		})
	reg.GaugeFunc("batcherd_conns",
		"currently open connections", nil, func() float64 {
			return float64(s.curConns.Load())
		})
	reg.GaugeFunc("batcherd_reactor_loops",
		"reader/writer loop pairs in the reactor pool", nil, func() float64 {
			return float64(len(s.rloops))
		})
	reg.GaugeFunc("batcherd_queue_depth",
		"pump ingress queue depth", nil, func() float64 {
			return float64(s.pump.Depth())
		})
	reg.GaugeFunc("batcherd_uptime_seconds",
		"seconds since the server started", nil, func() float64 {
			return time.Since(s.start).Seconds()
		})

	s.batchHist = reg.Histogram("batcherd_batch_size",
		"operations per executed batch", nil)
	s.rt.SetBatchSizeHistogram(s.batchHist)
	for i, name := range dsNames {
		s.latHist[i] = reg.Histogram("batcherd_service_latency_ns",
			"pump-admission-to-completion latency per operation",
			[]obs.Label{{Name: "ds", Value: name}})
	}

	// Per-op phase attribution: one histogram per lifecycle phase
	// duration, plus the derived batch delay — PhaseLand−PhasePending,
	// the per-op wait Theorem 5.4 charges (at most two batches' worth by
	// Lemma 2). Stamping is always on for a server: its cost is one
	// clock read and an array store per boundary, and the decomposition
	// is the point of running batcherd observably.
	s.rt.SetPhaseStamps(true)
	for i, name := range obs.PhaseNames {
		s.phaseHist[i] = reg.Histogram("batcherd_op_phase_ns",
			"per-operation lifecycle phase duration",
			[]obs.Label{{Name: "phase", Value: name}})
	}
	s.delayHist = reg.Histogram("batcherd_batch_delay_ns",
		"per-operation batch delay: pending-array arrival to batch landing (Theorem 5.4's per-op wait)",
		nil)
	if s.cfg.SlowK >= 0 {
		s.flight = obs.NewFlightRecorder(s.cfg.SlowK, s.cfg.SlowWindow)
	}

	if s.cfg.TraceRing > 0 {
		s.tracer = s.rt.NewTracer(s.cfg.TraceRing)
		s.rt.SetTracer(s.tracer)
	}
}

// Metrics returns the server's registry (scrape it with
// MetricsHandler, or pull individual families in tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// MetricsHandler returns the /metrics handler (Prometheus text format).
func (s *Server) MetricsHandler() http.Handler { return s.reg.Handler() }

// Tracer returns the scheduler event tracer, or nil unless
// Config.TraceRing enabled tracing.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SlowOps returns the tail flight recorder's current contents (the K
// slowest ops of the current and previous windows, slowest first), or
// nil when the recorder is disabled.
func (s *Server) SlowOps() []obs.SlowOp { return s.flight.Snapshot() }

// SlowHandler returns the /slow handler: a JSON array of the flight
// recorder's SlowOps. 404 when the recorder is disabled (SlowK < 0).
func (s *Server) SlowHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.flight == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		ops := s.flight.Snapshot()
		if ops == nil {
			ops = []obs.SlowOp{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ops)
	})
}

// TraceHandler returns the /trace handler: a live Chrome trace_event
// JSON snapshot of the scheduler's event rings, streamed rather than
// buffered. 404 when tracing is disabled (Config.TraceRing == 0).
func (s *Server) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.tracer == nil {
			http.Error(w, "tracing disabled (start with TraceRing > 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w, s.tracer.Snapshot())
	})
}
