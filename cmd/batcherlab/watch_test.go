package main

// The watch dashboard's "-once renders the same numbers" witness: a
// real sharded server is started in-process, driven with traffic, and
// one frame is rendered from exactly the sources the subcommand uses —
// a DSStats fetch over the wire plus a /metrics scrape. The frame must
// carry the stats document's own figures, and the scrape-derived
// measured p999 must agree with the histogram the server exported.

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"batcher/internal/loadgen"
	"batcher/internal/server"
)

func TestWatchRenderOnce(t *testing.T) {
	s, err := server.Start(server.Config{
		Workers:       2,
		Shards:        2,
		Seed:          3101,
		SLO:           time.Second,
		AdmitInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Shutdown()
	addr := s.Addr().String()

	if _, err := loadgen.Run(loadgen.Workload{
		Addr: addr, Conns: 4, Ops: 200, Window: 8,
		DS: server.DSHashmap, KeySpace: 1 << 12, Seed: 3102,
	}); err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	st, err := fetchStats(addr)
	if err != nil {
		t.Fatalf("fetchStats: %v", err)
	}
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats document: shards=%d per_shard=%d", st.Shards, len(st.PerShard))
	}

	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	measured, err := scrapeMeasuredP999(srv.URL)
	if err != nil {
		t.Fatalf("scrapeMeasuredP999: %v", err)
	}
	for _, ss := range st.PerShard {
		if ss.Completed == 0 {
			continue
		}
		m, ok := measured[ss.Shard]
		if !ok || m <= 0 {
			t.Errorf("shard %d: no measured p999 from the scrape (%v)", ss.Shard, measured)
		}
	}

	var buf bytes.Buffer
	renderWatch(&buf, st, nil, 0, measured)
	out := buf.String()
	t.Logf("frame:\n%s", out)

	// The frame renders the stats document's numbers, not approximations
	// of them: the global line carries the rollup gauges verbatim...
	wantGlobal := fmt.Sprintf("headroom %.3f  max_landings %d  twin_residual %.1f%%",
		st.ConformHeadroom, st.ConformMaxLandings, st.TwinResidualPct)
	if !strings.Contains(out, wantGlobal) {
		t.Errorf("frame missing global gauges %q", wantGlobal)
	}
	// ...and each shard's row carries its own headroom, landings, and
	// predicted/measured p999 columns.
	for _, ss := range st.PerShard {
		meas := ss.MeasuredP999NS
		if m, ok := measured[ss.Shard]; ok {
			meas = m
		}
		row := fmt.Sprintf("%12s %12s %9.3f %6d",
			fmtNS(ss.PredictedP999NS), fmtNS(meas),
			ss.Conformance.Headroom, ss.Conformance.MaxLandings)
		if !strings.Contains(out, row) {
			t.Errorf("frame missing shard %d columns %q", ss.Shard, row)
		}
	}
	if !strings.Contains(out, "pred_p999") || !strings.Contains(out, "meas_p999") {
		t.Error("frame missing the per-shard table header")
	}
}

// TestParseBucketP999 pins the scrape parser on a synthetic exposition:
// cumulative buckets for two shards, where shard 0's p999 falls in its
// last finite bucket and shard 1's in an earlier one.
func TestParseBucketP999(t *testing.T) {
	text := `# HELP batcherd_op_total_ns end-to-end
# TYPE batcherd_op_total_ns histogram
batcherd_op_total_ns_bucket{shard="0",le="1000"} 500
batcherd_op_total_ns_bucket{shard="0",le="2000"} 999
batcherd_op_total_ns_bucket{shard="0",le="4000"} 1000
batcherd_op_total_ns_bucket{shard="0",le="+Inf"} 1000
batcherd_op_total_ns_sum{shard="0"} 12345
batcherd_op_total_ns_count{shard="0"} 1000
batcherd_op_total_ns_bucket{shard="1",le="700"} 10
batcherd_op_total_ns_bucket{shard="1",le="+Inf"} 10
other_family_bucket{shard="9",le="5"} 7
`
	got, err := parseBucketP999(strings.NewReader(text), "batcherd_op_total_ns", 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2000 {
		t.Errorf("shard 0 p999 = %d, want 2000 (the 999th of 1000 observations)", got[0])
	}
	if got[1] != 700 {
		t.Errorf("shard 1 p999 = %d, want 700", got[1])
	}
	if len(got) != 2 {
		t.Errorf("parsed %d shards, want 2: %v", len(got), got)
	}
}
