package obs

import (
	"sync"
	"testing"
	"time"
)

func slowOp(total int64) SlowOp {
	var st [NumPhases]int64
	st[PhaseRead] = Now()
	st[PhaseDone] = st[PhaseRead] + total
	return SlowOp{TotalNS: total, Stamps: st}
}

func TestFlightRecorderKeepsKSlowest(t *testing.T) {
	f := NewFlightRecorder(4, time.Hour) // no rotation during the test
	for total := int64(1); total <= 100; total++ {
		f.Offer(slowOp(total))
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d ops, want 4", len(snap))
	}
	want := []int64{100, 99, 98, 97}
	for i, op := range snap {
		if op.TotalNS != want[i] {
			t.Fatalf("snapshot[%d].TotalNS = %d, want %d (slowest first)", i, op.TotalNS, want[i])
		}
	}

	// A fast op must not displace anything once the reservoir is full.
	f.Offer(slowOp(1))
	if snap := f.Snapshot(); len(snap) != 4 || snap[3].TotalNS != 97 {
		t.Fatalf("fast op displaced a slow one: %v", snap)
	}
}

func TestFlightRecorderRotation(t *testing.T) {
	const window = 20 * time.Millisecond
	f := NewFlightRecorder(2, window)
	f.Offer(slowOp(500))
	f.Offer(slowOp(600))

	// After one window the old ops move to prev but remain visible.
	time.Sleep(window + 5*time.Millisecond)
	f.Offer(slowOp(50))
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("after one rotation: %d ops, want 3 (cur + prev)", len(snap))
	}
	if snap[0].TotalNS != 600 || snap[2].TotalNS != 50 {
		t.Fatalf("unexpected order: %v", snap)
	}

	// After a second window the first window's ops are gone — the floor
	// reset on rotation, so the now-fast 50ns op was admitted.
	time.Sleep(window + 5*time.Millisecond)
	f.Offer(slowOp(60))
	snap = f.Snapshot()
	for _, op := range snap {
		if op.TotalNS >= 500 {
			t.Fatalf("op from two windows ago still visible: %v", snap)
		}
	}
	if len(snap) != 2 {
		t.Fatalf("after two rotations: %d ops, want 2", len(snap))
	}
}

func TestFlightRecorderSnapshotFillsAge(t *testing.T) {
	f := NewFlightRecorder(2, time.Hour)
	f.Offer(slowOp(123))
	time.Sleep(2 * time.Millisecond)
	snap := f.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d ops, want 1", len(snap))
	}
	// AgeNS = snapshot time − PhaseDone stamp; the synthetic op's Done is
	// Read+123ns, so age must be at least the sleep minus slack.
	if snap[0].AgeNS < int64(time.Millisecond) {
		t.Fatalf("AgeNS = %d, want >= 1ms", snap[0].AgeNS)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Offer(slowOp(1)) // must not panic
	if f.Snapshot() != nil {
		t.Fatal("nil recorder snapshot not nil")
	}
	if f.K() != 0 {
		t.Fatal("nil recorder K not 0")
	}
}

func TestFlightRecorderConcurrentOffer(t *testing.T) {
	f := NewFlightRecorder(8, 5*time.Millisecond) // rotate under load
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				f.Offer(slowOp(int64(g*2000 + i)))
				if i%100 == 0 {
					f.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if snap := f.Snapshot(); len(snap) > 16 {
		t.Fatalf("snapshot has %d ops, want <= 2K = 16", len(snap))
	}
}

// TestFlightRecorderRotationConcurrentOffer drives continuous offers
// from four goroutines across several windows (snapshots racing the
// rotation path, meaningful under -race) and then checks rotation
// correctness, not just crash-freedom: everything still visible must
// be from the last two windows — old ops rotate out even when the
// rotation CAS races concurrent offers.
func TestFlightRecorderRotationConcurrentOffer(t *testing.T) {
	const window = 10 * time.Millisecond
	f := NewFlightRecorder(8, window)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Offer(slowOp(int64(g)*1_000_000 + i))
				if i%64 == 0 {
					f.Snapshot()
				}
			}
		}(g)
	}
	time.Sleep(6 * window)
	close(stop)
	wg.Wait()

	snap := f.Snapshot()
	if len(snap) == 0 || len(snap) > 16 {
		t.Fatalf("snapshot has %d ops, want 1..2K=16", len(snap))
	}
	// Cur + prev span at most two windows; allow generous scheduler
	// slack on top, but ops from the run's first windows must be gone.
	maxAge := int64(4 * window)
	for _, op := range snap {
		if op.AgeNS > maxAge {
			t.Fatalf("op aged %v survived rotation (window %v)", time.Duration(op.AgeNS), window)
		}
	}
}
