package sched

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestForkStolenBranchWaitPath forces the Fork slow path: the left branch
// parks its worker until the right branch has demonstrably been stolen
// and started elsewhere, so the forking worker must wait at the join (and
// help) rather than popping the branch back. On a single-CPU host steals
// are otherwise too rare for tests to reach this path.
func TestForkStolenBranchWaitPath(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 601})
	var ranB atomic.Bool
	started := make(chan struct{})
	rt.Run(func(c *Ctx) {
		c.Fork(
			func(*Ctx) {
				// Hold this worker inside the left branch until the right
				// branch is running on the other worker.
				<-started
			},
			func(*Ctx) {
				close(started)
				// Keep the thief busy so the forker reaches its wait loop.
				time.Sleep(2 * time.Millisecond)
				ranB.Store(true)
			},
		)
		if !ranB.Load() {
			t.Error("Fork returned before stolen branch completed")
		}
	})
}

// TestHelpWhileWaitingRunsOwnBatchWork arranges for a worker waiting at a
// batch-task join to find more batch work on its own deque.
func TestHelpWhileWaitingRunsOwnBatchWork(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 602})
	ds := &forkyDS{}
	rt.Run(func(c *Ctx) {
		c.For(0, 100, 1, func(cc *Ctx, i int) {
			cc.Batchify(&OpRecord{DS: ds, Val: 1})
		})
	})
	if ds.total.Load() != 100 {
		t.Fatalf("total = %d", ds.total.Load())
	}
}

func TestCtxAccessors(t *testing.T) {
	rt := New(Config{Workers: 3, Seed: 603})
	rt.Run(func(c *Ctx) {
		if c.Runtime() != rt {
			t.Error("Runtime() mismatch")
		}
		ran := false
		c.Seq(func(cc *Ctx) {
			if cc != c {
				t.Error("Seq changed context")
			}
			ran = true
		})
		if !ran {
			t.Error("Seq body did not run")
		}
	})
}

func TestMetricsStringAndMeanBatch(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 604})
	ds := &sumDS{}
	rt.Run(func(c *Ctx) {
		c.For(0, 50, 1, func(cc *Ctx, i int) {
			cc.Batchify(&OpRecord{DS: ds, Val: 1})
		})
	})
	m := rt.Metrics()
	if m.MeanBatchSize() <= 0 {
		t.Fatalf("MeanBatchSize = %v", m.MeanBatchSize())
	}
	s := m.String()
	for _, want := range []string{"P=2", "ops=50", "batches="} {
		if !strings.Contains(s, want) {
			t.Fatalf("metrics string %q missing %q", s, want)
		}
	}
	var empty Metrics
	if empty.MeanBatchSize() != 0 {
		t.Fatal("empty MeanBatchSize nonzero")
	}
}

func TestConcurrentRunPanics(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 605})
	inRun := make(chan struct{})
	release := make(chan struct{})
	go func() {
		rt.Run(func(c *Ctx) {
			close(inRun)
			<-release
		})
	}()
	<-inRun
	func() {
		defer func() {
			if recover() == nil {
				t.Error("concurrent Run did not panic")
			}
			close(release)
		}()
		rt.Run(func(*Ctx) {})
	}()
}

func TestMetricsDuringRunPanics(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 606})
	inRun := make(chan struct{})
	release := make(chan struct{})
	var panicked atomic.Bool
	go func() {
		rt.Run(func(c *Ctx) {
			close(inRun)
			<-release
		})
	}()
	<-inRun
	func() {
		defer func() {
			panicked.Store(recover() != nil)
			close(release)
		}()
		rt.Metrics()
	}()
	if !panicked.Load() {
		t.Fatal("Metrics during Run did not panic")
	}
}

func TestReduceGrainDefault(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 607})
	rt.Run(func(c *Ctx) {
		got := Reduce(c, 0, 10, 0, 0,
			func(_ *Ctx, i int) int { return 1 },
			func(a, b int) int { return a + b })
		if got != 10 {
			t.Errorf("Reduce = %d", got)
		}
	})
}
