//go:build !race

package policy_test

// raceEnabled reports whether the race detector is compiled in. Alloc
// pins are skipped under -race (instrumentation allocates).
const raceEnabled = false
