// Package skiplist implements the skip list used in the paper's
// experimental evaluation (Section 7), in two forms: a sequential skip
// list (the paper's SEQ baseline, no concurrency control) and an
// implicitly batched skip list whose batched insert follows the paper's
// three-step BOP:
//
//  1. build the set of new nodes from the batch's records (sequential —
//     the batch is small),
//  2. search the main list for every key's insertion point, in parallel
//     (the dominant O(x lg n)-work step),
//  3. splice the new nodes into the main list (sequential).
//
// A size-x batch into a size-N list therefore has O(x lg N) work and
// O(lg N + x) span; with x <= P this matches the profile the paper's
// skip-list experiment exercises.
//
// Node heights are derived deterministically from a hash of the key so
// that sequential and batched executions of the same key set build
// structurally identical lists — which keeps the SEQ-vs-BATCHER
// comparison apples-to-apples and makes tests reproducible.
package skiplist

import (
	"math/bits"

	"batcher/internal/rng"
)

// maxLevel bounds tower heights; 2^32 keys would be needed to saturate it.
const maxLevel = 32

type node struct {
	key  int64
	val  int64
	next []*node
}

// arenaChunk is the number of nodes (and, separately, tower pointers)
// carved per arena slab. Expected tower height is 2, so one tower slab
// of 2*arenaChunk pointers roughly matches one node slab.
const arenaChunk = 512

// List is a sequential skip list mapping int64 keys to int64 values.
//
// Nodes and their towers are carved from chunked arenas, amortizing the
// two per-insert heap allocations of the naive representation down to
// ~2 per arenaChunk inserts. The trade-off is GC granularity: a slab is
// reclaimed only when every node carved from it is unreachable, so
// workloads that delete most of what they insert retain somewhat more
// memory. For the insert-heavy workloads of the paper's experiments
// this is the right trade.
type List struct {
	head     *node
	size     int
	level    int // number of levels in use (>= 1)
	hashSeed uint64

	nodeArena  []node  // unused remainder of the current node slab
	towerArena []*node // unused remainder of the current tower slab
}

// NewList returns an empty sequential skip list. seed fixes the (hash
// derived) tower heights.
func NewList(seed uint64) *List {
	return &List{
		head:     &node{next: make([]*node, maxLevel)},
		level:    1,
		hashSeed: seed,
	}
}

// height returns the deterministic tower height (in [1, maxLevel]) for a
// key: 1 + the number of leading coin-flip heads, with the coin flips
// taken from a SplitMix64 hash of the key.
func (l *List) height(key int64) int {
	st := uint64(key) ^ l.hashSeed
	h := rng.SplitMix64(&st)
	lvl := 1 + bits.TrailingZeros64(h|1<<(maxLevel-1))
	if lvl > maxLevel {
		lvl = maxLevel
	}
	return lvl
}

// searchPreds fills preds with, for each level, the rightmost node whose
// key is strictly less than key. preds must have length maxLevel.
func (l *List) searchPreds(key int64, preds []*node) {
	x := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil && x.next[lv].key < key {
			x = x.next[lv]
		}
		preds[lv] = x
	}
	for lv := l.level; lv < maxLevel; lv++ {
		preds[lv] = l.head
	}
}

// Insert adds key with val, or updates val if key is present. It returns
// true if the key was newly inserted.
func (l *List) Insert(key, val int64) bool {
	var preds [maxLevel]*node
	l.searchPreds(key, preds[:])
	if nxt := preds[0].next[0]; nxt != nil && nxt.key == key {
		nxt.val = val
		return false
	}
	l.link(key, val, preds[:])
	return true
}

// newNode carves a node with an h-slot tower from the arenas.
func (l *List) newNode(key, val int64, h int) *node {
	if len(l.nodeArena) == 0 {
		l.nodeArena = make([]node, arenaChunk)
	}
	n := &l.nodeArena[0]
	l.nodeArena = l.nodeArena[1:]
	if len(l.towerArena) < h {
		// The slab remainder (< h <= maxLevel pointers) is abandoned.
		l.towerArena = make([]*node, 2*arenaChunk)
	}
	n.key, n.val = key, val
	n.next = l.towerArena[:h:h]
	l.towerArena = l.towerArena[h:]
	return n
}

// link splices a new node for key behind the given predecessors.
func (l *List) link(key, val int64, preds []*node) {
	h := l.height(key)
	if h > l.level {
		l.level = h
	}
	n := l.newNode(key, val, h)
	for lv := 0; lv < h; lv++ {
		n.next[lv] = preds[lv].next[lv]
		preds[lv].next[lv] = n
	}
	l.size++
}

// Contains reports whether key is present and returns its value.
func (l *List) Contains(key int64) (int64, bool) {
	x := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil && x.next[lv].key < key {
			x = x.next[lv]
		}
	}
	if nxt := x.next[0]; nxt != nil && nxt.key == key {
		return nxt.val, true
	}
	return 0, false
}

// Succ returns the smallest key >= key (and its value), or ok=false if
// no such key exists.
func (l *List) Succ(key int64) (k, v int64, ok bool) {
	x := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil && x.next[lv].key < key {
			x = x.next[lv]
		}
	}
	if nxt := x.next[0]; nxt != nil {
		return nxt.key, nxt.val, true
	}
	return 0, 0, false
}

// Delete removes key if present, reporting whether it was.
func (l *List) Delete(key int64) bool {
	var preds [maxLevel]*node
	l.searchPreds(key, preds[:])
	target := preds[0].next[0]
	if target == nil || target.key != key {
		return false
	}
	l.unlink(target, preds[:])
	return true
}

// unlink detaches target given its predecessor tower.
func (l *List) unlink(target *node, preds []*node) {
	for lv := 0; lv < len(target.next); lv++ {
		if preds[lv].next[lv] == target {
			preds[lv].next[lv] = target.next[lv]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.size--
}

// Len returns the number of keys.
func (l *List) Len() int { return l.size }

// Keys returns all keys in ascending order (testing/verification helper).
func (l *List) Keys() []int64 {
	out := make([]int64, 0, l.size)
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, x.key)
	}
	return out
}

// checkInvariants walks every level verifying sorted order and that each
// level's nodes are a subsequence of level 0. Used by tests.
func (l *List) checkInvariants() error {
	for lv := 0; lv < l.level; lv++ {
		prev := int64(-1 << 62)
		for x := l.head.next[lv]; x != nil; x = x.next[lv] {
			if x.key <= prev {
				return errOutOfOrder{lv, prev, x.key}
			}
			prev = x.key
		}
	}
	return nil
}

type errOutOfOrder struct {
	level     int
	prev, cur int64
}

func (e errOutOfOrder) Error() string { return "skiplist: keys out of order" }
