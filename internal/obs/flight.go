package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tail flight recorder: a tiny reservoir holding the K slowest
// operations of the current observation window (plus the previous
// window, so a dump just after rotation is never empty), each with its
// full phase-stamp vector and the batch it landed in. Histograms answer
// "how bad is the tail"; the recorder answers "what, exactly, were the
// tail ops doing" — which phase ate the time, how big their batch was,
// which structure ran it.
//
// Admission cost is designed for the completion path: Offer takes the
// op by value (no allocation) and fast-rejects through two atomic loads
// when the op is no slower than the current window's K-th slowest — on
// a healthy server, almost every op. Only candidate tail ops take the
// mutex. This is by construction a *biased* sample: it keeps extremes,
// not a uniform draw, so it complements (never replaces) the unbiased
// phase histograms. See DESIGN.md §11 for the sampling-bias caveats.

// SlowOp is one recorded tail operation. Stamps are obs.Now
// nanoseconds; AgeNS is filled at snapshot time (nanoseconds between
// the op's completion and the snapshot).
type SlowOp struct {
	TotalNS    int64                `json:"total_ns"`
	AgeNS      int64                `json:"age_ns"`
	Stamps     [NumPhases]int64     `json:"stamps"`
	Durations  [NumPhases - 1]int64 `json:"durations_ns"`
	BatchDelay int64                `json:"batch_delay_ns"`
	DS         string               `json:"ds"`
	Kind       int32                `json:"kind"`
	Key        int64                `json:"key"`
	Shard      int32                `json:"shard"`
	BatchSize  int32                `json:"batch_size"`
	BatchGroup int32                `json:"batch_group"`
	Err        bool                 `json:"err"`
}

// FlightRecorder keeps the K slowest SlowOps per rotation window.
// Methods are safe for concurrent use; a nil recorder ignores every
// call, so callers need no nil checks beyond the method dispatch.
type FlightRecorder struct {
	k      int
	window int64 // rotation period, ns

	// floor is the fast-reject threshold: the smallest TotalNS in a full
	// current reservoir, or -1 while it has room (every op passes).
	// curStart anchors the window-expiry check. Both are read without
	// the mutex on the reject path; staleness only costs a harmless
	// mutex acquisition or a marginally late rotation.
	floor    atomic.Int64
	curStart atomic.Int64

	mu        sync.Mutex
	cur, prev []SlowOp
}

// NewFlightRecorder creates a recorder keeping the k slowest ops per
// window. k defaults to 16 and window to 10s when nonpositive.
func NewFlightRecorder(k int, window time.Duration) *FlightRecorder {
	if k <= 0 {
		k = 16
	}
	if window <= 0 {
		window = 10 * time.Second
	}
	f := &FlightRecorder{
		k:      k,
		window: int64(window),
		cur:    make([]SlowOp, 0, k),
		prev:   make([]SlowOp, 0, k),
	}
	f.floor.Store(-1)
	f.curStart.Store(Now())
	return f
}

// K returns the reservoir capacity per window.
func (f *FlightRecorder) K() int {
	if f == nil {
		return 0
	}
	return f.k
}

// Offer presents one completed op. It keeps it only if it ranks among
// the K slowest of the current window. Allocation-free; the common
// (fast) case is two atomic loads and a compare.
func (f *FlightRecorder) Offer(op SlowOp) {
	if f == nil {
		return
	}
	now := Now()
	if op.TotalNS <= f.floor.Load() && now-f.curStart.Load() < f.window {
		return
	}
	f.mu.Lock()
	f.rotateLocked(now)
	if len(f.cur) < f.k {
		f.cur = append(f.cur, op)
		if len(f.cur) == f.k {
			f.refloorLocked()
		}
	} else {
		mi := 0
		for i := 1; i < len(f.cur); i++ {
			if f.cur[i].TotalNS < f.cur[mi].TotalNS {
				mi = i
			}
		}
		if op.TotalNS > f.cur[mi].TotalNS {
			f.cur[mi] = op
			f.refloorLocked()
		}
	}
	f.mu.Unlock()
}

// rotateLocked retires the current window into prev once it expires.
// The slices swap so both backing arrays are reused forever.
func (f *FlightRecorder) rotateLocked(now int64) {
	start := f.curStart.Load()
	if now-start < f.window {
		return
	}
	f.cur, f.prev = f.prev[:0], f.cur
	f.curStart.Store(now)
	f.floor.Store(-1)
}

// refloorLocked recomputes the fast-reject threshold from a full
// current reservoir.
func (f *FlightRecorder) refloorLocked() {
	min := f.cur[0].TotalNS
	for _, op := range f.cur[1:] {
		if op.TotalNS < min {
			min = op.TotalNS
		}
	}
	f.floor.Store(min)
}

// Snapshot returns the recorded ops of the current and previous
// windows, slowest first (at most 2K entries), with AgeNS filled in.
// The returned slice is the caller's to keep.
func (f *FlightRecorder) Snapshot() []SlowOp {
	if f == nil {
		return nil
	}
	now := Now()
	f.mu.Lock()
	f.rotateLocked(now)
	out := make([]SlowOp, 0, len(f.cur)+len(f.prev))
	out = append(out, f.cur...)
	out = append(out, f.prev...)
	f.mu.Unlock()
	for i := range out {
		out[i].AgeNS = now - out[i].Stamps[PhaseDone]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNS > out[j].TotalNS })
	return out
}
