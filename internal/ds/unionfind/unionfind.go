// Package unionfind implements a disjoint-set (union-find) structure
// with an implicitly batched interface. Minimum-spanning-tree algorithms
// are one of the applications the paper's introduction credits to
// batched structures; the Borůvka example (examples/boruvka) drives this
// package through BATCHER.
//
// The batched operation exploits the usual read/write split: Find and
// SameSet queries are read-only and run fully in parallel, while the
// batch's Unions apply sequentially (a batch has at most P of them).
// Union by rank without path compression keeps every find read-only and
// guarantees O(lg n) tree depth, so a size-x batch over n elements has
// O(x lg n) work and O(lg n) span — squarely in Theorem 1's sweet spot.
package unionfind

import "batcher/internal/sched"

// Operation kinds.
const (
	// OpFind resolves Key's set representative into Res.
	OpFind sched.OpKind = iota
	// OpUnion merges the sets of Key and Val; Ok reports "were separate".
	OpUnion
	// OpSame asks whether Key and Val share a set; Ok receives the
	// answer.
	OpSame
)

// Seq is the sequential disjoint-set structure (union by rank).
type Seq struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewSeq returns n singleton sets, elements 0..n-1.
func NewSeq(n int) *Seq {
	s := &Seq{parent: make([]int32, n), rank: make([]int8, n), sets: n}
	for i := range s.parent {
		s.parent[i] = int32(i)
	}
	return s
}

// Find returns the representative of x's set. It does not mutate (no
// path compression), so concurrent Finds are safe by construction.
func (s *Seq) Find(x int32) int32 {
	for s.parent[x] != x {
		x = s.parent[x]
	}
	return x
}

// Union merges the sets of a and b, reporting whether they were
// separate.
func (s *Seq) Union(a, b int32) bool {
	ra, rb := s.Find(a), s.Find(b)
	if ra == rb {
		return false
	}
	if s.rank[ra] < s.rank[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	if s.rank[ra] == s.rank[rb] {
		s.rank[ra]++
	}
	s.sets--
	return true
}

// Same reports whether a and b share a set.
func (s *Seq) Same(a, b int32) bool { return s.Find(a) == s.Find(b) }

// Sets returns the number of disjoint sets.
func (s *Seq) Sets() int { return s.sets }

// Len returns the element count.
func (s *Seq) Len() int { return len(s.parent) }

// Batched is the implicitly batched union-find.
type Batched struct {
	s *Seq
}

var _ sched.Batched = (*Batched)(nil)

// NewBatched returns n singleton sets behind the batching interface.
func NewBatched(n int) *Batched { return &Batched{s: NewSeq(n)} }

// Seq exposes the underlying structure for quiescent inspection.
func (b *Batched) Seq() *Seq { return b.s }

// Find returns x's representative. Core tasks only.
func (b *Batched) Find(c *sched.Ctx, x int32) int32 {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpFind, Key: int64(x)}
	c.Batchify(op)
	return int32(op.Res)
}

// Union merges the sets of a and b; reports whether they were separate.
// Core tasks only.
func (b *Batched) Union(c *sched.Ctx, a, x int32) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpUnion, Key: int64(a), Val: int64(x)}
	c.Batchify(op)
	return op.Ok
}

// Same reports whether a and b share a set. Core tasks only.
func (b *Batched) Same(c *sched.Ctx, a, x int32) bool {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpSame, Key: int64(a), Val: int64(x)}
	c.Batchify(op)
	return op.Ok
}

// RunBatch implements sched.Batched: queries linearize before the
// batch's unions; queries run in parallel, unions sequentially.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	var queries, unions []*sched.OpRecord
	for _, op := range ops {
		switch op.Kind {
		case OpFind, OpSame:
			queries = append(queries, op)
		case OpUnion:
			unions = append(unions, op)
		default:
			panic("unionfind: unknown op kind")
		}
	}
	c.For(0, len(queries), 1, func(_ *sched.Ctx, i int) {
		op := queries[i]
		switch op.Kind {
		case OpFind:
			op.Res = int64(b.s.Find(int32(op.Key)))
			op.Ok = true
		case OpSame:
			op.Ok = b.s.Same(int32(op.Key), int32(op.Val))
		}
	})
	for _, op := range unions {
		op.Ok = b.s.Union(int32(op.Key), int32(op.Val))
	}
}
