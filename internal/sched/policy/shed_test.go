package policy_test

import (
	"errors"
	"testing"
	"time"

	"batcher/internal/sched"
	"batcher/internal/sched/policy"
)

// TestShedDelegates pins that wrapping changes nothing but admission:
// name, launch, and linger all come from the inner policy.
func TestShedDelegates(t *testing.T) {
	ctrl := sched.NewAdmissionController(100 * time.Millisecond)
	for _, tc := range shippedPolicies {
		wrapped := policy.Shed{Inner: tc.pol, Ctrl: ctrl}
		if wrapped.Name() != tc.pol.Name() {
			t.Errorf("Shed{%s}.Name() = %q, want %q", tc.name, wrapped.Name(), tc.pol.Name())
		}
		if got, want := wrapped.LingerYields(7, true), tc.pol.LingerYields(7, true); got != want {
			t.Errorf("Shed{%s}.LingerYields = %d, want %d", tc.name, got, want)
		}
	}
	// Nil inner falls back to the scheduler default.
	if got := (policy.Shed{Ctrl: ctrl}).Name(); got != (sched.AlternatingStealPolicy{}).Name() {
		t.Errorf("Shed{nil}.Name() = %q", got)
	}
}

// TestShedAdmitHighWater pins the depth semantics: admit everything
// while the controller is not limiting, refuse past 7/8 capacity while
// it is.
func TestShedAdmitHighWater(t *testing.T) {
	ctrl := sched.NewAdmissionController(time.Second)
	p := policy.Shed{Ctrl: ctrl}
	const cap = 64
	for d := 1; d <= cap; d++ {
		if !p.Admit(d, cap) {
			t.Fatalf("not limiting: Admit(%d, %d) = false", d, cap)
		}
	}
	ctrl.Refill(0, true)
	mark := cap - cap/8
	for d := 1; d <= cap; d++ {
		if got, want := p.Admit(d, cap), d <= mark; got != want {
			t.Fatalf("limiting: Admit(%d, %d) = %v, want %v", d, cap, got, want)
		}
	}
	ctrl.Refill(0, false)
	if !p.Admit(cap, cap) {
		t.Fatal("un-limiting did not restore admission")
	}
	// An inner refusal stays a refusal regardless of controller state.
	inner := capAdmit{}
	wrapped := policy.Shed{Inner: inner, Ctrl: ctrl}
	if wrapped.Admit(cap/2+1, cap) {
		t.Fatal("Shed admitted past the inner policy's cap")
	}
}

// TestShedAdmitZeroAlloc pins the admit fast path at zero allocations
// with the controller attached, in both controller states — the seam
// is consulted under the pump mutex on every Submit.
func TestShedAdmitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	ctrl := sched.NewAdmissionController(time.Second)
	for _, tc := range shippedPolicies {
		p := policy.Shed{Inner: tc.pol, Ctrl: ctrl}
		for _, limiting := range []bool{false, true} {
			ctrl.Refill(1<<40, limiting)
			var ok bool
			allocs := testing.AllocsPerRun(1000, func() {
				ok = p.Admit(3, 64)
			})
			if !ok {
				t.Fatalf("%s limiting=%v: Admit refused shallow depth", tc.name, limiting)
			}
			if allocs != 0 {
				t.Errorf("%s limiting=%v: Admit allocates %.1f/op, want 0", tc.name, limiting, allocs)
			}
		}
	}
	ctrl.Refill(0, false)
	allocs := testing.AllocsPerRun(1000, func() { ctrl.Take() })
	if allocs != 0 {
		t.Errorf("Take (unlimited) allocates %.1f/op, want 0", allocs)
	}
}

// TestShedPumpSaturation proves the seam is live end to end: a pump
// running a Shed-wrapped default policy with a limiting controller
// refuses Submit past the high-water mark with ErrPumpSaturated, while
// the same pump admits a full queue once the controller stands down.
func TestShedPumpSaturation(t *testing.T) {
	ctrl := sched.NewAdmissionController(time.Second)
	ctrl.Refill(1<<40, true) // limiting: depth high-water active, edge credits ample
	rt := sched.New(sched.Config{Workers: 2, Seed: 705,
		Policy: policy.Shed{Ctrl: ctrl}})
	p := sched.NewPump(rt, sched.PumpConfig{QueueCap: 64})
	ds := &sumDS{}
	recs := make([]sched.OpRecord, 64)
	admitted := 0
	var firstErr error
	for i := range recs {
		recs[i] = sched.OpRecord{DS: ds, Val: 1}
		if err := p.Submit(&recs[i]); err != nil {
			firstErr = err
			break
		}
		admitted++
	}
	if want := 64 - 64/8; admitted != want {
		t.Fatalf("admitted %d ops, want %d (7/8 of QueueCap 64)", admitted, want)
	}
	if !errors.Is(firstErr, sched.ErrPumpSaturated) {
		t.Fatalf("rejection error = %v, want ErrPumpSaturated", firstErr)
	}
	ctrl.Refill(0, false)
	p2 := sched.NewPump(rt, sched.PumpConfig{QueueCap: 64})
	bulk := make([]sched.OpRecord, 64)
	ptrs := make([]*sched.OpRecord, 64)
	for i := range bulk {
		bulk[i] = sched.OpRecord{DS: ds, Val: 1}
		ptrs[i] = &bulk[i]
	}
	if n, err := p2.SubmitAll(ptrs); n != 64 || err != nil {
		t.Fatalf("SubmitAll after stand-down = (%d, %v), want (64, nil)", n, err)
	}
}

// TestAdmissionControllerCredits pins the token-bucket semantics the
// edge depends on: unlimited until the first limiting refill, then
// exactly `credits` Takes succeed per interval, refused Takes count as
// shed, and a non-limiting refill restores the fast path.
func TestAdmissionControllerCredits(t *testing.T) {
	ctrl := sched.NewAdmissionController(250 * time.Millisecond)
	if ctrl.SLO() != (250 * time.Millisecond).Nanoseconds() {
		t.Fatalf("SLO = %d", ctrl.SLO())
	}
	for i := 0; i < 100; i++ {
		if !ctrl.Take() {
			t.Fatal("cold-start Take refused")
		}
	}
	if ctrl.Limiting() || ctrl.Shed() != 0 {
		t.Fatalf("cold start: limiting=%v shed=%d", ctrl.Limiting(), ctrl.Shed())
	}
	ctrl.Refill(3, true)
	got := 0
	for i := 0; i < 10; i++ {
		if ctrl.Take() {
			got++
		}
	}
	if got != 3 {
		t.Fatalf("limiting interval admitted %d, want 3", got)
	}
	if ctrl.Shed() != 7 {
		t.Fatalf("shed = %d, want 7", ctrl.Shed())
	}
	ctrl.SetPredicted(1e9)
	if ctrl.Predicted() != 1e9 {
		t.Fatalf("predicted = %d", ctrl.Predicted())
	}
	ctrl.Refill(0, false)
	if !ctrl.Take() {
		t.Fatal("stand-down Take refused")
	}
	if ctrl.Shed() != 7 {
		t.Fatalf("shed after stand-down = %d, want 7 (cumulative)", ctrl.Shed())
	}
}
