package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for the SplitMix64 sequence with seed 0, from the
	// public-domain reference implementation.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, value %d = %#x, want %#x", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(11)
	seen := make([]bool, 8)
	for i := 0; i < 10000; i++ {
		seen[r.Intn(8)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(8) never produced %d in 10000 draws", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	f := func(seed uint64, xs []int) bool {
		cp := append([]int(nil), xs...)
		Shuffle(New(seed), cp)
		count := map[int]int{}
		for _, v := range xs {
			count[v]++
		}
		for _, v := range cp {
			count[v]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricLevelBounds(t *testing.T) {
	r := New(123)
	for i := 0; i < 10000; i++ {
		l := r.GeometricLevel(20)
		if l < 0 || l > 20 {
			t.Fatalf("level %d out of [0,20]", l)
		}
	}
}

func TestGeometricLevelDistribution(t *testing.T) {
	r := New(321)
	const n = 200000
	zeros := 0
	for i := 0; i < n; i++ {
		if r.GeometricLevel(30) == 0 {
			zeros++
		}
	}
	// P(level = 0) = 1/2.
	frac := float64(zeros) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("P(level=0) = %v, want ~0.5", frac)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(77)
	const n = 100000
	trues := 0
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("P(true) = %v, want ~0.5", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(8)
	}
	_ = sink
}
