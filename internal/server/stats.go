package server

import (
	"encoding/json"
	"time"

	"batcher/internal/obs"
	"batcher/internal/sched"
)

// Stats is the server's live metrics document, served as the payload of
// a DSStats request. Batching figures come from the runtimes' live
// counters (sched.Runtime.LiveBatchStats), which — unlike
// Runtime.Metrics — are readable while the pumps are serving. The
// top-level figures aggregate across shards; PerShard is the per-shard
// breakdown (a DSStats read never enters any pump: the serving layer
// fans out across every shard's live counters and merges here).
type Stats struct {
	// Workers is P, the scheduler worker count per shard; Shards is the
	// number of independent runtime shards (total workers = Shards×P).
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// UptimeSec is seconds since Start.
	UptimeSec float64 `json:"uptime_sec"`
	// Conns is the current connection count.
	Conns int64 `json:"conns"`
	// Accepted, Rejected, and Completed count operations admitted into
	// a shard pump, refused (bad op, saturation cap, shutdown), and
	// responded to. Immediate counts the subset of Completed that never
	// entered a pump (stats reads and rejections), so the books
	// balance as completed == accepted + immediate once the server is
	// quiescent. Failed counts accepted operations whose batch group
	// panicked — they completed, with FlagErr.
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Immediate int64 `json:"immediate"`
	Failed    int64 `json:"failed"`
	// Offered counts valid operations routed to a shard at decode time
	// (before admission control), summed across shards; Shed counts
	// those refused by the admission controllers (fast FlagErr at the
	// edge, a subset of Immediate). With admission control off, Shed is
	// 0 and Offered == Accepted + Rejected + abandoned ops. Per shard,
	// offered == completed + shed + rejected + abandoned after a drain.
	Offered int64 `json:"offered"`
	Shed    int64 `json:"shed"`
	// AdmitSLONS is the configured admission SLO (Config.SLO) in
	// nanoseconds, 0 when admission control is off;
	// AdmitPredictedP999NS is the worst per-shard twin prediction at
	// the last sampler tick.
	AdmitSLONS           int64 `json:"admit_slo_ns"`
	AdmitPredictedP999NS int64 `json:"admit_predicted_p999_ns"`
	// TwinResidualPct is the worst per-shard rolling mean absolute
	// percent error of the twin's p999 predictions (0 with admission
	// off or before the first paired tick).
	TwinResidualPct float64 `json:"twin_residual_pct"`
	// ConformHeadroom is the worst per-shard Theorem 5.4 headroom
	// gauge (measured windowed batch-delay max over the envelope
	// 2·(span+gap); >1 means some shard exceeded the bound), and
	// ConformMaxLandings the worst per-shard Lemma 2 landings count
	// (>2 breaks the lemma). Both from the live conformance monitors.
	ConformHeadroom    float64 `json:"conform_headroom"`
	ConformMaxLandings int64   `json:"conform_max_landings"`
	// DecodeErrors counts connections dropped for malformed frames
	// (oversized length prefixes, short request bodies).
	DecodeErrors int64 `json:"decode_errors"`
	// Evictions counts connections torn down for deadline or protocol
	// violations (idle, write stall, decode error, write error) — not
	// normal closes or shutdown drains.
	Evictions int64 `json:"evictions"`
	// ReadSyscalls and WriteSyscalls count socket read/write syscalls
	// issued by the reactor loops. Their ratio to BatchedOps is the
	// edge's syscall amortization: well under 1 syscall/op when clients
	// pipeline, because one read carves many frames and one write
	// carries many coalesced responses.
	ReadSyscalls  int64 `json:"read_syscalls"`
	WriteSyscalls int64 `json:"write_syscalls"`
	// ReactorLoops is the reactor pool size (reader/writer loop pairs).
	ReactorLoops int `json:"reactor_loops"`
	// BatchPanics counts batch groups whose BOP panicked and was
	// contained, summed across shards (each may have failed several
	// operations).
	BatchPanics int64 `json:"batch_panics"`
	// OpsPerSec is batched throughput: operations completed through the
	// shard pumps (the shard ledgers' completed counts — excluding
	// Immediate responses like stats polling and rejections), averaged
	// over the uptime. It is computed as the sum of the per-shard
	// figures, so sum(PerShard[i].OpsPerSec) == OpsPerSec identically.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Policy is the batch-formation policy name every shard runtime
	// runs (server.Config.Policy; "default" is the paper's behavior).
	Policy string `json:"policy"`
	// LaunchReasons counts launched batches by the policy decision that
	// triggered each launch, summed across shards. Keys are
	// sched.LaunchReasonNames values ("no-backlog", "batch-full",
	// "deadline", ...); "hold" never appears (holds defer, not launch).
	LaunchReasons map[string]int64 `json:"launch_reasons"`
	// Batches and BatchedOps count executed batches and the operations
	// they carried, summed across shards; MeanBatch is their ratio —
	// the achieved batch size, the figure of merit for edge batching.
	Batches    int64   `json:"batches"`
	BatchedOps int64   `json:"batched_ops"`
	MeanBatch  float64 `json:"mean_batch"`
	// QueueDepth is the summed shard-pump ingress depth.
	QueueDepth int `json:"queue_depth"`
	// PerShard is the per-shard breakdown. With skewed keys the shards
	// visibly diverge here — unequal accepted counts, batch sizes, and
	// queue depths — which is the router doing its job, not a bug.
	PerShard []ShardStats `json:"per_shard"`
}

// ShardStats is one shard's slice of the stats document. Its books
// balance independently: accepted == completed after a drain, with
// failed the contained-panic subset — one auditable ledger per shard.
type ShardStats struct {
	Shard int `json:"shard"`
	// Accepted/Completed/Failed are the shard's admission ledger
	// (shard.Shard.Books).
	Accepted  int64 `json:"accepted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Offered/Shed/Rejected/Abandoned extend the ledger to the edge:
	// offered ops routed here at decode, shed by the admission
	// controller, rejected without a pump (saturation cap, shutdown),
	// and abandoned (conn died before the pump). After a drain,
	// offered == completed + shed + rejected + abandoned.
	Offered   int64 `json:"offered"`
	Shed      int64 `json:"shed"`
	Rejected  int64 `json:"rejected"`
	Abandoned int64 `json:"abandoned"`
	// PredictedP999NS is this shard's twin prediction at the last
	// admission sampler tick (0 with admission off or cold);
	// MeasuredP999NS the p999 realized over that tick's interval, and
	// TwinResidualPct the rolling mean absolute percent error between
	// the two (both 0 with admission off).
	PredictedP999NS int64   `json:"predicted_p999_ns"`
	MeasuredP999NS  int64   `json:"measured_p999_ns"`
	TwinResidualPct float64 `json:"twin_residual_pct"`
	// Conformance is the live Theorem 5.4 / Lemma 2 monitor's windowed
	// gauges for this shard (DESIGN.md §16).
	Conformance obs.ConformSnapshot `json:"conformance"`
	// Batches/BatchedOps/MeanBatch describe the shard runtime's
	// executed batches; OpsPerSec is its pump-completed throughput over
	// the server's uptime — the same basis as the global figure, which
	// is exactly the sum of these.
	Batches    int64   `json:"batches"`
	BatchedOps int64   `json:"batched_ops"`
	MeanBatch  float64 `json:"mean_batch"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// QueueDepth is the shard pump's current ingress depth;
	// BatchPanics its contained-panic count.
	QueueDepth  int   `json:"queue_depth"`
	BatchPanics int64 `json:"batch_panics"`
}

// Snapshot assembles the current Stats. Safe at any time, including
// while serving.
func (s *Server) Snapshot() Stats {
	up := time.Since(s.start).Seconds()
	batches, ops := s.router.LiveBatchStats()
	st := Stats{
		Workers:       s.Runtime().Workers(),
		Shards:        s.router.N(),
		UptimeSec:     up,
		Conns:         s.curConns.Load(),
		Accepted:      s.accepted.Load(),
		Rejected:      s.rejected.Load(),
		Completed:     s.completed.Load(),
		Immediate:     s.immediate.Load(),
		Failed:        s.failed.Load(),
		DecodeErrors:  s.decodeErr.Load(),
		Evictions:     s.evictions.Load(),
		ReadSyscalls:  s.readSys.Load(),
		WriteSyscalls: s.writeSys.Load(),
		ReactorLoops:  len(s.rloops),
		BatchPanics:   s.router.BatchPanics(),
		Batches:       batches,
		BatchedOps:    ops,
		QueueDepth:    s.router.Depth(),
		PerShard:      make([]ShardStats, s.router.N()),
	}
	if batches > 0 {
		st.MeanBatch = float64(ops) / float64(batches)
	}
	for i := range st.PerShard {
		sh := s.router.Shard(i)
		acc, comp, failed := sh.Books()
		b, o := sh.Runtime().LiveBatchStats()
		ss := ShardStats{
			Shard:       i,
			Accepted:    acc,
			Completed:   comp,
			Failed:      failed,
			Offered:     s.edge[i].offered.Load(),
			Rejected:    s.edge[i].rejected.Load(),
			Abandoned:   s.edge[i].abandoned.Load(),
			Batches:     b,
			BatchedOps:  o,
			QueueDepth:  sh.Pump().Depth(),
			BatchPanics: sh.Runtime().BatchPanics(),
		}
		if s.admission != nil {
			ss.Shed = s.admission[i].Shed()
			ss.PredictedP999NS = s.admission[i].Predicted()
			ss.MeasuredP999NS = s.twin[i].realized.Load()
			ss.TwinResidualPct = s.twin[i].residualPct()
		}
		ss.Conformance = s.shardM[i].conform.Snapshot()
		st.Offered += ss.Offered
		st.Shed += ss.Shed
		if ss.PredictedP999NS > st.AdmitPredictedP999NS {
			st.AdmitPredictedP999NS = ss.PredictedP999NS
		}
		if ss.TwinResidualPct > st.TwinResidualPct {
			st.TwinResidualPct = ss.TwinResidualPct
		}
		if ss.Conformance.Headroom > st.ConformHeadroom {
			st.ConformHeadroom = ss.Conformance.Headroom
		}
		if ss.Conformance.MaxLandings > st.ConformMaxLandings {
			st.ConformMaxLandings = ss.Conformance.MaxLandings
		}
		if b > 0 {
			ss.MeanBatch = float64(o) / float64(b)
		}
		if up > 0 {
			ss.OpsPerSec = float64(comp) / up
		}
		// The global rate is the sum of the shard rates — one basis
		// (pump-completed ops over uptime), no immediate-op skew.
		st.OpsPerSec += ss.OpsPerSec
		st.PerShard[i] = ss
	}
	st.AdmitSLONS = s.cfg.SLO.Nanoseconds()
	st.Policy = s.router.Shard(0).Runtime().Policy().Name()
	reasons := s.router.LaunchReasons()
	st.LaunchReasons = make(map[string]int64, len(reasons)-1)
	for r, n := range reasons {
		if sched.LaunchReason(r) == sched.LaunchHold {
			continue
		}
		st.LaunchReasons[sched.LaunchReasonNames[r]] = n
	}
	return st
}

// statsJSON renders Snapshot for the wire.
func (s *Server) statsJSON() []byte {
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		// A fixed struct of numbers cannot fail to marshal.
		panic(err)
	}
	return b
}
