// Package faultinject is the failure-containment test harness: hostile
// batched structures to splice into a live runtime, and hostile wire
// clients to aim at a live batcherd.
//
// The structure wrappers implement sched.Batched around an inner
// structure and misbehave on command — panic on a poison key, panic
// every Nth batch, stall mid-batch. They exist to prove the containment
// contract from the serving side: a BOP that panics must cost exactly
// its own batch group (those operations come back with Err / FlagErr)
// while every other group, connection, and batch proceeds. Servers
// splice them in through server.Config.WrapDS; direct runtime tests
// just pass them to Batchify.
//
// The wire clients misbehave below the protocol: a torn frame (header
// promising more bytes than ever arrive) checks the idle deadline, an
// oversized length prefix checks decode-error accounting, and a
// slowloris writer (requests in, responses never read) checks the
// write-stall deadline. Each models a real failure — a crashed peer, a
// fuzzer, a stalled consumer — that a serving edge must absorb without
// leaking window slots.
package faultinject

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"batcher/internal/sched"
	"batcher/internal/server"
)

// PanicValue is the distinctive value injected panics carry, so tests
// can assert a recovered panic came from this package and not a real
// bug in the structure under test.
const PanicValue = "faultinject: injected BOP panic"

// Panicker wraps a batched structure and panics — before touching the
// inner structure, so its state stays consistent — whenever a batch
// contains an operation with the poison key. All other batches are
// delegated unchanged.
type Panicker struct {
	Inner  sched.Batched
	Poison int64
	// Panics counts injected panics (readable live).
	Panics atomic.Int64
}

// RunBatch implements sched.Batched.
func (p *Panicker) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	for _, op := range ops {
		if op.Key == p.Poison {
			p.Panics.Add(1)
			panic(PanicValue)
		}
	}
	p.Inner.RunBatch(c, ops)
}

// Flaky wraps a batched structure and panics on every Nth batch
// (deterministically, counting from the first call), after delegating
// the other N-1. It models an intermittently failing structure: most
// traffic succeeds, so tests can check that failures interleave with
// successes on the same structure without wedging it.
type Flaky struct {
	Inner  sched.Batched
	EveryN int64
	calls  atomic.Int64
	// Panics counts injected panics (readable live).
	Panics atomic.Int64
}

// RunBatch implements sched.Batched.
func (f *Flaky) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	if n := f.calls.Add(1); f.EveryN > 0 && n%f.EveryN == 0 {
		f.Panics.Add(1)
		panic(PanicValue)
	}
	f.Inner.RunBatch(c, ops)
}

// Slow wraps a batched structure and sleeps before each batch. Because
// at most one batch runs at a time (Invariant 1), the sleep stalls the
// whole batching pipeline — which is the point: it backs traffic up
// into the pump queue so tests can drive the saturation-timeout path
// with real load instead of an artificially tiny queue.
type Slow struct {
	Inner sched.Batched
	Delay time.Duration
}

// RunBatch implements sched.Batched.
func (s *Slow) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	time.Sleep(s.Delay)
	s.Inner.RunBatch(c, ops)
}

// SendTornFrame dials addr and writes a frame header promising a full
// request body but delivers only half of it, then leaves the
// connection open and silent. The server's reader blocks inside
// ReadFrame holding a window slot; only its idle deadline can free it.
// The caller owns (and should eventually Close) the returned
// connection.
func SendTornFrame(addr string) (net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	frame := server.AppendRequest(nil, server.Request{ID: 1, DS: server.DSCounter, Val: 1})
	if _, err := nc.Write(frame[:len(frame)/2]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("faultinject: torn write: %w", err)
	}
	return nc, nil
}

// SendOversizedFrame dials addr and writes a length prefix far beyond
// the protocol's frame limit, then blocks until the server closes the
// connection (a read returning EOF/reset). The server must count it as
// a decode error, not crash or allocate the claimed length.
func SendOversizedFrame(addr string) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	if _, err := nc.Write(hdr[:]); err != nil {
		return fmt.Errorf("faultinject: oversized write: %w", err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = nc.Read(hdr[:])
	if err == nil {
		return fmt.Errorf("faultinject: server answered an oversized frame")
	}
	return nil // connection dropped, as required
}

// Slowloris dials addr and writes n valid requests without ever
// reading a response, so the server's unread responses pile up until
// its send path blocks; the write-stall deadline must break the
// connection and reclaim its window slots. The requests are stats
// reads: their payload-bearing responses (hundreds of bytes each, vs
// 25 for a plain result) overrun the kernel's send-buffer autotuning —
// which on Linux absorbs megabytes on loopback — with a test-sized n.
// The client's own receive buffer is clamped small for the same
// reason. The caller owns (and should eventually Close) the returned
// connection. The write itself is expected to error once the server
// tears the connection down mid-flood; that error is returned
// alongside the live connection so callers can ignore it.
func Slowloris(addr string, n int) (net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(1 << 12)
	}
	var buf []byte
	for i := 0; i < n; i++ {
		buf = server.AppendRequest(buf[:0], server.Request{
			ID: uint64(i + 1), DS: server.DSStats,
		})
		if _, err := nc.Write(buf); err != nil {
			return nc, fmt.Errorf("faultinject: slowloris write %d: %w", i, err)
		}
	}
	return nc, nil
}
