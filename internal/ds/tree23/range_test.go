package tree23

import (
	"sort"
	"testing"
	"testing/quick"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func TestRangeSeqBasic(t *testing.T) {
	tr := NewTree()
	for i := int64(0); i < 100; i += 2 { // evens 0..98
		tr.Insert(i, i*10)
	}
	ks, vs := tr.RangeSeq(10, 20)
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(ks) != len(want) {
		t.Fatalf("keys %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] || vs[i] != want[i]*10 {
			t.Fatalf("ks=%v vs=%v", ks, vs)
		}
	}
}

func TestRangeSeqEdges(t *testing.T) {
	tr := NewTree()
	for i := int64(0); i < 50; i++ {
		tr.Insert(i, i)
	}
	if ks, _ := tr.RangeSeq(60, 70); len(ks) != 0 {
		t.Fatalf("out-of-range query returned %v", ks)
	}
	if ks, _ := tr.RangeSeq(-10, -1); len(ks) != 0 {
		t.Fatalf("below-range query returned %v", ks)
	}
	if ks, _ := tr.RangeSeq(0, 49); len(ks) != 50 {
		t.Fatalf("full range returned %d keys", len(ks))
	}
	if ks, _ := tr.RangeSeq(7, 7); len(ks) != 1 || ks[0] != 7 {
		t.Fatalf("point query returned %v", ks)
	}
	if ks, _ := tr.RangeSeq(20, 10); len(ks) != 0 {
		t.Fatalf("inverted range returned %v", ks)
	}
	empty := NewTree()
	if ks, _ := empty.RangeSeq(0, 100); len(ks) != 0 {
		t.Fatalf("empty tree returned %v", ks)
	}
}

func TestQuickRangeAgainstSortedSlice(t *testing.T) {
	f := func(keys []int16, lo16, hi16 int16) bool {
		lo, hi := int64(lo16), int64(hi16)
		tr := NewTree()
		set := map[int64]bool{}
		for _, k16 := range keys {
			k := int64(k16)
			tr.Insert(k, k)
			set[k] = true
		}
		var want []int64
		for k := range set {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got, _ := tr.RangeSeq(lo, hi)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedRangeQueries(t *testing.T) {
	b := NewBatched()
	rt := sched.New(sched.Config{Workers: 4, Seed: 51})
	const n = 2000
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Insert(cc, int64(i), int64(i)) })
	})
	// Parallel range queries of varying widths.
	r := rng.New(3)
	const q = 200
	los := make([]int64, q)
	his := make([]int64, q)
	for i := range los {
		los[i] = r.Int63() % n
		his[i] = los[i] + r.Int63()%100
	}
	results := make([][]int64, q)
	rt.Run(func(c *sched.Ctx) {
		c.For(0, q, 1, func(cc *sched.Ctx, i int) {
			results[i], _ = b.Range(cc, los[i], his[i])
		})
	})
	for i := range results {
		wantLen := his[i] - los[i] + 1
		if his[i] >= n {
			wantLen = n - los[i]
		}
		if int64(len(results[i])) != wantLen {
			t.Fatalf("query [%d,%d]: %d keys, want %d", los[i], his[i], len(results[i]), wantLen)
		}
		for j, k := range results[i] {
			if k != los[i]+int64(j) {
				t.Fatalf("query %d: key %d at %d", i, k, j)
			}
		}
	}
}

func TestBatchedRangeConcurrentWithWrites(t *testing.T) {
	// Ranges linearize before same-batch inserts/deletes; we only assert
	// they return a consistent snapshot (sorted, within bounds) while
	// writers churn.
	b := NewBatched()
	rt := sched.New(sched.Config{Workers: 8, Seed: 53})
	rt.Run(func(c *sched.Ctx) {
		c.For(0, 500, 1, func(cc *sched.Ctx, i int) { b.Insert(cc, int64(i), 0) })
	})
	rt.Run(func(c *sched.Ctx) {
		c.For(0, 600, 1, func(cc *sched.Ctx, i int) {
			switch i % 3 {
			case 0:
				b.Insert(cc, int64(500+i), 0)
			case 1:
				b.Delete(cc, int64(i%500))
			case 2:
				ks, _ := b.Range(cc, 100, 300)
				for j := 1; j < len(ks); j++ {
					if ks[j] <= ks[j-1] {
						t.Errorf("unsorted range result")
						return
					}
				}
				for _, k := range ks {
					if k < 100 || k > 300 {
						t.Errorf("out-of-bounds key %d", k)
						return
					}
				}
			}
		})
	})
	if err := b.Tree().checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
