package server_test

// Behavioral witnesses for the reactor-pool wire edge: cross-connection
// write coalescing, steady-state allocation bounds, the shutdown drain
// under deep client pipelines, and stall isolation between connections
// sharing a writer loop.

import (
	"sync"
	"testing"
	"time"

	"batcher/internal/faultinject"
	"batcher/internal/loadgen"
	"batcher/internal/server"
)

// TestServerWriteCoalescing pins the reactor's syscall amortization:
// with pipelined load across several connections, completed responses
// must land in strictly fewer write syscalls than responses — the
// shared writer loops batch every response that is ready when a
// connection's turn comes, so one write carries many frames. Reads
// amortize the same way against the clients' burst flushes.
func TestServerWriteCoalescing(t *testing.T) {
	if raceEnabled {
		t.Skip("syscall-count ratios are not meaningful under -race")
	}
	s := startServer(t, server.Config{Workers: 2, Seed: 32})
	const conns, per = 8, 400
	res, err := loadgen.Run(loadgen.Workload{
		Addr:     s.Addr().String(),
		Conns:    conns,
		Ops:      per,
		Pipeline: 32,
		DS:       server.DSCounter,
		Seed:     32,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Responses != conns*per {
		t.Fatalf("responses %d, want %d", res.Responses, conns*per)
	}

	st := s.Snapshot()
	t.Logf("ops=%d reads=%d writes=%d (%.2f ops/read, %.2f ops/write)",
		st.Completed, st.ReadSyscalls, st.WriteSyscalls,
		float64(st.Completed)/float64(st.ReadSyscalls),
		float64(st.Completed)/float64(st.WriteSyscalls))
	if st.WriteSyscalls >= st.Completed {
		t.Fatalf("no write coalescing: %d write syscalls for %d responses",
			st.WriteSyscalls, st.Completed)
	}
	if st.ReadSyscalls >= st.Accepted+st.Immediate {
		t.Fatalf("no read coalescing: %d read syscalls for %d requests",
			st.ReadSyscalls, st.Accepted+st.Immediate)
	}
}

// TestServerSteadyStateAllocs pins the edge's per-op allocation budget
// at steady state: request records are pooled, decode scratch and
// response buffers are reused per loop and per connection, and the
// client side runs on a fixed timestamp ring — so a warmed server and
// a pre-dialed driver together must stay in low single digits of
// allocations per operation (the remainder is scheduler batch scratch
// and driver bookkeeping, both amortized across a whole run).
func TestServerSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("allocation measurement is timing-heavy; skipped in -short")
	}
	s := startServer(t, server.Config{Workers: 2, Seed: 33})
	d, err := loadgen.NewDriver(loadgen.Workload{
		Addr:     s.Addr().String(),
		Conns:    4,
		Pipeline: 32,
		DS:       server.DSCounter,
		Seed:     33,
	})
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	defer d.Close()

	const opsPerRound = 2000
	// Warm the request pool, loop scratch, outbufs, and pump queue.
	for i := 0; i < 2; i++ {
		if _, err := d.Run(opsPerRound); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
	}
	perOp := testing.AllocsPerRun(3, func() {
		if _, err := d.Run(opsPerRound); err != nil {
			t.Fatalf("measured run: %v", err)
		}
	}) / opsPerRound
	t.Logf("steady-state allocs/op (client+server in-process): %.2f", perOp)
	if perOp > 6 {
		t.Fatalf("steady-state allocations %.2f per op, want <= 6", perOp)
	}
}

// TestServerReactorShutdownDrain is the drain witness under deep client
// pipelines and a deliberately tiny server window: at shutdown, parked
// operations (in per-conn pending lists or awaiting window slots) are
// rejected with FlagErr, every accepted operation's response reaches
// its client before the connection closes, and the books balance. The
// counter permutation makes any dropped accepted response a visible
// hole at the top of the range.
func TestServerReactorShutdownDrain(t *testing.T) {
	s, err := server.Start(server.Config{
		Workers:  2,
		Seed:     31,
		Window:   2,
		QueueCap: 2,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	const conns = 8

	var mu sync.Mutex
	var got []int64
	var rejected int64
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := loadgen.Dial(s.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			var mine []int64
			var mineRejected int64
			inFlight := 0
			recv := func() bool {
				r, err := c.Recv()
				if err != nil {
					return false // drained and closed by shutdown
				}
				inFlight--
				if r.Err() {
					mineRejected++ // a parked op rejected at shutdown
				} else {
					mine = append(mine, r.Res)
				}
				return true
			}
		loop:
			for {
				// Deep pipeline: 16 in flight against a server window of 2,
				// so most ops sit parked in the conn's pending list.
				for inFlight < 16 {
					if _, err := c.Send(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1}); err != nil {
						break loop
					}
					inFlight++
				}
				if err := c.Flush(); err != nil {
					break
				}
				for inFlight > 8 {
					if !recv() {
						break loop
					}
				}
			}
			for inFlight > 0 {
				if !recv() {
					break
				}
			}
			mu.Lock()
			got = append(got, mine...)
			rejected += mineRejected
			mu.Unlock()
		}()
	}

	time.Sleep(75 * time.Millisecond)
	s.Shutdown()
	wg.Wait()
	if t.Failed() {
		return
	}

	if len(got) == 0 {
		t.Fatal("no operations completed before shutdown")
	}
	seen := make(map[int64]bool, len(got))
	max := int64(0)
	for _, v := range got {
		if v < 1 || seen[v] {
			t.Fatalf("result %d duplicated or out of range", v)
		}
		seen[v] = true
		if v > max {
			max = v
		}
	}
	if max != int64(len(got)) {
		t.Fatalf("received %d results but max is %d: accepted responses lost in drain", len(got), max)
	}

	st := s.Snapshot()
	if st.Completed != st.Accepted+st.Immediate {
		t.Fatalf("books unbalanced after drain: completed=%d accepted=%d immediate=%d",
			st.Completed, st.Accepted, st.Immediate)
	}
	if st.Conns != 0 {
		t.Fatalf("%d connections survived shutdown", st.Conns)
	}
	t.Logf("drained %d accepted ops, %d client-visible rejections, books balanced", len(got), rejected)
}

// TestServerStallIsolation pins deadline ownership in the shared writer
// loops: a connection that stops reading (its responses wedged against
// a full socket buffer) must not delay loop-mates. The stalled conn's
// flush is bounded per attempt and it moves to the blocked list; the
// healthy connection sharing the same writer loop keeps completing
// round trips at full speed while the stall is still in progress.
func TestServerStallIsolation(t *testing.T) {
	s, err := server.Start(server.Config{
		Workers:           2,
		Seed:              34,
		Window:            8,
		WriteStallTimeout: 5 * time.Second, // long: the stall must persist through the test
		DrainTimeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	// Flood requests and never read: ~10MB of payload-bearing responses
	// wedges the server's writes against the socket buffer.
	nc, _ := faultinject.Slowloris(addr, 25000)
	if nc == nil {
		t.Fatal("slowloris dial failed")
	}
	defer nc.Close()

	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	const ops = 200
	for i := 0; i < ops; i++ {
		r, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1})
		if err != nil || r.Err() {
			t.Fatalf("healthy op %d during loop-mate stall: r=%+v err=%v", i, r, err)
		}
	}
	elapsed := time.Since(start)
	// Generous bound: ops are sequential round trips, so even modest
	// head-of-line blocking behind the stalled conn would blow through it.
	if elapsed > 3*time.Second {
		t.Fatalf("%d round trips took %v behind a stalled loop-mate; writer loop is not isolating the stall", ops, elapsed)
	}
	if st := s.Snapshot(); st.Conns < 2 {
		t.Fatalf("stalled conn already evicted (conns=%d); the test did not witness coexistence", st.Conns)
	}
	t.Logf("%d round trips in %v alongside a write-stalled loop-mate", ops, elapsed)

	nc.Close()
	done := make(chan struct{})
	go func() { s.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung after stall isolation test")
	}
}
