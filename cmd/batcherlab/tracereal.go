package main

// The trace subcommand's -chrome mode: instead of the simulator's ASCII
// timelines, run a real traced workload on the goroutine runtime —
// parallel skip-list inserts through Batchify — and export the
// scheduler's event rings as Chrome trace_event JSON. Load the file at
// chrome://tracing or https://ui.perfetto.dev: one track per worker,
// batches as spans sized in the args, parks as nested spans, steals and
// pump admissions as instants.

import (
	"fmt"
	"os"

	"batcher/internal/ds/skiplist"
	"batcher/internal/obs"
	"batcher/internal/sched"
)

// traceRealChrome runs the traced workload and writes the export to
// path. calls×recordsPer inserts land in batches of up to P, so even
// the -quick run produces a few hundred spans.
func traceRealChrome(path string, workers int, seed uint64, quick bool) error {
	calls, recordsPer := 500, 64
	if quick {
		calls, recordsPer = 100, 32
	}
	rt := sched.New(sched.Config{Workers: workers, Seed: seed})
	tr := rt.NewTracer(1 << 16)
	rt.SetTracer(tr)
	hist := obs.NewHistogram()
	rt.SetBatchSizeHistogram(hist)

	sl := skiplist.NewBatched(seed)
	n := calls * recordsPer
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			op := cc.Op()
			*op = sched.OpRecord{DS: sl, Kind: skiplist.OpInsert,
				Key: int64(uint64(i)*0x9e3779b97f4a7c15%(1<<30)) + 1, Val: int64(i)}
			cc.Batchify(op)
		})
	})

	evs := tr.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, evs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	batches, ops := rt.LiveBatchStats()
	fmt.Printf("%d skip-list inserts batched as %d ops in %d batches on P=%d (mean size %.2f, p99 %d), %d steals\n",
		n, ops, batches, rt.Workers(), hist.Mean(), hist.Quantile(0.99), rt.LiveSteals())
	kinds := obs.CountKinds(evs)
	fmt.Printf("events in rings: %d launch, %d land, %d steal, %d park/wake\n",
		kinds[obs.EvBatchLaunch], kinds[obs.EvBatchLand], kinds[obs.EvSteal],
		kinds[obs.EvPark]+kinds[obs.EvWake])
	fmt.Printf("wrote %s — open at chrome://tracing or ui.perfetto.dev\n", path)
	return nil
}
