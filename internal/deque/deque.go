// Package deque implements the Chase–Lev lock-free work-stealing deque.
//
// Each worker owns one deque (two in BATCHER: a core deque and a batch
// deque). Only the owner may call PushBottom and PopBottom; any worker may
// call Steal, which removes from the opposite (top) end. This is the
// classic structure from Chase & Lev, "Dynamic Circular Work-Stealing
// Deque" (SPAA 2005), with the growable circular buffer. Go's sync/atomic
// operations are sequentially consistent, which subsumes the memory fences
// the original algorithm requires.
package deque

import "sync/atomic"

const minCapacity = 32

// ring is a circular buffer of item pointers. Rings only ever grow; a
// thief holding a stale ring still reads correct values for indices in
// [top, bottom) because growth copies that range.
type ring[T any] struct {
	mask  int64 // capacity-1; capacity is a power of two
	slots []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, slots: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) get(i int64) *T    { return r.slots[i&r.mask].Load() }
func (r *ring[T]) put(i int64, v *T) { r.slots[i&r.mask].Store(v) }
func (r *ring[T]) capacity() int64   { return r.mask + 1 }
func (r *ring[T]) grow(t, b int64) *ring[T] {
	bigger := newRing[T](r.capacity() * 2)
	for i := t; i < b; i++ {
		bigger.put(i, r.get(i))
	}
	return bigger
}

// cacheLinePad separates the deque's hot fields: 128 bytes — two
// 64-byte lines — so the adjacent-line prefetcher cannot couple them.
const cacheLinePad = 128

// Deque is a lock-free work-stealing deque of *T. The zero value is not
// ready for use; call New.
//
// The header fields live on separate padded cache lines: top is CASed by
// thieves, bottom is written by the owner on every push/pop, and arr is
// read by everyone but written only on (rare) growth. Without padding,
// every owner push invalidates the line thieves spin on and vice versa.
type Deque[T any] struct {
	_      [cacheLinePad]byte
	top    atomic.Int64
	_      [cacheLinePad - 8]byte
	bottom atomic.Int64
	_      [cacheLinePad - 8]byte
	arr    atomic.Pointer[ring[T]]
	// steals counts successful Steal calls, for scheduler metrics. It
	// shares arr's lines: both are thief-written and growth is rare.
	steals atomic.Int64
	_      [cacheLinePad - 16]byte
}

// New returns an empty deque.
func New[T any]() *Deque[T] {
	d := &Deque[T]{}
	d.arr.Store(newRing[T](minCapacity))
	return d
}

// PushBottom adds v at the bottom (owner end). Owner only.
func (d *Deque[T]) PushBottom(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.arr.Load()
	if b-t >= a.capacity()-1 {
		a = a.grow(t, b)
		d.arr.Store(a)
	}
	a.put(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the bottom item, or nil if the deque is
// empty (or the last item was lost to a concurrent thief). Owner only.
func (d *Deque[T]) PopBottom() *T {
	b := d.bottom.Load() - 1
	a := d.arr.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore the canonical empty state.
		d.bottom.Store(t)
		return nil
	}
	v := a.get(b)
	if t == b {
		// Last element: race against thieves on top.
		if !d.top.CompareAndSwap(t, t+1) {
			v = nil // a thief got it first
		}
		d.bottom.Store(t + 1)
	}
	return v
}

// Steal removes and returns the top item. It returns nil if the deque is
// empty or if the steal lost a race with the owner or another thief; in
// the BATCHER accounting both count as a failed steal attempt, so callers
// need not distinguish.
func (d *Deque[T]) Steal() *T {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	a := d.arr.Load()
	v := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	d.steals.Add(1)
	return v
}

// Empty reports whether the deque appears empty. The answer may be stale
// by the time the caller acts on it, which is inherent to work stealing.
func (d *Deque[T]) Empty() bool {
	b := d.bottom.Load()
	t := d.top.Load()
	return t >= b
}

// Len returns the apparent number of items. Like Empty, it is a snapshot.
func (d *Deque[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Bottom returns the owner-end index. Owner only. Push increments it and
// pop decrements it, so the owner can snapshot Bottom before a nested
// computation and later drain exactly the items that computation pushed
// and abandoned (panic containment in the scheduler): items at indices
// >= a snapshot taken by the owner were pushed after the snapshot.
func (d *Deque[T]) Bottom() int64 { return d.bottom.Load() }

// Steals returns the number of successful steals from this deque since
// creation. Used by scheduler metrics.
func (d *Deque[T]) Steals() int64 { return d.steals.Load() }

// Reset empties the deque. Owner only, and only when no thieves are
// active (e.g. between scheduler runs).
func (d *Deque[T]) Reset() {
	t := d.top.Load()
	d.bottom.Store(t)
}
