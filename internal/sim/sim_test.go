package sim

import (
	"reflect"
	"testing"
)

// unitModel: every op's batch work is one unit node; sequential cost 1.
type unitModel struct{}

func (unitModel) BuildBOP(g *Graph, ops []*Op) (int32, int32) {
	return g.ForkJoin(len(ops), 1, KindBatch)
}
func (unitModel) SeqCost(op *Op) int64 { return 1 }

func newOps(n int) []*Op {
	ops := make([]*Op, n)
	for i := range ops {
		ops[i] = &Op{}
	}
	return ops
}

func TestPureCoreDagOneWorker(t *testing.T) {
	g := NewGraph(4)
	g.Chain(100, KindCore)
	res := NewSim(Config{Workers: 1, Seed: 1}, unitModel{}).Run(g)
	if res.Makespan != 100 {
		t.Fatalf("makespan=%d want 100", res.Makespan)
	}
	if res.CoreWork != 100 || res.Batches != 0 {
		t.Fatalf("coreWork=%d batches=%d", res.CoreWork, res.Batches)
	}
}

func TestPureCoreSpeedup(t *testing.T) {
	mk := func() *Graph {
		g := NewGraph(1 << 12)
		g.ForkJoin(1024, 50, KindCore)
		return g
	}
	t1 := NewSim(Config{Workers: 1, Seed: 2}, unitModel{}).Run(mk()).Makespan
	t8 := NewSim(Config{Workers: 8, Seed: 2}, unitModel{}).Run(mk()).Makespan
	if t1 < 1024*50 {
		t.Fatalf("t1=%d below work", t1)
	}
	speedup := float64(t1) / float64(t8)
	if speedup < 4 {
		t.Fatalf("speedup %.2f too low for an embarrassingly parallel dag on 8 workers", speedup)
	}
}

func TestWorkConservation(t *testing.T) {
	g := NewGraph(1 << 10)
	g.ForkJoin(256, 3, KindCore)
	want := g.Work()
	res := NewSim(Config{Workers: 4, Seed: 3}, unitModel{}).Run(g)
	if res.CoreWork != want {
		t.Fatalf("executed %d core work, graph has %d", res.CoreWork, want)
	}
	// Makespan * P >= total work.
	if res.Makespan*4 < want {
		t.Fatalf("makespan %d too small", res.Makespan)
	}
}

func TestSingleDSOp(t *testing.T) {
	g := NewGraph(8)
	ops := newOps(1)
	g.ForkJoinDS(ops, 1, 1)
	res := NewSim(Config{Workers: 2, Seed: 4}, unitModel{}).Run(g)
	if res.Batches != 1 {
		t.Fatalf("batches=%d want 1", res.Batches)
	}
	if res.BatchedOps != 1 {
		t.Fatalf("batchedOps=%d", res.BatchedOps)
	}
	if res.MaxBatchesWaited > 2 {
		t.Fatalf("Lemma 2 violated: waited %d", res.MaxBatchesWaited)
	}
}

func TestManyDSOpsAllComplete(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		g := NewGraph(1 << 12)
		ops := newOps(500)
		g.ForkJoinDS(ops, 2, 2)
		res := NewSim(Config{Workers: p, Seed: 5}, unitModel{}).Run(g)
		if res.BatchedOps != 500 {
			t.Fatalf("P=%d: batchedOps=%d want 500", p, res.BatchedOps)
		}
		if res.MaxBatchOps > p {
			t.Fatalf("P=%d: Invariant 2 violated: batch of %d", p, res.MaxBatchOps)
		}
		if res.MaxBatchesWaited > 2 {
			t.Fatalf("P=%d: Lemma 2 violated: %d", p, res.MaxBatchesWaited)
		}
		if res.Launches != res.Batches {
			t.Fatalf("P=%d: launches=%d batches=%d", p, res.Launches, res.Batches)
		}
	}
}

func TestBatchingAmortizes(t *testing.T) {
	// With many parallel ops and P workers, mean batch size should
	// substantially exceed 1 (the whole point of implicit batching).
	g := NewGraph(1 << 13)
	ops := newOps(2000)
	g.ForkJoinDS(ops, 1, 1)
	res := NewSim(Config{Workers: 8, Seed: 6}, unitModel{}).Run(g)
	if res.MeanBatchOps < 2 {
		t.Fatalf("mean batch size %.2f; batching is not amortizing", res.MeanBatchOps)
	}
}

func TestSerialChainForcesSingletonBatches(t *testing.T) {
	// m = n: every op depends on the previous, so every batch has size 1.
	g := NewGraph(1 << 8)
	ops := newOps(50)
	g.SerialDS(ops, 1)
	res := NewSim(Config{Workers: 8, Seed: 7}, unitModel{}).Run(g)
	if res.Batches != 50 {
		t.Fatalf("batches=%d want 50", res.Batches)
	}
	if res.MaxBatchOps != 1 {
		t.Fatalf("maxBatch=%d want 1", res.MaxBatchOps)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	mk := func() *Graph {
		g := NewGraph(1 << 12)
		g.ForkJoinDS(newOps(300), 2, 2)
		return g
	}
	a := NewSim(Config{Workers: 4, Seed: 42}, unitModel{}).Run(mk())
	b := NewSim(Config{Workers: 4, Seed: 42}, unitModel{}).Run(mk())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	c := NewSim(Config{Workers: 4, Seed: 43}, unitModel{}).Run(mk())
	if a.Makespan == c.Makespan && a.FreeSteals == c.FreeSteals && a.Batches == c.Batches {
		t.Log("different seed produced identical stats (possible but unlikely)")
	}
}

func TestBatchCapAblation(t *testing.T) {
	g := NewGraph(1 << 12)
	ops := newOps(400)
	g.ForkJoinDS(ops, 1, 1)
	res := NewSim(Config{Workers: 8, Seed: 8, BatchCap: 2}, unitModel{}).Run(g)
	if res.MaxBatchOps > 2 {
		t.Fatalf("cap ignored: max batch %d", res.MaxBatchOps)
	}
	if res.BatchedOps != 400 {
		t.Fatalf("batchedOps=%d", res.BatchedOps)
	}
}

func TestLaunchThresholdAblation(t *testing.T) {
	mk := func() *Graph {
		g := NewGraph(1 << 12)
		g.ForkJoinDS(newOps(400), 1, 1)
		return g
	}
	imm := NewSim(Config{Workers: 8, Seed: 9, LaunchThreshold: 1}, unitModel{}).Run(mk())
	acc := NewSim(Config{Workers: 8, Seed: 9, LaunchThreshold: 6}, unitModel{}).Run(mk())
	if acc.BatchedOps != 400 || imm.BatchedOps != 400 {
		t.Fatal("ops lost")
	}
	if acc.MeanBatchOps < imm.MeanBatchOps {
		t.Fatalf("accrual should produce larger batches: %.2f vs %.2f",
			acc.MeanBatchOps, imm.MeanBatchOps)
	}
}

func TestSeqBatchesMode(t *testing.T) {
	// Flat combining mode must still complete everything; its batch work
	// executes as chains so BatchWork equals the sequential costs.
	g := NewGraph(1 << 12)
	ops := newOps(300)
	g.ForkJoinDS(ops, 1, 1)
	res := NewSim(Config{Workers: 8, Seed: 10, SeqBatches: true}, unitModel{}).Run(g)
	if res.BatchedOps != 300 {
		t.Fatalf("batchedOps=%d", res.BatchedOps)
	}
	if res.BatchWork != 300 {
		t.Fatalf("batchWork=%d want 300 (1 per op sequentially)", res.BatchWork)
	}
}

func TestSequentialTime(t *testing.T) {
	g := NewGraph(1 << 8)
	ops := newOps(10)
	g.ForkJoinDS(ops, 2, 3)
	// Core nodes: 10*(2+3) + 9 forks + 9 joins = 68; ops cost 1 each.
	if got := SequentialTime(g, unitModel{}); got != 68+10 {
		t.Fatalf("seq time=%d", got)
	}
}

func TestThroughputHelper(t *testing.T) {
	r := Result{Makespan: 200}
	if got := r.Throughput(100); got != 0.5 {
		t.Fatalf("throughput=%v", got)
	}
	var zero Result
	if zero.Throughput(10) != 0 {
		t.Fatal("zero makespan should yield 0")
	}
}

func TestSimReusePanics(t *testing.T) {
	g := NewGraph(2)
	g.Chain(1, KindCore)
	s := NewSim(Config{Workers: 1, Seed: 1}, unitModel{})
	s.Run(g)
	defer func() {
		if recover() == nil {
			t.Fatal("reuse did not panic")
		}
	}()
	g2 := NewGraph(2)
	g2.Chain(1, KindCore)
	s.Run(g2)
}

func TestMaxStepsGuard(t *testing.T) {
	// A graph whose DS op can never be batched... not constructible; use
	// an absurdly low MaxSteps instead to exercise the guard.
	g := NewGraph(4)
	g.Chain(1000, KindCore)
	defer func() {
		if recover() == nil {
			t.Fatal("MaxSteps guard did not fire")
		}
	}()
	NewSim(Config{Workers: 1, Seed: 1, MaxSteps: 10}, unitModel{}).Run(g)
}

func TestIdlePlusBusyEqualsTotal(t *testing.T) {
	g := NewGraph(1 << 12)
	ops := newOps(300)
	g.ForkJoinDS(ops, 2, 2)
	p := 4
	res := NewSim(Config{Workers: p, Seed: 11}, unitModel{}).Run(g)
	busy := res.CoreWork + res.BatchWork + res.SetupWork
	total := res.Makespan * int64(p)
	// Every worker-step is either busy, a steal attempt / launch /
	// resume (idle), or post-completion slack. Busy + idle <= total.
	if busy+res.IdleSteps > total {
		t.Fatalf("busy %d + idle %d > total %d", busy, res.IdleSteps, total)
	}
	if busy > total {
		t.Fatalf("busy %d > total %d", busy, total)
	}
}

// directModel charges each op its active count (serialization).
type directModel struct{}

func (directModel) OpCost(op *Op, active int) int64 {
	return int64(op.RecordCount()) * int64(active)
}

func TestDirectModeNoBatches(t *testing.T) {
	g := NewGraph(1 << 10)
	ops := newOps(200)
	for _, op := range ops {
		op.Records = 8 // multi-step ops so that operations overlap
	}
	g.ForkJoinDS(ops, 1, 1)
	res := NewSim(Config{Workers: 4, Seed: 30, Direct: directModel{}}, nil).Run(g)
	if res.Batches != 0 || res.Launches != 0 {
		t.Fatalf("direct mode launched %d batches", res.Batches)
	}
	if res.BatchWork != 0 || res.SetupWork != 0 {
		t.Fatalf("direct mode did batch work: %d/%d", res.BatchWork, res.SetupWork)
	}
	// All DS work lands in CoreWork and exceeds the op count (contention).
	if res.CoreWork <= int64(g.Work()) {
		t.Fatalf("core work %d did not include contended op costs (graph work %d)", res.CoreWork, g.Work())
	}
}

func TestDirectModeContentionScalesWithP(t *testing.T) {
	mk := func() *Graph {
		g := NewGraph(1 << 12)
		ops := newOps(1000)
		for _, op := range ops {
			op.Records = 16
		}
		g.ForkJoinDS(ops, 1, 1)
		return g
	}
	t1 := NewSim(Config{Workers: 1, Seed: 31, Direct: directModel{}}, nil).Run(mk()).Makespan
	t8 := NewSim(Config{Workers: 8, Seed: 31, Direct: directModel{}}, nil).Run(mk()).Makespan
	// With serialization-shaped costs, 8 workers cannot get anywhere near
	// 8x; the paper's Ω(n) argument caps useful speedup.
	if sp := float64(t1) / float64(t8); sp > 3 {
		t.Fatalf("contended speedup %.2f implausibly high", sp)
	}
	if t8 < 16_000 {
		t.Fatalf("makespan %d below n", t8)
	}
}

func TestDirectModeCompletesAllOps(t *testing.T) {
	g := NewGraph(1 << 10)
	ops := newOps(300)
	g.ForkJoinDS(ops, 2, 2)
	res := NewSim(Config{Workers: 8, Seed: 32, Direct: directModel{}}, nil).Run(g)
	if res.Makespan == 0 {
		t.Fatal("no progress")
	}
}
