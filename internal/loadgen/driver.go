package loadgen

import (
	"fmt"
	"sync"
	"time"

	"batcher/internal/obs"
	"batcher/internal/rng"
	"batcher/internal/server"
)

// Workload describes one load-generation run.
type Workload struct {
	// Addr is the server address.
	Addr string
	// Conns is the number of concurrent connections. Defaults to 8.
	Conns int
	// Ops is the number of operations per connection. Defaults to 1000.
	Ops int
	// Window is the closed-loop pipelining depth per connection: at most
	// Window requests are outstanding, each response permits the next
	// send. Defaults to 16. Ignored in open-loop mode.
	Window int
	// Pipeline, when positive, overrides Window. It is the same knob
	// under the name the batcherd load subcommand exposes (-pipeline);
	// having both lets callers keep old Window-based configs working.
	Pipeline int
	// RatePerSec, when positive, switches to open-loop mode: requests
	// are paced at this aggregate rate across all connections regardless
	// of response progress, so queueing delay shows up as latency
	// instead of reduced throughput.
	RatePerSec float64
	// DS is the target structure (server.DSCounter, DSSkiplist, ...).
	DS uint8
	// ReadFrac is the fraction of operations that are lookups; the rest
	// are inserts. The counter ignores it (increment-only).
	ReadFrac float64
	// KeySpace bounds generated keys, [0, KeySpace). Defaults to 1<<16.
	KeySpace int64
	// KeyDist selects the key distribution: "uniform" (default) or
	// "zipf". Zipfian keys are the shard-aware skew knob: against a
	// sharded batcherd, hot keys concentrate on the shards that own
	// them, so per-shard batch sizes and queue depths visibly diverge in
	// the stats document — the router's placement made observable.
	KeyDist string
	// ZipfS is the zipf exponent (rank weight 1/rank^s). Defaults to
	// 1.1; higher is more skewed. Ignored unless KeyDist is "zipf".
	ZipfS float64
	// Seed seeds the per-connection RNGs.
	Seed uint64

	// zipf is the shared rank CDF, built once by normalize (per-conn
	// RNGs sample it independently; the table itself is read-only).
	zipf *zipfGen
	// Phases requests server-side phase attribution: every request
	// carries server.OpFlagPhases, and each response's echoed stamp
	// vector feeds the Result's batch-delay and per-phase histograms —
	// client-visible latency decomposed into the scheduler's phases.
	Phases bool
}

// normalize applies defaults and resolves the Pipeline/Window aliasing.
func (w *Workload) normalize() {
	if w.Conns <= 0 {
		w.Conns = 8
	}
	if w.Ops <= 0 {
		w.Ops = 1000
	}
	if w.Pipeline > 0 {
		w.Window = w.Pipeline
	}
	if w.Window <= 0 {
		w.Window = 16
	}
	if w.KeySpace <= 0 {
		w.KeySpace = 1 << 16
	}
	if w.KeyDist == "zipf" && w.zipf == nil {
		s := w.ZipfS
		if s <= 0 {
			s = 1.1
		}
		w.zipf = newZipfGen(w.KeySpace, s)
	}
}

// Result aggregates a run's outcome.
type Result struct {
	// Sent and Responses count requests written and responses received;
	// Errors counts responses carrying FlagErr — rejections and
	// contained batch-panic failures alike (the server's stats document
	// splits them: rejected vs failed).
	Sent, Responses, Errors int64
	// Elapsed is wall-clock time for the whole run.
	Elapsed time.Duration
	// OpsPerSec is Responses / Elapsed.
	OpsPerSec float64
	// Latency percentiles over per-request round-trip times of OK
	// responses, estimated from a log-bucketed histogram (relative
	// error at most 1/32, i.e. ~3.1%, always rounding up). Max is
	// exact. Error responses keep their own histogram (ErrLatency):
	// under admission control an error is a fast shed, and mixing
	// those short round trips into the percentiles would flatter the
	// served tail. The histogram keeps per-sample cost constant and
	// allocation-free regardless of run length — a million-op
	// open-loop run no longer buffers and sorts a million durations.
	P50, P95, P99, P999, Max time.Duration
	// Latency is the merged OK histogram itself, for callers that want
	// more than the canned percentiles (nil until at least one run
	// merged); ErrLatency is its FlagErr counterpart (nil when the run
	// saw no error response) — the brownout witness asserts sheds
	// answer fast on exactly this split.
	Latency    *obs.Histogram
	ErrLatency *obs.Histogram
	// BatchDelay and Phase aggregate the server-echoed stamp vectors
	// when Workload.Phases was set (nil otherwise): BatchDelay is the
	// paper's per-op batch-delay term (pending-array arrival to batch
	// landing) and Phase[i] the i-th lifecycle phase duration, in
	// obs.PhaseNames order.
	BatchDelay *obs.Histogram
	Phase      [obs.NumPhases - 1]*obs.Histogram
}

func (r Result) String() string {
	s := fmt.Sprintf(
		"sent=%d resp=%d err=%d elapsed=%.3fs throughput=%.0f ops/s p50=%s p95=%s p99=%s p999=%s max=%s",
		r.Sent, r.Responses, r.Errors, r.Elapsed.Seconds(), r.OpsPerSec,
		r.P50, r.P95, r.P99, r.P999, r.Max)
	if r.BatchDelay != nil && r.BatchDelay.Count() > 0 {
		s += fmt.Sprintf(" batch_delay_p50=%s batch_delay_p99=%s batch_delay_max=%s",
			time.Duration(r.BatchDelay.Quantile(0.50)),
			time.Duration(r.BatchDelay.Quantile(0.99)),
			time.Duration(r.BatchDelay.Max()))
	}
	return s
}

// PhaseBreakdown renders the mean and p99 of every phase duration, one
// line per phase, or "" when the run did not request phases.
func (r Result) PhaseBreakdown() string {
	if r.BatchDelay == nil {
		return ""
	}
	var s string
	for i, h := range r.Phase {
		if h == nil {
			continue
		}
		s += fmt.Sprintf("phase %-9s mean=%-12s p99=%-12s max=%s\n",
			obs.PhaseNames[i],
			time.Duration(int64(h.Mean())),
			time.Duration(h.Quantile(0.99)),
			time.Duration(h.Max()))
	}
	return s
}

// agg merges per-connection results into one Result. Its report method
// is safe for concurrent use by connection goroutines.
type agg struct {
	mu      sync.Mutex
	res     Result
	hist    *obs.Histogram
	errHist *obs.Histogram
	first   error
	phases  bool
}

func newAgg(phases bool) *agg {
	a := &agg{hist: obs.NewHistogram(), errHist: obs.NewHistogram(), phases: phases}
	if phases {
		a.res.BatchDelay = obs.NewHistogram()
		for i := range a.res.Phase {
			a.res.Phase[i] = obs.NewHistogram()
		}
	}
	return a
}

func (a *agg) report(cs *connStats, err error) {
	a.mu.Lock()
	a.res.Sent += cs.sent
	a.res.Responses += cs.responses
	a.res.Errors += cs.errors
	a.hist.Merge(cs.lats)
	a.errHist.Merge(cs.errLats)
	if a.phases {
		a.res.BatchDelay.Merge(cs.delay)
		for i := range a.res.Phase {
			a.res.Phase[i].Merge(cs.phase[i])
		}
	}
	if err != nil && a.first == nil {
		a.first = err
	}
	a.mu.Unlock()
}

func (a *agg) finish(elapsed time.Duration) (Result, error) {
	res := a.res
	res.Elapsed = elapsed
	if a.first != nil {
		return res, a.first
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Responses) / elapsed.Seconds()
	}
	if a.hist.Count() > 0 {
		res.Latency = a.hist
		pct := func(p float64) time.Duration { return time.Duration(a.hist.Quantile(p)) }
		res.P50, res.P95, res.P99, res.P999 = pct(0.50), pct(0.95), pct(0.99), pct(0.999)
		res.Max = time.Duration(a.hist.Max())
	}
	if a.errHist.Count() > 0 {
		res.ErrLatency = a.errHist
	}
	return res, nil
}

// Run executes the workload and reports aggregate results. Each
// connection runs its own client goroutine(s); latencies are collected
// per connection and merged at the end.
func Run(w Workload) (Result, error) {
	w.normalize()
	a := newAgg(w.Phases)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < w.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runConn(w, i, a.report)
		}(i)
	}
	wg.Wait()
	return a.finish(time.Since(start))
}

// connStats is one connection's contribution to the aggregate Result.
type connStats struct {
	sent, responses, errors int64
	lats                    *obs.Histogram // OK round trips
	errLats                 *obs.Histogram // FlagErr round trips (sheds, rejections, failures)
	delay                   *obs.Histogram
	phase                   [obs.NumPhases - 1]*obs.Histogram
}

func newConnStats(phases bool) *connStats {
	cs := &connStats{lats: obs.NewHistogram(), errLats: obs.NewHistogram()}
	if phases {
		cs.delay = obs.NewHistogram()
		for i := range cs.phase {
			cs.phase[i] = obs.NewHistogram()
		}
	}
	return cs
}

// observe records one response against its send time. A zero t0 means
// the send time is unknown (open-loop map miss); the response still
// counts, it just contributes no latency sample.
func (cs *connStats) observe(resp server.Response, t0 time.Time) {
	if !t0.IsZero() {
		if resp.Err() {
			cs.errLats.Observe(int64(time.Since(t0)))
		} else {
			cs.lats.Observe(int64(time.Since(t0)))
		}
	}
	if resp.Flags&server.FlagPhases != 0 && cs.delay != nil {
		cs.delay.Observe(obs.BatchDelay(resp.Phases))
		durs := obs.PhaseDurations(resp.Phases)
		for i, h := range cs.phase {
			h.Observe(durs[i])
		}
	}
	cs.responses++
	if resp.Err() {
		cs.errors++
	}
}

// connState is one connection's reusable driving state: the client, its
// RNG, and a ring of send timestamps indexed by request id. Client ids
// are sequential, so with a ring at least Window slots wide the ids in
// flight always map to distinct slots — no map, no per-op allocation,
// and the state survives across Driver.Run calls.
type connState struct {
	c     *Client
	r     *rng.Rand
	times []time.Time
	mask  uint64
}

func newConnState(c *Client, w *Workload, idx int) *connState {
	size := 1
	for size < w.Window {
		size <<= 1
	}
	return &connState{
		c:     c,
		r:     rng.New(w.Seed + uint64(idx)*0x9e3779b97f4a7c15 + 1),
		times: make([]time.Time, size),
		mask:  uint64(size - 1),
	}
}

// nextReq generates the next request from the connection's RNG.
func (st *connState) nextReq(w *Workload) server.Request {
	var key int64
	if w.zipf != nil {
		key = w.zipf.sample(st.r)
	} else {
		key = int64(st.r.Uint64() % uint64(w.KeySpace))
	}
	q := server.Request{DS: w.DS, Key: key}
	if w.DS != server.DSCounter && st.r.Float64() < w.ReadFrac {
		q.Op = server.OpLookup
	} else {
		q.Op = server.OpInsert
		q.Val = q.Key * 2
	}
	if w.DS == server.DSCounter {
		q.Op = server.OpInsert
		q.Val = 1
	}
	if w.Phases {
		q.Op |= server.OpFlagPhases
	}
	return q
}

// recvOne receives one response and matches its send time in the ring.
func (st *connState) recvOne(cs *connStats) error {
	resp, err := st.c.Recv()
	if err != nil {
		return err
	}
	cs.observe(resp, st.times[resp.ID&st.mask])
	return nil
}

// closedLoop drives ops requests with up to w.Window in flight, in
// bursts: top the window up, flush once, then drain half a window of
// responses to make room for the next burst. One flush thus covers up
// to Window/2 requests — the client amortizes its syscalls the same way
// the server's reactor coalesces responses, instead of flushing every
// op at steady state. Latency is measured from Send, so it includes the
// sub-burst buffering delay; that is the honest cost of the pipelining
// the run asked for.
func closedLoop(w *Workload, st *connState, ops int, cs *connStats) error {
	burst := w.Window / 2
	if burst < 1 {
		burst = 1
	}
	inFlight, sent := 0, 0
	for sent < ops || inFlight > 0 {
		for inFlight < w.Window && sent < ops {
			id, err := st.c.Send(st.nextReq(w))
			if err != nil {
				return err
			}
			st.times[id&st.mask] = time.Now()
			cs.sent++
			sent++
			inFlight++
		}
		if err := st.c.Flush(); err != nil {
			return err
		}
		drainTo := w.Window - burst
		if sent == ops {
			drainTo = 0 // nothing left to send: drain the tail
		}
		for inFlight > drainTo {
			if err := st.recvOne(cs); err != nil {
				return err
			}
			inFlight--
		}
	}
	return nil
}

// runConn drives one connection. In closed-loop mode a single goroutine
// interleaves burst sends and receives, keeping up to Window requests
// in flight. In open-loop mode a sender paces requests on schedule
// while a separate receiver drains responses. Responses arrive in
// completion order, so send timestamps are matched to responses by
// request id.
func runConn(w Workload, idx int, report func(*connStats, error)) {
	cs := newConnStats(w.Phases)
	fail := func(err error) { report(cs, err) }

	c, err := Dial(w.Addr)
	if err != nil {
		fail(err)
		return
	}
	defer c.Close()
	st := newConnState(c, &w, idx)

	if w.RatePerSec > 0 {
		// Open-loop: pace sends; drain responses concurrently. In-flight
		// count is unbounded here, so send times live in a map keyed by
		// id rather than the fixed ring.
		sendTimes := make(map[uint64]time.Time, w.Window)
		var stMu sync.Mutex
		interval := time.Duration(float64(w.Conns) * float64(time.Second) / w.RatePerSec)
		recvDone := make(chan error, 1)
		remaining := w.Ops
		go func() {
			for i := 0; i < remaining; i++ {
				resp, err := c.Recv()
				if err != nil {
					recvDone <- err
					return
				}
				stMu.Lock()
				t0 := sendTimes[resp.ID]
				delete(sendTimes, resp.ID)
				stMu.Unlock()
				cs.observe(resp, t0)
			}
			recvDone <- nil
		}()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; i < w.Ops; i++ {
			<-tick.C
			q := st.nextReq(&w)
			stMu.Lock()
			id, err := c.Send(q)
			if err == nil {
				sendTimes[id] = time.Now()
				err = c.Flush()
			}
			stMu.Unlock()
			if err != nil {
				fail(err)
				return
			}
			cs.sent++
		}
		if err := <-recvDone; err != nil {
			fail(err)
			return
		}
		report(cs, nil)
		return
	}

	if err := closedLoop(&w, st, w.Ops, cs); err != nil {
		fail(err)
		return
	}
	report(cs, nil)
}

// Driver is a pre-dialed closed-loop workload: NewDriver dials every
// connection up front, then each Run drives a chosen number of
// operations over the established connections. Benchmarks use it so
// that high-fan-in runs (hundreds or thousands of connections) measure
// steady-state per-op cost, not dialing and teardown — dial once,
// ResetTimer, then Run b.N ops. Runs reuse all per-connection state
// (buffers, RNGs, timestamp rings); request ids keep advancing across
// Runs. Not safe for concurrent Runs.
type Driver struct {
	w     Workload
	conns []*connState
}

// NewDriver normalizes the workload (open-loop is not supported:
// RatePerSec is ignored) and dials w.Conns connections.
func NewDriver(w Workload) (*Driver, error) {
	w.normalize()
	w.RatePerSec = 0
	d := &Driver{w: w}
	for i := 0; i < w.Conns; i++ {
		c, err := Dial(w.Addr)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("loadgen: dial conn %d/%d: %w", i, w.Conns, err)
		}
		d.conns = append(d.conns, newConnState(c, &w, i))
	}
	return d, nil
}

// Conns reports how many connections the driver holds.
func (d *Driver) Conns() int { return len(d.conns) }

// Run drives totalOps operations split evenly across the pre-dialed
// connections (the first totalOps mod Conns connections carry one
// extra) and reports the aggregate, like the package-level Run but
// without dial cost. Workload.Ops is ignored; totalOps governs.
func (d *Driver) Run(totalOps int) (Result, error) {
	a := newAgg(d.w.Phases)
	per, extra := totalOps/len(d.conns), totalOps%len(d.conns)
	start := time.Now()
	var wg sync.WaitGroup
	for i, st := range d.conns {
		n := per
		if i < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(st *connState, n int) {
			defer wg.Done()
			cs := newConnStats(d.w.Phases)
			a.report(cs, closedLoop(&d.w, st, n, cs))
		}(st, n)
	}
	wg.Wait()
	return a.finish(time.Since(start))
}

// Close closes every connection.
func (d *Driver) Close() {
	for _, st := range d.conns {
		st.c.Close()
	}
}
