// Package pqueue implements a batched min-priority queue, the class of
// structure the paper's introduction credits with provable bounds for
// parallel shortest paths and minimum spanning tree (Brodal et al.,
// Driscoll et al., Sanders). The implementation is a skew heap:
//
//   - a batch of x inserts first builds a heap of the batch with a
//     parallel pairwise-meld reduction (O(x) work, polylog span), then
//     melds it into the main heap with a single amortized O(lg n) meld;
//   - a batch of delete-mins pops sequentially (each amortized O(lg n));
//     within a batch, inserts linearize before delete-mins, so a
//     delete-min can return an element inserted by the same batch.
//
// The Dijkstra example application (examples/dijkstra) drives this
// structure through the BATCHER scheduler.
package pqueue

import "batcher/internal/sched"

// Operation kinds for the batched priority queue.
const (
	// OpInsert inserts priority Key with payload Val.
	OpInsert sched.OpKind = iota
	// OpDeleteMin removes the minimum; Key receives its priority, Res
	// its payload, Ok reports non-emptiness.
	OpDeleteMin
)

type heapNode struct {
	k, v int64
	l, r *heapNode
}

// meld merges two skew heaps destructively (amortized O(lg n)).
func meld(a, b *heapNode) *heapNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.k < a.k {
		a, b = b, a
	}
	// Skew heap: meld into the right child, then swap children.
	a.l, a.r = meld(a.r, b), a.l
	return a
}

// Seq is the sequential skew-heap priority queue (baseline and oracle).
type Seq struct {
	root *heapNode
	size int
}

// NewSeq returns an empty sequential priority queue.
func NewSeq() *Seq { return &Seq{} }

// Insert adds priority k with payload v.
func (s *Seq) Insert(k, v int64) {
	s.root = meld(s.root, &heapNode{k: k, v: v})
	s.size++
}

// DeleteMin removes and returns the minimum-priority element.
func (s *Seq) DeleteMin() (k, v int64, ok bool) {
	if s.root == nil {
		return 0, 0, false
	}
	n := s.root
	s.root = meld(n.l, n.r)
	s.size--
	return n.k, n.v, true
}

// Min returns the minimum without removing it.
func (s *Seq) Min() (k, v int64, ok bool) {
	if s.root == nil {
		return 0, 0, false
	}
	return s.root.k, s.root.v, true
}

// Len returns the number of elements.
func (s *Seq) Len() int { return s.size }

// Batched is the implicitly batched priority queue.
type Batched struct {
	h Seq
}

var _ sched.Batched = (*Batched)(nil)

// NewBatched returns an empty batched priority queue.
func NewBatched() *Batched { return &Batched{} }

// Insert adds priority k with payload v. Core tasks only.
func (b *Batched) Insert(c *sched.Ctx, k, v int64) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpInsert, Key: k, Val: v}
	c.Batchify(op)
}

// DeleteMin removes and returns the minimum-priority element. Core tasks
// only.
func (b *Batched) DeleteMin(c *sched.Ctx) (k, v int64, ok bool) {
	op := c.Op()
	*op = sched.OpRecord{DS: b, Kind: OpDeleteMin}
	c.Batchify(op)
	return op.Key, op.Res, op.Ok
}

// Len returns the number of elements. Quiescent only.
func (b *Batched) Len() int { return b.h.size }

// RunBatch implements sched.Batched: build a heap of the batch's inserts
// in parallel, meld it in, then serve the delete-mins.
func (b *Batched) RunBatch(c *sched.Ctx, ops []*sched.OpRecord) {
	var inserts, dels []*sched.OpRecord
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			inserts = append(inserts, op)
		case OpDeleteMin:
			dels = append(dels, op)
		default:
			panic("pqueue: unknown op kind")
		}
	}
	if len(inserts) > 0 {
		b.h.root = meld(b.h.root, buildHeap(c, inserts))
		b.h.size += len(inserts)
	}
	// Delete-mins are inherently sequential (each depends on the last),
	// matching the amortized analysis; batches are at most P ops.
	for _, op := range dels {
		op.Key, op.Res, op.Ok = b.h.DeleteMin()
	}
}

// buildHeap melds the batch's inserts pairwise with a parallel
// fork-join reduction.
func buildHeap(c *sched.Ctx, ops []*sched.OpRecord) *heapNode {
	switch len(ops) {
	case 0:
		return nil
	case 1:
		return &heapNode{k: ops[0].Key, v: ops[0].Val}
	}
	mid := len(ops) / 2
	var l, r *heapNode
	c.Fork(
		func(cc *sched.Ctx) { l = buildHeap(cc, ops[:mid]) },
		func(cc *sched.Ctx) { r = buildHeap(cc, ops[mid:]) },
	)
	return meld(l, r)
}
