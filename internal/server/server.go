package server

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"batcher/internal/ds/counter"
	"batcher/internal/ds/hashmap"
	"batcher/internal/ds/skiplist"
	"batcher/internal/ds/tree23"
	"batcher/internal/obs"
	"batcher/internal/sched"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address. Defaults to "127.0.0.1:0" (an
	// ephemeral loopback port; read it back from Server.Addr).
	Addr string
	// Workers is P, the scheduler worker count. Zero means GOMAXPROCS.
	Workers int
	// Seed seeds the scheduler's RNGs and the hashed structures.
	Seed uint64
	// QueueCap bounds the pump's ingress queue (see sched.PumpConfig).
	QueueCap int
	// Window bounds each connection's in-flight requests. The reader
	// stops reading the socket while the window is full, so backpressure
	// propagates to the client as TCP flow control. Defaults to 32.
	Window int
	// ReactorLoops sets the reactor pool size: the number of shared
	// reader loops and writer loops serving all connections (sharded by
	// accept order). Defaults to min(NumCPU, 8); values below 1 are
	// raised to 1. More loops than cores only adds contention.
	ReactorLoops int
	// DrainTimeout bounds how long Shutdown waits for in-flight
	// responses to reach slow clients before forcing connections closed.
	// Defaults to 5s.
	DrainTimeout time.Duration
	// IdleTimeout bounds how long a live connection may go without
	// delivering a complete frame: the reader loops' sweep evicts a
	// half-open peer (or one that sent a torn frame and stalled) and
	// reclaims its window slots instead of holding them until Shutdown.
	// A connection parked on its full window is exempt — it is waiting
	// on the server, not the reverse. Defaults to 2m; negative disables.
	IdleTimeout time.Duration
	// WriteStallTimeout bounds how long a connection's responses may sit
	// unwritable (the peer stopped reading). Past it the connection is
	// torn down — abandoning its responses but releasing its window
	// slots — so dead readers cannot pin in-flight operations. The stall
	// is per connection: a stalled conn parks on its writer loop's
	// blocked list and never delays its loop-mates. Defaults to 30s;
	// negative disables.
	WriteStallTimeout time.Duration
	// SaturationTimeout caps the total time a decoded request may park
	// waiting for space in a saturated pump queue before it is rejected
	// with FlagErr. Defaults to 30s; negative disables the cap (park
	// until shutdown, the pre-containment behavior).
	SaturationTimeout time.Duration
	// WrapDS, if non-nil, wraps each served structure as it is
	// installed; ds is the structure's wire identifier (DSCounter, ...).
	// Returning b unchanged keeps the plain structure. This is the
	// fault-injection seam: chaos tests splice internal/faultinject
	// wrappers into a live server through it.
	WrapDS func(ds uint8, b sched.Batched) sched.Batched
	// TraceRing, when positive, attaches a scheduler event tracer with
	// this many slots per worker ring (see obs.NewTracer; rounded up to
	// a power of two). Zero disables tracing; the /metrics registry is
	// always available.
	TraceRing int
	// SlowK sets the tail flight recorder's reservoir size: the K
	// slowest operations per window are kept with their full phase
	// vectors, dumpable via SlowHandler (/slow). Defaults to 16;
	// negative disables the recorder.
	SlowK int
	// SlowWindow sets the flight recorder's rotation period (the
	// "slowest per window" horizon). Defaults to 10s.
	SlowWindow time.Duration
}

// Server owns a listener, a scheduler runtime, one instance of each
// served data structure, the pump that joins them, and the reactor pool
// (reactor.go) that joins the pump to the sockets. Start it with Start,
// stop it with Shutdown.
type Server struct {
	cfg  Config
	ln   net.Listener
	rt   *sched.Runtime
	pump *sched.Pump

	// The served structures, as installed (WrapDS may have wrapped the
	// concrete types with fault-injection shims).
	ctr  sched.Batched
	skip sched.Batched
	tree sched.Batched
	hmap sched.Batched

	start time.Time
	quit  chan struct{} // closed when Shutdown begins: stop reading
	// edgeStop is closed when every conn has finalized: loops may exit.
	edgeStop chan struct{}
	done     chan struct{}
	stop     sync.Once

	// The reactor pool. A conn accepted as number i belongs to reader
	// loop i%N and writer loop i%N.
	rloops   []*rloop
	wloops   []*wloop
	nextConn uint64 // accept-order counter; accept goroutine only

	connMu sync.Mutex
	conns  map[*conn]struct{}
	connWG sync.WaitGroup // one per live conn; released at finalize
	srvWG  sync.WaitGroup // accept + pump.Serve + reactor loops

	// Saturation retry list: conns parked on a full pump queue, kicked
	// by the next completion (reactor.go satAdd/kickSaturated).
	satMu    sync.Mutex
	satConns []*conn
	satCount atomic.Int64

	curConns  atomic.Int64
	accepted  atomic.Int64 // operations admitted into the pump
	rejected  atomic.Int64 // operations refused (bad op, saturation cap, shutdown)
	completed atomic.Int64 // responses retired by the writer loops
	immediate atomic.Int64 // responses that bypassed the pump (stats, rejections)
	failed    atomic.Int64 // accepted operations completed with Err (contained batch panic)
	decodeErr atomic.Int64 // connections dropped for malformed frames
	readSys   atomic.Int64 // socket read syscalls (reader loops)
	writeSys  atomic.Int64 // socket write syscalls (writer loops)
	evictions atomic.Int64 // conns torn down for deadline/protocol violations

	// Observability (metrics.go): the registry backing /metrics, the
	// batch-size histogram shared with the scheduler, per-structure
	// service-latency histograms indexed by wire ds code, and the
	// optional event tracer.
	reg       *obs.Registry
	batchHist *obs.Histogram
	latHist   [4]*obs.Histogram
	tracer    *obs.Tracer

	// Phase attribution (metrics.go): one histogram per lifecycle phase
	// duration (obs.PhaseNames order), the derived batch-delay histogram
	// (the paper's per-op batch-delay term, observed exactly once per
	// pump-served operation in complete), and the tail flight recorder
	// behind /slow (nil when Config.SlowK < 0).
	phaseHist [obs.NumPhases - 1]*obs.Histogram
	delayHist *obs.Histogram
	flight    *obs.FlightRecorder

	reqPool sync.Pool
}

// request is one in-flight operation: the OpRecord the scheduler
// batches, plus the connection bookkeeping needed to route the response
// back. The record's Aux points back at the request so the pump's
// OnDone callback can recover it.
type request struct {
	op      sched.OpRecord
	c       *conn
	id      uint64
	flags   uint8 // pre-set for rejections and stats; 0 means "derive from op"
	dsIdx   int8  // wire ds code of an accepted op; selects its latency histogram
	echo    bool  // client set OpFlagPhases: echo the stamp vector
	phased  bool  // op completed through the pump, so its stamps are valid
	start   time.Time
	payload []byte
}

// Start builds the runtime and structures, binds the listener, and
// begins serving. It returns once the server is accepting connections.
func Start(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.ReactorLoops <= 0 {
		cfg.ReactorLoops = runtime.NumCPU()
		if cfg.ReactorLoops > 8 {
			cfg.ReactorLoops = 8
		}
	}
	if cfg.ReactorLoops < 1 {
		cfg.ReactorLoops = 1
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	switch {
	case cfg.IdleTimeout == 0:
		cfg.IdleTimeout = 2 * time.Minute
	case cfg.IdleTimeout < 0:
		cfg.IdleTimeout = 0
	}
	switch {
	case cfg.WriteStallTimeout == 0:
		cfg.WriteStallTimeout = 30 * time.Second
	case cfg.WriteStallTimeout < 0:
		cfg.WriteStallTimeout = 0
	}
	switch {
	case cfg.SaturationTimeout == 0:
		cfg.SaturationTimeout = 30 * time.Second
	case cfg.SaturationTimeout < 0:
		cfg.SaturationTimeout = 0
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	wrap := cfg.WrapDS
	if wrap == nil {
		wrap = func(_ uint8, b sched.Batched) sched.Batched { return b }
	}
	rt := sched.New(sched.Config{Workers: cfg.Workers, Seed: cfg.Seed})
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		rt:       rt,
		ctr:      wrap(DSCounter, counter.New(0)),
		skip:     wrap(DSSkiplist, skiplist.NewBatched(cfg.Seed^0x9e3779b97f4a7c15)),
		tree:     wrap(DSTree23, tree23.NewBatched()),
		hmap:     wrap(DSHashmap, hashmap.NewBatched(cfg.Seed^0xd1342543de82ef95)),
		start:    time.Now(),
		quit:     make(chan struct{}),
		edgeStop: make(chan struct{}),
		done:     make(chan struct{}),
		conns:    make(map[*conn]struct{}),
	}
	s.reqPool.New = func() any {
		rq := &request{}
		rq.op.Aux = rq
		return rq
	}
	s.pump = sched.NewPump(rt, sched.PumpConfig{
		QueueCap: cfg.QueueCap,
		OnDone:   s.complete,
	})
	// Metrics/tracing attach to the runtime and must happen before the
	// pump occupies it.
	s.buildMetrics()

	// Build the reactor pool before accepting: conns shard onto the
	// loops at accept time.
	s.rloops = make([]*rloop, cfg.ReactorLoops)
	for i := range s.rloops {
		l := &rloop{
			s:     s,
			id:    i,
			conns: make(map[*conn]struct{}),
			fds:   make(map[int]*conn),
		}
		l.sc.readBuf = make([]byte, readBufSize)
		if err := l.initPoll(); err != nil {
			for _, prev := range s.rloops[:i] {
				prev.poll.close()
			}
			ln.Close()
			return nil, err
		}
		s.rloops[i] = l
	}
	s.wloops = make([]*wloop, cfg.ReactorLoops)
	for i := range s.wloops {
		s.wloops[i] = &wloop{s: s, id: i, notify: make(chan struct{}, 1)}
	}

	s.srvWG.Add(2 + len(s.wloops))
	go func() { defer s.srvWG.Done(); s.pump.Serve() }()
	go func() { defer s.srvWG.Done(); s.accept() }()
	for _, w := range s.wloops {
		go w.run()
	}
	if reactorRunsLoops {
		s.srvWG.Add(len(s.rloops))
		for _, l := range s.rloops {
			go l.run()
		}
	}
	return s, nil
}

// Addr returns the listener's address (useful with the :0 default).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Runtime exposes the underlying scheduler runtime (stats, tests).
func (s *Server) Runtime() *sched.Runtime { return s.rt }

// Shutdown gracefully stops the server: it stops accepting connections
// and requests, drains every in-flight operation — each admitted
// request still executes and its response is written — and then tears
// down the runtime. Idempotent and safe to call concurrently; every
// call blocks until the shutdown completes.
func (s *Server) Shutdown() {
	s.stop.Do(func() {
		s.ln.Close()
		close(s.quit)
		// Wake every loop: reader loops park their conns (sweepQuit) and
		// reject parked submissions; admitted operations keep draining
		// through the pump and the writer loops, which close each conn
		// as its last response leaves.
		s.wakeEdge()
		// Past the drain budget, force the remaining conns down entirely
		// so stalled writers abandon their responses and release their
		// window slots.
		force := time.AfterFunc(s.cfg.DrainTimeout, func() {
			for _, c := range s.connSnapshot() {
				s.evict(c, evictShutdown)
			}
		})
		s.connWG.Wait()
		force.Stop()
		// Every conn has finalized: all completions have passed through
		// the writer loops, so the loops can exit and the pump queue is
		// quiescent; Close lets Serve return.
		close(s.edgeStop)
		s.wakeEdge()
		s.pump.Close()
		s.srvWG.Wait()
		close(s.done)
	})
	<-s.done
}

// connSnapshot copies the live conn set (force-eviction, wakeEdge).
func (s *Server) connSnapshot() []*conn {
	s.connMu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	return conns
}

func (s *Server) accept() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.connMu.Lock()
		select {
		case <-s.quit:
			s.connMu.Unlock()
			nc.Close()
			return
		default:
		}
		i := s.nextConn
		s.nextConn++
		c := &conn{
			s:  s,
			nc: nc,
			fd: -1,
			rl: s.rloops[i%uint64(len(s.rloops))],
			wl: s.wloops[i%uint64(len(s.wloops))],
		}
		c.lastFrame = obs.Now()
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.connMu.Unlock()
		s.curConns.Add(1)
		s.registerConn(c)
	}
}

// target validates a (ds, op) pair and maps it onto a batched structure
// and its operation kind. The wire codes were chosen to coincide with
// the structures' sched.OpKind values, so the mapping is a check plus a
// cast.
func (s *Server) target(ds, op uint8) (sched.Batched, sched.OpKind, bool) {
	switch ds {
	case DSCounter:
		if op == OpInsert {
			return s.ctr, counter.OpIncrement, true
		}
	case DSSkiplist:
		switch op {
		case OpInsert, OpLookup, OpDelete, OpSucc:
			return s.skip, sched.OpKind(op), true
		}
	case DSTree23:
		switch op {
		case OpInsert, OpLookup, OpDelete:
			return s.tree, sched.OpKind(op), true
		}
	case DSHashmap:
		switch op {
		case OpInsert, OpLookup, OpDelete:
			return s.hmap, sched.OpKind(op), true
		}
	}
	return nil, 0, false
}

// complete is the pump's OnDone callback, invoked on a scheduler worker
// after a batch fills in the record. It never blocks: the response is
// enqueued to the conn's writer loop (a bounded append), and if any
// conns are parked on a saturated queue, the space this completion just
// freed triggers their retry. An operation whose batch group panicked
// (op.Err set by the contained-panic path) is answered with FlagErr —
// failure is per operation, not per connection or per process.
func (s *Server) complete(op *sched.OpRecord) {
	rq := op.Aux.(*request)
	if op.Err != nil {
		rq.flags = FlagErr
		s.failed.Add(1)
	}
	s.latHist[rq.dsIdx].Observe(int64(time.Since(rq.start)))

	// PhaseDone closes the stamp vector; the phase histograms and the
	// batch-delay histogram observe exactly one value per pump-served
	// operation here (contained-panic ops included), so the delay
	// histogram's count equals the scheduler's LiveBatchStats op count
	// once the server quiesces. Everything below is allocation-free:
	// fixed arrays, atomic histogram bumps, and a by-value reservoir
	// offer that fast-rejects all but tail ops.
	op.Phases[obs.PhaseDone] = obs.Now()
	rq.phased = true
	durs := obs.PhaseDurations(op.Phases)
	for i, h := range s.phaseHist {
		h.Observe(durs[i])
	}
	s.delayHist.Observe(obs.BatchDelay(op.Phases))
	if s.flight != nil {
		s.flight.Offer(obs.SlowOp{
			TotalNS:    op.Phases[obs.PhaseDone] - op.Phases[obs.PhaseRead],
			Stamps:     op.Phases,
			Durations:  durs,
			BatchDelay: obs.BatchDelay(op.Phases),
			DS:         dsNames[rq.dsIdx],
			Kind:       int32(op.Kind),
			Key:        op.Key,
			BatchSize:  op.BatchSize,
			BatchGroup: op.BatchGroup,
			Err:        op.Err != nil,
		})
	}
	rq.c.wl.enqueue(rq)
	if s.satCount.Load() > 0 {
		s.kickSaturated()
	}
}

// String describes the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("batcherd on %s (P=%d, window=%d, loops=%d)",
		s.ln.Addr(), s.rt.Workers(), s.cfg.Window, len(s.rloops))
}
