// Package server is batcherd's serving layer: it extends implicit
// batching to the wire. Clients speak a length-prefixed binary protocol
// over TCP; acceptor goroutines decode operations and submit them
// through a sched.Pump, whose per-worker pump tasks Batchify each one —
// so concurrent network requests coalesce into batches through exactly
// the pending-array machinery that coalesces concurrent fork-join
// strands. Invariant 1 (one batch in flight) and Invariant 2 (at most P
// operations per batch) hold at the network edge for free.
//
// The ingress path is bounded end to end: each connection has an
// in-flight window (the reader parks — stops reading the socket, which
// is TCP backpressure — when the window is full), and the pump's queue
// caps globally queued operations (a reader whose submission saturates
// the queue parks on its window slot until space frees). Invalid
// operations and shutdown races are rejected with FlagErr.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"batcher/internal/obs"
)

// ErrFrameTooLarge is wrapped by ReadFrame errors caused by a length
// prefix beyond maxFrame — a protocol violation by the peer, as opposed
// to an I/O failure. Readers use errors.Is to count it as a decode
// error in the stats.
var ErrFrameTooLarge = errors.New("frame length exceeds limit")

// Wire format. All integers are little-endian. Every frame is a uint32
// byte length followed by that many payload bytes.
//
//	request  := len:u32 id:u64 ds:u8 op:u8 key:i64 val:i64
//	response := len:u32 id:u64 flags:u8 key:i64 res:i64 payload:bytes
//
// id is an opaque client token echoed in the response; responses may
// arrive in any order (completion order, not submission order). key in
// a response echoes the operation's key except for skip-list Succ,
// where it carries the successor key found. payload is present only
// when FlagPayload is set (the stats document).

// Data-structure identifiers (the ds byte).
const (
	// DSCounter is the batched prefix-sums counter.
	DSCounter uint8 = 0
	// DSSkiplist is the Section 7 batched skip list.
	DSSkiplist uint8 = 1
	// DSTree23 is the join-based batched 2-3 tree.
	DSTree23 uint8 = 2
	// DSHashmap is the bucket-disjoint batched hash map.
	DSHashmap uint8 = 3
	// DSStats addresses the server itself: the response carries the
	// JSON stats document (ops/s, achieved batch sizes, queue depth) as
	// its payload.
	DSStats uint8 = 0xFF
)

// Operation codes (the op byte). They mirror each structure's
// sched.OpKind values; the server validates the (ds, op) pair.
const (
	// OpInsert / OpPut / OpIncrement: the structure's write. For the
	// counter, val is the delta and res the post-increment value; for
	// the maps and sets, key/val are inserted and FlagOK reports "newly
	// inserted".
	OpInsert uint8 = 0
	// OpLookup (Contains/Get): res receives the value, FlagOK presence.
	OpLookup uint8 = 1
	// OpDelete (Delete/Del): FlagOK reports "was present".
	OpDelete uint8 = 2
	// OpSucc (skip list only): smallest key >= key; the response key
	// holds the successor key, res its value, FlagOK existence.
	OpSucc uint8 = 4
)

// OpFlagPhases is a modifier bit on the request op byte: the client
// asks the server to echo the operation's phase-stamp vector back in
// the response (a FlagPhases trailer). The server masks it off before
// validating the (ds, op) pair, so it composes with every operation
// code. Requests without the bit get byte-identical responses to the
// pre-phase protocol — the extension is fully backward compatible.
const OpFlagPhases uint8 = 0x80

// Response flag bits.
const (
	// FlagOK carries the operation's boolean result (presence, "newly
	// inserted", ...). A clear FlagOK with a clear FlagErr is a normal
	// negative result, not a failure.
	FlagOK uint8 = 1 << 0
	// FlagErr marks a failed request: rejected without executing
	// (malformed (ds, op) pair, saturation past the cap, shutdown) or
	// accepted but caught in a batch group whose BOP panicked — in which
	// case the structure may or may not have applied the operation
	// before panicking, and the client must treat its effect as
	// unknown.
	FlagErr uint8 = 1 << 1
	// FlagPayload marks a response carrying payload bytes.
	FlagPayload uint8 = 1 << 2
	// FlagPhases marks a response carrying a phase-stamp trailer: the
	// last phaseTrailer bytes of the body are obs.NumPhases little-endian
	// int64 stamps (obs.Now nanoseconds, PhaseRead first), after the
	// payload if both are present. Set only when the request carried
	// OpFlagPhases and the server had stamps to report.
	FlagPhases uint8 = 1 << 3
)

const (
	reqBody  = 8 + 1 + 1 + 8 + 8 // id, ds, op, key, val
	respBody = 8 + 1 + 8 + 8     // id, flags, key, res

	// phaseTrailer is the byte length of a FlagPhases stamp trailer.
	phaseTrailer = 8 * obs.NumPhases

	// maxFrame bounds any frame body, guarding readers against garbage
	// or hostile length prefixes.
	maxFrame = 1 << 20
)

// Request is one decoded client request.
type Request struct {
	ID  uint64
	DS  uint8
	Op  uint8
	Key int64
	Val int64
}

// Response is one decoded server response.
type Response struct {
	ID      uint64
	Flags   uint8
	Key     int64
	Res     int64
	Payload []byte
	// Phases carries the operation's stamp vector when FlagPhases is
	// set (see obs.PhaseRead..PhaseDone for slot meanings).
	Phases [obs.NumPhases]int64
}

// OK reports the operation's boolean result.
func (r *Response) OK() bool { return r.Flags&FlagOK != 0 }

// Err reports whether the request failed: rejected before the pump, or
// lost to a contained batch panic (see FlagErr for the distinction).
func (r *Response) Err() bool { return r.Flags&FlagErr != 0 }

// AppendRequest appends q's wire encoding to buf and returns the
// extended slice.
func AppendRequest(buf []byte, q Request) []byte {
	var f [4 + reqBody]byte
	binary.LittleEndian.PutUint32(f[0:], reqBody)
	binary.LittleEndian.PutUint64(f[4:], q.ID)
	f[12] = q.DS
	f[13] = q.Op
	binary.LittleEndian.PutUint64(f[14:], uint64(q.Key))
	binary.LittleEndian.PutUint64(f[22:], uint64(q.Val))
	return append(buf, f[:]...)
}

// AppendResponse appends r's wire encoding to buf and returns the
// extended slice. When r.Flags carries FlagPhases, r.Phases is encoded
// as the trailing stamp block.
func AppendResponse(buf []byte, r Response) []byte {
	body := respBody + len(r.Payload)
	if r.Flags&FlagPhases != 0 {
		body += phaseTrailer
	}
	var f [4 + respBody]byte
	binary.LittleEndian.PutUint32(f[0:], uint32(body))
	binary.LittleEndian.PutUint64(f[4:], r.ID)
	f[12] = r.Flags
	binary.LittleEndian.PutUint64(f[13:], uint64(r.Key))
	binary.LittleEndian.PutUint64(f[21:], uint64(r.Res))
	buf = append(buf, f[:]...)
	buf = append(buf, r.Payload...)
	if r.Flags&FlagPhases != 0 {
		var t [phaseTrailer]byte
		for i, s := range r.Phases {
			binary.LittleEndian.PutUint64(t[8*i:], uint64(s))
		}
		buf = append(buf, t[:]...)
	}
	return buf
}

// ReadFrame reads one length-prefixed frame body into buf (growing it
// as needed) and returns the body slice, which aliases buf's storage.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: %w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// SplitFrame splits one length-prefixed frame off the front of b
// without copying: body aliases b, rest is the unconsumed tail. ok is
// false when b does not yet hold a complete frame (more bytes must
// arrive); err is non-nil for a hostile length prefix (wraps
// ErrFrameTooLarge). It is the non-blocking analogue of ReadFrame, used
// by the reactor's reader loops to carve many frames out of one socket
// read.
func SplitFrame(b []byte) (body, rest []byte, ok bool, err error) {
	if len(b) < 4 {
		return nil, b, false, nil
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxFrame {
		return nil, b, false, fmt.Errorf("server: %w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	if len(b) < 4+int(n) {
		return nil, b, false, nil
	}
	return b[4 : 4+n], b[4+n:], true, nil
}

// DecodeRequest decodes a request frame body.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) != reqBody {
		return Request{}, fmt.Errorf("server: request body %d bytes, want %d", len(b), reqBody)
	}
	return Request{
		ID:  binary.LittleEndian.Uint64(b[0:]),
		DS:  b[8],
		Op:  b[9],
		Key: int64(binary.LittleEndian.Uint64(b[10:])),
		Val: int64(binary.LittleEndian.Uint64(b[18:])),
	}, nil
}

// DecodeResponse decodes a response frame body. The returned Payload
// aliases b; copy it to retain it past the next read into b's buffer.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < respBody {
		return Response{}, fmt.Errorf("server: response body %d bytes, want >= %d", len(b), respBody)
	}
	r := Response{
		ID:    binary.LittleEndian.Uint64(b[0:]),
		Flags: b[8],
		Key:   int64(binary.LittleEndian.Uint64(b[9:])),
		Res:   int64(binary.LittleEndian.Uint64(b[17:])),
	}
	if r.Flags&FlagPhases != 0 {
		// The stamp trailer sits at the very end, after any payload.
		if len(b) < respBody+phaseTrailer {
			return Response{}, fmt.Errorf("server: response body %d bytes, too short for phase trailer", len(b))
		}
		t := b[len(b)-phaseTrailer:]
		for i := range r.Phases {
			r.Phases[i] = int64(binary.LittleEndian.Uint64(t[8*i:]))
		}
		b = b[:len(b)-phaseTrailer]
	}
	if r.Flags&FlagPayload != 0 {
		r.Payload = b[respBody:]
	}
	return r, nil
}
