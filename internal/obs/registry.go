package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a set of named metrics rendered in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges are
// function-backed — the producer keeps its own atomics and the registry
// reads them at scrape time, so registration adds no cost to any hot
// path. Histograms are registered directly and rendered with cumulative
// le buckets.
//
// Several metrics may share one family name with different label sets
// (e.g. a latency histogram per data structure); the renderer groups
// them so each family's HELP/TYPE header appears exactly once.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
}

// Label is one name="value" pair. Labels render in the order given.
type Label struct {
	Name, Value string
}

type entry struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []Label
	intFn  func() int64   // counter
	gaugeF func() float64 // gauge
	hist   *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be safe to call from any goroutine (an atomic load).
func (r *Registry) CounterFunc(name, help string, labels []Label, fn func() int64) {
	r.add(&entry{name: name, help: help, typ: "counter", labels: labels, intFn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels []Label, fn func() float64) {
	r.add(&entry{name: name, help: help, typ: "gauge", labels: labels, gaugeF: fn})
}

// Histogram creates, registers, and returns a histogram. The caller
// records into it directly (Observe is lock-free); scrapes render its
// cumulative buckets, sum, and count.
func (r *Registry) Histogram(name, help string, labels []Label) *Histogram {
	h := NewHistogram()
	r.RegisterHistogram(name, help, labels, h)
	return h
}

// RegisterHistogram registers an existing histogram (e.g. one also
// handed to the scheduler as its batch-size sink).
func (r *Registry) RegisterHistogram(name, help string, labels []Label, h *Histogram) {
	r.add(&entry{name: name, help: help, typ: "histogram", labels: labels, hist: h})
}

func (r *Registry) add(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, old := range r.entries {
		if old.name == e.name && labelsEqual(old.labels, e.labels) {
			panic("obs: duplicate metric registration: " + e.name)
		}
	}
	r.entries = append(r.entries, e)
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteText renders every registered metric in Prometheus text format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	// Group by family name, preserving first-appearance order, so each
	// family's samples are contiguous under one HELP/TYPE header (the
	// format requires it).
	order := make([]string, 0, len(entries))
	fams := make(map[string][]*entry)
	for _, e := range entries {
		if _, seen := fams[e.name]; !seen {
			order = append(order, e.name)
		}
		fams[e.name] = append(fams[e.name], e)
	}

	bw := bufio.NewWriter(w)
	for _, name := range order {
		fam := fams[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(fam[0].help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, fam[0].typ)
		for _, e := range fam {
			switch e.typ {
			case "counter":
				fmt.Fprintf(bw, "%s%s %d\n", e.name, labelString(e.labels, nil), e.intFn())
			case "gauge":
				fmt.Fprintf(bw, "%s%s %s\n", e.name, labelString(e.labels, nil),
					strconv.FormatFloat(e.gaugeF(), 'g', -1, 64))
			case "histogram":
				// Read count before the buckets so the +Inf bucket can
				// never be smaller than the bucket counts rendered with it
				// (the histogram is live; Cumulative re-reads the counts).
				buckets := e.hist.Cumulative()
				var highest int64
				for _, b := range buckets {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", e.name,
						labelString(e.labels, &Label{"le", strconv.FormatInt(b.Upper, 10)}), b.Count)
					highest = b.Count
				}
				count := e.hist.Count()
				if count < highest {
					count = highest
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", e.name,
					labelString(e.labels, &Label{"le", "+Inf"}), count)
				fmt.Fprintf(bw, "%s_sum%s %d\n", e.name, labelString(e.labels, nil), e.hist.Sum())
				fmt.Fprintf(bw, "%s_count%s %d\n", e.name, labelString(e.labels, nil), count)
			}
		}
	}
	return bw.Flush()
}

// labelString renders {a="b",c="d"}, appending extra (the le label) if
// non-nil; it returns "" for no labels.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extra.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler returns an http.Handler serving the registry in text format —
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Names returns the registered family names in exposition order (tests
// and the stats CLI use it).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	seen := make(map[string]bool)
	for _, e := range r.entries {
		if !seen[e.name] {
			seen[e.name] = true
			names = append(names, e.name)
		}
	}
	sort.Strings(names)
	return names
}
