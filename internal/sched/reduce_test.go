package sched

import (
	"testing"
	"testing/quick"
)

func TestSumInt64(t *testing.T) {
	for _, p := range []int{1, 4, 8} {
		rt := New(Config{Workers: p, Seed: 501})
		var got int64
		rt.Run(func(c *Ctx) {
			got = SumInt64(c, 0, 10_000, 16, func(_ *Ctx, i int) int64 { return int64(i) })
		})
		if got != 10_000*9_999/2 {
			t.Fatalf("P=%d: sum = %d", p, got)
		}
	}
}

func TestSumEmptyRange(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 502})
	rt.Run(func(c *Ctx) {
		if got := SumInt64(c, 5, 5, 4, func(_ *Ctx, i int) int64 { return 1 }); got != 0 {
			t.Errorf("empty sum = %d", got)
		}
	})
}

func TestMaxInt64(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 503})
	xs := []int64{3, 9, 1, 7, 9, 2, 8}
	var got int64
	rt.Run(func(c *Ctx) {
		got = MaxInt64(c, 0, len(xs), 2, -1<<62, func(_ *Ctx, i int) int64 { return xs[i] })
	})
	if got != 9 {
		t.Fatalf("max = %d", got)
	}
}

func TestReduceCustomType(t *testing.T) {
	// Merge-count reduction over a custom struct: counts evens and odds.
	type counts struct{ even, odd int }
	rt := New(Config{Workers: 4, Seed: 504})
	var got counts
	rt.Run(func(c *Ctx) {
		got = Reduce(c, 0, 999, 8, counts{},
			func(_ *Ctx, i int) counts {
				if i%2 == 0 {
					return counts{even: 1}
				}
				return counts{odd: 1}
			},
			func(a, b counts) counts { return counts{a.even + b.even, a.odd + b.odd} })
	})
	if got.even != 500 || got.odd != 499 {
		t.Fatalf("got %+v", got)
	}
}

func TestReduceNonCommutativeAssociative(t *testing.T) {
	// String-like concatenation via int64 digit-append is associative but
	// not commutative; the reduction must preserve index order.
	rt := New(Config{Workers: 8, Seed: 505})
	var got []int
	rt.Run(func(c *Ctx) {
		got = Reduce(c, 0, 200, 3, nil,
			func(_ *Ctx, i int) []int { return []int{i} },
			func(a, b []int) []int { return append(append([]int(nil), a...), b...) })
	})
	if len(got) != 200 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestQuickReduceMatchesSequential(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 506})
	f := func(xs []int32, grain8 uint8) bool {
		grain := int(grain8%16) + 1
		var want int64
		for _, x := range xs {
			want += int64(x)
		}
		var got int64
		rt.Run(func(c *Ctx) {
			got = SumInt64(c, 0, len(xs), grain, func(_ *Ctx, i int) int64 { return int64(xs[i]) })
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceInsideBOP(t *testing.T) {
	// Batched structures are the intended consumer: a BOP that reduces
	// over its operations.
	rt := New(Config{Workers: 4, Seed: 507})
	ds := &reduceDS{}
	rt.Run(func(c *Ctx) {
		c.For(0, 300, 1, func(cc *Ctx, i int) {
			cc.Batchify(&OpRecord{DS: ds, Val: int64(i)})
		})
	})
	if ds.total != 300*299/2 {
		t.Fatalf("total = %d", ds.total)
	}
}

type reduceDS struct{ total int64 }

func (d *reduceDS) RunBatch(ctx *Ctx, ops []*OpRecord) {
	d.total += SumInt64(ctx, 0, len(ops), 2, func(_ *Ctx, i int) int64 { return ops[i].Val })
}
