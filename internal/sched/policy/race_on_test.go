//go:build race

package policy_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
