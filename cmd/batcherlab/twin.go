package main

// batcherlab twin — calibrate and validate the analytical twin
// (internal/sim.Model, DESIGN.md §15) against a real server.
//
// Live mode starts an in-process batcherd whose hashmap batch cost is
// inflated to a known constant (as the brownout tests do), so shard
// capacity is fixed and small, then sweeps open-loop load fractions of
// that capacity with phase attribution on. Each point contributes a
// sim.CalPoint: the achieved arrival rate, the mean batch size over the
// run, the mean exec-phase (batch service) duration, and the measured
// client p999. FitModel turns the sweep into a Model; the table prints
// predicted-vs-measured p999 per point.
//
// -validate gates on the mean absolute relative error (default 25%) —
// the twin is only fit to run admission control if its p999 curve
// tracks a real sweep. -record writes the sweep as JSON so CI can
// -replay the same points hermetically (fit + gate, no server, no
// timing sensitivity on shared runners).

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"batcher/internal/loadgen"
	"batcher/internal/obs"
	"batcher/internal/sched"
	"batcher/internal/server"
	"batcher/internal/sim"
)

// twinSweep is the -record/-replay file format: everything FitModel
// needs to reproduce the fit without a server.
type twinSweep struct {
	Workers     int            `json:"workers"`
	BatchCostNS int64          `json:"batch_cost_ns"`
	Points      []sim.CalPoint `json:"points"`
}

// twinSlowDS inflates a structure's batch cost by a fixed sleep,
// giving the swept server a known, low capacity (the same trick the
// brownout tests use; see internal/server/brownout_test.go).
type twinSlowDS struct {
	inner sched.Batched
	delay time.Duration
}

func (s *twinSlowDS) RunBatch(ctx *sched.Ctx, ops []*sched.OpRecord) {
	time.Sleep(s.delay)
	s.inner.RunBatch(ctx, ops)
}

func twinCmd(args []string) {
	fs := flag.NewFlagSet("twin", flag.ExitOnError)
	validate := fs.Bool("validate", false, "gate: exit nonzero unless mean |predicted-measured|/measured p999 error is within -tol")
	tol := fs.Float64("tol", 0.25, "validation tolerance on the mean absolute relative p999 error")
	record := fs.String("record", "", "write the measured sweep to this JSON file")
	replay := fs.String("replay", "", "fit and validate against a recorded sweep instead of running a server")
	quickF := fs.Bool("quick", false, "CI-sized live sweep: fewer points, shorter runs")
	workersF := fs.Int("workers", 2, "scheduler workers (P) for the live sweep server")
	fs.Parse(args)

	var sweep twinSweep
	if *replay != "" {
		raw, err := os.ReadFile(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "twin:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &sweep); err != nil {
			fmt.Fprintf(os.Stderr, "twin: %s: %v\n", *replay, err)
			os.Exit(1)
		}
		if sweep.Workers <= 0 || len(sweep.Points) < 2 {
			fmt.Fprintf(os.Stderr, "twin: %s: need workers > 0 and at least 2 points\n", *replay)
			os.Exit(1)
		}
		fmt.Printf("replaying %d-point sweep from %s (P=%d, batch cost %v)\n",
			len(sweep.Points), *replay, sweep.Workers, time.Duration(sweep.BatchCostNS))
	} else {
		sweep = twinLiveSweep(*workersF, *quickF)
	}

	if *record != "" {
		raw, err := json.MarshalIndent(sweep, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(*record, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "twin:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded sweep to %s\n", *record)
	}

	model, err := sim.FitModel(sweep.Workers, sweep.Points)
	if err != nil {
		fmt.Fprintln(os.Stderr, "twin: fit:", err)
		os.Exit(1)
	}
	fmt.Printf("fitted: %s\n", model)
	fmt.Printf("modeled capacity: %.0f ops/s; max admissible rate at 50ms SLO: %.0f ops/s\n",
		model.CapacityOpsPerSec(), model.MaxAdmissibleRate(50e6, 0))

	fmt.Printf("\n%12s %10s %14s %14s %8s\n",
		"rate(ops/s)", "batch", "measured_p999", "predicted_p999", "err")
	var sumErr float64
	for _, p := range sweep.Points {
		pred := model.PredictP999NS(p.RatePerSec, 0)
		relErr := math.Abs(pred-p.MeasuredP999NS) / p.MeasuredP999NS
		sumErr += relErr
		fmt.Printf("%12.0f %10.2f %14s %14s %7.1f%%\n",
			p.RatePerSec, p.MeanBatch,
			time.Duration(p.MeasuredP999NS), time.Duration(pred), 100*relErr)
	}
	meanErr := sumErr / float64(len(sweep.Points))
	fmt.Printf("\nmean absolute p999 error: %.1f%%\n", 100*meanErr)

	if *validate {
		if meanErr > *tol {
			fmt.Printf("FAIL: mean error %.1f%% exceeds tolerance %.0f%%\n", 100*meanErr, 100**tol)
			os.Exit(1)
		}
		fmt.Printf("PASS: within %.0f%% tolerance\n", 100**tol)
	}
}

// twinLiveSweep starts the slow-hashmap server and measures one
// CalPoint per load fraction of its known capacity.
func twinLiveSweep(workers int, quick bool) twinSweep {
	// Batch cost picks the capacity, and capacity picks the sample
	// count: a p999 read off a few hundred ops is just that run's max —
	// one scheduler hiccup — so points must carry thousands of ops to
	// put the 99.9th percentile below the straggler floor.
	const batchCost = 500 * time.Microsecond
	fractions := []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9}
	pointDur := 2500 * time.Millisecond
	if quick {
		fractions = []float64{0.3, 0.6, 0.85}
		pointDur = 1 * time.Second
	}

	s, err := server.Start(server.Config{
		Workers:  workers,
		Shards:   1,
		Seed:     20140623,
		QueueCap: 256,
		Window:   256,
		WrapDS: func(_ int, ds uint8, inner sched.Batched) sched.Batched {
			if ds == server.DSHashmap {
				return &twinSlowDS{inner: inner, delay: batchCost}
			}
			return inner
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "twin: server:", err)
		os.Exit(1)
	}
	defer s.Shutdown()

	// Probe real capacity closed-loop: clients that wait for responses
	// self-pace to the service rate, so the achieved throughput IS the
	// ceiling. Sweeping fractions of the nominal workers/batchCost
	// figure instead would land the top points past the real knee
	// (batches under P ops serve slower than the nominal math), where
	// queues grow for the whole run and the measured p999 reflects run
	// length, not steady state — unusable calibration points.
	probe, err := loadgen.Run(loadgen.Workload{
		Addr:  s.Addr().String(),
		Conns: 8, Ops: 400, Window: 8,
		DS: server.DSHashmap, ReadFrac: 0.5, KeySpace: 1 << 14, Seed: 7,
	})
	if err != nil || probe.Errors != 0 {
		fmt.Fprintf(os.Stderr, "twin: capacity probe: %v (%d errors)\n", err, probe.Errors)
		os.Exit(1)
	}
	capacity := probe.OpsPerSec
	fmt.Printf("live sweep: P=%d, batch cost %v, measured capacity %.0f ops/s, %d points\n",
		workers, batchCost, capacity, len(fractions))

	sweep := twinSweep{Workers: workers, BatchCostNS: batchCost.Nanoseconds()}
	st0 := s.Snapshot()
	lastBatches, lastOps := st0.Batches, st0.BatchedOps
	for _, f := range fractions {
		rate := f * capacity
		total := int(rate * pointDur.Seconds())
		conns := 8
		if total < conns {
			total = conns
		}
		res, err := loadgen.Run(loadgen.Workload{
			Addr:  s.Addr().String(),
			Conns: conns, Ops: total / conns, RatePerSec: rate,
			DS: server.DSHashmap, ReadFrac: 0.5, KeySpace: 1 << 14,
			Seed: uint64(1 + total), Phases: true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "twin: sweep at %.0f ops/s: %v\n", rate, err)
			os.Exit(1)
		}
		if res.Errors != 0 {
			fmt.Fprintf(os.Stderr, "twin: sweep at %.0f ops/s: %d errors under capacity\n", rate, res.Errors)
			os.Exit(1)
		}
		st := s.Snapshot()
		db, dops := st.Batches-lastBatches, st.BatchedOps-lastOps
		lastBatches, lastOps = st.Batches, st.BatchedOps
		if db == 0 {
			continue
		}
		exec := res.Phase[obs.PhaseLaunch]
		sweep.Points = append(sweep.Points, sim.CalPoint{
			RatePerSec:     float64(res.Sent) / res.Elapsed.Seconds(),
			MeanBatch:      float64(dops) / float64(db),
			MeanServiceNS:  exec.Mean(),
			MeasuredP999NS: float64(res.P999.Nanoseconds()),
		})
	}
	if len(sweep.Points) < 2 {
		fmt.Fprintln(os.Stderr, "twin: sweep produced too few points")
		os.Exit(1)
	}
	return sweep
}
