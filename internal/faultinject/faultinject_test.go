package faultinject

import (
	"errors"
	"testing"

	"batcher/internal/sched"
)

// sum is a minimal healthy inner structure: a running total, so tests
// can check exactly which operations reached it.
type sum struct{ total int64 }

func (s *sum) RunBatch(_ *sched.Ctx, ops []*sched.OpRecord) {
	for _, op := range ops {
		s.total += op.Val
		op.Res = s.total
		op.Ok = true
	}
}

// TestPanickerContained drives the Panicker through a contained runtime
// one operation at a time (each its own batch group, so counts are
// exact): poison operations come back with a BatchPanicError and never
// touch the inner structure; clean ones complete normally even though
// they interleave with the panics on the same structure.
func TestPanickerContained(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 1})
	rt.ContainBatchPanics(true)
	inner := &sum{}
	p := &Panicker{Inner: inner, Poison: 666}

	const n = 50
	var poisoned, clean int
	rt.Run(func(c *sched.Ctx) {
		for i := 0; i < n; i++ {
			op := &sched.OpRecord{DS: p, Val: 1}
			if i%5 == 0 {
				op.Key = 666
			}
			c.Batchify(op)
			if i%5 == 0 {
				var bp *sched.BatchPanicError
				if !errors.As(op.Err, &bp) || bp.Recovered != PanicValue {
					t.Fatalf("poison op %d: Err = %v, want BatchPanicError(%q)", i, op.Err, PanicValue)
				}
				poisoned++
			} else {
				if op.Err != nil || !op.Ok {
					t.Fatalf("clean op %d: err=%v ok=%v", i, op.Err, op.Ok)
				}
				clean++
			}
		}
	})
	if poisoned != n/5 || clean != n-n/5 {
		t.Fatalf("poisoned=%d clean=%d, want %d/%d", poisoned, clean, n/5, n-n/5)
	}
	if inner.total != int64(n-n/5) {
		t.Fatalf("inner total = %d, want %d (poison batches must not touch the inner structure)", inner.total, n-n/5)
	}
	if got := p.Panics.Load(); got != int64(n/5) {
		t.Fatalf("Panics = %d, want %d", got, n/5)
	}
}

// TestFlakyEveryN pins the Flaky schedule: with EveryN=3, calls 3, 6,
// and 9 panic and the rest delegate.
func TestFlakyEveryN(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 2, Seed: 2})
	rt.ContainBatchPanics(true)
	inner := &sum{}
	f := &Flaky{Inner: inner, EveryN: 3}

	var failed int
	rt.Run(func(c *sched.Ctx) {
		for i := 0; i < 9; i++ {
			op := &sched.OpRecord{DS: f, Val: 1}
			c.Batchify(op)
			if op.Err != nil {
				failed++
			}
		}
	})
	if failed != 3 {
		t.Fatalf("failed = %d, want 3", failed)
	}
	if inner.total != 6 {
		t.Fatalf("inner total = %d, want 6", inner.total)
	}
	if got := f.Panics.Load(); got != 3 {
		t.Fatalf("Panics = %d, want 3", got)
	}
}
