package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace_event export: a Snapshot rendered as the JSON object
// format chrome://tracing and Perfetto load directly. One track (tid)
// per ring; batch executions appear as complete ("X") spans with their
// size in args, parks as begin/end ("B"/"E") spans, and everything else
// as instant ("i") events. Timestamps are microseconds, as the format
// requires.
//
// The export path allocates freely — it runs after (or beside) the
// traced workload, never inside it.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders events (as returned by Tracer.Snapshot) to w
// in Chrome trace_event JSON object format.
func WriteChromeTrace(w io.Writer, events []Event) error {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: make([]chromeEvent, 0, len(events))}
	// Parks emit B/E pairs; a wake whose park was overwritten by ring
	// wraparound must not emit an unmatched E (it would corrupt the
	// track's span stack), so track open parks per ring.
	openPark := make(map[int32]bool)
	for _, e := range events {
		ce := chromeEvent{Name: e.Kind.String(), TS: us(e.TS), TID: e.Ring}
		switch e.Kind {
		case EvBatchLand:
			// Render the batch as a span covering its execution.
			ce.Name = "batch"
			ce.Ph = "X"
			ce.TS = us(e.TS - e.B)
			ce.Dur = us(e.B)
			ce.Args = map[string]any{"size": e.A, "dur_ns": e.B}
		case EvPark:
			ce.Name = "parked"
			ce.Ph = "B"
			openPark[e.Ring] = true
		case EvWake:
			if !openPark[e.Ring] {
				continue
			}
			openPark[e.Ring] = false
			ce.Name = "parked"
			ce.Ph = "E"
		case EvSteal:
			ce.Ph = "i"
			ce.S = "t"
			which := "core"
			if e.B != 0 {
				which = "batch"
			}
			ce.Args = map[string]any{"victim": e.A, "deque": which}
		case EvPumpAdmit:
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"queue_depth": e.A}
		case EvPumpReject:
			ce.Ph = "i"
			ce.S = "t"
			why := "saturated"
			if e.A == 2 {
				why = "closed"
			}
			ce.Args = map[string]any{"reason": why}
		case EvPanicContained:
			ce.Ph = "i"
			ce.S = "g" // global-scope instant: draw it loud
			ce.Args = map[string]any{"group": e.A}
		default: // EvBatchLaunch and any future instants
			ce.Ph = "i"
			ce.S = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	// Close any park left open at snapshot time so spans balance.
	var last float64
	if n := len(events); n > 0 {
		last = us(events[n-1].TS)
	}
	for tid, open := range openPark {
		if open {
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Name: "parked", Ph: "E", TS: last, TID: tid})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
