package skiplist

import (
	"testing"
	"testing/quick"

	"batcher/internal/sched"
)

func TestSuccSeq(t *testing.T) {
	l := NewList(61)
	for i := int64(0); i < 100; i += 10 {
		l.Insert(i, i*2)
	}
	cases := []struct {
		q      int64
		wantK  int64
		wantOK bool
	}{
		{-5, 0, true},
		{0, 0, true},
		{1, 10, true},
		{10, 10, true},
		{89, 90, true},
		{90, 90, true},
		{91, 0, false},
		{1000, 0, false},
	}
	for _, tc := range cases {
		k, v, ok := l.Succ(tc.q)
		if ok != tc.wantOK || (ok && (k != tc.wantK || v != tc.wantK*2)) {
			t.Fatalf("Succ(%d) = %d,%d,%v want %d,%v", tc.q, k, v, ok, tc.wantK, tc.wantOK)
		}
	}
}

func TestSuccEmpty(t *testing.T) {
	l := NewList(62)
	if _, _, ok := l.Succ(0); ok {
		t.Fatal("Succ on empty list")
	}
}

func TestQuickSuccAgainstScan(t *testing.T) {
	f := func(keys []int16, q16 int16) bool {
		l := NewList(63)
		q := int64(q16)
		best := int64(1<<62 - 1)
		found := false
		for _, k16 := range keys {
			k := int64(k16)
			l.Insert(k, k)
			if k >= q && k < best {
				best, found = k, true
			}
		}
		k, _, ok := l.Succ(q)
		if ok != found {
			return false
		}
		return !ok || k == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedSucc(t *testing.T) {
	b := NewBatched(64)
	rt := sched.New(sched.Config{Workers: 4, Seed: 65})
	rt.Run(func(c *sched.Ctx) {
		c.For(0, 1000, 1, func(cc *sched.Ctx, i int) {
			b.Insert(cc, int64(i*3), int64(i)) // multiples of 3
		})
	})
	rt.Run(func(c *sched.Ctx) {
		c.For(0, 500, 1, func(cc *sched.Ctx, i int) {
			q := int64(i * 6) // even multiples: exact hits
			k, _, ok := b.Succ(cc, q)
			if !ok || k != q {
				t.Errorf("Succ(%d) = %d,%v", q, k, ok)
			}
			k, _, ok = b.Succ(cc, q+1) // between keys
			if !ok || k != q+3 {
				t.Errorf("Succ(%d) = %d,%v want %d", q+1, k, ok, q+3)
			}
		})
	})
	rt.Run(func(c *sched.Ctx) {
		if _, _, ok := b.Succ(c, 3*1000); ok {
			t.Error("Succ past the maximum returned ok")
		}
	})
}
