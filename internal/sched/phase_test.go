package sched

import (
	"testing"

	"batcher/internal/obs"
)

// TestBatchifyZeroAllocsPhased is the phase-stamping twin of
// TestBatchifyRoundTripZeroAllocs: with SetPhaseStamps(true) a Batchify
// round trip must still allocate nothing — stamping is one clock read
// and one array store per boundary into the record's fixed vector.
func TestBatchifyZeroAllocsPhased(t *testing.T) {
	skipIfRace(t)
	h := &allocHarness{
		jobs:    make(chan func(*Ctx)),
		jobDone: make(chan struct{}),
		runDone: make(chan struct{}),
	}
	rt := New(Config{Workers: 1, Seed: 811})
	rt.SetPhaseStamps(true)
	go func() {
		defer close(h.runDone)
		rt.Run(func(c *Ctx) {
			for f := range h.jobs {
				f(c)
				h.jobDone <- struct{}{}
			}
		})
	}()
	t.Cleanup(func() {
		close(h.jobs)
		<-h.runDone
	})
	ds := &allocFreeDS{}
	var got float64
	h.do(func(c *Ctx) {
		op := c.Op()
		*op = OpRecord{DS: ds, Val: 1}
		c.Batchify(op)
		got = testing.AllocsPerRun(200, func() {
			op := c.Op()
			*op = OpRecord{DS: ds, Val: 1}
			c.Batchify(op)
		})
	})
	if got != 0 {
		t.Fatalf("phased Batchify+LaunchBatch allocates %v objects/op, want 0", got)
	}
	if ds.total == 0 {
		t.Fatal("batched operations did not run")
	}
}

// TestPhaseStampsWritten checks the scheduler-owned stamp slots: every
// Batchify'd record comes back with Pending <= Launch <= Land all
// positive, and the batch bookkeeping (size, group) filled in.
func TestPhaseStampsWritten(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 813})
	rt.SetPhaseStamps(true)
	ds := &allocFreeDS{}
	const n = 256
	recs := make([]OpRecord, n)
	rt.Run(func(c *Ctx) {
		c.For(0, n, 1, func(cc *Ctx, i int) {
			op := &recs[i]
			op.DS = ds
			op.Val = 1
			cc.Batchify(op)
		})
	})
	for i := range recs {
		ph := recs[i].Phases
		p, l, d := ph[obs.PhasePending], ph[obs.PhaseLaunch], ph[obs.PhaseLand]
		if p <= 0 || l <= 0 || d <= 0 {
			t.Fatalf("op %d: missing stamps pending=%d launch=%d land=%d", i, p, l, d)
		}
		if p > l || l > d {
			t.Fatalf("op %d: stamps out of order pending=%d launch=%d land=%d", i, p, l, d)
		}
		if recs[i].BatchSize < 1 {
			t.Fatalf("op %d: batch size %d", i, recs[i].BatchSize)
		}
		if recs[i].BatchGroup < 0 {
			t.Fatalf("op %d: batch group %d", i, recs[i].BatchGroup)
		}
	}
}

// TestPhaseStampsOffLeavesRecordsAlone pins the disabled path: without
// SetPhaseStamps the scheduler must not touch the stamp slots (the
// default for embedded fork-join use, where records may live in caller
// memory the scheduler has no business writing).
func TestPhaseStampsOffLeavesRecordsAlone(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 817})
	ds := &allocFreeDS{}
	const n = 64
	recs := make([]OpRecord, n)
	rt.Run(func(c *Ctx) {
		c.For(0, n, 1, func(cc *Ctx, i int) {
			op := &recs[i]
			op.DS = ds
			op.Val = 1
			cc.Batchify(op)
		})
	})
	for i := range recs {
		if recs[i].Phases != ([obs.NumPhases]int64{}) {
			t.Fatalf("op %d: stamps written with stamping off: %v", i, recs[i].Phases)
		}
	}
}

// TestSetPhaseStampsPanicsWhileRunning pins the quiescence rule, same
// as SetTracer's.
func TestSetPhaseStampsPanicsWhileRunning(t *testing.T) {
	rt := New(Config{Workers: 1, Seed: 819})
	done := make(chan struct{})
	rt.Run(func(c *Ctx) {
		defer close(done)
		defer func() {
			if recover() == nil {
				t.Error("SetPhaseStamps during Run did not panic")
			}
		}()
		rt.SetPhaseStamps(true)
	})
	<-done
	if !rt.PhaseStamps() {
		rt.SetPhaseStamps(true) // quiescent: must not panic
	}
}
