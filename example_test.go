package batcher_test

import (
	"fmt"

	"batcher"
	"batcher/internal/ds/counter"
	"batcher/internal/ds/stack"
	"batcher/internal/ds/tree23"
)

// The Figure 1 program: fully parallel increments to a shared counter,
// implicitly batched by the scheduler.
func Example() {
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 1})
	ctr := counter.New(0)
	rt.Run(func(c *batcher.Ctx) {
		c.For(0, 1000, 1, func(cc *batcher.Ctx, i int) {
			ctr.Increment(cc, 1)
		})
	})
	fmt.Println(ctr.Value())
	// Output: 1000
}

// Implementing a batched data structure takes one method: RunBatch is
// called with at most one batch at a time and at most P operations, so
// it needs no locks and may fork freely.
func Example_customStructure() {
	maxSoFar := &maxDS{val: -1 << 62}
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 2})
	rt.Run(func(c *batcher.Ctx) {
		c.For(0, 100, 1, func(cc *batcher.Ctx, i int) {
			op := batcher.OpRecord{DS: maxSoFar, Val: int64((i * 37) % 101)}
			cc.Batchify(&op)
		})
	})
	fmt.Println(maxSoFar.val)
	// Output: 100
}

type maxDS struct{ val int64 }

func (m *maxDS) RunBatch(c *batcher.Ctx, ops []*batcher.OpRecord) {
	for _, op := range ops {
		if op.Val > m.val {
			m.val = op.Val
		}
		op.Res = m.val
	}
}

// The standalone Server (the paper's Section 8 extension) lets plain
// goroutines make implicitly batched calls.
func ExampleServer() {
	srv := batcher.NewServer(batcher.ServerConfig{Workers: 2, Seed: 3})
	ctr := counter.New(0)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 25; i++ {
				srv.Invoke(&batcher.OpRecord{DS: ctr, Kind: counter.OpIncrement, Val: 1})
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	srv.Close()
	fmt.Println(ctr.Value())
	// Output: 100
}

// Batched structures compose: one program can drive several, and the
// scheduler groups each structure's operations separately within a batch
// epoch.
func Example_multipleStructures() {
	rt := batcher.New(batcher.Config{Workers: 4, Seed: 4})
	dict := tree23.NewBatched()
	undo := stack.New()
	rt.Run(func(c *batcher.Ctx) {
		c.For(0, 100, 1, func(cc *batcher.Ctx, i int) {
			if dict.Insert(cc, int64(i%25), int64(i)) {
				undo.Push(cc, int64(i%25))
			}
		})
	})
	fmt.Println(dict.Tree().Len(), undo.Len())
	// Output: 25 25
}
