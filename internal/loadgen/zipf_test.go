package loadgen

import (
	"testing"

	"batcher/internal/rng"
)

// TestZipfStrideCoprime checks the stride derivation directly: for any
// keyspace the stride must be coprime with it (injectivity's arithmetic
// condition) and — for keyspaces big enough to have room — genuinely
// disperse, i.e. not degrade to 1 the way the old fixed-constant
// fallback did for every realistic keyspace.
func TestZipfStrideCoprime(t *testing.T) {
	spaces := []int64{
		1, 2, 3, 7, 99, 12345,
		1 << 14, 1 << 16, 1 << 20, // power-of-two (bench/test defaults)
		100000, 999999, // round decimal and 3×-divisible
		3 * 5 * 7 * 9 * 11, // composite with many small factors
	}
	for _, ks := range spaces {
		s := zipfStride(ks)
		if s < 1 || s >= ks && ks > 1 {
			t.Errorf("keySpace=%d: stride %d out of range", ks, s)
		}
		if g := gcd(s, ks); g != 1 {
			t.Errorf("keySpace=%d: stride %d shares factor %d", ks, s, g)
		}
		if ks >= 1<<10 && s == 1 {
			t.Errorf("keySpace=%d: stride degraded to 1", ks)
		}
	}
}

// TestZipfRankMapInjective maps every tabulated rank through the
// generator's rank->key function and checks no two ranks alias. The
// keyspaces include a multiple of 3, the exact aliasing case of the old
// 0x9e3779b9 stride (divisible by 3).
func TestZipfRankMapInjective(t *testing.T) {
	for _, ks := range []int64{1 << 16, 99 * 3, 100002, 12345} {
		g := newZipfGen(ks, 1.1)
		n := ks
		if n > int64(len(g.cdf)) {
			n = int64(len(g.cdf))
		}
		seen := make(map[int64]int64, n)
		for rank := int64(0); rank < n; rank++ {
			key := (rank * g.stride) % g.keySpace
			if prev, dup := seen[key]; dup {
				t.Fatalf("keySpace=%d stride=%d: ranks %d and %d alias to key %d",
					ks, g.stride, prev, rank, key)
			}
			seen[key] = rank
		}
	}
}

// TestZipfHotRanksDispersed asserts the documented dispersal: the top
// zipf ranks — the keys that carry most of the mass — must land far
// apart in the keyspace, not cluster contiguously at 0..n (the old
// stride-1 fallback behavior, which aliased skew onto one shard and
// one region of every ordered structure).
func TestZipfHotRanksDispersed(t *testing.T) {
	const ks = 1 << 16
	g := newZipfGen(ks, 1.1)
	const hot = 16
	keys := make([]int64, hot)
	for rank := int64(0); rank < hot; rank++ {
		keys[rank] = (rank * g.stride) % ks
	}
	// Minimum pairwise circular distance between hot keys. A random
	// spread would average ks/hot²; demand a much weaker ks/256 so the
	// test has no flake margin while still rejecting clustering.
	minGap := int64(ks)
	for i := 0; i < hot; i++ {
		for j := i + 1; j < hot; j++ {
			d := keys[i] - keys[j]
			if d < 0 {
				d = -d
			}
			if d > ks/2 {
				d = ks - d
			}
			if d < minGap {
				minGap = d
			}
		}
	}
	if minGap < ks/256 {
		t.Fatalf("hot ranks cluster: min pairwise gap %d < %d (keys %v)", minGap, ks/256, keys)
	}
}

// TestZipfSampleInKeySpace keeps the sampler's output contract: every
// drawn key lies in [0, keySpace), including keyspaces larger than the
// tabulated rank cap.
func TestZipfSampleInKeySpace(t *testing.T) {
	for _, ks := range []int64{7, 1 << 14, zipfMaxRanks * 4} {
		g := newZipfGen(ks, 1.01)
		r := rng.New(1)
		for i := 0; i < 4096; i++ {
			k := g.sample(r)
			if k < 0 || k >= ks {
				t.Fatalf("keySpace=%d: sample %d out of range", ks, k)
			}
		}
	}
}
