package queue

import (
	"sort"
	"testing"
	"testing/quick"

	"batcher/internal/rng"
	"batcher/internal/sched"
)

func runOn(p int, f func(c *sched.Ctx)) {
	rt := sched.New(sched.Config{Workers: p, Seed: 111})
	rt.Run(f)
}

func TestEnqueueDequeueSingle(t *testing.T) {
	b := New()
	runOn(2, func(c *sched.Ctx) {
		b.Enqueue(c, 42)
		v, ok := b.Dequeue(c)
		if !ok || v != 42 {
			t.Errorf("Dequeue = %d,%v", v, ok)
		}
	})
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestDequeueEmpty(t *testing.T) {
	b := New()
	runOn(2, func(c *sched.Ctx) {
		if _, ok := b.Dequeue(c); ok {
			t.Error("Dequeue on empty ok")
		}
	})
}

func TestFIFOOrderSerialChain(t *testing.T) {
	// Serial chain forces singleton batches: exact FIFO semantics.
	b := New()
	runOn(4, func(c *sched.Ctx) {
		for i := int64(0); i < 100; i++ {
			b.Enqueue(c, i)
		}
		for i := int64(0); i < 100; i++ {
			v, ok := b.Dequeue(c)
			if !ok || v != i {
				t.Errorf("Dequeue = %d,%v want %d", v, ok, i)
				return
			}
		}
	})
}

func TestWraparound(t *testing.T) {
	b := New()
	runOn(2, func(c *sched.Ctx) {
		// Fill and drain repeatedly so head wraps the ring many times.
		for round := int64(0); round < 50; round++ {
			for i := int64(0); i < 5; i++ {
				b.Enqueue(c, round*10+i)
			}
			for i := int64(0); i < 5; i++ {
				v, ok := b.Dequeue(c)
				if !ok || v != round*10+i {
					t.Errorf("round %d: Dequeue = %d,%v", round, v, ok)
					return
				}
			}
		}
	})
}

func TestParallelEnqueuesAllArrive(t *testing.T) {
	for _, p := range []int{1, 4, 8} {
		b := New()
		const n = 2000
		runOn(p, func(c *sched.Ctx) {
			c.For(0, n, 1, func(cc *sched.Ctx, i int) { b.Enqueue(cc, int64(i)) })
		})
		if b.Len() != n {
			t.Fatalf("P=%d: Len = %d", p, b.Len())
		}
		if b.Resizes == 0 {
			t.Fatalf("P=%d: no resizes", p)
		}
		// Drain: each value exactly once.
		got := make([]int64, 0, n)
		runOn(p, func(c *sched.Ctx) {
			for i := 0; i < n; i++ {
				v, ok := b.Dequeue(c)
				if !ok {
					t.Fatalf("premature empty at %d", i)
				}
				got = append(got, v)
			}
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := range got {
			if got[i] != int64(i) {
				t.Fatalf("P=%d: missing %d", p, i)
			}
		}
	}
}

func TestShrinkAfterDrain(t *testing.T) {
	b := New()
	runOn(4, func(c *sched.Ctx) {
		c.For(0, 1000, 1, func(cc *sched.Ctx, i int) { b.Enqueue(cc, 1) })
	})
	grown := len(b.buf)
	runOn(4, func(c *sched.Ctx) {
		c.For(0, 1000, 1, func(cc *sched.Ctx, i int) { b.Dequeue(cc) })
	})
	if len(b.buf) >= grown {
		t.Fatalf("ring did not shrink: %d -> %d", grown, len(b.buf))
	}
}

func TestQuickAgainstSeqOracle(t *testing.T) {
	rt := sched.New(sched.Config{Workers: 3, Seed: 113})
	f := func(ops []int16) bool {
		b := New()
		s := NewSeq()
		okAll := true
		rt.Run(func(c *sched.Ctx) {
			for _, o := range ops {
				if o >= 0 {
					b.Enqueue(c, int64(o))
					s.Enqueue(int64(o))
				} else {
					bv, bok := b.Dequeue(c)
					sv, sok := s.Dequeue()
					if bv != sv || bok != sok {
						okAll = false
						return
					}
				}
			}
		})
		return okAll && b.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedBatchConservation(t *testing.T) {
	b := New()
	r := rng.New(7)
	const n = 800
	kinds := make([]bool, n)
	enqs := 0
	for i := range kinds {
		kinds[i] = r.Bool()
		if kinds[i] {
			enqs++
		}
	}
	vals := make([]int64, n)
	oks := make([]bool, n)
	runOn(8, func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) {
			if kinds[i] {
				b.Enqueue(cc, int64(i))
			} else {
				vals[i], oks[i] = b.Dequeue(cc)
			}
		})
	})
	seen := map[int64]bool{}
	got := 0
	for i := range vals {
		if kinds[i] || !oks[i] {
			continue
		}
		got++
		v := vals[i]
		if v < 0 || v >= n || !kinds[v] || seen[v] {
			t.Fatalf("dequeued impossible/duplicate value %d", v)
		}
		seen[v] = true
	}
	if b.Len() != enqs-got {
		t.Fatalf("Len = %d want %d", b.Len(), enqs-got)
	}
}

func TestSeqQueue(t *testing.T) {
	s := NewSeq()
	if _, ok := s.Dequeue(); ok {
		t.Fatal("empty Dequeue ok")
	}
	s.Enqueue(1)
	s.Enqueue(2)
	if v, ok := s.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = %d,%v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}
