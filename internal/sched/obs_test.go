package sched

import (
	"errors"
	"testing"
	"time"

	"batcher/internal/obs"
)

// TestTracedRunEmitsEvents drives a batching workload with a tracer and
// batch-size histogram attached and checks the observability contract:
// launch/land events appear, and the histogram agrees exactly with the
// LiveBatchStats counters (same increment sites).
func TestTracedRunEmitsEvents(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 801})
	tr := rt.NewTracer(4096)
	rt.SetTracer(tr)
	h := obs.NewHistogram()
	rt.SetBatchSizeHistogram(h)

	ds := &sumDS{}
	const n = 500
	rt.Run(func(c *Ctx) {
		c.For(0, n, 1, func(cc *Ctx, i int) {
			op := &OpRecord{DS: ds, Val: 1}
			cc.Batchify(op)
		})
	})

	if tr.Rings() != rt.Workers()+1 {
		t.Fatalf("NewTracer built %d rings for %d workers", tr.Rings(), rt.Workers())
	}
	evs := tr.Snapshot()
	kinds := obs.CountKinds(evs)
	batches, ops := rt.LiveBatchStats()
	if batches == 0 || ops != n {
		t.Fatalf("LiveBatchStats = %d batches / %d ops, want >0 / %d", batches, ops, n)
	}
	if kinds[obs.EvBatchLaunch] == 0 {
		t.Fatal("no batch-launch events recorded")
	}
	// The rings are large enough that nothing was overwritten, so land
	// events match executed batches one-to-one and their sizes sum to
	// the op count.
	if int64(kinds[obs.EvBatchLand]) != batches {
		t.Fatalf("%d land events for %d batches", kinds[obs.EvBatchLand], batches)
	}
	var sized int64
	for _, ev := range evs {
		if ev.Kind == obs.EvBatchLand {
			if ev.A < 1 || ev.A > int64(rt.Workers()) {
				t.Fatalf("land event with batch size %d outside 1..P", ev.A)
			}
			if ev.B < 1 {
				t.Fatalf("land event with non-positive duration %d", ev.B)
			}
			sized += ev.A
		}
	}
	if sized != ops {
		t.Fatalf("land event sizes sum to %d, want %d", sized, ops)
	}

	// Histogram and LiveBatchStats are bumped at the same site with the
	// same values, so they agree exactly — the /metrics mean is the
	// LiveBatchStats mean.
	if h.Count() != batches || h.Sum() != ops {
		t.Fatalf("batch histogram %d/%d disagrees with LiveBatchStats %d/%d",
			h.Count(), h.Sum(), batches, ops)
	}
	if rt.LiveSteals() < 0 {
		t.Fatal("LiveSteals negative")
	}
}

// TestTracedStealsAndParks uses an imbalanced workload on several
// workers so steals (and usually parks) occur, and checks they surface
// with valid arguments.
func TestTracedStealsAndParks(t *testing.T) {
	rt := New(Config{Workers: 8, Seed: 802})
	tr := rt.NewTracer(1 << 14)
	rt.SetTracer(tr)
	ds := &sumDS{}
	rt.Run(func(c *Ctx) {
		c.For(0, 2000, 1, func(cc *Ctx, i int) {
			op := &OpRecord{DS: ds, Val: 1}
			cc.Batchify(op)
		})
	})
	evs := tr.Snapshot()
	kinds := obs.CountKinds(evs)
	if int64(kinds[obs.EvSteal]) == 0 && rt.LiveSteals() > 0 {
		t.Fatalf("LiveSteals=%d but no steal events survived in %d-slot rings",
			rt.LiveSteals(), 1<<14)
	}
	for _, ev := range evs {
		switch ev.Kind {
		case obs.EvSteal:
			if ev.A < 0 || ev.A >= int64(rt.Workers()) || ev.A == int64(ev.Ring) {
				t.Fatalf("steal event: victim %d invalid for thief ring %d", ev.A, ev.Ring)
			}
			if ev.B != 0 && ev.B != 1 {
				t.Fatalf("steal event: deque flag %d", ev.B)
			}
		case obs.EvPark, obs.EvWake:
			if int(ev.Ring) >= rt.Workers() {
				t.Fatalf("park/wake on non-worker ring %d", ev.Ring)
			}
		}
	}
	if m := rt.Metrics(); m.SuccessfulSteals != rt.LiveSteals() {
		t.Fatalf("LiveSteals=%d disagrees with quiescent metrics %d",
			rt.LiveSteals(), m.SuccessfulSteals)
	}
}

// TestPumpTracedAdmitReject checks Submit's admission events land on the
// external ring with the documented reason codes.
func TestPumpTracedAdmitReject(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 803})
	tr := rt.NewTracer(256)
	rt.SetTracer(tr)
	ds := &sumDS{}
	p := NewPump(rt, PumpConfig{QueueCap: 1})

	if err := p.Submit(&OpRecord{DS: ds, Val: 1}); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if err := p.Submit(&OpRecord{DS: ds, Val: 1}); !errors.Is(err, ErrPumpSaturated) {
		t.Fatalf("second Submit: %v, want ErrPumpSaturated", err)
	}
	p.Close()
	if err := p.Submit(&OpRecord{DS: ds, Val: 1}); !errors.Is(err, ErrPumpClosed) {
		t.Fatalf("Submit after Close: %v, want ErrPumpClosed", err)
	}

	ext := int32(tr.ExternalRing())
	var admits, satur, closed int
	for _, ev := range tr.Snapshot() {
		if ev.Ring != ext {
			t.Fatalf("pump event %v on ring %d, want external %d", ev.Kind, ev.Ring, ext)
		}
		switch {
		case ev.Kind == obs.EvPumpAdmit:
			admits++
			if ev.A != 1 {
				t.Fatalf("admit depth %d, want 1", ev.A)
			}
		case ev.Kind == obs.EvPumpReject && ev.A == 1:
			satur++
		case ev.Kind == obs.EvPumpReject && ev.A == 2:
			closed++
		}
	}
	if admits != 1 || satur != 1 || closed != 1 {
		t.Fatalf("admit/saturated/closed = %d/%d/%d, want 1/1/1", admits, satur, closed)
	}
}

// panicEveryDS panics on every batch; used to observe containment events.
type panicEveryDS struct{}

func (panicEveryDS) RunBatch(_ *Ctx, ops []*OpRecord) { panic("traced boom") }

func TestTracedPanicContainment(t *testing.T) {
	rt := New(Config{Workers: 2, Seed: 804})
	tr := rt.NewTracer(256)
	rt.SetTracer(tr)
	rt.ContainBatchPanics(true)
	ds := panicEveryDS{}
	var op OpRecord
	rt.Run(func(c *Ctx) {
		op = OpRecord{DS: ds, Val: 1}
		c.Batchify(&op)
	})
	var bpe *BatchPanicError
	if !errors.As(op.Err, &bpe) {
		t.Fatalf("op.Err = %v, want BatchPanicError", op.Err)
	}
	if n := obs.CountKinds(tr.Snapshot())[obs.EvPanicContained]; int64(n) != rt.BatchPanics() {
		t.Fatalf("%d panic-contained events for %d contained panics", n, rt.BatchPanics())
	}
}

// TestSetTracerDuringRunPanics pins the quiescence contract.
func TestSetTracerDuringRunPanics(t *testing.T) {
	rt := New(Config{Workers: 1, Seed: 805})
	rt.Run(func(c *Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("SetTracer during Run did not panic")
			}
		}()
		rt.SetTracer(rt.NewTracer(64))
	})
	rt2 := New(Config{Workers: 1, Seed: 806})
	rt2.Run(func(c *Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("SetBatchSizeHistogram during Run did not panic")
			}
		}()
		rt2.SetBatchSizeHistogram(obs.NewHistogram())
	})
}

// TestConformanceLiveRun attaches the live conformance monitor to a
// real batching run and checks the paper's guarantees on its gauges:
// every batch was observed, no op's wait saw more than Lemma 2's two
// landings, and the measured batch-delay max stayed inside the
// Theorem 5.4 envelope (headroom <= 1). The monitor needs no phase
// stamping — it reads the unconditional pending-slot stamps — so this
// run leaves stamping off deliberately.
func TestConformanceLiveRun(t *testing.T) {
	rt := New(Config{Workers: 4, Seed: 808})
	m := obs.NewConform(time.Hour)
	rt.SetConformance(m)
	ds := &sumDS{}
	const n = 2000
	rt.Run(func(c *Ctx) {
		c.For(0, n, 1, func(cc *Ctx, i int) {
			op := &OpRecord{DS: ds, Val: 1}
			cc.Batchify(op)
		})
	})
	batches, ops := rt.LiveBatchStats()
	if ops != n {
		t.Fatalf("LiveBatchStats ops = %d, want %d", ops, n)
	}
	if got := m.Batches(); got != batches {
		t.Fatalf("monitor saw %d batches, runtime executed %d", got, batches)
	}
	if got := m.MaxLandings(); got < 1 || got > 2 {
		t.Fatalf("max landings = %d, want 1..2 (Lemma 2)", got)
	}
	if got := m.Violations(); got != 0 {
		t.Fatalf("violations = %d, want 0", got)
	}
	if h := m.Headroom(); h > 1.0 {
		t.Fatalf("headroom = %v > 1: measured delay escaped the Theorem 5.4 envelope", h)
	}
	if m.DelayMaxNS() <= 0 || m.SpanMaxNS() <= 0 {
		t.Fatalf("degenerate gauges: delay=%d span=%d", m.DelayMaxNS(), m.SpanMaxNS())
	}
	if rt.Conformance() != m {
		t.Fatal("Conformance() did not return the attached monitor")
	}
}

// TestSetConformanceDuringRunPanics pins the quiescence contract for
// the monitor hook, like SetTracer's.
func TestSetConformanceDuringRunPanics(t *testing.T) {
	rt := New(Config{Workers: 1, Seed: 809})
	rt.Run(func(c *Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("SetConformance during Run did not panic")
			}
		}()
		rt.SetConformance(obs.NewConform(0))
	})
}

// TestBatchifyZeroAllocsTraced is the enabled-path twin of
// TestBatchifyRoundTripZeroAllocs: tracing and the batch-size histogram
// are preallocated, so even with observability ON the round trip must
// not allocate.
func TestBatchifyZeroAllocsTraced(t *testing.T) {
	skipIfRace(t)
	h := &allocHarness{
		jobs:    make(chan func(*Ctx)),
		jobDone: make(chan struct{}),
		runDone: make(chan struct{}),
	}
	rt := New(Config{Workers: 1, Seed: 807})
	rt.SetTracer(rt.NewTracer(1024))
	rt.SetBatchSizeHistogram(obs.NewHistogram())
	go func() {
		defer close(h.runDone)
		rt.Run(func(c *Ctx) {
			for f := range h.jobs {
				f(c)
				h.jobDone <- struct{}{}
			}
		})
	}()
	t.Cleanup(func() {
		close(h.jobs)
		<-h.runDone
	})
	ds := &allocFreeDS{}
	var got float64
	h.do(func(c *Ctx) {
		op := c.Op()
		*op = OpRecord{DS: ds, Val: 1}
		c.Batchify(op)
		got = testing.AllocsPerRun(200, func() {
			op := c.Op()
			*op = OpRecord{DS: ds, Val: 1}
			c.Batchify(op)
		})
	})
	if got != 0 {
		t.Fatalf("traced Batchify+LaunchBatch allocates %v objects/op, want 0", got)
	}
}

// TestBatchifyZeroAllocsConform pins the conformance monitor's cost
// contract: with the monitor attached (alongside tracing, the batch
// histogram, and phase stamping — the full serving configuration) the
// Batchify+LaunchBatch round trip still allocates nothing.
func TestBatchifyZeroAllocsConform(t *testing.T) {
	skipIfRace(t)
	h := &allocHarness{
		jobs:    make(chan func(*Ctx)),
		jobDone: make(chan struct{}),
		runDone: make(chan struct{}),
	}
	rt := New(Config{Workers: 1, Seed: 810})
	rt.SetTracer(rt.NewTracer(1024))
	rt.SetBatchSizeHistogram(obs.NewHistogram())
	rt.SetPhaseStamps(true)
	m := obs.NewConform(time.Hour)
	rt.SetConformance(m)
	go func() {
		defer close(h.runDone)
		rt.Run(func(c *Ctx) {
			for f := range h.jobs {
				f(c)
				h.jobDone <- struct{}{}
			}
		})
	}()
	t.Cleanup(func() {
		close(h.jobs)
		<-h.runDone
	})
	ds := &allocFreeDS{}
	var got float64
	h.do(func(c *Ctx) {
		op := c.Op()
		*op = OpRecord{DS: ds, Val: 1}
		c.Batchify(op)
		got = testing.AllocsPerRun(200, func() {
			op := c.Op()
			*op = OpRecord{DS: ds, Val: 1}
			c.Batchify(op)
		})
	})
	if got != 0 {
		t.Fatalf("conform-monitored Batchify+LaunchBatch allocates %v objects/op, want 0", got)
	}
	if m.Batches() == 0 {
		t.Fatal("monitor recorded no batches during the alloc pin")
	}
}
