package server

// The live half of analytical-twin admission control (DESIGN.md §15).
// A single sampler goroutine ticks every Config.AdmitInterval and, per
// shard: measures the offered arrival rate from the edge ledger,
// refits that shard's service curve s(b) = s0 + s1·b from the deltas
// of the histograms the serving path already maintains (batch sizes
// from LiveBatchStats, batch service time from the exec-phase
// histogram), asks the fitted sim.Model for the p999 it predicts at
// the observed rate and current backlog, and — when the prediction
// exceeds the SLO — inverts the model (MaxAdmissibleRate) into next
// tick's credit budget for the shard's AdmissionController. The edge
// then sheds the excess with a fast FlagErr in classify, and the
// Shed-wrapped policy's Admit high-water mark catches anything that
// slipped through inside the tick.
//
// Everything here reads counters the hot path maintains anyway; the
// hot path never waits on the sampler.

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"batcher/internal/obs"
	"batcher/internal/sim"
)

// edgeCounters is one shard's edge ledger, complementing the shard's
// pump books so every routed operation is accounted for exactly once:
// offered == completed + shed + rejected + abandoned after a drain
// (shed lives on the shard's AdmissionController).
type edgeCounters struct {
	offered   atomic.Int64 // valid ops routed to this shard at decode
	rejected  atomic.Int64 // answered FlagErr without a pump (saturation cap, shutdown)
	abandoned atomic.Int64 // retired without a response (conn died pre-pump)
}

// liveTail is the tail multiplier the live twin runs with: the fitted
// mean-delay model times liveTail stands in for p999. Offline
// calibration (FitModel) fits Tail from a measured sweep; live we
// prefer a fixed conservative constant over fitting against our own
// under-load tail, which would be circular while shedding.
const liveTail = 2.0

// capFrac caps the admitted rate at this fraction of the twin's
// modeled capacity even when the SLO math would allow more: running
// the M/D/1 curve at ρ→1 has unbounded variance, and a controller that
// admits exactly capacity never drains the backlog that made it limit.
const capFrac = 0.9

// admitState is the sampler's per-shard delta memory between ticks.
type admitState struct {
	fitter    sim.Fitter
	rate      float64 // EWMA of the offered arrival rate (ops/sec)
	offered   int64
	batches   int64
	ops       int64
	execCount int64
	execSum   int64
	// cursor tracks the shard's end-to-end latency histogram so each
	// tick can read the p999 realized *during that tick* (the delta
	// quantile); lastPred is the prediction the twin made at the
	// previous tick — the forecast that delta realizes or refutes — or
	// 0 when that tick was limiting (a shedding tick's forecast prices
	// load that never ran, so it is not pairable).
	cursor   obs.HistCursor
	lastPred int64
}

// residAlpha is the EWMA weight of the rolling twin-residual gauge. A
// single tick's p999 is a noisy order statistic, so the gauge rolls
// ~20 ticks (~200ms at the default interval) of absolute percent
// errors rather than reporting the last one raw.
const residAlpha = 0.1

// twinShardStats is one shard's twin-accuracy telemetry, written by
// the sampler and read by scrapes (/metrics, /stats, /debug/admission).
type twinShardStats struct {
	resid    atomic.Uint64 // math.Float64bits of the rolling MAPE (percent)
	samples  atomic.Int64  // residual observations folded into the gauge
	realized atomic.Int64  // last realized per-tick p999, ns
}

// residualPct returns the rolling mean absolute percent error of the
// twin's p999 predictions, 0 until the first paired observation.
func (t *twinShardStats) residualPct() float64 {
	return math.Float64frombits(t.resid.Load())
}

// observe folds one |predicted-realized|/realized sample into the
// rolling gauge. Sampler-only writer; scrapes read concurrently.
func (t *twinShardStats) observe(pct float64) {
	if t.samples.Add(1) == 1 {
		t.resid.Store(math.Float64bits(pct))
		return
	}
	mean := math.Float64frombits(t.resid.Load())
	mean += residAlpha * (pct - mean)
	t.resid.Store(math.Float64bits(mean))
}

// AdmissionDecision is one sampler tick's verdict for one shard, kept
// in the /debug/admission flight ring: what the twin predicted, what
// the shard realized, and what the controller did about it.
type AdmissionDecision struct {
	// WhenNS is the tick time, obs.Now nanoseconds (monotonic since
	// process start — ages, not wall-clock times).
	WhenNS int64 `json:"when_ns"`
	Shard  int   `json:"shard"`
	// PredictedNS is the twin's p999 forecast made at this tick;
	// RealizedNS the p999 measured over the interval that just ended
	// (0 when no ops completed); ResidualPct the rolling MAPE gauge
	// after folding this tick's pairing in.
	PredictedNS int64   `json:"predicted_p999_ns"`
	RealizedNS  int64   `json:"realized_p999_ns"`
	ResidualPct float64 `json:"residual_pct"`
	// RatePerSec is the EWMA offered arrival rate the prediction used;
	// Backlog the standing unanswered-op count.
	RatePerSec float64 `json:"offered_rate_per_sec"`
	Backlog    int     `json:"backlog"`
	// Limiting reports whether the controller granted a bounded credit
	// budget this tick (Credits; 0 means unlimited), and ShedTotal the
	// shard's lifetime edge-shed count after the tick.
	Limiting  bool  `json:"limiting"`
	Credits   int64 `json:"granted_credits"`
	ShedTotal int64 `json:"shed_total"`
}

// admitLogCap bounds the /debug/admission ring: at the default 10ms
// tick, 512 entries hold the last ~5s of decisions for one shard (and
// proportionally less wall time with more shards — the ring is
// process-wide, entries carry their shard).
const admitLogCap = 512

// admitLog is the flight-recorder-style ring of recent admission
// decisions. The sampler appends; the debug handler snapshots.
type admitLog struct {
	mu   sync.Mutex
	buf  []AdmissionDecision
	next int
	full bool
}

func newAdmitLog(cap int) *admitLog {
	return &admitLog{buf: make([]AdmissionDecision, cap)}
}

func (l *admitLog) add(d AdmissionDecision) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// snapshot returns the recorded decisions, newest first.
func (l *admitLog) snapshot() []AdmissionDecision {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]AdmissionDecision, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	l.mu.Unlock()
	return out
}

// rateAlpha is the EWMA weight for the offered-rate estimate. One
// AdmitInterval is too short a window to read a rate from — a tick
// catches 0 or 3 ops of a perfectly steady stream and the M/D/1 curve
// is steep near saturation, so acting on instantaneous rates sheds on
// noise. α=0.3 settles within ~5 ticks of a real load change while
// flattening single-tick bursts.
const rateAlpha = 0.3

// runAdmission is the sampler goroutine; one per server, started by
// Start when Config.SLO > 0, exits when Shutdown begins.
func (s *Server) runAdmission() {
	tick := time.NewTicker(s.cfg.AdmitInterval)
	defer tick.Stop()
	states := make([]admitState, s.router.N())
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			for i := range states {
				s.admitTick(i, &states[i])
			}
		}
	}
}

// admitTick refits shard i's twin from this tick's histogram deltas
// and installs the next credit budget.
func (s *Server) admitTick(i int, st *admitState) {
	ctrl := s.admission[i]
	sh := s.router.Shard(i)

	// Offered arrival rate over the last interval — measured at decode,
	// before any shedding, so it tracks true demand even while limiting.
	offered := s.edge[i].offered.Load()
	dOffered := offered - st.offered
	st.offered = offered
	inst := float64(dOffered) / s.cfg.AdmitInterval.Seconds()
	st.rate += rateAlpha * (inst - st.rate)
	rate := st.rate

	// Twin residual: pair the prediction made at the *previous* tick —
	// the forecast for the interval that just ended — against the p999
	// realized over exactly that interval (the end-to-end histogram's
	// delta quantile). A lifetime quantile would smear every past
	// regime into the comparison; the delta isolates this tick.
	tw := &s.twin[i]
	realized, haveReal := s.shardM[i].totalHist.DeltaQuantile(0.999, &st.cursor)
	if haveReal {
		tw.realized.Store(realized)
		if st.lastPred > 0 && realized > 0 {
			tw.observe(100 * math.Abs(float64(st.lastPred)-float64(realized)) / float64(realized))
		}
	}

	// Service-curve sample: mean batch size and mean exec-phase
	// duration over the interval's completions.
	batches, ops := sh.Runtime().LiveBatchStats()
	exec := s.shardM[i].phaseHist[obs.PhaseLaunch]
	execCount, execSum := exec.Count(), exec.Sum()
	if db := batches - st.batches; db > 0 && execCount > st.execCount {
		meanBatch := float64(ops-st.ops) / float64(db)
		meanExec := float64(execSum-st.execSum) / float64(execCount-st.execCount)
		st.fitter.Add(meanBatch, meanExec)
	}
	st.batches, st.ops = batches, ops
	st.execCount, st.execSum = execCount, execSum

	var (
		pred     float64
		backlog  int
		credits  int64
		limiting bool
	)
	if s0, s1, ok := st.fitter.Params(); !ok {
		// Cold start: no trustworthy curve yet, admit everything. The
		// SaturationTimeout backstop still applies.
		ctrl.SetPredicted(0)
		ctrl.Refill(0, false)
	} else {
		model := sim.Model{
			Workers: sh.Runtime().Workers(),
			SetupNS: s0, PerOpNS: s1,
			Tail: liveTail,
		}
		// Standing backlog: every op offered to this shard and not yet
		// answered — the pump queue, the pending array, AND the ops parked
		// at the edge on a full queue. Counting only the pump depth would
		// blind the twin to saturation parks, which are exactly the
		// latency it exists to predict (a parked op drains through the
		// same service curve, it just waits at the door first).
		_, comp, _ := sh.Books()
		backlog = int(offered - comp - ctrl.Shed() -
			s.edge[i].rejected.Load() - s.edge[i].abandoned.Load())
		if backlog < 0 {
			backlog = 0
		}
		pred = model.PredictP999NS(rate, backlog)
		if pred > float64(1<<62) { // +Inf past capacity: clamp for the gauge
			pred = float64(1 << 62)
		}
		ctrl.SetPredicted(int64(pred))
		if pred <= float64(ctrl.SLO()) {
			ctrl.Refill(0, false)
		} else {
			// Over SLO: invert the curve into the largest sustainable rate
			// and grant exactly one tick's worth of it.
			target := model.MaxAdmissibleRate(float64(ctrl.SLO()), backlog)
			if max := capFrac * model.CapacityOpsPerSec(); target > max {
				target = max
			}
			credits = int64(target * s.cfg.AdmitInterval.Seconds())
			// Floor at one batch row: starving the shard entirely would
			// stop the completions that refit the twin and end the
			// brownout.
			if min := int64(model.Workers); credits < min {
				credits = min
			}
			limiting = true
			ctrl.Refill(credits, true)
		}
	}
	// Only non-limiting predictions are pairable for the residual: a
	// limiting tick's prediction prices the load it is about to shed —
	// a counterfactual the realized histogram (of admitted ops only)
	// never tests, and near capacity it is the clamped +Inf sentinel,
	// which would blow the MAPE into the trillions of percent.
	if limiting {
		st.lastPred = 0
	} else {
		st.lastPred = int64(pred)
	}
	s.admitLog.add(AdmissionDecision{
		WhenNS:      obs.Now(),
		Shard:       i,
		PredictedNS: int64(pred),
		RealizedNS:  realized,
		ResidualPct: tw.residualPct(),
		RatePerSec:  rate,
		Backlog:     backlog,
		Limiting:    limiting,
		Credits:     credits,
		ShedTotal:   ctrl.Shed(),
	})
}

// admissionDebug is the /debug/admission JSON document.
type admissionDebug struct {
	Enabled   bool                `json:"enabled"`
	SLONS     int64               `json:"slo_ns"`
	PerShard  []admissionShard    `json:"per_shard"`
	Decisions []AdmissionDecision `json:"decisions"`
}

// admissionShard is one shard's twin-accuracy summary in the debug
// document.
type admissionShard struct {
	Shard           int     `json:"shard"`
	PredictedP999NS int64   `json:"predicted_p999_ns"`
	RealizedP999NS  int64   `json:"realized_p999_ns"`
	ResidualPct     float64 `json:"residual_pct"`
	ResidualSamples int64   `json:"residual_samples"`
	ShedTotal       int64   `json:"shed_total"`
}

// AdmissionDebugHandler returns the /debug/admission handler: the
// per-shard twin-accuracy summary plus the recent-decision ring,
// newest first. 404 when admission control is off (no sampler, so
// nothing to report).
func (s *Server) AdmissionDebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.admission == nil {
			http.Error(w, "admission control disabled (start with -slo)", http.StatusNotFound)
			return
		}
		doc := admissionDebug{
			Enabled:   true,
			SLONS:     s.cfg.SLO.Nanoseconds(),
			PerShard:  make([]admissionShard, len(s.admission)),
			Decisions: s.admitLog.snapshot(),
		}
		for i := range doc.PerShard {
			tw := &s.twin[i]
			doc.PerShard[i] = admissionShard{
				Shard:           i,
				PredictedP999NS: s.admission[i].Predicted(),
				RealizedP999NS:  tw.realized.Load(),
				ResidualPct:     tw.residualPct(),
				ResidualSamples: tw.samples.Load(),
				ShedTotal:       s.admission[i].Shed(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}
