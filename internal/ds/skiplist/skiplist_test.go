package skiplist

import (
	"sort"
	"testing"
	"testing/quick"

	"batcher/internal/rng"
)

func TestSeqInsertContains(t *testing.T) {
	l := NewList(1)
	if !l.Insert(5, 50) {
		t.Fatal("first insert reported duplicate")
	}
	if l.Insert(5, 55) {
		t.Fatal("duplicate insert reported new")
	}
	v, ok := l.Contains(5)
	if !ok || v != 55 {
		t.Fatalf("Contains(5) = %d,%v", v, ok)
	}
	if _, ok := l.Contains(6); ok {
		t.Fatal("Contains(6) true on absent key")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSeqDelete(t *testing.T) {
	l := NewList(2)
	for i := int64(0); i < 100; i++ {
		l.Insert(i, i)
	}
	if !l.Delete(50) {
		t.Fatal("Delete(50) failed")
	}
	if l.Delete(50) {
		t.Fatal("second Delete(50) succeeded")
	}
	if _, ok := l.Contains(50); ok {
		t.Fatal("50 still present")
	}
	if l.Len() != 99 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSeqOrderedKeys(t *testing.T) {
	l := NewList(3)
	r := rng.New(7)
	const n = 5000
	want := map[int64]bool{}
	for i := 0; i < n; i++ {
		k := r.Int63() % 2000
		l.Insert(k, k)
		want[k] = true
	}
	keys := l.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Len = %d, want %d", len(keys), len(want))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("keys not strictly ascending")
		}
	}
	for _, k := range keys {
		if !want[k] {
			t.Fatalf("unexpected key %d", k)
		}
	}
	if err := l.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeightDeterministic(t *testing.T) {
	a, b := NewList(9), NewList(9)
	for k := int64(0); k < 1000; k++ {
		if a.height(k) != b.height(k) {
			t.Fatalf("height(%d) differs across same-seed lists", k)
		}
	}
	c := NewList(10)
	diff := 0
	for k := int64(0); k < 1000; k++ {
		if a.height(k) != c.height(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical heights for 1000 keys")
	}
}

func TestHeightDistribution(t *testing.T) {
	l := NewList(11)
	counts := map[int]int{}
	const n = 100000
	for k := int64(0); k < n; k++ {
		counts[l.height(k)]++
	}
	// P(height = 1) = 1/2.
	frac := float64(counts[1]) / n
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("P(height=1) = %v, want ~0.5", frac)
	}
	if counts[maxLevel+1] != 0 {
		t.Fatal("height exceeded maxLevel")
	}
}

func TestQuickSeqAgainstMap(t *testing.T) {
	f := func(keys []int16, dels []int16) bool {
		l := NewList(13)
		m := map[int64]int64{}
		for i, k16 := range keys {
			k := int64(k16)
			newIns := l.Insert(k, int64(i))
			_, existed := m[k]
			if newIns == existed {
				return false
			}
			m[k] = int64(i)
		}
		for _, k16 := range dels {
			k := int64(k16)
			_, existed := m[k]
			if l.Delete(k) != existed {
				return false
			}
			delete(m, k)
		}
		if l.Len() != len(m) {
			return false
		}
		for k, v := range m {
			got, ok := l.Contains(k)
			if !ok || got != v {
				return false
			}
		}
		return l.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyListQueries(t *testing.T) {
	l := NewList(17)
	if _, ok := l.Contains(1); ok {
		t.Fatal("Contains on empty")
	}
	if l.Delete(1) {
		t.Fatal("Delete on empty")
	}
	if len(l.Keys()) != 0 {
		t.Fatal("Keys on empty")
	}
}

func TestExtremeKeys(t *testing.T) {
	l := NewList(19)
	keys := []int64{-1 << 60, -1, 0, 1, 1 << 60}
	for _, k := range keys {
		l.Insert(k, k)
	}
	got := l.Keys()
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}
