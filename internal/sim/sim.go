package sim

import (
	"fmt"

	"batcher/internal/rng"
)

// Op is an abstract data-structure operation in the simulated model. The
// cost model (BatchModel) decides what dag a batch of Ops induces.
type Op struct {
	// Records is the number of data-structure records the operation
	// carries; the paper's Section 7 experiment uses 100 insertion
	// records per BATCHIFY call. Zero means 1.
	Records int
	// Cost lets a model scale per-record work (e.g. lg(list size)); its
	// meaning is model-specific. Zero means the model's default.
	Cost int32
	// Tag carries a model-specific operation kind (e.g. push vs pop for
	// the stack model).
	Tag int32

	// worker is the trapped worker while the op is pending/executing.
	worker int32
	// batchesWaited counts batches that completed between this op's
	// publication and its completion (Lemma 2 says <= 2 when the batch
	// cap is at least P).
	batchesWaited int32
}

// RecordCount returns Records, defaulting to 1.
func (o *Op) RecordCount() int {
	if o.Records <= 0 {
		return 1
	}
	return o.Records
}

// DirectModel models a *concurrent* (unbatched) data structure for the
// comparison runs of the paper's introduction: each operation executes
// inline on its worker — no trapping, no batches — with a cost that may
// grow with the number of simultaneously active operations (contention).
// The paper's examples: a fetch-and-add counter serializes, so an
// operation contending with k others pays Θ(k); a lock-free B+-tree in
// which P processes CAS the same node has Ω(P) worst-case latency.
type DirectModel interface {
	// OpCost prices one operation given that active operations
	// (including this one) are concurrently inside the structure.
	OpCost(op *Op, active int) int64
}

// BatchModel is the simulated analogue of a batched data structure: it
// emits the BOP dag for a batch of operations and prices the sequential
// baseline. Implementations live in internal/simds.
type BatchModel interface {
	// BuildBOP appends the batch dag for ops to g (all nodes KindBatch)
	// and returns its entry and exit node ids. It may mutate internal
	// model state (e.g. the structure's size).
	BuildBOP(g *Graph, ops []*Op) (entry, exit int32)
	// SeqCost returns the cost of performing op alone on the sequential
	// baseline structure, *and advances the model state* just as
	// BuildBOP would. Use separate model instances for separate runs.
	SeqCost(op *Op) int64
}

// StealPolicy selects the deque a free worker's k-th steal attempt
// targets (trapped workers always steal from batch deques).
type StealPolicy uint8

const (
	// PolicyAlternating is the paper's policy.
	PolicyAlternating StealPolicy = iota
	// PolicyCoreOnly always targets core deques (ablation).
	PolicyCoreOnly
	// PolicyBatchOnly always targets batch deques (ablation).
	PolicyBatchOnly
	// PolicyRandom picks a deque uniformly at random (ablation).
	PolicyRandom
)

// Config configures a simulation.
type Config struct {
	// Workers is P (>= 1).
	Workers int
	// Seed drives victim selection.
	Seed uint64
	// Policy is the free-worker steal policy.
	Policy StealPolicy
	// BatchCap limits operations per batch; 0 means P (Invariant 2).
	// Values below P are ablations that void the Lemma 2 guarantee.
	BatchCap int
	// LaunchThreshold is the minimum number of pending operations
	// required before a trapped worker may launch (default 1 =
	// immediate launch, the paper's choice; larger values are the
	// "wait to accrue a batch" ablation).
	LaunchThreshold int
	// SeqBatches makes every batch execute sequentially (the setup scan
	// and the BOP become chains): the flat-combining mode.
	SeqBatches bool
	// MaxSteps aborts a runaway simulation; 0 means a generous default.
	MaxSteps int64
	// TraceCols enables per-worker activity tracing rendered to roughly
	// this many columns (see Result.Trace). 0 disables tracing.
	TraceCols int
	// Direct, when non-nil, replaces implicit batching entirely: data-
	// structure nodes execute inline with contention-dependent cost (the
	// "conventional concurrent data structure" comparison). The
	// BatchModel passed to NewSim is ignored in this mode.
	Direct DirectModel
	// RecordBatchSpans collects each batch's BOP work and span into
	// Result.BatchSpans (Theorem 3's τ-trimmed span is computed from
	// them).
	RecordBatchSpans bool
}

// Result reports a simulation's measurements.
type Result struct {
	// Makespan is the completion time in timesteps.
	Makespan int64
	// Batches is the number of batches executed; BatchedOps the total
	// operations they carried; BatchedRecords the total records.
	Batches        int64
	BatchedOps     int64
	BatchedRecords int64
	// MaxBatchOps is the largest batch (operations), for Invariant 2.
	MaxBatchOps int
	// MeanBatchOps is BatchedOps / Batches.
	MeanBatchOps float64
	// Steal-attempt counters, split as in the Section 5 analysis.
	FreeSteals    int64
	TrappedSteals int64
	SuccSteals    int64
	FailedSteals  int64
	// Executed work by category (timesteps).
	CoreWork  int64
	BatchWork int64
	SetupWork int64
	// IdleSteps counts worker-steps spent on failed steals and launch
	// bookkeeping (total worker-steps = Makespan * P).
	IdleSteps int64
	// MaxBatchesWaited is the most batches any single operation waited
	// through (Lemma 2: <= 2 with BatchCap >= P).
	MaxBatchesWaited int32
	// Launches counts launch actions (== Batches; kept separate as a
	// consistency check).
	Launches int64
	// Trace holds one activity row per worker when Config.TraceCols > 0:
	// C core, D op publication, B batch work, s setup/cleanup, / steal,
	// L launch, r resume, . idle.
	Trace []string
	// BatchSpans holds each executed batch's BOP-dag span and work (in
	// execution order) when Config.RecordBatchSpans is set; the
	// Theorem 3 validation computes τ-trimmed spans from it.
	BatchSpans []BatchShape
}

// BatchShape describes one batch's BOP dag.
type BatchShape struct {
	// Ops and Records are the batch's operation and record counts.
	Ops, Records int
	// Work and Span are the BOP dag's totals (setup/cleanup excluded,
	// exactly as the paper's batch-dag metrics exclude scheduler
	// overhead).
	Work, Span int64
}

// Throughput returns records per timestep given the total record count.
func (r Result) Throughput(records int64) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(records) / float64(r.Makespan)
}

type ref struct {
	g  *Graph
	id int32
}

// dq is a simulated deque: steal at head, push/pop at tail.
type dq struct {
	items []ref
	head  int
}

func (d *dq) empty() bool { return d.head >= len(d.items) }
func (d *dq) push(r ref)  { d.items = append(d.items, r) }
func (d *dq) pop() (ref, bool) {
	if d.empty() {
		return ref{}, false
	}
	r := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	if d.empty() {
		d.items = d.items[:0]
		d.head = 0
	}
	return r, true
}
func (d *dq) steal() (ref, bool) {
	if d.empty() {
		return ref{}, false
	}
	r := d.items[d.head]
	d.head++
	if d.empty() {
		d.items = d.items[:0]
		d.head = 0
	}
	return r, true
}

type workerStatus uint8

const (
	wsFree workerStatus = iota
	wsPending
	wsExecuting
	wsDone
)

type simWorker struct {
	id      int32
	core    dq
	batch   dq
	cur     ref
	curLeft int32
	status  workerStatus
	susp    ref // suspended DS node while trapped
	op      *Op
	stealK  uint64
	// trapFails counts failed steal attempts since the worker trapped;
	// it drives the launch-threshold ablation's timeout fallback.
	trapFails int
	rng       *rng.Rand
}

// Sim is one simulation instance. Create with NewSim, then call Run once.
type Sim struct {
	cfg     Config
	model   BatchModel
	workers []*simWorker

	batchFlag   bool
	activeBatch *batchRun
	pendingOps  []*Op
	// directActive counts operations currently inside the structure in
	// Direct (concurrent, unbatched) mode.
	directActive int

	traces []*traceBuf

	res  Result
	used bool
}

// batchRun tracks the currently executing batch.
type batchRun struct {
	g       *Graph
	claimed []*Op
}

// NewSim creates a simulator over the given batched-structure model.
func NewSim(cfg Config, model BatchModel) *Sim {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.BatchCap <= 0 {
		cfg.BatchCap = cfg.Workers
	}
	if cfg.LaunchThreshold < 1 {
		cfg.LaunchThreshold = 1
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 1 << 40
	}
	s := &Sim{cfg: cfg, model: model, pendingOps: make([]*Op, cfg.Workers)}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, &simWorker{
			id:  int32(i),
			rng: rng.New(seed + uint64(i)*0x9e3779b97f4a7c15),
		})
	}
	if cfg.TraceCols > 0 {
		s.traces = make([]*traceBuf, cfg.Workers)
		for i := range s.traces {
			s.traces[i] = newTraceBuf(cfg.TraceCols)
		}
	}
	return s
}

// Run executes the core graph to completion and returns measurements.
// The graph must have exactly one root. A Sim instance runs once.
func (s *Sim) Run(core *Graph) Result {
	if s.used {
		panic("sim: Sim instance reused")
	}
	s.used = true
	roots := core.roots()
	if len(roots) != 1 {
		panic(fmt.Sprintf("sim: core graph has %d roots, want 1", len(roots)))
	}
	s.workers[0].core.push(ref{core, roots[0]})

	var t int64
	for core.remaining > 0 {
		if t >= s.cfg.MaxSteps {
			panic("sim: exceeded MaxSteps; livelock or runaway workload")
		}
		for _, w := range s.workers {
			s.step(w)
		}
		t++
	}
	s.res.Makespan = t
	if s.res.Batches > 0 {
		s.res.MeanBatchOps = float64(s.res.BatchedOps) / float64(s.res.Batches)
	}
	if s.traces != nil {
		for _, tb := range s.traces {
			s.res.Trace = append(s.res.Trace, tb.render())
		}
	}
	return s.res
}

// step advances worker w by one timestep.
func (s *Sim) step(w *simWorker) {
	// Acquire a node if we have none (free: pops from own deques cost
	// nothing, as in ABP's accounting where only steals are wasted work).
	if w.curLeft == 0 {
		if !s.acquire(w) {
			return // the acquisition action consumed the step
		}
	}
	if w.curLeft == 0 {
		return // nothing to run: the failed acquisition was the step
	}
	// Execute one unit of the assigned node.
	node := &w.cur.g.nodes[w.cur.id]
	switch node.Kind {
	case KindCore, KindDS:
		s.res.CoreWork++
		s.recordActivity(w, actCore)
	case KindBatch:
		s.res.BatchWork++
		s.recordActivity(w, actBatch)
	case KindSetup:
		s.res.SetupWork++
		s.recordActivity(w, actSetup)
	}
	w.curLeft--
	if w.curLeft == 0 {
		s.finish(w)
	}
}

// acquire tries to give w an assigned node. It returns false if the
// worker performed a step-consuming scheduler action (steal attempt,
// batch launch, resume) instead.
func (s *Sim) acquire(w *simWorker) bool {
	trapped := w.status != wsFree
	if trapped {
		if r, ok := w.batch.pop(); ok {
			s.assign(w, r)
			return true
		}
		if w.status == wsDone {
			// Resume the suspended data-structure node: the worker is
			// free again and u's successors become ready.
			w.status = wsFree
			s.complete(w, w.susp)
			w.susp = ref{}
			w.op = nil
			s.recordActivity(w, actResume)
			return false // the resume transition consumes the step
		}
		if !s.batchFlag && s.mayLaunch(w) {
			s.launchBatch(w)
			s.recordActivity(w, actLaunch)
			return false
		}
		s.stealAttempt(w, true)
		return false
	}
	// Free worker: own deques first (batch preferred; Invariant 4 says at
	// most one is nonempty anyway).
	if r, ok := w.batch.pop(); ok {
		s.assign(w, r)
		return true
	}
	if r, ok := w.core.pop(); ok {
		s.assign(w, r)
		return true
	}
	s.stealAttempt(w, false)
	return false
}

// assign makes r the worker's current node, handling DS nodes (which trap
// the worker instead of executing).
func (s *Sim) assign(w *simWorker, r ref) {
	node := &r.g.nodes[r.id]
	if node.Kind == KindDS {
		op := node.Op
		if op == nil {
			panic("sim: DS node without Op")
		}
		if s.cfg.Direct != nil {
			// Concurrent-structure mode: the operation executes inline,
			// occupying this worker for a contention-dependent time, and
			// the node completes normally.
			s.directActive++
			cost := s.cfg.Direct.OpCost(op, s.directActive)
			if cost < 1 {
				cost = 1
			}
			w.cur = r
			w.curLeft = int32(cost)
			return
		}
		// Implicit batching: executing the data-structure node =
		// publishing the operation record; the node then blocks until a
		// batch completes it. The publication costs one timestep.
		op.worker = w.id
		op.batchesWaited = 0
		s.pendingOps[w.id] = op
		w.status = wsPending
		w.trapFails = 0
		w.susp = r
		w.op = op
		w.cur = r
		w.curLeft = 1
		// Consume its single unit now: count as core work and leave the
		// node uncompleted (finish() skips DS completion).
		s.res.CoreWork++
		s.recordActivity(w, actDS)
		w.curLeft = 0
		return
	}
	w.cur = r
	w.curLeft = node.Weight
}

// finish completes the worker's current node.
func (s *Sim) finish(w *simWorker) {
	s.complete(w, w.cur)
	w.cur = ref{}
}

// complete marks a node finished, enabling successors onto w's deques.
func (s *Sim) complete(w *simWorker, r ref) {
	g := r.g
	node := &g.nodes[r.id]
	if node.Kind == KindDS && s.cfg.Direct != nil {
		s.directActive--
	}
	for _, succ := range node.succs {
		g.nodes[succ].preds--
		if g.nodes[succ].preds == 0 {
			s.route(w, ref{g, succ})
		}
	}
	g.remaining--
	if s.activeBatch != nil && g == s.activeBatch.g && g.remaining == 0 {
		s.completeBatch()
	}
}

// route places a newly ready node on the correct deque of w
// (Invariant 3: batch-dag nodes on batch deques, core-dag nodes on core
// deques).
func (s *Sim) route(w *simWorker, r ref) {
	if s.activeBatch != nil && r.g == s.activeBatch.g {
		w.batch.push(r)
	} else {
		w.core.push(r)
	}
}

// mayLaunch decides whether a trapped worker may launch a batch. With
// the paper's immediate-launch rule (threshold 1) it is simply "a record
// is pending" — always true for a trapped worker. The accrual ablation
// (threshold > 1) waits for that many pending records but falls back to
// launching after 8P fruitless steal attempts, mirroring the timeouts
// real accrual-based combiners need to avoid stranding stragglers.
func (s *Sim) mayLaunch(w *simWorker) bool {
	if s.cfg.LaunchThreshold <= 1 {
		return true
	}
	if s.pendingCount() >= s.cfg.LaunchThreshold {
		return true
	}
	return w.trapFails >= 8*len(s.workers)
}

func (s *Sim) pendingCount() int {
	n := 0
	for _, op := range s.pendingOps {
		if op != nil {
			n++
		}
	}
	return n
}

// launchBatch is Figure 4: claim pending records, build the batch dag
// (setup + BOP + cleanup), and inject its root on w's batch deque.
func (s *Sim) launchBatch(w *simWorker) {
	if s.batchFlag || s.activeBatch != nil {
		panic("sim: Invariant 1 violated: launch during active batch")
	}
	s.batchFlag = true
	s.res.Launches++

	claimed := make([]*Op, 0, s.cfg.BatchCap)
	for i := range s.pendingOps {
		if len(claimed) == s.cfg.BatchCap {
			break
		}
		if op := s.pendingOps[i]; op != nil {
			claimed = append(claimed, op)
			s.pendingOps[i] = nil
			s.workers[i].status = wsExecuting
		}
	}
	if len(claimed) == 0 {
		panic("sim: launch with no pending operations")
	}
	if len(claimed) > s.cfg.Workers {
		panic("sim: Invariant 2 violated: batch larger than P")
	}

	records := int64(0)
	for _, op := range claimed {
		records += int64(op.RecordCount())
	}
	s.res.Batches++
	s.res.BatchedOps += int64(len(claimed))
	s.res.BatchedRecords += records
	if len(claimed) > s.res.MaxBatchOps {
		s.res.MaxBatchOps = len(claimed)
	}

	g := NewGraph(64)
	var setupEntry, setupExit, bopEntry, bopExit, cleanEntry, cleanExit int32
	if s.cfg.SeqBatches {
		// Flat combining: the combiner scans the P slots and applies
		// every operation itself, strictly sequentially.
		setupEntry, setupExit = g.Chain(int64(s.cfg.Workers), KindSetup)
		var seqWork int64
		for _, op := range claimed {
			seqWork += s.model.SeqCost(op)
		}
		bopEntry, bopExit = g.Chain(seqWork, KindBatch)
		cleanEntry, cleanExit = g.Chain(1, KindSetup)
	} else {
		// BATCHER: parallel status flips + compaction (Θ(P) work,
		// Θ(lg P) span), the structure's parallel BOP, parallel cleanup.
		setupEntry, setupExit = g.ForkJoin(s.cfg.Workers, 1, KindSetup)
		bopEntry, bopExit = s.model.BuildBOP(g, claimed)
		cleanEntry, cleanExit = g.ForkJoin(s.cfg.Workers, 1, KindSetup)
	}
	g.AddEdge(setupExit, bopEntry)
	g.AddEdge(bopExit, cleanEntry)
	_ = setupEntry
	_ = cleanExit

	if s.cfg.RecordBatchSpans {
		work, span := g.WorkSpanOf(KindBatch)
		s.res.BatchSpans = append(s.res.BatchSpans, BatchShape{
			Ops: len(claimed), Records: int(records), Work: work, Span: span,
		})
	}

	s.activeBatch = &batchRun{g: g, claimed: claimed}
	w.batch.push(ref{g, setupEntry})
}

// completeBatch finishes the active batch: participants' statuses flip to
// done, waiting (unclaimed) operations record one more batch waited, and
// the batch flag resets.
func (s *Sim) completeBatch() {
	br := s.activeBatch
	for _, op := range br.claimed {
		op.batchesWaited++
		if op.batchesWaited > s.res.MaxBatchesWaited {
			s.res.MaxBatchesWaited = op.batchesWaited
		}
		s.workers[op.worker].status = wsDone
	}
	for _, op := range s.pendingOps {
		if op != nil {
			op.batchesWaited++
			if op.batchesWaited > s.res.MaxBatchesWaited {
				s.res.MaxBatchesWaited = op.batchesWaited
			}
		}
	}
	s.activeBatch = nil
	s.batchFlag = false
}

// stealAttempt makes one steal attempt for w (batchOnly for trapped
// workers), executing nothing this step but possibly loading w.cur for
// the next step.
func (s *Sim) stealAttempt(w *simWorker, batchOnly bool) {
	s.res.IdleSteps++
	if batchOnly {
		s.res.TrappedSteals++
	} else {
		s.res.FreeSteals++
	}
	if len(s.workers) == 1 {
		s.res.FailedSteals++
		s.recordActivity(w, actIdle)
		return
	}
	victim := s.workers[w.rng.Intn(len(s.workers))]
	if victim == w {
		victim = s.workers[(victim.id+1)%int32(len(s.workers))]
	}
	var d *dq
	if batchOnly {
		d = &victim.batch
	} else {
		w.stealK++
		switch s.cfg.Policy {
		case PolicyCoreOnly:
			d = &victim.core
		case PolicyBatchOnly:
			d = &victim.batch
		case PolicyRandom:
			if w.rng.Bool() {
				d = &victim.core
			} else {
				d = &victim.batch
			}
		default: // PolicyAlternating
			if w.stealK%2 == 0 {
				d = &victim.core
			} else {
				d = &victim.batch
			}
		}
	}
	r, ok := d.steal()
	if !ok {
		s.res.FailedSteals++
		if batchOnly {
			w.trapFails++
		}
		s.recordActivity(w, actIdle)
		return
	}
	s.res.SuccSteals++
	s.recordActivity(w, actSteal)
	s.assign(w, r)
}

// SequentialTime prices the core graph on one processor with direct
// (unbatched) data-structure access: the sum of all core weights plus the
// model's sequential cost of every operation. It is the paper's SEQ
// baseline.
func SequentialTime(core *Graph, model BatchModel) int64 {
	var total int64
	for i := range core.nodes {
		n := &core.nodes[i]
		if n.Kind == KindDS {
			total += model.SeqCost(n.Op)
		} else {
			total += int64(n.Weight)
		}
	}
	return total
}
