# Development targets. Everything is stdlib-only; `go` >= 1.22 suffices.

.PHONY: all build vet test race bench lab lab-quick examples cover fuzz

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate the paper's evaluation (see EXPERIMENTS.md).
lab:
	go run ./cmd/batcherlab all

lab-quick:
	go run ./cmd/batcherlab -quick all

examples:
	go run ./examples/quickstart
	go run ./examples/dijkstra
	go run ./examples/indexer
	go run ./examples/racedetect
	go run ./examples/goroutines
	go run ./examples/boruvka
	go run ./examples/simscaling

cover:
	go test -cover ./internal/...

# Short fuzzing passes over the property-based fuzz targets.
fuzz:
	go test -fuzz=FuzzTreeAgainstMap -fuzztime=30s ./internal/ds/tree23/
	go test -fuzz=FuzzSeqAgainstMap -fuzztime=30s ./internal/ds/skiplist/
