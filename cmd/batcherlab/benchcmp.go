package main

// benchcmp compares two BENCH_*.json documents (as written by the
// benchjson subcommand) and fails when a selected benchmark's ns/op
// regressed past a ratio threshold. The nightly-bench workflow runs it
// with the committed BENCH_sched.json as baseline, so a >25% slowdown
// of the real-runtime BATCHER benchmark fails the job.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// loadBenchDoc reads a benchjson document. It accepts both formats the
// subcommand writes: a single pretty-printed JSON object, or a JSONL
// trajectory (one compact object per line, from -append) — in which
// case the last line is the document compared.
func loadBenchDoc(path string) (map[string]benchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]benchResult
	if err := json.Unmarshal(raw, &doc); err == nil {
		return doc, nil
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		line := strings.TrimSpace(lines[i])
		if line == "" {
			continue
		}
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			return nil, fmt.Errorf("%s: not a benchjson document or JSONL trajectory: %w", path, err)
		}
		return doc, nil
	}
	return nil, fmt.Errorf("%s: empty", path)
}

// benchRegressions compares every baseline benchmark matching re
// against current and returns one message per regression (current
// ns/op more than maxRatio times baseline). Matching nothing is an
// error — a renamed benchmark must not silently disarm the gate.
func benchRegressions(baseline, current map[string]benchResult, re *regexp.Regexp, maxRatio float64) ([]string, error) {
	var regressions []string
	matched := 0
	for name, base := range baseline {
		if !re.MatchString(name) {
			continue
		}
		cur, ok := current[name]
		if !ok {
			return nil, fmt.Errorf("benchmark %q in baseline but missing from current run", name)
		}
		matched++
		if base.NsPerOp <= 0 {
			return nil, fmt.Errorf("benchmark %q has non-positive baseline ns/op %v", name, base.NsPerOp)
		}
		ratio := cur.NsPerOp / base.NsPerOp
		if ratio > maxRatio {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx > %.2fx allowed)",
				name, cur.NsPerOp, base.NsPerOp, ratio, maxRatio))
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no baseline benchmark matches %q", re)
	}
	return regressions, nil
}

// benchcmpCmd implements the benchcmp subcommand.
func benchcmpCmd(args []string) {
	fs := flag.NewFlagSet("benchcmp", flag.ExitOnError)
	baselinePath := fs.String("baseline", "BENCH_sched.json", "baseline benchjson document")
	currentPath := fs.String("current", "", "current benchjson document (required)")
	benchRe := fs.String("bench", "Fig5Real.*BATCHER", "regexp selecting the gated benchmarks")
	maxRatio := fs.Float64("max-ratio", 1.25, "fail when current/baseline ns/op exceeds this")
	fs.Parse(args)
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -current is required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	baseline, err := loadBenchDoc(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	current, err := loadBenchDoc(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	regressions, err := benchRegressions(baseline, current, re, *maxRatio)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchcmp: REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcmp: no regressions (%s vs %s, gate %.2fx on %s)\n",
		*currentPath, *baselinePath, *maxRatio, *benchRe)
}
