// Goroutines: the paper's Section 8 extension — a conventionally
// threaded program (here: plain goroutines, standing in for pthreads)
// whose data-structure calls go through BATCHER, while work stealing
// operates over the batches.
//
// A pool of producer goroutines runs an event-processing loop: each
// event updates a shared batched 2-3 tree (event id -> payload) and a
// shared batched counter, via blocking Invoke calls. No producer knows
// anything about fork-join; the batching server groups their concurrent
// calls and executes each structure's parallel BOP on its workers. The
// final state is verified against a mutex-guarded oracle maintained by
// the same producers.
//
// Run:
//
//	go run ./examples/goroutines
package main

import (
	"fmt"
	"log"
	"sync"

	"batcher"
	"batcher/internal/ds/counter"
	"batcher/internal/ds/tree23"
	"batcher/internal/rng"
)

func main() {
	const (
		producers = 12
		perEvents = 2_000
		workers   = 4
	)
	srv := batcher.NewServer(batcher.ServerConfig{Workers: workers, Seed: 5})
	tree := tree23.NewBatched()
	events := counter.New(0)

	var (
		oracleMu sync.Mutex
		oracle   = map[int64]int64{}
	)

	var wg sync.WaitGroup
	for pid := 0; pid < producers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			r := rng.New(uint64(pid) + 1)
			for i := 0; i < perEvents; i++ {
				id := r.Int63() % 10_000
				payload := int64(pid)<<32 | int64(i)

				// Two BATCHER calls per event, from a plain goroutine.
				srv.Invoke(&batcher.OpRecord{
					DS: tree, Kind: tree23.OpInsert, Key: id, Val: payload,
				})
				srv.Invoke(&batcher.OpRecord{
					DS: events, Kind: counter.OpIncrement, Val: 1,
				})

				oracleMu.Lock()
				oracle[id] = payload // note: oracle order may differ per key
				oracleMu.Unlock()
			}
		}(pid)
	}
	wg.Wait()
	srv.Close()

	if events.Value() != producers*perEvents {
		log.Fatalf("event counter = %d, want %d", events.Value(), producers*perEvents)
	}
	if tree.Tree().Len() != len(oracle) {
		log.Fatalf("tree has %d keys, oracle %d", tree.Tree().Len(), len(oracle))
	}
	for _, k := range tree.Tree().Keys() {
		if _, ok := oracle[k]; !ok {
			log.Fatalf("tree key %d missing from oracle", k)
		}
	}

	m := srv.Metrics()
	fmt.Printf("%d goroutines processed %d events (2 BATCHER calls each)\n",
		producers, producers*perEvents)
	fmt.Printf("distinct event ids: %d; scheduler: %s\n", len(oracle), m.String())
	fmt.Printf("batched tree and counter agree with the mutex oracle ✓\n")
}
