package simds

import (
	"testing"

	"batcher/internal/sim"
)

func opsWithRecords(n, records int) []*sim.Op {
	ops := make([]*sim.Op, n)
	for i := range ops {
		ops[i] = &sim.Op{Records: records}
	}
	return ops
}

func TestLg(t *testing.T) {
	cases := map[int64]int32{0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1 << 20: 20}
	for n, want := range cases {
		if got := lg(n); got != want {
			t.Fatalf("lg(%d) = %d want %d", n, got, want)
		}
	}
}

func TestCounterModelShape(t *testing.T) {
	g := sim.NewGraph(64)
	ops := opsWithRecords(8, 1)
	e, x := Counter{}.BuildBOP(g, ops)
	if e == x {
		t.Fatal("degenerate dag")
	}
	// Two fork-joins over 8 unit leaves: work = 2*(8 + 14) = 44.
	if g.Work() != 44 {
		t.Fatalf("work=%d", g.Work())
	}
	if s := g.Span(); s != 14 {
		t.Fatalf("span=%d", s)
	}
	if got := (Counter{}).SeqCost(&sim.Op{Records: 7}); got != 7 {
		t.Fatalf("SeqCost=%d", got)
	}
}

func TestSkipListModelGrowsAndScales(t *testing.T) {
	m := &SkipList{Size: 1 << 20}
	g := sim.NewGraph(1 << 10)
	ops := opsWithRecords(4, 25) // 100 records
	m.BuildBOP(g, ops)
	if m.Size != (1<<20)+100 {
		t.Fatalf("size=%d", m.Size)
	}
	// Search work dominates: 100 leaves of weight lg(2^20)=20.
	if g.Work() < 100*20 {
		t.Fatalf("work=%d too small", g.Work())
	}
	// Larger lists must cost more per op.
	small := &SkipList{Size: 1 << 10}
	big := &SkipList{Size: 1 << 30}
	cs := small.SeqCost(&sim.Op{Records: 1})
	cb := big.SeqCost(&sim.Op{Records: 1})
	if cb <= cs {
		t.Fatalf("seq cost %d (big) <= %d (small)", cb, cs)
	}
}

func TestSkipListSeqCostTracksGrowth(t *testing.T) {
	m := &SkipList{Size: 10}
	var total int64
	for i := 0; i < 1000; i++ {
		total += m.SeqCost(&sim.Op{Records: 1})
	}
	if m.Size != 1010 {
		t.Fatalf("size=%d", m.Size)
	}
	if total < 1000*4 { // lg grows past 4 quickly
		t.Fatalf("total=%d suspiciously small", total)
	}
}

func TestTreeModel(t *testing.T) {
	m := &Tree{Size: 1 << 16}
	g := sim.NewGraph(1 << 10)
	m.BuildBOP(g, opsWithRecords(8, 1))
	if m.Size != (1<<16)+8 {
		t.Fatalf("size=%d", m.Size)
	}
	// Insert phase leaves have weight lg(2^16) = 16.
	if g.Work() < 8*16 {
		t.Fatalf("work=%d", g.Work())
	}
}

func TestStackModelAmortization(t *testing.T) {
	m := &Stack{}
	totalWork := int64(0)
	const rounds = 200
	for i := 0; i < rounds; i++ {
		g := sim.NewGraph(64)
		m.BuildBOP(g, opsWithRecords(4, 1)) // 4 pushes per batch
		totalWork += g.Work()
	}
	if m.Size != rounds*4 {
		t.Fatalf("size=%d", m.Size)
	}
	if m.Rebuilds == 0 {
		t.Fatal("no rebuilds")
	}
	// Amortized O(1) per push: total work bounded by a small multiple of
	// the 800 pushes (fork/join overhead triples it, doubling adds ~2x).
	if totalWork > 20*int64(rounds*4) {
		t.Fatalf("total work %d not amortized", totalWork)
	}
}

func TestStackPopsAndShrink(t *testing.T) {
	m := &Stack{}
	g := sim.NewGraph(1 << 12)
	m.BuildBOP(g, opsWithRecords(1, 1000)) // 1000 pushes
	if m.Size != 1000 {
		t.Fatalf("size=%d", m.Size)
	}
	capBefore := m.Cap
	pop := &sim.Op{Records: 990, Tag: StackPop}
	g2 := sim.NewGraph(1 << 12)
	m.BuildBOP(g2, []*sim.Op{pop})
	if m.Size != 10 {
		t.Fatalf("size=%d", m.Size)
	}
	if m.Cap >= capBefore {
		t.Fatalf("cap did not shrink: %d -> %d", capBefore, m.Cap)
	}
}

func TestStackSeqCostMirrorsModel(t *testing.T) {
	m := &Stack{}
	var total int64
	for i := 0; i < 100; i++ {
		total += m.SeqCost(&sim.Op{Records: 8})
	}
	if m.Size != 800 {
		t.Fatalf("size=%d", m.Size)
	}
	if m.Rebuilds == 0 {
		t.Fatal("no rebuilds on seq path")
	}
	// Pop below a quarter: shrink occurs.
	m.SeqCost(&sim.Op{Records: 700, Tag: StackPop})
	if m.Size != 100 {
		t.Fatalf("size=%d", m.Size)
	}
}

func TestUniformModel(t *testing.T) {
	g := sim.NewGraph(64)
	Uniform{Work: 5}.BuildBOP(g, opsWithRecords(4, 1))
	if g.Work() != 4*5+6 {
		t.Fatalf("work=%d", g.Work())
	}
	if got := (Uniform{Work: 5}).SeqCost(&sim.Op{Records: 3}); got != 15 {
		t.Fatalf("SeqCost=%d", got)
	}
	if got := (Uniform{}).SeqCost(&sim.Op{}); got != 1 {
		t.Fatalf("default SeqCost=%d", got)
	}
}

// TestFig5ShapeSmoke is the early end-to-end check of the headline
// experiment: batched skip-list insertion throughput must rise with P
// and, for large initial sizes, the P=8 run must beat the sequential
// baseline by a factor in the ballpark the paper reports (~3x).
func TestFig5ShapeSmoke(t *testing.T) {
	const calls, recordsPer = 200, 100 // 20k insertions
	build := func() *sim.Graph {
		g := sim.NewGraph(1 << 12)
		ops := make([]*sim.Op, calls)
		for i := range ops {
			ops[i] = &sim.Op{Records: recordsPer}
		}
		g.ForkJoinDS(ops, 1, 1)
		return g
	}
	const initial = 10_000_000
	seq := sim.SequentialTime(build(), &SkipList{Size: initial})
	t1 := sim.NewSim(sim.Config{Workers: 1, Seed: 5}, &SkipList{Size: initial}).Run(build()).Makespan
	t8 := sim.NewSim(sim.Config{Workers: 8, Seed: 5}, &SkipList{Size: initial}).Run(build()).Makespan

	// BATCHER on 1 worker is within a constant factor of SEQ (overheads
	// only) for large lists.
	if ratio := float64(t1) / float64(seq); ratio > 2.0 {
		t.Fatalf("BATCHER@1 / SEQ = %.2f; overhead not amortized on a 10M list", ratio)
	}
	// BATCHER speeds up with workers.
	if sp := float64(t1) / float64(t8); sp < 2.0 {
		t.Fatalf("speedup@8 = %.2f; expected >= 2", sp)
	}
	// BATCHER@8 beats SEQ.
	if float64(seq)/float64(t8) < 1.5 {
		t.Fatalf("BATCHER@8 only %.2fx over SEQ", float64(seq)/float64(t8))
	}
}

func TestTreeSeqCost(t *testing.T) {
	m := &Tree{Size: 1 << 16}
	got := m.SeqCost(&sim.Op{Records: 4})
	if got < 4*16 {
		t.Fatalf("SeqCost = %d", got)
	}
	if m.Size != (1<<16)+4 {
		t.Fatalf("size = %d", m.Size)
	}
}

func TestContendedCounterOpCost(t *testing.T) {
	c := ContendedCounter{}
	if got := c.OpCost(&sim.Op{Records: 3}, 4); got != 12 {
		t.Fatalf("OpCost = %d, want records*active = 12", got)
	}
	if got := c.OpCost(&sim.Op{}, 1); got != 1 {
		t.Fatalf("uncontended OpCost = %d", got)
	}
}

func TestContendedTreeOpCost(t *testing.T) {
	tr := &ContendedTree{Size: 1 << 10} // lg = 10
	// One record, no contention (active 1), default contention scale 1:
	// cost = 10 + 1 = 11.
	if got := tr.OpCost(&sim.Op{}, 1); got != 11 {
		t.Fatalf("OpCost = %d, want 11", got)
	}
	if tr.Size != (1<<10)+1 {
		t.Fatalf("size = %d", tr.Size)
	}
	// Contention raises cost linearly in active ops (fresh instances so
	// size growth does not shift the lg term between samples).
	lo := (&ContendedTree{Size: 1 << 10, Contention: 4}).OpCost(&sim.Op{}, 1)
	hi := (&ContendedTree{Size: 1 << 10, Contention: 4}).OpCost(&sim.Op{}, 8)
	if hi-lo != 4*7 {
		t.Fatalf("contention slope: %d -> %d", lo, hi)
	}
}

func TestUniformDefaultWork(t *testing.T) {
	g := sim.NewGraph(16)
	Uniform{}.BuildBOP(g, opsWithRecords(2, 1)) // Work <= 0 defaults to 1
	if g.Work() != 2*1+2 {
		t.Fatalf("work = %d", g.Work())
	}
}
