package sim

// The analytical twin: a calibrated closed-form companion to the DAG
// simulator that predicts serving latency as a function of offered
// load. Where the simulator replays the paper's cost model step by
// step, the twin collapses it to the three quantities that govern a
// batcherd shard at steady state:
//
//   - the batch service curve s(b) = SetupNS + PerOpNS·b — the wall
//     time one batch of b operations occupies the shard (the BOP span
//     plus launch/land overhead), fitted from measured (batch size,
//     exec-phase duration) pairs;
//   - the achieved batch size at arrival rate λ: trapped workers
//     accumulate arrivals while the in-flight batch runs (Invariant 1
//     admits one batch at a time), so b solves the fixed point
//     b = min(P, 1 + λ·s(b)) — Invariant 2 caps it at P;
//   - the per-operation delay envelope: Theorem 5.4 charges each
//     operation at most two batch landings of wait (Lemma 2), i.e.
//     2·s(b), on top of the queueing delay in front of the pending
//     array, modeled as an M/D/1 wait with deterministic service
//     s(b) per batch of b, plus the drain time of any standing
//     backlog.
//
// Calibration (FitModel) anchors the free constants against measured
// sweeps: the service curve by least squares over (b, s) samples, and
// the tail mapping p999 ≈ BaseNS + Tail·delay by least squares over
// (modeled delay, measured p999) points. The same Model then serves two
// consumers: `batcherlab twin` (predict/validate latency-vs-load
// curves offline) and the server's admission controller (invert the
// curve live: the largest admissible rate whose predicted p999 still
// meets the SLO). See DESIGN.md §15.

import (
	"errors"
	"fmt"
	"math"
)

// Model is a calibrated analytical twin of one shard (one scheduler
// runtime with P workers and one pending array).
type Model struct {
	// Workers is P, the shard's worker count — the Invariant 2 batch
	// size cap.
	Workers int
	// SetupNS and PerOpNS parameterize the batch service curve
	// s(b) = SetupNS + PerOpNS·b, in nanoseconds.
	SetupNS float64
	PerOpNS float64
	// BaseNS is the load-independent latency floor (wire, decode,
	// completion plumbing) folded out of the calibration points.
	BaseNS float64
	// Tail maps the modeled mean delay onto the measured p999: the
	// twin predicts p999 ≈ BaseNS + Tail·delay(λ). Calibrated by
	// FitModel; a Model built by hand should use a small constant
	// (2–4) — higher is more conservative.
	Tail float64
}

// CalPoint is one measured calibration sample: a sustained run at one
// offered rate, with the achieved mean batch size, the mean exec-phase
// duration (batch launch→land, i.e. the batch service time seen by its
// operations), and the measured end-to-end p999.
type CalPoint struct {
	RatePerSec     float64 `json:"rate_per_sec"`
	MeanBatch      float64 `json:"mean_batch"`
	MeanServiceNS  float64 `json:"mean_service_ns"`
	MeasuredP999NS float64 `json:"measured_p999_ns"`
}

// ServiceNS returns the modeled service time of one batch of b
// operations, in nanoseconds. Batch sizes below one clamp to one.
func (m Model) ServiceNS(b float64) float64 {
	if b < 1 {
		b = 1
	}
	return m.SetupNS + m.PerOpNS*b
}

// BatchSizeAt returns the achieved steady-state batch size at an
// offered rate (operations per second): the fixed point of
// b = min(P, 1 + λ·s(b)), found by iteration (the map is monotone and
// bounded, so it converges in a few steps).
func (m Model) BatchSizeAt(ratePerSec float64) float64 {
	p := float64(m.Workers)
	if p < 1 {
		p = 1
	}
	lambda := ratePerSec / 1e9 // ops per nanosecond
	b := 1.0
	for i := 0; i < 64; i++ {
		next := 1 + lambda*m.ServiceNS(b)
		if next > p {
			next = p
		}
		if math.Abs(next-b) < 1e-9 {
			b = next
			break
		}
		b = next
	}
	return b
}

// CapacityOpsPerSec returns the shard's modeled saturation throughput:
// full batches of P operations back to back, P/s(P) scaled to ops/sec.
func (m Model) CapacityOpsPerSec() float64 {
	p := float64(m.Workers)
	if p < 1 {
		p = 1
	}
	s := m.ServiceNS(p)
	if s <= 0 {
		return math.Inf(1)
	}
	return p / s * 1e9
}

// Utilization returns λ/μ at the offered rate: the fraction of the
// shard's batch-service capacity the rate consumes (≥1 means the
// queue grows without bound).
func (m Model) Utilization(ratePerSec float64) float64 {
	b := m.BatchSizeAt(ratePerSec)
	s := m.ServiceNS(b)
	if s <= 0 {
		return 0
	}
	mu := b / s * 1e9 // ops per second through batches of size b
	if mu <= 0 {
		return math.Inf(1)
	}
	return ratePerSec / mu
}

// QueueWaitNS returns the modeled steady-state queueing delay in front
// of the pending array at the offered rate: an M/D/1 wait with
// deterministic service s(b) per batch, ρ·s(b)/(2(1−ρ)). Infinite at
// or past saturation.
func (m Model) QueueWaitNS(ratePerSec float64) float64 {
	rho := m.Utilization(ratePerSec)
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho < 0 {
		rho = 0
	}
	s := m.ServiceNS(m.BatchSizeAt(ratePerSec))
	return rho * s / (2 * (1 - rho))
}

// DelayNS returns the modeled mean per-operation delay at the offered
// rate with a standing backlog of queued operations: the Theorem 5.4
// batch-delay envelope (at most two batch landings, 2·s(b), by
// Lemma 2) plus the M/D/1 queueing wait plus the time to drain the
// backlog at the achieved batch throughput.
func (m Model) DelayNS(ratePerSec float64, backlog int) float64 {
	b := m.BatchSizeAt(ratePerSec)
	s := m.ServiceNS(b)
	w := m.QueueWaitNS(ratePerSec)
	if math.IsInf(w, 1) {
		return w
	}
	drain := 0.0
	if backlog > 0 && b > 0 {
		drain = float64(backlog) * s / b
	}
	return 2*s + w + drain
}

// PredictP999NS predicts the end-to-end p999 latency at the offered
// rate with a standing backlog: BaseNS + Tail·delay. Infinite at or
// past saturation (the queue diverges; any finite number would be a
// lie).
func (m Model) PredictP999NS(ratePerSec float64, backlog int) float64 {
	tail := m.Tail
	if tail < 1 {
		tail = 1
	}
	d := m.DelayNS(ratePerSec, backlog)
	if math.IsInf(d, 1) {
		return d
	}
	return m.BaseNS + tail*d
}

// MaxAdmissibleRate inverts the prediction: the largest offered rate
// (ops/sec) whose predicted p999, with the given standing backlog,
// stays at or below sloNS. PredictP999NS is monotone non-decreasing in
// the rate, so a bisection over (0, capacity) finds it. Returns 0 when
// even an idle shard misses the SLO (the backlog alone blows it).
func (m Model) MaxAdmissibleRate(sloNS float64, backlog int) float64 {
	if m.PredictP999NS(0, backlog) > sloNS {
		return 0
	}
	lo, hi := 0.0, m.CapacityOpsPerSec()
	if math.IsInf(hi, 1) {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.PredictP999NS(mid, backlog) <= sloNS {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// String summarizes the fitted model.
func (m Model) String() string {
	return fmt.Sprintf(
		"twin{P=%d s(b)=%.0f%+.0f·b ns base=%.0fns tail=%.2f capacity=%.0f ops/s}",
		m.Workers, m.SetupNS, m.PerOpNS, m.BaseNS, m.Tail, m.CapacityOpsPerSec())
}

// FitModel calibrates a Model from measured sweep points. The service
// curve comes from least squares over (MeanBatch, MeanServiceNS); the
// tail mapping from least squares of MeasuredP999NS against the
// modeled delay at each point's rate. Degenerate inputs (one point,
// identical batch sizes, a flat or inverted p999 trend) fall back to
// proportional-service and mean-anchored estimates rather than
// failing: a rough twin that tracks the calibration data beats no
// twin. At least one point with positive rate and service is required.
func FitModel(workers int, pts []CalPoint) (Model, error) {
	if workers < 1 {
		workers = 1
	}
	m := Model{Workers: workers}
	var used []CalPoint
	for _, p := range pts {
		if p.RatePerSec > 0 && p.MeanServiceNS > 0 && p.MeanBatch >= 1 {
			used = append(used, p)
		}
	}
	if len(used) == 0 {
		return m, errors.New("sim: FitModel needs at least one point with positive rate, batch size, and service time")
	}

	m.SetupNS, m.PerOpNS = fitServiceCurve(used)

	// Tail mapping: p999_i ≈ BaseNS + Tail·x_i where x_i is the
	// modeled delay at point i's rate (no standing backlog during a
	// paced calibration run). The least squares is weighted by 1/y²,
	// i.e. it minimizes RELATIVE error: a sweep's near-capacity points
	// are an order of magnitude above its low-load points, and an
	// absolute fit would buy accuracy at the knee by overshooting the
	// whole admissible region — exactly where admission control reads
	// the curve.
	var sw, sx, sy, sxx, sxy, n float64
	for _, p := range used {
		x := m.DelayNS(p.RatePerSec, 0)
		if math.IsInf(x, 1) || p.MeasuredP999NS <= 0 {
			continue
		}
		w := 1 / (p.MeasuredP999NS * p.MeasuredP999NS)
		n++
		sw += w
		sx += w * x
		sy += w * p.MeasuredP999NS
		sxx += w * x * x
		sxy += w * x * p.MeasuredP999NS
	}
	const maxTail = 64
	if n >= 2 {
		det := sw*sxx - sx*sx
		if det > 1e-6*sxx*sw {
			m.Tail = (sw*sxy - sx*sy) / det
			m.BaseNS = (sy - m.Tail*sx) / sw
			if m.BaseNS < 0 && sxx > 0 {
				// A negative intercept is unphysical; refit the slope
				// through the origin rather than clamping, which would
				// shift every low-load prediction up by the clamp.
				m.BaseNS = 0
				m.Tail = sxy / sxx
			}
		}
	}
	if m.Tail < 1 || m.Tail > maxTail || math.IsNaN(m.Tail) {
		// Flat, inverted, or single-point trend: anchor on the mean
		// ratio instead, so the fit still passes through the cloud.
		m.Tail = 1
		m.BaseNS = 0
		if n > 0 && sx > 0 {
			if r := sy / sx; r > 1 && r <= maxTail {
				m.Tail = r
			} else {
				m.BaseNS = (sy - sx) / sw
			}
		}
	}
	if m.BaseNS < 0 {
		m.BaseNS = 0
	}
	return m, nil
}

// fitServiceCurve least-squares s(b) = s0 + s1·b over the points,
// falling back to a proportional fit through the origin when the batch
// sizes do not spread enough to separate setup from per-op cost (the
// proportional fit overestimates s(P), which errs on the conservative
// side for capacity).
func fitServiceCurve(pts []CalPoint) (s0, s1 float64) {
	var sb, ss, sbb, sbs, n float64
	for _, p := range pts {
		n++
		sb += p.MeanBatch
		ss += p.MeanServiceNS
		sbb += p.MeanBatch * p.MeanBatch
		sbs += p.MeanBatch * p.MeanServiceNS
	}
	det := n*sbb - sb*sb
	if n >= 2 && det > 1e-6*sbb*n {
		s1 = (n*sbs - sb*ss) / det
		s0 = (ss - s1*sb) / n
		if s0 >= 0 && s1 >= 0 && (s0 > 0 || s1 > 0) {
			return s0, s1
		}
	}
	// Proportional fallback: s(b) = (mean service / mean batch)·b.
	if sb > 0 {
		return 0, ss / sb
	}
	return 0, ss / n
}

// Fitter accumulates (batch size, batch service time) samples into an
// exponentially decayed least-squares fit of the service curve — the
// live half of calibration. The server's admission sampler feeds it
// per-tick histogram deltas; Params hands the current curve to a
// Model. The decay keeps roughly the last ~50 samples relevant, so the
// curve tracks workload shifts within a few seconds at typical tick
// rates. Not safe for concurrent use; each shard's sampler owns one.
type Fitter struct {
	n, sb, ss, sbb, sbs float64
}

// fitterDecay is the per-sample forgetting factor (~50-sample memory).
const fitterDecay = 0.98

// Add records one (mean batch size, mean batch service ns) sample.
func (f *Fitter) Add(batch, serviceNS float64) {
	if batch < 1 || serviceNS <= 0 {
		return
	}
	f.n = f.n*fitterDecay + 1
	f.sb = f.sb*fitterDecay + batch
	f.ss = f.ss*fitterDecay + serviceNS
	f.sbb = f.sbb*fitterDecay + batch*batch
	f.sbs = f.sbs*fitterDecay + batch*serviceNS
}

// Samples returns the effective (decayed) sample count.
func (f *Fitter) Samples() float64 { return f.n }

// Params returns the fitted service curve. ok is false until enough
// samples accumulated to trust any fit (the caller should admit
// everything during cold start rather than act on noise).
func (f *Fitter) Params() (s0, s1 float64, ok bool) {
	if f.n < 3 {
		return 0, 0, false
	}
	det := f.n*f.sbb - f.sb*f.sb
	if det > 1e-6*f.sbb*f.n {
		s1 = (f.n*f.sbs - f.sb*f.ss) / det
		s0 = (f.ss - s1*f.sb) / f.n
		if s0 >= 0 && s1 >= 0 && (s0 > 0 || s1 > 0) {
			return s0, s1, true
		}
	}
	if f.sb > 0 {
		return 0, f.ss / f.sb, true
	}
	return 0, 0, false
}
