// Package sched implements a user-level fork-join work-stealing runtime
// extended with the BATCHER scheduler of Agrawal et al. (SPAA 2014),
// "Provably Good Scheduling for Parallel Programs that Use Data Structures
// through Implicit Batching".
//
// The runtime owns P workers (goroutines). Each worker maintains two
// Chase–Lev deques — a core deque for tasks of the enclosing program and a
// batch deque for tasks of the currently executing batched data-structure
// operation — plus a work-status flag and a dedicated slot in the global
// size-P pending array, exactly as in Section 4 of the paper:
//
//   - A free worker executes nodes from whichever of its deques is
//     nonempty; when both are empty it steals from a random victim under
//     the alternating-steal policy (even attempts target core deques, odd
//     attempts target batch deques).
//   - When a worker executes a data-structure node (a call to Batchify),
//     it publishes an operation record in pending[p], sets its status to
//     pending, and becomes trapped: it re-enters the scheduler loop on its
//     own stack and executes only batch work until its record's status
//     becomes done. If no batch is executing, a trapped worker launches
//     one by CASing the global batch flag and injecting the LaunchBatch
//     task at the bottom of its batch deque.
//   - LaunchBatch acknowledges pending records (pending→executing),
//     compacts them into the working set, calls the data structure's
//     batched operation (BOP), marks participants done, and resets the
//     flag. At most one batch is active at a time (Invariant 1) and a
//     batch contains at most P operations (Invariant 2), one per worker.
//
// Suspension at a data-structure node is implemented by nested scheduling
// on the worker's own stack (the same mechanism Cilk uses for helper
// locks): the blocked core task's frame simply stays on the stack while
// the worker processes batch work, and control returns to it when the
// status flips to done. This preserves the paper's semantics — the worker
// that encounters a data-structure node is the worker that resumes it.
package sched

import (
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"batcher/internal/deque"
	"batcher/internal/rng"
)

// Kind classifies tasks per Invariant 3: core-dag nodes go on core deques,
// batch-dag nodes on batch deques.
type Kind uint8

const (
	// KindCore marks tasks belonging to the enclosing program's dag.
	KindCore Kind = iota
	// KindBatch marks tasks belonging to a batch dag (including the
	// scheduler's own LaunchBatch setup/cleanup work).
	KindBatch
)

// Status is a worker's work-status flag (Section 4).
type Status int32

const (
	// StatusFree means the worker has no suspended data-structure node.
	StatusFree Status = iota
	// StatusPending means the worker's operation record is in the pending
	// array, awaiting incorporation into a batch.
	StatusPending
	// StatusExecuting means the record is in the working set of the
	// currently executing batch.
	StatusExecuting
	// StatusDone means the batch containing the record has completed but
	// the worker has not yet resumed the suspended node.
	StatusDone
)

func (s Status) String() string {
	switch s {
	case StatusFree:
		return "free"
	case StatusPending:
		return "pending"
	case StatusExecuting:
		return "executing"
	case StatusDone:
		return "done"
	}
	return "invalid"
}

// Task is a unit of schedulable work: a closure plus the join counter it
// reports completion to and the deque kind it must be scheduled on.
type Task struct {
	fn   func(*Ctx)
	join *join
	kind Kind
}

// join is a fork-join completion counter. done may be non-nil for the
// root task, where completion must wake the submitting goroutine.
type join struct {
	pending atomic.Int32
	done    chan struct{}
}

func (j *join) finish() {
	if j == nil {
		return
	}
	if j.pending.Add(-1) == 0 && j.done != nil {
		close(j.done)
	}
}

// Config configures a Runtime.
type Config struct {
	// Workers is P, the number of scheduler workers. Defaults to
	// GOMAXPROCS(0) if zero.
	Workers int
	// Seed seeds the per-worker victim-selection RNGs.
	Seed uint64
	// StealPolicy selects the steal policy for *free* workers; trapped
	// workers always steal from batch deques, per the paper. The default
	// is AlternatingSteal, the policy the analysis requires.
	StealPolicy StealPolicy
}

// StealPolicy selects which deque a free worker targets on its k-th steal
// attempt. Non-default policies exist only for the ablation experiments.
type StealPolicy uint8

const (
	// AlternatingSteal is the paper's policy: even attempts steal from the
	// victim's core deque, odd attempts from its batch deque.
	AlternatingSteal StealPolicy = iota
	// CoreOnlySteal always targets core deques (ablation; starves batches).
	CoreOnlySteal
	// BatchOnlySteal always targets batch deques (ablation; starves core).
	BatchOnlySteal
	// RandomDequeSteal picks core or batch uniformly at random.
	RandomDequeSteal
)

// Runtime is a P-worker BATCHER scheduler instance. Create with New, then
// call Run with a root function; Run may be called repeatedly (serially).
type Runtime struct {
	cfg     Config
	workers []*worker

	// batchFlag is the global batch-status flag: 1 while a batch is
	// executing (between a successful launch CAS and LaunchBatch's final
	// reset), 0 otherwise.
	batchFlag atomic.Int32

	// pending is the size-P pending array; pending[i] is worker i's slot.
	pending []atomic.Pointer[OpRecord]

	stop atomic.Bool
	wg   sync.WaitGroup

	// running guards against overlapping Run calls.
	running atomic.Bool

	// batchesActive counts currently executing batches; it exists only to
	// check Invariant 1 in tests and is maintained unconditionally
	// because it is two atomic adds per batch.
	batchesActive atomic.Int32

	// aborting is set when a task panicked; workers unwind instead of
	// waiting on joins that can no longer complete, and Run re-panics
	// with the first cause. The runtime is unusable afterwards.
	aborting atomic.Bool
	panicMu  sync.Mutex
	panicVal any
	panicked bool

	metrics Metrics
}

// abortSignal is the sentinel panic value used to unwind worker stacks
// once a real panic has been recorded.
type abortSignal struct{}

// recordPanic stores the first non-sentinel panic value and flips the
// runtime into the aborting state.
func (rt *Runtime) recordPanic(v any) {
	rt.panicMu.Lock()
	if !rt.panicked {
		rt.panicked = true
		rt.panicVal = v
	}
	rt.panicMu.Unlock()
	rt.aborting.Store(true)
}

// checkAbort unwinds the calling worker's stack if the runtime is
// aborting. It must only be called from scheduler wait loops (never with
// external locks held).
func (rt *Runtime) checkAbort() {
	if rt.aborting.Load() {
		panic(abortSignal{})
	}
}

// New creates a runtime with the given configuration.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = goruntime.GOMAXPROCS(0)
	}
	rt := &Runtime{
		cfg:     cfg,
		pending: make([]atomic.Pointer[OpRecord], cfg.Workers),
	}
	rt.workers = make([]*worker, cfg.Workers)
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	for i := range rt.workers {
		rt.workers[i] = &worker{
			id:    i,
			rt:    rt,
			core:  deque.New[Task](),
			batch: deque.New[Task](),
			rng:   rng.New(seed + uint64(i)*0x2545f4914f6cdd1d),
		}
	}
	return rt
}

// Workers returns P, the number of workers.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Run executes root to completion on the runtime's workers and returns.
// root runs as a core-dag task. Run must not be called concurrently with
// itself on the same Runtime.
func (rt *Runtime) Run(root func(*Ctx)) {
	if !rt.running.CompareAndSwap(false, true) {
		panic("sched: concurrent Run calls on the same Runtime")
	}
	defer rt.running.Store(false)

	rt.stop.Store(false)
	j := &join{done: make(chan struct{})}
	j.pending.Store(1)
	rt.workers[0].core.PushBottom(&Task{fn: root, join: j, kind: KindCore})

	rt.wg.Add(len(rt.workers))
	for _, w := range rt.workers {
		go w.loop()
	}
	<-j.done
	rt.stop.Store(true)
	rt.wg.Wait()

	if rt.aborting.Load() {
		// A task panicked: every worker has unwound; surface the first
		// cause to the caller. The runtime must not be reused.
		panic(rt.panicVal)
	}

	// Sanity: a completed run must leave no residue.
	if rt.batchFlag.Load() != 0 {
		panic("sched: batch flag set after Run completed")
	}
	for i := range rt.pending {
		if rt.pending[i].Load() != nil {
			panic("sched: pending record left after Run completed")
		}
	}
}

// worker is one of the P scheduler workers.
type worker struct {
	id    int
	rt    *Runtime
	core  *deque.Deque[Task]
	batch *deque.Deque[Task]
	rng   *rng.Rand

	// status is the work-status flag, read by LaunchBatch on any worker.
	status atomic.Int32

	// stealK counts steal attempts for the alternating policy.
	stealK uint64

	// backoffFails counts consecutive failed steal attempts, to pace
	// spinning (this host may have fewer CPUs than workers).
	backoffFails int

	m WorkerMetrics
}

func (w *worker) dequeFor(k Kind) *deque.Deque[Task] {
	if k == KindBatch {
		return w.batch
	}
	return w.core
}

func (w *worker) isFree() bool { return Status(w.status.Load()) == StatusFree }

// loop is the main scheduling loop for a (free) worker, per Figure 3.
// Free workers execute any node; they prefer their own deques and steal
// only when both are empty.
func (w *worker) loop() {
	defer w.rt.wg.Done()
	for !w.rt.stop.Load() && !w.rt.aborting.Load() {
		if t := w.batch.PopBottom(); t != nil {
			w.runTask(t)
			continue
		}
		if t := w.core.PopBottom(); t != nil {
			w.runTask(t)
			continue
		}
		if !w.stealAndRun(false) {
			w.backoff()
		}
	}
}

// testHookTaskRun, when non-nil, observes every task execution with the
// running worker's status at entry. Tests use it to verify scheduling
// invariants (e.g. trapped workers execute only batch work). It must be
// set before any Run and never during one.
var testHookTaskRun func(kind Kind, status Status)

// runTask executes t and reports completion to its join. Panics from the
// task body are recorded (first cause wins) and converted into the
// runtime's aborting state so that every worker unwinds instead of
// waiting on joins that will never complete; the join is finished either
// way so waiters unblock.
func (w *worker) runTask(t *Task) {
	w.m.TasksRun++
	if testHookTaskRun != nil {
		testHookTaskRun(t.kind, Status(w.status.Load()))
	}
	defer t.join.finish()
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortSignal); !isAbort {
				w.rt.recordPanic(r)
			}
		}
	}()
	ctx := Ctx{w: w, kind: t.kind}
	t.fn(&ctx)
}

// stealAndRun makes one steal attempt and runs the stolen task if any.
// It returns true on a successful steal. The deque targeted follows the
// paper's rules: trapped workers steal only from batch deques; free
// workers follow the configured policy (alternating by default).
// batchOnly additionally restricts the attempt to batch deques, used by
// workers waiting at joins inside batch tasks (see helpWhileWaiting).
func (w *worker) stealAndRun(batchOnly bool) bool {
	t := w.stealOnce(batchOnly)
	if t == nil {
		return false
	}
	w.runTask(t)
	return true
}

func (w *worker) stealOnce(batchOnly bool) *Task {
	rt := w.rt
	if len(rt.workers) == 1 {
		// No victims; count the attempt so metrics stay meaningful.
		w.m.FailedSteals++
		return nil
	}
	victim := rt.workers[w.rng.Intn(len(rt.workers))]
	if victim == w {
		victim = rt.workers[(victim.id+1)%len(rt.workers)]
	}

	var d *deque.Deque[Task]
	trapped := !w.isFree()
	if trapped || batchOnly {
		d = victim.batch
		if trapped {
			w.m.TrappedStealAttempts++
		} else {
			w.m.FreeStealAttempts++
		}
	} else {
		w.stealK++
		switch rt.cfg.StealPolicy {
		case CoreOnlySteal:
			d = victim.core
		case BatchOnlySteal:
			d = victim.batch
		case RandomDequeSteal:
			if w.rng.Bool() {
				d = victim.core
			} else {
				d = victim.batch
			}
		default: // AlternatingSteal
			if w.stealK%2 == 0 {
				d = victim.core
			} else {
				d = victim.batch
			}
		}
		w.m.FreeStealAttempts++
	}

	t := d.Steal()
	if t == nil {
		w.m.FailedSteals++
		return nil
	}
	w.m.SuccessfulSteals++
	w.backoffFails = 0
	return t
}

// backoff paces a worker that failed to find work. The runtime may have
// more workers than physical CPUs (this repository's experiments run on a
// single-CPU host), so failed thieves must yield aggressively or they
// starve the workers holding actual work.
func (w *worker) backoff() {
	w.backoffFails++
	switch {
	case w.backoffFails < 4:
		goruntime.Gosched()
	case w.backoffFails < 64:
		time.Sleep(time.Microsecond)
	default:
		time.Sleep(50 * time.Microsecond)
	}
}
