package experiments

import (
	"sync"
	"time"

	"batcher/internal/concurrent"
	"batcher/internal/ds/counter"
	"batcher/internal/ds/skiplist"
	"batcher/internal/flatcombine"
	"batcher/internal/rng"
	"batcher/internal/sched"
	"batcher/internal/stats"
)

// The real-runtime experiments exercise the goroutine-based BATCHER
// scheduler end to end with wall-clock timing. On this repository's
// single-CPU host they measure overheads and correctness rather than
// parallel speedup (the simulator covers scaling); the harness still
// sweeps P so that multi-core hosts reproduce the full figure.

// RealSkipListConfig parameterizes the wall-clock skip-list experiment.
type RealSkipListConfig struct {
	// Calls is the number of data-structure calls; RecordsPer the keys
	// per call (the paper's 100).
	Calls, RecordsPer int
	// Initial is the pre-populated list size.
	Initial int
	// Workers is P for the engines that take it.
	Workers int
	// Seed fixes keys and skip-list heights.
	Seed uint64
}

// prepKeys generates the per-call key groups and the initial keys.
func prepKeys(cfg RealSkipListConfig) (initial []int64, groups [][]int64) {
	r := rng.New(cfg.Seed)
	initial = make([]int64, cfg.Initial)
	for i := range initial {
		initial[i] = r.Int63()
	}
	groups = make([][]int64, cfg.Calls)
	for g := range groups {
		ks := make([]int64, cfg.RecordsPer)
		for i := range ks {
			ks[i] = r.Int63()
		}
		groups[g] = ks
	}
	return initial, groups
}

// RealSkipListBatcher times BATCHER executing the Figure 1-style loop of
// InsertMany calls and returns the duration of the timed region.
func RealSkipListBatcher(cfg RealSkipListConfig) time.Duration {
	initial, groups := prepKeys(cfg)
	b := skiplist.NewBatched(cfg.Seed)
	for _, k := range initial {
		b.List().Insert(k, 0)
	}
	rt := sched.New(sched.Config{Workers: cfg.Workers, Seed: cfg.Seed})
	start := time.Now()
	rt.Run(func(c *sched.Ctx) {
		c.For(0, len(groups), 1, func(cc *sched.Ctx, i int) {
			b.InsertMany(cc, groups[i], 0)
		})
	})
	return time.Since(start)
}

// RealSkipListSeq times the sequential baseline (no concurrency
// control) inserting the same keys.
func RealSkipListSeq(cfg RealSkipListConfig) time.Duration {
	initial, groups := prepKeys(cfg)
	l := skiplist.NewList(cfg.Seed)
	for _, k := range initial {
		l.Insert(k, 0)
	}
	start := time.Now()
	for _, g := range groups {
		for _, k := range g {
			l.Insert(k, 0)
		}
	}
	return time.Since(start)
}

// RealSkipListMutex times the coarse-lock concurrent skip list driven by
// Workers goroutines.
func RealSkipListMutex(cfg RealSkipListConfig) time.Duration {
	initial, groups := prepKeys(cfg)
	m := concurrent.NewMutexSkipList(cfg.Seed)
	for _, k := range initial {
		m.Insert(k, 0)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for g := w; g < len(groups); g += cfg.Workers {
				for _, k := range groups[g] {
					m.Insert(k, 0)
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// RealSkipListFlatCombining times the flat-combined skip list driven by
// Workers goroutines.
func RealSkipListFlatCombining(cfg RealSkipListConfig) time.Duration {
	initial, groups := prepKeys(cfg)
	l := skiplist.NewList(cfg.Seed)
	for _, k := range initial {
		l.Insert(k, 0)
	}
	fc := flatcombine.New(cfg.Workers, func(r *flatcombine.Request) {
		r.Ok = l.Insert(r.Key, r.Val)
	})
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := &flatcombine.Request{}
			for g := w; g < len(groups); g += cfg.Workers {
				for _, k := range groups[g] {
					req.Key, req.Val = k, 0
					fc.Do(w, req)
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// RealSkipList runs all four engines at the given config and returns a
// throughput table (inserts per millisecond).
func RealSkipList(cfg RealSkipListConfig) *stats.Table {
	records := float64(cfg.Calls * cfg.RecordsPer)
	t := stats.NewTable("engine", "duration", "inserts/ms")
	add := func(name string, d time.Duration) {
		t.AddRow(name, d.Round(time.Microsecond).String(),
			records/float64(d.Milliseconds()+1))
	}
	add("BATCHER", RealSkipListBatcher(cfg))
	add("SEQ", RealSkipListSeq(cfg))
	add("mutex", RealSkipListMutex(cfg))
	add("flat-combining", RealSkipListFlatCombining(cfg))
	return t
}

// RealCounterBatcher times n batched increments under BATCHER.
func RealCounterBatcher(p, n int, seed uint64) time.Duration {
	ctr := counter.New(0)
	rt := sched.New(sched.Config{Workers: p, Seed: seed})
	start := time.Now()
	rt.Run(func(c *sched.Ctx) {
		c.For(0, n, 1, func(cc *sched.Ctx, i int) { ctr.Increment(cc, 1) })
	})
	d := time.Since(start)
	if ctr.Value() != int64(n) {
		panic("experiments: counter total wrong")
	}
	return d
}

// RealCounterAtomic times n fetch-and-add increments from p goroutines.
func RealCounterAtomic(p, n int) time.Duration {
	ctr := concurrent.NewAtomicCounter(0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += p {
				ctr.Increment(1)
			}
		}(w)
	}
	wg.Wait()
	d := time.Since(start)
	if ctr.Value() != int64(n) {
		panic("experiments: atomic counter total wrong")
	}
	return d
}
