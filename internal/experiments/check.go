package experiments

import "fmt"

// Check is one qualitative reproduction criterion: a claim from the
// paper's evaluation (or analysis) and whether the measured data
// supports it. EXPERIMENTS.md is generated from these.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// String renders "PASS name — detail".
func (c Check) String() string {
	status := "PASS"
	if !c.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%s  %s — %s", status, c.Name, c.Detail)
}

func fmtCheck(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
