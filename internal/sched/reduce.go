package sched

// Reduce computes combine(body(lo), body(lo+1), ..., body(hi-1)) with
// binary fork-join recursion, descending to sequential folds of at most
// grain iterations. combine must be associative; identity must be its
// identity element. Work O(n·body), span O(lg n · combine).
//
// It is generic over the accumulator type so batched operations can fold
// sums, maxima, merged slices, and so on without reimplementing the
// recursion.
func Reduce[T any](c *Ctx, lo, hi, grain int, identity T,
	body func(*Ctx, int) T, combine func(a, b T) T) T {
	if grain <= 0 {
		grain = 1
	}
	return reduceRange(c, lo, hi, grain, identity, body, combine)
}

func reduceRange[T any](c *Ctx, lo, hi, grain int, identity T,
	body func(*Ctx, int) T, combine func(a, b T) T) T {
	if hi-lo <= grain {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, body(c, i))
		}
		return acc
	}
	mid := lo + (hi-lo)/2
	var left, right T
	c.Fork(
		func(cc *Ctx) { left = reduceRange(cc, lo, mid, grain, identity, body, combine) },
		func(cc *Ctx) { right = reduceRange(cc, mid, hi, grain, identity, body, combine) },
	)
	return combine(left, right)
}

// SumInt64 is Reduce specialized to int64 addition.
func SumInt64(c *Ctx, lo, hi, grain int, body func(*Ctx, int) int64) int64 {
	return Reduce(c, lo, hi, grain, 0, body,
		func(a, b int64) int64 { return a + b })
}

// MaxInt64 is Reduce specialized to int64 maximum; it returns identity
// for an empty range.
func MaxInt64(c *Ctx, lo, hi, grain int, identity int64, body func(*Ctx, int) int64) int64 {
	return Reduce(c, lo, hi, grain, identity, body,
		func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
}
