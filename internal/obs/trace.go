package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// EventKind classifies scheduler trace events. The set mirrors the
// quantities the paper's bound (Theorem 5.4 in the conference numbering
// used by ISSUE/EXPERIMENTS; Theorem 1 in DESIGN.md) makes load-bearing:
// batch launches and landings (s and the batch-size distribution),
// steals (the O(s·log P) steal-bound term), parks/wakes (idle time), and
// the serving layer's admission decisions.
type EventKind uint8

const (
	// EvNone marks an unused slot; Snapshot never returns it.
	EvNone EventKind = iota
	// EvBatchLaunch: a trapped worker won the launch CAS. Ring = worker.
	EvBatchLaunch
	// EvBatchLand: a LaunchBatch body completed a nonempty batch on this
	// ring's worker. A = batch size (ops), B = batch duration in ns.
	EvBatchLand
	// EvSteal: a successful steal. A = victim worker id, B = 0 for a
	// core-deque steal, 1 for a batch-deque steal.
	EvSteal
	// EvPark: the worker exhausted its idle spin budget and parked.
	EvPark
	// EvWake: the worker returned from a park.
	EvWake
	// EvPumpAdmit: Pump.Submit accepted an external operation (recorded
	// on the external ring — submitters are not workers). A = resulting
	// ingress-queue depth.
	EvPumpAdmit
	// EvPumpReject: Pump.Submit refused an operation. A = 1 when the
	// ingress queue was saturated, 2 when the pump was closed.
	EvPumpReject
	// EvPanicContained: a batch group's BOP panicked and was contained.
	// A = group index within its batch.
	EvPanicContained

	evKinds // count; keep last
)

func (k EventKind) String() string {
	switch k {
	case EvBatchLaunch:
		return "batch-launch"
	case EvBatchLand:
		return "batch-land"
	case EvSteal:
		return "steal"
	case EvPark:
		return "park"
	case EvWake:
		return "wake"
	case EvPumpAdmit:
		return "pump-admit"
	case EvPumpReject:
		return "pump-reject"
	case EvPanicContained:
		return "panic-contained"
	}
	return "invalid"
}

// Event is one decoded trace event.
type Event struct {
	// TS is nanoseconds since the tracer was created.
	TS int64
	// Ring identifies the writer: worker id, or the external ring (the
	// last one) for events from non-worker goroutines.
	Ring int32
	// Kind is the event type; A and B are its kind-specific arguments.
	Kind EventKind
	A, B int64
}

// slot is one ring entry. Every field is an atomic so that concurrent
// writers (possible on the external ring, and on any ring across a full
// wraparound lap) and concurrent snapshot readers are race-free. seq
// holds index+1 of the event occupying the slot, 0 while a write is in
// progress; Snapshot validates seq before and after reading the fields
// and discards torn slots.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	kind atomic.Uint32
	a, b atomic.Int64
}

// ring is one writer's event ring. pos is claimed by fetch-add, so the
// record path is wait-free; old events are overwritten once the ring
// wraps (a tracer never blocks or allocates on the hot path — it
// forgets instead).
type ring struct {
	pos atomic.Uint64
	_   [120]byte // keep neighboring rings' cursors off one cache line
}

// Tracer is a set of fixed-size event rings, one per writer (the
// scheduler uses one per worker plus one shared "external" ring for
// non-worker goroutines such as network readers). Record is wait-free
// and allocation-free; Snapshot may run at any time, including while
// writers are active, and returns a time-ordered best-effort copy of
// the events still resident in the rings.
type Tracer struct {
	epoch time.Time
	mask  uint64
	size  uint64
	rings []ring
	slots [][]slot
}

// NewTracer creates a tracer with nrings rings of perRing slots each
// (rounded up to a power of two, minimum 64).
func NewTracer(nrings, perRing int) *Tracer {
	if nrings < 1 {
		nrings = 1
	}
	size := uint64(64)
	for size < uint64(perRing) {
		size <<= 1
	}
	t := &Tracer{
		epoch: time.Now(),
		mask:  size - 1,
		size:  size,
		rings: make([]ring, nrings),
		slots: make([][]slot, nrings),
	}
	for i := range t.slots {
		t.slots[i] = make([]slot, size)
	}
	return t
}

// Rings returns the number of rings (writers) the tracer was built for.
func (t *Tracer) Rings() int { return len(t.rings) }

// ExternalRing returns the index of the last ring, by convention the
// shared ring for events recorded off the scheduler's workers.
func (t *Tracer) ExternalRing() int { return len(t.rings) - 1 }

// Record appends one event to ring r. It is wait-free, never allocates,
// and never blocks: when the ring is full the oldest event is
// overwritten. Out-of-range rings are redirected to the external ring,
// so a mis-sized tracer loses attribution, not events.
func (t *Tracer) Record(r int, kind EventKind, a, b int64) {
	if t == nil {
		return
	}
	if r < 0 || r >= len(t.rings) {
		r = len(t.rings) - 1
	}
	i := t.rings[r].pos.Add(1) - 1
	s := &t.slots[r][i&t.mask]
	s.seq.Store(0)
	s.ts.Store(int64(time.Since(t.epoch)))
	s.kind.Store(uint32(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(i + 1)
}

// Len returns the total number of events recorded so far (including
// events that have since been overwritten).
func (t *Tracer) Len() int64 {
	var n int64
	for i := range t.rings {
		n += int64(t.rings[i].pos.Load())
	}
	return n
}

// Snapshot copies out every event still resident in the rings, sorted
// by timestamp. It is safe concurrently with writers: slots overwritten
// or mid-write during the scan are detected via their sequence stamps
// and skipped, so the result is a consistent sample, not a guaranteed
// prefix. Call it live (a /trace endpoint) or after the run.
func (t *Tracer) Snapshot() []Event {
	var evs []Event
	for ri := range t.rings {
		end := t.rings[ri].pos.Load()
		start := uint64(0)
		if end > t.size {
			start = end - t.size
		}
		for i := start; i < end; i++ {
			s := &t.slots[ri][i&t.mask]
			if s.seq.Load() != i+1 {
				continue // overwritten by a newer lap, or mid-write
			}
			ev := Event{
				TS:   s.ts.Load(),
				Ring: int32(ri),
				Kind: EventKind(s.kind.Load()),
				A:    s.a.Load(),
				B:    s.b.Load(),
			}
			if s.seq.Load() != i+1 || ev.Kind == EvNone || ev.Kind >= evKinds {
				continue
			}
			evs = append(evs, ev)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs
}

// CountKinds tallies a snapshot by event kind — the quick look
// batcherlab trace prints before exporting.
func CountKinds(evs []Event) map[EventKind]int {
	m := make(map[EventKind]int)
	for _, e := range evs {
		m[e.Kind]++
	}
	return m
}
