package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"testing"

	"batcher/internal/loadgen"
	"batcher/internal/obs"
	"batcher/internal/server"
)

// TestPhaseTrailerRoundTrip pins the wire extension: a FlagPhases
// response carries its stamp vector as a trailer after the payload, and
// decoding recovers both exactly. Responses without the flag keep the
// pre-phase frame layout byte for byte.
func TestPhaseTrailerRoundTrip(t *testing.T) {
	want := server.Response{
		ID:      42,
		Flags:   server.FlagOK | server.FlagPayload | server.FlagPhases,
		Key:     -7,
		Res:     99,
		Payload: []byte("stats-doc"),
	}
	for i := range want.Phases {
		want.Phases[i] = int64(1000 + 100*i)
	}
	frame := server.AppendResponse(nil, want)

	body, err := server.ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := server.DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Flags != want.Flags || got.Key != want.Key || got.Res != want.Res {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if got.Phases != want.Phases {
		t.Fatalf("phases = %v, want %v", got.Phases, want.Phases)
	}
	if string(got.Payload) != string(want.Payload) {
		t.Fatalf("payload = %q, want %q", got.Payload, want.Payload)
	}

	// Same response without FlagPhases: no trailer, legacy frame size.
	plain := want
	plain.Flags &^= server.FlagPhases
	plainFrame := server.AppendResponse(nil, plain)
	if len(plainFrame) != len(frame)-8*obs.NumPhases {
		t.Fatalf("legacy frame %d bytes, phased %d; trailer should be exactly %d",
			len(plainFrame), len(frame), 8*obs.NumPhases)
	}
}

// TestPhaseTrailerShortBuffer: a FlagPhases response whose body cannot
// hold the trailer must error, not slice out of bounds — the decoder
// faces attacker-controlled bytes (see FuzzDecodeResponse).
func TestPhaseTrailerShortBuffer(t *testing.T) {
	r := server.Response{ID: 1, Flags: server.FlagPhases}
	frame := server.AppendResponse(nil, r)
	body, err := server.ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.DecodeResponse(body[:len(body)-1]); err == nil {
		t.Fatal("truncated phase trailer decoded without error")
	}
}

// TestPhaseMetrics drives counter traffic and checks the attribution
// books: the batch-delay histogram count must equal the scheduler's own
// op count (every pump-served op is observed exactly once), every phase
// histogram must agree, and the per-phase sums must telescope to the
// measured end-to-end latency within slack.
func TestPhaseMetrics(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, Seed: 37})
	const conns, per = 8, 100
	hammer(t, s.Addr().String(), conns, per)

	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := promSamples(t, string(body))

	_, ops := s.Runtime().LiveBatchStats()
	if ops < conns*per {
		t.Fatalf("LiveBatchStats ops = %d, want >= %d", ops, conns*per)
	}
	if got := samples[`batcherd_batch_delay_ns_count{shard="0"}`]; got != float64(ops) {
		t.Fatalf("batch_delay count = %v, LiveBatchStats ops = %d", got, ops)
	}
	var phaseSum float64
	for _, name := range obs.PhaseNames {
		count := samples[`batcherd_op_phase_ns_count{phase="`+name+`",shard="0"}`]
		if count != float64(ops) {
			t.Fatalf("phase %q count = %v, want %d", name, count, ops)
		}
		phaseSum += samples[`batcherd_op_phase_ns_sum{phase="`+name+`",shard="0"}`]
	}

	// Telescope invariant: the five phase durations of an op sum to its
	// Done−Read interval, which brackets the service-latency measurement
	// (PhaseRead is stamped just before the latency clock starts, and
	// PhaseDone just after it stops). Allow 10% plus 1ms per op for
	// scheduling noise between the two clock reads.
	latSum := samples[`batcherd_service_latency_ns_sum{ds="counter"}`]
	if latSum <= 0 {
		t.Fatal("no service latency recorded")
	}
	slack := 0.10*latSum + 1e6*float64(ops)
	if math.Abs(phaseSum-latSum) > slack {
		t.Fatalf("phase sums %.0f vs latency sum %.0f: off by more than %.0f",
			phaseSum, latSum, slack)
	}

	// The exec phase is the BOP itself: it must have recorded real time.
	if samples[`batcherd_op_phase_ns_sum{phase="exec",shard="0"}`] <= 0 {
		t.Fatal("exec phase sum not positive")
	}
}

// TestSlowEndpoint checks the flight-recorder dump: /slow returns at
// most 2K ops, slowest first, each with a coherent stamp vector and the
// batch that carried it.
func TestSlowEndpoint(t *testing.T) {
	const k = 4
	s := startServer(t, server.Config{Workers: 4, Seed: 41, SlowK: k})
	hammer(t, s.Addr().String(), 8, 50)

	srv := httptest.NewServer(s.SlowHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var slow []obs.SlowOp
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	if len(slow) == 0 || len(slow) > 2*k {
		t.Fatalf("/slow returned %d ops, want 1..%d", len(slow), 2*k)
	}
	for i, op := range slow {
		if i > 0 && op.TotalNS > slow[i-1].TotalNS {
			t.Fatalf("ops not slowest-first at %d: %d after %d", i, op.TotalNS, slow[i-1].TotalNS)
		}
		for j := 1; j < obs.NumPhases; j++ {
			if op.Stamps[j] < op.Stamps[j-1] {
				t.Fatalf("op %d stamps out of order: %v", i, op.Stamps)
			}
		}
		if op.TotalNS != op.Stamps[obs.PhaseDone]-op.Stamps[obs.PhaseRead] {
			t.Fatalf("op %d TotalNS %d != Done-Read %d", i, op.TotalNS,
				op.Stamps[obs.PhaseDone]-op.Stamps[obs.PhaseRead])
		}
		if op.DS != "counter" || op.BatchSize < 1 {
			t.Fatalf("op %d bookkeeping: ds=%q batch_size=%d", i, op.DS, op.BatchSize)
		}
	}

	// SlowK < 0 disables the recorder; the endpoint must 404.
	off := startServer(t, server.Config{Workers: 2, Seed: 43, SlowK: -1})
	offSrv := httptest.NewServer(off.SlowHandler())
	defer offSrv.Close()
	r2, err := offSrv.Client().Get(offSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 404 {
		t.Fatalf("disabled /slow returned %d, want 404", r2.StatusCode)
	}
}

// TestPhaseEchoLoadgen closes the client loop: a Workload with Phases
// set receives every op's stamp vector and aggregates client-side
// batch-delay and phase histograms with one observation per response.
func TestPhaseEchoLoadgen(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, Seed: 47})
	res, err := loadgen.Run(loadgen.Workload{
		Addr: s.Addr().String(), Conns: 4, Ops: 100, Window: 8,
		DS: server.DSCounter, Seed: 5, Phases: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Responses != 400 || res.Errors != 0 {
		t.Fatalf("responses=%d errors=%d", res.Responses, res.Errors)
	}
	if res.BatchDelay == nil || res.BatchDelay.Count() != res.Responses {
		t.Fatalf("batch-delay observations = %v, want %d", res.BatchDelay, res.Responses)
	}
	for i, h := range res.Phase {
		if h.Count() != res.Responses {
			t.Fatalf("phase %q observations = %d, want %d", obs.PhaseNames[i], h.Count(), res.Responses)
		}
	}
	if res.PhaseBreakdown() == "" {
		t.Fatal("PhaseBreakdown empty for a phased run")
	}

	// Without Phases the responses must be legacy-shaped: no histograms.
	res2, err := loadgen.Run(loadgen.Workload{
		Addr: s.Addr().String(), Conns: 2, Ops: 50, Window: 8,
		DS: server.DSCounter, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.BatchDelay != nil {
		t.Fatal("unphased run aggregated batch delay")
	}
}
