package server_test

// Chaos e2e tests: a live batcherd absorbing the failures the
// containment work exists for. Each test injects one fault class —
// panicking structure, torn frame, oversized frame, slowloris reader —
// and asserts the blast radius: exactly the faulty operations or
// connection pay, everything else keeps serving, and Shutdown still
// drains cleanly (which is itself the proof that no window slot leaked).

import (
	"math"
	"sync"
	"testing"
	"time"

	"batcher/internal/faultinject"
	"batcher/internal/loadgen"
	"batcher/internal/sched"
	"batcher/internal/server"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosPanicIsolation is the headline containment test: one
// connection repeatedly triggers a panicking BOP (a fault-injected skip
// list) while three others hammer the counter. The panicking
// connection's operations must come back FlagErr; every counter
// operation must succeed; the stats must show the panics; and Shutdown
// must drain cleanly afterwards.
func TestChaosPanicIsolation(t *testing.T) {
	const poison = int64(-0xBAD)
	var panicker *faultinject.Panicker
	s, err := server.Start(server.Config{
		Workers: 4,
		Seed:    77,
		Policy:  testPolicy(t),
		WrapDS: func(_ int, ds uint8, b sched.Batched) sched.Batched {
			if ds == server.DSSkiplist {
				panicker = &faultinject.Panicker{Inner: b, Poison: poison}
				return panicker
			}
			return b
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	const (
		attackerOps = 30
		victims     = 3
		victimOps   = 200
	)
	var wg sync.WaitGroup
	errc := make(chan error, victims+1)

	wg.Add(1)
	go func() { // the attacker: every op poisons its own batch group
		defer wg.Done()
		cl, err := loadgen.Dial(addr)
		if err != nil {
			errc <- err
			return
		}
		defer cl.Close()
		for i := 0; i < attackerOps; i++ {
			r, err := cl.Do(server.Request{DS: server.DSSkiplist, Op: server.OpInsert, Key: poison, Val: 1})
			if err != nil {
				errc <- err
				return
			}
			if !r.Err() {
				t.Errorf("poisoned op %d answered without FlagErr (flags %#x)", i, r.Flags)
			}
		}
	}()
	for v := 0; v < victims; v++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := loadgen.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for i := 0; i < victimOps; i++ {
				r, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1})
				if err != nil {
					errc <- err
					return
				}
				if r.Err() {
					t.Errorf("counter op answered FlagErr; panic leaked across structures")
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The counter must have absorbed every victim increment: one final
	// increment reads the running total.
	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1})
	if err != nil || r.Err() {
		t.Fatalf("post-chaos increment: r=%+v err=%v", r, err)
	}
	if want := int64(victims*victimOps) + 1; r.Res != want {
		t.Fatalf("counter total = %d, want %d (lost increments)", r.Res, want)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if st.Failed != attackerOps {
		t.Fatalf("stats Failed = %d, want %d", st.Failed, attackerOps)
	}
	if st.BatchPanics == 0 || st.BatchPanics != panicker.Panics.Load() {
		t.Fatalf("stats BatchPanics = %d, injected %d", st.BatchPanics, panicker.Panics.Load())
	}

	// Shutdown after containment must still drain: every window slot was
	// released (FlagErr responses release them like any other), so this
	// returns rather than hanging on connWG.
	done := make(chan struct{})
	go func() { s.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung after contained panics: leaked window slots")
	}

	// Satellite invariant: once quiescent, every response was either an
	// accepted (pumped) operation or an immediate one.
	final := s.Snapshot()
	if final.Completed != final.Accepted+final.Immediate {
		t.Fatalf("books unbalanced: completed=%d accepted=%d immediate=%d",
			final.Completed, final.Accepted, final.Immediate)
	}
}

// TestStatsBooksBalance documents the accounting invariant directly:
// after a mixed workload — pumped operations, rejected garbage, stats
// reads — and a full drain, completed == accepted + immediate, with
// rejections and stats reads on the immediate side.
func TestStatsBooksBalance(t *testing.T) {
	s, err := server.Start(server.Config{Workers: 2, Seed: 11, Policy: testPolicy(t)})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := loadgen.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	const pumped, invalid, statsReads = 50, 5, 3
	for i := 0; i < pumped; i++ {
		if r, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1}); err != nil || r.Err() {
			t.Fatalf("increment %d: r=%+v err=%v", i, r, err)
		}
	}
	for i := 0; i < invalid; i++ {
		r, err := cl.Do(server.Request{DS: 9, Op: server.OpInsert}) // no such structure
		if err != nil {
			t.Fatal(err)
		}
		if !r.Err() {
			t.Fatalf("invalid ds accepted (flags %#x)", r.Flags)
		}
	}
	for i := 0; i < statsReads; i++ {
		if _, err := cl.Stats(); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	s.Shutdown()

	st := s.Snapshot()
	if st.Accepted != pumped {
		t.Fatalf("Accepted = %d, want %d", st.Accepted, pumped)
	}
	if st.Rejected != invalid {
		t.Fatalf("Rejected = %d, want %d", st.Rejected, invalid)
	}
	if st.Immediate != invalid+statsReads {
		t.Fatalf("Immediate = %d, want %d", st.Immediate, invalid+statsReads)
	}
	if st.Completed != st.Accepted+st.Immediate {
		t.Fatalf("completed=%d != accepted=%d + immediate=%d",
			st.Completed, st.Accepted, st.Immediate)
	}
	// OpsPerSec shares the same single ledger: with one shard the global
	// figure IS the shard figure, and both count only the pumped ops —
	// the immediate responses (rejections, stats reads) stay out.
	if len(st.PerShard) != 1 || st.PerShard[0].OpsPerSec != st.OpsPerSec {
		t.Fatalf("per-shard ops/s %+v does not sum to global %v", st.PerShard, st.OpsPerSec)
	}
	if up := st.UptimeSec; up > 0 {
		want := float64(pumped) / up
		if math.Abs(st.OpsPerSec-want)/want > 0.2 {
			t.Fatalf("OpsPerSec = %v, want ~%v (pumped/uptime; immediate ops must not count)",
				st.OpsPerSec, want)
		}
	}
}

// TestChaosTornAndOversizedFrames aims protocol garbage at a live
// server: a torn frame must be reaped by the idle deadline (slots
// reclaimed without Shutdown), an oversized length prefix and a
// short body must be dropped and counted as decode errors, and a
// well-behaved client must sail through it all.
func TestChaosTornAndOversizedFrames(t *testing.T) {
	s, err := server.Start(server.Config{
		Workers:     2,
		Seed:        13,
		Policy:      testPolicy(t),
		IdleTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	torn, err := faultinject.SendTornFrame(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer torn.Close()
	if err := faultinject.SendOversizedFrame(addr); err != nil {
		t.Fatal(err)
	}

	// A healthy client keeps working while the torn connection is still
	// pinned inside ReadFrame. It closes before the wait below — with a
	// 150ms idle budget the server would (correctly) reap an idle
	// healthy client too.
	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1}); err != nil || r.Err() {
		t.Fatalf("healthy op during torn-frame stall: r=%+v err=%v", r, err)
	}
	cl.Close()

	// The idle deadline must reap the torn connection on its own.
	waitFor(t, 5*time.Second, "torn connection reaped by idle deadline", func() bool {
		return s.Snapshot().Conns == 0
	})

	// A fresh client (quick, within the idle budget) reads the books.
	cl2, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	cl2.Close()
	if st.DecodeErrors < 1 {
		t.Fatalf("DecodeErrors = %d, want >= 1 (oversized frame)", st.DecodeErrors)
	}
	s.Shutdown()
}

// TestChaosSlowloris opens a connection that floods requests and never
// reads a response. The write-stall deadline must break it — releasing
// its window slots and abandoning its responses — while the server
// keeps serving and Shutdown stays prompt.
func TestChaosSlowloris(t *testing.T) {
	s, err := server.Start(server.Config{
		Workers:           2,
		Seed:              17,
		Window:            8,
		Policy:            testPolicy(t),
		WriteStallTimeout: 150 * time.Millisecond,
		DrainTimeout:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	// The write error (server tearing the connection down mid-flood) is
	// expected for large n; only the dial matters. 25k payload-bearing
	// responses (~10MB) comfortably exceed what loopback send-buffer
	// autotuning can absorb (4MB ceiling on stock Linux).
	nc, _ := faultinject.Slowloris(addr, 25000)
	if nc == nil {
		t.Fatal("slowloris dial failed")
	}
	defer nc.Close()

	waitFor(t, 10*time.Second, "slowloris connection broken by write-stall deadline", func() bool {
		return s.Snapshot().Conns == 0
	})

	// Still serving.
	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1}); err != nil || r.Err() {
		t.Fatalf("op after slowloris teardown: r=%+v err=%v", r, err)
	}
	cl.Close()

	done := make(chan struct{})
	go func() { s.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung after slowloris: leaked window slots")
	}
	final := s.Snapshot()
	if final.Completed != final.Accepted+final.Immediate {
		t.Fatalf("books unbalanced after slowloris: completed=%d accepted=%d immediate=%d",
			final.Completed, final.Accepted, final.Immediate)
	}
}
