//go:build !linux

package server

// Portable edge: without epoll, each conn keeps a dedicated reader
// goroutine (as before the reactor), but it shares the reactor's entire
// state machine — ingest, bulk submission, saturation parking, the
// refs+outN window — and the shared writer loops still coalesce
// responses across connections. Parking is a channel wait instead of an
// epoll interest toggle; idle deadlines ride on net.Conn read deadlines
// as they did pre-reactor.

import (
	"net"
	"time"

	"batcher/internal/obs"
)

// reactorRunsLoops: no loop goroutines; conns read on their own.
const reactorRunsLoops = false

// poller is unused on this platform; the field stays nil.
type poller struct{}

func (p *poller) wake() {}

func (l *rloop) initPoll() error { return nil }

// readable is a no-op here: the conn's own goroutine resumes reading
// when resumeConn unparks it.
func (l *rloop) readable(c *conn, sc *edgeScratch) {}

// registerConn starts the conn's reader goroutine.
func (s *Server) registerConn(c *conn) {
	l := c.rl
	c.resume = make(chan struct{}, 1)
	l.mu.Lock()
	l.conns[c] = struct{}{}
	l.mu.Unlock()
	go l.serveConn(c)
}

func (c *conn) setReadInterestLocked(on bool) {}

// detachLocked removes the conn from its loop's registry. Caller holds
// c.mu.
func (c *conn) detachLocked() {
	l := c.rl
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// tryWrite performs one bounded write: a short deadline keeps the
// shared writer loop from blocking on a stalled peer for more than one
// slice, while the wstart clock accumulates toward WriteStallTimeout.
func (c *conn) tryWrite(b []byte) (int, bool, error) {
	c.nc.SetWriteDeadline(time.Now().Add(blockedRetry))
	n, err := c.nc.Write(b)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return n, true, nil
		}
		return n, false, err
	}
	return n, false, nil
}

// serveConn is the per-conn reader: blocking reads feeding the shared
// ingest path, parking on the resume channel when the window fills or
// the pump saturates, and running its own deadline sweep while parked.
func (l *rloop) serveConn(c *conn) {
	s := l.s
	sc := edgeScratch{readBuf: make([]byte, 32<<10)}
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		if c.state.Load() != connOpen {
			return
		}
		if s.quitting() {
			// Park for the drain: reject parked submissions, close when
			// quiescent (the writer loop closes conns that still have
			// responses in flight; DrainTimeout force-evicts the rest).
			l.sweepQuit(c)
			if c.state.Load() != connOpen {
				return
			}
			timer.Reset(sweepInterval)
			select {
			case <-c.resume:
			case <-timer.C:
			}
			continue
		}
		c.mu.Lock()
		paused := c.paused
		c.mu.Unlock()
		if paused {
			timer.Reset(sweepInterval)
			select {
			case <-c.resume:
			case <-timer.C:
			}
			l.sweepOne(c, obs.Now())
			l.resumeConn(c, &sc)
			continue
		}
		if s.cfg.IdleTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		n, err := c.nc.Read(sc.readBuf)
		if n > 0 {
			s.readSys.Add(1)
			s.ingest(c, sc.readBuf[:n], &sc)
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if s.quitting() {
					continue // shutdown stamped the deadline to wake us
				}
				s.evict(c, evictIdle)
				return
			}
			s.evict(c, evictReadError)
			return
		}
	}
}

// wakeEdge prods every conn reader and writer loop. Used by Shutdown
// for the quit and stop transitions; the read-deadline stamp wakes
// readers blocked in Read.
func (s *Server) wakeEdge() {
	s.connMu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	now := time.Now()
	for _, c := range conns {
		c.nc.SetReadDeadline(now)
		c.rl.kick(c)
	}
	for _, w := range s.wloops {
		select {
		case w.notify <- struct{}{}:
		default:
		}
	}
}
