package server_test

import (
	"fmt"
	"testing"

	"batcher/internal/loadgen"
	"batcher/internal/server"
)

// BenchmarkServerLoopback measures end-to-end serving throughput over
// loopback TCP at increasing connection counts, with the achieved mean
// batch size reported alongside — the connection sweep shows edge
// batching kicking in as concurrency grows.
func BenchmarkServerLoopback(b *testing.B) {
	for _, conns := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			s, err := server.Start(server.Config{Workers: 4, Seed: 42})
			if err != nil {
				b.Fatalf("Start: %v", err)
			}
			defer s.Shutdown()

			ops := b.N / conns
			if ops == 0 {
				ops = 1
			}
			b.ResetTimer()
			res, err := loadgen.Run(loadgen.Workload{
				Addr:     s.Addr().String(),
				Conns:    conns,
				Ops:      ops,
				Window:   8,
				DS:       server.DSSkiplist,
				ReadFrac: 0.5,
				KeySpace: 1 << 14,
				Seed:     42,
			})
			b.StopTimer()
			if err != nil {
				b.Fatalf("loadgen: %v", err)
			}
			if res.Errors != 0 {
				b.Fatalf("%d ops rejected", res.Errors)
			}
			st := s.Snapshot()
			b.ReportMetric(st.MeanBatch, "batch-size")
			b.ReportMetric(res.OpsPerSec, "ops/s")
			b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkServerBatchDelay measures the phase-attribution round trip:
// requests carry OpFlagPhases, responses echo the stamp vector, and the
// reported metrics decompose client-visible latency into the paper's
// batch-delay term (pending-array arrival to batch landing) and its
// tail. It also keeps the phased serving path itself on the nightly
// perf gate — the trailer encode/decode and the per-op histogram
// observations are all inside the timed region.
func BenchmarkServerBatchDelay(b *testing.B) {
	const conns = 16
	s, err := server.Start(server.Config{Workers: 4, Seed: 42})
	if err != nil {
		b.Fatalf("Start: %v", err)
	}
	defer s.Shutdown()

	ops := b.N / conns
	if ops == 0 {
		ops = 1
	}
	b.ResetTimer()
	res, err := loadgen.Run(loadgen.Workload{
		Addr:     s.Addr().String(),
		Conns:    conns,
		Ops:      ops,
		Window:   8,
		DS:       server.DSSkiplist,
		ReadFrac: 0.5,
		KeySpace: 1 << 14,
		Seed:     42,
		Phases:   true,
	})
	b.StopTimer()
	if err != nil {
		b.Fatalf("loadgen: %v", err)
	}
	if res.Errors != 0 {
		b.Fatalf("%d ops rejected", res.Errors)
	}
	if res.BatchDelay == nil || res.BatchDelay.Count() == 0 {
		b.Fatal("no batch-delay observations echoed")
	}
	b.ReportMetric(res.OpsPerSec, "ops/s")
	b.ReportMetric(float64(res.BatchDelay.Quantile(0.99)), "delay-p99-ns")
	b.ReportMetric(res.BatchDelay.Mean(), "delay-mean-ns")
}
