package sched

import (
	"sync/atomic"
	"time"
)

// AdmissionController is the live half of the analytical-twin loop
// (DESIGN.md §15): a per-shard token bucket whose refill rate is the
// largest arrival rate the fitted twin predicts will keep p999 at or
// below the SLO. A sampler (the server's admission goroutine) refits
// the twin from the shard's batch/phase histograms every tick and
// calls Refill; the edge calls Take once per arriving operation and
// sheds with a fast FlagErr when it returns false.
//
// The contract mirrors the Admit policy seam it feeds: Take and
// AdmitDepth are called on hot paths (the reactor loop and under the
// pump mutex respectively), so both are wait-free, allocation-free,
// and never block — one or two atomic ops each.
type AdmissionController struct {
	sloNS int64
	// limiting is false during cold start and whenever the twin
	// predicts the current arrival rate meets the SLO — Take admits
	// everything on one atomic load.
	limiting atomic.Bool
	// credits is the token bucket: ops admittable until the next
	// refill. Only consulted while limiting.
	credits atomic.Int64
	// predicted is the twin's latest p999 prediction at the observed
	// arrival rate (ns), exported to stats and /metrics.
	predicted atomic.Int64
	// shed counts operations refused by Take since start.
	shed atomic.Int64
}

// NewAdmissionController returns a controller for the given SLO. It
// starts in the admit-everything state; nothing is limited until the
// first Refill(_, true).
func NewAdmissionController(slo time.Duration) *AdmissionController {
	return &AdmissionController{sloNS: slo.Nanoseconds()}
}

// SLO returns the configured target in nanoseconds.
func (a *AdmissionController) SLO() int64 { return a.sloNS }

// Take consumes one admission credit. It returns false — and counts a
// shed — when the controller is limiting and the bucket for this
// refill interval is empty. Wait-free: one atomic load on the
// unlimited fast path, one fetch-add while limiting.
func (a *AdmissionController) Take() bool {
	if !a.limiting.Load() {
		return true
	}
	if a.credits.Add(-1) >= 0 {
		return true
	}
	a.shed.Add(1)
	return false
}

// Refill installs the next interval's budget. limiting=false restores
// the admit-everything fast path (credits are ignored); limiting=true
// arms the bucket with the given credit count.
func (a *AdmissionController) Refill(credits int64, limiting bool) {
	if limiting {
		a.credits.Store(credits)
		a.limiting.Store(true)
		return
	}
	a.limiting.Store(false)
}

// Limiting reports whether the controller is currently shedding excess
// arrivals.
func (a *AdmissionController) Limiting() bool { return a.limiting.Load() }

// SetPredicted records the twin's latest p999 prediction (ns).
func (a *AdmissionController) SetPredicted(ns int64) { a.predicted.Store(ns) }

// Predicted returns the twin's latest p999 prediction (ns); 0 until
// the first sampler tick.
func (a *AdmissionController) Predicted() int64 { return a.predicted.Load() }

// Shed returns the number of operations refused by Take since start.
func (a *AdmissionController) Shed() int64 { return a.shed.Load() }

// AdmitDepth is the pump-side belt to the edge's braces, wired through
// the BatchPolicy Admit seam: while the controller is limiting, it
// refuses submissions that would push the shard's queue past a
// high-water mark (7/8 of capacity), so ops that slipped past the edge
// in the same tick cannot park a deep saturation backlog behind the
// SLO. Never limiting → always true; the seam only tightens admission
// (DESIGN.md §14). Allocation-free and non-blocking: called under the
// pump mutex.
func (a *AdmissionController) AdmitDepth(depth, capacity int) bool {
	if !a.limiting.Load() {
		return true
	}
	return depth <= capacity-capacity/8
}
