package workload

import (
	"testing"

	"batcher/internal/rng"
)

func TestUniformKeysRange(t *testing.T) {
	r := rng.New(1)
	keys := UniformKeys(r, 10000, 500)
	if len(keys) != 10000 {
		t.Fatalf("len=%d", len(keys))
	}
	seen := map[int64]bool{}
	for _, k := range keys {
		if k < 0 || k >= 500 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 400 {
		t.Fatalf("only %d distinct keys of 500", len(seen))
	}
}

func TestSequentialKeys(t *testing.T) {
	keys := SequentialKeys(100, 5)
	want := []int64{100, 101, 102, 103, 104}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys=%v", keys)
		}
	}
}

func TestClusteredKeys(t *testing.T) {
	r := rng.New(2)
	keys := ClusteredKeys(r, 5000, 4, 1<<40)
	if len(keys) != 5000 {
		t.Fatalf("len=%d", len(keys))
	}
	// Keys should occupy far fewer distinct "regions" than uniform: count
	// distinct high bits.
	regions := map[int64]bool{}
	for _, k := range keys {
		regions[k>>30] = true
	}
	if len(regions) > 64 {
		t.Fatalf("%d regions; not clustered", len(regions))
	}
}

func TestClusteredKeysDegenerate(t *testing.T) {
	r := rng.New(3)
	keys := ClusteredKeys(r, 100, 0, 10) // clusters < 1, tiny space
	for _, k := range keys {
		if k < 0 {
			t.Fatalf("negative key %d", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := rng.New(4)
	z := NewZipf(r, 1000, 1.2)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank-0 must dominate rank-100 heavily.
	if counts[0] < 10*counts[100] {
		t.Fatalf("not skewed: c0=%d c100=%d", counts[0], counts[100])
	}
	// All mass must not collapse onto one value.
	if counts[0] > n/2 {
		t.Fatalf("degenerate skew: c0=%d", counts[0])
	}
}

func TestZipfNearOne(t *testing.T) {
	r := rng.New(5)
	z := NewZipf(r, 100, 1.0)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestOpMix(t *testing.T) {
	r := rng.New(6)
	mix := OpMix{InsertPct: 50, DeletePct: 25}
	counts := map[Kind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[mix.Next(r)]++
	}
	frac := func(k Kind) float64 { return float64(counts[k]) / n }
	if f := frac(Insert); f < 0.47 || f > 0.53 {
		t.Fatalf("insert frac %v", f)
	}
	if f := frac(Delete); f < 0.22 || f > 0.28 {
		t.Fatalf("delete frac %v", f)
	}
	if f := frac(Read); f < 0.22 || f > 0.28 {
		t.Fatalf("read frac %v", f)
	}
}
