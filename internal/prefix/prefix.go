// Package prefix implements parallel prefix sums (scan) in the fork-join
// model, following Ladner and Fischer's approach adapted to dynamic
// multithreading: an upsweep that reduces blocks, a sequential scan of the
// (few) block sums, and a downsweep that scans each block with its offset.
// For x elements the algorithm has O(x) work and O(lg x) span, the bounds
// the paper quotes for the batched counter (Section 3).
package prefix

import "batcher/internal/sched"

// grain is the block size below which a scan runs sequentially. The
// upsweep/downsweep recursion is over blocks, so span is
// O(lg(x/grain) + grain) = O(lg x) for constant grain.
const grain = 512

// InclusiveInt64 replaces xs with its inclusive prefix sums in parallel:
// xs[i] becomes xs[0] + ... + xs[i]. It returns the total.
func InclusiveInt64(c *sched.Ctx, xs []int64) int64 {
	return InclusiveFunc(c, xs, func(a, b int64) int64 { return a + b })
}

// ExclusiveInt64 replaces xs with its exclusive prefix sums in parallel:
// xs[i] becomes xs[0] + ... + xs[i-1], with xs[0] = 0. It returns the
// total (the inclusive sum of the original slice).
func ExclusiveInt64(c *sched.Ctx, xs []int64) int64 {
	total := InclusiveInt64(c, xs)
	// Shift right by one in parallel. Work O(x), span O(lg x).
	n := len(xs)
	if n == 0 {
		return total
	}
	shifted := make([]int64, n)
	c.For(1, n, grain, func(_ *sched.Ctx, i int) { shifted[i] = xs[i-1] })
	c.For(0, n, grain, func(_ *sched.Ctx, i int) { xs[i] = shifted[i] })
	return total
}

// InclusiveFunc is InclusiveInt64 generalized to any associative
// operation op over int64 (e.g. max for a prefix-maxima scan). op must be
// associative; it need not be commutative.
func InclusiveFunc(c *sched.Ctx, xs []int64, op func(a, b int64) int64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n <= grain {
		for i := 1; i < n; i++ {
			xs[i] = op(xs[i-1], xs[i])
		}
		return xs[n-1]
	}

	blocks := (n + grain - 1) / grain
	sums := make([]int64, blocks)

	// Upsweep: reduce each block independently.
	c.For(0, blocks, 1, func(_ *sched.Ctx, b int) {
		lo, hi := b*grain, min((b+1)*grain, n)
		acc := xs[lo]
		for i := lo + 1; i < hi; i++ {
			acc = op(acc, xs[i])
		}
		sums[b] = acc
	})

	// Scan the block sums. blocks = n/grain, so doing this sequentially
	// keeps the span O(n/grain); for the sizes this repository handles
	// that is dominated by the O(lg n) of the parallel loops, but to honor
	// the O(lg x) span bound exactly we recurse when blocks is large.
	if blocks > grain {
		InclusiveFunc(c, sums, op)
	} else {
		for i := 1; i < blocks; i++ {
			sums[i] = op(sums[i-1], sums[i])
		}
	}

	// Downsweep: scan each block seeded with the preceding blocks' sum.
	c.For(0, blocks, 1, func(_ *sched.Ctx, b int) {
		lo, hi := b*grain, min((b+1)*grain, n)
		var acc int64
		haveAcc := false
		if b > 0 {
			acc, haveAcc = sums[b-1], true
		}
		for i := lo; i < hi; i++ {
			if haveAcc {
				xs[i] = op(acc, xs[i])
			}
			acc, haveAcc = xs[i], true
		}
	})
	return xs[n-1]
}

// CompactBy writes the elements of xs whose keep flag is set into a new
// dense slice, preserving order, using an exclusive scan of the flags.
// This is the "pack" primitive BATCHER's LaunchBatch uses to build the
// working set from the pending array. Work O(x), span O(lg x).
func CompactBy[T any](c *sched.Ctx, xs []T, keep []bool) []T {
	n := len(xs)
	if n != len(keep) {
		panic("prefix: CompactBy length mismatch")
	}
	if n == 0 {
		return nil
	}
	idx := make([]int64, n)
	c.For(0, n, grain, func(_ *sched.Ctx, i int) {
		if keep[i] {
			idx[i] = 1
		}
	})
	total := ExclusiveInt64(c, idx)
	out := make([]T, total)
	c.For(0, n, grain, func(_ *sched.Ctx, i int) {
		if keep[i] {
			out[idx[i]] = xs[i]
		}
	})
	return out
}
