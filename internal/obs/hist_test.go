package obs

import (
	"math"
	"sort"
	"testing"

	"batcher/internal/rng"
)

// exactQuantile computes the reference quantile the histogram's estimate
// is checked against: the ceil(q·n)-th smallest sample.
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	target := int(q*float64(len(sorted)) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > len(sorted) {
		target = len(sorted)
	}
	return sorted[target-1]
}

// checkQuantiles asserts that every checked quantile of h is within the
// geometry's guaranteed relative error of the exact sample quantile.
func checkQuantiles(t *testing.T, name string, h *Histogram, samples []int64) {
	t.Helper()
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		if want < subCount {
			if got != want {
				t.Errorf("%s: q=%v: got %d, want exactly %d (exact region)", name, q, got, want)
			}
			continue
		}
		// The estimate is the bucket's inclusive upper bound: never below
		// the exact value, and within one bucket width (2^-subBits
		// relative) above it.
		if got < want {
			t.Errorf("%s: q=%v: estimate %d below exact %d", name, q, got, want)
		}
		if relErr := float64(got-want) / float64(want); relErr > 1.0/subCount+1e-9 {
			t.Errorf("%s: q=%v: estimate %d vs exact %d, rel err %.4f > %.4f",
				name, q, got, want, relErr, 1.0/subCount)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	r := rng.New(42)
	dists := map[string]func() int64{
		// Uniform over a wide range (spans many octaves).
		"uniform": func() int64 { return int64(r.Uint64() % 10_000_000) },
		// Exponential-ish: latency-shaped with a heavy tail.
		"exponential": func() int64 {
			return int64(-50_000 * math.Log(1-r.Float64()))
		},
		// Constant: every quantile must be (nearly) the constant.
		"constant": func() int64 { return 123_456 },
		// Small integers: the exact region (batch sizes).
		"small": func() int64 { return int64(r.Uint64() % 9) },
	}
	for name, gen := range dists {
		h := NewHistogram()
		samples := make([]int64, 20_000)
		for i := range samples {
			samples[i] = gen()
			h.Observe(samples[i])
		}
		checkQuantiles(t, name, h, samples)

		// Count/Sum/Min/Max are exact, not bucket-rounded.
		var sum, mn, mx int64
		mn = samples[0]
		for _, v := range samples {
			sum += v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if h.Count() != int64(len(samples)) {
			t.Errorf("%s: Count=%d want %d", name, h.Count(), len(samples))
		}
		if h.Sum() != sum {
			t.Errorf("%s: Sum=%d want %d", name, h.Sum(), sum)
		}
		if h.Min() != mn || h.Max() != mx {
			t.Errorf("%s: Min/Max=%d/%d want %d/%d", name, h.Min(), h.Max(), mn, mx)
		}
		if math.Abs(h.Mean()-float64(sum)/float64(len(samples))) > 1e-9 {
			t.Errorf("%s: Mean=%v want %v", name, h.Mean(), float64(sum)/float64(len(samples)))
		}
	}
}

func TestHistogramBucketIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket indexing must be monotone in the value.
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 65, 1000, 1 << 20, (1 << 62) - 1, 1 << 62, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if up := bucketUpper(idx); up < v {
			t.Fatalf("bucketUpper(%d)=%d below value %d", idx, up, v)
		}
		if idx >= numBuckets {
			t.Fatalf("bucketIndex(%d)=%d out of range %d", v, idx, numBuckets)
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	r := rng.New(7)
	var all []int64
	for i := 0; i < 5000; i++ {
		v := int64(r.Uint64() % 1_000_000)
		all = append(all, v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	checkQuantiles(t, "merged", a, all)
	if a.Count() != int64(len(all)) {
		t.Fatalf("merged Count=%d want %d", a.Count(), len(all))
	}
	// Merging an empty histogram is a no-op.
	before := a.Count()
	a.Merge(NewHistogram())
	if a.Count() != before || a.Min() != 0 && a.Min() > a.Max() {
		t.Fatalf("merge of empty histogram changed state")
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram()
	r := rng.New(99)
	for i := 0; i < 10_000; i++ {
		h.Observe(int64(r.Uint64() % 5_000_000))
	}
	buckets := h.Cumulative()
	if len(buckets) == 0 || len(buckets) > maxExpoBuckets {
		t.Fatalf("got %d exposition buckets, want 1..%d", len(buckets), maxExpoBuckets)
	}
	prevU, prevC := int64(-1), int64(-1)
	for _, b := range buckets {
		if b.Upper <= prevU {
			t.Fatalf("bucket bounds not increasing: %d after %d", b.Upper, prevU)
		}
		if b.Count < prevC {
			t.Fatalf("cumulative counts decreasing: %d after %d", b.Count, prevC)
		}
		prevU, prevC = b.Upper, b.Count
	}
	if last := buckets[len(buckets)-1]; last.Count != h.Count() {
		t.Fatalf("final cumulative bucket %d != count %d", last.Count, h.Count())
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := NewHistogram()
	got := testing.AllocsPerRun(1000, func() { h.Observe(123_456) })
	if got != 0 {
		t.Fatalf("Observe allocates %v objects/op, want 0", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if buckets := h.Cumulative(); len(buckets) != 0 {
		t.Fatalf("empty histogram rendered %d buckets", len(buckets))
	}
}

// TestHistogramDeltaQuantile pins the cursor semantics the admission
// sampler's twin-residual pairing depends on: each call reads the
// quantile of only the observations since the previous call, reports
// no-data intervals as !ok, and leaves the lifetime quantiles — and
// other cursors — untouched.
func TestHistogramDeltaQuantile(t *testing.T) {
	h := NewHistogram()
	var c HistCursor
	if _, ok := h.DeltaQuantile(0.999, &c); ok {
		t.Fatal("empty histogram reported a delta quantile")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(1000)
	}
	q1, ok := h.DeltaQuantile(0.999, &c)
	if !ok {
		t.Fatal("no delta after 1000 observations")
	}
	if q1 < 1000 || float64(q1) > 1000*(1+1.0/subCount)+1 {
		t.Fatalf("first delta p999 = %d, want ~1000", q1)
	}
	if _, ok := h.DeltaQuantile(0.999, &c); ok {
		t.Fatal("delta reported with no new observations")
	}
	// A later interval of much slower ops: the delta must see only
	// them, though the lifetime histogram is 10:1 dominated by fast ones.
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000)
	}
	q2, ok := h.DeltaQuantile(0.999, &c)
	if !ok {
		t.Fatal("no delta after second interval")
	}
	if q2 < 1_000_000 || float64(q2) > 1_000_000*(1+1.0/subCount)+1 {
		t.Fatalf("second delta p999 = %d, want ~1e6 (interval isolated from history)", q2)
	}
	if m := h.Quantile(0.5); m > 2000 {
		t.Fatalf("lifetime median %d perturbed by cursor reads", m)
	}
	// An independent cursor starts from zero and sees everything.
	var c2 HistCursor
	q3, ok := h.DeltaQuantile(0.999, &c2)
	if !ok || q3 < 1_000_000 {
		t.Fatalf("fresh cursor p999 = %d ok=%v, want lifetime tail ~1e6", q3, ok)
	}
}

// TestHistogramMergeDisjointQuantileError merges two histograms whose
// value ranges do not overlap — the regime where a merge bug (dropped
// buckets, double-counted totals) shows up as a quantile landing in
// the wrong half — and holds the merged estimates to the geometry's
// guaranteed relative error at every checked quantile.
func TestHistogramMergeDisjointQuantileError(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	r := rng.New(11)
	var all []int64
	for i := 0; i < 4000; i++ {
		lo := int64(r.Uint64()%10_000) + 1
		hi := int64(r.Uint64()%10_000_000) + 50_000_000
		a.Observe(lo)
		b.Observe(hi)
		all = append(all, lo, hi)
	}
	a.Merge(b)
	checkQuantiles(t, "disjoint-merge", a, all)
	if med := a.Quantile(0.5); med < 1 || med > 20_000 {
		t.Fatalf("merged median %d landed outside the low half", med)
	}
	if p99 := a.Quantile(0.99); p99 < 50_000_000 {
		t.Fatalf("merged p99 %d landed outside the high half", p99)
	}
}
