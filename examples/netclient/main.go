// Netclient: the batcherd serving layer end to end in one process. It
// starts an in-process server (the same code `batcherd serve` runs),
// dials it over loopback TCP, performs skip-list inserts and searches
// from a handful of concurrent client connections, and finishes by
// reading the server's stats document — whose mean batch size shows
// that independent network requests were coalesced into multi-operation
// batches by the scheduler's pending array, exactly as the paper's
// fork-join strands are.
//
// Run:
//
//	go run ./examples/netclient
package main

import (
	"fmt"
	"log"
	"sync"

	"batcher/internal/loadgen"
	"batcher/internal/server"
)

func main() {
	// An ephemeral loopback port; read the bound address back.
	srv, err := server.Start(server.Config{Workers: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()
	addr := srv.Addr().String()
	fmt.Printf("serving on %s\n", addr)

	// Eight connections, each inserting a disjoint slice of the key
	// space and then searching it back. Client pipelining (here via
	// Send/Flush/Recv batching would work too; Do keeps it simple)
	// plus concurrent connections is what gives the server ops to
	// coalesce.
	const conns, perConn = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := loadgen.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			base := int64(i) * perConn
			for k := int64(0); k < perConn; k++ {
				r, err := c.Do(server.Request{
					DS: server.DSSkiplist, Op: server.OpInsert,
					Key: base + k, Val: (base + k) * 10,
				})
				if err != nil || r.Err() {
					log.Fatalf("insert: err=%v flags=%#x", err, r.Flags)
				}
			}
			for k := int64(0); k < perConn; k++ {
				r, err := c.Do(server.Request{
					DS: server.DSSkiplist, Op: server.OpLookup, Key: base + k,
				})
				if err != nil || !r.OK() || r.Res != (base+k)*10 {
					log.Fatalf("lookup %d: err=%v ok=%v res=%d", base+k, err, r.OK(), r.Res)
				}
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("%d inserts + %d searches verified over the wire\n",
		conns*perConn, conns*perConn)

	c, err := loadgen.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d ops in %d batches — mean batch size %.2f with P=%d\n",
		st.BatchedOps, st.Batches, st.MeanBatch, st.Workers)
	if st.MeanBatch > 1 {
		fmt.Println("network requests batched implicitly: no locks, no combining code, same invariants")
	}
}
