package experiments

import (
	"batcher/internal/sim"
	"batcher/internal/simds"
	"batcher/internal/stats"
)

// ablationGraph builds a balanced workload with both substantial core
// work and frequent data-structure ops, the regime where scheduling
// policy choices matter.
func ablationGraph(n int) *sim.Graph {
	g := sim.NewGraph(n * 4)
	ops := make([]*sim.Op, n)
	for i := range ops {
		ops[i] = &sim.Op{Records: 4}
	}
	g.ForkJoinDS(ops, 20, 20)
	return g
}

// AblateResult is a generic knob-sweep result.
type AblateResult struct {
	Knob string
	Rows *stats.Table
	// makespans by knob value, in sweep order.
	makespans []int64
	labels    []string
	// paperIdx is the sweep index of the paper's design choice.
	paperIdx int
}

// AblateSteal compares steal policies (ABL-alt): the paper's
// alternating policy against core-only, batch-only, and random.
func AblateSteal(n, p int, seed uint64) AblateResult {
	res := AblateResult{Knob: "steal policy"}
	res.Rows = stats.NewTable("policy", "makespan", "vs alternating", "batches", "meanBatch", "failedSteals")
	policies := []struct {
		name string
		pol  sim.StealPolicy
	}{
		{"alternating", sim.PolicyAlternating},
		{"core-only", sim.PolicyCoreOnly},
		{"batch-only", sim.PolicyBatchOnly},
		{"random", sim.PolicyRandom},
	}
	var base int64
	for _, pc := range policies {
		r := sim.NewSim(sim.Config{Workers: p, Seed: seed, Policy: pc.pol},
			&simds.SkipList{Size: 1 << 20}).Run(ablationGraph(n))
		if pc.name == "alternating" {
			base = r.Makespan
		}
		res.Rows.AddRow(pc.name, r.Makespan,
			float64(r.Makespan)/float64(base), r.Batches, r.MeanBatchOps, r.FailedSteals)
		res.makespans = append(res.makespans, r.Makespan)
		res.labels = append(res.labels, pc.name)
	}
	return res
}

// AblateCap sweeps the batch-size cap (ABL-cap): Invariant 2's cap of P
// against tighter caps that fragment batches.
func AblateCap(n, p int, seed uint64) AblateResult {
	res := AblateResult{Knob: "batch cap", paperIdx: 3} // cap = P is the paper's
	res.Rows = stats.NewTable("cap", "makespan", "batches", "meanBatch", "maxWaited")
	for _, cap := range []int{1, 2, 4, p} {
		r := sim.NewSim(sim.Config{Workers: p, Seed: seed, BatchCap: cap},
			&simds.SkipList{Size: 1 << 20}).Run(ablationGraph(n))
		res.Rows.AddRow(cap, r.Makespan, r.Batches, r.MeanBatchOps, r.MaxBatchesWaited)
		res.makespans = append(res.makespans, r.Makespan)
		res.labels = append(res.labels, fmtCheck("%d", cap))
	}
	return res
}

// AblateLaunch sweeps the launch threshold (ABL-launch): the paper's
// immediate launch (threshold 1) against accrual thresholds.
func AblateLaunch(n, p int, seed uint64) AblateResult {
	res := AblateResult{Knob: "launch threshold"}
	res.Rows = stats.NewTable("threshold", "makespan", "batches", "meanBatch")
	for _, th := range []int{1, 2, 4, p} {
		r := sim.NewSim(sim.Config{Workers: p, Seed: seed, LaunchThreshold: th},
			&simds.SkipList{Size: 1 << 20}).Run(ablationGraph(n))
		res.Rows.AddRow(th, r.Makespan, r.Batches, r.MeanBatchOps)
		res.makespans = append(res.makespans, r.Makespan)
		res.labels = append(res.labels, fmtCheck("%d", th))
	}
	return res
}

// ShapeChecks for ablations assert the design choices the paper made are
// not worse than the alternatives on this workload.
func (r AblateResult) ShapeChecks() []Check {
	if len(r.makespans) == 0 {
		return nil
	}
	base := r.makespans[r.paperIdx] // the paper's design choice
	worst := base
	worstLabel := r.labels[r.paperIdx]
	for i, m := range r.makespans {
		if m > worst {
			worst, worstLabel = m, r.labels[i]
		}
	}
	return []Check{{
		Name: fmtCheck("ablate-%s: the paper's choice (%s) is within 1.3x of the best setting",
			r.Knob, r.labels[r.paperIdx]),
		Pass:   float64(base) <= 1.3*float64(minI64(r.makespans)),
		Detail: fmtCheck("%s=%d vs worst %s=%d", r.labels[r.paperIdx], base, worstLabel, worst),
	}}
}

func minI64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
