// Simscaling: uses the discrete-time BATCHER simulator to predict how a
// custom batched data structure would scale — the workflow a systems
// designer would use before committing to an implementation.
//
// It defines a hypothetical "log-structured store" cost model (cheap
// appends, expensive periodic compactions — an amortized profile like
// the paper's stack example but heavier), sweeps workers 1..16, and
// prints the predicted speedup curve plus the scheduler's internal
// behaviour (batch sizes, steal traffic). It also contrasts the same
// structure under flat combining, showing where sequential batches stop
// scaling.
//
// Run:
//
//	go run ./examples/simscaling
package main

import (
	"fmt"

	"batcher/internal/sim"
	"batcher/internal/stats"
)

// logStore is a custom sim.BatchModel: appends cost 2 units each; every
// 4096 appended records the store compacts, costing Size/4 work with
// logarithmic span (a parallel merge).
type logStore struct {
	Size        int64
	sinceCompat int64
	Compactions int
}

func (m *logStore) BuildBOP(g *sim.Graph, ops []*sim.Op) (int32, int32) {
	x := 0
	for _, op := range ops {
		x += op.RecordCount()
	}
	entry, exit := g.ForkJoin(x, 2, sim.KindBatch)
	m.Size += int64(x)
	m.sinceCompat += int64(x)
	if m.sinceCompat >= 4096 {
		m.sinceCompat = 0
		m.Compactions++
		cE, cX := g.ForkJoin(int(m.Size/4)+1, 1, sim.KindBatch)
		g.AddEdge(exit, cE)
		exit = cX
	}
	return entry, exit
}

func (m *logStore) SeqCost(op *sim.Op) int64 {
	n := int64(op.RecordCount())
	total := 2 * n
	m.Size += n
	m.sinceCompat += n
	if m.sinceCompat >= 4096 {
		m.sinceCompat = 0
		m.Compactions++
		total += m.Size / 4
	}
	return total
}

func buildWorkload(calls, records int) *sim.Graph {
	g := sim.NewGraph(calls * 4)
	ops := make([]*sim.Op, calls)
	for i := range ops {
		ops[i] = &sim.Op{Records: records}
	}
	g.ForkJoinDS(ops, 5, 5)
	return g
}

func main() {
	const calls, records = 1000, 32
	seqTime := sim.SequentialTime(buildWorkload(calls, records), &logStore{})
	fmt.Printf("workload: %d calls x %d appends; sequential baseline %d steps\n\n",
		calls, records, seqTime)

	t := stats.NewTable("P", "BATCHER steps", "speedup vs SEQ", "meanBatch", "compactions", "FC steps", "FC speedup")
	for _, p := range []int{1, 2, 4, 8, 16} {
		m := &logStore{}
		r := sim.NewSim(sim.Config{Workers: p, Seed: 1}, m).Run(buildWorkload(calls, records))
		fcm := &logStore{}
		fc := sim.NewSim(sim.Config{Workers: p, Seed: 1, SeqBatches: true}, fcm).
			Run(buildWorkload(calls, records))
		t.AddRow(p, r.Makespan,
			float64(seqTime)/float64(r.Makespan),
			r.MeanBatchOps, m.Compactions,
			fc.Makespan, float64(seqTime)/float64(fc.Makespan))
	}
	fmt.Print(t)
	fmt.Println("\nreading the curve: BATCHER's speedup grows with P because batches")
	fmt.Println("(including the Θ(Size) compactions) execute as parallel dags; flat")
	fmt.Println("combining flattens out — its combiner is a sequential bottleneck.")
}
