//go:build !race

package server_test

// raceEnabled reports whether the race detector is compiled in.
// Allocation- and syscall-count assertions are skipped under -race:
// instrumentation changes both.
const raceEnabled = false
