// Dijkstra: single-source shortest paths driven through an implicitly
// batched priority queue — the application class (parallel SSSP via
// batched priority queues) the paper's introduction cites as the
// motivation for batched structures.
//
// The program settles vertices in Dijkstra order (the settle loop is a
// sequential dependency chain over the PQ), but relaxes each settled
// vertex's out-edges *in parallel*: every relaxation is a concurrent
// Insert into the batched priority queue, and BATCHER transparently
// groups those concurrent inserts into batches (lazy deletion handles
// stale entries, as usual for Dijkstra-with-inserts). The result is
// verified against a sequential Dijkstra over the same graph.
//
// Run:
//
//	go run ./examples/dijkstra
package main

import (
	"container/heap"
	"fmt"
	"log"
	"sync/atomic"

	"batcher"
	"batcher/internal/ds/pqueue"
	"batcher/internal/rng"
)

type edge struct {
	to int32
	w  int32
}

// genGraph builds a random connected digraph: a spine guaranteeing
// reachability plus random extra edges.
func genGraph(r *rng.Rand, n, extraPerVertex int) [][]edge {
	adj := make([][]edge, n)
	for v := 1; v < n; v++ {
		u := r.Intn(v)
		adj[u] = append(adj[u], edge{int32(v), int32(1 + r.Intn(100))})
	}
	for u := 0; u < n; u++ {
		for k := 0; k < extraPerVertex; k++ {
			v := r.Intn(n)
			adj[u] = append(adj[u], edge{int32(v), int32(1 + r.Intn(100))})
		}
	}
	return adj
}

// batchedDijkstra computes distances from src using the batched PQ.
// Tentative distances live in atomics because parallel relaxations may
// target the same vertex; relaxMin performs a monotone CAS-min.
func batchedDijkstra(adj [][]edge, src int, workers int) []int64 {
	const inf = int64(1) << 62
	n := len(adj)
	dist := make([]atomic.Int64, n)
	for i := range dist {
		dist[i].Store(inf)
	}
	relaxMin := func(v int32, nd int64) bool {
		for {
			cur := dist[v].Load()
			if nd >= cur {
				return false
			}
			if dist[v].CompareAndSwap(cur, nd) {
				return true
			}
		}
	}
	rt := batcher.New(batcher.Config{Workers: workers, Seed: 7})
	pq := pqueue.NewBatched()

	rt.Run(func(c *batcher.Ctx) {
		dist[src].Store(0)
		pq.Insert(c, 0, int64(src))
		for {
			d, v, ok := pq.DeleteMin(c)
			if !ok {
				return
			}
			if d > dist[v].Load() {
				continue // stale entry (lazy deletion)
			}
			edges := adj[v]
			// Relax all out-edges in parallel: the Inserts are
			// concurrent data-structure accesses, implicitly batched.
			c.For(0, len(edges), 4, func(cc *batcher.Ctx, i int) {
				e := edges[i]
				if nd := d + int64(e.w); relaxMin(e.to, nd) {
					pq.Insert(cc, nd, int64(e.to))
				}
			})
		}
	})
	out := make([]int64, n)
	for i := range dist {
		out[i] = dist[i].Load()
	}
	return out
}

// --- sequential oracle -------------------------------------------------

type pqItem struct {
	d int64
	v int32
}
type seqPQ []pqItem

func (p seqPQ) Len() int           { return len(p) }
func (p seqPQ) Less(i, j int) bool { return p[i].d < p[j].d }
func (p seqPQ) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *seqPQ) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *seqPQ) Pop() any          { o := *p; n := len(o); it := o[n-1]; *p = o[:n-1]; return it }

func seqDijkstra(adj [][]edge, src int) []int64 {
	const inf = int64(1) << 62
	dist := make([]int64, len(adj))
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &seqPQ{{0, int32(src)}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range adj[it.v] {
			if nd := it.d + int64(e.w); nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, pqItem{nd, e.to})
			}
		}
	}
	return dist
}

func main() {
	const (
		vertices = 5_000
		extra    = 4
		workers  = 4
	)
	r := rng.New(42)
	adj := genGraph(r, vertices, extra)
	edges := 0
	for _, es := range adj {
		edges += len(es)
	}

	got := batchedDijkstra(adj, 0, workers)
	want := seqDijkstra(adj, 0)
	for v := range want {
		if got[v] != want[v] {
			log.Fatalf("vertex %d: batched %d vs sequential %d", v, got[v], want[v])
		}
	}
	var sum, reach int64
	for _, d := range want {
		if d < int64(1)<<62 {
			sum += d
			reach++
		}
	}
	fmt.Printf("graph: %d vertices, %d edges\n", vertices, edges)
	fmt.Printf("batched-PQ Dijkstra matches sequential Dijkstra on all %d vertices ✓\n", vertices)
	fmt.Printf("reachable: %d, sum of distances: %d\n", reach, sum)
}
