package server

import (
	"encoding/json"
	"time"
)

// Stats is the server's live metrics document, served as the payload of
// a DSStats request. Batching figures come from the runtime's live
// counters (sched.Runtime.LiveBatchStats), which — unlike
// Runtime.Metrics — are readable while the pump is serving.
type Stats struct {
	// Workers is P.
	Workers int `json:"workers"`
	// UptimeSec is seconds since Start.
	UptimeSec float64 `json:"uptime_sec"`
	// Conns is the current connection count.
	Conns int64 `json:"conns"`
	// Accepted, Rejected, and Completed count operations admitted into
	// the pump, refused (bad op, saturation, shutdown), and responded
	// to (including rejections and stats reads).
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	// OpsPerSec is Completed averaged over the uptime.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Batches and BatchedOps count executed batches and the operations
	// they carried; MeanBatch is their ratio — the achieved batch size,
	// the figure of merit for edge batching.
	Batches    int64   `json:"batches"`
	BatchedOps int64   `json:"batched_ops"`
	MeanBatch  float64 `json:"mean_batch"`
	// QueueDepth is the pump ingress queue's current depth.
	QueueDepth int `json:"queue_depth"`
}

// Snapshot assembles the current Stats. Safe at any time, including
// while serving.
func (s *Server) Snapshot() Stats {
	up := time.Since(s.start).Seconds()
	batches, ops := s.rt.LiveBatchStats()
	st := Stats{
		Workers:    s.rt.Workers(),
		UptimeSec:  up,
		Conns:      s.curConns.Load(),
		Accepted:   s.accepted.Load(),
		Rejected:   s.rejected.Load(),
		Completed:  s.completed.Load(),
		Batches:    batches,
		BatchedOps: ops,
		QueueDepth: s.pump.Depth(),
	}
	if up > 0 {
		st.OpsPerSec = float64(st.Completed) / up
	}
	if batches > 0 {
		st.MeanBatch = float64(ops) / float64(batches)
	}
	return st
}

// statsJSON renders Snapshot for the wire.
func (s *Server) statsJSON() []byte {
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		// A fixed struct of numbers cannot fail to marshal.
		panic(err)
	}
	return b
}
