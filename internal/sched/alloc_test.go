package sched

import "testing"

// These tests pin the zero-allocation property of the steady-state hot
// paths: un-stolen Fork, For, and a Batchify round trip (including the
// LaunchBatch it triggers). They run the measured code inside a live
// runtime via a job channel, so the worker's free lists and the
// runtime's scratch buffers are warm by the time AllocsPerRun measures.
//
// P=1 makes the schedule deterministic: nothing can be stolen, so Fork
// always takes the un-stolen fast path and the Batchify caller is always
// its own batch launcher.

// allocHarness runs root-task thunks on demand inside a single Run.
type allocHarness struct {
	jobs    chan func(*Ctx)
	jobDone chan struct{}
	runDone chan struct{}
}

func startAllocHarness(t *testing.T, workers int) *allocHarness {
	t.Helper()
	h := &allocHarness{
		jobs:    make(chan func(*Ctx)),
		jobDone: make(chan struct{}),
		runDone: make(chan struct{}),
	}
	rt := New(Config{Workers: workers, Seed: 701})
	go func() {
		defer close(h.runDone)
		rt.Run(func(c *Ctx) {
			for f := range h.jobs {
				f(c)
				h.jobDone <- struct{}{}
			}
		})
	}()
	t.Cleanup(func() {
		close(h.jobs)
		<-h.runDone
	})
	return h
}

// do runs f as (part of) the root task and waits for it.
func (h *allocHarness) do(f func(*Ctx)) {
	h.jobs <- f
	<-h.jobDone
}

func nopBranch(*Ctx)    {}
func nopIter(*Ctx, int) {}
func skipIfRace(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

func TestForkFastPathZeroAllocs(t *testing.T) {
	skipIfRace(t)
	h := startAllocHarness(t, 1)
	var got float64
	h.do(func(c *Ctx) {
		c.Fork(nopBranch, nopBranch) // warm the task free list
		got = testing.AllocsPerRun(200, func() {
			c.Fork(nopBranch, nopBranch)
		})
	})
	if got != 0 {
		t.Fatalf("un-stolen Fork allocates %v objects/op, want 0", got)
	}
}

func TestForZeroAllocs(t *testing.T) {
	skipIfRace(t)
	h := startAllocHarness(t, 1)
	var got float64
	h.do(func(c *Ctx) {
		c.For(0, 256, 4, nopIter) // warm the task free list
		got = testing.AllocsPerRun(50, func() {
			c.For(0, 256, 4, nopIter)
		})
	})
	if got != 0 {
		t.Fatalf("For allocates %v objects/op, want 0", got)
	}
}

// allocFreeDS is a minimal batched structure whose BOP allocates nothing.
type allocFreeDS struct{ total int64 }

func (d *allocFreeDS) RunBatch(_ *Ctx, ops []*OpRecord) {
	for _, op := range ops {
		d.total += op.Val
		op.Res = d.total
		op.Ok = true
	}
}

func TestBatchifyRoundTripZeroAllocs(t *testing.T) {
	skipIfRace(t)
	h := startAllocHarness(t, 1)
	ds := &allocFreeDS{}
	var got float64
	h.do(func(c *Ctx) {
		op := c.Op()
		*op = OpRecord{DS: ds, Val: 1}
		c.Batchify(op) // warm the launch-task pool and batch scratch
		got = testing.AllocsPerRun(200, func() {
			op := c.Op()
			*op = OpRecord{DS: ds, Val: 1}
			c.Batchify(op)
		})
	})
	if got != 0 {
		t.Fatalf("Batchify+LaunchBatch allocates %v objects/op, want 0", got)
	}
	if ds.total == 0 {
		t.Fatal("batched operations did not run")
	}
}
