package obs

import "time"

// Op-lifecycle phase attribution. An operation crossing the serving
// stack passes six boundaries; each gets a slot in a fixed-size vector
// of monotonic nanosecond stamps carried inside the scheduler's
// OpRecord. A fixed [NumPhases]int64 — no map, no slice, no interface —
// keeps the stamp writes allocation-free and cache-friendly on the hot
// path: stamping is one clock read and one array store per boundary
// (see DESIGN.md §11).
//
// The boundaries, in the happens-before order the serving path
// guarantees:
//
//	PhaseRead     conn read done: the request is decoded and validated
//	PhaseAdmit    pump admission: the window/saturation wait is over
//	PhasePending  pending-array publish (the Batchify entry)
//	PhaseLaunch   batch launch: the op is compacted into a working set
//	PhaseLand     batch land: the op's group's BOP has run
//	PhaseDone     completion: the response is handed to the writer
//
// Consecutive differences are therefore the five phase *durations*
// exported as batcherd_op_phase_ns{phase=...}; PhaseLand−PhasePending
// is the paper's batch delay — the wait an operation spends between
// arriving in the pending array and its batch completing, the quantity
// Theorem 5.4 charges each op (at most two batches' worth, by Lemma 2).
const (
	PhaseRead = iota
	PhaseAdmit
	PhasePending
	PhaseLaunch
	PhaseLand
	PhaseDone
	// NumPhases is the stamp-vector length.
	NumPhases
)

// PhaseNames names the five durations between consecutive stamps:
// PhaseNames[i] is the interval [stamp i, stamp i+1).
var PhaseNames = [NumPhases - 1]string{
	"ingress",  // read done -> pump admitted (window + saturation wait)
	"queue",    // pump admitted -> pending-array publish (ingress queue)
	"pending",  // pending publish -> batch launch (trapped, awaiting launch)
	"exec",     // batch launch -> batch land (the BOP itself)
	"complete", // batch land -> response handed to the writer
}

// phaseEpoch anchors Now. Stamps are nanoseconds since process start
// (well, package init), not wall-clock times: time.Since reads Go's
// monotonic clock, so differences between stamps are immune to
// wall-clock steps and the int64 arithmetic never overflows.
var phaseEpoch = time.Now()

// Now returns the current monotonic phase stamp. It is allocation-free
// and safe from any goroutine; its only guarantees are monotonicity and
// a common epoch across the process, which is all differencing needs.
func Now() int64 { return int64(time.Since(phaseEpoch)) }

// PhaseDurations converts a stamp vector into the five consecutive
// durations (PhaseNames order). Negative gaps — possible only when a
// stamp was never written (stamping disabled, or an op rejected before
// reaching a boundary) — clamp to zero so partial vectors stay sane.
func PhaseDurations(stamps [NumPhases]int64) [NumPhases - 1]int64 {
	var d [NumPhases - 1]int64
	for i := range d {
		if dv := stamps[i+1] - stamps[i]; dv > 0 {
			d[i] = dv
		}
	}
	return d
}

// BatchDelay returns the paper's batch-delay term for a stamp vector:
// the time from pending-array arrival to batch landing (zero if the
// stamps are absent or out of order).
func BatchDelay(stamps [NumPhases]int64) int64 {
	if d := stamps[PhaseLand] - stamps[PhasePending]; d > 0 {
		return d
	}
	return 0
}
