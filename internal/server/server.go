package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"batcher/internal/ds/counter"
	"batcher/internal/ds/hashmap"
	"batcher/internal/ds/skiplist"
	"batcher/internal/ds/tree23"
	"batcher/internal/obs"
	"batcher/internal/sched"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address. Defaults to "127.0.0.1:0" (an
	// ephemeral loopback port; read it back from Server.Addr).
	Addr string
	// Workers is P, the scheduler worker count. Zero means GOMAXPROCS.
	Workers int
	// Seed seeds the scheduler's RNGs and the hashed structures.
	Seed uint64
	// QueueCap bounds the pump's ingress queue (see sched.PumpConfig).
	QueueCap int
	// Window bounds each connection's in-flight requests. The reader
	// stops reading the socket while the window is full, so backpressure
	// propagates to the client as TCP flow control. Defaults to 32.
	Window int
	// DrainTimeout bounds how long Shutdown waits for in-flight
	// responses to reach slow clients before forcing connections closed.
	// Defaults to 5s.
	DrainTimeout time.Duration
	// IdleTimeout bounds how long a live connection may go without
	// delivering a complete frame: the reader refreshes a read deadline
	// before each frame, so a half-open peer (or one that sent a torn
	// frame and stalled) is closed and its window slots reclaimed
	// instead of being held until Shutdown. Defaults to 2m; negative
	// disables.
	IdleTimeout time.Duration
	// WriteStallTimeout bounds each response write (and flush) to a
	// client. A peer that stops reading stalls the writer at most this
	// long, after which the connection is torn down — abandoning its
	// responses but releasing its window slots — so dead readers cannot
	// pin in-flight operations. Defaults to 30s; negative disables.
	WriteStallTimeout time.Duration
	// SaturationTimeout caps the total time a reader may park waiting
	// for space in a saturated pump queue before the request is rejected
	// with FlagErr. Defaults to 30s; negative disables the cap (park
	// until shutdown, the pre-containment behavior).
	SaturationTimeout time.Duration
	// WrapDS, if non-nil, wraps each served structure as it is
	// installed; ds is the structure's wire identifier (DSCounter, ...).
	// Returning b unchanged keeps the plain structure. This is the
	// fault-injection seam: chaos tests splice internal/faultinject
	// wrappers into a live server through it.
	WrapDS func(ds uint8, b sched.Batched) sched.Batched
	// TraceRing, when positive, attaches a scheduler event tracer with
	// this many slots per worker ring (see obs.NewTracer; rounded up to
	// a power of two). Zero disables tracing; the /metrics registry is
	// always available.
	TraceRing int
	// SlowK sets the tail flight recorder's reservoir size: the K
	// slowest operations per window are kept with their full phase
	// vectors, dumpable via SlowHandler (/slow). Defaults to 16;
	// negative disables the recorder.
	SlowK int
	// SlowWindow sets the flight recorder's rotation period (the
	// "slowest per window" horizon). Defaults to 10s.
	SlowWindow time.Duration
}

// Server owns a listener, a scheduler runtime, one instance of each
// served data structure, and the pump that joins them. Start it with
// Start, stop it with Shutdown.
type Server struct {
	cfg  Config
	ln   net.Listener
	rt   *sched.Runtime
	pump *sched.Pump

	// The served structures, as installed (WrapDS may have wrapped the
	// concrete types with fault-injection shims).
	ctr  sched.Batched
	skip sched.Batched
	tree sched.Batched
	hmap sched.Batched

	start time.Time
	quit  chan struct{}
	done  chan struct{}
	stop  sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup // one per live connection handler
	srvWG  sync.WaitGroup // accept loop + pump.Serve

	curConns  atomic.Int64
	accepted  atomic.Int64 // operations admitted into the pump
	rejected  atomic.Int64 // operations refused (bad op, saturation cap, shutdown)
	completed atomic.Int64 // responses handed to connection writers
	immediate atomic.Int64 // responses that bypassed the pump (stats, rejections)
	failed    atomic.Int64 // accepted operations completed with Err (contained batch panic)
	decodeErr atomic.Int64 // connections dropped for malformed frames

	// Observability (metrics.go): the registry backing /metrics, the
	// batch-size histogram shared with the scheduler, per-structure
	// service-latency histograms indexed by wire ds code, and the
	// optional event tracer.
	reg       *obs.Registry
	batchHist *obs.Histogram
	latHist   [4]*obs.Histogram
	tracer    *obs.Tracer

	// Phase attribution (metrics.go): one histogram per lifecycle phase
	// duration (obs.PhaseNames order), the derived batch-delay histogram
	// (the paper's per-op batch-delay term, observed exactly once per
	// pump-served operation in complete), and the tail flight recorder
	// behind /slow (nil when Config.SlowK < 0).
	phaseHist [obs.NumPhases - 1]*obs.Histogram
	delayHist *obs.Histogram
	flight    *obs.FlightRecorder

	reqPool sync.Pool
}

// request is one in-flight operation: the OpRecord the scheduler
// batches, plus the connection bookkeeping needed to route the response
// back. The record's Aux points back at the request so the pump's
// OnDone callback can recover it.
type request struct {
	op      sched.OpRecord
	c       *conn
	id      uint64
	flags   uint8 // pre-set for rejections and stats; 0 means "derive from op"
	dsIdx   int8  // wire ds code of an accepted op; selects its latency histogram
	echo    bool  // client set OpFlagPhases: echo the stamp vector
	phased  bool  // op completed through the pump, so its stamps are valid
	start   time.Time
	payload []byte
}

// conn is one accepted connection. The window channel is the in-flight
// semaphore: the reader acquires a slot before reading each request and
// the writer releases it after writing the response, so at most Window
// operations are outstanding and the out channel (capacity Window)
// always has room — completion callbacks never block a scheduler
// worker.
type conn struct {
	nc     net.Conn
	out    chan *request
	window chan struct{}
}

// Start builds the runtime and structures, binds the listener, and
// begins serving. It returns once the server is accepting connections.
func Start(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	switch {
	case cfg.IdleTimeout == 0:
		cfg.IdleTimeout = 2 * time.Minute
	case cfg.IdleTimeout < 0:
		cfg.IdleTimeout = 0
	}
	switch {
	case cfg.WriteStallTimeout == 0:
		cfg.WriteStallTimeout = 30 * time.Second
	case cfg.WriteStallTimeout < 0:
		cfg.WriteStallTimeout = 0
	}
	switch {
	case cfg.SaturationTimeout == 0:
		cfg.SaturationTimeout = 30 * time.Second
	case cfg.SaturationTimeout < 0:
		cfg.SaturationTimeout = 0
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	wrap := cfg.WrapDS
	if wrap == nil {
		wrap = func(_ uint8, b sched.Batched) sched.Batched { return b }
	}
	rt := sched.New(sched.Config{Workers: cfg.Workers, Seed: cfg.Seed})
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		rt:    rt,
		ctr:   wrap(DSCounter, counter.New(0)),
		skip:  wrap(DSSkiplist, skiplist.NewBatched(cfg.Seed^0x9e3779b97f4a7c15)),
		tree:  wrap(DSTree23, tree23.NewBatched()),
		hmap:  wrap(DSHashmap, hashmap.NewBatched(cfg.Seed^0xd1342543de82ef95)),
		start: time.Now(),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.reqPool.New = func() any {
		rq := &request{}
		rq.op.Aux = rq
		return rq
	}
	s.pump = sched.NewPump(rt, sched.PumpConfig{
		QueueCap: cfg.QueueCap,
		OnDone:   s.complete,
	})
	// Metrics/tracing attach to the runtime and must happen before the
	// pump occupies it.
	s.buildMetrics()
	s.srvWG.Add(2)
	go func() { defer s.srvWG.Done(); s.pump.Serve() }()
	go func() { defer s.srvWG.Done(); s.accept() }()
	return s, nil
}

// Addr returns the listener's address (useful with the :0 default).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Runtime exposes the underlying scheduler runtime (stats, tests).
func (s *Server) Runtime() *sched.Runtime { return s.rt }

// Shutdown gracefully stops the server: it stops accepting connections
// and requests, drains every in-flight operation — each admitted
// request still executes and its response is written — and then tears
// down the runtime. Idempotent and safe to call concurrently; every
// call blocks until the shutdown completes.
func (s *Server) Shutdown() {
	s.stop.Do(func() {
		s.ln.Close()
		close(s.quit)
		// Unblock readers parked in ReadFrame; admitted operations keep
		// draining through the pump and each conn's writer.
		s.connMu.Lock()
		for nc := range s.conns {
			nc.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		// Past the drain budget, force the sockets down entirely so
		// writers stuck on unresponsive clients error out and release
		// their window slots.
		force := time.AfterFunc(s.cfg.DrainTimeout, func() {
			s.connMu.Lock()
			for nc := range s.conns {
				nc.SetDeadline(time.Now())
			}
			s.connMu.Unlock()
		})
		s.connWG.Wait()
		force.Stop()
		// All connections have fully drained (writers release window
		// slots only after their responses are written or abandoned), so
		// the pump queue is quiescent; Close lets Serve return.
		s.pump.Close()
		s.srvWG.Wait()
		close(s.done)
	})
	<-s.done
}

func (s *Server) accept() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.connMu.Lock()
		select {
		case <-s.quit:
			s.connMu.Unlock()
			nc.Close()
			return
		default:
		}
		s.conns[nc] = struct{}{}
		s.connWG.Add(1)
		s.connMu.Unlock()
		s.curConns.Add(1)
		go s.handle(nc)
	}
}

// handle runs one connection: this goroutine is the reader, with a
// dedicated writer goroutine feeding the socket from the out channel.
func (s *Server) handle(nc net.Conn) {
	defer s.connWG.Done()
	c := &conn{
		nc:     nc,
		out:    make(chan *request, s.cfg.Window),
		window: make(chan struct{}, s.cfg.Window),
	}
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() { defer writerWG.Done(); s.writeLoop(c) }()

	s.readLoop(c)

	// Teardown: reclaim every window slot. Each in-flight operation
	// holds one and releases it only after its response is written (or
	// abandoned on a dead socket), so once all slots are back, no
	// completion can touch the out channel again and it is safe to
	// close.
	for i := 0; i < s.cfg.Window; i++ {
		c.window <- struct{}{}
	}
	close(c.out)
	writerWG.Wait()
	nc.Close()
	s.connMu.Lock()
	delete(s.conns, nc)
	s.connMu.Unlock()
	s.curConns.Add(-1)
}

func (s *Server) readLoop(c *conn) {
	var buf []byte
	for {
		// Admission: take a window slot before touching the socket. A
		// full window means Window responses are still owed; not reading
		// is precisely TCP backpressure on the client.
		select {
		case c.window <- struct{}{}:
		case <-s.quit:
			return
		}
		// Idle deadline: a half-open peer, or one that sent a torn frame
		// and stalled, times out here and releases its slots instead of
		// holding them until Shutdown. Refreshed per frame, so any live
		// traffic keeps the connection open indefinitely. Ordering versus
		// Shutdown matters: Shutdown closes quit *before* stamping its
		// immediate deadlines, so a reader that overwrites one here is
		// guaranteed to see quit closed in the re-check below — no reader
		// is left blocked for a full IdleTimeout during shutdown.
		if s.cfg.IdleTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			select {
			case <-s.quit:
				<-c.window
				return
			default:
			}
		}
		body, err := ReadFrame(c.nc, buf)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				s.decodeErr.Add(1)
			}
			<-c.window // the slot just taken; no request carries it
			return
		}
		buf = body[:0]
		q, err := DecodeRequest(body)
		if err != nil {
			s.decodeErr.Add(1)
			<-c.window
			return // protocol error: drop the connection
		}
		s.dispatch(c, q)
	}
}

// dispatch routes one decoded request, with its window slot already
// held. Every path either submits the operation to the pump or enqueues
// an immediate response; both eventually release the slot in the writer.
func (s *Server) dispatch(c *conn, q Request) {
	rq := s.reqPool.Get().(*request)
	rq.c = c
	rq.id = q.ID
	rq.flags = 0
	rq.echo = q.Op&OpFlagPhases != 0
	rq.phased = false
	rq.payload = nil
	rq.op.Kind = 0
	rq.op.Key = q.Key
	rq.op.Val = q.Val
	rq.op.Res = 0
	rq.op.Ok = false
	rq.op.Err = nil // pooled records may carry a prior contained-panic Err
	q.Op &^= OpFlagPhases
	// PhaseRead: the request is decoded and its window slot held.
	// Stamped before target validation so even rejected ops carry a
	// coherent vector; the phase telescope (Done−Read) and the wall
	// latency (time.Since(rq.start)) then measure near-identical
	// intervals, which the phase-sum invariant test relies on.
	rq.op.Phases[obs.PhaseRead] = obs.Now()

	if q.DS == DSStats {
		rq.flags = FlagOK | FlagPayload
		rq.payload = s.statsJSON()
		s.immediate.Add(1)
		c.out <- rq
		return
	}
	ds, kind, ok := s.target(q.DS, q.Op)
	if !ok {
		s.rejected.Add(1)
		s.immediate.Add(1)
		rq.flags = FlagErr
		c.out <- rq
		return
	}
	rq.op.DS = ds
	rq.op.Kind = kind
	rq.dsIdx = int8(q.DS)
	rq.start = time.Now()
	// Park on saturation: the pump's bounded queue is the global ingress
	// limit in front of the pending array, and this reader already holds
	// a window slot, so blocking here stops the connection from reading,
	// which the client sees as TCP backpressure. The park is bounded by
	// SaturationTimeout: past the cap the request is rejected with
	// FlagErr rather than pinning the reader forever behind a wedged
	// queue. One timer is reused across retries (time.After would leak
	// a timer per backoff step on a saturated server).
	var (
		timer    *time.Timer
		deadline time.Time
	)
	wait := time.Microsecond
	for {
		// Submit itself stamps obs.PhaseAdmit (under the queue mutex, so
		// the pump worker's later reads are ordered after it): [Read,
		// Admit) is the ingress phase — decode to admission, including
		// every saturation retry of this loop.
		err := s.pump.Submit(&rq.op)
		if err == nil {
			s.accepted.Add(1)
			if timer != nil {
				timer.Stop()
			}
			return
		}
		if err == sched.ErrPumpClosed {
			break
		}
		if timer == nil {
			if s.cfg.SaturationTimeout > 0 {
				deadline = time.Now().Add(s.cfg.SaturationTimeout)
			}
			timer = time.NewTimer(wait)
		} else {
			timer.Reset(wait)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			timer.Stop()
			break
		}
		select {
		case <-s.quit:
			timer.Stop()
			err = sched.ErrPumpClosed
		case <-timer.C:
			if wait < 128*time.Microsecond {
				wait *= 2
			}
			continue
		}
		break
	}
	s.rejected.Add(1)
	s.immediate.Add(1)
	rq.flags = FlagErr
	c.out <- rq
}

// target validates a (ds, op) pair and maps it onto a batched structure
// and its operation kind. The wire codes were chosen to coincide with
// the structures' sched.OpKind values, so the mapping is a check plus a
// cast.
func (s *Server) target(ds, op uint8) (sched.Batched, sched.OpKind, bool) {
	switch ds {
	case DSCounter:
		if op == OpInsert {
			return s.ctr, counter.OpIncrement, true
		}
	case DSSkiplist:
		switch op {
		case OpInsert, OpLookup, OpDelete, OpSucc:
			return s.skip, sched.OpKind(op), true
		}
	case DSTree23:
		switch op {
		case OpInsert, OpLookup, OpDelete:
			return s.tree, sched.OpKind(op), true
		}
	case DSHashmap:
		switch op {
		case OpInsert, OpLookup, OpDelete:
			return s.hmap, sched.OpKind(op), true
		}
	}
	return nil, 0, false
}

// complete is the pump's OnDone callback, invoked on a scheduler worker
// after a batch fills in the record. The out channel has one slot of
// guaranteed capacity per window slot and this request holds a window
// slot, so the send can never block the worker. An operation whose
// batch group panicked (op.Err set by the contained-panic path) is
// answered with FlagErr — failure is per operation, not per connection
// or per process.
func (s *Server) complete(op *sched.OpRecord) {
	rq := op.Aux.(*request)
	if op.Err != nil {
		rq.flags = FlagErr
		s.failed.Add(1)
	}
	s.latHist[rq.dsIdx].Observe(int64(time.Since(rq.start)))

	// PhaseDone closes the stamp vector; the phase histograms and the
	// batch-delay histogram observe exactly one value per pump-served
	// operation here (contained-panic ops included), so the delay
	// histogram's count equals the scheduler's LiveBatchStats op count
	// once the server quiesces. Everything below is allocation-free:
	// fixed arrays, atomic histogram bumps, and a by-value reservoir
	// offer that fast-rejects all but tail ops.
	op.Phases[obs.PhaseDone] = obs.Now()
	rq.phased = true
	durs := obs.PhaseDurations(op.Phases)
	for i, h := range s.phaseHist {
		h.Observe(durs[i])
	}
	s.delayHist.Observe(obs.BatchDelay(op.Phases))
	if s.flight != nil {
		s.flight.Offer(obs.SlowOp{
			TotalNS:    op.Phases[obs.PhaseDone] - op.Phases[obs.PhaseRead],
			Stamps:     op.Phases,
			Durations:  durs,
			BatchDelay: obs.BatchDelay(op.Phases),
			DS:         dsNames[rq.dsIdx],
			Kind:       int32(op.Kind),
			Key:        op.Key,
			BatchSize:  op.BatchSize,
			BatchGroup: op.BatchGroup,
			Err:        op.Err != nil,
		})
	}
	rq.c.out <- rq
}

// writeLoop drains the out channel: encode, write, flush when idle,
// release the window slot, recycle. After a socket error it keeps
// draining — abandoning responses but still releasing slots — so that
// in-flight operations can finish and teardown can reclaim the window.
func (s *Server) writeLoop(c *conn) {
	bw := bufio.NewWriter(c.nc)
	var buf []byte
	broken := false
	stall := s.cfg.WriteStallTimeout
	for rq := range c.out {
		if !broken {
			flags := rq.flags
			if flags == 0 {
				if rq.op.Ok {
					flags = FlagOK
				}
			}
			resp := Response{
				ID:      rq.id,
				Flags:   flags,
				Key:     rq.op.Key,
				Res:     rq.op.Res,
				Payload: rq.payload,
			}
			if rq.echo && rq.phased {
				// The client asked for phase attribution and the op went
				// through the pump, so its stamp vector is complete: echo
				// it as the response trailer.
				resp.Flags |= FlagPhases
				resp.Phases = rq.op.Phases
			}
			buf = AppendResponse(buf[:0], resp)
			// A peer that stops reading (slowloris) stalls each write at
			// most WriteStallTimeout; past it the connection breaks and
			// its remaining responses are abandoned, freeing the window.
			if stall > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(stall))
			}
			if _, err := bw.Write(buf); err != nil {
				broken = true
			} else if len(c.out) == 0 {
				// Flush only when no more responses are queued: back-to-
				// back completions (whole batches finishing at once)
				// coalesce into one syscall.
				if err := bw.Flush(); err != nil {
					broken = true
				}
			}
			if broken {
				// Close the socket so the reader, likely parked in
				// ReadFrame, errors out promptly and teardown reclaims
				// the window slots of a dead connection.
				c.nc.Close()
			}
		}
		s.completed.Add(1)
		rq.payload = nil
		rq.c = nil
		s.reqPool.Put(rq)
		<-c.window
	}
}

// String describes the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("batcherd on %s (P=%d, window=%d)",
		s.ln.Addr(), s.rt.Workers(), s.cfg.Window)
}
