package sched

// This file implements batch-panic containment, the failure-containment
// layer the serving edge needs: a panicking BOP must cost exactly its
// own group's operations, not the process.
//
// The core program's contract (Run, panic_test.go) is unchanged — a
// panic anywhere, including inside RunBatch, aborts the runtime and
// re-panics out of Run, because a fork-join program cannot meaningfully
// continue past a collapsed subcomputation. A *serving* runtime can:
// the ops of the failed group are marked with OpRecord.Err, every other
// group and every other batch proceeds, and the paper's invariants
// survive because LaunchBatch's steps 4–5 (participant statuses, batch
// flag) still run in full.
//
// Containment has to repair two things a recovered panic breaks:
//
//  1. Abandoned deque items. A panic that unwinds out of Fork or For
//     skips their join phases, leaving forked-but-unconsumed tasks at
//     the bottom of the worker's batch deque. A live outer frame would
//     later pop one of those orphans where it expects its own child —
//     the "fork-join deque discipline violated" crash. Recovery
//     therefore snapshots the deque's bottom index at every containment
//     boundary (group entry, group-tagged task entry) and, on panic,
//     pops and runs everything above the snapshot before returning.
//  2. Unjoined stolen work. The skipped join phases also mean nobody
//     waits for subtasks that thieves are still running; letting the
//     batch complete while they run would race them against the
//     participants' resumed code (and the next batch). Every
//     group-tagged task is counted in scratch.groupLive at push time
//     and uncounted when it finishes, and runGroup does not return
//     until its group's count is zero.
//
// Group tagging rides the existing task machinery: runGroup sets the
// worker's curGroup for the extent of the BOP, forks inherit the tag
// (ctx.go), and a thief executing a tagged task adopts the tag for its
// own nested forks (execTask). Tags are 1-based so the zero value of a
// pooled Task means "no group" — core tasks, pump loops, and
// LaunchBatch's own setup/cleanup stay tag-free, and a panic in any of
// those still aborts globally (it would be a scheduler bug, not a data
// structure failure).

import (
	"fmt"
	goruntime "runtime"

	"batcher/internal/obs"
)

// BatchPanicError is the error stored in OpRecord.Err for every
// operation of a group whose BOP panicked under containment. All ops of
// the group share one instance.
type BatchPanicError struct {
	// Recovered is the value the BOP panicked with.
	Recovered any
}

func (e *BatchPanicError) Error() string {
	return fmt.Sprintf("sched: batched operation panicked: %v", e.Recovered)
}

// ContainBatchPanics toggles batch-panic containment. While on, a panic
// that unwinds out of a group's RunBatch (or out of any task forked by
// it, wherever it was stolen to) no longer aborts the runtime: the
// failed group's OpRecords get Err set to a *BatchPanicError, the
// BatchPanics counter is bumped, and the batch completes its remaining
// steps so every participant resumes and other groups are untouched.
// Panics outside batch groups (core tasks, the scheduler's own work)
// still abort and re-panic out of Run regardless of this setting.
//
// Pump.Serve enables containment for its duration — a serving runtime
// must degrade per-operation, not per-process. Direct Run callers keep
// the propagate-everything default.
//
// Note that containment is a scheduler-level guarantee only: a BOP that
// panicked midway may leave its own structure in an inconsistent state.
// Err tells the submitter the operation did not (fully) execute; what
// the structure's remains mean is the structure's problem.
func (rt *Runtime) ContainBatchPanics(on bool) { rt.contain.Store(on) }

// BatchPanics returns the number of contained batch panics since the
// runtime was created. Like LiveBatchStats it is readable at any time,
// including while serving.
func (rt *Runtime) BatchPanics() int64 { return rt.batchPanics.Load() }

// runGroup executes group gi of the current batch (LaunchBatch step 3).
// Without containment it is a plain RunBatch call; with containment it
// is a recovery boundary that keeps the failure inside the group.
func (rt *Runtime) runGroup(c *Ctx, gi int) {
	s := &rt.scratch
	g := &s.groups[gi]
	if !rt.contain.Load() {
		g.ds.RunBatch(c, g.ops)
		return
	}
	w := c.w
	rt.runGroupContained(c, w, gi, g)
	// A contained panic may have unwound past join frames, so stolen
	// subtasks of this group can still be running. The batch must not
	// complete (and the next must not start) while they touch the
	// group's records, so hold the group open until its count drains,
	// helping with batch work meanwhile. In the no-panic case every join
	// completed normally and the count is already zero.
	for s.groupLive[gi].Load() != 0 {
		rt.checkAbort()
		if t := w.batch.PopBottom(); t != nil {
			w.runTask(t)
			continue
		}
		if !w.stealAndRun(true) {
			goruntime.Gosched()
		}
	}
}

// runGroupContained runs one group's BOP with the worker tagged as
// inside that group, recovering a panic into the group's failure record.
func (rt *Runtime) runGroupContained(c *Ctx, w *worker, gi int, g *dsGroup) {
	saved := w.curGroup
	entry := w.batch.Bottom()
	w.curGroup = int32(gi + 1)
	defer func() {
		w.curGroup = saved
		if r := recover(); r != nil {
			if _, isAbort := r.(abortSignal); isAbort {
				// The runtime is aborting for an uncontained cause;
				// keep unwinding.
				panic(r)
			}
			rt.containGroupPanic(w, gi, r, entry)
		}
	}()
	g.ds.RunBatch(c, g.ops)
}

// containGroupPanic records a recovered panic for group gi and repairs
// the calling worker's batch deque: every task above entry was pushed
// by the frames the panic unwound and has no surviving parent to pop
// it, so run each here (still under containment — popped tasks are
// group-tagged, and a repeat panic recurses through execTask's own
// boundary). Tasks above entry that thieves already took are covered by
// the groupLive wait in runGroup.
func (rt *Runtime) containGroupPanic(w *worker, gi int, v any, entry int64) {
	rt.batchPanics.Add(1)
	if tr := rt.tracer; tr != nil {
		tr.Record(w.id, obs.EvPanicContained, int64(gi), 0)
	}
	s := &rt.scratch
	s.panicMu.Lock()
	if s.panicked[gi] == nil {
		s.panicked[gi] = v
	}
	s.panicMu.Unlock()
	s.anyPanic.Store(true)
	for w.batch.Bottom() > entry {
		t := w.batch.PopBottom()
		if t == nil {
			break // the rest was stolen; the deque is empty
		}
		w.runTask(t)
	}
}

// markPanickedGroups stamps Err on every operation of each group whose
// BOP panicked this batch, and clears the per-batch panic state for the
// next batch. Called by launchBatchBody between steps 3 and 4; at that
// point all groups (and, via runGroup's drain, all their stolen
// subtasks) have finished, so the records are quiescent.
func (s *batchScratch) markPanickedGroups() {
	s.anyPanic.Store(false)
	s.panicMu.Lock()
	for gi := range s.groups {
		if v := s.panicked[gi]; v != nil {
			s.panicked[gi] = nil
			err := &BatchPanicError{Recovered: v}
			for _, op := range s.groups[gi].ops {
				op.Err = err
			}
		}
	}
	s.panicMu.Unlock()
}
