# Development targets. Everything is stdlib-only; `go` >= 1.22 suffices.

.PHONY: all build vet test race bench bench-json bench-server lab lab-quick examples cover fuzz chaos

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Scheduler microbenchmarks -> BENCH_sched.json (the perf trajectory;
# see cmd/batcherlab/benchjson.go). BENCH_ARGS tightens/loosens the run.
BENCH_ARGS ?= -benchtime=5x -count=1
bench-json:
	go test -run '^$$' -bench 'Fig5Real|CounterReal|RuntimeForkJoin|BatchifyRoundTrip|ServerThroughput' \
		-benchmem $(BENCH_ARGS) . | go run ./cmd/batcherlab benchjson -o BENCH_sched.json

# End-to-end serving benchmarks (batcherd over loopback TCP) ->
# BENCH_server.json. Appends one JSONL line per run so the file keeps a
# trajectory instead of being overwritten. ServerHighFanIn is the
# reactor's flat-cost witness (pre-dialed conns, 4 -> 1024); give it a
# large -benchtime (the nightly uses 50000x) for steady-state numbers —
# tiny iteration counts measure per-run fan-out, not serving.
SERVER_BENCH_ARGS ?= -benchtime=2000x -count=1
bench-server:
	go test -run '^$$' -bench 'ServerLoopback|ServerBatchDelay|ServerHighFanIn|ServerSharded|ServerPolicy|ServerOverload|ServerConformance' -benchmem $(SERVER_BENCH_ARGS) ./internal/server \
		| go run ./cmd/batcherlab benchjson -append -o BENCH_server.json

# Regenerate the paper's evaluation (see EXPERIMENTS.md).
lab:
	go run ./cmd/batcherlab all

lab-quick:
	go run ./cmd/batcherlab -quick all

examples:
	go run ./examples/quickstart
	go run ./examples/dijkstra
	go run ./examples/indexer
	go run ./examples/racedetect
	go run ./examples/goroutines
	go run ./examples/boruvka
	go run ./examples/simscaling
	go run ./examples/netclient

# Coverage over the whole module (root facade, cmd/, and internals —
# the old target silently skipped everything outside ./internal/...).
cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -1

# Short fuzzing passes over the property-based fuzz targets.
fuzz:
	go test -fuzz=FuzzTreeAgainstMap -fuzztime=30s ./internal/ds/tree23/
	go test -fuzz=FuzzSeqAgainstMap -fuzztime=30s ./internal/ds/skiplist/
	go test -run '^$$' -fuzz=FuzzDecodeRequest -fuzztime=20s ./internal/server/
	go test -run '^$$' -fuzz=FuzzDecodeResponse -fuzztime=20s ./internal/server/

# The failure-containment suite: contained batch panics, fault-injected
# structures, and the wire-level chaos tests, under the race detector.
# Set BATCHERD_POLICY=size-cap or =deadline to rerun the server-side
# suite under an alternative batch-formation policy (CI runs all three).
chaos:
	go test -race -run 'TestContain|TestPumpServesThroughBatchPanic|TestChaos|TestStatsBooks' \
		-count=1 -v ./internal/sched/ ./internal/faultinject/ ./internal/server/
