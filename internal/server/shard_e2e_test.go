package server_test

// Sharded e2e tests: the blast-radius and drain witnesses rerun against
// a multi-runtime router. Containment and accounting must hold not just
// per structure but per shard — a poisoned shard answers FlagErr while
// its siblings keep serving, and shutdown balances every shard's books
// independently.

import (
	"math"
	"sync"
	"testing"
	"time"

	"batcher/internal/faultinject"
	"batcher/internal/loadgen"
	"batcher/internal/sched"
	"batcher/internal/server"
	"batcher/internal/shard"
)

// keysOnShard returns n distinct keys that shard.Of places on the given
// shard for ds, scanning upward from start. Searching in the test (instead
// of hard-coding keys) keeps it correct if the placement hash changes.
func keysOnShard(t *testing.T, ds uint8, shards, want, n int, start int64) []int64 {
	t.Helper()
	var keys []int64
	for k := start; len(keys) < n; k++ {
		if shard.Of(ds, k, shards) == want {
			keys = append(keys, k)
		}
		if k-start > 1<<20 {
			t.Fatalf("no %d keys on shard %d/%d within 2^20 candidates", n, want, shards)
		}
	}
	return keys
}

// TestChaosShardPoisonIsolation is the sharded containment witness: a
// Panicker wraps only shard 0's skip list, and an attacker hammers a
// poison key routed to shard 0. Skip-list traffic on the other shards
// and counter traffic (whose home shard is not 0 at four shards) must
// sail through untouched; shard 0's books alone show the failures; and
// Shutdown still drains every shard.
func TestChaosShardPoisonIsolation(t *testing.T) {
	const shards = 4
	if home := shard.Home(server.DSCounter, shards); home == 0 {
		t.Fatalf("counter home shard is 0 at %d shards; the isolation premise is gone", shards)
	}
	poison := keysOnShard(t, server.DSSkiplist, shards, 0, 1, -(1 << 16))[0]
	healthy := keysOnShard(t, server.DSSkiplist, shards, 1, 64, 1)

	var panicker *faultinject.Panicker
	s, err := server.Start(server.Config{
		Workers: 2,
		Seed:    79,
		Shards:  shards,
		Policy:  testPolicy(t),
		WrapDS: func(sh int, ds uint8, b sched.Batched) sched.Batched {
			if sh == 0 && ds == server.DSSkiplist {
				panicker = &faultinject.Panicker{Inner: b, Poison: poison}
				return panicker
			}
			return b
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	const (
		attackerOps = 25
		victims     = 3
		victimOps   = 150
	)
	var wg sync.WaitGroup
	errc := make(chan error, victims+2)

	wg.Add(1)
	go func() { // attacker: every op lands on shard 0 and poisons its batch
		defer wg.Done()
		cl, err := loadgen.Dial(addr)
		if err != nil {
			errc <- err
			return
		}
		defer cl.Close()
		for i := 0; i < attackerOps; i++ {
			r, err := cl.Do(server.Request{DS: server.DSSkiplist, Op: server.OpInsert, Key: poison, Val: 1})
			if err != nil {
				errc <- err
				return
			}
			if !r.Err() {
				t.Errorf("poisoned op %d answered without FlagErr (flags %#x)", i, r.Flags)
			}
		}
	}()
	wg.Add(1)
	go func() { // same structure, different shard: must be untouched
		defer wg.Done()
		cl, err := loadgen.Dial(addr)
		if err != nil {
			errc <- err
			return
		}
		defer cl.Close()
		for i := 0; i < victimOps; i++ {
			k := healthy[i%len(healthy)]
			r, err := cl.Do(server.Request{DS: server.DSSkiplist, Op: server.OpInsert, Key: k, Val: 1})
			if err != nil {
				errc <- err
				return
			}
			if r.Err() {
				t.Errorf("skiplist op on shard 1 (key %d) answered FlagErr; panic leaked across shards", k)
			}
		}
	}()
	for v := 0; v < victims; v++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := loadgen.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for i := 0; i < victimOps; i++ {
				r, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1})
				if err != nil {
					errc <- err
					return
				}
				if r.Err() {
					t.Errorf("counter op answered FlagErr; panic leaked across shards")
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The counter (pinned off shard 0) absorbed every increment.
	cl, err := loadgen.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cl.Do(server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1})
	if err != nil || r.Err() {
		t.Fatalf("post-chaos increment: r=%+v err=%v", r, err)
	}
	if want := int64(victims*victimOps) + 1; r.Res != want {
		t.Fatalf("counter total = %d, want %d (lost increments)", r.Res, want)
	}
	cl.Close()

	// Blast radius in the books: only shard 0 failed anything, and its
	// failure count is exactly the attacker's.
	for i := 0; i < shards; i++ {
		_, _, failed := s.Router().Shard(i).Books()
		if i == 0 && failed != attackerOps {
			t.Fatalf("shard 0 failed = %d, want %d", failed, attackerOps)
		}
		if i != 0 && failed != 0 {
			t.Fatalf("shard %d failed = %d, want 0 (poison leaked)", i, failed)
		}
	}
	if p := panicker.Panics.Load(); p == 0 || s.Router().BatchPanics() != p {
		t.Fatalf("router BatchPanics = %d, injected %d", s.Router().BatchPanics(), p)
	}

	done := make(chan struct{})
	go func() { s.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung after contained shard-0 panics: leaked window slots")
	}
	final := s.Snapshot()
	if final.Completed != final.Accepted+final.Immediate {
		t.Fatalf("books unbalanced: completed=%d accepted=%d immediate=%d",
			final.Completed, final.Accepted, final.Immediate)
	}
}

// TestShardedShutdownDrain is the cross-shard drain witness: four
// shards, a tiny window, tiny per-shard queues, and deep client
// pipelines mixing counter increments (pinned to one home shard) with
// hashmap inserts spread across all shards. At shutdown every admitted
// operation is answered exactly once — the counter results form a
// gapless permutation — and each shard's books balance independently.
func TestShardedShutdownDrain(t *testing.T) {
	const shards = 4
	s, err := server.Start(server.Config{
		Workers:  2,
		Seed:     41,
		Shards:   shards,
		Window:   2,
		QueueCap: 2,
		Policy:   testPolicy(t),
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	const conns = 8

	var mu sync.Mutex
	var got []int64
	var rejected int64
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := loadgen.Dial(s.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			var mine []int64
			var mineRejected int64
			inFlight := 0
			recv := func() bool {
				r, err := c.Recv()
				if err != nil {
					return false // drained and closed by shutdown
				}
				inFlight--
				if r.Err() {
					mineRejected++ // a parked op rejected at shutdown
				} else if r.Res > 0 {
					mine = append(mine, r.Res) // counter running total
				}
				return true
			}
			key := int64(id)
		loop:
			for {
				// Deep pipeline, 16 in flight against a window of 2. Odd
				// slots carry hashmap inserts with walking keys so each
				// frame's span fans out across shards.
				for inFlight < 16 {
					req := server.Request{DS: server.DSCounter, Op: server.OpInsert, Val: 1}
					if inFlight%2 == 1 {
						key += 7
						req = server.Request{DS: server.DSHashmap, Op: server.OpInsert, Key: key, Val: key}
					}
					if _, err := c.Send(req); err != nil {
						break loop
					}
					inFlight++
				}
				if err := c.Flush(); err != nil {
					break
				}
				for inFlight > 8 {
					if !recv() {
						break loop
					}
				}
			}
			for inFlight > 0 {
				if !recv() {
					break
				}
			}
			mu.Lock()
			got = append(got, mine...)
			rejected += mineRejected
			mu.Unlock()
		}(i)
	}

	time.Sleep(75 * time.Millisecond)
	s.Shutdown()
	wg.Wait()
	if t.Failed() {
		return
	}

	if len(got) == 0 {
		t.Fatal("no counter operations completed before shutdown")
	}
	seen := make(map[int64]bool, len(got))
	max := int64(0)
	for _, v := range got {
		if v < 1 || seen[v] {
			t.Fatalf("counter result %d duplicated or out of range", v)
		}
		seen[v] = true
		if v > max {
			max = v
		}
	}
	if max != int64(len(got)) {
		t.Fatalf("received %d counter results but max is %d: accepted responses lost in drain", len(got), max)
	}

	// Global books, then per-shard: admission and completion are
	// accounted on the shard that ran the op, so each pair must balance
	// with no cross-shard slack hiding a lost response.
	st := s.Snapshot()
	if st.Completed != st.Accepted+st.Immediate {
		t.Fatalf("books unbalanced after drain: completed=%d accepted=%d immediate=%d",
			st.Completed, st.Accepted, st.Immediate)
	}
	var sumAccepted int64
	active := 0
	for i := 0; i < shards; i++ {
		accepted, completed, failed := s.Router().Shard(i).Books()
		if completed != accepted {
			t.Fatalf("shard %d books unbalanced: accepted=%d completed=%d", i, accepted, completed)
		}
		if failed != 0 {
			t.Fatalf("shard %d failed = %d, want 0", i, failed)
		}
		if accepted > 0 {
			active++
		}
		sumAccepted += accepted
	}
	if sumAccepted != st.Accepted {
		t.Fatalf("per-shard accepted sums to %d, server accepted %d", sumAccepted, st.Accepted)
	}
	// The global OpsPerSec is defined as the sum of the per-shard rates
	// (one pump-completed basis); allow only float summation-order slack.
	var sumRate float64
	for _, ss := range st.PerShard {
		sumRate += ss.OpsPerSec
	}
	if math.Abs(sumRate-st.OpsPerSec) > 1e-9*math.Max(1, st.OpsPerSec) {
		t.Fatalf("sum(per_shard ops_per_sec) = %v != global %v", sumRate, st.OpsPerSec)
	}
	if active < 2 {
		t.Fatalf("only %d of %d shards saw traffic; hashmap keys did not spread", active, shards)
	}
	if st.Conns != 0 {
		t.Fatalf("%d connections survived shutdown", st.Conns)
	}
	t.Logf("drained %d counter ops across %d active shards, %d rejections", len(got), active, rejected)
}
